module ditto

go 1.22
