package app

import (
	"ditto/internal/cpu"
	"ditto/internal/isa"
)

// StreamVariants is how many pregenerated request-stream variants rotate
// per request kind — the kernel kstream discipline (kvariantCount) extended
// to the user-level request path: enough variety that the branch predictor
// cannot memorize a single pattern, cheap enough to generate once.
const StreamVariants = 8

// streamSet is the rotating pregenerated variant set for one cache key.
type streamSet struct {
	variants [StreamVariants]*cpu.Trace
	next     uint8
}

// StreamCache serves pregenerated request streams for a Body. For each
// request kind (which fixes the work scale — PhaseBody's Scale map is
// keyed by kind) it emits StreamVariants full request streams once, decodes
// each into a cpu.Trace, and then serves them in rotation. The steady-state
// path is allocation-free: no emission, no decoding, no buffer growth.
//
// Determinism: pregeneration draws from the Body's RNGs exactly once per
// key, at first use, in request-arrival order — which is itself
// deterministic under the simulator's single-goroutine engine — so repeated
// same-seed runs replay byte-identical streams. The cached traces are
// immutable after pregeneration; serving the same trace to overlapping
// bursts is safe for the same reason sharing kernel kstream variants is.
type StreamCache struct {
	body Body
	sets map[int]*streamSet
}

// NewStreamCache wraps body in a rotating pregenerated-stream cache.
func NewStreamCache(body Body) *StreamCache {
	return &StreamCache{body: body, sets: map[int]*streamSet{}}
}

// Next returns the next rotating decoded variant for kind, pregenerating
// the kind's variant set on first use. The steady-state path is a map
// lookup and a counter bump; all allocation lives in pregenerate.
// ditto:noalloc
func (c *StreamCache) Next(kind int) *cpu.Trace {
	s := c.sets[kind]
	if s == nil {
		s = c.pregenerate(kind)
	}
	tr := s.variants[s.next]
	s.next = (s.next + 1) % StreamVariants
	return tr
}

// pregenerate emits and decodes the variant set for kind — the one-time
// cold path behind Next.
func (c *StreamCache) pregenerate(kind int) *streamSet {
	s := &streamSet{}
	for i := range s.variants {
		s.variants[i] = cpu.NewTrace(c.body.EmitRequest(kind, nil))
		s.variants[i].Class = cpu.ClassBody
		s.variants[i].Group = s.variants[0]
	}
	c.sets[kind] = s
	return s
}

// EmitRequest implements Body for callers that need a plain stream: it
// appends a copy of the next variant to buf. The hot path should use Next
// with Thread.RunTrace instead, which shares the cached storage.
func (c *StreamCache) EmitRequest(kind int, buf []isa.Instr) []isa.Instr {
	return append(buf, c.Next(kind).Stream...)
}

// phaseChainBody adapts per-kind phase chains to the Body interface, so the
// built-in application models (memcached, nginx, redis, mongodb) can feed
// their handler segments through a StreamCache.
type phaseChainBody struct {
	chains map[int][]*Phase
}

func (b phaseChainBody) EmitRequest(kind int, buf []isa.Instr) []isa.Instr {
	for _, p := range b.chains[kind] {
		buf = p.Emit(buf, 1)
	}
	return buf
}

// NewPhaseChainCache builds a StreamCache over per-kind phase chains: each
// request kind's stream is the concatenation of one emission from each phase
// in its chain.
func NewPhaseChainCache(chains map[int][]*Phase) *StreamCache {
	return NewStreamCache(phaseChainBody{chains: chains})
}
