package app

import (
	"math"
	"testing"
	"testing/quick"

	"ditto/internal/isa"
)

func basicSpec() PhaseSpec {
	return PhaseSpec{
		Name: "t", MeanInstrs: 5000, FootprintBytes: 16 << 10,
		Weights:     ClassWeights{Load: 0.3, Store: 0.1, ALU: 0.6},
		BranchFrac:  0.15,
		Branches:    []BranchMN{{M: 1, N: 2, Weight: 1}},
		WorkingSets: []WorkingSet{{Bytes: 4096, Frac: 0.5}, {Bytes: 1 << 20, Frac: 0.5}},
		RegularFrac: 0.5, DepChain: 2,
	}
}

func TestPhaseEmitLength(t *testing.T) {
	ph := NewPhase(basicSpec(), 0x400000, 0x10000000, 1)
	s := ph.Emit(nil, 1)
	if len(s) != 5000 {
		t.Fatalf("emitted %d, want 5000 (no jitter)", len(s))
	}
	s2 := ph.Emit(nil, 2)
	if len(s2) != 10000 {
		t.Fatalf("scale 2 emitted %d", len(s2))
	}
	spec := basicSpec()
	spec.JitterPct = 0.2
	phj := NewPhase(spec, 0x400000, 0x10000000, 1)
	lens := map[int]bool{}
	for i := 0; i < 10; i++ {
		lens[len(phj.Emit(nil, 1))] = true
	}
	if len(lens) < 2 {
		t.Fatal("jitter should vary invocation lengths")
	}
}

func TestPhasePCsWithinFootprint(t *testing.T) {
	ph := NewPhase(basicSpec(), 0x400000, 0x10000000, 2)
	for _, in := range ph.Emit(nil, 1) {
		if in.PC < 0x400000 || in.PC >= 0x400000+16<<10 {
			t.Fatalf("PC %#x outside code region", in.PC)
		}
	}
}

func TestPhaseMixApproximatesWeights(t *testing.T) {
	ph := NewPhase(basicSpec(), 0x400000, 0x10000000, 3)
	s := ph.Emit(nil, 4)
	var loads, stores, branches, total int
	for i := range s {
		f := s[i].Form()
		switch {
		case f.Branch:
			branches++
		case f.Load:
			loads++
		case f.Store:
			stores++
		}
		total++
	}
	loadFrac := float64(loads) / float64(total)
	brFrac := float64(branches) / float64(total)
	// Non-branch slots are 85%; load weight 0.3 of those ⇒ ~25%.
	if loadFrac < 0.15 || loadFrac > 0.36 {
		t.Fatalf("load fraction = %v", loadFrac)
	}
	if brFrac < 0.08 || brFrac > 0.25 {
		t.Fatalf("branch fraction = %v", brFrac)
	}
	_ = stores
}

func TestPhaseBranchRates(t *testing.T) {
	spec := basicSpec()
	spec.Branches = []BranchMN{{M: 2, N: 3, Weight: 1}}
	spec.MeanInstrs = 40000
	ph := NewPhase(spec, 0x400000, 0x10000000, 4)
	s := ph.Emit(nil, 1)
	perBranch := map[int32][2]int{} // taken, total
	for i := range s {
		if s[i].BranchID >= 0 {
			c := perBranch[s[i].BranchID]
			if s[i].Taken {
				c[0]++
			}
			c[1]++
			perBranch[s[i].BranchID] = c
		}
	}
	if len(perBranch) == 0 {
		t.Fatal("no branches emitted")
	}
	// Aggregate taken rate should be near 2^-2 = 0.25.
	var taken, total int
	for _, c := range perBranch {
		taken += c[0]
		total += c[1]
	}
	rate := float64(taken) / float64(total)
	if math.Abs(rate-0.25) > 0.08 {
		t.Fatalf("aggregate taken rate = %v, want ≈ 0.25", rate)
	}
}

func TestPhaseAddressesWithinRegions(t *testing.T) {
	ph := NewPhase(basicSpec(), 0x400000, 0x10000000, 5)
	s := ph.Emit(nil, 2)
	lo := uint64(0x10000000)
	hi := lo + 4096 + 1<<20 + 8192 // regions plus page padding
	seen := 0
	for i := range s {
		f := s[i].Form()
		if !(f.Load || f.Store) || s[i].Addr == 0 {
			continue
		}
		seen++
		if s[i].Addr < lo || s[i].Addr >= hi {
			t.Fatalf("address %#x outside data regions", s[i].Addr)
		}
	}
	if seen == 0 {
		t.Fatal("no memory accesses emitted")
	}
}

func TestPhaseDeterminism(t *testing.T) {
	a := NewPhase(basicSpec(), 0x400000, 0x10000000, 7)
	b := NewPhase(basicSpec(), 0x400000, 0x10000000, 7)
	sa := a.Emit(nil, 1)
	sb := b.Emit(nil, 1)
	if len(sa) != len(sb) {
		t.Fatal("lengths differ")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
	c := NewPhase(basicSpec(), 0x400000, 0x10000000, 8)
	sc := c.Emit(nil, 1)
	same := true
	for i := range sa {
		if i < len(sc) && sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestPhaseDefaultsApplied(t *testing.T) {
	ph := NewPhase(PhaseSpec{Name: "empty"}, 0x1000, 0x2000, 1)
	s := ph.Emit(nil, 1)
	if len(s) == 0 {
		t.Fatal("defaulted phase should emit")
	}
	if ph.Spec().DepChain < 1 || ph.Spec().MeanInstrs <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestPointerChaseUsesR11(t *testing.T) {
	spec := basicSpec()
	spec.PointerFrac = 1.0
	ph := NewPhase(spec, 0x400000, 0x10000000, 9)
	s := ph.Emit(nil, 1)
	found := false
	for i := range s {
		if s[i].Op == isa.MOVptr {
			found = true
			if s[i].Dst != isa.R11 || s[i].Src1 != isa.R11 {
				t.Fatal("pointer chase must chain through r11")
			}
		}
	}
	if !found {
		t.Fatal("no pointer-chase loads emitted")
	}
}

func TestRepSlots(t *testing.T) {
	spec := basicSpec()
	spec.Weights = ClassWeights{Rep: 1}
	spec.BranchFrac = 0
	spec.RepBytes = 4096
	ph := NewPhase(spec, 0x400000, 0x10000000, 10)
	s := ph.Emit(nil, 1)
	for i := range s {
		if !s[i].Form().Rep {
			t.Fatalf("expected only REP ops, got %s", s[i].Form().Name)
		}
		if s[i].RepCount != 4096 {
			t.Fatalf("RepCount = %d", s[i].RepCount)
		}
	}
}

// Property: Emit always produces exactly the requested count for any
// reasonable spec (no branch-target loops escape the budget).
func TestEmitBudgetProperty(t *testing.T) {
	f := func(seed int64, brFrac uint8, fp uint16) bool {
		spec := basicSpec()
		spec.JitterPct = 0
		spec.MeanInstrs = 2000
		spec.BranchFrac = float64(brFrac%60) / 100
		spec.FootprintBytes = 1024 + int(fp%32)*1024
		ph := NewPhase(spec, 0x400000, 0x10000000, seed)
		return len(ph.Emit(nil, 1)) == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseBodyScale(t *testing.T) {
	ph := NewPhase(basicSpec(), 0x400000, 0x10000000, 11)
	b := &PhaseBody{Phases: []*Phase{ph}, Scale: map[int]float64{1: 0.5}}
	k0 := b.EmitRequest(0, nil)
	k1 := b.EmitRequest(1, nil)
	if len(k1) >= len(k0) {
		t.Fatalf("scaled kind should be shorter: %d vs %d", len(k1), len(k0))
	}
}
