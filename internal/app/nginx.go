package app

import (
	"fmt"

	"ditto/internal/kernel"
	"ditto/internal/platform"
)

// Nginx models the web server of §6.1.2: a single worker process running an
// I/O-multiplexing event loop, a large parsing/code footprint (frontend
// pressure), and per-request file I/O through the page cache for static
// content.
type Nginx struct {
	Base
	Files     int
	FileBytes int
	RespBytes int

	parse, filePhase, respond *Phase
	rrFile                    int
	names                     []string // content file names, built once at Start
	streams                   *StreamCache
}

// Nginx stream-cache kinds: the pre-I/O segment (parse + file lookup) and
// the post-I/O response build.
const (
	nginxPre  = 0
	nginxPost = 1
)

// NewNginx builds an NGINX instance serving a warm static-content set.
func NewNginx(m *platform.Machine, port int, seed int64) *Nginx {
	n := &Nginx{Base: newBase("nginx", m, port, seed), Files: 200,
		FileBytes: 64 << 10, RespBytes: 16 << 10}
	code := n.P.MemBase
	data := n.P.MemBase + 1<<30
	n.parse = NewPhase(PhaseSpec{
		Name: "http-parse", MeanInstrs: 1250, JitterPct: 0.2, FootprintBytes: 56 << 10,
		Weights:    ClassWeights{Load: 0.24, Store: 0.08, ALU: 0.56, SIMD: 0.07, CRC: 0.05},
		BranchFrac: 0.2,
		Branches: []BranchMN{{M: 1, N: 1, Weight: 0.3}, {M: 1, N: 3, Weight: 0.3},
			{M: 2, N: 4, Weight: 0.25}, {M: 5, N: 6, Weight: 0.15}},
		WorkingSets: []WorkingSet{{Bytes: 16 << 10, Frac: 0.6}, {Bytes: 512 << 10, Frac: 0.4}},
		RegularFrac: 0.4, DepChain: 2,
	}, code, data, seed)
	n.filePhase = NewPhase(PhaseSpec{
		Name: "file-lookup", MeanInstrs: 500, JitterPct: 0.15, FootprintBytes: 24 << 10,
		Weights:     ClassWeights{Load: 0.3, Store: 0.06, ALU: 0.56, Mul: 0.03, SIMD: 0.05},
		BranchFrac:  0.15,
		Branches:    []BranchMN{{M: 1, N: 2, Weight: 0.6}, {M: 3, N: 4, Weight: 0.4}},
		WorkingSets: []WorkingSet{{Bytes: 128 << 10, Frac: 1}},
		RegularFrac: 0.3, PointerFrac: 0.1, DepChain: 2,
	}, code+1<<20, data+1<<28, seed+1)
	n.respond = NewPhase(PhaseSpec{
		Name: "respond", MeanInstrs: 350, JitterPct: 0.1, FootprintBytes: 12 << 10,
		Weights:     ClassWeights{Load: 0.18, Store: 0.14, ALU: 0.56, Rep: 0.12},
		BranchFrac:  0.1,
		WorkingSets: []WorkingSet{{Bytes: 1 << 20, Frac: 1}},
		RegularFrac: 0.85, DepChain: 2, RepBytes: 4096,
	}, code+2<<20, data+2<<28, seed+2)
	n.streams = NewPhaseChainCache(map[int][]*Phase{
		nginxPre:  {n.parse, n.filePhase},
		nginxPost: {n.respond},
	})
	return n
}

// Start registers the content files (warm in the page cache, as a serving
// steady state would have them) and launches the worker event loop.
func (n *Nginx) Start() {
	n.names = make([]string, n.Files)
	for f := 0; f < n.Files; f++ {
		n.names[f] = n.fileName(f)
		file := n.M.Kernel.CreateFile(n.names[f], int64(n.FileBytes))
		n.M.Kernel.WarmPages(file, 0, int64(n.FileBytes/kernel.PageBytes))
	}
	n.P.Spawn("worker", func(th *kernel.Thread) {
		l := th.Listen(n.ListenPort)
		EventLoop(th, l, n.handle)
	})
}

func (n *Nginx) fileName(i int) string { return fmt.Sprintf("/srv/www/page-%03d.html", i) }

// handle serves one HTTP GET: parse, open+pread+close, respond.
func (n *Nginx) handle(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg) {
	th.RunTrace(n.streams.Next(nginxPre))

	n.rrFile = (n.rrFile + 1) % n.Files
	fd := th.Open(n.names[n.rrFile])
	th.Pread(fd, n.RespBytes, 0)
	th.CloseFD(fd)

	th.RunTrace(n.streams.Next(nginxPost))
	echo(th, conn, msg, n.RespBytes+200)
}
