// Package app implements the "original" cloud applications the Ditto
// pipeline clones: a framework of thread and network models (§4.3) plus the
// six evaluation workloads (Memcached, NGINX, MongoDB, Redis, and the
// Social Network microservices).
//
// Each application's request-handling body is driven by hidden generation
// parameters (PhaseSpec): static code is laid out at construction — slots
// with fixed opcodes, register dependence chains, per-branch bias state and
// working-set assignments — and each invocation walks that code emitting a
// dynamic instruction stream. Ditto never reads these parameters; it
// observes only the executed streams, syscalls and traces, exactly as
// SDE/Valgrind/SystemTap observe a real binary.
package app

import (
	"ditto/internal/branch"
	"ditto/internal/isa"
	"ditto/internal/stats"
)

// WorkingSet is one tier of a phase's data footprint.
type WorkingSet struct {
	Bytes int     // region size
	Frac  float64 // fraction of memory accesses landing here
}

// BranchMN is one (taken rate 2^-M, transition rate 2^-N) behaviour class
// with a sampling weight.
type BranchMN struct {
	M, N   int
	Weight float64
}

// ClassWeights weights the instruction classes a phase's static code is
// built from.
type ClassWeights struct {
	Load, Store, ALU, Mul, Div, FP, SIMD, CRC, Lock, Rep float64
}

// PhaseSpec is the hidden parameter set for one compute phase of a request
// handler (e.g. "parse", "hash lookup", "serialize").
type PhaseSpec struct {
	Name           string
	MeanInstrs     int     // mean dynamic instructions per invocation
	JitterPct      float64 // uniform ± jitter on the per-invocation count
	FootprintBytes int     // static code bytes (i-cache pressure)
	Weights        ClassWeights
	BranchFrac     float64 // fraction of slots that are conditional branches
	Branches       []BranchMN
	WorkingSets    []WorkingSet
	RegularFrac    float64 // sequential (prefetch-friendly) access fraction
	PointerFrac    float64 // fraction of loads that are pointer chases
	SharedFrac     float64 // fraction of accesses to coherence-shared data
	DepChain       int     // mean register dependence chain length (≥1)
	RepBytes       int     // REP op transfer size (value copies); 0 = 256
}

// slotKind classifies a static code slot.
type slotKind uint8

const (
	slotPlain slotKind = iota
	slotMem
	slotBranch
	slotRep
)

// slot is one static instruction in a phase's code. The branch state is
// embedded by value so laying out a phase costs one slots allocation, not
// one per conditional branch.
type slot struct {
	tmpl    isa.Instr
	kind    slotKind
	bb      branch.BitmaskBranch // valid only when kind == slotBranch
	target  int                  // branch target slot
	wsIdx   int
	regular bool
}

// wsRegion is a data region instance with its sequential cursor.
type wsRegion struct {
	base   uint64
	size   uint64
	cursor uint64
}

// Phase is instantiated static code plus its mutable execution state
// (branch counters, working-set cursors). State persists across
// invocations, so profiled rates are stationary.
type Phase struct {
	spec    PhaseSpec
	slots   []slot
	regions []wsRegion
	wsPick  *stats.Categorical
	rng     *stats.Rand
	pcBase  uint64
}

// NewPhase lays out the static code for spec. codeBase/dataBase position
// the phase in its process's address space; seed fixes all construction
// randomness.
func NewPhase(spec PhaseSpec, codeBase, dataBase uint64, seed int64) *Phase {
	if spec.MeanInstrs <= 0 {
		spec.MeanInstrs = 1000
	}
	if spec.FootprintBytes < 256 {
		spec.FootprintBytes = 256
	}
	if spec.DepChain < 1 {
		spec.DepChain = 1
	}
	if spec.RepBytes <= 0 {
		spec.RepBytes = 256
	}
	if len(spec.WorkingSets) == 0 {
		spec.WorkingSets = []WorkingSet{{Bytes: 4096, Frac: 1}}
	}
	if len(spec.Branches) == 0 {
		spec.Branches = []BranchMN{{M: 1, N: 1, Weight: 1}}
	}
	ph := &Phase{spec: spec, rng: stats.NewRand(seed), pcBase: codeBase}

	base := dataBase
	wsW := make([]float64, len(spec.WorkingSets))
	for i, ws := range spec.WorkingSets {
		size := uint64(ws.Bytes)
		if size < 64 {
			size = 64
		}
		ph.regions = append(ph.regions, wsRegion{base: base, size: size})
		base += (size + 4095) &^ 4095
		wsW[i] = ws.Frac
	}
	ph.wsPick = stats.NewCategorical(wsW)

	brPick := stats.NewCategorical(weightsOf(spec.Branches))
	nSlots := spec.FootprintBytes / isa.InstrBytes
	ph.slots = make([]slot, nSlots)

	w := spec.Weights
	classes := stats.NewCategorical([]float64{
		w.Load, w.Store, w.ALU, w.Mul, w.Div, w.FP, w.SIMD, w.CRC, w.Lock, w.Rep,
	})
	chainReg := isa.R1
	for i := range ph.slots {
		s := &ph.slots[i]
		pc := codeBase + uint64(i)*isa.InstrBytes
		if ph.rng.Float64() < spec.BranchFrac {
			mn := spec.Branches[brPick.Sample(ph.rng)]
			s.kind = slotBranch
			s.bb = branch.MakeBitmaskBranch(mn.M, mn.N)
			s.bb.SetPhase(ph.rng.Uint64() % (1 << 11)) // de-align periods
			s.tmpl = isa.Instr{Op: isa.JCC, PC: pc,
				BranchID: int32(i), Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
			if ph.rng.Float64() < 0.8 {
				s.target = min(i+2+ph.rng.Intn(14), nSlots-1) // forward skip
			} else {
				s.target = max(i-8-ph.rng.Intn(24), 0) // back edge
			}
			continue
		}
		op := ph.pickOp(classes)
		f := &isa.Table[op]
		in := isa.Instr{Op: op, PC: pc, BranchID: -1,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}

		// Register assignment: continue the dependence chain with
		// probability 1-1/DepChain, otherwise rotate to a fresh register.
		if ph.rng.Float64() < 1.0/float64(spec.DepChain) {
			chainReg = isa.Reg(1 + ph.rng.Intn(7)) // r1..r7 (r8-r11 reserved)
		}
		vec := f.Operands == isa.OpXMM
		if vec {
			in.Dst = isa.X0 + isa.Reg(ph.rng.Intn(12))
			in.Src1 = in.Dst
			in.Src2 = isa.X0 + isa.Reg(ph.rng.Intn(12))
		} else {
			in.Dst = chainReg
			in.Src1 = chainReg
			in.Src2 = isa.Reg(1 + ph.rng.Intn(7))
		}

		switch {
		case f.Rep:
			s.kind = slotRep
			in.RepCount = int32(spec.RepBytes)
			in.Dst, in.Src1, in.Src2 = isa.RegNone, isa.RegNone, isa.RegNone
			s.wsIdx = ph.wsPick.Sample(ph.rng)
			s.regular = true
		case f.Load || f.Store:
			s.kind = slotMem
			s.wsIdx = ph.wsPick.Sample(ph.rng)
			s.regular = ph.rng.Float64() < spec.RegularFrac
			if f.Load && !f.Store && ph.rng.Float64() < spec.PointerFrac {
				in.Op = isa.MOVptr
				in.Dst, in.Src1, in.Src2 = isa.R11, isa.R11, isa.RegNone
			} else if f.Load {
				in.Src1 = isa.R10
			} else {
				in.Dst = isa.RegNone // store
			}
			in.Shared = ph.rng.Float64() < spec.SharedFrac
		default:
			s.kind = slotPlain
			if f.Store {
				in.Dst = isa.RegNone
			}
		}
		s.tmpl = in
	}
	return ph
}

// weightsOf extracts branch weights.
func weightsOf(bs []BranchMN) []float64 {
	w := make([]float64, len(bs))
	for i, b := range bs {
		w[i] = b.Weight
	}
	return w
}

// pickOp samples a concrete opcode for a class choice.
func (ph *Phase) pickOp(classes *stats.Categorical) isa.Op {
	r := ph.rng
	switch classes.Sample(r) {
	case 0: // load
		return pick(r, isa.MOVload, isa.MOVload, isa.MOVload, isa.MOVZXload,
			isa.ADDload, isa.CMPload, isa.MOVAPSload)
	case 1: // store
		return pick(r, isa.MOVstore, isa.MOVstore, isa.MOVstore, isa.MOVAPSstore)
	case 2: // alu
		return pick(r, isa.ADDrr, isa.SUBrr, isa.ANDrr, isa.ORrr, isa.XORrr,
			isa.CMPrr, isa.TESTri, isa.SHLri, isa.SHRri, isa.LEA, isa.MOVrr,
			isa.MOVri, isa.INCr, isa.DECr)
	case 3: // mul
		return pick(r, isa.IMULrr, isa.IMULrr, isa.MULr)
	case 4: // div
		return pick(r, isa.DIVr, isa.IDIVr)
	case 5: // fp
		return pick(r, isa.ADDSDxx, isa.MULSDxx, isa.SUBSDxx, isa.CVTSI2SD,
			isa.COMISDxx, isa.DIVSDxx)
	case 6: // simd
		return pick(r, isa.PADDDxx, isa.PXORxx, isa.PANDxx, isa.PSUBDxx,
			isa.PMULLDxx, isa.PSHUFBxx, isa.POPCNTrr)
	case 7:
		return isa.CRC32rr
	case 8: // lock
		return pick(r, isa.LOCKADD, isa.LOCKXADD, isa.LOCKCMPXCHG, isa.LOCKDEC)
	default: // rep
		return pick(r, isa.REPMOVSB, isa.REPMOVSB, isa.REPSTOSB)
	}
}

func pick(r *stats.Rand, ops ...isa.Op) isa.Op { return ops[r.Intn(len(ops))] }

// Emit appends one invocation's dynamic stream to buf and returns it. The
// scale multiplies the instruction budget (load-dependent work).
func (ph *Phase) Emit(buf []isa.Instr, scale float64) []isa.Instr {
	target := float64(ph.spec.MeanInstrs) * scale
	if j := ph.spec.JitterPct; j > 0 {
		target *= 1 + (ph.rng.Float64()*2-1)*j
	}
	n := int(target)
	if n < 1 {
		n = 1
	}
	i := 0
	for emitted := 0; emitted < n; emitted++ {
		s := &ph.slots[i]
		in := s.tmpl
		next := i + 1
		switch s.kind {
		case slotBranch:
			taken := s.bb.Next()
			in.Taken = taken
			if taken {
				next = s.target
			}
		case slotMem, slotRep:
			in.Addr = ph.address(s)
		}
		buf = append(buf, in)
		if next >= len(ph.slots) {
			next = 0
		}
		i = next
	}
	return buf
}

// address produces the next data address for a memory slot.
func (ph *Phase) address(s *slot) uint64 {
	r := &ph.regions[s.wsIdx]
	if s.regular {
		r.cursor += isa.LineBytes
		if r.cursor >= r.size {
			r.cursor = 0
		}
		return r.base + r.cursor
	}
	off := (ph.rng.Uint64() % r.size) &^ 7
	return r.base + off
}

// Spec returns the phase's hidden parameters (used only by tests and by the
// ground-truth debugging tools, never by the Ditto pipeline).
func (ph *Phase) Spec() PhaseSpec { return ph.spec }

// CodeBase returns the phase's code base address.
func (ph *Phase) CodeBase() uint64 { return ph.pcBase }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
