package app

import (
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// MongoDB models the document store of §6.1.2: a blocking
// thread-per-connection network model (its thread count scales with
// connections, as the paper notes), a B-tree index walk, and a pread of the
// record region from a 40GB dataset driven by a uniform YCSB workload —
// which misses the page cache most of the time and makes the service
// disk-bound.
type MongoDB struct {
	Base
	DatasetBytes int64
	ReadBytes    int
	RespBytes    int

	parse, btree, serialize *Phase
	offRng                  *stats.Rand
	file                    *kernel.File
	streams                 *StreamCache
}

// MongoDB stream-cache kinds: the pre-I/O segment (parse + B-tree walk) and
// the post-I/O serialization.
const (
	mongoPre  = 0
	mongoPost = 1
)

// NewMongoDB builds a MongoDB instance with its 40GB dataset.
func NewMongoDB(m *platform.Machine, port int, seed int64) *MongoDB {
	db := &MongoDB{Base: newBase("mongodb", m, port, seed),
		DatasetBytes: 40 << 30, ReadBytes: 40 << 10, RespBytes: 4096,
		offRng: stats.NewRand(seed + 77)}
	code := db.P.MemBase
	data := db.P.MemBase + 1<<30
	db.parse = NewPhase(PhaseSpec{
		Name: "bson-parse", MeanInstrs: 1400, JitterPct: 0.25, FootprintBytes: 40 << 10,
		Weights:    ClassWeights{Load: 0.25, Store: 0.1, ALU: 0.52, Mul: 0.02, SIMD: 0.06, CRC: 0.05},
		BranchFrac: 0.16,
		Branches: []BranchMN{{M: 1, N: 1, Weight: 0.3}, {M: 1, N: 3, Weight: 0.4},
			{M: 3, N: 5, Weight: 0.3}},
		WorkingSets: []WorkingSet{{Bytes: 32 << 10, Frac: 0.7}, {Bytes: 1 << 20, Frac: 0.3}},
		RegularFrac: 0.45, DepChain: 2,
	}, code, data, seed)
	db.btree = NewPhase(PhaseSpec{
		Name: "btree-walk", MeanInstrs: 2400, JitterPct: 0.3, FootprintBytes: 48 << 10,
		Weights:    ClassWeights{Load: 0.34, Store: 0.06, ALU: 0.48, Mul: 0.03, FP: 0.02, SIMD: 0.04, Lock: 0.03},
		BranchFrac: 0.14,
		Branches: []BranchMN{{M: 1, N: 1, Weight: 0.45}, {M: 2, N: 3, Weight: 0.35},
			{M: 4, N: 6, Weight: 0.2}},
		WorkingSets: []WorkingSet{
			{Bytes: 256 << 10, Frac: 0.4},  // upper index levels
			{Bytes: 8 << 20, Frac: 0.35},   // mid levels
			{Bytes: 192 << 20, Frac: 0.25}, // leaf cache
		},
		RegularFrac: 0.15, PointerFrac: 0.3, SharedFrac: 0.08, DepChain: 2,
	}, code+1<<20, data+1<<28, seed+1)
	db.serialize = NewPhase(PhaseSpec{
		Name: "serialize", MeanInstrs: 800, JitterPct: 0.15, FootprintBytes: 20 << 10,
		Weights:     ClassWeights{Load: 0.2, Store: 0.16, ALU: 0.5, SIMD: 0.04, Rep: 0.1},
		BranchFrac:  0.1,
		WorkingSets: []WorkingSet{{Bytes: 512 << 10, Frac: 1}},
		RegularFrac: 0.8, DepChain: 2, RepBytes: 4096,
	}, code+2<<20, data+2<<29, seed+2)
	db.streams = NewPhaseChainCache(map[int][]*Phase{
		mongoPre:  {db.parse, db.btree},
		mongoPost: {db.serialize},
	})
	return db
}

// Start creates the dataset file and launches the acceptor.
func (db *MongoDB) Start() {
	db.file = db.M.Kernel.CreateFile("/data/db/collection-0.wt", db.DatasetBytes)
	db.P.Spawn("acceptor", func(th *kernel.Thread) {
		l := th.Listen(db.ListenPort)
		ConnPerThreadLoop(th, l, db.handle)
	})
}

// handle serves one YCSB read: parse, index walk, pread at a uniformly
// random offset, serialize, respond.
func (db *MongoDB) handle(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg) {
	th.RunTrace(db.streams.Next(mongoPre))

	maxOff := db.DatasetBytes - int64(db.ReadBytes)
	off := db.offRng.Int63n(maxOff/kernel.PageBytes) * kernel.PageBytes
	fd := th.Open(db.file.Name)
	th.Pread(fd, db.ReadBytes, off)
	th.CloseFD(fd)

	th.RunTrace(db.streams.Next(mongoPost))
	echo(th, conn, msg, db.RespBytes)
}
