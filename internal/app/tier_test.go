package app

import (
	"math"
	"testing"

	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// twoTierFixture wires parent → child with a probabilistic edge.
type twoTierFixture struct {
	eng           *sim.Engine
	m             *platform.Machine
	parent, child *Tier
	collector     *dtrace.Collector
}

type mapRegistry map[string]*Tier

func (r mapRegistry) Lookup(name string) (*kernel.Kernel, int) {
	t := r[name]
	return t.M.Kernel, t.Cfg.Port
}

func newTwoTier(t *testing.T, prob float64) *twoTierFixture {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	m := platform.NewMachine(eng, "m", platform.A(), platform.WithCoreCount(8))
	cl.Add(m)
	collector := dtrace.NewCollector(1)
	reg := mapRegistry{}
	child := NewTier(m, TierConfig{Name: "child", Port: 9001, Model: "epoll",
		RespBytes: 256, Seed: 2}, nil)
	child.Registry = reg
	child.Collector = collector
	parent := NewTier(m, TierConfig{Name: "parent", Port: 9000, Model: "pool",
		RespBytes: 512, Seed: 1,
		Calls: map[int][]Call{0: {{Target: "child", Prob: prob, ReqBytes: 128, RespBytes: 256}}},
	}, nil)
	parent.Registry = reg
	parent.Collector = collector
	reg["child"] = child
	reg["parent"] = parent
	child.Start()
	parent.Start()
	return &twoTierFixture{eng: eng, m: m, parent: parent, child: child, collector: collector}
}

func (f *twoTierFixture) drive(n int) {
	cp := f.m.Kernel.NewProc("cli")
	cp.Spawn("cli", func(th *kernel.Thread) {
		conn := th.Connect(f.m.Kernel, 9000)
		for i := 0; i < n; i++ {
			th.Send(conn, 64, &Request{Kind: 0, SentAt: th.Now()})
			th.Recv(conn)
		}
	})
	f.eng.RunUntil(30 * sim.Second)
}

func (f *twoTierFixture) shutdown() {
	f.m.Kernel.Stop()
	f.eng.Run()
}

func TestTierProbabilisticEdge(t *testing.T) {
	f := newTwoTier(t, 0.3)
	f.drive(300)
	defer f.shutdown()
	spans := f.collector.Spans()
	var parents, children int
	for _, s := range spans {
		switch s.Service {
		case "parent":
			parents++
		case "child":
			children++
		}
	}
	if parents != 300 {
		t.Fatalf("parent spans = %d", parents)
	}
	frac := float64(children) / float64(parents)
	if math.Abs(frac-0.3) > 0.07 {
		t.Fatalf("edge rate = %v, want ≈ 0.3", frac)
	}
}

func TestTierAlwaysEdgeAndSpanNesting(t *testing.T) {
	f := newTwoTier(t, 1.0)
	f.drive(50)
	defer f.shutdown()
	spans := f.collector.Spans()
	byID := map[dtrace.SpanID]dtrace.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	checked := 0
	for _, s := range spans {
		if s.Service != "child" {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok || p.Service != "parent" {
			t.Fatalf("child span without parent link: %+v", s)
		}
		if s.Start < p.Start || s.End > p.End {
			t.Fatalf("child span not nested: child=[%v,%v] parent=[%v,%v]",
				s.Start, s.End, p.Start, p.End)
		}
		checked++
	}
	if checked != 50 {
		t.Fatalf("child spans = %d", checked)
	}
	// Graph reconstruction sees the single edge with probability 1.
	g := dtrace.BuildGraph(spans)
	out := g.Out("parent")
	if len(out) != 1 || math.Abs(out[0].Prob-1) > 1e-9 {
		t.Fatalf("edges = %+v", out)
	}
	if !g.IsAcyclic() {
		t.Fatal("graph should be acyclic")
	}
}

func TestSocialNetworkTopologyIsDAG(t *testing.T) {
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	m := platform.NewMachine(eng, "m", platform.A(), platform.WithCoreCount(16))
	cl.Add(m)
	sn := NewSocialNetwork(func(string) *platform.Machine { return m }, 9000, 3)
	sn.Start()
	cp := m.Kernel.NewProc("cli")
	kinds := []int{KindComposePost, KindReadHomeTimeline, KindReadUserTimeline}
	cp.Spawn("cli", func(th *kernel.Thread) {
		conn := th.Connect(m.Kernel, sn.Port())
		for i := 0; i < 30; i++ {
			th.Send(conn, 128, &Request{Kind: kinds[i%3], SentAt: th.Now()})
			th.Recv(conn)
		}
	})
	eng.RunUntil(60 * sim.Second)
	g := dtrace.BuildGraph(sn.Collector.Spans())
	if !g.IsAcyclic() {
		t.Fatal("social network must be a DAG (§4.2)")
	}
	if len(g.Services) < 10 {
		t.Fatalf("services observed = %d", len(g.Services))
	}
	if len(g.Roots) != 1 || g.Roots[0] != FrontendName {
		t.Fatalf("roots = %v", g.Roots)
	}
	m.Kernel.Stop()
	eng.Run()
}

func TestKindNames(t *testing.T) {
	if kindName(KindComposePost) != "compose-post" || kindName(99) != "op" {
		t.Fatal("kind names wrong")
	}
}
