package app

import (
	"testing"

	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// drive sends n requests at the app through a closed loop of conns client
// threads on a separate machine and returns mean latency in ms.
func drive(t *testing.T, build func(m *platform.Machine) App, conns, n int) (float64, *kernel.Proc) {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	server := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(8))
	client := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(8))
	cl.Add(server)
	cl.Add(client)

	a := build(server)
	a.Start()

	cp := client.Kernel.NewProc("client")
	done := 0
	var totalLat sim.Time
	for c := 0; c < conns; c++ {
		cp.Spawn("cli", func(th *kernel.Thread) {
			th.Sleep(sim.Millisecond)
			conn := th.Connect(server.Kernel, a.Port())
			for i := 0; i < n/conns; i++ {
				req := &Request{Kind: KindReadHomeTimeline, SentAt: th.Now()}
				th.Send(conn, 64, req)
				msg := th.Recv(conn)
				got := msg.Payload.(*Request)
				totalLat += th.Now() - got.SentAt
				done++
			}
		})
	}
	eng.RunUntil(20 * sim.Second)
	if done != n/conns*conns {
		t.Fatalf("completed %d of %d requests", done, n)
	}
	server.Kernel.Stop()
	client.Kernel.Stop()
	eng.Run()
	return (totalLat / sim.Time(done)).Millis(), a.Proc()
}

func TestMemcachedServes(t *testing.T) {
	lat, proc := drive(t, func(m *platform.Machine) App {
		return NewMemcached(m, 11211, 42)
	}, 4, 80)
	if lat <= 0 || lat > 5 {
		t.Fatalf("memcached mean latency = %vms", lat)
	}
	if proc.Counters.Instrs == 0 || proc.Counters.KernelInstrs == 0 {
		t.Fatal("no instructions attributed")
	}
	ks := proc.Counters.KernelShare()
	if ks < 0.3 || ks > 0.95 {
		t.Fatalf("memcached kernel share = %v, want substantial (networked service)", ks)
	}
	if proc.NetTxBytes == 0 {
		t.Fatal("no network bytes")
	}
	if proc.SpawnedThreads() != 5 {
		t.Fatalf("memcached threads = %d, want dispatcher + 4 workers", proc.SpawnedThreads())
	}
}

func TestNginxServes(t *testing.T) {
	lat, proc := drive(t, func(m *platform.Machine) App {
		return NewNginx(m, 80, 43)
	}, 2, 40)
	if lat <= 0 || lat > 10 {
		t.Fatalf("nginx mean latency = %vms", lat)
	}
	// Static content is warm: no disk reads.
	if proc.DiskReadBytes != 0 {
		t.Fatalf("nginx should serve from page cache, read %d bytes", proc.DiskReadBytes)
	}
	if proc.SpawnedThreads() != 1 {
		t.Fatalf("nginx workers = %d, want 1", proc.SpawnedThreads())
	}
}

func TestMongoDBDiskBound(t *testing.T) {
	lat, proc := drive(t, func(m *platform.Machine) App {
		return NewMongoDB(m, 27017, 44)
	}, 2, 30)
	if proc.DiskReadBytes == 0 {
		t.Fatal("mongodb should read from disk (40GB uniform >> page cache)")
	}
	// SSD random read ≈ 160µs for 40KB: latency well above memcached's.
	if lat < 0.1 {
		t.Fatalf("mongodb latency = %vms, suspiciously fast for disk I/O", lat)
	}
	// Thread-per-connection: acceptor + 2 conn workers.
	if proc.SpawnedThreads() != 3 {
		t.Fatalf("mongodb threads = %d, want 3", proc.SpawnedThreads())
	}
}

func TestRedisSingleThreaded(t *testing.T) {
	lat, proc := drive(t, func(m *platform.Machine) App {
		return NewRedis(m, 6379, 45)
	}, 4, 60)
	if lat <= 0 || lat > 5 {
		t.Fatalf("redis mean latency = %vms", lat)
	}
	if proc.SpawnedThreads() != 1 {
		t.Fatalf("redis threads = %d, want 1", proc.SpawnedThreads())
	}
}

func TestSocialNetworkEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	machines := []*platform.Machine{
		platform.NewMachine(eng, "node0", platform.A(), platform.WithCoreCount(8)),
		platform.NewMachine(eng, "node1", platform.A(), platform.WithCoreCount(8)),
	}
	client := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(4))
	for _, m := range machines {
		cl.Add(m)
	}
	cl.Add(client)

	i := 0
	sn := NewSocialNetwork(func(string) *platform.Machine {
		i++
		return machines[i%2]
	}, 9000, 46)
	sn.Start()

	cp := client.Kernel.NewProc("wrk2")
	kinds := []int{KindComposePost, KindReadHomeTimeline, KindReadUserTimeline}
	done := 0
	var maxLat sim.Time
	cp.Spawn("cli", func(th *kernel.Thread) {
		th.Sleep(2 * sim.Millisecond)
		conn := th.Connect(sn.Frontend.M.Kernel, sn.Port())
		for r := 0; r < 15; r++ {
			req := &Request{Kind: kinds[r%3], SentAt: th.Now()}
			th.Send(conn, 128, req)
			msg := th.Recv(conn)
			lat := th.Now() - msg.Payload.(*Request).SentAt
			if lat > maxLat {
				maxLat = lat
			}
			done++
		}
	})
	eng.RunUntil(30 * sim.Second)
	if done != 15 {
		t.Fatalf("completed %d requests", done)
	}
	if maxLat <= 0 || maxLat > sim.Second {
		t.Fatalf("max latency = %v", maxLat)
	}

	// Traces were collected; topology must reconstruct as an acyclic graph
	// containing the key tiers.
	spans := sn.Collector.Spans()
	if len(spans) < 15 {
		t.Fatalf("collected %d spans", len(spans))
	}
	// text-service and social-graph-service must have executed work.
	if sn.Tier("text-service").Proc().Counters.Instrs == 0 {
		t.Fatal("text-service idle")
	}
	if sn.Tier("social-graph-service").Proc().Counters.Instrs == 0 {
		t.Fatal("social-graph-service idle")
	}
	// Storage tiers performed disk I/O.
	if sn.Tier("post-storage-mongodb").Proc().DiskReadBytes == 0 {
		t.Fatal("post-storage-mongodb did no disk I/O")
	}
	for _, m := range machines {
		m.Kernel.Stop()
	}
	client.Kernel.Stop()
	eng.Run()
}

func TestKVWritePaths(t *testing.T) {
	// Kind 1 = SET for memcached and redis: small acknowledgement instead
	// of a value transfer.
	for _, tc := range []struct {
		name  string
		build func(m *platform.Machine) App
	}{
		{"memcached", func(m *platform.Machine) App { return NewMemcached(m, 11211, 91) }},
		{"redis", func(m *platform.Machine) App { return NewRedis(m, 6379, 92) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			cl := platform.NewCluster(eng, 100*sim.Microsecond)
			srv := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(4))
			cli := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(4))
			cl.Add(srv)
			cl.Add(cli)
			a := tc.build(srv)
			a.Start()
			cp := cli.Kernel.NewProc("c")
			var getBytes, setBytes int
			cp.Spawn("cli", func(th *kernel.Thread) {
				conn := th.Connect(srv.Kernel, a.Port())
				th.Send(conn, 64, &Request{Kind: 0, SentAt: th.Now()})
				getBytes = th.Recv(conn).Bytes
				th.Send(conn, 4096, &Request{Kind: 1, SentAt: th.Now()})
				setBytes = th.Recv(conn).Bytes
			})
			eng.RunUntil(5 * sim.Second)
			if getBytes == 0 || setBytes == 0 {
				t.Fatalf("no responses: get=%d set=%d", getBytes, setBytes)
			}
			if setBytes >= getBytes {
				t.Fatalf("SET ack (%dB) should be smaller than GET value (%dB)", setBytes, getBytes)
			}
			srv.Kernel.Stop()
			cli.Kernel.Stop()
			eng.Run()
		})
	}
}
