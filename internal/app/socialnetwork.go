package app

import (
	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// SocialNetwork is the DeathStarBench-style microservice topology of
// §6.1.2: a frontend plus ~15 dependent tiers (logic, text, graph, cache
// and storage services) composed over the socfb-Reed98-sized social graph
// (962 users, 18.8K follow edges). TextService and SocialGraphService are
// the two tiers the paper plots individually in Fig. 5.
type SocialNetwork struct {
	Tiers     map[string]*Tier
	Order     []string // tier names in construction order
	Frontend  *Tier
	Collector *dtrace.Collector
}

// Graph constants for the socfb-Reed98 dataset.
const (
	SocialUsers = 962
	SocialEdges = 18812
)

// FrontendName is the entry tier's name.
const FrontendName = "nginx-thrift"

// Lookup implements Registry.
func (sn *SocialNetwork) Lookup(name string) (*kernel.Kernel, int) {
	t := sn.Tiers[name]
	return t.M.Kernel, t.Cfg.Port
}

// Tier returns a tier by name (nil if absent).
func (sn *SocialNetwork) Tier(name string) *Tier { return sn.Tiers[name] }

// Start launches every tier.
func (sn *SocialNetwork) Start() {
	for _, name := range sn.Order {
		sn.Tiers[name].Start()
	}
}

// Port returns the frontend port.
func (sn *SocialNetwork) Port() int { return sn.Frontend.Cfg.Port }

// NewSocialNetwork assembles the topology. place maps a tier name to the
// machine it deploys on (one replica per tier); basePort spaces listen
// ports; seed fixes all hidden parameters.
func NewSocialNetwork(place func(tier string) *platform.Machine, basePort int, seed int64) *SocialNetwork {
	sn := &SocialNetwork{Tiers: map[string]*Tier{}, Collector: dtrace.NewCollector(1)}

	type tierDef struct {
		name  string
		model string
		arch  string // phase archetype
		resp  int
		calls map[int][]Call
	}
	defs := []tierDef{
		{name: FrontendName, model: "pool", arch: "frontend", resp: 1024, calls: map[int][]Call{
			KindComposePost:      {{Target: "compose-post-service", Prob: 1, ReqBytes: 512, RespBytes: 256}},
			KindReadHomeTimeline: {{Target: "home-timeline-service", Prob: 1, ReqBytes: 256, RespBytes: 4096}},
			KindReadUserTimeline: {{Target: "user-timeline-service", Prob: 1, ReqBytes: 256, RespBytes: 4096}},
		}},
		{name: "compose-post-service", model: "pool", arch: "logic", resp: 256, calls: map[int][]Call{
			KindComposePost: {
				{Target: "unique-id-service", Prob: 1, ReqBytes: 128, RespBytes: 64},
				{Target: "text-service", Prob: 1, ReqBytes: 512, RespBytes: 256},
				{Target: "user-service", Prob: 1, ReqBytes: 128, RespBytes: 128},
				{Target: "media-service", Prob: 0.3, ReqBytes: 256, RespBytes: 128},
				{Target: "post-storage-service", Prob: 1, ReqBytes: 1024, RespBytes: 64},
				{Target: "user-timeline-service", Prob: 1, ReqBytes: 256, RespBytes: 64},
				{Target: "home-timeline-service", Prob: 1, ReqBytes: 256, RespBytes: 64},
			},
		}},
		{name: "text-service", model: "epoll", arch: "text", resp: 256, calls: map[int][]Call{
			KindComposePost: {
				{Target: "url-shorten-service", Prob: 0.4, ReqBytes: 256, RespBytes: 128},
				{Target: "user-mention-service", Prob: 0.6, ReqBytes: 256, RespBytes: 128},
			},
		}},
		{name: "home-timeline-service", model: "pool", arch: "logic", resp: 4096, calls: map[int][]Call{
			KindComposePost: {
				{Target: "social-graph-service", Prob: 1, ReqBytes: 128, RespBytes: 1024},
			},
			KindReadHomeTimeline: {
				{Target: "social-graph-service", Prob: 1, ReqBytes: 128, RespBytes: 1024},
				{Target: "post-storage-service", Prob: 1, ReqBytes: 256, RespBytes: 4096},
			},
		}},
		{name: "user-timeline-service", model: "pool", arch: "logic", resp: 4096, calls: map[int][]Call{
			KindComposePost:      {{Target: "post-storage-service", Prob: 0.5, ReqBytes: 512, RespBytes: 64}},
			KindReadUserTimeline: {{Target: "post-storage-service", Prob: 1, ReqBytes: 256, RespBytes: 4096}},
		}},
		{name: "social-graph-service", model: "epoll", arch: "graph", resp: 1024, calls: map[int][]Call{
			KindComposePost: {
				{Target: "social-graph-redis", Prob: 1, ReqBytes: 128, RespBytes: 512},
			},
			KindReadHomeTimeline: {
				{Target: "social-graph-redis", Prob: 1, ReqBytes: 128, RespBytes: 512},
				{Target: "social-graph-mongodb", Prob: 0.25, ReqBytes: 256, RespBytes: 1024},
			},
		}},
		{name: "post-storage-service", model: "epoll", arch: "logic", resp: 4096, calls: map[int][]Call{
			KindComposePost: {
				{Target: "post-storage-memcached", Prob: 1, ReqBytes: 1024, RespBytes: 64},
				{Target: "post-storage-mongodb", Prob: 1, ReqBytes: 1024, RespBytes: 64},
			},
			KindReadHomeTimeline: {
				{Target: "post-storage-memcached", Prob: 1, ReqBytes: 256, RespBytes: 4096},
				{Target: "post-storage-mongodb", Prob: 0.35, ReqBytes: 256, RespBytes: 4096},
			},
			KindReadUserTimeline: {
				{Target: "post-storage-memcached", Prob: 1, ReqBytes: 256, RespBytes: 4096},
				{Target: "post-storage-mongodb", Prob: 0.35, ReqBytes: 256, RespBytes: 4096},
			},
		}},
		{name: "unique-id-service", model: "epoll", arch: "logic", resp: 64},
		{name: "user-service", model: "epoll", arch: "logic", resp: 128},
		{name: "media-service", model: "epoll", arch: "logic", resp: 128},
		{name: "url-shorten-service", model: "epoll", arch: "text", resp: 128},
		{name: "user-mention-service", model: "epoll", arch: "text", resp: 128},
		{name: "post-storage-memcached", model: "epoll", arch: "cache", resp: 4096},
		{name: "post-storage-mongodb", model: "pool", arch: "store", resp: 4096},
		{name: "social-graph-redis", model: "epoll", arch: "cache", resp: 512},
		{name: "social-graph-mongodb", model: "pool", arch: "store", resp: 1024},
	}

	for i, d := range defs {
		m := place(d.name)
		cfg := TierConfig{Name: d.name, Port: basePort + i, Model: d.model,
			RespBytes: d.resp, Calls: d.calls, Seed: seed + int64(i)*1000}
		t := NewTier(m, cfg, nil)
		t.Body = archetypeBody(d.arch, t.P.MemBase, cfg.Seed)
		t.Registry = sn
		t.Collector = sn.Collector
		if d.arch == "store" {
			attachStoreIO(t, 4<<30, 16<<10, cfg.Seed)
		}
		sn.Tiers[d.name] = t
		sn.Order = append(sn.Order, d.name)
	}
	sn.Frontend = sn.Tiers[FrontendName]
	return sn
}

// attachStoreIO gives a storage tier a dataset file and a per-request pread
// at a random offset.
func attachStoreIO(t *Tier, datasetBytes int64, readBytes int, seed int64) {
	file := t.M.Kernel.CreateFile("/data/"+t.Cfg.Name+".wt", datasetBytes)
	rng := stats.NewRand(seed + 31)
	t.PostWork = func(th *kernel.Thread, kind int) {
		off := rng.Int63n(datasetBytes/kernel.PageBytes-16) * kernel.PageBytes
		fd := th.Open(file.Name)
		th.Pread(fd, readBytes, off)
		th.CloseFD(fd)
	}
}

// archetypeBody builds the hidden-parameter body for one tier archetype.
func archetypeBody(arch string, memBase uint64, seed int64) Body {
	code := memBase
	data := memBase + 1<<30
	mk := func(spec PhaseSpec, off uint64, s int64) *Phase {
		return NewPhase(spec, code+off<<20, data+off<<26, seed+s)
	}
	switch arch {
	case "frontend":
		return &PhaseBody{Phases: []*Phase{
			mk(PhaseSpec{Name: "http", MeanInstrs: 900, JitterPct: 0.2, FootprintBytes: 48 << 10,
				Weights:     ClassWeights{Load: 0.24, Store: 0.08, ALU: 0.56, SIMD: 0.07, CRC: 0.05},
				BranchFrac:  0.19,
				Branches:    []BranchMN{{M: 1, N: 1, Weight: 0.3}, {M: 1, N: 3, Weight: 0.4}, {M: 3, N: 5, Weight: 0.3}},
				WorkingSets: []WorkingSet{{Bytes: 24 << 10, Frac: 0.6}, {Bytes: 1 << 20, Frac: 0.4}},
				RegularFrac: 0.4, DepChain: 2}, 0, 0),
		}}
	case "text":
		// TextService: tokenization and url/mention scanning — string ops,
		// CRC hashing, SIMD compares, hot small working set (high IPC tier).
		return &PhaseBody{Phases: []*Phase{
			mk(PhaseSpec{Name: "tokenize", MeanInstrs: 1100, JitterPct: 0.25, FootprintBytes: 18 << 10,
				Weights:     ClassWeights{Load: 0.2, Store: 0.08, ALU: 0.5, SIMD: 0.12, CRC: 0.07, Rep: 0.03},
				BranchFrac:  0.16,
				Branches:    []BranchMN{{M: 1, N: 2, Weight: 0.5}, {M: 2, N: 4, Weight: 0.5}},
				WorkingSets: []WorkingSet{{Bytes: 12 << 10, Frac: 0.7}, {Bytes: 256 << 10, Frac: 0.3}},
				RegularFrac: 0.65, DepChain: 3, RepBytes: 512}, 0, 0),
		}}
	case "graph":
		// SocialGraphService: adjacency walks over the Reed98 graph —
		// pointer chasing over a compact edge set (low LLC miss, high IPC).
		edgeBytes := SocialEdges * 16
		return &PhaseBody{Phases: []*Phase{
			mk(PhaseSpec{Name: "graph-walk", MeanInstrs: 950, JitterPct: 0.3, FootprintBytes: 14 << 10,
				Weights:    ClassWeights{Load: 0.34, Store: 0.05, ALU: 0.52, Mul: 0.02, SIMD: 0.04, Lock: 0.03},
				BranchFrac: 0.13,
				Branches:   []BranchMN{{M: 1, N: 1, Weight: 0.45}, {M: 2, N: 3, Weight: 0.55}},
				WorkingSets: []WorkingSet{
					{Bytes: SocialUsers * 64, Frac: 0.4},
					{Bytes: edgeBytes, Frac: 0.6}},
				RegularFrac: 0.25, PointerFrac: 0.3, SharedFrac: 0.06, DepChain: 2}, 0, 0),
		}}
	case "cache":
		return &PhaseBody{Phases: []*Phase{
			mk(PhaseSpec{Name: "kv", MeanInstrs: 800, JitterPct: 0.2, FootprintBytes: 16 << 10,
				Weights:     ClassWeights{Load: 0.3, Store: 0.08, ALU: 0.48, SIMD: 0.04, CRC: 0.04, Lock: 0.01, Rep: 0.05},
				BranchFrac:  0.12,
				Branches:    []BranchMN{{M: 1, N: 1, Weight: 0.4}, {M: 1, N: 4, Weight: 0.3}, {M: 3, N: 4, Weight: 0.3}},
				WorkingSets: []WorkingSet{{Bytes: 64 << 10, Frac: 0.4}, {Bytes: 48 << 20, Frac: 0.6}},
				RegularFrac: 0.3, PointerFrac: 0.15, DepChain: 2, RepBytes: 2048}, 0, 0),
		}}
	case "store":
		return &PhaseBody{Phases: []*Phase{
			mk(PhaseSpec{Name: "query", MeanInstrs: 1300, JitterPct: 0.25, FootprintBytes: 36 << 10,
				Weights:    ClassWeights{Load: 0.3, Store: 0.08, ALU: 0.5, Mul: 0.02, SIMD: 0.05, Lock: 0.02, Rep: 0.03},
				BranchFrac: 0.15,
				Branches:   []BranchMN{{M: 1, N: 1, Weight: 0.4}, {M: 2, N: 3, Weight: 0.4}, {M: 4, N: 6, Weight: 0.2}},
				WorkingSets: []WorkingSet{{Bytes: 128 << 10, Frac: 0.45},
					{Bytes: 16 << 20, Frac: 0.35}, {Bytes: 128 << 20, Frac: 0.2}},
				RegularFrac: 0.2, PointerFrac: 0.25, SharedFrac: 0.05, DepChain: 2, RepBytes: 4096}, 0, 0),
		}}
	default: // logic
		return &PhaseBody{Phases: []*Phase{
			mk(PhaseSpec{Name: "logic", MeanInstrs: 700, JitterPct: 0.2, FootprintBytes: 24 << 10,
				Weights:     ClassWeights{Load: 0.24, Store: 0.08, ALU: 0.55, Mul: 0.02, FP: 0.02, SIMD: 0.05, CRC: 0.04},
				BranchFrac:  0.15,
				Branches:    []BranchMN{{M: 1, N: 2, Weight: 0.5}, {M: 2, N: 4, Weight: 0.3}, {M: 4, N: 5, Weight: 0.2}},
				WorkingSets: []WorkingSet{{Bytes: 32 << 10, Frac: 0.6}, {Bytes: 2 << 20, Frac: 0.4}},
				RegularFrac: 0.35, DepChain: 2}, 0, 0),
		}}
	}
}
