package app

import (
	"fmt"

	"ditto/internal/kernel"
	"ditto/internal/platform"
)

// Memcached models the in-memory key-value cache of §6.1.2: an
// I/O-multiplexing network model with one dispatcher and a fixed pool of
// worker threads (built with four workers, as the paper deploys it), a hash
// lookup over a 10K-item × 4KB store, and a value copy on the response
// path. Multi-threading shows up as lock-prefixed ops and shared-data
// accesses in the body.
type Memcached struct {
	Base
	Workers    int
	ValueBytes int

	parse, lookup, respond []*Phase // per worker
	insert                 []*Phase // per worker, SET path
	streams                []*StreamCache
}

// Request kinds Memcached understands.
const (
	MemcachedGet = 0
	MemcachedSet = 1
)

// NewMemcached builds a Memcached instance on m with the paper's four
// worker threads.
func NewMemcached(m *platform.Machine, port int, seed int64) *Memcached {
	return NewMemcachedN(m, port, 4, seed)
}

// NewMemcachedN builds a Memcached instance with a custom worker-pool size
// (the core-scaling study of Fig. 11 deploys a wider pool).
func NewMemcachedN(m *platform.Machine, port, workers int, seed int64) *Memcached {
	mc := &Memcached{Base: newBase("memcached", m, port, seed), Workers: workers, ValueBytes: 4096}
	storeBytes := 10_000 * (mc.ValueBytes + 128) // items + headers
	for w := 0; w < mc.Workers; w++ {
		code := mc.P.MemBase + uint64(w)<<24
		data := mc.P.MemBase + 1<<30
		s := seed + int64(w)*101
		mc.parse = append(mc.parse, NewPhase(PhaseSpec{
			Name: "parse", MeanInstrs: 420, JitterPct: 0.15, FootprintBytes: 8 << 10,
			Weights:     ClassWeights{Load: 0.22, Store: 0.06, ALU: 0.62, SIMD: 0.05, CRC: 0.05},
			BranchFrac:  0.17,
			Branches:    []BranchMN{{M: 1, N: 2, Weight: 0.5}, {M: 2, N: 3, Weight: 0.3}, {M: 4, N: 5, Weight: 0.2}},
			WorkingSets: []WorkingSet{{Bytes: 8 << 10, Frac: 1}},
			RegularFrac: 0.5, DepChain: 3,
		}, code, data, s))
		mc.lookup = append(mc.lookup, NewPhase(PhaseSpec{
			Name: "lookup", MeanInstrs: 950, JitterPct: 0.2, FootprintBytes: 20 << 10,
			Weights:    ClassWeights{Load: 0.30, Store: 0.08, ALU: 0.50, Mul: 0.02, SIMD: 0.04, Lock: 0.015, CRC: 0.045},
			BranchFrac: 0.12,
			Branches:   []BranchMN{{M: 1, N: 1, Weight: 0.35}, {M: 1, N: 4, Weight: 0.35}, {M: 3, N: 4, Weight: 0.3}},
			WorkingSets: []WorkingSet{
				{Bytes: 64 << 10, Frac: 0.35},  // hot metadata
				{Bytes: 4 << 20, Frac: 0.35},   // hash table
				{Bytes: storeBytes, Frac: 0.3}, // item store
			},
			RegularFrac: 0.25, PointerFrac: 0.18, SharedFrac: 0.12, DepChain: 2,
		}, code+1<<20, data+1<<20, s+1))
		mc.insert = append(mc.insert, NewPhase(PhaseSpec{
			Name: "insert", MeanInstrs: 700, JitterPct: 0.2, FootprintBytes: 14 << 10,
			Weights:    ClassWeights{Load: 0.2, Store: 0.22, ALU: 0.44, Lock: 0.04, CRC: 0.04, Rep: 0.06},
			BranchFrac: 0.11,
			Branches:   []BranchMN{{M: 1, N: 2, Weight: 0.5}, {M: 3, N: 4, Weight: 0.5}},
			WorkingSets: []WorkingSet{
				{Bytes: 4 << 20, Frac: 0.4},
				{Bytes: storeBytes, Frac: 0.6},
			},
			RegularFrac: 0.5, SharedFrac: 0.2, DepChain: 2, RepBytes: mc.ValueBytes,
		}, code+3<<20, data+3<<20, s+3))
		mc.respond = append(mc.respond, NewPhase(PhaseSpec{
			Name: "respond", MeanInstrs: 180, JitterPct: 0.1, FootprintBytes: 4 << 10,
			Weights:     ClassWeights{Load: 0.15, Store: 0.15, ALU: 0.58, Rep: 0.12},
			BranchFrac:  0.1,
			WorkingSets: []WorkingSet{{Bytes: storeBytes, Frac: 1}},
			RegularFrac: 0.9, DepChain: 2, RepBytes: mc.ValueBytes,
		}, code+2<<20, data+2<<20, s+2))
		mc.streams = append(mc.streams, NewPhaseChainCache(map[int][]*Phase{
			MemcachedGet: {mc.parse[w], mc.lookup[w], mc.respond[w]},
			MemcachedSet: {mc.parse[w], mc.lookup[w], mc.insert[w]},
		}))
	}
	return mc
}

// Start launches the dispatcher and worker threads. The dispatcher accepts
// connections and registers them round-robin into the workers' epoll sets
// (memcached's dispatcher/worker notification scheme); each worker runs an
// I/O-multiplexing event loop over its own connections.
func (mc *Memcached) Start() {
	epolls := make([]*kernel.Epoll, mc.Workers)
	for w := range epolls {
		epolls[w] = mc.M.Kernel.NewEpoll()
	}
	mc.P.Spawn("dispatcher", func(th *kernel.Thread) {
		l := th.Listen(mc.ListenPort)
		next := 0
		for {
			conn := th.Accept(l)
			th.EpollAdd(epolls[next%mc.Workers], conn)
			next++
		}
	})
	for w := 0; w < mc.Workers; w++ {
		w := w
		mc.P.Spawn(fmt.Sprintf("worker-%d", w), func(th *kernel.Thread) {
			for {
				for _, r := range th.EpollWait(epolls[w]) {
					for r.Conn != nil && r.Conn.Pending() > 0 {
						msg, ok := th.TryRecv(r.Conn)
						if !ok {
							break
						}
						mc.handle(th, w, r.Conn, msg)
					}
				}
			}
		})
	}
}

// handle serves one request: GETs do parse → hash lookup → value copy →
// respond; SETs do parse → lookup → item insert (store-heavy, LRU-list
// locking) → short acknowledgement.
func (mc *Memcached) handle(th *kernel.Thread, w int, conn *kernel.Endpoint, msg kernel.Msg) {
	kind := MemcachedGet
	if req, ok := msg.Payload.(*Request); ok {
		kind = req.Kind
	}
	th.RunTrace(mc.streams[w].Next(kind))
	if kind == MemcachedSet {
		echo(th, conn, msg, 32) // "STORED"
		return
	}
	echo(th, conn, msg, mc.ValueBytes+66)
}
