package app

import (
	"testing"

	"ditto/internal/kernel"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, sim.Millisecond)
	now := sim.Time(0)
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.OnResult(now, false)
	}
	if !b.Open() || b.Trips != 1 {
		t.Fatalf("breaker should be open after 3 consecutive failures: open=%v trips=%d", b.Open(), b.Trips)
	}
	if b.Allow(now + 500*sim.Microsecond) {
		t.Fatal("open breaker admitted a call inside the open window")
	}
	// Past the window: one half-open probe, fail-fast behind it.
	if !b.Allow(now + 2*sim.Millisecond) {
		t.Fatal("breaker should admit a half-open probe")
	}
	if b.Allow(now + 2*sim.Millisecond) {
		t.Fatal("second call should fail fast behind the half-open probe")
	}
	// Probe fails → re-open.
	b.OnResult(now+2*sim.Millisecond, false)
	if !b.Open() || b.Trips != 2 {
		t.Fatal("failed probe should re-open the breaker")
	}
	// Probe succeeds → closed again.
	if !b.Allow(now + 4*sim.Millisecond) {
		t.Fatal("breaker should admit a probe after the second window")
	}
	b.OnResult(now+4*sim.Millisecond, true)
	if b.Open() {
		t.Fatal("successful probe should close the breaker")
	}
	if !b.Allow(now+4*sim.Millisecond) || !b.Allow(now+4*sim.Millisecond) {
		t.Fatal("closed breaker should admit calls freely")
	}
	// A success resets the consecutive-failure count.
	b.OnResult(0, false)
	b.OnResult(0, false)
	b.OnResult(0, true)
	b.OnResult(0, false)
	b.OnResult(0, false)
	if b.Open() {
		t.Fatal("non-consecutive failures should not trip the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, sim.Millisecond)
	for i := 0; i < 100; i++ {
		if !b.Allow(0) {
			t.Fatal("disabled breaker must always allow")
		}
		b.OnResult(0, false)
	}
	if b.Open() || b.Trips != 0 {
		t.Fatal("disabled breaker must never open")
	}
}

func TestRetryDelayDeterministicJitter(t *testing.T) {
	r := &Resilience{Backoff: sim.Millisecond}
	seq := func() []sim.Time {
		rng := stats.NewRand(99)
		var out []sim.Time
		for k := 1; k <= 4; k++ {
			out = append(out, r.retryDelay(k, rng))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic at retry %d: %v vs %v", i+1, a[i], b[i])
		}
		base := sim.Millisecond << uint(i)
		if a[i] < base/2 || a[i] >= base {
			t.Fatalf("retry %d delay %v outside [%v, %v)", i+1, a[i], base/2, base)
		}
	}
}

// TestResilienceHotPathAllocs pins the no-fault decision layer — breaker
// admission, outcome booking, and backoff math — at zero heap allocations.
func TestResilienceHotPathAllocs(t *testing.T) {
	b := NewBreaker(5, sim.Millisecond)
	r := &Resilience{Timeout: sim.Millisecond, Retries: 2, Backoff: 100 * sim.Microsecond}
	rng := stats.NewRand(1)
	allocs := testing.AllocsPerRun(1000, func() {
		if b.Allow(0) {
			b.OnResult(0, true)
		}
		_ = r.retryDelay(1, rng)
	})
	if allocs != 0 {
		t.Fatalf("resilience hot path allocates %.1f per op, want 0", allocs)
	}
}

// defaultTestPolicy is a tight policy for sub-second test runs.
func defaultTestPolicy() *Resilience {
	return &Resilience{
		Timeout:        2 * sim.Millisecond,
		Retries:        2,
		Backoff:        200 * sim.Microsecond,
		BreakerFails:   5,
		BreakerOpenFor: 5 * sim.Millisecond,
	}
}

// TestResilientCallCrashRetryAndRecovery crashes the child mid-run: the
// parent must observe failures (retries exhausted, Request.Failed
// propagated) while the child is down, then recover after Restart.
func TestResilientCallCrashRetryAndRecovery(t *testing.T) {
	f := newTwoTier(t, 1.0)
	f.parent.Cfg.Resilience = defaultTestPolicy()

	var failedDuring, okAfter, okBefore int
	cp := f.m.Kernel.NewProc("cli")
	phase := 0 // 0 = before crash, 1 = during outage, 2 = after restart
	cp.Spawn("cli", func(th *kernel.Thread) {
		conn := th.Connect(f.m.Kernel, 9000)
		for i := 0; i < 60; i++ {
			th.Sleep(sim.Millisecond) // pace requests across the fault schedule
			req := &Request{Kind: 0, SentAt: th.Now()}
			th.Send(conn, 64, req)
			th.Recv(conn)
			switch {
			case req.Failed && phase == 1:
				failedDuring++
			case !req.Failed && phase == 0:
				okBefore++
			case !req.Failed && phase == 2:
				okAfter++
			}
		}
	})
	f.eng.ScheduleFunc(15*sim.Millisecond, func() {
		phase = 1
		f.child.Crash()
	})
	f.eng.ScheduleFunc(45*sim.Millisecond, func() {
		f.child.Restart()
		phase = 2
	})
	f.eng.RunUntil(30 * sim.Second)
	defer f.shutdown()

	if okBefore == 0 {
		t.Fatal("no successful requests before the crash")
	}
	if failedDuring == 0 {
		t.Fatal("no failed requests during the outage: crash not observed")
	}
	if okAfter == 0 {
		t.Fatal("no successful requests after restart: tier did not recover")
	}

	// Parent spans during the outage must carry the degradation tags.
	var sawRetry, sawDownError bool
	for _, s := range f.collector.Spans() {
		if s.Service != "parent" {
			continue
		}
		if s.Retries > 0 {
			sawRetry = true
		}
		if s.DownErrors > 0 && s.Failed {
			sawDownError = true
		}
	}
	if !sawRetry {
		t.Fatal("no parent span recorded a retry")
	}
	if !sawDownError {
		t.Fatal("no parent span recorded a downstream error")
	}
}

// TestResilientCallHedging makes the child slow enough to cross the hedge
// point: the parent sends a duplicate, the child serves both, and the spans
// record the hedged delivery.
func TestResilientCallHedging(t *testing.T) {
	f := newTwoTier(t, 1.0)
	f.parent.Cfg.Resilience = &Resilience{
		Timeout:    20 * sim.Millisecond,
		HedgeAfter: 200 * sim.Microsecond,
	}
	f.child.PostWork = func(th *kernel.Thread, kind int) {
		th.Sleep(sim.Millisecond) // well past the hedge point
	}
	f.drive(20)
	defer f.shutdown()

	var hedged, parentRetryTags int
	for _, s := range f.collector.Spans() {
		if s.Service == "child" && s.Hedged {
			hedged++
		}
		if s.Service == "parent" && s.Retries > 0 {
			parentRetryTags++
		}
	}
	if hedged == 0 {
		t.Fatal("no child span served a hedged request")
	}
	if parentRetryTags == 0 {
		t.Fatal("no parent span tagged its hedge send")
	}
}

// TestResilientNoFaultMatchesLegacySpans checks the resilient path under
// zero faults completes every request cleanly: no retries, no errors, no
// failed requests — so turning the policy on does not degrade a healthy run.
func TestResilientNoFaultClean(t *testing.T) {
	f := newTwoTier(t, 1.0)
	f.parent.Cfg.Resilience = defaultTestPolicy()
	f.drive(50)
	defer f.shutdown()
	for _, s := range f.collector.Spans() {
		if s.Retries != 0 || s.DownErrors != 0 || s.Failed || s.BreakerOpen || s.Hedged {
			t.Fatalf("healthy run produced degraded span: %+v", s)
		}
	}
}

// TestBreakerTripsUnderOutage keeps the child down long enough that the
// parent's breaker opens and short-circuits calls (BreakerOpen-tagged spans
// with no retry cost).
func TestBreakerTripsUnderOutage(t *testing.T) {
	f := newTwoTier(t, 1.0)
	f.parent.Cfg.Resilience = &Resilience{
		Timeout:        sim.Millisecond,
		Retries:        1,
		Backoff:        100 * sim.Microsecond,
		BreakerFails:   3,
		BreakerOpenFor: 50 * sim.Millisecond,
	}
	f.eng.ScheduleFunc(sim.Millisecond, func() { f.child.Crash() })
	f.drive(40)
	defer f.shutdown()

	trips := f.parent.breakers["child"].Trips
	if trips == 0 {
		t.Fatal("breaker never tripped during a sustained outage")
	}
	var shortCircuited int
	for _, s := range f.collector.Spans() {
		if s.Service == "parent" && s.BreakerOpen {
			shortCircuited++
		}
	}
	if shortCircuited == 0 {
		t.Fatal("no span recorded a breaker short-circuit")
	}
}
