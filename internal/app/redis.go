package app

import (
	"ditto/internal/kernel"
	"ditto/internal/platform"
)

// Redis models the single-threaded in-memory store of §6.1.2: one event
// loop, a chained dictionary lookup with heavy pointer chasing over a 100K
// record dataset, and no shared-data or lock traffic (single-threaded, as
// the paper configures it with persistence disabled).
type Redis struct {
	Base
	ValueBytes int

	parse, dict, respond, insert *Phase
	streams                      *StreamCache
}

// Request kinds Redis understands.
const (
	RedisGet = 0
	RedisSet = 1
)

// NewRedis builds a Redis instance.
func NewRedis(m *platform.Machine, port int, seed int64) *Redis {
	r := &Redis{Base: newBase("redis", m, port, seed), ValueBytes: 1024}
	datasetBytes := 100_000 * (r.ValueBytes + 96)
	code := r.P.MemBase
	data := r.P.MemBase + 1<<30
	r.parse = NewPhase(PhaseSpec{
		Name: "resp-parse", MeanInstrs: 380, JitterPct: 0.12, FootprintBytes: 10 << 10,
		Weights:     ClassWeights{Load: 0.22, Store: 0.07, ALU: 0.6, SIMD: 0.06, CRC: 0.05},
		BranchFrac:  0.18,
		Branches:    []BranchMN{{M: 1, N: 1, Weight: 0.4}, {M: 1, N: 3, Weight: 0.35}, {M: 3, N: 4, Weight: 0.25}},
		WorkingSets: []WorkingSet{{Bytes: 8 << 10, Frac: 1}},
		RegularFrac: 0.5, DepChain: 3,
	}, code, data, seed)
	r.dict = NewPhase(PhaseSpec{
		Name: "dict-lookup", MeanInstrs: 720, JitterPct: 0.2, FootprintBytes: 16 << 10,
		Weights:    ClassWeights{Load: 0.34, Store: 0.07, ALU: 0.5, Mul: 0.02, SIMD: 0.04, CRC: 0.03},
		BranchFrac: 0.13,
		Branches:   []BranchMN{{M: 1, N: 1, Weight: 0.4}, {M: 2, N: 3, Weight: 0.4}, {M: 4, N: 5, Weight: 0.2}},
		WorkingSets: []WorkingSet{
			{Bytes: 16 << 10, Frac: 0.35},     // hot dict metadata
			{Bytes: 2 << 20, Frac: 0.3},       // bucket array
			{Bytes: datasetBytes, Frac: 0.35}, // entries + values
		},
		RegularFrac: 0.2, PointerFrac: 0.28, DepChain: 2,
	}, code+1<<20, data+1<<27, seed+1)
	r.respond = NewPhase(PhaseSpec{
		Name: "respond", MeanInstrs: 220, JitterPct: 0.1, FootprintBytes: 6 << 10,
		Weights:     ClassWeights{Load: 0.16, Store: 0.14, ALU: 0.58, Rep: 0.12},
		BranchFrac:  0.08,
		WorkingSets: []WorkingSet{{Bytes: datasetBytes, Frac: 1}},
		RegularFrac: 0.9, DepChain: 2, RepBytes: r.ValueBytes,
	}, code+2<<20, data+1<<28, seed+2)
	r.insert = NewPhase(PhaseSpec{
		Name: "dict-insert", MeanInstrs: 520, JitterPct: 0.2, FootprintBytes: 12 << 10,
		Weights:    ClassWeights{Load: 0.22, Store: 0.24, ALU: 0.42, Mul: 0.02, CRC: 0.04, Rep: 0.06},
		BranchFrac: 0.12,
		Branches:   []BranchMN{{M: 1, N: 2, Weight: 0.55}, {M: 3, N: 4, Weight: 0.45}},
		WorkingSets: []WorkingSet{
			{Bytes: 2 << 20, Frac: 0.4},
			{Bytes: datasetBytes, Frac: 0.6},
		},
		RegularFrac: 0.45, PointerFrac: 0.15, DepChain: 2, RepBytes: r.ValueBytes,
	}, code+3<<20, data+3<<27, seed+3)
	r.streams = NewPhaseChainCache(map[int][]*Phase{
		RedisGet: {r.parse, r.dict, r.respond},
		RedisSet: {r.parse, r.dict, r.insert},
	})
	return r
}

// Start launches the single event-loop thread.
func (r *Redis) Start() {
	r.P.Spawn("eventloop", func(th *kernel.Thread) {
		l := th.Listen(r.ListenPort)
		EventLoop(th, l, r.handle)
	})
}

// handle serves one command: GETs do parse → dict walk → reply copy; SETs
// do parse → dict walk → entry insert → short "+OK".
func (r *Redis) handle(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg) {
	kind := RedisGet
	if req, ok := msg.Payload.(*Request); ok {
		kind = req.Kind
	}
	th.RunTrace(r.streams.Next(kind))
	if kind == RedisSet {
		echo(th, conn, msg, 16) // "+OK"
		return
	}
	echo(th, conn, msg, r.ValueBytes+38)
}
