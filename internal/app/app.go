package app

import (
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// Request is the wire payload carried by every client request; servers echo
// it in the response so the load generator can compute end-to-end latency.
type Request struct {
	Kind   int      // operation type (app-specific)
	SentAt sim.Time // client send timestamp
	Failed bool     // some tier degraded this request (shed, or downstream lost)
}

// App is a runnable server application — original or Ditto-generated.
type App interface {
	Name() string
	Proc() *kernel.Proc
	Machine() *platform.Machine
	Port() int
	// Start spawns the application's threads. It returns immediately; the
	// threads execute under the simulation engine.
	Start()
}

// Base carries the pieces every server app shares.
type Base struct {
	AppName    string
	M          *platform.Machine
	P          *kernel.Proc
	ListenPort int
	Seed       int64
}

// Name returns the application name.
func (b *Base) Name() string { return b.AppName }

// Proc returns the application's process.
func (b *Base) Proc() *kernel.Proc { return b.P }

// Machine returns the machine the app runs on.
func (b *Base) Machine() *platform.Machine { return b.M }

// Port returns the listen port.
func (b *Base) Port() int { return b.ListenPort }

// NewBaseFor wires a Base and its process for an externally defined app
// (the synth runtime builds its servers on the same chassis).
func NewBaseFor(name string, m *platform.Machine, port int, seed int64) Base {
	return newBase(name, m, port, seed)
}

// newBase wires a Base and its process.
func newBase(name string, m *platform.Machine, port int, seed int64) Base {
	return Base{AppName: name, M: m, P: m.Kernel.NewProc(name), ListenPort: port, Seed: seed}
}

// Handler processes one request message on a connection.
type Handler func(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg)

// EventLoop runs the I/O-multiplexing server model (§4.3.1): one epoll
// instance watching the listener and every accepted connection,
// level-triggered, draining each ready source.
func EventLoop(th *kernel.Thread, l *kernel.Listener, handle Handler) {
	ep := th.Kernel().NewEpoll()
	th.EpollAddListener(ep, l)
	for {
		for _, r := range th.EpollWait(ep) {
			switch {
			case r.Listener != nil:
				for {
					conn := th.TryAccept(r.Listener)
					if conn == nil {
						break
					}
					th.EpollAdd(ep, conn)
				}
			case r.Conn != nil:
				for r.Conn.Pending() > 0 {
					msg, ok := th.TryRecv(r.Conn)
					if !ok {
						break
					}
					handle(th, r.Conn, msg)
				}
			}
		}
	}
}

// ConnPerThreadLoop runs the blocking thread-per-connection server model:
// the acceptor clones a short-lived handler thread per connection, which
// blocks in recv — the MongoDB-style dynamic thread pool.
func ConnPerThreadLoop(th *kernel.Thread, l *kernel.Listener, handle Handler) {
	for {
		conn := th.Accept(l)
		th.Clone("conn-worker", func(w *kernel.Thread) {
			for {
				msg := w.Recv(conn)
				handle(w, conn, msg)
			}
		})
	}
}

// echo sends a response of respBytes, propagating the request payload so
// the client can timestamp it.
func echo(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg, respBytes int) {
	th.Send(conn, respBytes, msg.Payload)
}

// Body emits one request's user-level instruction stream. Original
// applications implement it with hidden-parameter phases; Ditto's generator
// implements it with synthesized instruction blocks.
type Body interface {
	EmitRequest(kind int, buf []isa.Instr) []isa.Instr
}

// PhaseBody chains phases into a Body, with an optional per-kind work
// scale.
type PhaseBody struct {
	Phases []*Phase
	Scale  map[int]float64
}

// EmitRequest implements Body.
func (b *PhaseBody) EmitRequest(kind int, buf []isa.Instr) []isa.Instr {
	scale := 1.0
	if s, ok := b.Scale[kind]; ok {
		scale = s
	}
	for _, ph := range b.Phases {
		buf = ph.Emit(buf, scale)
	}
	return buf
}
