package app

import (
	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// RPCCtx is the per-request context propagated between microservice tiers:
// the root client request (for end-to-end latency), the request kind, and
// the distributed-tracing context.
type RPCCtx struct {
	Req    *Request
	Kind   int
	Trace  dtrace.TraceID
	Parent dtrace.SpanID
}

// Call is one potential downstream RPC edge.
type Call struct {
	Target    string
	Prob      float64
	ReqBytes  int
	RespBytes int
}

// Registry resolves tier names to network addresses — the service
// discovery a microservice deployment relies on.
type Registry interface {
	Lookup(name string) (k *kernel.Kernel, port int)
}

// TierConfig shapes one microservice tier.
type TierConfig struct {
	Name      string
	Port      int
	Model     string // "epoll" (single event loop) or "pool" (thread per conn)
	RespBytes int
	Calls     map[int][]Call // downstream edges per request kind
	Seed      int64
}

// Tier is a generic RPC microservice: a network/thread skeleton, a request
// body, optional extra syscall work, and downstream calls. Both the
// original Social Network tiers and Ditto-generated synthetic tiers are
// Tier instances — with different bodies and configs.
type Tier struct {
	Base
	Cfg       TierConfig
	Body      Body
	Registry  Registry
	Collector *dtrace.Collector
	// PostWork, when set, performs tier-specific syscalls per request
	// (e.g. a storage tier's pread) after the body runs.
	PostWork func(th *kernel.Thread, kind int)

	rng   *stats.Rand
	conns map[*kernel.Thread]map[string]*kernel.Endpoint
}

// NewTier builds a tier on m.
func NewTier(m *platform.Machine, cfg TierConfig, body Body) *Tier {
	if cfg.Model == "" {
		cfg.Model = "epoll"
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = 512
	}
	return &Tier{
		Base: newBase(cfg.Name, m, cfg.Port, cfg.Seed),
		Cfg:  cfg, Body: body,
		rng:   stats.NewRand(cfg.Seed ^ 0x7349),
		conns: map[*kernel.Thread]map[string]*kernel.Endpoint{},
	}
}

// Start launches the tier's skeleton.
func (t *Tier) Start() {
	switch t.Cfg.Model {
	case "pool":
		t.P.Spawn("acceptor", func(th *kernel.Thread) {
			l := th.Listen(t.Cfg.Port)
			ConnPerThreadLoop(th, l, t.handle)
		})
	default:
		t.P.Spawn("eventloop", func(th *kernel.Thread) {
			l := th.Listen(t.Cfg.Port)
			EventLoop(th, l, t.handle)
		})
	}
}

// ctxOf extracts or creates the RPC context for an incoming message.
func (t *Tier) ctxOf(msg kernel.Msg) *RPCCtx {
	switch p := msg.Payload.(type) {
	case *RPCCtx:
		return p
	case *Request:
		ctx := &RPCCtx{Req: p, Kind: p.Kind}
		if t.Collector != nil {
			ctx.Trace = t.Collector.StartTrace()
		}
		return ctx
	default:
		return &RPCCtx{}
	}
}

// handle serves one RPC: trace span, body work, optional syscall work,
// downstream calls, response.
func (t *Tier) handle(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg) {
	ctx := t.ctxOf(msg)
	var span dtrace.Span
	if t.Collector != nil && ctx.Trace != 0 {
		span = dtrace.Span{Trace: ctx.Trace, ID: t.Collector.NextSpanID(),
			Parent: ctx.Parent, Service: t.Cfg.Name,
			Operation: kindName(ctx.Kind), Start: th.Now(),
			ReqBytes: msg.Bytes, RespBytes: t.Cfg.RespBytes}
	}
	if t.Body != nil {
		th.Run(t.Body.EmitRequest(ctx.Kind, nil))
	}
	if t.PostWork != nil {
		t.PostWork(th, ctx.Kind)
	}
	for _, call := range t.Cfg.Calls[ctx.Kind] {
		if call.Prob < 1 && t.rng.Float64() >= call.Prob {
			continue
		}
		down := t.connTo(th, call.Target)
		child := &RPCCtx{Req: ctx.Req, Kind: ctx.Kind, Trace: ctx.Trace, Parent: span.ID}
		reqB := call.ReqBytes
		if reqB <= 0 {
			reqB = 256
		}
		th.Send(down, reqB, child)
		th.Recv(down)
	}
	if span.ID != 0 {
		span.End = th.Now()
		t.Collector.Record(span)
	}
	echo(th, conn, msg, t.Cfg.RespBytes)
}

// connTo returns this thread's persistent connection to a downstream tier,
// dialing on first use.
func (t *Tier) connTo(th *kernel.Thread, target string) *kernel.Endpoint {
	per := t.conns[th]
	if per == nil {
		per = map[string]*kernel.Endpoint{}
		t.conns[th] = per
	}
	if c := per[target]; c != nil {
		return c
	}
	k, port := t.Registry.Lookup(target)
	c := th.Connect(k, port)
	per[target] = c
	return c
}

// Request kinds used by the Social Network.
const (
	KindComposePost = iota
	KindReadHomeTimeline
	KindReadUserTimeline
	NumKinds
)

// kindName names a request kind for span operations.
func kindName(kind int) string {
	switch kind {
	case KindComposePost:
		return "compose-post"
	case KindReadHomeTimeline:
		return "read-home-timeline"
	case KindReadUserTimeline:
		return "read-user-timeline"
	}
	return "op"
}
