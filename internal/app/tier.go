package app

import (
	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// RPCCtx is the per-request context propagated between microservice tiers:
// the root client request (for end-to-end latency), the request kind, and
// the distributed-tracing context.
type RPCCtx struct {
	Req    *Request
	Kind   int
	Trace  dtrace.TraceID
	Parent dtrace.SpanID
	// Resilience metadata. Attempt/Hedged tag which delivery of a retried or
	// hedged call this context carries; Failed is set by the serving tier
	// before it responds when the invocation was shed or lost a downstream
	// dependency, so the caller sees the app-level error.
	Attempt uint8
	Hedged  bool
	Failed  bool
	// root marks the context created at the frontend from the raw client
	// Request. Only the root context's tier may write back to Req: the
	// Request lives on the client's shard-ordered message chain, and a
	// downstream tier scribbling on it from another machine's timeline would
	// be a cross-shard mutation (and a data race under parallel execution).
	root bool
}

// Call is one potential downstream RPC edge.
type Call struct {
	Target    string
	Prob      float64
	ReqBytes  int
	RespBytes int
}

// Registry resolves tier names to network addresses — the service
// discovery a microservice deployment relies on.
type Registry interface {
	Lookup(name string) (k *kernel.Kernel, port int)
}

// TierConfig shapes one microservice tier.
type TierConfig struct {
	Name      string
	Port      int
	Model     string // "epoll" (single event loop) or "pool" (thread per conn)
	RespBytes int
	Calls     map[int][]Call // downstream edges per request kind
	// KindName, when set, labels span operations for this tier's request
	// kinds; nil falls back to the Social Network names.
	KindName func(kind int) string
	Seed     int64
	// Resilience, when non-nil, turns on the resilient RPC path (timeouts,
	// retries, hedging, circuit breaking, load shedding). Nil keeps the
	// legacy blocking path byte-identical to the pre-fault simulator.
	Resilience *Resilience
}

// Tier is a generic RPC microservice: a network/thread skeleton, a request
// body, optional extra syscall work, and downstream calls. Both the
// original Social Network tiers and Ditto-generated synthetic tiers are
// Tier instances — with different bodies and configs.
type Tier struct {
	Base
	Cfg       TierConfig
	Body      Body
	Registry  Registry
	Collector *dtrace.Collector
	// PostWork, when set, performs tier-specific syscalls per request
	// (e.g. a storage tier's pread) after the body runs.
	PostWork func(th *kernel.Thread, kind int)
	// DynCalls, when set, computes this request's downstream edges instead
	// of the static Cfg.Calls table — for tiers whose fan-out depends on
	// per-request state (a storage adapter calling its blob tier only on
	// block-cache misses). It runs after Body and PostWork.
	DynCalls func(th *kernel.Thread, kind int) []Call

	rng      *stats.Rand
	conns    map[*kernel.Thread]map[string]*kernel.Endpoint
	breakers map[string]*Breaker // per downstream target, resilient path only
	streams  *StreamCache        // rotating pregenerated request streams for Body
	arm      *dtrace.Arm         // this machine's shard-local recording surface
}

// NewTier builds a tier on m.
func NewTier(m *platform.Machine, cfg TierConfig, body Body) *Tier {
	if cfg.Model == "" {
		cfg.Model = "epoll"
	}
	if cfg.RespBytes <= 0 {
		cfg.RespBytes = 512
	}
	t := &Tier{
		Base: newBase(cfg.Name, m, cfg.Port, cfg.Seed),
		Cfg:  cfg, Body: body,
		rng:      stats.NewRand(cfg.Seed ^ 0x7349),
		conns:    map[*kernel.Thread]map[string]*kernel.Endpoint{},
		breakers: map[string]*Breaker{},
	}
	if body != nil {
		t.streams = NewStreamCache(body)
	}
	return t
}

// Start launches the tier's skeleton. Tracing arms register here — setup
// time, single-threaded — keyed by the host machine's cluster index, so
// tiers sharing a machine share its arm and a shared Collector is never
// touched across shards mid-run.
func (t *Tier) Start() {
	if t.Collector != nil && t.arm == nil {
		t.arm = t.Collector.Arm(uint64(t.M.Index) + 1)
	}
	// Bodies are often installed after NewTier (they need the tier's process
	// MemBase); build their stream cache here so a post-construction Body is
	// not silently skipped.
	if t.streams == nil && t.Body != nil {
		t.streams = NewStreamCache(t.Body)
	}
	switch t.Cfg.Model {
	case "pool":
		t.P.Spawn("acceptor", func(th *kernel.Thread) {
			l := th.Listen(t.Cfg.Port)
			ConnPerThreadLoop(th, l, t.handle)
		})
	default:
		t.P.Spawn("eventloop", func(th *kernel.Thread) {
			l := th.Listen(t.Cfg.Port)
			EventLoop(th, l, t.handle)
		})
	}
}

// ctxOf extracts or creates the RPC context for an incoming message.
func (t *Tier) ctxOf(msg kernel.Msg) *RPCCtx {
	switch p := msg.Payload.(type) {
	case *RPCCtx:
		return p
	case *Request:
		ctx := &RPCCtx{Req: p, Kind: p.Kind, root: true}
		if t.arm != nil {
			ctx.Trace = t.arm.StartTrace()
		}
		return ctx
	default:
		return &RPCCtx{}
	}
}

// handle serves one RPC: trace span, body work, optional syscall work,
// downstream calls, response.
func (t *Tier) handle(th *kernel.Thread, conn *kernel.Endpoint, msg kernel.Msg) {
	ctx := t.ctxOf(msg)
	r := t.Cfg.Resilience
	diskStart := th.Proc.DiskReadBytes + th.Proc.DiskWritten
	var span dtrace.Span
	if t.arm != nil && ctx.Trace != 0 {
		op := kindName(ctx.Kind)
		if t.Cfg.KindName != nil {
			op = t.Cfg.KindName(ctx.Kind)
		}
		span = dtrace.Span{Trace: ctx.Trace, ID: t.arm.NextSpanID(),
			Parent: ctx.Parent, Service: t.Cfg.Name,
			Operation: op, Start: th.Now(),
			ReqBytes: msg.Bytes, RespBytes: t.Cfg.RespBytes,
			Attempt: ctx.Attempt, Hedged: ctx.Hedged}
	}
	// Load shedding: a request that sat in the server queue past the policy
	// bound is rejected before any body work — overload control.
	if r != nil && r.ShedAfter > 0 && msg.Sent > 0 && th.Now()-msg.Sent > r.ShedAfter {
		t.fail(ctx, &span)
		if span.ID != 0 {
			span.End = th.Now()
			t.arm.Record(span)
		}
		t.finish(ctx)
		echo(th, conn, msg, t.Cfg.RespBytes)
		return
	}
	if t.streams != nil {
		th.RunTrace(t.streams.Next(ctx.Kind))
	}
	if t.PostWork != nil {
		t.PostWork(th, ctx.Kind)
	}
	calls := t.Cfg.Calls[ctx.Kind]
	if t.DynCalls != nil {
		calls = t.DynCalls(th, ctx.Kind)
	}
	for _, call := range calls {
		// Prob ≤ 1 is a Bernoulli edge (Prob == 1 draws nothing, preserving
		// legacy rng streams); Prob > 1 replays a learned multi-call edge —
		// int(Prob) guaranteed calls plus a Bernoulli on the fraction.
		n := 1
		switch {
		case call.Prob < 1:
			if t.rng.Float64() >= call.Prob {
				continue
			}
		case call.Prob > 1:
			n = int(call.Prob)
			if frac := call.Prob - float64(n); frac > 0 && t.rng.Float64() < frac {
				n++
			}
		}
		for ; n > 0; n-- {
			if r == nil {
				down := t.connTo(th, call.Target)
				child := &RPCCtx{Req: ctx.Req, Kind: ctx.Kind, Trace: ctx.Trace, Parent: span.ID}
				reqB := call.ReqBytes
				if reqB <= 0 {
					reqB = 256
				}
				th.Send(down, reqB, child)
				th.Recv(down)
				continue
			}
			if !t.callResilient(th, call, ctx, &span) {
				span.DownErrors++
				t.fail(ctx, &span)
			}
		}
	}
	if span.ID != 0 {
		span.End = th.Now()
		span.DiskBytes = th.Proc.DiskReadBytes + th.Proc.DiskWritten - diskStart
		t.arm.Record(span)
	}
	t.finish(ctx)
	echo(th, conn, msg, t.Cfg.RespBytes)
}

// fail marks this invocation degraded: the serving span and the RPC context
// the caller will inspect both record the error. The root client Request is
// deliberately not touched here — see finish.
func (t *Tier) fail(ctx *RPCCtx, span *dtrace.Span) {
	ctx.Failed = true
	span.Failed = true
}

// finish propagates the outcome to the root client Request, at the frontend
// only, just before the response is echoed. The frontend runs on one
// machine and the Request rides the ordered message chain back to the
// client, so this is the only place Req may be written without a cross-shard
// race; downstream failures reach here via the Failed bit on each reply
// context.
func (t *Tier) finish(ctx *RPCCtx) {
	if ctx.root && ctx.Failed && ctx.Req != nil {
		ctx.Req.Failed = true
	}
}

// callResilient performs one downstream call under the tier's resilience
// policy: bounded dial + response wait per attempt, exponential backoff with
// deterministic jitter between attempts, one hedged duplicate per attempt,
// and a per-edge circuit breaker. It returns false when the call ultimately
// failed — breaker open, attempts exhausted, or the downstream answered with
// an app-level error (which is final: retrying cannot fix a deeper outage).
func (t *Tier) callResilient(th *kernel.Thread, call Call, ctx *RPCCtx, span *dtrace.Span) bool {
	r := t.Cfg.Resilience
	reqB := call.ReqBytes
	if reqB <= 0 {
		reqB = 256
	}
	br := t.breakerFor(call.Target)
	if !br.Allow(th.Now()) {
		span.BreakerOpen = true
		return false
	}
	if r.Timeout <= 0 {
		// No timeout configured: the attempt is the legacy blocking call.
		down := t.connTo(th, call.Target)
		child := &RPCCtx{Req: ctx.Req, Kind: ctx.Kind, Trace: ctx.Trace, Parent: span.ID}
		th.Send(down, reqB, child)
		reply, _ := th.Recv(down).Payload.(*RPCCtx)
		ok := reply == child && !reply.Failed
		br.OnResult(th.Now(), ok)
		return ok
	}
	var sent [8]*RPCCtx // pointer-identity set for reply matching
	n := 0
	success := false
	for k := 0; k <= r.Retries; k++ {
		if k > 0 {
			span.Retries++
			if d := r.retryDelay(k, t.rng); d > 0 {
				th.Sleep(d)
			}
		}
		down := t.connResilient(th, call.Target, r.Timeout)
		if down == nil {
			continue // dial timed out (listener unbound); back off and retry
		}
		child := &RPCCtx{Req: ctx.Req, Kind: ctx.Kind, Trace: ctx.Trace,
			Parent: span.ID, Attempt: uint8(k)}
		if n < len(sent) {
			sent[n] = child
			n++
		}
		th.Send(down, reqB, child)
		reply, hedge := t.awaitReply(th, down, sent[:n], reqB, ctx, span, k)
		if hedge != nil && n < len(sent) {
			sent[n] = hedge
			n++
		}
		if reply != nil {
			success = !reply.Failed
			break
		}
	}
	br.OnResult(th.Now(), success)
	return success
}

// awaitReply waits out one attempt's response window on down, sending a
// hedged duplicate at the policy's hedge point and accepting whichever copy
// of any of this call's attempts answers first. Replies to earlier calls on
// the same connection (a previous attempt that timed out after the server
// served it) are discarded by pointer identity. It returns nil when the
// window closes or the connection dies, plus the hedge context if one was
// sent.
func (t *Tier) awaitReply(th *kernel.Thread, down *kernel.Endpoint, sent []*RPCCtx,
	reqB int, ctx *RPCCtx, span *dtrace.Span, attempt int) (*RPCCtx, *RPCCtx) {
	r := t.Cfg.Resilience
	start := th.Now()
	deadline := start + r.Timeout
	hedgeAt := sim.Time(-1)
	if r.HedgeAfter > 0 && r.HedgeAfter < r.Timeout {
		hedgeAt = start + r.HedgeAfter
	}
	var hedge *RPCCtx
	for {
		limit := deadline
		if hedge == nil && hedgeAt >= 0 && hedgeAt < limit {
			limit = hedgeAt
		}
		if wait := limit - th.Now(); wait > 0 {
			msg, got := th.RecvTimeout(down, wait)
			if got {
				reply, isCtx := msg.Payload.(*RPCCtx)
				if isCtx {
					for _, a := range sent {
						if reply == a {
							return reply, hedge
						}
					}
					if reply == hedge {
						return reply, hedge
					}
				}
				continue // stale reply from an earlier call; keep waiting
			}
			if down.Dead() {
				return nil, hedge
			}
		}
		if th.Now() >= deadline {
			return nil, hedge
		}
		if hedge == nil && hedgeAt >= 0 && th.Now() >= hedgeAt {
			hedge = &RPCCtx{Req: ctx.Req, Kind: ctx.Kind, Trace: ctx.Trace,
				Parent: span.ID, Attempt: uint8(attempt), Hedged: true}
			span.Retries++
			th.Send(down, reqB, hedge)
		}
	}
}

// breakerFor returns the circuit breaker guarding one downstream edge,
// creating it from the tier's policy on first use.
func (t *Tier) breakerFor(target string) *Breaker {
	b := t.breakers[target]
	if b == nil {
		r := t.Cfg.Resilience
		b = NewBreaker(r.BreakerFails, r.BreakerOpenFor)
		t.breakers[target] = b
	}
	return b
}

// connResilient returns a live cached connection to target, re-dialing with
// a bounded wait when the cache is empty or the cached connection died with
// a crashed peer. It returns nil when the target cannot be reached in time.
func (t *Tier) connResilient(th *kernel.Thread, target string, d sim.Time) *kernel.Endpoint {
	per := t.conns[th]
	if per == nil {
		per = map[string]*kernel.Endpoint{}
		t.conns[th] = per
	}
	if c := per[target]; c != nil && !c.Dead() {
		return c
	}
	k, port := t.Registry.Lookup(target)
	c := th.ConnectTimeout(k, port, d)
	if c == nil {
		delete(per, target)
		return nil
	}
	per[target] = c
	return c
}

// Crash kills the tier's process mid-run: every thread unwinds, the listener
// unbinds, and all its connections close — upstream callers see dead
// connections and dial timeouts until Restart. The per-thread connection
// cache dies with the threads, so it is reset.
func (t *Tier) Crash() {
	t.M.Kernel.KillProc(t.P)
	t.conns = map[*kernel.Thread]map[string]*kernel.Endpoint{}
}

// Restart relaunches the tier's skeleton after a Crash (a container
// restart). New threads spawn into the same process, so counters persist.
func (t *Tier) Restart() { t.Start() }

// connTo returns this thread's persistent connection to a downstream tier,
// dialing on first use.
func (t *Tier) connTo(th *kernel.Thread, target string) *kernel.Endpoint {
	per := t.conns[th]
	if per == nil {
		per = map[string]*kernel.Endpoint{}
		t.conns[th] = per
	}
	if c := per[target]; c != nil {
		return c
	}
	k, port := t.Registry.Lookup(target)
	c := th.Connect(k, port)
	per[target] = c
	return c
}

// Request kinds used by the Social Network.
const (
	KindComposePost = iota
	KindReadHomeTimeline
	KindReadUserTimeline
	NumKinds
)

// kindName names a request kind for span operations.
func kindName(kind int) string {
	switch kind {
	case KindComposePost:
		return "compose-post"
	case KindReadHomeTimeline:
		return "read-home-timeline"
	case KindReadUserTimeline:
		return "read-user-timeline"
	}
	return "op"
}
