package app

import (
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// Resilience configures a tier's RPC survival policy: per-attempt timeouts,
// retries with exponential backoff and deterministic jitter, request hedging,
// a consecutive-failure circuit breaker, and queue-delay load shedding. A nil
// policy selects the legacy blocking path (infinite Recv), byte-identical to
// the pre-fault simulator. All randomness (jitter) comes from the tier's own
// seeded stream, so degraded runs replay exactly.
type Resilience struct {
	// Timeout bounds each attempt: dial plus response wait. <= 0 disables
	// timeouts (attempts block forever, as the legacy path does).
	Timeout sim.Time
	// Retries is the number of re-sends after the first attempt.
	Retries int
	// Backoff is the pre-retry delay base: retry k waits Backoff<<k, scaled
	// by a jitter factor in [0.5, 1).
	Backoff sim.Time
	// HedgeAfter, when > 0, duplicates an attempt that has not answered
	// within this delay and accepts whichever copy responds first.
	HedgeAfter sim.Time
	// BreakerFails consecutive downstream failures open the circuit for
	// BreakerOpenFor; while open, calls fail immediately. One probe is let
	// through after the window (half-open). 0 disables the breaker.
	BreakerFails   int
	BreakerOpenFor sim.Time
	// ShedAfter, when > 0, rejects a request that waited longer than this in
	// the server queue before being picked up — overload load shedding.
	ShedAfter sim.Time
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a consecutive-failure circuit breaker guarding one downstream
// edge of one tier.
type Breaker struct {
	failsToOpen int
	openFor     sim.Time

	state    int
	fails    int // consecutive failures while closed
	openedAt sim.Time
	Trips    int // times the breaker opened (including re-opens)
}

// NewBreaker builds a closed breaker; failsToOpen <= 0 builds one that never
// opens.
func NewBreaker(failsToOpen int, openFor sim.Time) *Breaker {
	return &Breaker{failsToOpen: failsToOpen, openFor: openFor}
}

// Allow reports whether a call may proceed at time now. While open it fails
// fast until openFor has elapsed, then admits a single half-open probe.
// ditto:noalloc
func (b *Breaker) Allow(now sim.Time) bool {
	if b.failsToOpen <= 0 {
		return true
	}
	switch b.state {
	case breakerOpen:
		if now-b.openedAt < b.openFor {
			return false
		}
		b.state = breakerHalfOpen
		return true
	case breakerHalfOpen:
		// One probe is already in flight; fail fast behind it.
		return false
	}
	return true
}

// OnResult books the outcome of an admitted call at time now.
// ditto:noalloc
func (b *Breaker) OnResult(now sim.Time, ok bool) {
	if b.failsToOpen <= 0 {
		return
	}
	if ok {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		b.Trips++
		return
	}
	b.fails++
	if b.fails >= b.failsToOpen {
		b.state = breakerOpen
		b.openedAt = now
		b.fails = 0
		b.Trips++
	}
}

// Open reports whether the breaker is currently rejecting calls.
func (b *Breaker) Open() bool { return b.state == breakerOpen }

// retryDelay computes the pre-retry sleep before attempt k (k >= 1):
// exponential base with multiplicative jitter in [0.5, 1) drawn from the
// tier's deterministic stream.
// ditto:noalloc
func (r *Resilience) retryDelay(k int, rng *stats.Rand) sim.Time {
	if r.Backoff <= 0 {
		return 0
	}
	base := r.Backoff << uint(k-1)
	return sim.Time(float64(base) * (0.5 + 0.5*rng.Float64()))
}
