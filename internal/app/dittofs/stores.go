package dittofs

import (
	"ditto/internal/app"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// ContentStore is the pluggable content backend behind the adapter's block
// cache. Implementations run on the adapter's handler thread, so their
// syscalls are charged to — and profiled as — the adapter tier.
type ContentStore interface {
	Name() string
	// Create registers the store's on-disk state on the adapter's kernel.
	Create(k *kernel.Kernel)
	// ReadBlock fetches one block that missed the block cache.
	ReadBlock(th *kernel.Thread)
	// WriteBlock absorbs one committed write.
	WriteBlock(th *kernel.Thread, bytes int)
}

// memStore keeps all content in memory: the block copy CPU lives in the
// body phases and the backend produces no disk traffic at all — the only
// device writes of the mem deployment come from the WAL and the metadata
// journal.
type memStore struct{}

func (memStore) Name() string                   { return "mem" }
func (memStore) Create(*kernel.Kernel)          {}
func (memStore) ReadBlock(*kernel.Thread)       {}
func (memStore) WriteBlock(*kernel.Thread, int) {}

// lsmStore is an LSM-tree-shaped on-disk backend. Reads hit arbitrary
// level offsets (uniform over the dataset, as a leveled tree with no
// locality does). Writes buffer in a memtable; at the flush threshold the
// memtable is written sequentially and fsynced, and every CompactEvery-th
// flush triggers a compaction — re-reading several flushes' worth of data
// and rewriting it — which is where the backend's write amplification
// comes from. All of it runs on the handler thread: a flush stalls the
// request that triggered it, exactly like a writer caught by a full
// memtable.
type lsmStore struct {
	dataset    int64
	blockBytes int
	flushBytes int
	compactN   int

	file     *kernel.File
	rng      *stats.Rand
	memtable int
	flushes  uint64
	compacts uint64
	cur      int64 // sequential level-file append cursor
}

func newLSMStore(cfg *Config, seed int64) *lsmStore {
	return &lsmStore{
		dataset:    cfg.DatasetBytes,
		blockBytes: cfg.BlockBytes,
		flushBytes: cfg.LSMFlushBytes,
		compactN:   cfg.LSMCompactEvery,
		rng:        stats.NewRand(seed ^ 0x15A3),
	}
}

func (s *lsmStore) Name() string { return "lsm" }

func (s *lsmStore) Create(k *kernel.Kernel) {
	s.file = k.CreateFile("/data/dittofs-lsm.sst", s.dataset)
}

func (s *lsmStore) ReadBlock(th *kernel.Thread) {
	maxOff := (s.dataset - int64(s.blockBytes)) / kernel.PageBytes
	off := s.rng.Int63n(maxOff) * kernel.PageBytes
	fd := th.Open(s.file.Name)
	th.Pread(fd, s.blockBytes, off)
	th.CloseFD(fd)
}

func (s *lsmStore) WriteBlock(th *kernel.Thread, bytes int) {
	s.memtable += bytes
	if s.memtable < s.flushBytes {
		return
	}
	flush := s.memtable
	s.memtable = 0
	fd := th.Open(s.file.Name)
	if s.cur+int64(flush) > s.file.Size {
		s.cur = 0
	}
	th.WriteFile(fd, flush, s.cur)
	s.cur += int64(flush)
	th.Fsync(fd)
	s.flushes++
	if s.compactN > 0 && s.flushes%uint64(s.compactN) == 0 {
		// Compaction: read back compactN flushes' worth from a lower level
		// and rewrite it merged — then make the new level durable.
		span := flush * s.compactN
		maxOff := (s.dataset - int64(span)) / kernel.PageBytes
		th.Pread(fd, span, s.rng.Int63n(maxOff)*kernel.PageBytes)
		if s.cur+int64(span) > s.file.Size {
			s.cur = 0
		}
		th.WriteFile(fd, span, s.cur)
		s.cur += int64(span)
		th.Fsync(fd)
		s.compacts++
	}
	th.CloseFD(fd)
}

// newBlobTier builds the remote blob-store tier of the blob backend: an
// event-loop server whose GETs pread uniformly-random objects from its
// object file and whose PUTs append and fsync — a durable object store.
// It runs on its own machine, so dtrace attributes its disk traffic to the
// blob tier, not the adapter.
func newBlobTier(m *platform.Machine, port int, cfg *Config, seed int64) *app.Tier {
	t := app.NewTier(m, app.TierConfig{
		Name: BlobName, Port: port, Model: "epoll",
		RespBytes: cfg.BlockBytes, KindName: OpName, Seed: seed,
	}, nil)
	t.Body = blobBody(t.P.MemBase, seed)

	dataset := cfg.DatasetBytes
	blockBytes := cfg.BlockBytes
	writeBytes := cfg.WriteBytes
	rng := stats.NewRand(seed ^ 0xB10B)
	var file *kernel.File
	var cur int64
	t.PostWork = func(th *kernel.Thread, kind int) {
		if file == nil {
			file = m.Kernel.CreateFile("/data/dittofs-blob.obj", dataset)
		}
		switch kind {
		case OpRead:
			maxOff := (dataset - int64(blockBytes)) / kernel.PageBytes
			fd := th.Open(file.Name)
			th.Pread(fd, blockBytes, rng.Int63n(maxOff)*kernel.PageBytes)
			th.CloseFD(fd)
		case OpWrite:
			fd := th.Open(file.Name)
			if cur+int64(writeBytes) > file.Size {
				cur = 0
			}
			th.WriteFile(fd, writeBytes, cur)
			cur += int64(writeBytes)
			th.Fsync(fd)
			th.CloseFD(fd)
		}
	}
	return t
}

// blobBody is the blob tier's CPU model: request decode plus an object
// copy.
func blobBody(memBase uint64, seed int64) app.Body {
	code := memBase
	data := code + 1<<30
	decode := app.NewPhase(app.PhaseSpec{
		Name: "blob-decode", MeanInstrs: 600, JitterPct: 0.2, FootprintBytes: 16 << 10,
		Weights:     app.ClassWeights{Load: 0.24, Store: 0.08, ALU: 0.58, SIMD: 0.05, CRC: 0.05},
		BranchFrac:  0.13,
		Branches:    []app.BranchMN{{M: 1, N: 1, Weight: 0.6}, {M: 2, N: 3, Weight: 0.4}},
		WorkingSets: []app.WorkingSet{{Bytes: 24 << 10, Frac: 1}},
		RegularFrac: 0.55, DepChain: 2,
	}, code, data, seed)
	objcopy := app.NewPhase(app.PhaseSpec{
		Name: "blob-copy", MeanInstrs: 500, JitterPct: 0.1, FootprintBytes: 10 << 10,
		Weights:     app.ClassWeights{Load: 0.2, Store: 0.2, ALU: 0.42, SIMD: 0.04, Rep: 0.14},
		BranchFrac:  0.07,
		WorkingSets: []app.WorkingSet{{Bytes: 128 << 10, Frac: 1}},
		RegularFrac: 0.9, DepChain: 2, RepBytes: 16 << 10,
	}, code+1<<20, data+1<<28, seed+1)
	return &opBody{chains: map[int][]*app.Phase{
		OpGetattr: {decode},
		OpLookup:  {decode},
		OpRead:    {decode, objcopy},
		OpWrite:   {decode, objcopy},
	}}
}
