// Package dittofs is the storage-bound workload family: an NFS-style file
// service cloned end to end by the Ditto pipeline. A protocol-adapter front
// tier decodes requests, walks metadata, and serves content through a
// write-ahead log (append + fsync on every commit) and an application-level
// block cache, over one of three pluggable content backends — in-memory,
// LSM-style on-disk with compaction-shaped write amplification, or a remote
// blob tier reached by RPC. Every storage decision runs on the handler
// thread, so the profiler sees the real syscall mix (§4.4) and dtrace
// attributes disk traffic per tier.
package dittofs

import (
	"ditto/internal/app"
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// Request kinds: the NFS-style operation mix.
const (
	OpGetattr = iota
	OpLookup
	OpRead
	OpWrite
	NumOps
)

// OpName names a request kind for span operations; core's topology learner
// maps these names back to kinds.
func OpName(kind int) string {
	switch kind {
	case OpGetattr:
		return "fs-getattr"
	case OpLookup:
		return "fs-lookup"
	case OpRead:
		return "fs-read"
	case OpWrite:
		return "fs-write"
	}
	return "fs-op"
}

// AdapterName and BlobName are the tier names the adapter and blob store
// register under (and that learned call plans target).
const (
	AdapterName = "dittofs-adapter"
	BlobName    = "dittofs-blobstore"
)

// Config shapes one DittoFS deployment.
type Config struct {
	Backend          string // "mem", "lsm", or "blob"
	DatasetBytes     int64  // logical content size
	BlockBytes       int    // content block (and blob object) size
	ReadBlocks       int    // blocks per read op — >1 makes multi-call blob edges
	WriteBytes       int    // bytes per write op
	HotFrac          float64
	HotBlocks        int64 // hot-set size in blocks; sized under the block cache
	WALBytes         int64
	BlockCacheMB     int // app-level cache, sized to overflow the page cache
	MetaBytes        int64
	MetaJournalEvery int // journal one metadata record every N metadata ops
	MetaRecBytes     int
	LSMFlushBytes    int // memtable flush threshold
	LSMCompactEvery  int // compact after every N flushes
	RespBytes        int
}

// DefaultConfig returns the deployment the figS experiment runs: a 2GB
// dataset over a 64MB page cache, an 8MB block cache with a hot set that
// fits inside it, an 8KB-record WAL, and LSM flush/compaction thresholds
// that amplify the write path.
func DefaultConfig(backend string) Config {
	return Config{
		Backend:          backend,
		DatasetBytes:     2 << 30,
		BlockBytes:       16 << 10,
		ReadBlocks:       2,
		WriteBytes:       8 << 10,
		HotFrac:          0.7,
		HotBlocks:        256,
		WALBytes:         16 << 20,
		BlockCacheMB:     8,
		MetaBytes:        4 << 20,
		MetaJournalEvery: 64,
		MetaRecBytes:     4096,
		LSMFlushBytes:    256 << 10,
		LSMCompactEvery:  4,
		RespBytes:        4096,
	}
}

// Service is one DittoFS deployment: the adapter tier plus, for the blob
// backend, the remote blob-store tier. It implements app.Registry so the
// adapter can resolve the blob tier.
type Service struct {
	Adapter *app.Tier
	Blob    *app.Tier // nil unless Backend == "blob"

	cfg    Config
	cache  *blockCache
	wal    *wal
	meta   *metaStore
	store  ContentStore // nil for the blob backend
	rng    *stats.Rand
	seqCur int64 // sequential block cursor between reseeks
	calls  []app.Call

	blobM     *platform.Machine
	blobPort  int
	readCall  app.Call
	writeCall app.Call
}

// NewService builds a DittoFS deployment on m. For the blob backend the
// blob-store tier runs on blobM (which may be a different machine — that is
// what makes its disk traffic remotely attributed) and listens on port+1;
// other backends ignore blobM.
func NewService(m, blobM *platform.Machine, port int, cfg Config, seed int64) *Service {
	s := &Service{
		cfg:   cfg,
		cache: newBlockCache(int64(cfg.BlockCacheMB) << 20 / int64(cfg.BlockBytes)),
		rng:   stats.NewRand(seed ^ 0xD177),
	}
	s.Adapter = app.NewTier(m, app.TierConfig{
		Name: AdapterName, Port: port, Model: "epoll",
		RespBytes: cfg.RespBytes, KindName: OpName, Seed: seed,
	}, nil)
	s.Adapter.Body = adapterBodyFor(s.Adapter.P.MemBase, seed)
	s.Adapter.DynCalls = s.serve

	s.wal = &wal{bytes: cfg.WALBytes, fds: map[*kernel.Thread]*kernel.FD{}}
	s.meta = &metaStore{bytes: cfg.MetaBytes, every: cfg.MetaJournalEvery,
		rec: cfg.MetaRecBytes}

	switch cfg.Backend {
	case "lsm":
		s.store = newLSMStore(&cfg, seed)
	case "blob":
		if blobM == nil {
			blobM = m
		}
		s.blobM, s.blobPort = blobM, port+1
		s.Blob = newBlobTier(blobM, s.blobPort, &cfg, seed+101)
		s.Adapter.Registry = s
		s.readCall = app.Call{Target: BlobName, Prob: 1,
			ReqBytes: 128, RespBytes: cfg.BlockBytes}
		s.writeCall = app.Call{Target: BlobName, Prob: 1,
			ReqBytes: cfg.WriteBytes + 128, RespBytes: 64}
	default:
		s.store = memStore{}
	}
	return s
}

// Lookup implements app.Registry for the adapter's blob edge.
func (s *Service) Lookup(name string) (*kernel.Kernel, int) {
	return s.blobM.Kernel, s.blobPort
}

// Start creates the on-disk state and launches the tiers.
func (s *Service) Start() {
	k := s.Adapter.M.Kernel
	s.wal.file = k.CreateFile("/wal/dittofs.wal", s.cfg.WALBytes)
	s.meta.file = k.CreateFile("/data/dittofs-meta.journal", s.cfg.MetaBytes)
	if s.store != nil {
		s.store.Create(k)
	}
	if s.Blob != nil {
		s.Blob.Start()
	}
	s.Adapter.Start()
}

// serve performs the storage work of one request on the handler thread and
// returns the downstream blob calls it needs (empty for local backends).
// This is the adapter's DynCalls hook: the fan-out to the blob tier depends
// on per-request block-cache state.
func (s *Service) serve(th *kernel.Thread, kind int) []app.Call {
	s.meta.access(th)
	switch kind {
	case OpRead:
		s.calls = s.calls[:0]
		for i := 0; i < s.cfg.ReadBlocks; i++ {
			if s.cache.touch(s.pickBlock()) {
				continue // block cache hit: no store traffic
			}
			if s.Blob != nil {
				s.calls = append(s.calls, s.readCall)
			} else {
				s.store.ReadBlock(th)
			}
		}
		return s.calls
	case OpWrite:
		// Commit path: WAL append + fsync makes the write durable before
		// the content store (or remote blob) absorbs it.
		s.wal.append(th, s.cfg.WriteBytes)
		s.cache.touch(s.pickBlock()) // write-through: block is now cached
		if s.Blob != nil {
			s.calls = s.calls[:0]
			s.calls = append(s.calls, s.writeCall)
			return s.calls
		}
		s.store.WriteBlock(th, s.cfg.WriteBytes)
	}
	return nil
}

// pickBlock chooses the next logical block: mostly a hot set that fits the
// block cache, otherwise a sequential scan cursor with occasional reseeks —
// the locality mix that gives the cache a meaningful hit rate while keeping
// cold misses flowing to the backend.
func (s *Service) pickBlock() int64 {
	blocks := s.cfg.DatasetBytes / int64(s.cfg.BlockBytes)
	if s.rng.Float64() < s.cfg.HotFrac {
		return s.rng.Int63n(s.cfg.HotBlocks)
	}
	if s.rng.Float64() < 0.1 {
		s.seqCur = s.rng.Int63n(blocks)
	}
	s.seqCur = (s.seqCur + 1) % blocks
	return s.seqCur
}

// BlockCacheStats reports app-level cache hits and misses.
func (s *Service) BlockCacheStats() (hits, misses uint64) {
	return s.cache.hits, s.cache.misses
}

// WALAppends reports committed WAL records (each one fsynced).
func (s *Service) WALAppends() uint64 { return s.wal.appends }

// Backend returns the configured content backend name.
func (s *Service) Backend() string { return s.cfg.Backend }

// ---- WAL ----

// wal is the adapter's write-ahead log: a fixed-size file appended to with
// an advancing cursor (wrapping like a recycled log) and fsynced on every
// commit. Descriptors are cached per handler thread and die with it.
type wal struct {
	file    *kernel.File
	bytes   int64
	cur     int64
	fds     map[*kernel.Thread]*kernel.FD
	appends uint64
}

func (w *wal) append(th *kernel.Thread, bytes int) {
	fd := w.fds[th]
	if fd == nil {
		fd = th.Open(w.file.Name)
		w.fds[th] = fd
	}
	if w.cur+int64(bytes) > w.file.Size {
		w.cur = 0
	}
	th.WriteFile(fd, bytes, w.cur)
	w.cur += int64(bytes)
	th.Fsync(fd)
	w.appends++
}

// ---- metadata store ----

// metaStore models the inode/dentry layer: pure in-memory lookups (their
// CPU lives in the body phases) plus a journal record written — not fsynced
// — every `every` metadata operations, the batched-journal pattern of
// real metadata services.
type metaStore struct {
	file  *kernel.File
	bytes int64
	every int
	rec   int
	ops   int
	cur   int64
}

func (ms *metaStore) access(th *kernel.Thread) {
	ms.ops++
	if ms.every <= 0 || ms.ops%ms.every != 0 {
		return
	}
	fd := th.Open(ms.file.Name)
	if ms.cur+int64(ms.rec) > ms.file.Size {
		ms.cur = 0
	}
	th.WriteFile(fd, ms.rec, ms.cur)
	ms.cur += int64(ms.rec)
	th.CloseFD(fd)
}

// ---- block cache ----

type blkNode struct {
	block      int64
	prev, next *blkNode
}

// blockCache is the adapter's application-level LRU over logical content
// blocks. Contents are not modeled; residency decides whether a read pays
// backend traffic. Nodes recycle through a free list so the steady state
// allocates nothing.
type blockCache struct {
	cap          int64
	m            map[int64]*blkNode
	head, tail   *blkNode
	free         *blkNode
	hits, misses uint64
}

func newBlockCache(capacity int64) *blockCache {
	if capacity < 1 {
		capacity = 1
	}
	return &blockCache{cap: capacity, m: map[int64]*blkNode{}}
}

// touch reports whether block is cached, promoting it on a hit and
// inserting it (evicting the LRU block at capacity) on a miss.
func (c *blockCache) touch(block int64) bool {
	if n, ok := c.m[block]; ok {
		c.hits++
		if c.head != n {
			if n.prev != nil {
				n.prev.next = n.next
			}
			if n.next != nil {
				n.next.prev = n.prev
			}
			if c.tail == n {
				c.tail = n.prev
			}
			n.prev, n.next = nil, c.head
			c.head.prev = n
			c.head = n
		}
		return true
	}
	c.misses++
	n := c.free
	if n != nil {
		c.free = n.next
		n.prev, n.next = nil, nil
	} else {
		n = &blkNode{}
	}
	n.block = block
	c.m[block] = n
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
	if int64(len(c.m)) > c.cap {
		evict := c.tail
		c.tail = evict.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.m, evict.block)
		evict.prev = nil
		evict.next = c.free
		c.free = evict
	}
	return false
}

// ---- bodies ----

// opBody emits a per-kind phase chain (unlike app.PhaseBody, the chains
// differ per operation, not just in scale).
type opBody struct {
	chains map[int][]*app.Phase
}

func (b *opBody) EmitRequest(kind int, buf []isa.Instr) []isa.Instr {
	for _, ph := range b.chains[kind] {
		buf = ph.Emit(buf, 1)
	}
	return buf
}

// adapterBodyFor builds the adapter's CPU model: request decode, an
// inode/dentry walk, a block-copy phase for reads, and a checksum-heavy
// commit phase for writes.
func adapterBodyFor(memBase uint64, seed int64) app.Body {
	code := memBase
	data := code + 1<<30
	decode := app.NewPhase(app.PhaseSpec{
		Name: "fs-decode", MeanInstrs: 900, JitterPct: 0.2, FootprintBytes: 24 << 10,
		Weights:    app.ClassWeights{Load: 0.24, Store: 0.08, ALU: 0.56, SIMD: 0.06, CRC: 0.06},
		BranchFrac: 0.15,
		Branches:   []app.BranchMN{{M: 1, N: 1, Weight: 0.5}, {M: 2, N: 3, Weight: 0.5}},
		WorkingSets: []app.WorkingSet{{Bytes: 32 << 10, Frac: 0.8},
			{Bytes: 1 << 20, Frac: 0.2}},
		RegularFrac: 0.5, DepChain: 2,
	}, code, data, seed)
	inode := app.NewPhase(app.PhaseSpec{
		Name: "fs-inode-walk", MeanInstrs: 1600, JitterPct: 0.3, FootprintBytes: 36 << 10,
		Weights:    app.ClassWeights{Load: 0.32, Store: 0.06, ALU: 0.5, Mul: 0.02, Lock: 0.04, SIMD: 0.06},
		BranchFrac: 0.14,
		Branches:   []app.BranchMN{{M: 1, N: 1, Weight: 0.4}, {M: 2, N: 4, Weight: 0.6}},
		WorkingSets: []app.WorkingSet{{Bytes: 128 << 10, Frac: 0.5},
			{Bytes: 16 << 20, Frac: 0.5}},
		RegularFrac: 0.2, PointerFrac: 0.35, SharedFrac: 0.05, DepChain: 2,
	}, code+1<<20, data+1<<28, seed+1)
	blkcopy := app.NewPhase(app.PhaseSpec{
		Name: "fs-block-copy", MeanInstrs: 700, JitterPct: 0.1, FootprintBytes: 12 << 10,
		Weights:     app.ClassWeights{Load: 0.2, Store: 0.18, ALU: 0.44, SIMD: 0.06, Rep: 0.12},
		BranchFrac:  0.08,
		WorkingSets: []app.WorkingSet{{Bytes: 256 << 10, Frac: 1}},
		RegularFrac: 0.85, DepChain: 2, RepBytes: 16 << 10,
	}, code+2<<20, data+2<<28, seed+2)
	commit := app.NewPhase(app.PhaseSpec{
		Name: "fs-commit", MeanInstrs: 1200, JitterPct: 0.15, FootprintBytes: 18 << 10,
		Weights:     app.ClassWeights{Load: 0.2, Store: 0.14, ALU: 0.42, CRC: 0.14, Rep: 0.1},
		BranchFrac:  0.1,
		Branches:    []app.BranchMN{{M: 1, N: 2, Weight: 1}},
		WorkingSets: []app.WorkingSet{{Bytes: 64 << 10, Frac: 1}},
		RegularFrac: 0.7, DepChain: 2, RepBytes: 8 << 10,
	}, code+3<<20, data+3<<28, seed+3)
	return &opBody{chains: map[int][]*app.Phase{
		OpGetattr: {decode, inode},
		OpLookup:  {decode, inode},
		OpRead:    {decode, inode, blkcopy},
		OpWrite:   {decode, commit},
	}}
}
