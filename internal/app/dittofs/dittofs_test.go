package dittofs

import (
	"testing"

	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// testConfig shrinks the deployment so tests stay fast while the dataset
// still dwarfs the page cache (forced misses) and the block cache.
func testConfig(backend string) Config {
	cfg := DefaultConfig(backend)
	cfg.DatasetBytes = 64 << 20
	cfg.HotBlocks = 128
	cfg.BlockCacheMB = 4
	cfg.WALBytes = 4 << 20
	cfg.LSMFlushBytes = 64 << 10
	return cfg
}

type fsRun struct {
	sent, received int
	walAppends     uint64
	cacheHits      uint64
	cacheMisses    uint64
	fsyncs         uint64
	diskRead       uint64
	diskWrite      uint64
	blobRead       uint64
	blobWrite      uint64
	latMean        float64
}

// runFS drives one DittoFS deployment with the FS mix for a short virtual
// window and returns its observable counters.
func runFS(t *testing.T, backend string, seed int64) fsRun {
	t.Helper()
	return runFSFor(t, backend, seed, 120*sim.Millisecond)
}

func runFSFor(t *testing.T, backend string, seed int64, window sim.Time) fsRun {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	spec := platform.A()
	spec.PageCacheMB = 16
	srv := platform.NewMachine(eng, "srv", spec, platform.WithCoreCount(4))
	blob := platform.NewMachine(eng, "blob", spec, platform.WithCoreCount(4))
	cli := platform.NewMachine(eng, "cli", spec, platform.WithCoreCount(4))
	cl.Add(srv)
	cl.Add(blob)
	cl.Add(cli)

	s := NewService(srv, blob, 9300, testConfig(backend), seed)
	s.Start()
	gen := loadgen.New(loadgen.Config{
		Name: "fs-client", Machine: cli, Target: srv.Kernel, Port: 9300,
		Conns: 8, Mix: loadgen.FSMix(), Seed: seed,
	})
	gen.Start()
	eng.RunUntil(window)
	srv.Kernel.Stop()
	blob.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()

	hits, misses := s.BlockCacheStats()
	sc := srv.Disk.Counters()
	bc := blob.Disk.Counters()
	return fsRun{
		sent: gen.Sent(), received: gen.Received(),
		walAppends: s.WALAppends(),
		cacheHits:  hits, cacheMisses: misses,
		fsyncs:   srv.Kernel.Fsyncs() + blob.Kernel.Fsyncs(),
		diskRead: sc.ReadBytes, diskWrite: sc.WriteBytes,
		blobRead: bc.ReadBytes, blobWrite: bc.WriteBytes,
		latMean: gen.Latency().Mean(),
	}
}

// TestBackendsSmoke drives every backend for a race-detector-sized window:
// it asserts only that the service moves — requests answered, WAL
// committing, device written — so `go test -race -short` can afford to run
// the full storage path (client → adapter → WAL fsync → content store)
// while the fidelity assertions stay in the long tests below.
func TestBackendsSmoke(t *testing.T) {
	for _, backend := range []string{"mem", "lsm", "blob"} {
		r := runFSFor(t, backend, 5, 30*sim.Millisecond)
		if r.received == 0 || r.walAppends == 0 || r.diskWrite == 0 {
			t.Fatalf("%s: storage path idle (received=%d walAppends=%d diskWrite=%dB)",
				backend, r.received, r.walAppends, r.diskWrite)
		}
	}
}

// TestBackendsServeRequests checks that each backend serves the FS mix end
// to end with its characteristic storage signature: every backend commits
// through the fsynced WAL and exercises the block cache; lsm adds local
// disk reads and amplified writes; blob moves content traffic to the
// remote tier's device; mem keeps content off the disk entirely.
func TestBackendsServeRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("drives three full deployments; skipped in -short")
	}
	for _, backend := range []string{"mem", "lsm", "blob"} {
		r := runFS(t, backend, 7)
		if r.received < 100 {
			t.Fatalf("%s: received %d responses", backend, r.received)
		}
		if r.walAppends == 0 || r.fsyncs == 0 {
			t.Fatalf("%s: WAL commit path idle (appends=%d fsyncs=%d)",
				backend, r.walAppends, r.fsyncs)
		}
		if r.cacheHits == 0 || r.cacheMisses == 0 {
			t.Fatalf("%s: block cache degenerate (hits=%d misses=%d)",
				backend, r.cacheHits, r.cacheMisses)
		}
		if r.diskWrite == 0 {
			t.Fatalf("%s: WAL fsyncs produced no device writes", backend)
		}
		switch backend {
		case "mem":
			if r.diskRead != 0 {
				t.Fatalf("mem: content reads hit the disk (%dB)", r.diskRead)
			}
		case "lsm":
			if r.diskRead == 0 {
				t.Fatalf("lsm: cache misses produced no disk reads")
			}
		case "blob":
			if r.blobRead == 0 || r.blobWrite == 0 {
				t.Fatalf("blob: remote tier device idle (read=%dB write=%dB)",
					r.blobRead, r.blobWrite)
			}
		}
	}
}

// TestLSMWriteAmplification checks the compaction-shaped write path: the
// lsm backend's device absorbs more bytes than the WAL + journal alone
// (flushes rewrite the memtable; compactions rewrite it again).
func TestLSMWriteAmplification(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two full deployments; skipped in -short")
	}
	mem := runFS(t, "mem", 7)
	lsm := runFS(t, "lsm", 7)
	if lsm.diskWrite <= mem.diskWrite {
		t.Fatalf("lsm device writes %dB not amplified over mem's %dB (WAL-only)",
			lsm.diskWrite, mem.diskWrite)
	}
}

// TestDeterministicAcrossRuns checks that two same-seed runs are
// observationally identical — the repo's byte-identical determinism
// invariant extended to the storage family.
func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("drives six full deployments; skipped in -short")
	}
	for _, backend := range []string{"mem", "lsm", "blob"} {
		a := runFS(t, backend, 11)
		b := runFS(t, backend, 11)
		if a != b {
			t.Fatalf("%s: same-seed runs diverged:\n  a=%+v\n  b=%+v", backend, a, b)
		}
	}
}

// TestFSMixMatchesOps pins the loadgen mix to the dittofs kind numbering:
// the two packages share kinds by convention, and this is the assertion
// that keeps them aligned.
func TestFSMixMatchesOps(t *testing.T) {
	mix := loadgen.FSMix()
	if len(mix) != NumOps {
		t.Fatalf("FSMix has %d entries for %d ops", len(mix), NumOps)
	}
	for i, m := range mix {
		if m.Kind != i {
			t.Fatalf("FSMix entry %d has kind %d", i, m.Kind)
		}
		if OpName(m.Kind) == "fs-op" {
			t.Fatalf("FSMix kind %d has no dittofs op name", m.Kind)
		}
	}
	if w := mix[OpWrite]; w.ReqBytes <= DefaultConfig("mem").WriteBytes {
		t.Fatalf("write requests (%dB) do not carry the write payload", w.ReqBytes)
	}
}

// TestWALSurvivesAdapterCrash checks the durability contract end to end at
// the service level: WAL bytes committed (fsynced) before a crash stay on
// the device; dirty pages of the dead process are dropped, not flushed.
func TestWALSurvivesAdapterCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full write-only deployment; skipped in -short")
	}
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	spec := platform.A()
	spec.PageCacheMB = 16
	srv := platform.NewMachine(eng, "srv", spec, platform.WithCoreCount(4))
	cli := platform.NewMachine(eng, "cli", spec, platform.WithCoreCount(4))
	cl.Add(srv)
	cl.Add(cli)
	s := NewService(srv, nil, 9300, testConfig("mem"), 3)
	s.Start()
	gen := loadgen.New(loadgen.Config{
		Name: "fs-client", Machine: cli, Target: srv.Kernel, Port: 9300,
		Conns: 4, Mix: []loadgen.MixEntry{{Kind: OpWrite, Weight: 1, ReqBytes: 8 << 10}},
		Seed: 3,
	})
	gen.Start()
	eng.RunUntil(200 * sim.Millisecond)
	if s.WALAppends() == 0 {
		t.Fatal("no WAL commits before the crash")
	}
	written := srv.Disk.Counters().WriteBytes
	if written == 0 {
		t.Fatal("fsynced WAL records never reached the device")
	}
	var dirtyDropped bool
	if f := srv.Kernel.LookupFile("/wal/dittofs.wal"); f != nil {
		srv.Kernel.KillProc(s.Adapter.Proc())
		dirtyDropped = f.DirtyPages() == 0
	}
	if !dirtyDropped {
		t.Fatal("crash left un-fsynced dirty WAL pages pending")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
	// The fsynced prefix survives: killing the writer must not retract bytes
	// already on stable storage.
	if got := srv.Disk.Counters().WriteBytes; got < written {
		t.Fatalf("device write count went backwards after crash: %d < %d", got, written)
	}
}
