package app

import (
	"testing"

	"ditto/internal/isa"
)

func cacheSpec() PhaseSpec {
	s := basicSpec()
	s.JitterPct = 0.2 // variants must differ in length, like real requests
	return s
}

// TestStreamCacheRotatesAndStaysStable: Next must cycle through exactly
// StreamVariants distinct pregenerated traces and, on wrap, hand back the
// same trace objects with byte-identical streams — the cache never
// regenerates or mutates a variant.
func TestStreamCacheRotatesAndStaysStable(t *testing.T) {
	ph := NewPhase(cacheSpec(), 0x400000, 0x10000000, 7)
	c := NewStreamCache(&PhaseBody{Phases: []*Phase{ph}})

	first := make([]*isa.Instr, StreamVariants)
	snapshots := make([][]isa.Instr, StreamVariants)
	seen := map[*isa.Instr]bool{}
	for i := 0; i < StreamVariants; i++ {
		tr := c.Next(0)
		first[i] = &tr.Stream[0]
		if seen[first[i]] {
			t.Fatalf("variant %d repeated before the rotation wrapped", i)
		}
		seen[first[i]] = true
		snapshots[i] = append([]isa.Instr(nil), tr.Stream...)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < StreamVariants; i++ {
			tr := c.Next(0)
			if &tr.Stream[0] != first[i] {
				t.Fatalf("round %d variant %d: rotation did not wrap to the same trace", round, i)
			}
			if len(tr.Stream) != len(snapshots[i]) {
				t.Fatalf("round %d variant %d: stream length changed", round, i)
			}
			for j := range tr.Stream {
				if tr.Stream[j] != snapshots[i][j] {
					t.Fatalf("round %d variant %d instr %d: cached stream mutated", round, i, j)
				}
			}
		}
	}
}

// TestStreamCachePerKindSets: distinct kinds get distinct variant sets
// (PhaseBody's per-kind scale must survive the cache).
func TestStreamCachePerKindSets(t *testing.T) {
	ph := NewPhase(basicSpec(), 0x400000, 0x10000000, 7)
	c := NewStreamCache(&PhaseBody{Phases: []*Phase{ph}, Scale: map[int]float64{1: 0.5}})
	full := c.Next(0)
	half := c.Next(1)
	if len(half.Stream) >= len(full.Stream) {
		t.Fatalf("scaled kind should be shorter: %d vs %d", len(half.Stream), len(full.Stream))
	}
}

// TestStreamCacheSteadyStateAllocationFree guards the serving path: once a
// kind's variants are pregenerated, Next must not allocate.
func TestStreamCacheSteadyStateAllocationFree(t *testing.T) {
	ph := NewPhase(cacheSpec(), 0x400000, 0x10000000, 7)
	c := NewStreamCache(&PhaseBody{Phases: []*Phase{ph}})
	c.Next(0) // pregenerate
	allocs := testing.AllocsPerRun(100, func() {
		c.Next(0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Next allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkEmitRequestUncached measures fresh per-request stream emission —
// what every request paid before the cache.
func BenchmarkEmitRequestUncached(b *testing.B) {
	ph := NewPhase(cacheSpec(), 0x400000, 0x10000000, 7)
	body := &PhaseBody{Phases: []*Phase{ph}}
	var buf []isa.Instr
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = body.EmitRequest(0, buf[:0])
	}
}

// BenchmarkEmitRequestCached measures serving a pregenerated decoded variant
// from the rotating cache — the steady-state request path.
func BenchmarkEmitRequestCached(b *testing.B) {
	ph := NewPhase(cacheSpec(), 0x400000, 0x10000000, 7)
	c := NewStreamCache(&PhaseBody{Phases: []*Phase{ph}})
	c.Next(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Next(0)
	}
}
