package fault

import (
	"sync"
	"testing"

	"ditto/internal/app"
	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// fixture is a two-machine parent→child deployment with a fault fabric.
type fixture struct {
	eng       *sim.Engine
	cl        *platform.Cluster
	m1, m2    *platform.Machine
	parent    *app.Tier
	child     *app.Tier
	fabric    *Fabric
	plane     *Plane
	collector *dtrace.Collector
}

type tierRegistry map[string]*app.Tier

func (r tierRegistry) Lookup(name string) (*kernel.Kernel, int) {
	t := r[name]
	return t.M.Kernel, t.Cfg.Port
}

func newFixture(seed int64) *fixture {
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	m1 := platform.NewMachine(eng, "m1", platform.A(), platform.WithCoreCount(4))
	m2 := platform.NewMachine(eng, "m2", platform.A(), platform.WithCoreCount(4))
	cl.Add(m1)
	cl.Add(m2)
	collector := dtrace.NewCollector(1)
	reg := tierRegistry{}
	child := app.NewTier(m2, app.TierConfig{Name: "child", Port: 9001,
		RespBytes: 256, Seed: seed + 1}, nil)
	child.Registry = reg
	child.Collector = collector
	parent := app.NewTier(m1, app.TierConfig{Name: "parent", Port: 9000,
		RespBytes: 512, Seed: seed,
		Calls: map[int][]app.Call{0: {{Target: "child", Prob: 1, ReqBytes: 128, RespBytes: 256}}},
		Resilience: &app.Resilience{
			Timeout: 2 * sim.Millisecond, Retries: 2, Backoff: 200 * sim.Microsecond,
			BreakerFails: 8, BreakerOpenFor: 10 * sim.Millisecond,
		},
	}, nil)
	parent.Registry = reg
	parent.Collector = collector
	reg["child"] = child
	reg["parent"] = parent
	child.Start()
	parent.Start()
	fabric := Interpose(cl, []*platform.Machine{m1, m2}, uint64(seed)|1)
	plane := NewPlane(eng, fabric, map[string]*app.Tier{"parent": parent, "child": child})
	return &fixture{eng: eng, cl: cl, m1: m1, m2: m2, parent: parent,
		child: child, fabric: fabric, plane: plane, collector: collector}
}

// drive sends n paced requests through the parent and reports per-request
// failure flags in send order.
func (f *fixture) drive(n int, pace sim.Time) []bool {
	out := make([]bool, n)
	cp := f.m1.Kernel.NewProc("cli")
	cp.Spawn("cli", func(th *kernel.Thread) {
		conn := th.Connect(f.m1.Kernel, 9000)
		for i := 0; i < n; i++ {
			th.Sleep(pace)
			req := &app.Request{Kind: 0, SentAt: th.Now()}
			th.Send(conn, 64, req)
			th.Recv(conn)
			out[i] = req.Failed
		}
	})
	f.eng.RunUntil(30 * sim.Second)
	f.m1.Kernel.Stop()
	f.m2.Kernel.Stop()
	f.eng.Run()
	return out
}

func count(flags []bool, want bool) int {
	n := 0
	for _, v := range flags {
		if v == want {
			n++
		}
	}
	return n
}

func TestPartitionAndHeal(t *testing.T) {
	f := newFixture(7)
	f.plane.Schedule(Scenario{Name: "partition", Events: []Event{
		{At: 5 * sim.Millisecond, Op: OpPartition, Tiers: []string{"parent"}, TiersB: []string{"child"}},
		{At: 25 * sim.Millisecond, Op: OpHeal},
	}})
	flags := f.drive(40, sim.Millisecond)
	failed := count(flags, true)
	if failed == 0 {
		t.Fatal("partition produced no failed requests")
	}
	if count(flags, false) == 0 {
		t.Fatal("no request succeeded outside the partition window")
	}
	if flags[len(flags)-1] {
		t.Fatal("requests should succeed again after heal")
	}
	if f.fabric.Dropped() == 0 {
		t.Fatal("partitioned links dropped nothing")
	}
}

func TestCrashRestartScenario(t *testing.T) {
	f := newFixture(11)
	f.plane.Schedule(Scenario{Name: "crash", Events: []Event{
		{At: 5 * sim.Millisecond, Op: OpCrash, Tiers: []string{"child"}},
		{At: 20 * sim.Millisecond, Op: OpRestart, Tiers: []string{"child"}},
	}})
	flags := f.drive(40, sim.Millisecond)
	if count(flags, true) == 0 {
		t.Fatal("crash produced no failed requests")
	}
	if flags[len(flags)-1] {
		t.Fatal("requests should succeed after restart")
	}
	var retries int
	for _, s := range f.collector.Spans() {
		if s.Service == "parent" {
			retries += int(s.Retries)
		}
	}
	if retries == 0 {
		t.Fatal("outage should force parent retries")
	}
}

func TestSlowCPUThrottle(t *testing.T) {
	f := newFixture(13)
	base := f.m2.Cores[0].Time(1e6)
	f.plane.Schedule(Scenario{Name: "slow", Events: []Event{
		{At: 0, Op: OpSlowCPU, Tiers: []string{"child"}, Throttle: 0.5},
	}})
	f.eng.RunUntil(sim.Millisecond)
	slowed := f.m2.Cores[0].Time(1e6)
	if slowed != 2*base {
		t.Fatalf("0.5 throttle should double cycle time: base=%v slowed=%v", base, slowed)
	}
	f.plane.Schedule(Scenario{Name: "heal", Events: []Event{
		{At: f.eng.Now(), Op: OpHeal},
	}})
	f.eng.RunUntil(f.eng.Now() + sim.Microsecond)
	if f.m2.Cores[0].Time(1e6) != base {
		t.Fatal("heal should restore full clock")
	}
}

// signature captures everything observable about a run: per-request failure
// flags, per-link drop counts, and the full span stream.
func runScenario(seed int64) ([]bool, []uint64, []dtrace.Span, sim.Time) {
	f := newFixture(seed)
	f.plane.Schedule(Scenario{Name: "mixed", Events: []Event{
		{At: 3 * sim.Millisecond, Op: OpLoss, Loss: 0.2},
		{At: 8 * sim.Millisecond, Op: OpDelay, Delay: 500 * sim.Microsecond},
		{At: 12 * sim.Millisecond, Op: OpCrash, Tiers: []string{"child"}},
		{At: 20 * sim.Millisecond, Op: OpRestart, Tiers: []string{"child"}},
		{At: 26 * sim.Millisecond, Op: OpSlowCPU, Tiers: []string{"child"}, Throttle: 0.4},
		{At: 32 * sim.Millisecond, Op: OpHeal},
	}})
	flags := f.drive(50, sim.Millisecond)
	var drops []uint64
	for _, l := range f.fabric.Links() {
		drops = append(drops, l.Fault.Dropped)
	}
	return flags, drops, f.collector.Spans(), f.eng.Now()
}

// TestScenarioDeterminism replays a mixed scenario: same seed → identical
// failure pattern, drop counts, span stream, and final virtual time — even
// when the replays run concurrently in one OS process (cell isolation).
func TestScenarioDeterminism(t *testing.T) {
	type sig struct {
		flags []bool
		drops []uint64
		spans []dtrace.Span
		end   sim.Time
	}
	runs := make([]sig, 3)
	var wg sync.WaitGroup
	for i := range runs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fl, dr, sp, end := runScenario(21)
			runs[i] = sig{fl, dr, sp, end}
		}()
	}
	wg.Wait()
	for i := 1; i < len(runs); i++ {
		if runs[i].end != runs[0].end {
			t.Fatalf("run %d final time %v != %v", i, runs[i].end, runs[0].end)
		}
		if len(runs[i].flags) != len(runs[0].flags) {
			t.Fatalf("run %d flag count differs", i)
		}
		for j := range runs[0].flags {
			if runs[i].flags[j] != runs[0].flags[j] {
				t.Fatalf("run %d request %d outcome differs", i, j)
			}
		}
		if len(runs[i].drops) != len(runs[0].drops) {
			t.Fatalf("run %d link count differs", i)
		}
		for j := range runs[0].drops {
			if runs[i].drops[j] != runs[0].drops[j] {
				t.Fatalf("run %d link %d drops %d != %d", i, j, runs[i].drops[j], runs[0].drops[j])
			}
		}
		if len(runs[i].spans) != len(runs[0].spans) {
			t.Fatalf("run %d span count %d != %d", i, len(runs[i].spans), len(runs[0].spans))
		}
		for j := range runs[0].spans {
			if runs[i].spans[j] != runs[0].spans[j] {
				t.Fatalf("run %d span %d differs: %+v vs %+v", i, j, runs[i].spans[j], runs[0].spans[j])
			}
		}
	}
	// A different seed must change the loss pattern's outcome somewhere.
	fl, _, _, _ := runScenario(22)
	same := len(fl) == len(runs[0].flags)
	if same {
		identical := true
		for j := range fl {
			if fl[j] != runs[0].flags[j] {
				identical = false
				break
			}
		}
		if identical {
			// Loss streams differ by seed, but both runs may still succeed
			// everywhere if retries absorb every drop; check drops differ.
			_, dr, _, _ := runScenario(22)
			diff := false
			for j := range dr {
				if dr[j] != runs[0].drops[j] {
					diff = true
					break
				}
			}
			if !diff {
				t.Fatal("different seeds produced identical drop patterns")
			}
		}
	}
}

func TestClientPathStaysFaultFree(t *testing.T) {
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	a := platform.NewMachine(eng, "a", platform.A(), platform.WithCoreCount(2))
	b := platform.NewMachine(eng, "b", platform.A(), platform.WithCoreCount(2))
	c := platform.NewMachine(eng, "c", platform.A(), platform.WithCoreCount(2))
	cl.Add(a)
	cl.Add(b)
	cl.Add(c)
	fab := Interpose(cl, []*platform.Machine{a, b}, 5)
	if p := fab.Path(a.Kernel, b.Kernel); p.Fault == nil {
		t.Fatal("managed pair should carry a fault cell")
	}
	if p := fab.Path(a.Kernel, c.Kernel); p.Fault != nil {
		t.Fatal("path to unmanaged machine must stay fault-free")
	}
}
