// Package fault implements deterministic chaos planes: declarative,
// schedulable fault scenarios against a deployed application — tier crashes
// and restarts, network partitions between tier groups, per-link packet loss
// and latency spikes, and slow-replica CPU throttling. Every action fires as
// a simulation-engine event at a scenario-fixed virtual time, and all
// randomness (per-link loss streams) derives from the cell's seed, so a
// scenario replays byte-identically at any -parallel width and across
// repeated runs.
package fault

import (
	"ditto/internal/app"
	"ditto/internal/kernel"
	"ditto/internal/netsim"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// Link is one directed machine pair with its mutable fault cell.
type Link struct {
	Src, Dst *platform.Machine
	Fault    *netsim.LinkFault
}

// Fabric wraps a cluster's fabric so every directed link among a managed set
// of machines carries a seeded LinkFault cell a plane can flip mid-run.
// Paths touching unmanaged machines (the client) stay fault-free.
type Fabric struct {
	inner  kernel.Fabric
	byPair map[[2]*kernel.Kernel]*netsim.LinkFault
	links  []Link
}

// Interpose builds fault cells for every directed pair of the given machines
// and re-wires their kernels through the wrapping fabric. Per-link seeds
// derive from machine indices — never pointers — so concurrent cells with
// the same seed produce identical loss streams.
func Interpose(cl *platform.Cluster, machines []*platform.Machine, seed uint64) *Fabric {
	f := &Fabric{inner: cl, byPair: map[[2]*kernel.Kernel]*netsim.LinkFault{}}
	for i, a := range machines {
		for j, b := range machines {
			if i == j {
				continue
			}
			lf := netsim.NewLinkFault(seed ^ (uint64(i+1)<<20 | uint64(j+1)))
			f.byPair[[2]*kernel.Kernel{a.Kernel, b.Kernel}] = lf
			f.links = append(f.links, Link{Src: a, Dst: b, Fault: lf})
		}
	}
	for _, m := range machines {
		m.Kernel.SetFabric(f)
	}
	return f
}

// Path implements kernel.Fabric, attaching the link's fault cell.
func (f *Fabric) Path(src, dst *kernel.Kernel) netsim.Path {
	p := f.inner.Path(src, dst)
	if lf := f.byPair[[2]*kernel.Kernel{src, dst}]; lf != nil {
		p.Fault = lf
	}
	return p
}

// Links returns the managed directed links in deterministic order.
func (f *Fabric) Links() []Link { return f.links }

// Dropped sums messages blackholed or lost across all managed links.
func (f *Fabric) Dropped() uint64 {
	var n uint64
	for _, l := range f.links {
		n += l.Fault.Dropped
	}
	return n
}

// Op is one fault action kind.
type Op int

const (
	// OpCrash kills the named tiers' processes.
	OpCrash Op = iota
	// OpRestart relaunches crashed tiers.
	OpRestart
	// OpPartition blackholes both directions between the machines hosting
	// Tiers and those hosting TiersB. Partitions are machine-granular:
	// co-located tiers are cut together, as a real switch failure would.
	OpPartition
	// OpHeal clears link faults (all links when no tiers are named, else
	// links touching the named tiers' machines) and restores full CPU speed
	// on the affected machines.
	OpHeal
	// OpLoss sets per-message loss probability on links touching the named
	// tiers' machines (all managed links when none are named).
	OpLoss
	// OpDelay adds one-way latency on links touching the named tiers'
	// machines (all managed links when none are named).
	OpDelay
	// OpSlowCPU throttles the named tiers' machines to Throttle of full
	// clock — the slow-replica fault.
	OpSlowCPU
)

// Event is one scheduled fault action. Targets are logical tier names, so
// the same scenario addresses an original deployment and its clone.
type Event struct {
	At       sim.Time
	Op       Op
	Tiers    []string // primary targets (crash/restart/slowcpu/link side A)
	TiersB   []string // partition far side
	Loss     float64  // OpLoss probability
	Delay    sim.Time // OpDelay added one-way latency
	Throttle float64  // OpSlowCPU clock fraction (0,1]
}

// Scenario is a named, declarative fault schedule.
type Scenario struct {
	Name   string
	Events []Event
}

// Plane binds scenarios to one cell's fabric and tier set.
type Plane struct {
	eng    *sim.Engine // fallback timeline for tierless link events; may be nil
	fabric *Fabric
	tiers  map[string]*app.Tier
}

// NewPlane builds a plane. fabric may be nil when the scenario uses no link
// faults; tiers maps logical names to deployed tiers. eng is only a fallback
// timeline (it may be nil under sharded execution): every fault action is
// scheduled on the engine of the machine whose state it mutates.
func NewPlane(eng *sim.Engine, fabric *Fabric, tiers map[string]*app.Tier) *Plane {
	return &Plane{eng: eng, fabric: fabric, tiers: tiers}
}

// Schedule registers every event of the scenario. Each event is decomposed
// at schedule time into per-owner actions — a tier crash fires on the tier's
// machine, a link fault on the link's source machine (the side that consults
// the fault cell at send time) — so under sharded execution every mutation
// happens on the shard that owns the state. Scheduling happens while the
// world is idle, so no lookahead constraint applies.
func (p *Plane) Schedule(sc Scenario) {
	for _, ev := range sc.Events {
		switch ev.Op {
		case OpCrash, OpRestart:
			op := ev.Op
			for _, name := range ev.Tiers {
				t := p.tiers[name]
				if t == nil {
					continue
				}
				t.M.Eng.ScheduleFunc(ev.At, func() {
					if op == OpCrash {
						t.Crash()
					} else {
						t.Restart()
					}
				})
			}
		case OpPartition:
			a, b := p.machinesOf(ev.Tiers), p.machinesOf(ev.TiersB)
			for _, l := range p.managedLinks() {
				if (a[l.Src] && b[l.Dst]) || (b[l.Src] && a[l.Dst]) {
					p.scheduleLink(ev.At, l, func(f *netsim.LinkFault) { f.Down = true })
				}
			}
		case OpHeal:
			touch := p.machinesOf(append(append([]string(nil), ev.Tiers...), ev.TiersB...))
			for _, l := range p.managedLinks() {
				if len(touch) == 0 || touch[l.Src] || touch[l.Dst] {
					p.scheduleLink(ev.At, l, (*netsim.LinkFault).Clear)
				}
			}
			for _, m := range p.machineList(touch) {
				m := m
				m.Eng.ScheduleFunc(ev.At, func() { m.SetCPUThrottle(1) })
			}
		case OpLoss, OpDelay:
			touch := p.machinesOf(ev.Tiers)
			for _, l := range p.managedLinks() {
				if len(touch) == 0 || touch[l.Src] || touch[l.Dst] {
					if ev.Op == OpLoss {
						loss := ev.Loss
						p.scheduleLink(ev.At, l, func(f *netsim.LinkFault) { f.LossProb = loss })
					} else {
						d := ev.Delay
						p.scheduleLink(ev.At, l, func(f *netsim.LinkFault) { f.ExtraOne = d })
					}
				}
			}
		case OpSlowCPU:
			thr := ev.Throttle
			for _, m := range p.machineList(p.machinesOf(ev.Tiers)) {
				m := m
				m.Eng.ScheduleFunc(ev.At, func() { m.SetCPUThrottle(thr) })
			}
		}
	}
}

// scheduleLink arms one link-fault mutation on the link's owning timeline:
// the source machine's engine, because the sender is the side that reads the
// fault cell inside netsim.Send.
func (p *Plane) scheduleLink(at sim.Time, l Link, fn func(*netsim.LinkFault)) {
	f := l.Fault
	l.Src.Eng.ScheduleFunc(at, func() { fn(f) })
}

// machineList resolves a machine set to a deterministic slice: all tiers'
// machines (in tier-name order) when the set is empty, else the set filtered
// through the same ordering. Fault actions must not iterate Go maps.
func (p *Plane) machineList(set map[*platform.Machine]bool) []*platform.Machine {
	var out []*platform.Machine
	seen := map[*platform.Machine]bool{}
	for _, t := range p.tierList() {
		m := t.M
		if seen[m] || (len(set) > 0 && !set[m]) {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	return out
}

// managedLinks returns the fabric's links (empty without a fabric).
func (p *Plane) managedLinks() []Link {
	if p.fabric == nil {
		return nil
	}
	return p.fabric.links
}

// machinesOf resolves tier names to the set of machines hosting them.
// Unknown names are skipped, so scenarios survive topology variants.
func (p *Plane) machinesOf(names []string) map[*platform.Machine]bool {
	out := map[*platform.Machine]bool{}
	for _, name := range names {
		if t := p.tiers[name]; t != nil {
			out[t.M] = true
		}
	}
	return out
}

// tierList returns the plane's tiers in deterministic name order.
func (p *Plane) tierList() []*app.Tier {
	names := make([]string, 0, len(p.tiers))
	for name := range p.tiers {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make([]*app.Tier, len(names))
	for i, name := range names {
		out[i] = p.tiers[name]
	}
	return out
}
