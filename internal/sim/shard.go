// Sharded conservative-parallel execution: a World partitions a simulation
// into per-machine shard engines and advances them concurrently in
// bulk-synchronous windows.
//
// The synchronization discipline is classic conservative PDES lookahead.
// Every cross-shard interaction in this repository is a network delivery, and
// the fabric guarantees a minimum one-way delay L (the cluster RTT/2, 50µs at
// the default 100µs RTT; loopback never crosses shards). So if the earliest
// pending event anywhere sits at time `next`, no shard can receive a
// cross-shard message earlier than `next + L`, and every shard may safely
// fire its local events in [next, next+L) without hearing from anyone.
//
// Determinism across worker widths is structural, not incidental:
//
//   - Within a window each shard runs serially in its own (at, seq) order,
//     exactly as a standalone Engine would.
//   - Cross-shard events are not injected directly; they are staged in
//     per-(dst, src) lanes. Each lane preserves the sender's firing order,
//     and the barrier merge drains lanes in ascending source-shard order with
//     a stable sort by delivery time — a schedule that depends only on what
//     each shard did, never on when the OS ran it.
//   - The worker pool only decides which OS thread advances which shard;
//     it cannot reorder anything observable. Width 1 and width 64 therefore
//     produce byte-identical simulations.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// crossEvent is one staged cross-shard callback.
type crossEvent struct {
	at Time
	fn func()
}

// World coordinates a set of shard engines under conservative windows.
// Construct with NewWorld, add shards with NewShard before the first run,
// then drive it with Run/RunUntil/RunFor exactly like an Engine. A World is
// itself single-driver: only the goroutine calling Run* may touch it.
type World struct {
	lookahead Time
	width     int
	shards    []*Engine
	running   bool
	now       Time

	// lanes[dst][src] stages cross-shard events between barriers; mu[dst]
	// serializes concurrent senders targeting the same destination. scratch
	// reuses one merge buffer across windows.
	mu      []sync.Mutex
	lanes   [][][]crossEvent
	scratch []crossEvent
}

// NewWorld builds a world whose shards may run ahead of each other by up to
// lookahead — the minimum cross-shard one-way delay the fabric can produce.
// width caps how many shards advance concurrently; width 1 is fully serial
// and produces the same bytes as any other width.
func NewWorld(lookahead Time, width int) *World {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: world lookahead must be positive, got %v", lookahead))
	}
	if width < 1 {
		width = 1
	}
	return &World{lookahead: lookahead, width: width}
}

// NewShard creates an engine bound to this world. Shards must be created
// before the first Run* call.
func (w *World) NewShard() *Engine {
	if w.running {
		panic("sim: NewShard during run")
	}
	e := NewEngine()
	e.id = len(w.shards)
	e.world = w
	w.shards = append(w.shards, e)
	w.mu = nil // shard set changed; prepare() rebuilds the lanes
	return e
}

// Lookahead returns the world's conservative horizon.
func (w *World) Lookahead() Time { return w.lookahead }

// Width returns the worker cap.
func (w *World) Width() int { return w.width }

// Now returns the world's virtual time: the point every shard has reached.
func (w *World) Now() Time { return w.now }

// Pending sums not-yet-fired events across shards (staged cross events are
// already scheduled on their destination between runs, so nothing is missed).
func (w *World) Pending() int {
	n := 0
	for _, s := range w.shards {
		n += s.Pending()
	}
	return n
}

// Run fires events until no shard has any left.
func (w *World) Run() { w.run(0, false) }

// RunUntil fires events with time ≤ t on every shard, then aligns all shard
// clocks (and the world clock) to exactly t.
func (w *World) RunUntil(t Time) { w.run(t, true) }

// RunFor runs the world for a span of d from the current time.
func (w *World) RunFor(d Time) { w.RunUntil(w.now + d) }

func (w *World) prepare() {
	if len(w.mu) == len(w.shards) {
		return
	}
	n := len(w.shards)
	w.mu = make([]sync.Mutex, n)
	w.lanes = make([][][]crossEvent, n)
	for i := range w.lanes {
		w.lanes[i] = make([][]crossEvent, n)
	}
}

func (w *World) run(t Time, bounded bool) {
	w.prepare()
	w.running = true
	for {
		next, ok := w.minNext()
		if !ok || (bounded && next > t) {
			break
		}
		bound := next + w.lookahead
		if bounded && bound > t {
			// Final window before the deadline: t+1 still respects the
			// horizon (we only get here when next+lookahead > t) and makes
			// the exclusive bound include events at exactly t, matching
			// Engine.RunUntil's inclusive deadline.
			bound = t + 1
		}
		w.runWindow(bound)
		w.merge()
	}
	w.running = false
	if bounded {
		for _, s := range w.shards {
			if s.now < t {
				s.now = t
			}
		}
		if w.now < t {
			w.now = t
		}
	} else {
		// Drain mode: align everyone to the furthest shard so a later
		// bounded run resumes from a consistent clock.
		max := w.now
		for _, s := range w.shards {
			if s.now > max {
				max = s.now
			}
		}
		for _, s := range w.shards {
			if s.now < max {
				s.now = max
			}
		}
		w.now = max
	}
}

// minNext returns the earliest pending event time across shards.
func (w *World) minNext() (Time, bool) {
	var min Time
	ok := false
	for _, s := range w.shards {
		if at, has := s.nextAt(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// runWindow advances every shard to the exclusive bound, spreading shards
// over up to width workers. The WaitGroup barrier plus the atomic work
// counter give the driver a happens-before edge over everything each shard
// did, so the following merge reads staged lanes race-free.
func (w *World) runWindow(bound Time) {
	n := len(w.shards)
	k := w.width
	if k > n {
		k = n
	}
	if k <= 1 {
		for _, s := range w.shards {
			s.runWindow(bound)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		// ditto:determinism-ok reviewed: conservative-window workers. Shards
		// share no mutable state inside a window (cross events go through the
		// mutex-guarded lanes), each shard is claimed by exactly one worker
		// via the atomic counter, and wg.Wait joins all of them before the
		// barrier merge — scheduling order cannot leak into results.
		go func() {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1))
				if j >= n {
					return
				}
				w.shards[j].runWindow(bound)
			}
		}()
	}
	wg.Wait()
}

// stage appends a cross-shard event to the destination's inbox lane for this
// source. The conservative contract is audited here: an event landing closer
// than one lookahead from the sender's clock could belong inside a window
// some shard has already executed past.
func (w *World) stage(src, dst *Engine, at Time, fn func()) {
	if at < src.now+w.lookahead {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead %v from shard %d now %v",
			at, w.lookahead, src.id, src.now))
	}
	w.mu[dst.id].Lock()
	w.lanes[dst.id][src.id] = append(w.lanes[dst.id][src.id], crossEvent{at: at, fn: fn})
	w.mu[dst.id].Unlock()
}

// merge drains every staged lane into its destination shard's heap. Order is
// deterministic by construction: destinations ascending, then for each
// destination its source lanes ascending with each lane in send order,
// stable-sorted by delivery time. Runs only between windows, on the driver.
func (w *World) merge() {
	for dst := range w.shards {
		buf := w.scratch[:0]
		for src := range w.shards {
			lane := w.lanes[dst][src]
			if len(lane) == 0 {
				continue
			}
			buf = append(buf, lane...)
			for i := range lane {
				lane[i] = crossEvent{}
			}
			w.lanes[dst][src] = lane[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].at < buf[j].at })
		d := w.shards[dst]
		for _, ev := range buf {
			at := ev.at
			if at < d.now {
				// The receiver idled past the delivery time inside its
				// window (it had no local events there); the horizon still
				// guarantees no fired event depended on this one, so the
				// delivery slots in at the receiver's current clock.
				at = d.now
			}
			d.schedule(at, ev.fn, true)
		}
		w.scratch = buf[:0]
	}
}
