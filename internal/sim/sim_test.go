package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v", Second.Seconds())
	}
	if Millisecond.Millis() != 1.0 {
		t.Fatalf("Millisecond.Millis() = %v", Millisecond.Millis())
	}
	if FromSeconds(1.5) != Second+500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromSeconds(-1) != 0 {
		t.Fatalf("FromSeconds(-1) should clamp to 0")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{4 * Microsecond, "4.000us"},
		{5 * Nanosecond, "5.000ns"},
		{7, "7ps"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Double cancel is a no-op.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddle(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Time(i), func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("After(-5) should fire immediately")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12", e.Now())
	}
	e.RunFor(3)
	if len(fired) != 3 || e.Now() != 15 {
		t.Fatalf("after RunFor(3): fired=%v now=%v", fired, e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, func() { t.Fatal("should not fire") })
	e.Cancel(ev)
	// Cancel removes from the heap, but also exercise the lazy path by
	// marking one cancelled directly after a second cancel call.
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestFiredAndPending(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 || e.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d", e.Fired(), e.Pending())
	}
}

func TestCancelReportsWhetherPrevented(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() {})
	if !e.Cancel(ev) {
		t.Fatal("first Cancel should report true: it removed the event")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel should report false: nothing left to stop")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) should report false")
	}
	e.Run()
}

func TestCancelAfterFiringReportsFalse(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	e.Run()
	if !ran || !ev.Fired() {
		t.Fatalf("event should have fired: ran=%v Fired=%v", ran, ev.Fired())
	}
	if e.Cancel(ev) {
		t.Fatal("cancelling a fired event must report false")
	}
	if ev.Cancelled() {
		t.Fatal("a fired event must keep Cancelled() == false")
	}
}

// Satellite regression: RunUntil with cancellations interleaved between and
// inside windows fires exactly the surviving events and still lands the
// clock on every requested boundary.
func TestRunUntilInterleavedCancellations(t *testing.T) {
	e := NewEngine()
	var fired []Time
	evs := map[Time]*Event{}
	for _, at := range []Time{5, 10, 15, 20, 25, 30} {
		at := at
		evs[at] = e.Schedule(at, func() { fired = append(fired, at) })
	}
	// Cancel a future event from inside an earlier one.
	e.Schedule(6, func() {
		if !e.Cancel(evs[15]) {
			t.Error("in-callback Cancel of pending event should report true")
		}
	})
	e.RunUntil(12)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("window 1 fired %v, want [5 10]", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12", e.Now())
	}
	// Cancel between windows.
	if !e.Cancel(evs[20]) {
		t.Fatal("between-window Cancel should report true")
	}
	e.RunUntil(22)
	if len(fired) != 2 {
		t.Fatalf("window 2 fired %v, want nothing new (15, 20 cancelled)", fired)
	}
	if e.Now() != 22 {
		t.Fatalf("Now = %v, want 22 even with all window events cancelled", e.Now())
	}
	// Cancelling what already fired changes nothing.
	if e.Cancel(evs[10]) {
		t.Fatal("Cancel of fired event should report false")
	}
	e.Run()
	if len(fired) != 4 || fired[2] != 25 || fired[3] != 30 {
		t.Fatalf("final fired %v, want [5 10 25 30]", fired)
	}
}

func TestScheduleFuncRecyclesThroughFreeList(t *testing.T) {
	e := NewEngine()
	e.ScheduleFunc(1, func() {})
	e.Step()
	if len(e.free) != 1 {
		t.Fatalf("free list has %d events after pooled fire, want 1", len(e.free))
	}
	recycled := e.free[0]
	e.ScheduleFunc(2, func() {})
	if len(e.free) != 0 {
		t.Fatal("pooled schedule should take the free-list slot")
	}
	if e.events[0] != recycled {
		t.Fatal("pooled schedule should reuse the recycled Event")
	}
	e.Run()
	if len(e.free) != 1 {
		t.Fatalf("free list has %d events after drain, want 1", len(e.free))
	}
}

func TestUnpooledEventsAreNotRecycled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.After(2, func() {})
	e.Run()
	if len(e.free) != 0 {
		t.Fatalf("handle-returning events must not enter the free list, got %d", len(e.free))
	}
	if !ev.Fired() {
		t.Fatal("event should have fired")
	}
}

// A callback that immediately reschedules itself must reuse its own slot:
// the whole chain runs on a single allocation.
func TestPooledRescheduleInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			e.AfterFunc(1, tick)
		}
	}
	e.AfterFunc(1, tick)
	e.Run()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if len(e.free) != 1 {
		t.Fatalf("free list has %d events, want the single reused slot", len(e.free))
	}
}

// Pooled and unpooled events at the same instant must still fire FIFO even
// when the pooled ones are recycled mid-instant.
func TestPooledPreservesSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for round := 0; round < 3; round++ {
		e.ScheduleFunc(5, func() { order = append(order, len(order)) })
		e.Schedule(5, func() { order = append(order, len(order)) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order broken: %v", order)
		}
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// order they were scheduled in.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of schedule/cancel fire exactly the
// non-cancelled events.
func TestCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(64)
		fired := make([]bool, n)
		evs := make([]*Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(Time(rng.Intn(100)), func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n/2; i++ {
			j := rng.Intn(n)
			cancelled[j] = true
			e.Cancel(evs[j])
		}
		e.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				t.Fatalf("trial %d event %d: fired=%v cancelled=%v", trial, i, fired[i], cancelled[i])
			}
		}
	}
}
