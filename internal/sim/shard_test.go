package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestFromSecondsEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want Time
	}{
		{"zero", 0, 0},
		{"one", 1, Second},
		{"nan", math.NaN(), 0},
		{"+inf", math.Inf(1), 1 << 62},
		{"-inf", math.Inf(-1), 0},
		{"negative", -3.5, 0},
		{"negative-tiny", -1e-300, 0},
		{"overflow", 1e30, 1 << 62},
		{"saturation-edge", float64(1<<62) / float64(Second), 1 << 62},
		{"micro", 1e-6, Microsecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := FromSeconds(c.in); got != c.want {
				t.Fatalf("FromSeconds(%v) = %d, want %d", c.in, int64(got), int64(c.want))
			}
		})
	}
}

// TestCancelNeverPopped pins the invariant that lets Step/RunUntil skip
// cancelled-event checks: Cancel removes the event from the heap, so a
// cancelled event can never be popped or fired.
func TestCancelNeverPopped(t *testing.T) {
	e := NewEngine()
	var fired []string
	mk := func(name string, at Time) *Event {
		return e.Schedule(at, func() { fired = append(fired, name) })
	}
	a := mk("a", 10)
	b := mk("b", 20)
	c := mk("c", 30)
	if !e.Cancel(b) {
		t.Fatal("Cancel(b) = false")
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending after cancel = %d, want 2 (cancelled event must leave the heap immediately)", e.Pending())
	}
	e.Run()
	if got := strings.Join(fired, ","); got != "a,c" {
		t.Fatalf("fired %q, want a,c", got)
	}
	if !a.Fired() || !c.Fired() || b.Fired() {
		t.Fatal("Fired flags wrong after run")
	}
	if !b.Cancelled() || a.Cancelled() {
		t.Fatal("Cancelled flags wrong after run")
	}
	// Cancelling the head mid-run must also keep it out of the pop path.
	e2 := NewEngine()
	var log []Time
	var head *Event
	head = e2.Schedule(5, func() { log = append(log, 5) })
	e2.Schedule(3, func() {
		log = append(log, 3)
		e2.Cancel(head)
	})
	e2.Run()
	if len(log) != 1 || log[0] != 3 {
		t.Fatalf("log = %v, want [3]", log)
	}
}

// buildRaceWorld wires the satellite-3 fixture: shards A and B race
// deliveries into shard C at identical virtual times, with C also running
// local events at those instants. Returns the world and a log capturing C's
// observed order.
func buildRaceWorld(width int) (*World, *[]string) {
	const lookahead = 50 * Microsecond
	w := NewWorld(lookahead, width)
	a := w.NewShard()
	b := w.NewShard()
	c := w.NewShard()
	log := &[]string{}
	obs := func(src string, i int) func() {
		return func() {
			*log = append(*log, fmt.Sprintf("%v %s#%d", c.Now(), src, i))
		}
	}
	// Both senders fire at the same instants and target the same arrival
	// times in C; C has its own local events at the same times.
	for i := 0; i < 40; i++ {
		i := i
		at := Time(i) * 10 * Microsecond
		a.ScheduleFunc(at, func() { a.ScheduleCross(c, a.Now()+lookahead, obs("a", i)) })
		b.ScheduleFunc(at, func() { b.ScheduleCross(c, b.Now()+lookahead, obs("b", i)) })
		c.ScheduleFunc(at+lookahead, obs("c", i))
		// Second-hop traffic: C bounces an ack back to A, which forwards to
		// B, exercising chained cross-shard edges.
		c.ScheduleFunc(at, func() {
			c.ScheduleCross(a, c.Now()+lookahead, func() {
				a.ScheduleCross(b, a.Now()+lookahead, func() {})
			})
		})
	}
	return w, log
}

func TestCrossShardRaceDeterministicAcrossWidths(t *testing.T) {
	var want string
	for _, width := range []int{1, 2, 8} {
		for rep := 0; rep < 3; rep++ {
			w, log := buildRaceWorld(width)
			w.RunUntil(2 * Millisecond)
			got := strings.Join(*log, "\n")
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("width %d rep %d diverged:\n got: %.200s\nwant: %.200s", width, rep, got, want)
			}
		}
	}
	if want == "" {
		t.Fatal("fixture produced no observations")
	}
}

func TestWorldRunUntilAlignsClocks(t *testing.T) {
	w := NewWorld(50*Microsecond, 4)
	a := w.NewShard()
	b := w.NewShard()
	firedAtDeadline := false
	a.ScheduleFunc(Millisecond, func() { firedAtDeadline = true })
	w.RunUntil(Millisecond)
	if !firedAtDeadline {
		t.Fatal("event at exactly the deadline did not fire")
	}
	if w.Now() != Millisecond || a.Now() != Millisecond || b.Now() != Millisecond {
		t.Fatalf("clocks not aligned: world %v a %v b %v", w.Now(), a.Now(), b.Now())
	}
	// Events beyond the deadline stay pending and fire on the next run.
	later := false
	a.ScheduleFunc(3*Millisecond, func() { later = true })
	w.RunUntil(2 * Millisecond)
	if later {
		t.Fatal("event beyond deadline fired early")
	}
	w.RunUntil(3 * Millisecond)
	if !later {
		t.Fatal("pending event did not fire on resumed run")
	}
}

func TestWorldLookaheadViolationPanics(t *testing.T) {
	w := NewWorld(50*Microsecond, 2)
	a := w.NewShard()
	b := w.NewShard()
	a.ScheduleFunc(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard schedule inside the lookahead horizon did not panic")
			}
		}()
		a.ScheduleCross(b, a.Now()+Microsecond, func() {})
	})
	w.Run()
}

func TestScheduleCrossOutsideRunIsDirect(t *testing.T) {
	w := NewWorld(50*Microsecond, 2)
	a := w.NewShard()
	b := w.NewShard()
	// Setup time: the world is idle, so even a sub-lookahead cross schedule
	// goes straight onto the destination heap.
	hit := false
	a.ScheduleCross(b, Nanosecond, func() { hit = true })
	w.RunUntil(Microsecond)
	if !hit {
		t.Fatal("setup-time cross schedule did not fire")
	}
}
