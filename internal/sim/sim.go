// Package sim implements the deterministic discrete-event simulation engine
// that every substrate in this repository runs on.
//
// Virtual time is counted in integer picoseconds so that sub-nanosecond CPU
// cycle times (a 3.5GHz core has a 286ps cycle) are represented exactly and
// runs are reproducible bit-for-bit from a seed. Events scheduled for the
// same instant fire in scheduling order (FIFO), which keeps multi-component
// interactions deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in picoseconds since the start of the
// simulation. The zero value is the simulation epoch.
type Time int64

// Duration units. A Duration is also a Time; the engine does not distinguish
// points from spans beyond documentation.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts floating-point seconds to a Time, saturating on
// overflow rather than wrapping. NaN maps to 0: it fails every ordered
// comparison, so without an explicit test it would fall through to an
// undefined float→int conversion.
func FromSeconds(s float64) Time {
	v := s * float64(Second)
	if math.IsNaN(v) {
		return 0
	}
	if v > float64(1<<62) {
		return Time(1 << 62)
	}
	if v < 0 {
		return 0
	}
	return Time(v)
}

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Event is a scheduled callback. Events are created by Engine.Schedule and
// Engine.After and may be cancelled until they fire. Events created by the
// handle-free ScheduleFunc/AfterFunc variants are recycled through the
// engine's free list and never escape.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once popped or cancelled
	cancelled bool
	fired     bool
	pooled    bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel prevented the event from firing. Events
// that already fired report false: firing and cancellation are mutually
// exclusive outcomes.
func (e *Event) Cancelled() bool { return e.cancelled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine. An Engine is not safe for concurrent use: everything on
// one engine's timeline is single-goroutine by design, which is what makes it
// deterministic. A World (see shard.go) composes several engines — one per
// machine — and advances them concurrently inside conservative windows; each
// engine is still only ever touched by one goroutine at a time.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  uint64
	// free recycles events scheduled through ScheduleFunc/AfterFunc. Those
	// events never escape to callers, so reusing their memory is safe; the
	// hot path (kernel wakeups, network deliveries — millions per run)
	// stops allocating one *Event per schedule.
	free []*Event
	// id and world bind a shard engine to its World; both stay zero for a
	// classic standalone engine.
	id    int
	world *World
}

// NewEngine returns an empty engine positioned at the simulation epoch.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// (at < Now) panics: it always indicates a modeling bug, and silently
// clamping would hide it.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.schedule(at, fn, false)
}

// After registers fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, fn, false)
}

// ScheduleFunc registers fn to run at absolute time at without returning a
// handle. The event cannot be cancelled or inspected, which lets the engine
// recycle its memory through a free list once it fires — use this on hot
// paths that never cancel.
func (e *Engine) ScheduleFunc(at Time, fn func()) {
	e.schedule(at, fn, true)
}

// AfterFunc registers fn to run d after the current time without returning
// a handle; see ScheduleFunc.
func (e *Engine) AfterFunc(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn, true)
}

func (e *Engine) schedule(at Time, fn func(), pooled bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); pooled && n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: at, seq: e.seq, fn: fn, pooled: true}
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, pooled: pooled}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Cancel prevents ev from firing and reports whether this call actually
// stopped it. Cancelling a nil, already-cancelled or already-fired event is
// a no-op returning false; in particular a fired event keeps reporting
// Cancelled() == false, so history is never misreported.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.cancelled || ev.fired || ev.index < 0 {
		return false
	}
	ev.cancelled = true
	heap.Remove(&e.events, ev.index)
	return true
}

// Step fires the next pending event, advancing the clock to its time. It
// reports whether an event was fired. Cancelled events need no filtering
// here: Cancel heap.Removes the event, so a cancelled event is never in the
// heap (TestCancelNeverPopped pins the invariant).
func (e *Engine) Step() bool {
	if len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		e.now = ev.at
		e.fired++
		fn := ev.fn
		ev.fired = true
		if ev.pooled {
			// Release before running fn so an immediate reschedule inside
			// the callback reuses this slot. Pooled events have no outside
			// handle, so nothing can observe the reuse.
			ev.fn = nil
			e.free = append(e.free, ev)
		}
		fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to exactly t.
// Events scheduled for later remain pending. As in Step, no cancelled-event
// filtering is needed: Cancel removes events from the heap.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor runs the simulation for a span of d from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// ScheduleCross registers fn at absolute time at on dst's timeline. When both
// engines are shards of the same running World, the event is staged in the
// destination's ordered inbox and merged at the next window barrier — the
// only way one shard may touch another's future. Outside a running World
// (same engine, standalone engines, or setup time between World runs) it
// degenerates to a plain handle-free schedule on dst.
func (e *Engine) ScheduleCross(dst *Engine, at Time, fn func()) {
	if dst == e || e.world == nil || e.world != dst.world || !e.world.running {
		dst.schedule(at, fn, true)
		return
	}
	e.world.stage(e, dst, at, fn)
}

// nextAt reports the time of the earliest pending event.
func (e *Engine) nextAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// runWindow fires every pending event strictly before bound. The bound is
// exclusive so a window [next, next+lookahead) can never fire an event that
// a not-yet-merged cross-shard message (which always lands at ≥ now +
// lookahead) should have preceded.
func (e *Engine) runWindow(bound Time) {
	for len(e.events) > 0 && e.events[0].at < bound {
		e.Step()
	}
}
