package steady

import (
	"testing"

	"ditto/internal/cpu"
	"ditto/internal/isa"
)

// testTrace builds a minimal eligible decoded trace.
func testTrace(class cpu.TraceClass) *cpu.Trace {
	tr := cpu.NewTrace([]isa.Instr{{Op: isa.ADDrr}})
	tr.Class = class
	return tr
}

// res fabricates a stable result shape for feeding the detector.
func res(cycles float64, branches, mispred, l1Acc, l1Miss uint64) cpu.Result {
	var c cpu.Counters
	c.Cycles = cycles
	c.Branches = branches
	c.Mispred = mispred
	c.L1dAcc = l1Acc
	c.L1dMiss = l1Miss
	return cpu.Result{Cycles: cycles, Counters: c}
}

// drive runs n requests of tr through the sampler the way the kernel does,
// executing (with result r) whenever the sampler asks for it.
func drive(s *Sampler, tr *cpu.Trace, n int, r cpu.Result) (executed, modeled int) {
	for i := 0; i < n; i++ {
		if _, ok := s.Next(tr); ok {
			modeled++
			continue
		}
		executed++
		s.Observe(tr, r)
	}
	return
}

func TestConvergenceThenSampling(t *testing.T) {
	cfg := DefaultConfig(1)
	s := New(cfg)
	tr := testTrace(cpu.ClassBody)
	r := res(100, 10, 1, 50, 5)

	// The first Window*(Stable+1) requests must all execute: the detector
	// needs Stable converged window pairs, i.e. Stable+1 windows.
	warm := cfg.Window * (cfg.Stable + 1)
	ex, mo := drive(s, tr, warm, r)
	if mo != 0 || ex != warm {
		t.Fatalf("warmup: executed=%d modeled=%d, want all %d executed", ex, mo, warm)
	}
	if s.SteadyVariants() != 1 {
		t.Fatalf("group not steady after %d stable observations", warm)
	}

	// Finish the current sampling period, then drive whole periods: each
	// executes exactly one detailed window of Detail requests and models
	// the rest.
	period := cfg.Detail * cfg.Every
	drive(s, tr, period-warm, r)
	for p := 0; p < 3; p++ {
		ex, mo = drive(s, tr, period, r)
		if ex != cfg.Detail || mo != period-cfg.Detail {
			t.Fatalf("period %d: executed=%d modeled=%d, want %d/%d",
				p, ex, mo, cfg.Detail, period-cfg.Detail)
		}
	}
}

func TestModeledResultsComeFromObservedWindow(t *testing.T) {
	s := NewDefault(1)
	tr := testTrace(cpu.ClassBody)
	r := res(250, 8, 1, 40, 4)
	drive(s, tr, 200, r)
	got, ok := s.Next(tr)
	for !ok {
		s.Observe(tr, r)
		got, ok = s.Next(tr)
	}
	if got.Cycles != 250 || got.Counters.Mispred != 1 || got.Counters.L1dMiss != 4 {
		t.Fatalf("modeled result %+v not drawn from observed window", got)
	}
}

func TestNoisyGroupNeverConverges(t *testing.T) {
	s := NewDefault(1)
	tr := testTrace(cpu.ClassBody)
	// Alternate windows between very different costs: relDiff ≈ 1 >> Tol.
	for w := 0; w < 20; w++ {
		cycles := 100.0
		if w%2 == 1 {
			cycles = 300
		}
		for i := 0; i < s.cfg.Window; i++ {
			if _, ok := s.Next(tr); ok {
				t.Fatal("noisy group was modeled")
			}
			s.Observe(tr, res(cycles, 10, 1, 50, 5))
		}
	}
	if s.SteadyVariants() != 0 {
		t.Fatal("noisy group converged")
	}
}

func TestDriftReArmsFullExecution(t *testing.T) {
	cfg := DefaultConfig(1)
	s := New(cfg)
	tr := testTrace(cpu.ClassBody)
	drive(s, tr, cfg.Window*(cfg.Stable+1), res(100, 10, 1, 50, 5))
	if s.SteadyVariants() != 1 {
		t.Fatal("did not reach steady state")
	}
	// A phase change: executed samples now cost 10x. The next counted
	// convergence window re-arms the group.
	shifted := res(1000, 10, 1, 50, 5)
	reArmed := false
	for i := 0; i < cfg.Detail*cfg.Every*2 && !reArmed; i++ {
		if _, ok := s.Next(tr); !ok {
			s.Observe(tr, shifted)
		}
		reArmed = s.SteadyVariants() == 0
	}
	if !reArmed {
		t.Fatal("10x drift did not re-arm full execution")
	}
	// Everything executes again until the new level re-converges.
	ex, mo := drive(s, tr, cfg.Window, shifted)
	if mo != 0 || ex != cfg.Window {
		t.Fatalf("after re-arm: executed=%d modeled=%d", ex, mo)
	}
	// And with the new level stable, it re-enters steady state — phase
	// changes are re-measured, not permanently penalized.
	drive(s, tr, cfg.Window*cfg.Stable, shifted)
	if s.SteadyVariants() != 1 {
		t.Fatal("did not re-converge at the shifted level")
	}
}

func TestGroupsIsolated(t *testing.T) {
	cfg := DefaultConfig(1)
	s := New(cfg)
	a, b := testTrace(cpu.ClassBody), testTrace(cpu.ClassKernel)
	ra, rb := res(100, 10, 1, 50, 5), res(900, 20, 2, 80, 8)
	warm := cfg.Window * (cfg.Stable + 1)
	drive(s, a, warm, ra)
	drive(s, b, warm, rb)
	if s.Variants() != 2 || s.SteadyVariants() != 2 {
		t.Fatalf("groups=%d steady=%d, want 2/2", s.Variants(), s.SteadyVariants())
	}
	// Modeled draws never leak across groups.
	sawModeled := 0
	for i := 0; i < 2*cfg.Detail*cfg.Every; i++ {
		if r, ok := s.Next(a); ok {
			sawModeled++
			if r.Cycles != 100 {
				t.Fatalf("group a drew %v cycles", r.Cycles)
			}
		} else {
			s.Observe(a, ra)
		}
		if r, ok := s.Next(b); ok {
			sawModeled++
			if r.Cycles != 900 {
				t.Fatalf("group b drew %v cycles", r.Cycles)
			}
		} else {
			s.Observe(b, rb)
		}
	}
	if sawModeled == 0 {
		t.Fatal("no modeled requests in two full periods")
	}
}

func TestVariantsPoolByGroup(t *testing.T) {
	cfg := DefaultConfig(1)
	s := New(cfg)
	// Two variants of one pregenerated set share statistics via Group.
	canon := testTrace(cpu.ClassBody)
	canon.Group = canon
	other := testTrace(cpu.ClassBody)
	other.Group = canon
	r := res(100, 10, 1, 50, 5)
	warm := cfg.Window * (cfg.Stable + 1)
	// Alternate the two variants: the pooled group converges with warm
	// total observations, not warm per variant.
	for i := 0; i < warm; i++ {
		tr := canon
		if i%2 == 1 {
			tr = other
		}
		if _, ok := s.Next(tr); ok {
			t.Fatal("modeled before convergence")
		}
		s.Observe(tr, r)
	}
	if s.Variants() != 1 {
		t.Fatalf("Variants = %d, want 1 pooled group", s.Variants())
	}
	if s.SteadyVariants() != 1 {
		t.Fatal("pooled group did not converge")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	run := func() (uint64, uint64, []float64) {
		s := NewDefault(3)
		tr := testTrace(cpu.ClassBody)
		var draws []float64
		for i := 0; i < 2000; i++ {
			if r, ok := s.Next(tr); ok {
				draws = append(draws, r.Cycles)
				continue
			}
			// Mildly varying but converging costs.
			s.Observe(tr, res(100+float64(i%3), 10, 1, 50, 5))
		}
		return s.Executed(), s.Modeled(), draws
	}
	e1, m1, d1 := run()
	e2, m2, d2 := run()
	if e1 != e2 || m1 != m2 || len(d1) != len(d2) {
		t.Fatalf("runs diverged: %d/%d/%d vs %d/%d/%d", e1, m1, len(d1), e2, m2, len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("draw sequences diverged")
		}
	}
	if m1 == 0 {
		t.Fatal("no modeled requests in 2000 — detector never converged")
	}
}

func TestHoldArmNeverModelsWarmup(t *testing.T) {
	cfg := DefaultConfig(1)
	s := New(cfg)
	s.Hold()
	tr := testTrace(cpu.ClassBody)
	r := res(100, 10, 1, 50, 5)

	// Held, the sampler never models — even long after the detector has
	// converged on the warmup traffic.
	warm := cfg.Window * (cfg.Stable + 3)
	ex, mo := drive(s, tr, warm, r)
	if mo != 0 || ex != warm {
		t.Fatalf("held: executed=%d modeled=%d, want all %d executed", ex, mo, warm)
	}
	if s.SteadyVariants() != 1 {
		t.Fatal("detector did not learn during the held warmup")
	}

	// Arm starts a sampling period at position 0: the first Detail
	// requests are the detailed window, then modeling begins immediately
	// — the held warmup already paid the convergence cost.
	s.Arm()
	ex, mo = drive(s, tr, cfg.Detail, r)
	if mo != 0 || ex != cfg.Detail {
		t.Fatalf("post-arm detailed window: executed=%d modeled=%d", ex, mo)
	}
	if _, ok := s.Next(tr); !ok {
		t.Fatal("first request after the detailed window was not modeled")
	}
}

func TestSteadyShareWeighsTraffic(t *testing.T) {
	cfg := DefaultConfig(1)
	s := New(cfg)
	tr := testTrace(cpu.ClassBody)
	if s.SteadyShare() != 0 {
		t.Fatalf("empty sampler share = %v, want 0", s.SteadyShare())
	}
	warm := cfg.Window * (cfg.Stable + 1)
	drive(s, tr, warm, res(100, 10, 1, 50, 5))
	if got := s.SteadyShare(); got != 1 {
		t.Fatalf("single steady group share = %v, want 1", got)
	}
	// A second, never-converging group drags the share down by its own
	// traffic weight: share is traffic-weighted, not group-counted.
	noisy := testTrace(cpu.ClassKernel)
	for w := 0; w < 4; w++ {
		cycles := 100.0
		if w%2 == 1 {
			cycles = 300
		}
		for i := 0; i < cfg.Window; i++ {
			if _, ok := s.Next(noisy); !ok {
				s.Observe(noisy, res(cycles, 10, 1, 50, 5))
			}
		}
	}
	got := s.SteadyShare()
	want := float64(warm) / float64(warm+4*cfg.Window)
	if got <= 0 || got >= 1 || absDiff(got, want) > 1e-9 {
		t.Fatalf("mixed share = %v, want %v", got, want)
	}
}

func TestConfigNormalization(t *testing.T) {
	s := New(Config{Seed: 5}) // all-zero tuning takes defaults
	d := DefaultConfig(5)
	if s.cfg != d {
		t.Fatalf("norm() = %+v, want %+v", s.cfg, d)
	}
	if s.period != d.Detail*d.Every || s.warmSkip != d.Detail/4 {
		t.Fatalf("schedule: period=%d warmSkip=%d", s.period, s.warmSkip)
	}
}
