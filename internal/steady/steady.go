// Package steady implements sampled steady-state execution: a per-group
// convergence detector over the microarchitectural signals the model already
// exposes (mean cycles, branch-miss rate, L1d-miss rate), and a sampler
// that — once a pregenerated request or kernel-stream variant set has
// converged — executes only periodic detailed windows of requests and models
// the stretches in between from the measured empirical distribution of full
// executions.
//
// The contract is the one Ditto's fidelity argument needs: every instruction
// executes while the clone's caches and predictors are still converging;
// after that, periodic detailed windows keep cache, predictor, page-cache
// and kernel state advancing honestly, while modeled requests return a
// complete cpu.Result (cycles and counters drawn together from one observed
// execution) so dtrace spans, netsim timing, scheduler occupancy and
// per-edge stats are fed identically to full execution.
//
// The sampling schedule is SMARTS-style and global per kernel, not
// per-stream: all eligible traffic executes together during a detailed
// window, so executed samples experience realistic mutual cache pressure,
// and the head of each window (the transient over caches left stale by the
// modeled stretch) is excluded from the measured distributions.
//
// Determinism: the sampler holds no global state and draws from private
// xorshift streams seeded by the sampler seed and each group's creation
// ordinal — itself deterministic because groups are created in
// request-arrival order under the single-goroutine engine. One sampler
// serves one kernel (one shard), so the conservative-parallel engine never
// shares sampler state across shards and byte-identity holds at every
// -parallel and -intra-parallel width.
package steady

import (
	"math"

	"ditto/internal/cpu"
	"ditto/internal/stats"
)

// Config tunes the detector and the sampling schedule.
type Config struct {
	// Window is the number of counted full executions per convergence
	// window.
	Window int
	// Stable is how many consecutive converged window pairs are required
	// before a group enters steady state.
	Stable int
	// Tol is the relative tolerance on mean cycles between adjacent windows.
	Tol float64
	// RateTol is the absolute tolerance on branch-miss and L1d-miss rates
	// between adjacent windows.
	RateTol float64
	// Every is the steady-state dilation: one detailed window per Every
	// windows' worth of eligible trace executions (the executed fraction of
	// converged traffic is 1/Every).
	Every int
	// Detail is the detailed-window length in eligible trace executions.
	// The sampling period is Detail×Every.
	Detail int
	// Ring is the capacity of the per-group empirical result distribution.
	Ring int
	// Run is how many consecutive modeled requests of one group replay
	// consecutive ring slots from a single random start. Ring slots are in
	// observation order, so runs reproduce the measured autocorrelation of
	// latency (slow stretches arrive together and build queues); fully
	// independent draws would smooth the tail away.
	Run int
	// ReArmFactor scales Tol into the drift threshold that drops a group
	// back out of steady state (phase changes, fault recovery).
	ReArmFactor float64
	// Seed derives every per-group draw stream.
	Seed int64
}

// DefaultConfig is the tuning used by the experiment pipelines: convergence
// windows of 16 with two stable pairs mean a group executes at least 48
// full requests before its first modeled one, and detailed windows of 64
// trace executions once per 448 keep 1-in-7 of converged traffic executing.
func DefaultConfig(seed int64) Config {
	return Config{Window: 16, Stable: 2, Tol: 0.05, RateTol: 0.02,
		Every: 21, Detail: 64, Ring: 48, Run: 12, ReArmFactor: 4, Seed: seed}
}

// norm fills in zero fields with defaults so a partially-specified Config
// cannot divide by zero or stall.
func (c Config) norm() Config {
	d := DefaultConfig(c.Seed)
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Stable <= 0 {
		c.Stable = d.Stable
	}
	if c.Tol <= 0 {
		c.Tol = d.Tol
	}
	if c.RateTol <= 0 {
		c.RateTol = d.RateTol
	}
	if c.Every <= 1 {
		c.Every = d.Every
	}
	if c.Detail <= 0 {
		c.Detail = d.Detail
	}
	if c.Ring <= 0 {
		c.Ring = d.Ring
	}
	if c.Run <= 0 {
		c.Run = d.Run
	}
	if c.ReArmFactor <= 1 {
		c.ReArmFactor = d.ReArmFactor
	}
	return c
}

// group is the sampler's per-group state: one pregenerated variant set — a
// (body, kind)'s rotating bodies or a syscall op's rotating kstreams —
// keyed by the set's canonical trace pointer (Trace.Group), so two tiers
// sharing a kernel can never collide and the rotating members pool their
// statistics: the pooled empirical distribution is exactly the per-kind
// latency distribution a modeled request should reproduce.
type group struct {
	// Convergence windows over counted full executions.
	count                   int
	sumCycles, sumCyclesSq  float64
	sumBranches, sumMispred float64
	sumL1Acc, sumL1Miss     float64

	prevMean, prevVar        float64
	prevBr, prevL1           float64
	prevNBr, prevNL1, prevN  float64
	havePrev                 bool
	stable                   int
	steady                   bool

	// The measured result distribution: dist indexes results — Add and
	// DrawIndex return the shared slot, keeping cycles and counters of one
	// observed execution correlated in every draw.
	dist    *stats.Empirical
	results []cpu.Result

	// Run-draw state: the current replay position and how many modeled
	// requests remain in the run before the next random restart.
	runSlot, runLeft int

	executed, modeled uint64
	windows, reArms   int
}

// Sampler decides, per eligible decoded trace, whether the next request
// executes or is modeled. It is the kernel.ExecSampler implementation; one
// Sampler serves exactly one kernel.
type Sampler struct {
	cfg      Config
	period   int // Detail × Every
	warmSkip int // head of each detailed window excluded from distributions
	gpos     int // global position within the sampling period
	vars     map[*cpu.Trace]*group
	order    []*group // creation order, for deterministic introspection

	// lastWarm flags the execution Next just requested as a window-head
	// transient; Observe reads it in the same engine step (the kernel calls
	// Observe immediately after executing, and one goroutine runs at a
	// time, so the scratch field is race-free).
	lastWarm bool

	// held suspends modeling: every request executes and feeds the
	// detector and distributions, but nothing is drawn. The experiment
	// harness holds samplers through warmup (warmup is never sampled) and
	// arms them at the measurement boundary, so converged groups model
	// from the first measured request.
	held bool

	executed, modeled uint64
	steadyGroups      int
}

// New builds a sampler with cfg (zero fields take defaults).
func New(cfg Config) *Sampler {
	cfg = cfg.norm()
	return &Sampler{cfg: cfg, period: cfg.Detail * cfg.Every,
		warmSkip: cfg.Detail / 4, vars: map[*cpu.Trace]*group{}}
}

// NewDefault builds a sampler with DefaultConfig(seed).
func NewDefault(seed int64) *Sampler { return New(DefaultConfig(seed)) }

// Hold suspends modeling: every request executes fully while the detector
// and distributions keep learning. Use it to cover phases that must never
// be sampled (warmup) without losing the convergence work done there.
func (s *Sampler) Hold() { s.held = true }

// Arm (re-)enables modeling for converged groups. The sampling schedule
// starts at the head of a detailed window, so the first post-arm stretch
// is measured, not modeled.
func (s *Sampler) Arm() { s.held = false; s.gpos = 0 }

// Next reports whether the next request on tr should be modeled, and if so
// returns the drawn result. ok=false means the caller must execute the
// trace and feed the result back through Observe. The hot path is a map
// read plus integer arithmetic; group creation is the one-time cold path.
// ditto:noalloc
func (s *Sampler) Next(tr *cpu.Trace) (cpu.Result, bool) {
	key := tr.Group
	if key == nil {
		key = tr
	}
	v := s.vars[key]
	if v == nil {
		v = s.register(key)
	}
	if s.held {
		s.executed++
		v.executed++
		s.lastWarm = false
		return cpu.Result{}, false
	}
	pos := s.gpos
	s.gpos++
	if s.gpos == s.period {
		s.gpos = 0
	}
	if !v.steady {
		s.executed++
		v.executed++
		s.lastWarm = false
		return cpu.Result{}, false
	}
	if pos < s.cfg.Detail {
		s.executed++
		v.executed++
		// The head of a detailed window runs against caches left stale by
		// the modeled stretch; execute it (that is what re-warms state) but
		// keep it out of the measured distributions.
		s.lastWarm = pos < s.warmSkip
		return cpu.Result{}, false
	}
	s.modeled++
	v.modeled++
	if v.runLeft == 0 {
		v.runSlot = v.dist.DrawIndex()
		v.runLeft = s.cfg.Run
	} else if v.runSlot++; v.runSlot >= v.dist.Count() {
		v.runSlot = 0
	}
	v.runLeft--
	return v.results[v.runSlot], true
}

// Observe feeds one full-execution result into tr's group: the empirical
// draw distribution and the convergence window the drift re-arm watches.
// Callers invoke it for every execution Next asked for; results of modeled
// requests never come back, and window-head transients (lastWarm) are
// executed for their state effects only.
// ditto:noalloc
func (s *Sampler) Observe(tr *cpu.Trace, r cpu.Result) {
	key := tr.Group
	if key == nil {
		key = tr
	}
	v := s.vars[key]
	if v == nil || s.lastWarm {
		return
	}
	slot := v.dist.Add(r.Cycles)
	v.results[slot] = r

	v.count++
	v.sumCycles += r.Cycles
	v.sumCyclesSq += r.Cycles * r.Cycles
	v.sumBranches += float64(r.Counters.Branches)
	v.sumMispred += float64(r.Counters.Mispred)
	v.sumL1Acc += float64(r.Counters.L1dAcc)
	v.sumL1Miss += float64(r.Counters.L1dMiss)
	if v.count >= s.cfg.Window {
		s.windowDone(v)
	}
}

// register creates the per-group state for key — the cold path behind Next,
// hoisted out of the inliner's reach so its allocations stay off the
// noalloc-gated hot path.
//
//go:noinline
func (s *Sampler) register(key *cpu.Trace) *group {
	ord := len(s.order)
	v := &group{
		dist:    stats.NewEmpirical(s.cfg.Ring, s.cfg.Seed+int64(ord)*0x9E3779B9),
		results: make([]cpu.Result, s.cfg.Ring),
	}
	s.vars[key] = v
	s.order = append(s.order, v)
	return v
}

// windowDone closes a convergence window and compares it to the previous
// one. The comparisons are statistically aware: a window is a small sample
// (Window executions, a few hundred branches for a short kstream), so each
// tolerance widens by two standard errors of the compared statistic —
// otherwise ordinary sampling noise in short streams would keep
// well-converged groups executing forever, and once steady, would re-arm
// them spuriously. Adjacent windows that agree on mean cycles (within Tol
// relative + 2 SE) and on branch-/L1d-miss rates (within RateTol absolute
// + 2 binomial SE) count toward Stable; once steady, mean drift beyond
// ReArmFactor times the same allowance re-arms full execution so phase
// changes are re-measured instead of modeled away.
func (s *Sampler) windowDone(v *group) {
	n := float64(v.count)
	mean := v.sumCycles / n
	vr := v.sumCyclesSq/n - mean*mean
	if vr < 0 {
		vr = 0
	}
	br := ratio(v.sumMispred, v.sumBranches)
	l1 := ratio(v.sumL1Miss, v.sumL1Acc)
	if v.havePrev {
		dm := absDiff(mean, v.prevMean)
		meanAllow := s.cfg.Tol*v.prevMean + 2*sqrt(vr/n+v.prevVar/v.prevN)
		if !v.steady {
			brOK := absDiff(br, v.prevBr) <= s.cfg.RateTol+
				2*sqrt(binVar(br, v.sumBranches)+binVar(v.prevBr, v.prevNBr))
			l1OK := absDiff(l1, v.prevL1) <= s.cfg.RateTol+
				2*sqrt(binVar(l1, v.sumL1Acc)+binVar(v.prevL1, v.prevNL1))
			if dm <= meanAllow && brOK && l1OK {
				v.stable++
				if v.stable >= s.cfg.Stable {
					v.steady = true
					s.steadyGroups++
				}
			} else {
				v.stable = 0
			}
		} else if dm > s.cfg.ReArmFactor*meanAllow {
			v.steady = false
			v.stable = 0
			v.reArms++
			s.steadyGroups--
		}
	}
	v.prevMean, v.prevVar, v.prevN = mean, vr, n
	v.prevBr, v.prevNBr = br, v.sumBranches
	v.prevL1, v.prevNL1 = l1, v.sumL1Acc
	v.havePrev = true
	v.windows++
	v.count = 0
	v.sumCycles, v.sumCyclesSq = 0, 0
	v.sumBranches, v.sumMispred = 0, 0
	v.sumL1Acc, v.sumL1Miss = 0, 0
}

// SteadyShare reports the fraction of all sampler-eligible traffic so far
// that belongs to currently-steady groups. The measurement harness uses it
// to right-size warmup in sampled mode: warmup's whole purpose is reaching
// steady state, and the detector can certify that directly instead of
// burning a fixed time budget. Returns 0 until traffic arrives.
func (s *Sampler) SteadyShare() float64 {
	var steady, total uint64
	for _, v := range s.order {
		n := v.executed + v.modeled
		total += n
		if v.steady {
			steady += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(steady) / float64(total)
}

// Executed reports how many requests ran through full execution.
func (s *Sampler) Executed() uint64 { return s.executed }

// Modeled reports how many requests were short-circuited to a drawn result.
func (s *Sampler) Modeled() uint64 { return s.modeled }

// Variants reports how many distinct trace groups the sampler has seen.
func (s *Sampler) Variants() int { return len(s.vars) }

// SteadyVariants reports how many groups are currently in steady state.
func (s *Sampler) SteadyVariants() int { return s.steadyGroups }

// GroupStat is one group's sampling summary, for verification and tuning.
type GroupStat struct {
	Steady   bool
	Windows  int // convergence windows closed
	ReArms   int // steady→full transitions (drift re-arms)
	Executed uint64
	Modeled  uint64
	MeanCyc  float64 // last closed window's mean cycles
}

// GroupStats reports per-group summaries in group creation order — which is
// deterministic, so the report is stable across runs and widths.
func (s *Sampler) GroupStats() []GroupStat {
	out := make([]GroupStat, len(s.order))
	for i, v := range s.order {
		out[i] = GroupStat{Steady: v.steady, Windows: v.windows,
			ReArms: v.reArms, Executed: v.executed, Modeled: v.modeled,
			MeanCyc: v.prevMean}
	}
	return out
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func absDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// binVar is the binomial variance of an observed rate p over n trials —
// the sampling noise floor for a miss-rate comparison.
func binVar(p, n float64) float64 {
	if n <= 0 {
		return 0
	}
	return p * (1 - p) / n
}
