package platform

import (
	"testing"

	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/sim"
)

func TestTable1Specs(t *testing.T) {
	a, b, c := A(), B(), C()
	if a.Arch.Name != "skylake" || b.Arch.Name != "haswell" || c.Arch.Name != "skylake" {
		t.Fatal("CPU families wrong")
	}
	if !(a.FreqGHz < b.FreqGHz && b.FreqGHz < c.FreqGHz) {
		t.Fatal("base frequencies should order A < B < C (Table 1)")
	}
	if !(c.Cores < b.Cores && b.Cores < a.Cores) {
		t.Fatal("core counts should order C < B < A")
	}
	if a.L2KB != 1024 || b.L2KB != 256 || c.L2KB != 256 {
		t.Fatal("L2 sizes wrong")
	}
	if !(c.LLCKB < b.LLCKB && b.LLCKB < a.LLCKB) {
		t.Fatal("LLC sizes should order C < B < A")
	}
	if a.NICGbps != 10 || b.NICGbps != 1 || c.NICGbps != 1 {
		t.Fatal("NIC speeds wrong")
	}
	if len(Specs()) != 3 {
		t.Fatal("Specs() should have three entries")
	}
}

func aluStream(n int) []isa.Instr {
	s := make([]isa.Instr, n)
	for i := range s {
		s[i] = isa.Instr{Op: isa.ADDrr, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8), BranchID: -1}
	}
	return s
}

func TestMachineBuildAndRun(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, "a0", A(), WithCoreCount(4))
	if len(m.Cores) != 4 {
		t.Fatalf("cores = %d", len(m.Cores))
	}
	p := m.Kernel.NewProc("app")
	p.Spawn("w", func(th *kernel.Thread) { th.Run(aluStream(10000)) })
	eng.Run()
	if p.Counters.Instrs != 10000 {
		t.Fatalf("instrs = %d", p.Counters.Instrs)
	}
}

func TestFrequencyScalingChangesWallTime(t *testing.T) {
	run := func(f float64) sim.Time {
		eng := sim.NewEngine()
		m := NewMachine(eng, "m", A(), WithCoreCount(2), WithFreqGHz(f))
		p := m.Kernel.NewProc("app")
		p.Spawn("w", func(th *kernel.Thread) { th.Run(aluStream(50000)) })
		eng.Run()
		return eng.Now()
	}
	slow := run(1.1)
	fast := run(2.1)
	if fast >= slow {
		t.Fatalf("higher frequency must be faster: %v vs %v", fast, slow)
	}
	ratio := float64(slow) / float64(fast)
	if ratio < 1.5 || ratio > 2.4 {
		t.Fatalf("scaling ratio = %v, want ≈ 2.1/1.1", ratio)
	}
}

func TestSMTFactorOption(t *testing.T) {
	run := func(opts ...Option) sim.Time {
		eng := sim.NewEngine()
		m := NewMachine(eng, "m", A(), append(opts, WithCoreCount(1))...)
		p := m.Kernel.NewProc("app")
		p.Spawn("w", func(th *kernel.Thread) { th.Run(aluStream(50000)) })
		eng.Run()
		return eng.Now()
	}
	alone := run()
	ht := run(WithSMTFactor(0.5))
	if ht < 2*alone*9/10 {
		t.Fatalf("HT sharing should ~double runtime: alone=%v ht=%v", alone, ht)
	}
}

func TestPrivateCacheScaleHurts(t *testing.T) {
	run := func(opts ...Option) float64 {
		eng := sim.NewEngine()
		m := NewMachine(eng, "m", A(), append(opts, WithCoreCount(1))...)
		p := m.Kernel.NewProc("app")
		p.Spawn("w", func(th *kernel.Thread) {
			n := 30000
			s := make([]isa.Instr, n)
			for i := range s {
				s[i] = isa.Instr{Op: isa.MOVload, PC: 0x400000 + uint64(i%16)*4,
					Dst: isa.Reg(i % 8), Src1: isa.R10,
					Addr: 0x1000000 + (uint64(i)*64)%(24<<10), BranchID: -1}
			}
			th.Run(s)
		})
		eng.Run()
		return p.Counters.L1dMissRate()
	}
	full := run()
	halved := run(WithPrivateCacheScale(0.5, 0.5))
	if halved <= full {
		t.Fatalf("halved L1d should miss more: full=%v halved=%v", full, halved)
	}
}

func TestClusterPathsAndLoopback(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, 100*sim.Microsecond)
	m1 := NewMachine(eng, "m1", C())
	m2 := NewMachine(eng, "m2", C())
	cl.Add(m1)
	cl.Add(m2)
	if len(cl.Machines()) != 2 {
		t.Fatal("machines not registered")
	}
	p := cl.Path(m1.Kernel, m2.Kernel)
	if p.Loopback || p.Src != m1.NIC || p.Dst != m2.NIC || p.RTT != 100*sim.Microsecond {
		t.Fatalf("cross-machine path = %+v", p)
	}
	lo := cl.Path(m1.Kernel, m1.Kernel)
	if !lo.Loopback {
		t.Fatal("same-machine path should be loopback")
	}
}

func TestClusterEndToEndRPC(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, 100*sim.Microsecond)
	srv := NewMachine(eng, "srv", A(), WithCoreCount(2))
	cli := NewMachine(eng, "cli", A(), WithCoreCount(2))
	cl.Add(srv)
	cl.Add(cli)

	sp := srv.Kernel.NewProc("server")
	cp := cli.Kernel.NewProc("client")
	var rtt sim.Time
	sp.Spawn("srv", func(th *kernel.Thread) {
		l := th.Listen(80)
		c := th.Accept(l)
		th.Recv(c)
		th.Run(aluStream(5000))
		th.Send(c, 4096, nil)
	})
	cp.Spawn("cli", func(th *kernel.Thread) {
		th.Sleep(sim.Millisecond)
		c := th.Connect(srv.Kernel, 80)
		start := th.Now()
		th.Send(c, 100, nil)
		th.Recv(c)
		rtt = th.Now() - start
	})
	eng.Run()
	if rtt < 100*sim.Microsecond || rtt > 5*sim.Millisecond {
		t.Fatalf("RPC rtt = %v", rtt)
	}
}

func TestMemBWDemandInflatesLatency(t *testing.T) {
	run := func(opts ...Option) sim.Time {
		eng := sim.NewEngine()
		m := NewMachine(eng, "m", A(), append(opts, WithCoreCount(1))...)
		p := m.Kernel.NewProc("app")
		p.Spawn("w", func(th *kernel.Thread) {
			n := 20000
			s := make([]isa.Instr, n)
			for i := range s {
				// Pointer chase through 64MB: every access reaches DRAM.
				s[i] = isa.Instr{Op: isa.MOVptr, PC: 0x400000 + uint64(i%16)*4,
					Dst: isa.R11, Src1: isa.R11,
					Addr: 0x1000000 + uint64(i*8192)%(64<<20), BranchID: -1}
			}
			th.Run(s)
		})
		eng.Run()
		return eng.Now()
	}
	quiet := run()
	contended := run(WithMemBWDemand(90))
	if contended <= quiet {
		t.Fatalf("memory contention should slow DRAM-bound work: %v vs %v", quiet, contended)
	}
}

func TestLLCScale(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, "m", C(), WithLLCScale(0.5))
	want := C().LLCKB << 10 / 2
	if got := m.LLC.Config().Size; got > want || got < want*9/10 {
		t.Fatalf("scaled LLC = %d, want ≈ %d", got, want)
	}
}

func TestScaleBytesQuantum(t *testing.T) {
	if v := scaleBytes(1024, 0.001, 8); v != 8*64 {
		t.Fatalf("minimum quantum violated: %d", v)
	}
	if v := scaleBytes(1<<20, 1, 16); v != 1<<20 {
		t.Fatalf("identity scale changed size: %d", v)
	}
	if v := scaleBytes(1<<20, 0, 16); v != 1<<20 {
		t.Fatalf("zero scale should mean 1.0: %d", v)
	}
}
