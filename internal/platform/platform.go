// Package platform assembles machines out of the hardware substrates —
// cores with private L1/L2 caches in front of a shared LLC, DRAM, a disk
// and a NIC, all managed by a kernel instance — and wires machines into
// clusters. It encodes the three server platforms of the paper's Table 1
// and exposes the deployment knobs the evaluation sweeps: core count,
// frequency scaling (Fig. 11), SMT sharing and private-cache stealing for
// hyperthread stressors (Fig. 10), and DRAM bandwidth contention.
package platform

import (
	"ditto/internal/cache"
	"ditto/internal/cpu"
	"ditto/internal/disk"
	"ditto/internal/kernel"
	"ditto/internal/mem"
	"ditto/internal/netsim"
	"ditto/internal/sim"
)

// Spec describes a server platform (one row of Table 1).
type Spec struct {
	Name        string
	Arch        cpu.Arch
	FreqGHz     float64
	Cores       int // usable cores across sockets
	L1iKB       int
	L1dKB       int
	L2KB        int
	L2Assoc     int
	LLCKB       int
	LLCAssoc    int
	MemLatNS    float64
	MemBWGBps   float64
	Disk        disk.Config
	NICGbps     float64
	PageCacheMB int
}

// A returns Platform A: dual Gold 6152 (Skylake), 1MB L2, 30.25MB LLC,
// DDR4-2666, SSD, 10Gbe.
func A() Spec {
	return Spec{Name: "A", Arch: cpu.Skylake, FreqGHz: 2.10, Cores: 44,
		L1iKB: 32, L1dKB: 32, L2KB: 1024, L2Assoc: 16,
		LLCKB: 30976, LLCAssoc: 11, MemLatNS: 85, MemBWGBps: 110,
		Disk: disk.SSDConfig(), NICGbps: 10, PageCacheMB: 8192}
}

// B returns Platform B: dual E5-2660 v3 (Haswell), 256KB L2, 25MB LLC,
// DDR4-2400, HDD, 1Gbe.
func B() Spec {
	return Spec{Name: "B", Arch: cpu.Haswell, FreqGHz: 2.60, Cores: 20,
		L1iKB: 32, L1dKB: 32, L2KB: 256, L2Assoc: 8,
		LLCKB: 25600, LLCAssoc: 20, MemLatNS: 95, MemBWGBps: 68,
		Disk: disk.HDDConfig(), NICGbps: 1, PageCacheMB: 8192}
}

// C returns Platform C: single E3-1240 v5 (Skylake client), 256KB L2,
// 8MB LLC, DDR4-2133, HDD, 1Gbe.
func C() Spec {
	return Spec{Name: "C", Arch: cpu.Skylake, FreqGHz: 3.50, Cores: 4,
		L1iKB: 32, L1dKB: 32, L2KB: 256, L2Assoc: 8,
		LLCKB: 8192, LLCAssoc: 16, MemLatNS: 90, MemBWGBps: 34,
		Disk: disk.HDDConfig(), NICGbps: 1, PageCacheMB: 4096}
}

// Specs returns the three evaluation platforms keyed by name.
func Specs() map[string]Spec { return map[string]Spec{"A": A(), "B": B(), "C": C()} }

// options carries deployment adjustments applied at machine build time.
type options struct {
	cores            int
	freqGHz          float64
	smtFactor        float64
	l1Scale, l2Scale float64
	llcScale         float64
	memBWDemand      float64
	coherenceInv     float64
	clientGrade      bool
}

// Option adjusts machine construction.
type Option func(*options)

// WithCoreCount limits the machine to n cores (Fig. 11 core scaling).
func WithCoreCount(n int) Option { return func(o *options) { o.cores = n } }

// WithFreqGHz overrides the core clock (Fig. 11 frequency scaling).
func WithFreqGHz(f float64) Option { return func(o *options) { o.freqGHz = f } }

// WithSMTFactor models a busy hyperthread sibling: effective issue width is
// scaled by f (0.5 for a fully competing sibling).
func WithSMTFactor(f float64) Option { return func(o *options) { o.smtFactor = f } }

// WithPrivateCacheScale shrinks effective private cache capacity, modeling
// an L1d/L2 stressor on the sibling hyperthread (Fig. 10).
func WithPrivateCacheScale(l1, l2 float64) Option {
	return func(o *options) { o.l1Scale, o.l2Scale = l1, l2 }
}

// WithLLCScale shrinks the effective shared LLC, an alternative to running
// a real LLC stressor process.
func WithLLCScale(f float64) Option { return func(o *options) { o.llcScale = f } }

// WithMemBWDemand adds background DRAM bandwidth demand in GB/s, inflating
// memory latency through the contention model.
func WithMemBWDemand(gbps float64) Option {
	return func(o *options) { o.memBWDemand = gbps }
}

// WithCoherenceInvRate overrides the probability that a Shared-flagged
// access finds its line invalidated (default 0.25).
func WithCoherenceInvRate(r float64) Option {
	return func(o *options) { o.coherenceInv = r }
}

// Machine is one assembled server.
type Machine struct {
	Name   string
	Spec   Spec
	Eng    *sim.Engine
	Kernel *kernel.Kernel
	Cores  []*cpu.Core
	LLC    *cache.Cache
	NIC    *netsim.NIC
	Disk   *disk.Device
	DRAM   mem.DRAM
	// Index is the machine's insertion position in its Cluster (0 until
	// added). It is the stable small integer that keys per-machine state in
	// shared structures — e.g. a tracing Collector's per-shard arms — so
	// identity never depends on pointers.
	Index int
}

// NewMachine builds a machine of the given spec.
func NewMachine(eng *sim.Engine, name string, spec Spec, opts ...Option) *Machine {
	o := options{
		cores:     spec.Cores,
		freqGHz:   spec.FreqGHz,
		smtFactor: 1, l1Scale: 1, l2Scale: 1, llcScale: 1,
		coherenceInv: 0.25,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.cores <= 0 || o.cores > spec.Cores {
		o.cores = spec.Cores
	}

	dram := mem.DRAM{
		LatencyCycles: int(spec.MemLatNS * o.freqGHz),
		BandwidthGBps: spec.MemBWGBps,
	}
	memPenalty := dram.ContentionPenalty(o.memBWDemand)

	llcSize := scaleBytes(spec.LLCKB<<10, o.llcScale, spec.LLCAssoc)
	llcPolicy := cache.PLRU // recent Intel LLCs run pseudo-LRU variants
	if spec.LLCAssoc&(spec.LLCAssoc-1) != 0 {
		llcPolicy = cache.LRU // tree-PLRU needs power-of-two ways
	}
	llc := cache.New(cache.Config{Name: name + ".llc", Size: llcSize,
		Assoc: spec.LLCAssoc, Latency: 42, Policy: llcPolicy})

	m := &Machine{
		Name: name, Spec: spec, Eng: eng, LLC: llc,
		NIC:  netsim.NewNIC(eng, spec.NICGbps),
		Disk: disk.New(eng, spec.Disk),
		DRAM: dram,
	}
	for i := 0; i < o.cores; i++ {
		l1i := cache.New(cache.Config{Name: "l1i", Size: scaleBytes(spec.L1iKB<<10, o.l1Scale, 8),
			Assoc: 8, Latency: 4, Policy: cache.LRU})
		l1d := cache.New(cache.Config{Name: "l1d", Size: scaleBytes(spec.L1dKB<<10, o.l1Scale, 8),
			Assoc: 8, Latency: 4, Policy: cache.LRU, Prefetch: true})
		l2i := cache.New(cache.Config{Name: "l2", Size: scaleBytes(spec.L2KB<<10, o.l2Scale, spec.L2Assoc),
			Assoc: spec.L2Assoc, Latency: 12, Policy: cache.LRU})
		l2d := l2i // unified L2 shared between the two paths
		core := cpu.NewCore(cpu.Config{
			Arch:    spec.Arch,
			FreqGHz: o.freqGHz,
			ICache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1i, l2i, llc},
				MemLatency: dram.LatencyCycles, MemPenalty: memPenalty},
			DCache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1d, l2d, llc},
				MemLatency: dram.LatencyCycles, MemPenalty: memPenalty},
			CoherenceInvRate: o.coherenceInv,
			SMTFactor:        o.smtFactor,
		})
		m.Cores = append(m.Cores, core)
	}
	m.Kernel = kernel.New(eng, name, kernel.Resources{
		Cores:          m.Cores,
		Disk:           m.Disk,
		NIC:            m.NIC,
		PageCachePages: spec.PageCacheMB << 20 / 4096,
	})
	return m
}

// SetCPUThrottle scales every core's effective clock (1 = full speed,
// 0.5 = half). A fault plane uses it to model a slow replica: the machine
// keeps executing the same instruction streams, each just takes longer.
func (m *Machine) SetCPUThrottle(f float64) {
	for _, c := range m.Cores {
		c.SetThrottle(f)
	}
}

// scaleBytes scales a capacity while keeping it a valid multiple of the
// associativity times the line size.
func scaleBytes(bytes int, frac float64, assoc int) int {
	if frac <= 0 {
		frac = 1
	}
	v := int(float64(bytes) * frac)
	quantum := assoc * cache.LineBytes
	v = v / quantum * quantum
	if v < quantum {
		v = quantum
	}
	return v
}

// Cluster connects machines with a uniform-RTT fabric and implements
// kernel.Fabric.
type Cluster struct {
	Eng      *sim.Engine
	RTT      sim.Time
	machines []*Machine
	byKernel map[*kernel.Kernel]*Machine
}

// NewCluster builds an empty cluster with the given inter-machine RTT.
func NewCluster(eng *sim.Engine, rtt sim.Time) *Cluster {
	return &Cluster{Eng: eng, RTT: rtt, byKernel: map[*kernel.Kernel]*Machine{}}
}

// Add registers a machine and wires its kernel into the fabric.
func (c *Cluster) Add(m *Machine) {
	m.Index = len(c.machines)
	c.machines = append(c.machines, m)
	c.byKernel[m.Kernel] = m
	m.Kernel.SetFabric(c)
}

// Lookahead returns the conservative-parallel horizon this fabric supports:
// the minimum one-way delay between distinct machines. Every cross-machine
// interaction pays at least RTT/2 of propagation (loopback never leaves a
// machine's own shard), so shards may safely run this far ahead of each
// other. Fault planes can only add delay (LinkFault.ExtraOne ≥ 0), never
// shrink it below this commitment.
func (c *Cluster) Lookahead() sim.Time { return c.RTT / 2 }

// Machines returns the registered machines in insertion order.
func (c *Cluster) Machines() []*Machine { return c.machines }

// Path implements kernel.Fabric.
func (c *Cluster) Path(src, dst *kernel.Kernel) netsim.Path {
	if src == dst {
		return netsim.Path{Loopback: true}
	}
	sm, dm := c.byKernel[src], c.byKernel[dst]
	if sm == nil || dm == nil {
		return netsim.Path{Loopback: true}
	}
	return netsim.Path{Src: sm.NIC, Dst: dm.NIC, RTT: c.RTT}
}
