// Package stats provides the statistical primitives shared across the
// simulator and the Ditto pipeline: latency recorders with exact
// percentiles, running moments, histograms with log-scale quantization
// (the paper quantizes branch rates and dependency distances in log scale),
// and error metrics used by the validation harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Recorder collects float64 samples and answers percentile queries exactly.
// The zero value is ready to use.
type Recorder struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (r *Recorder) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
	r.sum += v
}

// Count reports the number of recorded samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Sum reports the total of the recorded samples.
func (r *Recorder) Sum() float64 { return r.sum }

// Mean reports the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / float64(len(r.samples))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. With no samples it returns 0.
func (r *Recorder) Percentile(p float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo]*(1-frac) + r.samples[hi]*frac
}

// Max returns the largest sample, or 0 with none.
func (r *Recorder) Max() float64 { return r.Percentile(100) }

// Min returns the smallest sample, or 0 with none.
func (r *Recorder) Min() float64 { return r.Percentile(0) }

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
	r.sum = 0
}

// Running tracks mean and variance incrementally (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Running) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of observations.
func (w *Running) Count() int64 { return w.n }

// Mean reports the running mean.
func (w *Running) Mean() float64 { return w.mean }

// Variance reports the population variance.
func (w *Running) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev reports the population standard deviation.
func (w *Running) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Histogram is a fixed set of named-bucket counts keyed by int. It is used
// for the log-quantized distributions the paper profiles (branch rates,
// dependency distances, working-set sizes).
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: map[int]int64{}} }

// Add increments bucket by n.
func (h *Histogram) Add(bucket int, n int64) {
	if h.counts == nil {
		h.counts = map[int]int64{}
	}
	h.counts[bucket] += n
	h.total += n
}

// Count reports the count in bucket.
func (h *Histogram) Count(bucket int) int64 { return h.counts[bucket] }

// Total reports the total count across all buckets.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the populated bucket keys in ascending order.
func (h *Histogram) Buckets() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Fraction reports bucket's share of the total, or 0 for an empty histogram.
func (h *Histogram) Fraction(bucket int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[bucket]) / float64(h.total)
}

// Probabilities returns the normalized distribution over populated buckets,
// keys ascending, values summing to 1 (for a non-empty histogram).
func (h *Histogram) Probabilities() (buckets []int, probs []float64) {
	buckets = h.Buckets()
	probs = make([]float64, len(buckets))
	for i, b := range buckets {
		probs[i] = h.Fraction(b)
	}
	return buckets, probs
}

// QuantizeLog2 maps a positive value to floor(log2(v)); values < 1 map to
// negative buckets. It is the paper's log-scale quantization primitive.
func QuantizeLog2(v float64) int {
	if v <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log2(v)))
}

// QuantizeRateLog2 maps a rate in (0,1] to its 2^-k bucket index k, clamped
// to [1,10] as the paper does for branch taken and transition rates
// ("from 2^-1 to 2^-10").
func QuantizeRateLog2(rate float64) int {
	if rate <= 0 {
		return 10
	}
	k := int(math.Round(-math.Log2(rate)))
	if k < 1 {
		k = 1
	}
	if k > 10 {
		k = 10
	}
	return k
}

// AbsPctErr reports |got-want|/|want| in percent. A zero want with a zero
// got is 0%; a zero want with nonzero got is 100%.
func AbsPctErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}

// MAPE reports the mean absolute percentage error across paired slices.
// It panics if the slices differ in length.
func MAPE(got, want []float64) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("stats: MAPE length mismatch %d vs %d", len(got), len(want)))
	}
	if len(got) == 0 {
		return 0
	}
	var s float64
	for i := range got {
		s += AbsPctErr(got[i], want[i])
	}
	return s / float64(len(got))
}

// Mean reports the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
