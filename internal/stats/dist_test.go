package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(7)
	b := NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(7).Fork(1)
	d := NewRand(7).Fork(2)
	same := true
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("forked streams identical")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var w Running
	for i := 0; i < 50000; i++ {
		w.Add(r.Exp(10))
	}
	if math.Abs(w.Mean()-10) > 0.5 {
		t.Fatalf("Exp mean = %v, want ~10", w.Mean())
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipfSkewAndUniform(t *testing.T) {
	r := NewRand(4)
	z := NewZipf(r, 1.2, 1000)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[500]*2 {
		t.Fatalf("Zipf not skewed: c0=%d c500=%d", counts[0], counts[500])
	}
	u := NewZipf(r, 0, 100)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := u.Next()
		if k >= 100 {
			t.Fatalf("uniform out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) < 90 {
		t.Fatalf("uniform coverage too low: %d", len(seen))
	}
	one := NewZipf(r, 0, 0) // n=0 clamps to 1
	if one.Next() != 0 {
		t.Fatal("n=0 zipf should always return 0")
	}
}

func TestEmpiricalRingAndMean(t *testing.T) {
	e := NewEmpirical(4, 1)
	if e.Count() != 0 || e.Mean() != 0 {
		t.Fatal("fresh Empirical should be empty")
	}
	for i := 0; i < 4; i++ {
		if slot := e.Add(float64(i)); slot != i {
			t.Fatalf("fill slot = %d, want %d", slot, i)
		}
	}
	if e.Mean() != 1.5 {
		t.Fatalf("Mean = %v, want 1.5", e.Mean())
	}
	// Fifth add evicts the oldest (slot 0) and the mean tracks the window.
	if slot := e.Add(10); slot != 0 {
		t.Fatalf("evicting slot = %d, want 0", slot)
	}
	if e.Count() != 4 {
		t.Fatalf("Count = %d, want 4", e.Count())
	}
	if want := (1.0 + 2 + 3 + 10) / 4; e.Mean() != want {
		t.Fatalf("Mean = %v, want %v", e.Mean(), want)
	}
	if e.At(0) != 10 {
		t.Fatalf("At(0) = %v, want 10", e.At(0))
	}
}

func TestEmpiricalDrawDeterminism(t *testing.T) {
	mk := func(seed int64) []int {
		e := NewEmpirical(8, seed)
		for i := 0; i < 8; i++ {
			e.Add(float64(i))
		}
		out := make([]int, 64)
		for i := range out {
			out[i] = e.DrawIndex()
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed draw sequences diverged")
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical draw sequences")
	}
	// Draws cover the window.
	seen := map[int]bool{}
	for _, s := range a {
		if s < 0 || s >= 8 {
			t.Fatalf("draw out of range: %d", s)
		}
		seen[s] = true
	}
	if len(seen) < 6 {
		t.Fatalf("draw coverage too low: %d of 8 slots", len(seen))
	}
}

func TestEmpiricalCapacityClamp(t *testing.T) {
	e := NewEmpirical(0, 1)
	e.Add(5)
	if e.Count() != 1 || e.Draw() != 5 {
		t.Fatal("capacity clamp to 1 broken")
	}
	e.Add(7)
	if e.Count() != 1 || e.At(0) != 7 {
		t.Fatal("single-slot ring should evict in place")
	}
}

func TestCategorical(t *testing.T) {
	r := NewRand(5)
	c := NewCategorical([]float64{1, 0, 3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[c.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
	// All-zero weights: uniform.
	u := NewCategorical([]float64{0, 0})
	c0, c1 := 0, 0
	for i := 0; i < 10000; i++ {
		if u.Sample(r) == 0 {
			c0++
		} else {
			c1++
		}
	}
	if c0 == 0 || c1 == 0 {
		t.Fatal("all-zero weights should sample uniformly")
	}
	empty := NewCategorical(nil)
	if empty.Sample(r) != 0 {
		t.Fatal("empty categorical should return 0")
	}
}
