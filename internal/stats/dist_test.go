package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(7)
	b := NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(7).Fork(1)
	d := NewRand(7).Fork(2)
	same := true
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("forked streams identical")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var w Running
	for i := 0; i < 50000; i++ {
		w.Add(r.Exp(10))
	}
	if math.Abs(w.Mean()-10) > 0.5 {
		t.Fatalf("Exp mean = %v, want ~10", w.Mean())
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipfSkewAndUniform(t *testing.T) {
	r := NewRand(4)
	z := NewZipf(r, 1.2, 1000)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[500]*2 {
		t.Fatalf("Zipf not skewed: c0=%d c500=%d", counts[0], counts[500])
	}
	u := NewZipf(r, 0, 100)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := u.Next()
		if k >= 100 {
			t.Fatalf("uniform out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) < 90 {
		t.Fatalf("uniform coverage too low: %d", len(seen))
	}
	one := NewZipf(r, 0, 0) // n=0 clamps to 1
	if one.Next() != 0 {
		t.Fatal("n=0 zipf should always return 0")
	}
}

func TestCategorical(t *testing.T) {
	r := NewRand(5)
	c := NewCategorical([]float64{1, 0, 3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[c.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
	// All-zero weights: uniform.
	u := NewCategorical([]float64{0, 0})
	c0, c1 := 0, 0
	for i := 0; i < 10000; i++ {
		if u.Sample(r) == 0 {
			c0++
		} else {
			c1++
		}
	}
	if c0 == 0 || c1 == 0 {
		t.Fatal("all-zero weights should sample uniformly")
	}
	empty := NewCategorical(nil)
	if empty.Sample(r) != 0 {
		t.Fatal("empty categorical should return 0")
	}
}
