package stats

import (
	"math"
	"math/rand"
)

// Rand is the deterministic random source used throughout the simulator.
// It wraps math/rand so a single seed reproduces a whole experiment.
type Rand struct{ *rand.Rand }

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand { return &Rand{rand.New(rand.NewSource(seed))} }

// Fork derives an independent stream labeled by id, so components can draw
// without perturbing each other's sequences.
func (r *Rand) Fork(id int64) *Rand {
	mixed := uint64(id) * 0x9E3779B97F4A7C15
	return NewRand(r.Int63() ^ int64(mixed>>1))
}

// Exp draws an exponential variate with the given mean.
func (r *Rand) Exp(mean float64) float64 { return r.ExpFloat64() * mean }

// LogNormal draws a log-normal variate with location mu and scale sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto draws a bounded Pareto variate with minimum xm and shape alpha.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Zipf draws integers in [0, n) with Zipfian skew s (s > 1 behaves like
// rand.Zipf; s == 0 is uniform). Used by the YCSB-style load generators.
type Zipf struct {
	n   uint64
	z   *rand.Zipf
	rng *Rand
}

// NewZipf builds a Zipf sampler over [0,n) with skew s (use s≈1.01 for the
// classic YCSB zipfian, 0 for uniform).
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	if n == 0 {
		n = 1
	}
	if s <= 1 {
		return &Zipf{n: n, rng: r}
	}
	return &Zipf{n: n, z: rand.NewZipf(r.Rand, s, 1, n-1), rng: r}
}

// Next draws the next key.
func (z *Zipf) Next() uint64 {
	if z.z == nil {
		return uint64(z.rng.Int63n(int64(z.n)))
	}
	return z.z.Uint64()
}

// Empirical is a bounded empirical distribution: a ring of the most recent
// Cap observations with a private seeded xorshift64* draw stream. It is the
// statistical core of sampled steady-state execution — modeled requests
// draw their result from the measured per-variant distribution — so both
// the ring layout and the draw sequence are pure functions of the seed and
// the Add order. Callers that need to attach payloads to observations (the
// steady sampler stores a full cpu.Result per sample) key a parallel array
// by the slot index Add and DrawIndex return.
type Empirical struct {
	vals []float64
	next int
	full bool
	rng  uint64
	sum  float64 // running sum of the live window
}

// NewEmpirical returns an empty distribution holding at most capacity
// observations (minimum 1), drawing with the given seed.
func NewEmpirical(capacity int, seed int64) *Empirical {
	if capacity < 1 {
		capacity = 1
	}
	r := uint64(seed)*0x9E3779B97F4A7C15 + 0x853C49E6748FEA9B
	return &Empirical{vals: make([]float64, 0, capacity), rng: r}
}

// Add records one observation, evicting the oldest once the ring is full,
// and returns the slot index the observation was written to.
func (e *Empirical) Add(v float64) int {
	if !e.full && len(e.vals) < cap(e.vals) {
		e.vals = append(e.vals, v)
		e.sum += v
		return len(e.vals) - 1
	}
	e.full = true
	slot := e.next
	e.sum += v - e.vals[slot]
	e.vals[slot] = v
	e.next = slot + 1
	if e.next == cap(e.vals) {
		e.next = 0
	}
	return slot
}

// Count reports the number of live observations (at most the capacity).
func (e *Empirical) Count() int { return len(e.vals) }

// Mean reports the mean of the live window, or 0 when empty.
func (e *Empirical) Mean() float64 {
	if len(e.vals) == 0 {
		return 0
	}
	return e.sum / float64(len(e.vals))
}

// DrawIndex returns the slot index of a uniformly drawn live observation,
// advancing the seeded stream. It panics on an empty distribution.
func (e *Empirical) DrawIndex() int {
	if len(e.vals) == 0 {
		panicEmptyDraw()
	}
	e.rng ^= e.rng >> 12
	e.rng ^= e.rng << 25
	e.rng ^= e.rng >> 27
	return int((e.rng * 0x2545F4914F6CDD1D) >> 33 % uint64(len(e.vals)))
}

// panicEmptyDraw is the cold failure path of DrawIndex, hoisted behind
// noinline so the panic string stays out of noalloc-gated callers that
// inline DrawIndex itself.
//
//go:noinline
func panicEmptyDraw() { panic("stats: DrawIndex on empty Empirical") }

// Draw returns a uniformly drawn live observation.
func (e *Empirical) Draw() float64 { return e.vals[e.DrawIndex()] }

// At returns the observation stored in slot (as returned by Add/DrawIndex).
func (e *Empirical) At(slot int) float64 { return e.vals[slot] }

// Categorical samples indices according to a fixed weight vector.
type Categorical struct {
	cum []float64
}

// NewCategorical normalizes weights into a sampler. Zero or negative
// weights are treated as 0; an all-zero vector samples uniformly.
func NewCategorical(weights []float64) *Categorical {
	cum := make([]float64, len(weights))
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	run := 0.0
	for i, w := range weights {
		if total == 0 {
			run += 1 / float64(len(weights))
		} else if w > 0 {
			run += w / total
		}
		cum[i] = run
	}
	if len(cum) > 0 {
		cum[len(cum)-1] = 1
	}
	return &Categorical{cum: cum}
}

// Len reports the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }

// Sample draws one category index using r.
func (c *Categorical) Sample(r *Rand) int {
	if len(c.cum) == 0 {
		return 0
	}
	u := r.Float64()
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
