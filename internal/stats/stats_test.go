package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if r.Percentile(50) != 0 || r.Mean() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := r.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := r.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := r.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.Percentile(99); math.Abs(got-99.01) > 0.2 {
		t.Fatalf("p99 = %v", got)
	}
	r.Reset()
	if r.Count() != 0 || r.Sum() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRecorderInterleavedAddQuery(t *testing.T) {
	var r Recorder
	r.Add(5)
	_ = r.Percentile(50)
	r.Add(1) // must re-sort after a query
	if got := r.Percentile(0); got != 1 {
		t.Fatalf("min after interleaved add = %v", got)
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		var r Recorder
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			r.Add(v)
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := r.Percentile(pa), r.Percentile(pb)
		return va <= vb+1e-9 && va >= r.Min()-1e-9 && vb <= r.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile(50) matches the exact median computed independently.
func TestMedianMatchesSortProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var r Recorder
		fs := make([]float64, len(vals))
		for i, v := range vals {
			fs[i] = float64(v)
			r.Add(float64(v))
		}
		sort.Float64s(fs)
		n := len(fs)
		var want float64
		if n%2 == 1 {
			want = fs[n/2]
		} else {
			want = (fs[n/2-1] + fs[n/2]) / 2
		}
		return math.Abs(r.Percentile(50)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunning(t *testing.T) {
	var w Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 1e-9 {
		t.Fatalf("StdDev = %v", w.StdDev())
	}
	var one Running
	one.Add(3)
	if one.Variance() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(1, 3)
	h.Add(5, 1)
	h.Add(1, 1)
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(1) != 4 {
		t.Fatalf("Count(1) = %d", h.Count(1))
	}
	bs := h.Buckets()
	if len(bs) != 2 || bs[0] != 1 || bs[1] != 5 {
		t.Fatalf("Buckets = %v", bs)
	}
	if math.Abs(h.Fraction(1)-0.8) > 1e-9 {
		t.Fatalf("Fraction(1) = %v", h.Fraction(1))
	}
	buckets, probs := h.Probabilities()
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if len(buckets) != 2 || math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Probabilities sum = %v", sum)
	}
	var zero Histogram
	zero.Add(2, 1) // zero value usable
	if zero.Total() != 1 {
		t.Fatal("zero-value histogram Add failed")
	}
	if zero.Fraction(3) != 0 {
		t.Fatal("missing bucket fraction should be 0")
	}
}

func TestQuantizeLog2(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {0.5, -1},
	}
	for _, c := range cases {
		if got := QuantizeLog2(c.v); got != c.want {
			t.Errorf("QuantizeLog2(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if QuantizeLog2(0) != math.MinInt32 {
		t.Error("QuantizeLog2(0) should be MinInt32")
	}
}

func TestQuantizeRateLog2(t *testing.T) {
	if got := QuantizeRateLog2(0.5); got != 1 {
		t.Fatalf("0.5 -> %d", got)
	}
	if got := QuantizeRateLog2(0.25); got != 2 {
		t.Fatalf("0.25 -> %d", got)
	}
	if got := QuantizeRateLog2(1.0 / 1024); got != 10 {
		t.Fatalf("2^-10 -> %d", got)
	}
	if got := QuantizeRateLog2(0.9); got != 1 {
		t.Fatalf("0.9 should clamp to 1, got %d", got)
	}
	if got := QuantizeRateLog2(1e-9); got != 10 {
		t.Fatalf("tiny rate should clamp to 10, got %d", got)
	}
	if got := QuantizeRateLog2(0); got != 10 {
		t.Fatalf("zero rate should clamp to 10, got %d", got)
	}
}

func TestErrorMetrics(t *testing.T) {
	if got := AbsPctErr(110, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("AbsPctErr = %v", got)
	}
	if AbsPctErr(0, 0) != 0 {
		t.Fatal("0/0 should be 0%")
	}
	if AbsPctErr(5, 0) != 100 {
		t.Fatal("x/0 should be 100%")
	}
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("MAPE = %v", got)
	}
	if MAPE(nil, nil) != 0 {
		t.Fatal("empty MAPE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MAPE length mismatch should panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}
