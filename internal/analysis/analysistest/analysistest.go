// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against expectations written in the fixture source,
// mirroring golang.org/x/tools/go/analysis/analysistest (implemented here
// because the module is dependency-free).
//
// A fixture is a package under <testdata>/src/<name> inside a fixture
// module (testdata has its own go.mod, so the repo's own build and lint
// never see it). Expectations are trailing comments:
//
//	total += rand.Float64() // want "global random stream"
//
// Each double-quoted string is a regexp that must match the message of
// exactly one diagnostic reported on that line; any diagnostic on a line
// without a matching want, and any want without a diagnostic, fails the
// test. Lines with no want comment assert the analyzer stays silent —
// which is how fixtures prove both the negative cases and that a
// ditto:determinism-ok suppression really removed a finding.
package analysistest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ditto/internal/analysis"
)

// Run applies one analyzer to the fixture package <testdata>/src/<pkg> and
// checks its findings against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := "src/" + pkg
	findings, err := analysis.Run(testdata, []string{dir}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	check(t, filepath.Join(testdata, dir), findings)
}

// RunAll applies several analyzers to the fixture package at once and
// checks their combined findings against the fixture's want comments —
// the shape of a real lint run, where one source file can trip any
// analyzer in the suite.
func RunAll(t *testing.T, testdata string, as []*analysis.Analyzer, pkg string) {
	t.Helper()
	dir := "src/" + pkg
	findings, err := analysis.Run(testdata, []string{dir}, as)
	if err != nil {
		t.Fatalf("run suite on %s: %v", dir, err)
	}
	check(t, filepath.Join(testdata, dir), findings)
}

// RunNoalloc applies the escape-analysis gate to the fixture package and
// checks its findings the same way. The fixture module is compiled with
// the real toolchain, so the test exercises the full go build -gcflags=-m
// round trip.
func RunNoalloc(t *testing.T, testdata, pkg string) {
	t.Helper()
	dir := "src/" + pkg
	findings, err := analysis.Noalloc(testdata, []string{dir})
	if err != nil {
		t.Fatalf("noalloc gate on %s: %v", dir, err)
	}
	check(t, filepath.Join(testdata, dir), findings)
}

// expectation is one want string: a line and a message pattern, consumed
// by at most one finding.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRE matches the trailing want comment; the payload is parsed as a
// sequence of Go double-quoted strings.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// check compares findings against the want comments of every .go file in
// fixtureDir.
func check(t *testing.T, fixtureDir string, findings []analysis.Finding) {
	t.Helper()
	expects := collectWants(t, fixtureDir)
	for _, f := range findings {
		if e := matchExpectation(expects, f); e == nil {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("no diagnostic at %s:%d matching %q", e.file, e.line, e.re)
		}
	}
}

// matchExpectation consumes the first unused expectation that matches the
// finding's file, line and message.
func matchExpectation(expects []*expectation, f analysis.Finding) *expectation {
	base := filepath.Base(f.Pos.Filename)
	for _, e := range expects {
		if !e.used && e.file == base && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.used = true
			return e
		}
	}
	return nil
}

// collectWants scans the fixture sources for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var expects []*expectation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		expects = append(expects, fileWants(t, dir, name)...)
	}
	return expects
}

func fileWants(t *testing.T, dir, name string) []*expectation {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var expects []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		for _, pat := range parseWantStrings(t, name, line, m[1]) {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", name, line, pat, err)
			}
			expects = append(expects, &expectation{file: name, line: line, re: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return expects
}

// parseWantStrings reads the sequence of double-quoted strings after
// "want".
func parseWantStrings(t *testing.T, name string, line int, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s:%d: want payload must be double-quoted strings, got %q", name, line, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want string in %q", name, line, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want string %q: %v", name, line, s[:end+1], err)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return pats
}
