package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// NoallocMarker annotates a function whose steady-state path must not heap
// allocate. It lives in the function's doc comment:
//
//	// ExecuteTrace runs the dynamic pass over a decoded trace.
//	// ditto:noalloc
//	func (c *Core) ExecuteTrace(tr *Trace) Result {
//
// The noalloc gate (Noalloc) compiles the annotated function's package
// with -gcflags=-m and fails when the compiler's escape analysis places an
// allocation inside the function's body. It is the static twin of the
// testing.AllocsPerRun gates: the runtime gates prove the warm path
// allocates zero bytes per op, the static gate pins the set of escape
// sites so a regression is caught at build time, on every code path, not
// just the ones a test happens to drive.
//
// A reviewed cold-path allocation inside an annotated function (e.g. a
// first-use pregeneration branch) carries the same uniform
// ditto:determinism-ok suppression as every other analyzer.
const NoallocMarker = "ditto:noalloc"

// noallocFunc is one annotated function: where it lives and which lines
// its body spans.
type noallocFunc struct {
	name       string // display name, receiver included
	file       string // path relative to the module root, slash-separated
	start, end int
}

// escapeLine matches one escape-analysis diagnostic:
// "path/file.go:line:col: message".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// allocMessage reports whether an -m diagnostic describes a heap
// allocation (rather than inlining or parameter-leak chatter).
func allocMessage(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// Noalloc runs the escape-analysis gate over the given module-relative
// package directories: it collects ditto:noalloc-annotated functions,
// compiles each annotated package with -gcflags=-m, and returns a finding
// for every heap allocation the compiler places inside an annotated
// function on a line without a reviewed suppression. Packages with no
// annotated functions are not compiled.
func Noalloc(root string, pkgDirs []string) ([]Finding, error) {
	var findings []Finding
	for _, dir := range pkgDirs {
		fs, err := noallocPackage(root, dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

func noallocPackage(root, dir string) ([]Finding, error) {
	funcs, suppressed, err := scanNoallocDir(root, dir)
	if err != nil {
		return nil, err
	}
	if len(funcs) == 0 {
		return nil, nil
	}
	out, err := escapeAnalysis(root, dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !allocMessage(m[4]) {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := enclosingNoalloc(funcs, file, lineNo)
		if fn == nil || suppressed[file][lineNo] {
			continue
		}
		findings = append(findings, Finding{
			Analyzer: "noalloc",
			Pos:      token.Position{Filename: filepath.Join(root, filepath.FromSlash(file)), Line: lineNo, Column: col},
			Message:  fmt.Sprintf("%s is annotated %s but %s", fn.name, NoallocMarker, m[4]),
		})
	}
	return findings, nil
}

// scanNoallocDir parses one package directory (no type checking — the
// annotation scan is syntactic) and returns its annotated functions plus
// the per-file suppression maps, keyed by root-relative slash path.
func scanNoallocDir(root, dir string) ([]noallocFunc, map[string]map[int]bool, error) {
	absDir := filepath.Join(root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(absDir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	var funcs []noallocFunc
	suppressed := map[string]map[int]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(absDir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		rel := filepath.ToSlash(filepath.Join(dir, name))
		suppressed[rel] = suppressedLines(fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), NoallocMarker) {
				continue
			}
			funcs = append(funcs, noallocFunc{
				name:  funcDisplayName(fd),
				file:  rel,
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			})
		}
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].file != funcs[j].file {
			return funcs[i].file < funcs[j].file
		}
		return funcs[i].start < funcs[j].start
	})
	return funcs, suppressed, nil
}

// escapeAnalysis compiles one package with -gcflags=-m from the module
// root and returns the compiler's diagnostics. The go tool replays cached
// compiler output, so repeat runs are cheap.
func escapeAnalysis(root, dir string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./"+filepath.ToSlash(dir))
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	return string(out), nil
}

// enclosingNoalloc finds the annotated function whose body spans
// file:line, or nil.
func enclosingNoalloc(funcs []noallocFunc, file string, line int) *noallocFunc {
	for i := range funcs {
		f := &funcs[i]
		if f.file == file && f.start <= line && line <= f.end {
			return f
		}
	}
	return nil
}

// funcDisplayName renders "Name" or "(Recv).Name" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeRecvType(&b, fd.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// writeRecvType renders a receiver type expression (*T, T, T[...]).
func writeRecvType(b *strings.Builder, t ast.Expr) {
	switch e := t.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeRecvType(b, e.X)
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.IndexExpr:
		writeRecvType(b, e.X)
	case *ast.IndexListExpr:
		writeRecvType(b, e.X)
	default:
		b.WriteString("?")
	}
}
