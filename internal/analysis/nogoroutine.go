package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoGoroutine flags bare concurrency in model packages: go statements,
// channel sends/receives, select, range over a channel, and make(chan).
// The simulator's determinism rests on a single-goroutine event engine;
// all real concurrency is owned by internal/runner (the cell pool) and the
// kernel's strict-handoff coroutine machinery. Anything else racing the
// engine destroys replayability, so every other goroutine or channel op in
// a deterministic package must either move behind the runner/engine or
// carry a reviewed ditto:determinism-ok suppression.
var NoGoroutine = &Analyzer{
	Name: "no-goroutine",
	Doc: "flag go statements and channel operations in model packages; " +
		"route concurrency through the runner/engine",
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(node.Pos(),
					"bare go statement; concurrency must be owned by the runner or the engine")
			case *ast.SendStmt:
				pass.Reportf(node.Pos(),
					"channel send; deterministic packages must not pass data over channels")
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					pass.Reportf(node.Pos(),
						"channel receive; deterministic packages must not pass data over channels")
				}
			case *ast.SelectStmt:
				pass.Reportf(node.Pos(),
					"select statement; deterministic packages must not multiplex channels")
			case *ast.RangeStmt:
				if t := info.TypeOf(node.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(node.Pos(),
							"range over channel; deterministic packages must not pass data over channels")
					}
				}
			case *ast.CallExpr:
				if isMakeChan(info, node) {
					pass.Reportf(node.Pos(),
						"make(chan) allocates a channel; deterministic packages must not own channels")
				}
			}
			return true
		})
	}
	return nil
}

// isMakeChan reports whether call is make(chan T[, n]).
func isMakeChan(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if obj, ok := info.Uses[fn]; !ok || obj != types.Universe.Lookup("make") {
		return false
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
