package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock flags reads of the host clock. Deterministic code must take
// time from the simulation engine (sim.Engine.Now), never from the time
// package: a wall-clock read makes results depend on when — and how fast —
// the simulation happens to run.
var WallClock = &Analyzer{
	Name: "wall-clock",
	Doc: "flag time.Now/Since/Until in deterministic packages; " +
		"simulated time must come from the engine",
	Run: runWallClock,
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"time.Now": true, "time.Since": true, "time.Until": true,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calledFunc(pass.TypesInfo, call); fn != nil && wallClockFuncs[fn.FullName()] {
				pass.Reportf(call.Pos(),
					"%s reads the host clock; deterministic code must take time from the simulation engine",
					fn.FullName())
			}
			return true
		})
	}
	return nil
}

// calledFunc resolves a call through a selector to the package-level
// function it invokes, or nil for methods, locals, conversions and
// builtins. Methods are excluded on purpose: a method on a seeded
// *rand.Rand is the deterministic idiom.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
