package analysis_test

import (
	"testing"

	"ditto/internal/analysis"
	"ditto/internal/analysis/analysistest"
)

// The per-analyzer fixtures each hold positive, negative and suppressed
// cases; the want comments in testdata/src/<name> are the assertions.

func TestWallClockFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallClock, "wallclock")
}

func TestGlobalRandFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand, "globalrand")
}

func TestMapRangeFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapRange, "maprange")
}

func TestSharedStateFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SharedState, "sharedstate")
}

func TestNoGoroutineFixture(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoGoroutine, "nogoroutine")
}

// TestNoallocFixture drives the full go build -gcflags=-m round trip over
// the fixture module: the annotated allocating function must fail, the
// annotated clean and the unannotated allocating functions must not, and
// the suppressed cold-path allocation must be tolerated.
func TestNoallocFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture module; skipped in -short")
	}
	analysistest.RunNoalloc(t, "testdata", "noalloc")
}

// TestUniformSuppression runs the whole suite over the mixed fixture: five
// suppressed constructs and their five unsuppressed siblings. Exactly one
// finding per analyzer proves suppression is driver-level — no analyzer
// can forget it — and that a suppression never shields a sibling line.
func TestUniformSuppression(t *testing.T) {
	findings, err := analysis.Run("testdata", []string{"src/suppression"}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	perAnalyzer := map[string]int{}
	for _, f := range findings {
		perAnalyzer[f.Analyzer]++
	}
	for _, a := range analysis.All() {
		if perAnalyzer[a.Name] != 1 {
			t.Errorf("analyzer %s: %d findings, want exactly 1 (suppressed pair leaked or sibling shielded)",
				a.Name, perAnalyzer[a.Name])
		}
	}
	if len(findings) != len(analysis.All()) {
		t.Errorf("suite produced %d findings, want %d:\n%v", len(findings), len(analysis.All()), findings)
	}
}

// TestStoreBugsFixture runs the whole AST suite over the storage-shaped
// fixture: a miniature WAL + block store exhibiting each analyzer's bug
// class the way store code produces it (package-level cursors, host-clock
// fsync timing, global random victim choice, hash-ordered writeback, a
// background flusher goroutine) next to the seeded, instance-owned clean
// paths. All six analyzers firing on storage idioms is the satellite
// guarantee behind linting internal/app/dittofs.
func TestStoreBugsFixture(t *testing.T) {
	analysistest.RunAll(t, "testdata", analysis.All(), "storebugs")
}

// TestStoreNoallocFixture drives the escape-analysis gate over the
// storage hot paths: the per-commit WAL record path fails when annotated
// and allocating, stays silent when clean, unannotated, or reviewed.
func TestStoreNoallocFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the fixture module; skipped in -short")
	}
	analysistest.RunNoalloc(t, "testdata", "storenoalloc")
}

// TestFindingsSorted pins the driver's report order: findings come back
// sorted by file, line, column, analyzer — the stability the JSON report
// consumers rely on.
func TestFindingsSorted(t *testing.T) {
	findings, err := analysis.Run("testdata",
		[]string{"src/suppression", "src/maprange"}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("findings out of order: %s before %s", a, b)
		}
	}
}
