package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags map iteration whose order can leak into results. Go
// randomizes map order per iteration, so any accumulation, emission or
// mutation driven by an unordered range is a determinism leak.
//
// Two shapes are tolerated:
//
//   - the collect-keys idiom `for k := range m { keys = append(keys, k) }`,
//     whose output is expected to be sorted before use;
//   - a range carrying a reviewed ditto:determinism-ok suppression
//     (applied uniformly by the driver, like every analyzer).
var MapRange = &Analyzer{
	Name: "map-range",
	Doc: "flag map iteration outside the collect-keys idiom; " +
		"sort keys first or suppress a reviewed-safe loop",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectKeysIdiom(pass.TypesInfo, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"iteration over %s is unordered; sort the keys first, or annotate a reviewed-safe loop with %q",
				t, SuppressionMarker)
			return true
		})
	}
	return nil
}

// isCollectKeysIdiom recognizes `for k := range m { s = append(s, k) }`,
// the standard prelude to sorted iteration.
func isCollectKeysIdiom(info *types.Info, rng *ast.RangeStmt) bool {
	if rng.Value != nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := info.Uses[fn]; !ok || obj != types.Universe.Lookup("append") {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := info.Defs[keyIdent]
	return keyObj != nil && info.Uses[arg] == keyObj
}
