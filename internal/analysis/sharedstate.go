package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedState flags writes to package-level variables outside init
// functions and var initializers. A package-level var written at simulation
// time is state shared by every cell in the process: two cells running in
// the same pool observe each other's writes, and results change with
// -parallel width. This is the exact bug class of kernel.procSeq (PR 2) —
// a package-level sequence counter that leaked across cells until it was
// moved into the Kernel struct.
//
// Reads are fine (lookup tables computed at init are the idiom all over the
// model packages); only writes after init are flagged. Writes reached only
// through a pointer (`p := &pkgVar; *p = x`) are not tracked — the analyzer
// is a tripwire for the common shapes, not an alias analysis.
var SharedState = &Analyzer{
	Name: "shared-state",
	Doc: "flag package-level vars written outside init; " +
		"per-run state must live in a struct passed through the call chain",
	Run: runSharedState,
}

func runSharedState(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isInitFunc(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range node.Lhs {
						checkWrite(pass, lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, node.X)
				}
				return true
			})
		}
	}
	return nil
}

// isInitFunc reports whether fd is a package init function.
func isInitFunc(fd *ast.FuncDecl) bool {
	return fd.Recv == nil && fd.Name.Name == "init"
}

// checkWrite unwraps an assignment target down to the variable it mutates
// and reports it if that variable is package-level. Index expressions are
// unwrapped (writing m[k] mutates m's state); selector chains are followed
// to their base (writing pkgVar.field mutates pkgVar); stars stop the walk
// (a write through a pointer names the pointee, not the var).
func checkWrite(pass *Pass, expr ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if v := pkgLevelVar(pass.TypesInfo.Uses[e.Sel]); v != nil {
				reportSharedWrite(pass, e.Sel.Pos(), v)
				return
			}
			expr = e.X
		case *ast.Ident:
			if v := pkgLevelVar(pass.TypesInfo.Uses[e]); v != nil {
				reportSharedWrite(pass, e.Pos(), v)
			}
			return
		default:
			return
		}
	}
}

func reportSharedWrite(pass *Pass, pos token.Pos, v *types.Var) {
	pass.Reportf(pos,
		"package-level var %s is written outside init; per-run state must live in a struct passed through the call chain",
		v.Name())
}

// pkgLevelVar returns obj as a package-scoped *types.Var, or nil.
func pkgLevelVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
