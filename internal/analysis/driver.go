package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run loads each module-relative package directory under root, applies
// every analyzer to every package, filters suppressed lines, and returns
// the surviving findings sorted by position then analyzer. Test files are
// not analyzed, but imports resolve through the module so types are exact.
func Run(root string, pkgDirs []string, analyzers []*Analyzer) ([]Finding, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, dir := range pkgDirs {
		lp, err := ld.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		fs, err := runPackage(ld.fset, lp, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// runPackage applies the analyzers to one loaded package and filters the
// diagnostics through the uniform suppression map.
func runPackage(fset *token.FileSet, lp *loadedPkg, analyzers []*Analyzer) ([]Finding, error) {
	suppressed := map[string]map[int]bool{}
	for _, f := range lp.files {
		name := fset.Position(f.Pos()).Filename
		suppressed[name] = suppressedLines(fset, f)
	}
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     lp.files,
			Pkg:       lp.pkg,
			TypesInfo: lp.info,
		}
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if suppressed[pos.Filename][pos.Line] {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return findings, nil
}

// sortFindings orders findings by file, line, column, then analyzer name,
// so reports are stable across runs and analyzer registration order.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
