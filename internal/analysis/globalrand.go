package analysis

import "go/ast"

// GlobalRand flags draws from the global math/rand stream. The global
// stream is process-wide mutable state: two cells drawing from it observe
// each other, and -parallel width changes every result. Deterministic code
// seeds its own stream (stats.NewRand, rand.New) and passes it down.
var GlobalRand = &Analyzer{
	Name: "global-rand",
	Doc: "flag package-level math/rand draws; " +
		"use a seeded stats.Rand passed through the call chain",
	Run: runGlobalRand,
}

// randConstructors are the seeded entry points of math/rand that do not
// touch the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"%s draws from the global random stream; use a seeded stats.Rand",
					fn.FullName())
			}
			return true
		})
	}
	return nil
}
