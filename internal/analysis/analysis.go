// Package analysis is Ditto's static-analysis suite: a multi-analyzer
// framework modeled on the golang.org/x/tools/go/analysis API (the module
// is dependency-free, so the driver, loader and analysistest harness are
// implemented here rather than imported), plus the determinism and hot-path
// analyzers that guard the simulator's core promise — one seed reproduces a
// whole experiment, at zero steady-state allocation cost.
//
// Analyzers (one file each, fixtures under testdata/src/<name>):
//
//	wall-clock    time.Now/Since/Until reads in deterministic packages
//	global-rand   draws from the global math/rand stream
//	map-range     map iteration whose order can leak into results
//	shared-state  package-level mutable vars written outside init
//	no-goroutine  bare go statements and channel operations
//	noalloc       heap allocations inside ditto:noalloc functions
//	              (escape-analysis gate, see noalloc.go; not AST-based)
//
// Every analyzer honors one uniform suppression syntax: a reviewed-safe
// construct carries a comment containing "ditto:determinism-ok" on its own
// line or the line above. Suppression is applied by the driver, not by the
// analyzers, so no analyzer can forget it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a name, a doc string,
// and a Run function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer and doubles as the finding rule in
	// reports. By convention it is short and kebab-case.
	Name string

	// Doc is the one-paragraph description shown by dittolint -help.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The error return is for operational failures
	// (not findings); a failing Run aborts the whole driver run.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics. Mirrors go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver filters suppressed
	// lines and converts positions, so analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding of one analyzer, positioned by token.Pos
// within the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a driver-level diagnostic: resolved position, owning
// analyzer, stable across runs.
type Finding struct {
	Analyzer string // Analyzer.Name
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// All returns the AST-based analyzer suite in its canonical order. The
// noalloc gate is not part of this set: it drives the compiler's escape
// analysis rather than an AST walk (see Noalloc).
func All() []*Analyzer {
	return []*Analyzer{WallClock, GlobalRand, MapRange, SharedState, NoGoroutine}
}
