package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// SuppressionMarker is the one uniform reviewed-safe annotation. A comment
// containing it suppresses every analyzer's findings on the comment's line
// and on the line below — a trailing same-line comment or a dedicated line
// above the construct both work:
//
//	for m := range touch { // ditto:determinism-ok idempotent state write
//
//	// ditto:determinism-ok strict-handoff coroutine channel
//	<-t.resume
//
// Suppression is applied uniformly by the driver after every analyzer has
// reported, so a new analyzer cannot forget to honor it. The marker is a
// review record: the rest of the comment should say why the construct is
// safe.
const SuppressionMarker = "ditto:determinism-ok"

// suppressedLines collects the lines of f on which the marker allows a
// finding. A marker anywhere in a comment group suppresses every line the
// group covers plus the line after it, so a multi-line review comment
// above a construct works the same as a trailing one-liner.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		if !groupHasMarker(cg) {
			continue
		}
		start := fset.Position(cg.Pos()).Line
		end := fset.Position(cg.End()).Line
		for l := start; l <= end+1; l++ {
			lines[l] = true
		}
	}
	return lines
}

func groupHasMarker(cg *ast.CommentGroup) bool {
	for _, c := range cg.List {
		if strings.Contains(c.Text, SuppressionMarker) {
			return true
		}
	}
	return false
}
