// Package storebugs is a storage-shaped fixture: a miniature WAL + block
// store written the way store code goes wrong, one construct per analyzer
// in the suite. The shared-state and wall-clock classes lead because they
// are the likely bug sources in real store code — package-level cursors
// and host-clock fsync timing — with the seeded, instance-owned versions
// alongside as the negatives the suite must tolerate.
package storebugs

import (
	"math/rand"
	"time"
)

// walCursor is the classic store bug: a package-level append cursor makes
// two deployments in one process share a WAL tail.
var walCursor int64

// openStores is package-level registry state.
var openStores = map[string]int{}

// blockSize is computed once at init and read-only afterwards — silent.
var blockSize int

func init() {
	blockSize = 4 << 10
}

// store is the instance-owned counterpart: every field below is private
// to one deployment, so the mutations in its methods stay silent.
type store struct {
	cursor int64
	dirty  map[int64]bool
	order  []int64
	rng    *rand.Rand
	fsyncs int
}

// Append advances the package-level cursor — fires — and times the fsync
// with the host clock — fires twice.
func Append(bytes int64) time.Duration {
	walCursor += bytes       // want "package-level var walCursor"
	start := time.Now()      // want "reads the host clock"
	return time.Since(start) // want "reads the host clock"
}

// Open registers the store in package state — fires on the map write.
func Open(name string) {
	openStores[name] = 1 // want "package-level var openStores"
}

// PickVictim samples the global random stream — fires — instead of an
// owned, seeded source.
func PickVictim(resident int) int {
	return rand.Intn(resident) // want "global random stream"
}

// Writeback walks the dirty-page map in hash order — fires — so flush
// order (and therefore disk interleaving) differs run to run.
func (s *store) Writeback(flush func(int64)) {
	for page := range s.dirty { // want "unordered"
		flush(page)
	}
}

// FlushAsync hands the flush to a bare goroutine over a channel — the
// whole block fires: spawn, make(chan), send, receive.
func (s *store) FlushAsync(flush func(int64)) int64 {
	done := make(chan int64, 1) // want "make\\(chan\\)"
	go func() {                 // want "bare go statement"
		flush(s.cursor)
		done <- s.cursor // want "channel send"
	}()
	return <-done // want "channel receive"
}

// AppendOwned is the clean commit path: instance cursor, seeded sampling,
// insertion-ordered writeback — silent end to end.
func (s *store) AppendOwned(bytes int64, flush func(int64)) {
	s.cursor += bytes
	victim := s.order[s.rng.Intn(len(s.order))]
	if s.dirty[victim] {
		flush(victim)
		delete(s.dirty, victim)
	}
	s.fsyncs++
}

// SuppressedCursor carries a reviewed annotation; the sibling write below
// must still fire.
func SuppressedCursor() {
	// ditto:determinism-ok fixture: reviewed one-time geometry probe
	walCursor = 0

	walCursor = 1 // want "package-level var walCursor"
}
