// Package storenoalloc exercises the escape-analysis gate on storage
// hot-path shapes: the per-commit WAL record path must stay allocation
// free (it runs once per request), while one-time store construction may
// allocate outside the gate's scope.
package storenoalloc

// journal keeps record buffers alive so fixture allocations escape.
var journal [][]byte

// Commit is the per-request WAL append: annotated, yet it builds the
// record on the heap — the gate must fail it.
// ditto:noalloc
func Commit(payload []byte) {
	rec := make([]byte, len(payload)+16) // want "escapes to heap"
	copy(rec[16:], payload)
	journal = append(journal, rec)
}

// Checksum is the clean hot path: arithmetic over existing storage.
// ditto:noalloc
func Checksum(block []byte) uint32 {
	var sum uint32
	for _, b := range block {
		sum = sum*31 + uint32(b)
	}
	return sum
}

// NewJournal is store construction — allocating, but unannotated and so
// out of the gate's scope.
func NewJournal(capacity int) {
	journal = make([][]byte, 0, capacity)
}

// WarmCommit is annotated; its single allocation is a reviewed first-use
// buffer the gate must tolerate.
// ditto:noalloc
func WarmCommit(payload []byte) int {
	if journal == nil {
		// ditto:determinism-ok fixture: reviewed first-use pregeneration
		journal = make([][]byte, 0, 64)
	}
	return len(journal) + len(payload)
}
