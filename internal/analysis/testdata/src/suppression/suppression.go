// Package suppression is the uniformity fixture: one suppressed and one
// unsuppressed instance of every analyzer's target construct. The driver
// test runs the whole suite over it at once and requires exactly one
// finding per analyzer — proving the ditto:determinism-ok syntax is
// honored by every analyzer and never shields a sibling line.
package suppression

import (
	"math/rand"
	"time"
)

// seq is the package-level state the shared-state pair writes.
var seq int

// Everything holds the five suppressed/unsuppressed pairs.
func Everything(m map[string]int, ch chan int) int {
	// ditto:determinism-ok fixture: reviewed wall-clock read
	_ = time.Now()

	_ = time.Now() // unsuppressed wall-clock

	// ditto:determinism-ok fixture: reviewed global draw
	_ = rand.Int()

	_ = rand.Int() // unsuppressed global-rand

	// ditto:determinism-ok fixture: reviewed commutative loop
	for range m {
	}

	for range m { // unsuppressed map-range
	}

	// ditto:determinism-ok fixture: reviewed shared write
	seq++

	seq++ // unsuppressed shared-state

	// ditto:determinism-ok fixture: reviewed handoff
	ch <- 1

	ch <- 2 // unsuppressed no-goroutine
	return seq
}
