// Package maprange exercises the map-range analyzer: order-dependent
// accumulation fires, the collect-keys idiom and slice ranges stay silent,
// and a reviewed suppression removes a finding without shielding its
// sibling.
package maprange

import "sort"

// Accumulate folds map values in iteration order — fires.
func Accumulate(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m { // want "unordered"
		t += v
	}
	return t
}

// CollectKeys is the tolerated prelude to sorted iteration.
func CollectKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SliceRange iterates an ordered sequence — silent.
func SliceRange(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Suppressed has a reviewed commutative loop; the sibling loop below is
// not the collect-keys idiom and must still fire.
func Suppressed(m map[string]int) int {
	n := 0
	// ditto:determinism-ok fixture: commutative count
	for range m {
		n++
	}

	for k := range m { // want "unordered"
		_ = k
		n++
	}
	return n
}
