// Package sharedstate exercises the shared-state analyzer: writes to
// package-level vars outside init fire (direct assignment, increment, map
// element, struct field), init-time writes and local state stay silent,
// and a reviewed suppression removes a finding without shielding its
// sibling.
package sharedstate

// table is computed at init and read-only afterwards — the lookup-table
// idiom the analyzer must tolerate.
var table [4]int

// counter is the kernel.procSeq bug class: a package-level sequence.
var counter int

// registry is package-level mutable map state.
var registry = map[string]int{}

// cfg is package-level struct state.
var cfg struct{ Debug bool }

func init() {
	for i := range table {
		table[i] = i * i
	}
}

// Next bumps package state — fires.
func Next() int {
	counter++ // want "package-level var counter"
	return counter + table[0]
}

// Register writes an element of a package-level map — fires on the map.
func Register(name string) {
	registry[name] = 1 // want "package-level var registry"
}

// SetDebug writes a field of a package-level struct — fires on the var.
func SetDebug() {
	cfg.Debug = true // want "package-level var cfg"
}

// Local mutates only its own frame — silent.
func Local() int {
	local := 0
	local++
	return local
}

// Suppressed has a reviewed write; the sibling write still fires.
func Suppressed() {
	// ditto:determinism-ok fixture: reviewed one-time configuration write
	counter = 1

	counter = 2 // want "package-level var counter"
}
