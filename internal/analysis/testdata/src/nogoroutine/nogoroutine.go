// Package nogoroutine exercises the no-goroutine analyzer: go statements,
// channel sends/receives, select, range-over-channel and make(chan) all
// fire; plain sequential code stays silent; a reviewed suppression removes
// a finding without shielding its sibling.
package nogoroutine

// Spawn starts a bare goroutine — fires.
func Spawn(f func()) {
	go f() // want "bare go statement"
}

// Chans exercises the channel ops end to end.
func Chans() int {
	ch := make(chan int, 1) // want "make\\(chan\\)"
	ch <- 1                 // want "channel send"
	x := <-ch               // want "channel receive"
	close(ch)
	return x
}

// Mux multiplexes two channels; the select and both comm ops fire.
func Mux(a, b chan int) int {
	select { // want "select statement"
	case x := <-a: // want "channel receive"
		return x
	case b <- 1: // want "channel send"
		return 0
	}
}

// Drain ranges a channel — fires.
func Drain(ch chan int) int {
	t := 0
	for v := range ch { // want "range over channel"
		t += v
	}
	return t
}

// Sequential is plain deterministic code — silent.
func Sequential(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Park is the kernel's strict-handoff shape with a reviewed suppression;
// the sibling send still fires.
func Park(resume chan struct{}) {
	// ditto:determinism-ok fixture: strict handoff reviewed
	resume <- struct{}{}

	resume <- struct{}{} // want "channel send"
}
