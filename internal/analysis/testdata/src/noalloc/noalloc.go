// Package noalloc exercises the escape-analysis gate: an annotated
// function that heap-allocates fails, an annotated allocation-free
// function passes, an unannotated allocating function is out of scope, and
// a reviewed suppression tolerates a cold-path allocation.
package noalloc

// sink forces allocations to escape; this fixture is only ever compiled
// by the noalloc gate, never linted by the AST analyzers.
var sink []byte

// Leak is annotated yet allocates — the gate must fail it.
// ditto:noalloc
func Leak(n int) {
	b := make([]byte, n) // want "escapes to heap"
	sink = b
}

// Sum is annotated and clean: arithmetic over existing storage.
// ditto:noalloc
func Sum(xs []byte) int {
	t := 0
	for _, x := range xs {
		t += int(x)
	}
	return t
}

// Grow allocates but carries no annotation — out of the gate's scope.
func Grow(n int) {
	sink = make([]byte, n)
}

// Cold is annotated; its single allocation is a reviewed first-use path.
// ditto:noalloc
func Cold(n int) int {
	if sink == nil {
		// ditto:determinism-ok fixture: reviewed first-use pregeneration
		sink = make([]byte, n)
	}
	return len(sink)
}
