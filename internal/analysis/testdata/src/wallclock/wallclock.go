// Package wallclock exercises the wall-clock analyzer: host-clock reads
// fire, pure time arithmetic stays silent, and a reviewed suppression
// removes a finding without shielding its sibling.
package wallclock

import "time"

// Bad reads the host clock three ways.
func Bad() time.Duration {
	start := time.Now()      // want "reads the host clock"
	_ = time.Until(start)    // want "reads the host clock"
	return time.Since(start) // want "reads the host clock"
}

// Good uses the time package only for arithmetic and parsing.
func Good() time.Duration {
	d, _ := time.ParseDuration("3ms")
	return d * 2
}

// Suppressed carries a reviewed annotation on the first read; the second
// read below it must still fire.
func Suppressed() time.Time {
	a := time.Now() // ditto:determinism-ok fixture: reviewed wall-clock read

	b := time.Now() // want "reads the host clock"
	_ = b
	return a
}
