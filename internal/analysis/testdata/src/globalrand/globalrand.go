// Package globalrand exercises the global-rand analyzer: draws from the
// global math/rand stream fire, seeded streams and their methods stay
// silent, and a reviewed suppression removes a finding without shielding
// its sibling.
package globalrand

import "math/rand"

// Bad draws from the global stream twice.
func Bad() float64 {
	x := rand.Float64()  // want "global random stream"
	n := rand.Intn(10)   // want "global random stream"
	return x + float64(n)
}

// Good seeds its own stream; methods on a seeded *rand.Rand are the
// deterministic idiom.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Suppressed carries a reviewed annotation; the sibling draw still fires.
func Suppressed() float64 {
	// ditto:determinism-ok fixture: reviewed global draw
	a := rand.Float64()

	b := rand.Float64() // want "global random stream"
	return a + b
}
