package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// loadedPkg is one parsed and type-checked package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves and type-checks packages of one module, importing module
// siblings recursively and the standard library through the source
// importer (export data for the stdlib is not shipped with modern
// toolchains, so compiling from GOROOT source is the hermetic choice).
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.Importer
	pkgs   map[string]*loadedPkg // keyed by module-relative dir
	stack  map[string]bool
}

func newLoader(root string) (*loader, error) {
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("module root: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(modData), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*loadedPkg{},
		stack:  map[string]bool{},
	}, nil
}

// Import implements types.Importer over the module + stdlib split.
func (l *loader) Import(path string) (*types.Package, error) {
	if rel, ok := strings.CutPrefix(path, l.module+"/"); ok {
		lp, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks one module-relative package directory,
// memoized.
func (l *loader) loadDir(rel string) (*loadedPkg, error) {
	rel = filepath.ToSlash(filepath.Clean(rel))
	if lp, ok := l.pkgs[rel]; ok {
		return lp, nil
	}
	if l.stack[rel] {
		return nil, fmt.Errorf("import cycle through %s", rel)
	}
	l.stack[rel] = true
	defer delete(l.stack, rel)

	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(l.module+"/"+rel, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[rel] = lp
	return lp, nil
}
