package runner

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stagger makes later-planned cells finish earlier, so in-order delivery is
// actually exercised rather than happening by accident.
func stagger(n, i int) { time.Sleep(time.Duration(n-i) * time.Millisecond) }

func TestRunDeliversPlanOrder(t *testing.T) {
	const n = 16
	p := NewPlan()
	for i := 0; i < n; i++ {
		i := i
		p.Add(fmt.Sprintf("cell/%02d", i), func(w io.Writer) (any, error) {
			stagger(n, i)
			fmt.Fprintf(w, "row %02d\n", i)
			return i, nil
		})
	}
	var buf bytes.Buffer
	results := Run(&buf, p, Options{Parallel: 8})
	if len(results) != n {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Value != i || r.Err != nil || r.Skipped {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&want, "row %02d\n", i)
	}
	if buf.String() != want.String() {
		t.Fatalf("output out of plan order:\n%s", buf.String())
	}
}

func TestRunByteIdenticalAcrossPoolWidths(t *testing.T) {
	build := func() *Plan {
		p := NewPlan()
		for i := 0; i < 12; i++ {
			i := i
			p.Add(fmt.Sprintf("c/%d", i), func(w io.Writer) (any, error) {
				stagger(12, i)
				fmt.Fprintf(w, "v=%d\n", i*i)
				return nil, nil
			})
		}
		return p
	}
	var b1, b8 bytes.Buffer
	Run(&b1, build(), Options{Parallel: 1})
	Run(&b8, build(), Options{Parallel: 8})
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatalf("output differs across pool widths:\n-- p1:\n%s-- p8:\n%s", b1.String(), b8.String())
	}
}

func TestBarrierOrdersStages(t *testing.T) {
	p := NewPlan()
	var shared atomic.Int64
	for i := 0; i < 6; i++ {
		i := i
		p.AddPrep(fmt.Sprintf("prep/%d/build", i), func(io.Writer) (any, error) {
			stagger(6, i)
			shared.Add(1)
			return nil, nil
		})
	}
	p.Barrier()
	for i := 0; i < 6; i++ {
		p.Add(fmt.Sprintf("measure/%d", i), func(io.Writer) (any, error) {
			return shared.Load(), nil
		})
	}
	results := Run(io.Discard, p, Options{Parallel: 4})
	for _, r := range results[6:] {
		if r.Value != int64(6) {
			t.Fatalf("measure cell %s ran before barrier: saw %v preps", r.Name, r.Value)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	p := NewPlan()
	p.Add("ok", func(io.Writer) (any, error) { return "fine", nil })
	p.Add("boom", func(io.Writer) (any, error) { panic("kaput") })
	p.Add("also-ok", func(w io.Writer) (any, error) {
		fmt.Fprintln(w, "still here")
		return 7, nil
	})
	var buf bytes.Buffer
	results := Run(&buf, p, Options{Parallel: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy cells errored: %+v", results)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaput") {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if !strings.Contains(buf.String(), "still here") {
		t.Fatal("cells after a panic should still run")
	}
}

func TestFilterKeepsNeededPreps(t *testing.T) {
	p := NewPlan()
	p.AddPrep("fig5/redis/clone", func(io.Writer) (any, error) { return nil, nil })
	p.AddPrep("fig5/memcached/clone", func(io.Writer) (any, error) { return nil, nil })
	p.Barrier()
	p.Add("fig5/redis/low/actual", func(io.Writer) (any, error) { return nil, nil })
	p.Add("fig5/memcached/low/actual", func(io.Writer) (any, error) { return nil, nil })

	live := p.Filter(regexp.MustCompile(`fig5/redis/low`))
	if live != 1 {
		t.Fatalf("live = %d", live)
	}
	results := Run(io.Discard, p, Options{Parallel: 2})
	byName := map[string]CellResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if byName["fig5/redis/clone"].Skipped {
		t.Fatal("prep for surviving cell was skipped")
	}
	if !byName["fig5/memcached/clone"].Skipped || !byName["fig5/memcached/low/actual"].Skipped {
		t.Fatal("unrelated cells should be skipped")
	}
	if byName["fig5/redis/low/actual"].Skipped {
		t.Fatal("matching cell was skipped")
	}
}

func TestFilterMatchingPrepSurvivesAlone(t *testing.T) {
	p := NewPlan()
	p.AddPrep("fig9/profile", func(io.Writer) (any, error) { return nil, nil })
	p.Add("fig9/stage/A", func(io.Writer) (any, error) { return nil, nil })
	if live := p.Filter(regexp.MustCompile(`fig9/profile`)); live != 0 {
		t.Fatalf("live = %d, prep cells are not counted", live)
	}
	results := Run(io.Discard, p, Options{})
	if results[0].Skipped {
		t.Fatal("explicitly matched prep should run")
	}
	if !results[1].Skipped {
		t.Fatal("unmatched cell should be skipped")
	}
}

func TestProgressCounts(t *testing.T) {
	p := NewPlan()
	for i := 0; i < 5; i++ {
		p.Add(fmt.Sprintf("c/%d", i), func(io.Writer) (any, error) { return nil, nil })
	}
	p.Filter(regexp.MustCompile(`c/[0-3]`))
	var calls []int
	Run(io.Discard, p, Options{Parallel: 2, Progress: func(done, total, failed int, r CellResult) {
		if total != 4 {
			t.Fatalf("total = %d", total)
		}
		if failed != 0 {
			t.Fatalf("failed = %d on an all-green plan", failed)
		}
		calls = append(calls, done)
	}})
	if len(calls) != 4 || calls[len(calls)-1] != 4 {
		t.Fatalf("progress calls = %v", calls)
	}
}

// TestProgressFailedCounts checks the cumulative failure count surfaces both
// returned errors and captured panics.
func TestProgressFailedCounts(t *testing.T) {
	p := NewPlan()
	p.Add("ok/1", func(io.Writer) (any, error) { return nil, nil })
	p.Add("err/1", func(io.Writer) (any, error) { return nil, fmt.Errorf("boom") })
	p.Add("panic/1", func(io.Writer) (any, error) { panic("bang") })
	p.Add("ok/2", func(io.Writer) (any, error) { return nil, nil })
	var last int
	perCell := map[string]bool{}
	Run(io.Discard, p, Options{Parallel: 1, Progress: func(done, total, failed int, r CellResult) {
		last = failed
		perCell[r.Name] = r.Err != nil
	}})
	if last != 2 {
		t.Fatalf("final failed = %d, want 2 (one error + one panic)", last)
	}
	if perCell["ok/1"] || perCell["ok/2"] || !perCell["err/1"] || !perCell["panic/1"] {
		t.Fatalf("per-cell error flags = %v", perCell)
	}
}

func TestGridHelpers(t *testing.T) {
	p := NewPlan()
	Grid2(p, []string{"a", "b"}, []int{1, 2},
		func(s string, i int) string { return Key("g", s, fmt.Sprint(i)) },
		func(s string, i int, w io.Writer) (any, error) { return fmt.Sprintf("%s%d", s, i), nil })
	Grid3(p, []int{1}, []string{"x", "y"}, []bool{false, true},
		func(a int, b string, c bool) string { return Key("h", fmt.Sprint(a), b, fmt.Sprint(c)) },
		func(a int, b string, c bool, w io.Writer) (any, error) { return nil, nil })
	want := []string{"g/a/1", "g/a/2", "g/b/1", "g/b/2",
		"h/1/x/false", "h/1/x/true", "h/1/y/false", "h/1/y/true"}
	names := p.Names()
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	results := Run(io.Discard, p, Options{Parallel: 3})
	if results[0].Value != "a1" || results[3].Value != "b2" {
		t.Fatalf("grid results = %+v", results[:4])
	}
}

func TestErrorsDoNotStopOtherCells(t *testing.T) {
	p := NewPlan()
	p.Add("bad", func(io.Writer) (any, error) { return nil, fmt.Errorf("no") })
	p.Add("good", func(io.Writer) (any, error) { return 1, nil })
	results := Run(io.Discard, p, Options{Parallel: 1})
	if results[0].Err == nil || results[1].Value != 1 {
		t.Fatalf("results = %+v", results)
	}
}
