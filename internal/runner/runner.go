// Package runner executes experiment plans. A Cell is one named,
// self-contained measurement: it builds whatever simulation state it needs,
// runs it, and returns a typed result, writing any report rows to its
// private writer. A Plan is an ordered list of cells, optionally split into
// stages by barriers, executed by a bounded worker pool.
//
// Determinism contract: every cell runs its own single-goroutine sim.Engine
// and shares no mutable state with other cells of the same stage (state set
// by earlier stages is frozen by the barrier), so its result and output are
// a pure function of the plan, not of scheduling. The runner buffers each
// cell's output and releases it in plan order, which makes the combined
// byte stream identical at any pool width.
package runner

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Cell is one schedulable unit of a plan.
type Cell struct {
	Name string
	// Prep marks an infrastructure cell (profiling, cloning, capacity
	// probing) whose captured results later cells in the plan read. Filter
	// keeps a prep cell alive as long as any cell under the same name
	// prefix survives.
	Prep bool
	Run  func(w io.Writer) (any, error)

	stage int
	skip  bool
}

// Plan is an ordered list of cells with optional barriers between stages.
type Plan struct {
	cells []Cell
	stage int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add appends a measurement cell to the current stage.
func (p *Plan) Add(name string, fn func(w io.Writer) (any, error)) {
	p.cells = append(p.cells, Cell{Name: name, Run: fn, stage: p.stage})
}

// AddPrep appends a prep cell to the current stage; see Cell.Prep.
func (p *Plan) AddPrep(name string, fn func(w io.Writer) (any, error)) {
	p.cells = append(p.cells, Cell{Name: name, Prep: true, Run: fn, stage: p.stage})
}

// Barrier closes the current stage: cells added afterwards start only once
// every earlier cell has finished. The barrier is also the synchronization
// point that lets later cells read variables written by earlier ones.
func (p *Plan) Barrier() { p.stage++ }

// Len reports the number of cells in the plan, skipped or not.
func (p *Plan) Len() int { return len(p.cells) }

// Names lists the cell names in plan order.
func (p *Plan) Names() []string {
	ns := make([]string, len(p.cells))
	for i := range p.cells {
		ns[i] = p.cells[i].Name
	}
	return ns
}

// Filter marks every cell whose name does not match re as skipped and
// returns how many non-prep cells survive. A prep cell additionally
// survives when any surviving non-prep cell shares its name prefix (the
// part up to the prep cell's last '/'), so "fig5/redis/low/actual" keeps
// "fig5/redis/clone" alive while "fig5/memcached/clone" is skipped.
func (p *Plan) Filter(re *regexp.Regexp) int {
	live := 0
	for i := range p.cells {
		c := &p.cells[i]
		c.skip = !re.MatchString(c.Name)
		if !c.skip && !c.Prep {
			live++
		}
	}
	for i := range p.cells {
		c := &p.cells[i]
		if !c.Prep || !c.skip {
			continue
		}
		prefix := c.Name
		if j := strings.LastIndex(prefix, "/"); j >= 0 {
			prefix = prefix[:j+1]
		}
		for k := range p.cells {
			d := &p.cells[k]
			if !d.Prep && !d.skip && strings.HasPrefix(d.Name, prefix) {
				c.skip = false
				break
			}
		}
	}
	return live
}

// Key joins name parts into a canonical cell name.
func Key(parts ...string) string { return strings.Join(parts, "/") }

// Grid2 adds one cell per (a, b) combination, in row-major plan order.
func Grid2[A, B any](p *Plan, as []A, bs []B,
	name func(A, B) string, fn func(A, B, io.Writer) (any, error)) {
	for _, a := range as {
		for _, b := range bs {
			a, b := a, b
			p.Add(name(a, b), func(w io.Writer) (any, error) { return fn(a, b, w) })
		}
	}
}

// Grid3 adds one cell per (a, b, c) combination, in row-major plan order.
func Grid3[A, B, C any](p *Plan, as []A, bs []B, cs []C,
	name func(A, B, C) string, fn func(A, B, C, io.Writer) (any, error)) {
	for _, a := range as {
		for _, b := range bs {
			for _, c := range cs {
				a, b, c := a, b, c
				p.Add(name(a, b, c), func(w io.Writer) (any, error) { return fn(a, b, c, w) })
			}
		}
	}
}

// CellResult is one cell's outcome, in plan order.
type CellResult struct {
	Name    string
	Value   any
	Err     error
	Skipped bool
	Elapsed time.Duration
}

// Options shapes one plan execution.
type Options struct {
	// Parallel bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallel int
	// Progress, when set, observes each cell completion (called from the
	// coordinating goroutine, in completion order, never concurrently).
	// failed is the cumulative count of cells so far whose Err is set —
	// returned errors and captured panics both count.
	Progress func(done, total, failed int, r CellResult)
}

// EffectiveWidth resolves a requested Parallel option to the worker-pool
// width Run actually uses: <= 0 means GOMAXPROCS. Reports that cite a pool
// width must cite this value, not the request.
func EffectiveWidth(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// Run executes the plan and returns one result per cell in plan order.
// Each cell's output is buffered and written to w in plan order regardless
// of completion order. A panicking cell is captured as its result's Err;
// the other cells keep running.
func Run(w io.Writer, p *Plan, opt Options) []CellResult {
	par := EffectiveWidth(opt.Parallel)
	results := make([]CellResult, len(p.cells))
	outputs := make([][]byte, len(p.cells))
	done := make([]bool, len(p.cells))
	total := 0
	for _, c := range p.cells {
		if !c.skip {
			total++
		}
	}

	next := 0 // next cell whose output may be flushed
	flush := func() {
		for next < len(p.cells) && done[next] {
			if w != nil && len(outputs[next]) > 0 {
				w.Write(outputs[next])
			}
			outputs[next] = nil
			next++
		}
	}

	completed, failed := 0, 0
	for lo := 0; lo < len(p.cells); {
		hi := lo
		for hi < len(p.cells) && p.cells[hi].stage == p.cells[lo].stage {
			hi++
		}
		type doneMsg struct {
			idx int
			res CellResult
			out []byte
		}
		work := make(chan int)
		finished := make(chan doneMsg)
		var wg sync.WaitGroup
		for i := 0; i < par; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range work {
					res, out := runCell(&p.cells[idx])
					finished <- doneMsg{idx: idx, res: res, out: out}
				}
			}()
		}
		go func() {
			for idx := lo; idx < hi; idx++ {
				if p.cells[idx].skip {
					continue
				}
				work <- idx
			}
			close(work)
			wg.Wait()
			close(finished)
		}()
		for idx := lo; idx < hi; idx++ {
			if p.cells[idx].skip {
				results[idx] = CellResult{Name: p.cells[idx].Name, Skipped: true}
				done[idx] = true
			}
		}
		for msg := range finished {
			results[msg.idx] = msg.res
			outputs[msg.idx] = msg.out
			done[msg.idx] = true
			flush()
			completed++
			if msg.res.Err != nil {
				failed++
			}
			if opt.Progress != nil {
				opt.Progress(completed, total, failed, msg.res)
			}
		}
		flush()
		lo = hi
	}
	return results
}

// runCell executes one cell with panic capture.
func runCell(c *Cell) (res CellResult, out []byte) {
	var buf bytes.Buffer
	res.Name = c.Name
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("cell %s panicked: %v\n%s", c.Name, r, debug.Stack())
		}
		out = buf.Bytes()
	}()
	v, err := c.Run(&buf)
	res.Value, res.Err = v, err
	return
}
