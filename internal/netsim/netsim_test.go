package netsim

import (
	"testing"

	"ditto/internal/sim"
)

func TestSendLatency(t *testing.T) {
	eng := sim.NewEngine()
	src := NewNIC(eng, 10) // 10 Gbps
	dst := NewNIC(eng, 10)
	p := Path{Src: src, Dst: dst, RTT: 100 * sim.Microsecond}
	var at sim.Time
	// 125000 bytes = 1Mb = 100us at 10Gbps, plus 50us one-way.
	Send(eng, p, 125000, func() { at = eng.Now() })
	eng.Run()
	want := 150 * sim.Microsecond
	if at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
	if src.TxBytes != 125000 || dst.RxBytes != 125000 {
		t.Fatalf("tx=%d rx=%d", src.TxBytes, dst.RxBytes)
	}
}

func TestNICSerializationQueues(t *testing.T) {
	eng := sim.NewEngine()
	src := NewNIC(eng, 1) // 1 Gbps
	p := Path{Src: src, Dst: NewNIC(eng, 1), RTT: 0}
	var first, second sim.Time
	Send(eng, p, 125000, func() { first = eng.Now() })  // 1ms wire time
	Send(eng, p, 125000, func() { second = eng.Now() }) // queued behind
	if src.QueueDelay() == 0 {
		t.Fatal("NIC should be busy")
	}
	eng.Run()
	if second != 2*first {
		t.Fatalf("queueing not applied: first=%v second=%v", first, second)
	}
}

func TestLoopbackFastPath(t *testing.T) {
	eng := sim.NewEngine()
	p := Path{Loopback: true}
	var at sim.Time
	Send(eng, p, 4096, func() { at = eng.Now() })
	eng.Run()
	if at < LoopbackRTT/2 || at > LoopbackRTT/2+10*sim.Microsecond {
		t.Fatalf("loopback arrival = %v", at)
	}
}

func TestSlowNICSlower(t *testing.T) {
	eng := sim.NewEngine()
	fast := Path{Src: NewNIC(eng, 10), Dst: NewNIC(eng, 10), RTT: 0}
	slow := Path{Src: NewNIC(eng, 1), Dst: NewNIC(eng, 1), RTT: 0}
	var fAt, sAt sim.Time
	Send(eng, fast, 1<<20, func() { fAt = eng.Now() })
	Send(eng, slow, 1<<20, func() { sAt = eng.Now() })
	eng.Run()
	if sAt < 5*fAt {
		t.Fatalf("1Gbe should be ~10x slower: fast=%v slow=%v", fAt, sAt)
	}
}

func TestZeroAndNegativeBytes(t *testing.T) {
	eng := sim.NewEngine()
	p := Path{Src: NewNIC(eng, 10), Dst: NewNIC(eng, 10), RTT: 10 * sim.Microsecond}
	at := Send(eng, p, -1, nil)
	if at != 5*sim.Microsecond {
		t.Fatalf("negative bytes: arrival = %v", at)
	}
	eng.Run()
}
