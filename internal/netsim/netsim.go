// Package netsim models the network fabric: NICs with finite bandwidth and
// FIFO serialization, and links with propagation delay. Saturation shows up
// as queueing delay at the sender NIC — the mechanism behind the paper's
// observation that p99 latency diverges at high load due to queueing in the
// network stack, and behind the iperf-style bandwidth interference of
// Fig. 10.
package netsim

import "ditto/internal/sim"

// NIC is one network interface. Transmissions serialize through it in FIFO
// order at its configured bandwidth; receptions are counted but not rate
// limited separately (the sender-side model dominates in these workloads).
type NIC struct {
	eng           *sim.Engine
	BandwidthGbps float64
	busyUntil     sim.Time

	TxBytes, RxBytes uint64
	TxMsgs, RxMsgs   uint64
}

// NewNIC builds a NIC with the given line rate.
func NewNIC(eng *sim.Engine, gbps float64) *NIC {
	return &NIC{eng: eng, BandwidthGbps: gbps}
}

// serialize reserves transmission time for a message and returns when the
// last byte leaves the wire.
func (n *NIC) serialize(bytes int) sim.Time {
	start := n.eng.Now()
	if n.busyUntil > start {
		start = n.busyUntil
	}
	dur := sim.Time(0)
	if n.BandwidthGbps > 0 {
		dur = sim.FromSeconds(float64(bytes) * 8 / (n.BandwidthGbps * 1e9))
	}
	n.busyUntil = start + dur
	n.TxBytes += uint64(bytes)
	n.TxMsgs++
	return n.busyUntil
}

// QueueDelay reports how long a new message would wait before starting to
// serialize.
func (n *NIC) QueueDelay() sim.Time {
	if n.busyUntil <= n.eng.Now() {
		return 0
	}
	return n.busyUntil - n.eng.Now()
}

// Path describes connectivity from one NIC to another.
type Path struct {
	Src, Dst *NIC
	RTT      sim.Time // round-trip propagation; one-way delay is RTT/2
	Loopback bool     // same-host path: no NIC serialization, memcpy speed
}

// LoopbackBandwidthGbps approximates kernel loopback throughput.
const LoopbackBandwidthGbps = 160

// LoopbackRTT is the round-trip latency of the loopback path (two kernel
// crossings).
const LoopbackRTT = 25 * sim.Microsecond

// Send transports bytes along the path and invokes deliver when the message
// arrives at the destination. It returns the arrival time.
func Send(eng *sim.Engine, p Path, bytes int, deliver func()) sim.Time {
	if bytes < 0 {
		bytes = 0
	}
	var arrive sim.Time
	if p.Loopback {
		dur := sim.FromSeconds(float64(bytes) * 8 / (LoopbackBandwidthGbps * 1e9))
		arrive = eng.Now() + LoopbackRTT/2 + dur
	} else {
		wireDone := p.Src.serialize(bytes)
		arrive = wireDone + p.RTT/2
	}
	if p.Dst != nil {
		p.Dst.RxBytes += uint64(bytes)
		p.Dst.RxMsgs++
	}
	if deliver != nil {
		eng.ScheduleFunc(arrive, deliver)
	}
	return arrive
}
