// Package netsim models the network fabric: NICs with finite bandwidth and
// FIFO serialization, and links with propagation delay. Saturation shows up
// as queueing delay at the sender NIC — the mechanism behind the paper's
// observation that p99 latency diverges at high load due to queueing in the
// network stack, and behind the iperf-style bandwidth interference of
// Fig. 10.
package netsim

import "ditto/internal/sim"

// NIC is one network interface. Transmissions serialize through it in FIFO
// order at its configured bandwidth; receptions are counted but not rate
// limited separately (the sender-side model dominates in these workloads).
type NIC struct {
	eng           *sim.Engine
	BandwidthGbps float64
	busyUntil     sim.Time

	TxBytes, RxBytes uint64
	TxMsgs, RxMsgs   uint64
}

// NewNIC builds a NIC with the given line rate.
func NewNIC(eng *sim.Engine, gbps float64) *NIC {
	return &NIC{eng: eng, BandwidthGbps: gbps}
}

// serialize reserves transmission time for a message and returns when the
// last byte leaves the wire.
func (n *NIC) serialize(bytes int) sim.Time {
	start := n.eng.Now()
	if n.busyUntil > start {
		start = n.busyUntil
	}
	dur := sim.Time(0)
	if n.BandwidthGbps > 0 {
		dur = sim.FromSeconds(float64(bytes) * 8 / (n.BandwidthGbps * 1e9))
	}
	n.busyUntil = start + dur
	n.TxBytes += uint64(bytes)
	n.TxMsgs++
	return n.busyUntil
}

// QueueDelay reports how long a new message would wait before starting to
// serialize.
func (n *NIC) QueueDelay() sim.Time {
	if n.busyUntil <= n.eng.Now() {
		return 0
	}
	return n.busyUntil - n.eng.Now()
}

// Path describes connectivity from one NIC to another.
type Path struct {
	Src, Dst *NIC
	RTT      sim.Time // round-trip propagation; one-way delay is RTT/2
	Loopback bool     // same-host path: no NIC serialization, memcpy speed
	// Fault, when non-nil, is the live fault state of this link (partition,
	// loss, latency injection). The fabric that resolves paths owns the
	// pointer, so a fault plane can flip a link's state mid-run and every
	// in-flight lookup observes it.
	Fault *LinkFault
}

// LinkFault is the mutable fault state of one link. The zero value is a
// healthy link. Loss decisions consume the fault's own xorshift64* stream,
// so a scenario replays bit-identically from its seed regardless of what
// else runs in the same OS process.
type LinkFault struct {
	Down     bool    // partition: every message is blackholed
	LossProb float64 // per-message drop probability
	// ExtraOne is added one-way propagation (latency spike). It must never be
	// negative: under sharded execution the fabric's base one-way delay is
	// the conservative lookahead already granted to every shard, and a
	// negative adjustment would deliver a message inside a window another
	// shard has committed past (sim.World audits this and panics).
	ExtraOne sim.Time

	Dropped uint64 // messages blackholed or lost on this link
	rng     uint64
}

// NewLinkFault builds a healthy link-fault cell with a seeded loss stream.
func NewLinkFault(seed uint64) *LinkFault {
	return &LinkFault{rng: seed | 1}
}

// Clear restores the link to health, keeping the loss stream and counters.
func (f *LinkFault) Clear() {
	f.Down = false
	f.LossProb = 0
	f.ExtraOne = 0
}

// drop decides the fate of one message. Down always drops; otherwise the
// loss stream is consulted only when LossProb is set, so a healthy link
// never advances the RNG and fault-free runs stay byte-identical to runs
// without a fault plane attached.
func (f *LinkFault) drop() bool {
	if f.Down {
		f.Dropped++
		return true
	}
	if f.LossProb <= 0 {
		return false
	}
	f.rng ^= f.rng >> 12
	f.rng ^= f.rng << 25
	f.rng ^= f.rng >> 27
	if float64(f.rng*0x2545F4914F6CDD1D>>11)/float64(1<<53) < f.LossProb {
		f.Dropped++
		return true
	}
	return false
}

// LoopbackBandwidthGbps approximates kernel loopback throughput.
const LoopbackBandwidthGbps = 160

// LoopbackRTT is the round-trip latency of the loopback path (two kernel
// crossings).
const LoopbackRTT = 25 * sim.Microsecond

// Send transports bytes along the path and invokes deliver when the message
// arrives at the destination. It returns the arrival time. A faulted path
// still charges the sender NIC (the packet leaves the host before the
// network loses it), but a dropped message never reaches the destination:
// deliver is not scheduled and the receiver NIC books nothing.
func Send(eng *sim.Engine, p Path, bytes int, deliver func()) sim.Time {
	if bytes < 0 {
		bytes = 0
	}
	var arrive sim.Time
	if p.Loopback {
		dur := sim.FromSeconds(float64(bytes) * 8 / (LoopbackBandwidthGbps * 1e9))
		arrive = eng.Now() + LoopbackRTT/2 + dur
	} else {
		wireDone := p.Src.serialize(bytes)
		arrive = wireDone + p.RTT/2
	}
	if p.Fault != nil {
		arrive += p.Fault.ExtraOne
		if p.Fault.drop() {
			return arrive
		}
	}
	dst := eng
	if p.Dst != nil && p.Dst.eng != nil {
		dst = p.Dst.eng
	}
	if dst == eng {
		if p.Dst != nil {
			p.Dst.RxBytes += uint64(bytes)
			p.Dst.RxMsgs++
		}
		if deliver != nil {
			eng.ScheduleFunc(arrive, deliver)
		}
		return arrive
	}
	// The destination NIC lives on another shard: receiver-side accounting
	// and delivery both execute on the destination machine's timeline, where
	// its state may be touched. The arrival sits at least one one-way link
	// delay out, which is exactly the world's lookahead, so the cross-shard
	// schedule always clears the conservative horizon.
	n, b := p.Dst, bytes
	eng.ScheduleCross(dst, arrive, func() {
		n.RxBytes += uint64(b)
		n.RxMsgs++
		if deliver != nil {
			deliver()
		}
	})
	return arrive
}
