package netsim

import (
	"testing"

	"ditto/internal/sim"
)

func TestLinkFaultPartition(t *testing.T) {
	eng := sim.NewEngine()
	src, dst := NewNIC(eng, 10), NewNIC(eng, 10)
	f := NewLinkFault(1)
	f.Down = true
	p := Path{Src: src, Dst: dst, RTT: 100 * sim.Microsecond, Fault: f}
	delivered := false
	Send(eng, p, 1000, func() { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("partitioned link delivered a message")
	}
	if src.TxBytes != 1000 {
		t.Fatal("sender NIC should still be charged: the packet left the host")
	}
	if dst.RxBytes != 0 || dst.RxMsgs != 0 {
		t.Fatal("receiver NIC booked a blackholed message")
	}
	if f.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", f.Dropped)
	}
}

func TestLinkFaultDelaySpike(t *testing.T) {
	eng := sim.NewEngine()
	src, dst := NewNIC(eng, 10), NewNIC(eng, 10)
	f := NewLinkFault(1)
	f.ExtraOne = 2 * sim.Millisecond
	p := Path{Src: src, Dst: dst, RTT: 100 * sim.Microsecond, Fault: f}
	var at sim.Time
	Send(eng, p, 125000, func() { at = eng.Now() })
	eng.Run()
	want := 150*sim.Microsecond + 2*sim.Millisecond
	if at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

// TestLinkFaultLossDeterminism checks that the loss stream is a pure function
// of the seed: same seed → identical drop pattern, different seed → (almost
// surely) a different one.
func TestLinkFaultLossDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		eng := sim.NewEngine()
		f := NewLinkFault(seed)
		f.LossProb = 0.3
		p := Path{Src: NewNIC(eng, 10), Dst: NewNIC(eng, 10), RTT: 0, Fault: f}
		var drops []bool
		for i := 0; i < 64; i++ {
			hit := false
			Send(eng, p, 100, func() { hit = true })
			eng.Run()
			drops = append(drops, !hit)
		}
		return drops
	}
	a, b, c := pattern(42), pattern(42), pattern(44)
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
		if a[i] != c[i] {
			some = true
		}
	}
	if !some {
		t.Fatal("different seeds produced identical 64-message drop patterns")
	}
}

// TestLinkFaultHealthyNoRNG checks a healthy (or cleared) fault never
// advances its RNG, so attaching fault cells to every link leaves fault-free
// runs byte-identical.
func TestLinkFaultHealthyNoRNG(t *testing.T) {
	eng := sim.NewEngine()
	f := NewLinkFault(7)
	before := f.rng
	p := Path{Src: NewNIC(eng, 10), Dst: NewNIC(eng, 10), RTT: 0, Fault: f}
	for i := 0; i < 10; i++ {
		Send(eng, p, 100, nil)
	}
	eng.Run()
	if f.rng != before {
		t.Fatal("healthy link consumed loss-stream randomness")
	}
	f.LossProb = 0.5
	Send(eng, p, 100, nil)
	if f.rng == before {
		t.Fatal("lossy link should consume the stream")
	}
	f.Clear()
	mid := f.rng
	Send(eng, p, 100, nil)
	eng.Run()
	if f.rng != mid {
		t.Fatal("cleared link should stop consuming the stream")
	}
	if f.Down || f.LossProb != 0 || f.ExtraOne != 0 {
		t.Fatal("Clear should reset all fault knobs")
	}
}
