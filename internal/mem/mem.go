// Package mem models main memory: a fixed access latency plus a bandwidth
// term that converts aggregate demand from co-located workloads into an
// additive latency penalty. The penalty is how the platform propagates
// memory-bandwidth interference (§6.5) into the cache hierarchy without a
// cycle-accurate DRAM controller.
package mem

// DRAM describes one memory subsystem.
type DRAM struct {
	LatencyCycles int     // unloaded access latency in core cycles
	BandwidthGBps float64 // peak sustainable bandwidth
}

// ContentionPenalty converts an aggregate bandwidth demand into extra
// cycles per access, using an M/M/1-shaped inflation u/(1-u) capped at 95%
// utilization. Zero demand costs nothing.
func (d DRAM) ContentionPenalty(demandGBps float64) int {
	if d.BandwidthGBps <= 0 || demandGBps <= 0 {
		return 0
	}
	u := demandGBps / d.BandwidthGBps
	if u > 0.95 {
		u = 0.95
	}
	return int(float64(d.LatencyCycles) * u / (1 - u) * 0.5)
}
