package mem

import "testing"

func TestContentionPenalty(t *testing.T) {
	d := DRAM{LatencyCycles: 200, BandwidthGBps: 100}
	if d.ContentionPenalty(0) != 0 {
		t.Fatal("zero demand must cost nothing")
	}
	low := d.ContentionPenalty(10)
	high := d.ContentionPenalty(80)
	if low >= high {
		t.Fatalf("penalty not increasing: low=%d high=%d", low, high)
	}
	sat := d.ContentionPenalty(1000)
	cap95 := d.ContentionPenalty(95)
	if sat != cap95 {
		t.Fatalf("penalty should cap at 95%% utilization: %d vs %d", sat, cap95)
	}
	if (DRAM{}).ContentionPenalty(50) != 0 {
		t.Fatal("zero-bandwidth DRAM must not divide by zero")
	}
}
