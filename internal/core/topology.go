package core

import (
	"sort"

	"ditto/internal/app"
	"ditto/internal/dtrace"
)

// TierPlan is the learned shape of one microservice tier: per-request-kind
// downstream calls with probabilities and message sizes, reconstructed from
// distributed traces (§4.2). Together with the tier's AppProfile it fully
// specifies a synthetic tier.
type TierPlan struct {
	Service   string
	Calls     map[int][]app.Call
	RespBytes int
	Root      bool
}

// kindOfOp maps span operation names back to request kinds. The fs-* names
// are the DittoFS operations (see app/dittofs); both families number their
// kinds from zero, and a deployment traces only one family at a time.
func kindOfOp(op string) int {
	switch op {
	case "compose-post":
		return app.KindComposePost
	case "read-home-timeline":
		return app.KindReadHomeTimeline
	case "read-user-timeline":
		return app.KindReadUserTimeline
	case "fs-getattr":
		return 0
	case "fs-lookup":
		return 1
	case "fs-read":
		return 2
	case "fs-write":
		return 3
	}
	return 0
}

// LearnTopology reconstructs per-service, per-operation call plans from
// collected spans. Edge probability is child invocations per parent
// invocation; message sizes come from span tags.
func LearnTopology(spans []dtrace.Span) map[string]*TierPlan {
	plans := map[string]*TierPlan{}
	get := func(svc string) *TierPlan {
		p := plans[svc]
		if p == nil {
			p = &TierPlan{Service: svc, Calls: map[int][]app.Call{}}
			plans[svc] = p
		}
		return p
	}
	byID := map[dtrace.SpanID]dtrace.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}

	type edgeKey struct {
		parent, child string
		kind          int
	}
	type edgeAgg struct {
		calls     int
		reqBytes  int
		respBytes int
	}
	parents := map[[2]any]int{} // (service, kind) -> invocations
	edges := map[edgeKey]*edgeAgg{}
	respBytes := map[string][2]int{} // service -> (sum, count)

	for _, s := range spans {
		kind := kindOfOp(s.Operation)
		parents[[2]any{s.Service, kind}]++
		rb := respBytes[s.Service]
		rb[0] += s.RespBytes
		rb[1]++
		respBytes[s.Service] = rb
		if s.Parent == 0 {
			get(s.Service).Root = true
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			get(s.Service).Root = true
			continue
		}
		k := edgeKey{parent: p.Service, child: s.Service, kind: kind}
		e := edges[k]
		if e == nil {
			e = &edgeAgg{}
			edges[k] = e
		}
		e.calls++
		e.reqBytes += s.ReqBytes
		e.respBytes += s.RespBytes
	}

	var keys []edgeKey
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.parent != b.parent {
			return a.parent < b.parent
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.child < b.child
	})
	for _, k := range keys {
		e := edges[k]
		pInv := parents[[2]any{k.parent, k.kind}]
		if pInv == 0 {
			continue
		}
		// Probabilities above 1 are real: a parent that fans out to the same
		// child more than once per invocation (a multi-block read hitting a
		// blob store) is replayed as int(prob) calls plus a Bernoulli on the
		// fraction — see app.Tier's call loop.
		prob := float64(e.calls) / float64(pInv)
		plan := get(k.parent)
		plan.Calls[k.kind] = append(plan.Calls[k.kind], app.Call{
			Target:    k.child,
			Prob:      prob,
			ReqBytes:  e.reqBytes / e.calls,
			RespBytes: e.respBytes / e.calls,
		})
	}
	// ditto:determinism-ok per-key writes only; no cross-iteration state
	for svc, rb := range respBytes {
		if rb[1] > 0 {
			get(svc).RespBytes = rb[0] / rb[1]
		}
	}
	return plans
}
