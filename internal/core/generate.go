// Package core implements Ditto's generation stage: it turns an AppProfile
// produced by the profilers into a synthetic application specification —
// skeleton, instruction blocks, branch bitmasks, hard-coded memory layout,
// register assignment from dependency distances, and a syscall replay plan
// (§4.3–§4.5 of the paper) — plus the feedback fine-tuner that calibrates
// the generated code against the original's measured counters.
package core

import (
	"sort"

	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/profile"
	"ditto/internal/stats"
)

// SlotAux carries per-static-instruction generation metadata the runtime
// needs (branch masks, memory slot classification).
type SlotAux struct {
	IsBranch bool
	M, N     int // bitmask branch parameters
	IsMem    bool
	Region   int  // data working-set region index
	Regular  bool // sequential sweep vs scrambled offset
	IsRep    bool
}

// Block is one generated instruction block (the paper's BLOCK_I_J): static
// code sized to one instruction working set, looped LoopsPerRequest times
// per request, with memory slots statically partitioned over the data
// working-set regions.
type Block struct {
	InstWS          int     // static code bytes (2^j)
	LoopsPerRequest float64 // executions of the whole block per request
	Instrs          []isa.Instr
	Aux             []SlotAux
}

// Region is one data working set in the synthetic data array, occupying
// [Start, Start+Span) per the paper's Fig. 4 layout.
type Region struct {
	WSBytes int
	Start   uint64
	Span    uint64
}

// SyscallPlan replays one profiled syscall type at its per-request rate.
type SyscallPlan struct {
	Op             kernel.SyscallOp
	PerRequest     float64
	Bytes          int
	FileSize       int64
	UniformOffsets bool
}

// BodySpec is the synthesized request body.
type BodySpec struct {
	Blocks     []Block
	Regions    []Region
	ArrayBytes uint64 // allocated data array size
}

// SynthSpec is a complete generated application: what dittogen emits and
// what the synth runtime executes. It contains no information about the
// original beyond the profile's statistics — the abstraction property of
// §4.1.
type SynthSpec struct {
	Name      string
	Skeleton  profile.SkeletonProfile
	ReqBytes  int
	RespBytes int
	Syscalls  []SyscallPlan
	Body      BodySpec

	// Tuning knobs (§4.5), applied at generation time. Zero value = 1.0
	// scales via the Adjust default; stored for reproducibility.
	Applied Adjust
}

// Adjust is the fine-tuner's knob vector.
type Adjust struct {
	IWSScale   float64 // scales instruction working-set sizes
	DWSScale   float64 // scales data working-set sizes
	PtrScale   float64 // scales pointer-chase fraction (MLP)
	MNShift    int     // shifts branch M (bias) bins: +1 = more biased
	InstrScale float64 // scales the per-request instruction budget
}

// DefaultAdjust returns the neutral knob vector.
func DefaultAdjust() Adjust {
	return Adjust{IWSScale: 1, DWSScale: 1, PtrScale: 1, InstrScale: 1}
}

// PostGenerate, when non-nil, is invoked with every spec produced by
// Generate and GenerateAdjusted together with the profile it was generated
// from — a post-condition hook for the verification layer (internal/verify
// installs it so generation bugs surface at the point of generation instead
// of as mysteriously-wrong simulated metrics). The default is nil: no
// checking, no overhead.
var PostGenerate func(spec *SynthSpec, prof *profile.AppProfile)

// Generate builds a synthetic spec from a profile with neutral knobs.
func Generate(prof *profile.AppProfile, seed int64) *SynthSpec {
	return GenerateAdjusted(prof, DefaultAdjust(), seed)
}

// GenerateAdjusted builds a synthetic spec with the given knob vector.
func GenerateAdjusted(prof *profile.AppProfile, adj Adjust, seed int64) *SynthSpec {
	if adj.IWSScale <= 0 {
		adj = DefaultAdjust()
	}
	rng := stats.NewRand(seed ^ 0x0D1770)
	spec := &SynthSpec{
		Name:      prof.Name + "-synth",
		Skeleton:  prof.Skeleton,
		ReqBytes:  int(prof.ReqBytesMean),
		RespBytes: int(prof.RespBytesMean),
		Applied:   adj,
	}
	spec.Syscalls = planSyscalls(prof)
	spec.Body = generateBody(&prof.Body, adj, rng)
	if PostGenerate != nil {
		PostGenerate(spec, prof)
	}
	return spec
}

// planSyscalls extracts the replayable (non-network, non-scheduler)
// syscalls: the skeleton performs socket and thread operations itself.
func planSyscalls(prof *profile.AppProfile) []SyscallPlan {
	replayable := map[kernel.SyscallOp]bool{
		kernel.SysOpen: true, kernel.SysClose: true, kernel.SysPread: true,
		kernel.SysWrite: true, kernel.SysFsync: true, kernel.SysMmap: true,
		kernel.SysNanosleep: false,
	}
	var out []SyscallPlan
	for _, st := range prof.Syscalls {
		if !replayable[st.Op] {
			continue
		}
		out = append(out, SyscallPlan{
			Op: st.Op, PerRequest: st.PerRequest, Bytes: int(st.MeanBytes),
			FileSize: st.FileSize, UniformOffsets: st.UniformOffsets,
		})
	}
	// Keep a canonical open → read/write → fsync → close order, so the
	// replayed commit path syncs what it just wrote.
	order := map[kernel.SyscallOp]int{kernel.SysOpen: 0, kernel.SysMmap: 1,
		kernel.SysPread: 2, kernel.SysWrite: 3, kernel.SysFsync: 4,
		kernel.SysClose: 5}
	sort.SliceStable(out, func(i, j int) bool { return order[out[i].Op] < order[out[j].Op] })
	return out
}

// generateBody synthesizes the instruction blocks.
func generateBody(b *profile.BodyProfile, adj Adjust, rng *stats.Rand) BodySpec {
	var spec BodySpec

	// Data regions per Fig. 4: region for WS 2^i spans [2^(i-1), 2^i).
	dws := ScaleWSBins(b.DWS, adj.DWSScale)
	var totalAcc float64
	var maxWS uint64
	for _, bin := range dws {
		totalAcc += bin.Count
		if uint64(bin.Bytes) > maxWS {
			maxWS = uint64(bin.Bytes)
		}
	}
	regionWeights := make([]float64, len(dws))
	for i, bin := range dws {
		start := uint64(bin.Bytes) / 2
		span := uint64(bin.Bytes) - start
		if bin.Bytes <= 64 {
			start, span = 0, 64
		}
		spec.Regions = append(spec.Regions, Region{WSBytes: bin.Bytes, Start: start, Span: span})
		if totalAcc > 0 {
			regionWeights[i] = bin.Count / totalAcc
		}
	}
	if maxWS < 4096 {
		maxWS = 4096
	}
	spec.ArrayBytes = maxWS
	regionPick := stats.NewCategorical(regionWeights)

	// Instruction budget and block execution counts per Eq. 2.
	iws := ScaleWSBins(b.IWS, adj.IWSScale)
	budget := b.InstrsPerRequest * adj.InstrScale
	if budget <= 0 {
		return spec // empty body (skeleton-only stage)
	}
	var iwsTotal float64
	for _, bin := range iws {
		iwsTotal += bin.Count
	}
	if iwsTotal <= 0 {
		iws = []profile.WSBin{{Bytes: 4096, Count: budget}}
		iwsTotal = budget
	}

	// Slot-composition distributions.
	memShare := b.MemShare
	branchShare := b.BranchShare
	ptrFrac := clamp01(b.PointerFrac * adj.PtrScale)
	storeFrac := clamp01(b.StoreFrac)
	repFrac := clamp01(b.RepFrac)
	mixPick, mixOps := mixSampler(b.Mix)
	brPick, brBins := branchSampler(b.Branches, adj.MNShift)

	ra := newRegAssigner(b)

	pcBase := uint64(0x5000_0000)
	for _, bin := range iws {
		slots := bin.Bytes / isa.InstrBytes
		if slots < 16 {
			slots = 16
		}
		// Cap giant blocks: static code above 256KB is represented by a
		// smaller block looped proportionally more often (bounded generation
		// size; the fine-tuner compensates for the footprint difference).
		// LoopsPerRequest divides the bin's budget share by the post-cap
		// slot count, so loops × slots stays at the bin's execution share
		// regardless of capping.
		for slots > 64<<10 {
			slots /= 2
		}
		blk := Block{
			InstWS:          bin.Bytes,
			LoopsPerRequest: bin.Count / iwsTotal * budget / float64(slots),
		}
		blk.Instrs = make([]isa.Instr, slots)
		blk.Aux = make([]SlotAux, slots)
		for s := 0; s < slots; s++ {
			pc := pcBase + uint64(s)*isa.InstrBytes
			in, aux := synthSlot(rng, pc, memShare, branchShare, ptrFrac,
				storeFrac, repFrac, b.SharedFrac, b.RegularFrac, b.RepBytesMean,
				mixPick, mixOps, brPick, brBins, regionPick, ra)
			blk.Instrs[s] = in
			blk.Aux[s] = aux
		}
		spec.Blocks = append(spec.Blocks, blk)
		pcBase += uint64(bin.Bytes) + 1<<20
	}
	return spec
}

// synthSlot generates one static instruction.
func synthSlot(rng *stats.Rand, pc uint64, memShare, branchShare, ptrFrac,
	storeFrac, repFrac, sharedFrac, regularFrac, repBytes float64,
	mixPick *stats.Categorical, mixOps []isa.Op,
	brPick *stats.Categorical, brBins []profile.BranchBin,
	regionPick *stats.Categorical, ra *regAssigner) (isa.Instr, SlotAux) {

	in := isa.Instr{PC: pc, BranchID: -1,
		Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	var aux SlotAux

	r := rng.Float64()
	switch {
	case r < branchShare:
		bin := brBins[brPick.Sample(rng)]
		in.Op = isa.JCC
		in.BranchID = int32(pc >> 2)
		aux = SlotAux{IsBranch: true, M: bin.M, N: bin.N}
		return in, aux
	case r < branchShare+memShare:
		aux.IsMem = true
		aux.Region = regionPick.Sample(rng)
		aux.Regular = rng.Float64() < regularFrac
		switch sub := rng.Float64(); {
		case sub < repFrac:
			in.Op = isa.REPMOVSB
			n := int32(repBytes)
			if n < 64 {
				n = 64
			}
			in.RepCount = n
			aux.IsRep = true
			aux.Regular = true
		case sub < repFrac+storeFrac:
			in.Op = isa.MOVstore
		case rng.Float64() < ptrFrac:
			in.Op = isa.MOVptr
			in.Dst, in.Src1 = isa.R11, isa.R11
		default:
			in.Op = isa.MOVload
			in.Src1 = isa.R10
			in.Dst = ra.dst(rng)
		}
		in.Shared = rng.Float64() < sharedFrac
		return in, aux
	default:
		// The mix bucket covers non-memory, non-branch work; the sampler
		// was built over computational iforms only.
		in.Op = mixOps[mixPick.Sample(rng)]
		ra.assign(&in, rng)
		return in, aux
	}
}

// regAssigner implements §4.4.6: sample a (RAW, WAW) distance tuple from
// the profiled distributions and pick the available register whose
// last-write distance is closest.
type regAssigner struct {
	rawPick *stats.Categorical
	wawPick *stats.Categorical
	idx     int
	lastW   [isa.NumRegs]int
}

func newRegAssigner(b *profile.BodyProfile) *regAssigner {
	return &regAssigner{
		rawPick: stats.NewCategorical(b.RAW.Bins[:]),
		wawPick: stats.NewCategorical(b.WAW.Bins[:]),
	}
}

// gprs available for dependency cloning: r0-r7 (r8-r11 reserved per Fig. 3,
// r12-r15 kept for the runtime).
var synthGPRs = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7}

// closestReg picks the register whose last write is nearest distance d ago.
func (ra *regAssigner) closestReg(d int) isa.Reg {
	best := synthGPRs[0]
	bestErr := 1 << 30
	for _, r := range synthGPRs {
		e := ra.idx - ra.lastW[r] - d
		if e < 0 {
			e = -e
		}
		if e < bestErr {
			bestErr = e
			best = r
		}
	}
	return best
}

// dst picks a destination register by sampled WAW distance and records the
// write.
func (ra *regAssigner) dst(rng *stats.Rand) isa.Reg {
	ra.idx++
	d := profile.DepBinDistance(ra.wawPick.Sample(rng))
	r := ra.closestReg(d)
	ra.lastW[r] = ra.idx
	return r
}

// assign fills source and destination registers for an ALU-style op.
func (ra *regAssigner) assign(in *isa.Instr, rng *stats.Rand) {
	ra.idx++
	dRaw := profile.DepBinDistance(ra.rawPick.Sample(rng))
	src := ra.closestReg(dRaw)
	in.Src1 = src
	in.Src2 = synthGPRs[rng.Intn(len(synthGPRs))]
	dWaw := profile.DepBinDistance(ra.wawPick.Sample(rng))
	dst := ra.closestReg(dWaw)
	in.Dst = dst
	ra.lastW[dst] = ra.idx
	if isa.Table[in.Op].Operands == isa.OpXMM {
		in.Dst = isa.X0 + isa.Reg(in.Dst%12)
		in.Src1 = isa.X0 + isa.Reg(in.Src1%12)
		in.Src2 = isa.X0 + isa.Reg(in.Src2%12)
	}
}

// CompMixEntries filters a profiled mix down to the computational iforms
// the slot sampler draws from: memory, branch and REP shares are realized
// by the dedicated slot kinds, so their clusters are excluded and the
// remaining shares renormalize at sampling time. An empty result falls back
// to a pure ADD mix. The verifier uses the same filter to reconstruct the
// expected mix of a generated body.
func CompMixEntries(mix []profile.MixEntry) []profile.MixEntry {
	var out []profile.MixEntry
	for _, m := range mix {
		if int(m.Op) >= isa.NumOps {
			continue
		}
		f := &isa.Table[m.Op]
		if f.Branch || f.Load || f.Store || f.Rep {
			continue
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return []profile.MixEntry{{Op: isa.ADDrr, Share: 1}}
	}
	return out
}

// mixSampler converts the computational mix to a categorical sampler.
func mixSampler(mix []profile.MixEntry) (*stats.Categorical, []isa.Op) {
	comp := CompMixEntries(mix)
	w := make([]float64, len(comp))
	ops := make([]isa.Op, len(comp))
	for i, m := range comp {
		w[i] = m.Share
		ops[i] = m.Op
	}
	return stats.NewCategorical(w), ops
}

// ShiftBranchBins applies the MN-shift knob to profiled branch bins,
// clamping the bias exponent to [1, 10]; an empty profile falls back to a
// single moderately biased bin. This is the exact bin set the generator
// samples branch slots from, shared with the verifier's conformance check.
func ShiftBranchBins(bins []profile.BranchBin, shift int) []profile.BranchBin {
	if len(bins) == 0 {
		bins = []profile.BranchBin{{M: 2, N: 3, Weight: 1}}
	}
	out := make([]profile.BranchBin, len(bins))
	for i, b := range bins {
		m := b.M + shift
		if m < 1 {
			m = 1
		}
		if m > 10 {
			m = 10
		}
		out[i] = profile.BranchBin{M: m, N: b.N, Weight: b.Weight}
	}
	return out
}

// branchSampler converts branch bins, applying the MN shift knob.
func branchSampler(bins []profile.BranchBin, shift int) (*stats.Categorical, []profile.BranchBin) {
	out := ShiftBranchBins(bins, shift)
	w := make([]float64, len(out))
	for i, b := range out {
		w[i] = b.Weight
	}
	return stats.NewCategorical(w), out
}

// ScaleWSBins scales working-set byte sizes, snapping to powers of two and
// merging collisions. Identity scale returns the input unchanged. Shared
// with the verifier, which reconstructs the expected working-set histogram
// of a spec generated under a non-neutral knob vector.
func ScaleWSBins(bins []profile.WSBin, scale float64) []profile.WSBin {
	if scale == 1 || len(bins) == 0 {
		return bins
	}
	merged := map[int]float64{}
	for _, b := range bins {
		sz := nextPow2(int(float64(b.Bytes) * scale))
		if sz < 64 {
			sz = 64
		}
		merged[sz] += b.Count
	}
	sizes := make([]int, 0, len(merged))
	for sz := range merged {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	out := make([]profile.WSBin, 0, len(sizes))
	for _, sz := range sizes {
		out = append(out, profile.WSBin{Bytes: sz, Count: merged[sz]})
	}
	return out
}

func nextPow2(v int) int {
	p := 64
	for p < v {
		p *= 2
	}
	return p
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
