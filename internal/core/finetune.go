package core

import (
	"math"

	"ditto/internal/profile"
)

// Runner executes a candidate synthetic spec under a reference load on the
// profiling platform and returns its measured counters — the role played by
// Perf/VTune in the paper's fine-tuning loop.
type Runner func(spec *SynthSpec) profile.TargetMetrics

// TuneStep records one fine-tuning iteration for inspection.
type TuneStep struct {
	Iter     int
	Adjust   Adjust
	Measured profile.TargetMetrics
	MaxErr   float64
}

// FineTune runs the feedback calibration loop of §4.5: generate, measure,
// compare against the original's counters, and adjust the grouped knobs
// with a linear heuristic, keeping the best candidate. It stops early once
// every calibrated metric is within tol (the paper reports >95% accuracy
// within ten iterations).
func FineTune(prof *profile.AppProfile, seed int64, run Runner, maxIters int, tol float64) (*SynthSpec, []TuneStep) {
	if maxIters < 1 {
		maxIters = 1
	}
	if tol <= 0 {
		tol = 0.05
	}
	target := prof.Target
	adj := DefaultAdjust()
	var best *SynthSpec
	bestErr := math.Inf(1)
	var trace []TuneStep

	for it := 0; it < maxIters; it++ {
		spec := GenerateAdjusted(prof, adj, seed)
		m := run(spec)
		maxErr := MaxRelErr(m, target)
		trace = append(trace, TuneStep{Iter: it, Adjust: adj, Measured: m, MaxErr: maxErr})
		if maxErr < bestErr {
			bestErr = maxErr
			best = spec
		}
		if maxErr <= tol {
			break
		}

		// Grouped linear feedback. Knots are mostly orthogonal (§4.5):
		// data-side working sets drive L1d/L2/LLC, instruction-side working
		// sets drive L1i (and, with branch rates, the misprediction rate),
		// pointer chasing drives MLP and hence IPC.
		adj.DWSScale *= clampF(1+0.6*signedRel(target.L1dMiss, m.L1dMiss)+
			0.3*signedRel(target.L3Miss, m.L3Miss), 0.5, 2)
		adj.IWSScale *= clampF(1+0.7*signedRel(target.L1iMiss, m.L1iMiss), 0.5, 2)
		if rel := signedRel(target.BranchMiss, m.BranchMiss); rel > 0.15 && adj.MNShift > -6 {
			adj.MNShift-- // lower bias ⇒ harder branches ⇒ more misses
		} else if rel < -0.15 && adj.MNShift < 6 {
			adj.MNShift++
		}
		if rel := signedRel(target.IPC, m.IPC); rel < -0.05 {
			adj.PtrScale = clampF(adj.PtrScale*1.3, 0.1, 4) // too fast: serialize more
		} else if rel > 0.05 {
			adj.PtrScale = clampF(adj.PtrScale*0.75, 0.1, 4)
		}
	}
	return best, trace
}

// MaxRelErr reports the largest relative error across the calibrated
// metrics.
func MaxRelErr(m, t profile.TargetMetrics) float64 {
	errs := []float64{
		relErr(m.IPC, t.IPC),
		relErr(m.L1iMiss, t.L1iMiss),
		relErr(m.L1dMiss, t.L1dMiss),
		relErr(m.L2Miss, t.L2Miss),
		relErr(m.BranchMiss, t.BranchMiss),
	}
	worst := 0.0
	for _, e := range errs {
		if e > worst {
			worst = e
		}
	}
	return worst
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(got-want) / math.Abs(want)
}

// signedRel is (want-got)/want clamped to [-1, 1]: positive means the
// synthetic undershoots the target.
func signedRel(want, got float64) float64 {
	if want <= 0 {
		return 0
	}
	return clampF((want-got)/want, -1, 1)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
