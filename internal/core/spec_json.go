package core

import "encoding/json"

// Encode serializes the spec as indented JSON — the on-disk format dittogen
// emits and dittolint's clone-verification mode consumes.
func (s *SynthSpec) Encode() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// DecodeSynthSpec parses a spec previously written by Encode.
func DecodeSynthSpec(b []byte) (*SynthSpec, error) {
	var s SynthSpec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
