package core

import (
	"ditto/internal/isa"
	"ditto/internal/profile"
)

// Stage selects how much of Ditto's sophistication is enabled, reproducing
// the accuracy-decomposition study of Fig. 9 (A: skeleton only … I: fine
// tuned).
type Stage int

// Decomposition stages, in the paper's order.
const (
	StageSkeleton   Stage = iota // A: thread + network model, empty body
	StageSyscall                 // B: + system calls with profiled arguments
	StageInstrCount              // C: + user instructions (add r,r) matching count
	StageMix                     // D: + profiled instruction mix (worst-case rest)
	StageBranch                  // E: + profiled branch taken/transition rates
	StageIMem                    // F: + instruction memory access pattern
	StageDMem                    // G: + data memory access pattern
	StageDep                     // H: + data dependencies (full generation)
	StageTune                    // I: + fine tuning
	NumStages
)

var stageNames = [...]string{
	"A:Skeleton", "B:Syscall", "C:#insts", "D:Inst.mix", "E:Branch",
	"F:I-mem", "G:D-mem", "H:Datadep.", "I:Tune",
}

// String names the stage as the paper's x-axis labels do.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// GenerateStaged builds the synthetic spec with only the features up to and
// including stage enabled. StageTune is generated like StageDep — tuning is
// the caller's FineTune loop.
func GenerateStaged(prof *profile.AppProfile, stage Stage, seed int64) *SynthSpec {
	p := *prof // shallow copy; body replaced below
	b := prof.Body

	switch {
	case stage <= StageSkeleton:
		b = profile.BodyProfile{}
		p.Syscalls = nil
	case stage == StageSyscall:
		b = profile.BodyProfile{}
	case stage == StageInstrCount:
		// Serial add r,r to match the dynamic instruction count only.
		b = profile.BodyProfile{
			InstrsPerRequest: prof.Body.InstrsPerRequest,
			Mix:              []profile.MixEntry{{Op: isa.ADDrr, Share: 1}},
			IWS:              []profile.WSBin{{Bytes: 1024, Count: prof.Body.InstrsPerRequest}},
			RAW:              strongestDeps(),
			WAW:              strongestDeps(),
		}
	default:
		// Stage D and above start from the full profile and degrade the
		// not-yet-enabled dimensions to the paper's worst-case assumptions.
		if stage < StageBranch {
			b.Branches = []profile.BranchBin{{M: 1, N: 1, Weight: 1}}
		}
		if stage < StageIMem {
			var total float64
			for _, bin := range prof.Body.IWS {
				total += bin.Count
			}
			b.IWS = []profile.WSBin{{Bytes: 1024, Count: total}}
		}
		if stage < StageDMem {
			var total float64
			for _, bin := range prof.Body.DWS {
				total += bin.Count
			}
			b.DWS = []profile.WSBin{{Bytes: 64, Count: total}}
			b.SharedFrac = 0
		}
		if stage < StageDep {
			b.RAW = strongestDeps()
			b.WAW = strongestDeps()
			b.WAR = strongestDeps()
			b.PointerFrac = 0
		}
	}
	p.Body = b
	return Generate(&p, seed)
}

// strongestDeps is the distance-1 histogram (every instruction depends on
// its predecessor).
func strongestDeps() profile.DepHist {
	var h profile.DepHist
	h.Bins[0] = 1
	return h
}
