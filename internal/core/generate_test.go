package core

import (
	"math"
	"testing"

	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/profile"
)

// sampleProfile builds a plausible hand-written profile.
func sampleProfile() *profile.AppProfile {
	p := &profile.AppProfile{
		Name:          "toy",
		Requests:      1000,
		ReqBytesMean:  64,
		RespBytesMean: 1024,
		Skeleton:      profile.SkeletonProfile{NetworkModel: "iomux", Workers: 1},
		Syscalls: []profile.SyscallStat{
			{Op: kernel.SysRecv, PerRequest: 1, MeanBytes: 64},
			{Op: kernel.SysSend, PerRequest: 1, MeanBytes: 1024},
			{Op: kernel.SysPread, PerRequest: 0.5, MeanBytes: 16384,
				File: "file:/d", FileSize: 1 << 30, UniformOffsets: true},
			{Op: kernel.SysOpen, PerRequest: 0.5, MeanBytes: 0, File: "file:/d", FileSize: 1 << 30},
			{Op: kernel.SysClose, PerRequest: 0.5},
			{Op: kernel.SysEpollWait, PerRequest: 1},
		},
	}
	b := &p.Body
	b.InstrsPerRequest = 4000
	b.Mix = []profile.MixEntry{
		{Op: isa.ADDrr, Share: 0.45}, {Op: isa.MOVload, Share: 0.25},
		{Op: isa.MOVstore, Share: 0.1}, {Op: isa.JCC, Share: 0.12},
		{Op: isa.IMULrr, Share: 0.04}, {Op: isa.CRC32rr, Share: 0.04},
	}
	b.BranchShare = 0.12
	b.MemShare = 0.35
	b.Branches = []profile.BranchBin{{M: 1, N: 2, Weight: 0.6}, {M: 3, N: 4, Weight: 0.4}}
	b.StaticBranches = 400
	b.RAW.Bins[1] = 0.5
	b.RAW.Bins[4] = 0.5
	b.WAW.Bins[3] = 1
	b.WAR.Bins[2] = 1
	b.IWS = []profile.WSBin{
		{Bytes: 64, Count: 1000}, {Bytes: 4096, Count: 2000}, {Bytes: 65536, Count: 1000},
	}
	b.DWS = []profile.WSBin{
		{Bytes: 4096, Count: 700}, {Bytes: 1 << 20, Count: 500}, {Bytes: 16 << 20, Count: 200},
	}
	b.RegularFrac = 0.4
	b.PointerFrac = 0.2
	b.SharedFrac = 0.05
	b.StoreFrac = 0.25
	b.RepFrac = 0.02
	b.RepBytesMean = 1024
	p.Target = profile.TargetMetrics{IPC: 1.1, BranchMiss: 0.04,
		L1iMiss: 0.03, L1dMiss: 0.08, L2Miss: 0.3, L3Miss: 0.4, KernelShare: 0.5}
	return p
}

func TestGenerateBlocksConserveBudget(t *testing.T) {
	spec := Generate(sampleProfile(), 1)
	if len(spec.Body.Blocks) != 3 {
		t.Fatalf("blocks = %d, want one per IWS bin", len(spec.Body.Blocks))
	}
	var execs float64
	for _, blk := range spec.Body.Blocks {
		execs += blk.LoopsPerRequest * float64(len(blk.Instrs))
	}
	if math.Abs(execs-4000) > 400 {
		t.Fatalf("per-request executions = %v, want ≈ 4000", execs)
	}
}

func TestGenerateRegionsFollowFig4(t *testing.T) {
	spec := Generate(sampleProfile(), 1)
	if len(spec.Body.Regions) != 3 {
		t.Fatalf("regions = %d", len(spec.Body.Regions))
	}
	for _, r := range spec.Body.Regions {
		if r.WSBytes > 64 {
			if r.Start != uint64(r.WSBytes)/2 || r.Span != uint64(r.WSBytes)-r.Start {
				t.Fatalf("region %d: start=%d span=%d, want [2^(i-1), 2^i)", r.WSBytes, r.Start, r.Span)
			}
		}
	}
	if spec.Body.ArrayBytes != 16<<20 {
		t.Fatalf("array = %d, want largest WS", spec.Body.ArrayBytes)
	}
}

func TestGenerateBlockComposition(t *testing.T) {
	spec := Generate(sampleProfile(), 2)
	var mem, br, total, ptr, loads int
	for _, blk := range spec.Body.Blocks {
		if len(blk.Instrs) != len(blk.Aux) {
			t.Fatal("aux misaligned")
		}
		for s := range blk.Instrs {
			total++
			aux := blk.Aux[s]
			in := blk.Instrs[s]
			if aux.IsBranch {
				br++
				if in.Op != isa.JCC || aux.M < 1 || aux.N < 1 {
					t.Fatalf("bad branch slot: %+v", aux)
				}
			}
			if aux.IsMem {
				mem++
				if aux.Region >= len(spec.Body.Regions) {
					t.Fatalf("region out of range: %d", aux.Region)
				}
			}
			if in.Op == isa.MOVptr {
				ptr++
				if in.Dst != isa.R11 || in.Src1 != isa.R11 {
					t.Fatal("pointer chase must use r11")
				}
			}
			if isa.Table[in.Op].Load {
				loads++
			}
			// Reserved registers must not be written by generated ALU code.
			if in.Dst >= isa.R8 && in.Dst <= isa.R10 {
				t.Fatalf("generated code writes reserved register %v", in.Dst)
			}
		}
	}
	brFrac := float64(br) / float64(total)
	memFrac := float64(mem) / float64(total)
	if math.Abs(brFrac-0.12) > 0.04 {
		t.Fatalf("branch slot fraction = %v", brFrac)
	}
	if math.Abs(memFrac-0.35) > 0.12 {
		t.Fatalf("mem slot fraction = %v", memFrac)
	}
	if ptr == 0 {
		t.Fatal("no pointer-chase slots generated")
	}
}

func TestGenerateSyscallPlan(t *testing.T) {
	spec := Generate(sampleProfile(), 3)
	if len(spec.Syscalls) != 3 {
		t.Fatalf("plan = %+v, want open/pread/close only", spec.Syscalls)
	}
	if spec.Syscalls[0].Op != kernel.SysOpen || spec.Syscalls[1].Op != kernel.SysPread ||
		spec.Syscalls[2].Op != kernel.SysClose {
		t.Fatalf("plan order wrong: %+v", spec.Syscalls)
	}
	if spec.Syscalls[1].FileSize != 1<<30 || !spec.Syscalls[1].UniformOffsets {
		t.Fatal("pread plan lost file geometry")
	}
	if spec.RespBytes != 1024 || spec.ReqBytes != 64 {
		t.Fatalf("sizes: req=%d resp=%d", spec.ReqBytes, spec.RespBytes)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(sampleProfile(), 7)
	b := Generate(sampleProfile(), 7)
	if len(a.Body.Blocks) != len(b.Body.Blocks) {
		t.Fatal("nondeterministic block count")
	}
	for i := range a.Body.Blocks {
		if len(a.Body.Blocks[i].Instrs) != len(b.Body.Blocks[i].Instrs) {
			t.Fatal("nondeterministic block size")
		}
		for s := range a.Body.Blocks[i].Instrs {
			if a.Body.Blocks[i].Instrs[s] != b.Body.Blocks[i].Instrs[s] {
				t.Fatal("nondeterministic instruction")
			}
		}
	}
}

func TestAdjustKnobs(t *testing.T) {
	prof := sampleProfile()
	base := Generate(prof, 1)
	big := GenerateAdjusted(prof, Adjust{IWSScale: 1, DWSScale: 4, PtrScale: 1, InstrScale: 1}, 1)
	if big.Body.ArrayBytes <= base.Body.ArrayBytes {
		t.Fatal("DWS scale should grow the data array")
	}
	shifted := GenerateAdjusted(prof, Adjust{IWSScale: 1, DWSScale: 1, PtrScale: 1, InstrScale: 1, MNShift: 5}, 1)
	for _, blk := range shifted.Body.Blocks {
		for _, aux := range blk.Aux {
			if aux.IsBranch && aux.M < 5 {
				t.Fatalf("MN shift not applied: M=%d", aux.M)
			}
		}
	}
	scaled := GenerateAdjusted(prof, Adjust{IWSScale: 1, DWSScale: 1, PtrScale: 1, InstrScale: 2}, 1)
	var execsBase, execsScaled float64
	for _, blk := range base.Body.Blocks {
		execsBase += blk.LoopsPerRequest * float64(len(blk.Instrs))
	}
	for _, blk := range scaled.Body.Blocks {
		execsScaled += blk.LoopsPerRequest * float64(len(blk.Instrs))
	}
	if execsScaled < execsBase*1.8 {
		t.Fatalf("instr scale not applied: %v vs %v", execsScaled, execsBase)
	}
}

func TestScaleBins(t *testing.T) {
	bins := []profile.WSBin{{Bytes: 4096, Count: 10}, {Bytes: 8192, Count: 5}}
	same := ScaleWSBins(bins, 1)
	if &same[0] != &bins[0] {
		t.Fatal("identity scale should return input")
	}
	up := ScaleWSBins(bins, 2)
	if up[0].Bytes != 8192 || up[1].Bytes != 16384 {
		t.Fatalf("up = %+v", up)
	}
	// Collisions merge: 4096*0.5=2048, 8192*0.5=4096.
	down := ScaleWSBins([]profile.WSBin{{Bytes: 4096, Count: 10}, {Bytes: 4096 * 2, Count: 5}}, 0.5)
	if len(down) != 2 || down[0].Bytes != 2048 {
		t.Fatalf("down = %+v", down)
	}
	tiny := ScaleWSBins(bins, 0.001)
	if tiny[0].Bytes != 64 {
		t.Fatal("scale floor at one line")
	}
}

func TestMaxRelErrAndHelpers(t *testing.T) {
	m := profile.TargetMetrics{IPC: 1, L1iMiss: 0.02, L1dMiss: 0.05, L2Miss: 0.2, BranchMiss: 0.03}
	if e := MaxRelErr(m, m); e != 0 {
		t.Fatalf("self error = %v", e)
	}
	worse := m
	worse.IPC = 0.5
	if e := MaxRelErr(worse, m); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("err = %v", e)
	}
	if relErr(0, 0) != 0 || relErr(1, 0) != 1 {
		t.Fatal("relErr zero handling")
	}
	if signedRel(0, 5) != 0 {
		t.Fatal("signedRel zero target")
	}
	if clampF(5, 0, 1) != 1 || clampF(-1, 0, 1) != 0 {
		t.Fatal("clampF")
	}
}

func TestFineTuneConvergesOnSyntheticRunner(t *testing.T) {
	prof := sampleProfile()
	// A fake runner whose measurements respond monotonically to the knobs,
	// isolating the feedback logic from the simulator.
	run := func(spec *SynthSpec) profile.TargetMetrics {
		a := spec.Applied
		return profile.TargetMetrics{
			IPC:        1.4 / a.PtrScale,
			L1iMiss:    0.015 * a.IWSScale,
			L1dMiss:    0.04 * a.DWSScale,
			L2Miss:     0.15 * a.DWSScale,
			L3Miss:     0.2 * a.DWSScale,
			BranchMiss: 0.05 * math.Pow(0.8, float64(a.MNShift)),
		}
	}
	spec, trace := FineTune(prof, 1, run, 10, 0.08)
	if spec == nil || len(trace) == 0 {
		t.Fatal("no result")
	}
	final := trace[len(trace)-1]
	if final.MaxErr > 0.25 {
		t.Fatalf("did not converge: %+v", trace)
	}
	if len(trace) > 1 && trace[0].MaxErr <= final.MaxErr {
		t.Fatalf("tuning did not improve: first=%v last=%v", trace[0].MaxErr, final.MaxErr)
	}
}
