package core

import (
	"math"
	"testing"

	"ditto/internal/app"
	"ditto/internal/dtrace"
)

// buildSpans fabricates traces: frontend → svc-b always; svc-b → svc-c with
// probability 0.4 on kind 1 only.
func buildSpans(n int) []dtrace.Span {
	c := dtrace.NewCollector(1)
	var spans []dtrace.Span
	rec := func(s dtrace.Span) {
		c.Record(s)
		spans = append(spans, s)
	}
	for i := 0; i < n; i++ {
		kind := i % 2
		op := "compose-post"
		if kind == 1 {
			op = "read-home-timeline"
		}
		tr := c.StartTrace()
		root := dtrace.Span{Trace: tr, ID: c.NextSpanID(), Service: "frontend",
			Operation: op, ReqBytes: 128, RespBytes: 1024}
		rec(root)
		child := dtrace.Span{Trace: tr, ID: c.NextSpanID(), Parent: root.ID,
			Service: "svc-b", Operation: op, ReqBytes: 256, RespBytes: 512}
		rec(child)
		if kind == 1 && i%5 < 2 { // 40% of kind-1 requests
			rec(dtrace.Span{Trace: tr, ID: c.NextSpanID(), Parent: child.ID,
				Service: "svc-c", Operation: op, ReqBytes: 64, RespBytes: 256})
		}
	}
	return spans
}

func TestLearnTopology(t *testing.T) {
	plans := LearnTopology(buildSpans(100))
	fe := plans["frontend"]
	if fe == nil || !fe.Root {
		t.Fatalf("frontend plan = %+v", fe)
	}
	if fe.RespBytes != 1024 {
		t.Fatalf("frontend resp = %d", fe.RespBytes)
	}
	for _, kind := range []int{app.KindComposePost, app.KindReadHomeTimeline} {
		calls := fe.Calls[kind]
		if len(calls) != 1 || calls[0].Target != "svc-b" || calls[0].Prob != 1 {
			t.Fatalf("frontend kind %d calls = %+v", kind, calls)
		}
		if calls[0].ReqBytes != 256 {
			t.Fatalf("edge req bytes = %d", calls[0].ReqBytes)
		}
	}
	b := plans["svc-b"]
	if len(b.Calls[app.KindComposePost]) != 0 {
		t.Fatalf("svc-b should have no compose-post edges: %+v", b.Calls)
	}
	c1 := b.Calls[app.KindReadHomeTimeline]
	if len(c1) != 1 || c1[0].Target != "svc-c" {
		t.Fatalf("svc-b kind1 calls = %+v", c1)
	}
	if math.Abs(c1[0].Prob-0.4) > 0.05 {
		t.Fatalf("edge prob = %v, want 0.4", c1[0].Prob)
	}
	if plans["svc-c"] == nil || plans["svc-c"].Root {
		t.Fatal("svc-c should exist as a non-root")
	}
}

func TestLearnTopologyEmpty(t *testing.T) {
	plans := LearnTopology(nil)
	if len(plans) != 0 {
		t.Fatalf("plans = %v", plans)
	}
}

func TestGenerateStagedShapes(t *testing.T) {
	prof := sampleProfile()
	a := GenerateStaged(prof, StageSkeleton, 1)
	if len(a.Body.Blocks) != 0 || len(a.Syscalls) != 0 {
		t.Fatalf("stage A should be skeleton-only: %d blocks %d syscalls",
			len(a.Body.Blocks), len(a.Syscalls))
	}
	if a.Skeleton.NetworkModel != "iomux" {
		t.Fatal("stage A must keep the skeleton")
	}
	b := GenerateStaged(prof, StageSyscall, 1)
	if len(b.Syscalls) == 0 || len(b.Body.Blocks) != 0 {
		t.Fatalf("stage B: %d syscalls %d blocks", len(b.Syscalls), len(b.Body.Blocks))
	}
	c := GenerateStaged(prof, StageInstrCount, 1)
	var execs float64
	for _, blk := range c.Body.Blocks {
		execs += blk.LoopsPerRequest * float64(len(blk.Instrs))
		for s := range blk.Instrs {
			if blk.Aux[s].IsMem || blk.Aux[s].IsBranch {
				t.Fatal("stage C must be pure ALU")
			}
		}
	}
	if math.Abs(execs-prof.Body.InstrsPerRequest) > 0.2*prof.Body.InstrsPerRequest {
		t.Fatalf("stage C execs = %v", execs)
	}
	d := GenerateStaged(prof, StageMix, 1)
	var sawBranch, sawMem bool
	maxRegion := 0
	for _, blk := range d.Body.Blocks {
		for s := range blk.Aux {
			if blk.Aux[s].IsBranch {
				sawBranch = true
				if blk.Aux[s].M != 1 || blk.Aux[s].N != 1 {
					t.Fatalf("stage D branches must be worst-case (1,1): %+v", blk.Aux[s])
				}
			}
			if blk.Aux[s].IsMem {
				sawMem = true
				if blk.Aux[s].Region > maxRegion {
					maxRegion = blk.Aux[s].Region
				}
			}
		}
	}
	if !sawBranch || !sawMem {
		t.Fatal("stage D should have branches and memory")
	}
	if len(d.Body.Regions) != 1 || d.Body.Regions[0].WSBytes != 64 {
		t.Fatalf("stage D data should be single 64B working set: %+v", d.Body.Regions)
	}
	f := GenerateStaged(prof, StageIMem, 1)
	if len(f.Body.Blocks) != len(prof.Body.IWS) {
		t.Fatalf("stage F blocks = %d, want per IWS bin", len(f.Body.Blocks))
	}
	g := GenerateStaged(prof, StageDMem, 1)
	if len(g.Body.Regions) != len(prof.Body.DWS) {
		t.Fatalf("stage G regions = %d", len(g.Body.Regions))
	}
	h := GenerateStaged(prof, StageDep, 1)
	full := Generate(prof, 1)
	if len(h.Body.Blocks) != len(full.Body.Blocks) {
		t.Fatal("stage H should equal full generation")
	}
	if StageTune.String() != "I:Tune" || StageSkeleton.String() != "A:Skeleton" {
		t.Fatal("stage names wrong")
	}
	if Stage(99).String() != "stage?" {
		t.Fatal("unknown stage name")
	}
}
