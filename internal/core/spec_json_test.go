package core

import (
	"math"
	"reflect"
	"testing"

	"ditto/internal/profile"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Generate(sampleProfile(), 9)
	data, err := spec.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeSynthSpec(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatal("spec changed across the JSON round trip")
	}
	if _, err := DecodeSynthSpec([]byte("{broken")); err == nil {
		t.Fatal("want an error for malformed input")
	}
}

// TestGenerateCappedBlockConservesBudget pins the giant-block path: an IWS
// bin past the 256KB static-code cap must still execute its share of the
// instruction budget after its slot count is halved down.
func TestGenerateCappedBlockConservesBudget(t *testing.T) {
	p := sampleProfile()
	p.Body.IWS = []profile.WSBin{
		{Bytes: 4096, Count: 1000}, {Bytes: 1 << 20, Count: 3000},
	}
	spec := Generate(p, 4)
	var execs float64
	for _, blk := range spec.Body.Blocks {
		if got := len(blk.Instrs); got > 64<<10 {
			t.Fatalf("block with %d static slots escaped the cap", got)
		}
		execs += blk.LoopsPerRequest * float64(len(blk.Instrs))
	}
	budget := p.Body.InstrsPerRequest
	if math.Abs(execs-budget) > 0.1*budget {
		t.Fatalf("per-request executions = %.0f, want ≈ %.0f", execs, budget)
	}
}
