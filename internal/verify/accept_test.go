package verify

import (
	"fmt"
	"sort"
	"testing"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/sim"
)

// TestVerifierAcceptsAllAppClones is the acceptance gate of the clone
// verifier: every spec core.Generate produces from the five paper
// workloads (the four single-tier apps plus every Social Network tier)
// must verify clean across three generation seeds. A failure here means
// either the generator drifted from the profile statistics or a verifier
// rule is stricter than the generator's contract.
func TestVerifierAcceptsAllAppClones(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles five simulated applications; skipped in -short")
	}
	seeds := []int64{1, 2, 3}
	win := experiments.Windows{Warmup: 10 * sim.Millisecond, Measure: 40 * sim.Millisecond}
	load := experiments.Load{Conns: 8, Seed: 5}

	profiles := map[string]*profile.AppProfile{}
	apps := []struct {
		name   string
		port   int
		maxDWS int
		build  experiments.AppBuilder
	}{
		{"memcached", 11211, 128 << 20,
			func(m *platform.Machine) app.App { return app.NewMemcached(m, 11211, 21) }},
		{"nginx", 80, 32 << 20,
			func(m *platform.Machine) app.App { return app.NewNginx(m, 80, 22) }},
		{"mongodb", 27017, 256 << 20,
			func(m *platform.Machine) app.App { return app.NewMongoDB(m, 27017, 23) }},
		{"redis", 6379, 128 << 20,
			func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, 24) }},
	}
	for _, a := range apps {
		profiles[a.name] = experiments.ProfileRun(a.build, load, win, a.maxDWS)
	}
	sn := experiments.CloneSN(platform.A(), 2, 4, load, win, 25)
	var tiers []string
	for name := range sn.Profiles {
		tiers = append(tiers, name)
	}
	sort.Strings(tiers)
	for _, name := range tiers {
		profiles["socialnetwork/"+name] = sn.Profiles[name]
	}

	var names []string
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	tol := DefaultTolerances()
	for _, name := range names {
		prof := profiles[name]
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				spec := core.Generate(prof, seed)
				r := Spec(spec, prof, tol)
				if !r.OK() {
					t.Errorf("verification failed:\n%s", r)
				}
			})
		}
	}
}
