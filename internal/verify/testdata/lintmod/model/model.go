// Package model is the golden-report fixture: exactly one finding per
// analyzer, in a fixed source order, so the dittolint -json schema test
// has a stable document to pin.
package model

import (
	"math/rand"
	"time"
)

// hits is the package-level state the shared-state finding points at.
var hits int

// Run trips every analyzer once, top to bottom.
func Run(m map[string]int, ch chan int) int {
	_ = time.Now()
	_ = rand.Int()
	for range m {
	}
	hits++
	ch <- 1
	return hits
}
