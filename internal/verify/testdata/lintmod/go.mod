module lintmod

go 1.22
