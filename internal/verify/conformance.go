package verify

import (
	"math"
	"sort"

	"ditto/internal/core"
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/profile"
)

// This file implements the statistical half of the clone verifier: the
// generated body must reproduce the profile's instruction mix,
// branch-behaviour histogram, working-set distributions and per-request
// instruction budget within configured tolerances — the §4.4 fidelity
// contract, checked before any simulation.

// bodyTally aggregates the composition of a generated body. The generator
// fills every static slot i.i.d. from the profiled distributions, so the
// pooled static composition is the sample the conformance checks apply to;
// weighting slots by LoopsPerRequest would multiply a small block's
// sampling noise by its loop count and drown the signal. Per-request
// execution weights enter only where the generator explicitly allocates
// them: the instruction budget and the IWS histogram.
type bodyTally struct {
	dyn        float64 // execution-weighted instructions per request
	iws        map[int]float64
	slots      float64 // static slots across all blocks
	branch     float64
	mem        float64
	store, rep float64
	ptr, load  float64 // pointer-chase vs plain loads (the MLP split)
	comp       map[isa.Op]float64
	brBins     map[[2]int]float64
	region     map[int]float64
}

func tallyBody(body *core.BodySpec) *bodyTally {
	t := &bodyTally{
		comp:   map[isa.Op]float64{},
		brBins: map[[2]int]float64{},
		region: map[int]float64{},
		iws:    map[int]float64{},
	}
	for bi := range body.Blocks {
		blk := &body.Blocks[bi]
		w := blk.LoopsPerRequest
		if w <= 0 || len(blk.Instrs) == 0 || len(blk.Aux) != len(blk.Instrs) {
			continue
		}
		t.dyn += w * float64(len(blk.Instrs))
		t.iws[blk.InstWS] += w * float64(len(blk.Instrs))
		t.slots += float64(len(blk.Instrs))
		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			aux := &blk.Aux[s]
			switch {
			case aux.IsBranch:
				t.branch++
				t.brBins[[2]int{aux.M, aux.N}]++
			case aux.IsMem:
				t.mem++
				t.region[aux.Region]++
				switch {
				case aux.IsRep:
					t.rep++
				case int(in.Op) < isa.NumOps && isa.Table[in.Op].Store:
					t.store++
				case in.Op == isa.MOVptr:
					t.ptr++
				default:
					t.load++
				}
			default:
				t.comp[in.Op]++
			}
		}
	}
	return t
}

// stat records one conformance measurement and emits a finding on failure.
func (r *Report) stat(name string, got, want, err, tol float64) bool {
	pass := err <= tol
	r.Conformance = append(r.Conformance, Stat{Name: name, Got: got, Want: want, Err: err, Tol: tol, Pass: pass})
	if !pass {
		r.specFinding(name, SevError, -1, -1,
			"got %.4f, want %.4f (err %.4f > tol %.4f)", got, want, err, tol)
	}
	return pass
}

// shareStat checks a scalar share with combined absolute/relative slack.
func (r *Report) shareStat(name string, got, want float64, tol Tolerances) {
	err := math.Abs(got - want)
	eff := tol.ShareAbs
	if rel := math.Abs(want) * tol.ShareRel; rel > eff {
		eff = rel
	}
	r.stat(name, got, want, err, eff)
}

// tvDistance is the total-variation distance between two weight maps after
// normalization: half the L1 distance, in [0,1].
func tvDistance[K comparable](got, want map[K]float64) float64 {
	var gSum, wSum float64
	for _, v := range got {
		gSum += v
	}
	for _, v := range want {
		wSum += v
	}
	if gSum == 0 || wSum == 0 {
		if gSum == wSum {
			return 0
		}
		return 1
	}
	keys := map[K]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	var d float64
	for k := range keys {
		d += math.Abs(got[k]/gSum - want[k]/wSum)
	}
	return d / 2
}

// ksDistance is the Kolmogorov–Smirnov statistic between two weighted
// histograms over an ordered support.
func ksDistance(support []int, got, want map[int]float64) float64 {
	var gSum, wSum float64
	for _, v := range got {
		gSum += v
	}
	for _, v := range want {
		wSum += v
	}
	if gSum == 0 || wSum == 0 {
		if gSum == wSum {
			return 0
		}
		return 1
	}
	var gCum, wCum, d float64
	for _, k := range support {
		gCum += got[k] / gSum
		wCum += want[k] / wSum
		if diff := math.Abs(gCum - wCum); diff > d {
			d = diff
		}
	}
	return d
}

func checkConformance(r *Report, spec *core.SynthSpec, prof *profile.AppProfile, tol Tolerances) {
	b := &prof.Body
	adj := spec.Applied
	checkSkeleton(r, spec, prof)
	checkSyscallConformance(r, spec, prof)

	budget := b.InstrsPerRequest * adj.InstrScale
	if budget <= 0 {
		if len(spec.Body.Blocks) != 0 {
			r.specFinding("budget", SevError, -1, -1,
				"profile has no instruction budget but the body has %d blocks", len(spec.Body.Blocks))
		}
		return // skeleton-only stage: nothing statistical to conform
	}
	t := tallyBody(&spec.Body)
	if t.dyn == 0 {
		r.specFinding("budget", SevError, -1, -1,
			"profile wants %.0f instructions per request but the body executes none", budget)
		return
	}

	// Per-request instruction budget (Eq. 2 conservation).
	r.stat("budget", t.dyn, budget, math.Abs(t.dyn-budget)/budget, tol.BudgetRel)

	// Slot-kind shares over the pooled static slots.
	r.shareStat("branch-share", t.branch/t.slots, b.BranchShare, tol)
	r.shareStat("mem-share", t.mem/t.slots, b.MemShare, tol)
	if t.mem > 0 {
		// The slot sampler draws rep first, then store from the same
		// uniform: P(store|mem) is StoreFrac capped by the rep share.
		wantStore := math.Min(clamp01(b.StoreFrac), 1-clamp01(b.RepFrac))
		r.shareStat("store-frac", t.store/t.mem, wantStore, tol)
		r.shareStat("rep-frac", t.rep/t.mem, clamp01(b.RepFrac), tol)
		if plain := t.ptr + t.load; plain > 0 {
			r.shareStat("pointer-frac", t.ptr/plain, clamp01(b.PointerFrac*adj.PtrScale), tol)
		}
	}

	// Computational instruction mix (total-variation distance against the
	// renormalized computational clusters).
	want := map[isa.Op]float64{}
	for _, m := range core.CompMixEntries(b.Mix) {
		want[m.Op] += m.Share
	}
	mixTV := tvDistance(t.comp, want)
	r.stat("mix-tv", mixTV, 0, mixTV, tol.MixTV)

	// Branch-behaviour histogram over (M,N) bins, after the MN-shift knob.
	if t.branch > 0 {
		wantBr := map[[2]int]float64{}
		for _, bin := range core.ShiftBranchBins(b.Branches, adj.MNShift) {
			wantBr[[2]int{bin.M, bin.N}] += bin.Weight
		}
		d := tvDistance(t.brBins, wantBr)
		r.stat("branch-tv", d, 0, d, tol.BranchTV)
	}

	// Instruction working-set CDF.
	iwsBins := core.ScaleWSBins(b.IWS, adj.IWSScale)
	var iwsTotal float64
	for _, bin := range iwsBins {
		iwsTotal += bin.Count
	}
	if iwsTotal <= 0 {
		iwsBins = []profile.WSBin{{Bytes: 4096, Count: budget}}
	}
	wantIWS := map[int]float64{}
	for _, bin := range iwsBins {
		wantIWS[bin.Bytes] += bin.Count
	}
	d := ksDistance(sortedKeys(t.iws, wantIWS), t.iws, wantIWS)
	r.stat("iws-ks", d, 0, d, tol.WSKS)

	// Data working-set CDF: the dynamic share of memory accesses per region
	// against the profiled per-working-set access counts.
	dwsBins := core.ScaleWSBins(b.DWS, adj.DWSScale)
	if len(dwsBins) != len(spec.Body.Regions) {
		r.specFinding("region-count", SevError, -1, -1,
			"%d regions for %d data working-set bins", len(spec.Body.Regions), len(dwsBins))
	} else if t.mem > 0 && len(dwsBins) > 0 {
		var dwsTotal float64
		for _, bin := range dwsBins {
			dwsTotal += bin.Count
		}
		wantDWS := map[int]float64{}
		for i, bin := range dwsBins {
			if dwsTotal > 0 {
				wantDWS[i] = bin.Count
			} else {
				wantDWS[i] = 1 // all-zero weights sample uniformly
			}
		}
		support := make([]int, len(dwsBins))
		for i := range support {
			support[i] = i
		}
		d := ksDistance(support, t.region, wantDWS)
		r.stat("dws-ks", d, 0, d, tol.WSKS)
	}
}

func checkSkeleton(r *Report, spec *core.SynthSpec, prof *profile.AppProfile) {
	s, p := spec.Skeleton, prof.Skeleton
	if s.NetworkModel != p.NetworkModel || s.Workers != p.Workers ||
		s.Dispatcher != p.Dispatcher || s.PerConn != p.PerConn ||
		s.ThreadClusters != p.ThreadClusters {
		r.specFinding("skeleton", SevError, -1, -1,
			"skeleton %+v does not carry the profiled skeleton %+v", s, p)
	}
	if spec.ReqBytes != int(prof.ReqBytesMean) || spec.RespBytes != int(prof.RespBytesMean) {
		r.specFinding("message-size", SevError, -1, -1,
			"req/resp %d/%dB, profile means %.0f/%.0fB",
			spec.ReqBytes, spec.RespBytes, prof.ReqBytesMean, prof.RespBytesMean)
	}
}

// checkSyscallConformance verifies the syscall plan is exactly the
// replayable projection of the profiled syscall distribution: every
// profiled replayable syscall appears at its profiled rate, and the plan
// invents nothing.
func checkSyscallConformance(r *Report, spec *core.SynthSpec, prof *profile.AppProfile) {
	profiled := map[kernel.SyscallOp]float64{}
	for _, st := range prof.Syscalls {
		if replayableOps[st.Op] {
			profiled[st.Op] += st.PerRequest
		}
	}
	planned := map[kernel.SyscallOp]float64{}
	for _, p := range spec.Syscalls {
		planned[p.Op] += p.PerRequest
	}
	for _, op := range sortedOps(profiled) {
		rate := profiled[op]
		got, ok := planned[op]
		if !ok {
			r.specFinding("syscall-conformance", SevError, -1, -1,
				"profiled %v (%.3f/req) missing from the replay plan", op, rate)
			continue
		}
		if math.Abs(got-rate) > 1e-9*math.Max(1, rate) {
			r.specFinding("syscall-conformance", SevError, -1, -1,
				"%v replayed at %.4f/req, profiled at %.4f/req", op, got, rate)
		}
	}
	for _, op := range sortedOps(planned) {
		if _, ok := profiled[op]; !ok {
			r.specFinding("syscall-conformance", SevError, -1, -1,
				"plan replays %v (%.3f/req) that the profile never observed", op, planned[op])
		}
	}
}

// sortedOps orders syscall ops for deterministic finding emission.
func sortedOps(m map[kernel.SyscallOp]float64) []kernel.SyscallOp {
	ops := make([]kernel.SyscallOp, 0, len(m))
	for op := range m {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

func sortedKeys(ms ...map[int]float64) []int {
	seen := map[int]bool{}
	var keys []int
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Ints(keys)
	return keys
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
