package verify

import (
	"math"

	"ditto/internal/core"
	"ditto/internal/isa"
	"ditto/internal/kernel"
)

// checkStructure runs every structural (non-statistical) check over a spec:
// instruction/iform consistency, aux metadata, control flow and register
// dataflow per block, memory-region layout, and the syscall plan.
func checkStructure(r *Report, spec *core.SynthSpec) {
	checkBlocks(r, spec)
	checkRegions(r, spec)
	checkSyscalls(r, spec)
}

func checkBlocks(r *Report, spec *core.SynthSpec) {
	seenOps := map[isa.Op]bool{}
	seenBranchIDs := map[int32]int{}
	type pcRange struct{ lo, hi uint64 }
	var ranges []pcRange

	for bi := range spec.Body.Blocks {
		blk := &spec.Body.Blocks[bi]
		if blk.InstWS <= 0 {
			r.specFinding("block-shape", SevError, bi, -1, "instruction working set %dB", blk.InstWS)
		}
		if len(blk.Instrs) == 0 {
			r.specFinding("block-shape", SevError, bi, -1, "block has no instructions")
			continue
		}
		if len(blk.Aux) != len(blk.Instrs) {
			r.specFinding("block-shape", SevError, bi, -1,
				"%d aux entries for %d instructions", len(blk.Aux), len(blk.Instrs))
			continue
		}
		if static := len(blk.Instrs) * isa.InstrBytes; static > blk.InstWS && blk.InstWS > 64 {
			r.specFinding("block-shape", SevError, bi, -1,
				"static code %dB exceeds the block's %dB instruction working set", static, blk.InstWS)
		}
		if !(blk.LoopsPerRequest >= 0) || math.IsInf(blk.LoopsPerRequest, 0) {
			r.specFinding("block-shape", SevError, bi, -1,
				"loops per request = %v", blk.LoopsPerRequest)
		}

		for s := range blk.Instrs {
			in := &blk.Instrs[s]
			aux := &blk.Aux[s]

			// Iform consistency with isa.Table, memoized per opcode.
			if !seenOps[in.Op] {
				seenOps[in.Op] = true
				if err := isa.ValidateOp(in.Op); err != nil {
					r.specFinding("iform", SevError, bi, s, "%v", err)
				}
			}
			if int(in.Op) >= isa.NumOps {
				continue // no form to check against
			}
			f := &isa.Table[in.Op]

			// Operand registers must match the iform's operand class.
			for _, reg := range [3]isa.Reg{in.Dst, in.Src1, in.Src2} {
				if !isa.RegMatchesOperands(f.Operands, reg) {
					r.specFinding("operand-class", SevError, bi, s,
						"%s (%s operands) uses register %v", f.Name, f.Operands, reg)
				}
			}

			// PC layout: slots are contiguous InstrBytes-sized cells.
			if s > 0 && in.PC != blk.Instrs[s-1].PC+isa.InstrBytes {
				r.specFinding("pc-layout", SevError, bi, s,
					"pc %#x does not follow %#x", in.PC, blk.Instrs[s-1].PC)
			}

			// Branch identity and aux agreement.
			switch {
			case f.Branch:
				if !aux.IsBranch {
					r.specFinding("aux-mismatch", SevError, bi, s, "%s without branch aux", f.Name)
				}
				if in.BranchID < 0 {
					r.specFinding("branch-id", SevError, bi, s, "branch without a static site id")
				} else if prev, dup := seenBranchIDs[in.BranchID]; dup {
					r.specFinding("branch-id", SevError, bi, s,
						"branch site id %d already used at slot %d (aliased predictor state)",
						in.BranchID, prev)
				} else {
					seenBranchIDs[in.BranchID] = s
				}
				if aux.M < 1 || aux.M > 10 || aux.N < 1 || aux.N > 10 {
					r.specFinding("branch-mask", SevError, bi, s,
						"bitmask parameters M=%d N=%d outside the quantization range [1,10]", aux.M, aux.N)
				}
			case aux.IsBranch:
				r.specFinding("aux-mismatch", SevError, bi, s, "branch aux on %s", f.Name)
			default:
				if in.BranchID != -1 {
					r.specFinding("branch-id", SevError, bi, s,
						"non-branch %s carries branch site id %d", f.Name, in.BranchID)
				}
			}

			// Memory-slot aux agreement and region bounds.
			isMemOp := f.Load || f.Store
			if isMemOp && !aux.IsMem {
				r.specFinding("aux-mismatch", SevError, bi, s, "%s without memory aux", f.Name)
			}
			if aux.IsMem && !isMemOp {
				r.specFinding("aux-mismatch", SevError, bi, s, "memory aux on %s", f.Name)
			}
			if aux.IsMem && (aux.Region < 0 || aux.Region >= len(spec.Body.Regions)) {
				r.specFinding("region-range", SevError, bi, s,
					"memory slot targets region %d of %d", aux.Region, len(spec.Body.Regions))
			}
			if aux.IsRep != f.Rep {
				r.specFinding("aux-mismatch", SevError, bi, s, "rep aux disagrees with %s", f.Name)
			}
			if f.Rep && in.RepCount < 1 {
				r.specFinding("rep-count", SevError, bi, s, "%s with RepCount %d", f.Name, in.RepCount)
			}
			if in.Kernel {
				r.specFinding("kernel-flag", SevError, bi, s,
					"generated body instruction marked kernel-mode")
			}
		}

		checkCFG(r, bi, blk)
		ranges = append(ranges, pcRange{lo: blk.Instrs[0].PC,
			hi: blk.Instrs[0].PC + uint64(len(blk.Instrs))*isa.InstrBytes})
	}

	// Blocks must occupy disjoint code ranges (distinct i-cache footprints).
	for i := 0; i < len(ranges); i++ {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[i].lo < ranges[j].hi && ranges[j].lo < ranges[i].hi {
				r.specFinding("block-overlap", SevError, i, -1,
					"code range [%#x,%#x) overlaps block %d's [%#x,%#x)",
					ranges[i].lo, ranges[i].hi, j, ranges[j].lo, ranges[j].hi)
			}
		}
	}
}

func checkRegions(r *Report, spec *core.SynthSpec) {
	if len(spec.Body.Blocks) > 0 && spec.Body.ArrayBytes == 0 {
		r.specFinding("region-bounds", SevError, -1, -1, "body has blocks but no data array")
	}
	regs := spec.Body.Regions
	for i, reg := range regs {
		if reg.WSBytes <= 0 || reg.Span == 0 {
			r.specFinding("region-bounds", SevError, -1, -1,
				"region %d: ws=%dB span=%d", i, reg.WSBytes, reg.Span)
			continue
		}
		if reg.Start+reg.Span > spec.Body.ArrayBytes {
			r.specFinding("region-bounds", SevError, -1, -1,
				"region %d: [%d,%d) exceeds the %dB data array",
				i, reg.Start, reg.Start+reg.Span, spec.Body.ArrayBytes)
		}
	}
	// The Fig. 4 layout nests working sets: [2^(i-1), 2^i) spans are
	// disjoint, except that sub-line sets all collapse onto the first line.
	for i := 0; i < len(regs); i++ {
		for j := i + 1; j < len(regs); j++ {
			if regs[i].WSBytes <= 64 && regs[j].WSBytes <= 64 {
				continue
			}
			iEnd, jEnd := regs[i].Start+regs[i].Span, regs[j].Start+regs[j].Span
			if regs[i].Start < jEnd && regs[j].Start < iEnd {
				r.specFinding("region-overlap", SevError, -1, -1,
					"region %d [%d,%d) overlaps region %d [%d,%d)",
					i, regs[i].Start, iEnd, j, regs[j].Start, jEnd)
			}
		}
	}
}

// replayableOps is the closed set of syscalls a generated clone replays
// directly; network and scheduler calls belong to the skeleton.
var replayableOps = map[kernel.SyscallOp]bool{
	kernel.SysOpen: true, kernel.SysClose: true, kernel.SysPread: true,
	kernel.SysWrite: true, kernel.SysFsync: true, kernel.SysMmap: true,
}

func checkSyscalls(r *Report, spec *core.SynthSpec) {
	for i, p := range spec.Syscalls {
		if !replayableOps[p.Op] {
			r.specFinding("syscall-plan", SevError, -1, -1,
				"entry %d replays %v, outside the replayable set", i, p.Op)
		}
		if !(p.PerRequest >= 0) || math.IsInf(p.PerRequest, 0) {
			r.specFinding("syscall-plan", SevError, -1, -1,
				"entry %d (%v): rate %v per request", i, p.Op, p.PerRequest)
		}
		if p.Bytes < 0 {
			r.specFinding("syscall-plan", SevError, -1, -1,
				"entry %d (%v): negative byte count %d", i, p.Op, p.Bytes)
		}
		if p.FileSize < 0 {
			r.specFinding("syscall-plan", SevError, -1, -1,
				"entry %d (%v): negative file size %d", i, p.Op, p.FileSize)
		}
		if (p.Op == kernel.SysPread || p.Op == kernel.SysWrite) &&
			p.FileSize > 0 && int64(p.Bytes) > p.FileSize {
			r.specFinding("syscall-plan", SevError, -1, -1,
				"entry %d (%v): %dB transfers against a %dB file", i, p.Op, p.Bytes, p.FileSize)
		}
	}
}
