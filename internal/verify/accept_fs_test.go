package verify

import (
	"fmt"
	"testing"

	"ditto/internal/core"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// TestVerifierAcceptsDittoFSClones is the acceptance gate for the storage
// family: every tier spec the pipeline produces from a DittoFS deployment —
// the adapter over each content backend, plus the remote blob tier — must
// verify clean against its profile across two generation seeds. This is
// what makes figS's synthetic columns trustworthy: the clone that gets
// measured is the same artifact this gate checks.
func TestVerifierAcceptsDittoFSClones(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles three simulated DittoFS deployments; skipped in -short")
	}
	seeds := []int64{1, 2}
	win := experiments.Windows{Warmup: 10 * sim.Millisecond, Measure: 40 * sim.Millisecond}
	tol := DefaultTolerances()
	for _, backend := range []string{"mem", "lsm", "blob"} {
		load := experiments.Load{Conns: 8, Seed: 5}
		clone := experiments.CloneFS(backend, platform.A(), load, win, 29)
		for _, name := range clone.Order {
			prof := clone.Profiles[name]
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", backend, name, seed), func(t *testing.T) {
					spec := core.Generate(prof, seed)
					r := Spec(spec, prof, tol)
					if !r.OK() {
						t.Errorf("verification failed:\n%s", r)
					}
				})
			}
		}
	}
}
