package verify

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is Layer 2: a go/parser + go/types determinism linter for the
// simulator's own source. The deterministic model packages (cpu, cache,
// mem, branch, sim, core) promise that a single seed reproduces a whole
// experiment; the linter flags the constructs that silently break that
// promise — wall-clock reads, draws from the global math/rand stream, and
// map iteration whose order leaks into results.
//
// Iterating a map is tolerated in exactly two shapes:
//
//   - the collect-keys idiom `for k := range m { keys = append(keys, k) }`,
//     whose output is expected to be sorted before use;
//   - a range carrying a reviewed suppression comment containing
//     "ditto:determinism-ok" on the for statement's line or the line above.
//
// Everything else that ranges a map inside a deterministic package is
// order-dependent accumulation until proven otherwise.

// DeterministicPackages is the default lint target set: the packages whose
// behaviour must be a pure function of their seeds.
var DeterministicPackages = []string{
	"internal/branch",
	"internal/cache",
	"internal/core",
	"internal/cpu",
	"internal/mem",
	"internal/sim",
}

// suppressionMarker is the reviewed-safe annotation for map ranges.
const suppressionMarker = "ditto:determinism-ok"

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"time.Now": true, "time.Since": true, "time.Until": true,
}

// randConstructors are the seeded entry points of math/rand that do not
// touch the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// Lint type-checks the given package directories (relative to the module
// root) and returns a report of determinism findings. Packages outside the
// module and test files are not linted, but imports resolve through the
// module so types are exact.
func Lint(root string, pkgDirs []string) (*Report, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	r := &Report{Name: "dittolint"}
	for _, dir := range pkgDirs {
		lp, err := ld.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		lintPackage(r, ld.fset, lp)
	}
	sort.SliceStable(r.Findings, func(i, j int) bool { return r.Findings[i].Pos < r.Findings[j].Pos })
	return r, nil
}

// loadedPkg is one parsed and type-checked package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves and type-checks packages of one module, importing module
// siblings recursively and the standard library through the source
// importer (export data for the stdlib is not shipped with modern
// toolchains, so compiling from GOROOT source is the hermetic choice).
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.Importer
	pkgs   map[string]*loadedPkg // keyed by module-relative dir
	stack  map[string]bool
}

func newLoader(root string) (*loader, error) {
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("module root: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(modData), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*loadedPkg{},
		stack:  map[string]bool{},
	}, nil
}

// Import implements types.Importer over the module + stdlib split.
func (l *loader) Import(path string) (*types.Package, error) {
	if rel, ok := strings.CutPrefix(path, l.module+"/"); ok {
		lp, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks one module-relative package directory,
// memoized.
func (l *loader) loadDir(rel string) (*loadedPkg, error) {
	rel = filepath.ToSlash(filepath.Clean(rel))
	if lp, ok := l.pkgs[rel]; ok {
		return lp, nil
	}
	if l.stack[rel] {
		return nil, fmt.Errorf("import cycle through %s", rel)
	}
	l.stack[rel] = true
	defer delete(l.stack, rel)

	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(l.module+"/"+rel, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[rel] = lp
	return lp, nil
}

// lintPackage applies the determinism rules to one loaded package.
func lintPackage(r *Report, fset *token.FileSet, lp *loadedPkg) {
	for _, f := range lp.files {
		suppressed := suppressedLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				lintCall(r, fset, lp.info, node)
			case *ast.RangeStmt:
				lintRange(r, fset, lp.info, node, suppressed)
			}
			return true
		})
	}
}

// suppressedLines collects the lines on which a suppression comment allows
// the construct on the same or the following line.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, suppressionMarker) {
				line := fset.Position(c.End()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}

// lintCall flags wall-clock reads and global math/rand draws.
func lintCall(r *Report, fset *token.FileSet, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. a seeded *rand.Rand) are deterministic
	}
	pos := fset.Position(call.Pos())
	switch pkgPath := fn.Pkg().Path(); {
	case wallClockFuncs[fn.FullName()]:
		r.add(Finding{Layer: "lint", Rule: "wall-clock", Severity: SevError, Block: -1, Slot: -1,
			Pos: posString(pos),
			Detail: fmt.Sprintf("%s reads the host clock; deterministic code must take time from the simulation engine",
				fn.FullName())})
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fn.Name()]:
		r.add(Finding{Layer: "lint", Rule: "global-rand", Severity: SevError, Block: -1, Slot: -1,
			Pos: posString(pos),
			Detail: fmt.Sprintf("%s draws from the global random stream; use a seeded stats.Rand",
				fn.FullName())})
	}
}

// lintRange flags map iteration whose order can leak into results.
func lintRange(r *Report, fset *token.FileSet, info *types.Info, rng *ast.RangeStmt, suppressed map[int]bool) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	pos := fset.Position(rng.Pos())
	if suppressed[pos.Line] {
		return
	}
	if isCollectKeysIdiom(info, rng) {
		return
	}
	r.add(Finding{Layer: "lint", Rule: "map-range", Severity: SevError, Block: -1, Slot: -1,
		Pos: posString(pos),
		Detail: fmt.Sprintf("iteration over %s is unordered; sort the keys first, or annotate a reviewed-safe loop with %q",
			t, suppressionMarker)})
}

// isCollectKeysIdiom recognizes `for k := range m { s = append(s, k) }`,
// the standard prelude to sorted iteration.
func isCollectKeysIdiom(info *types.Info, rng *ast.RangeStmt) bool {
	if rng.Value != nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := info.Uses[fn]; !ok || obj != types.Universe.Lookup("append") {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := info.Defs[keyIdent]
	return keyObj != nil && info.Uses[arg] == keyObj
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
