package verify

import (
	"fmt"
	"go/token"

	"ditto/internal/analysis"
)

// This file is Layer 2: the determinism lint surface over the
// internal/analysis multi-analyzer suite. The deterministic model packages
// promise that a single seed reproduces a whole experiment; the suite
// flags the constructs that silently break that promise — wall-clock
// reads, draws from the global math/rand stream, map iteration whose order
// leaks into results, package-level state written outside init, and bare
// goroutines or channel ops racing the engine. The analyzers, the uniform
// ditto:determinism-ok suppression, and the noalloc escape-analysis gate
// all live in internal/analysis; this layer maps their findings onto the
// verify.Report schema that cmd/dittolint -json emits.

// DeterministicPackages is the default lint target set: the packages whose
// behaviour must be a pure function of their seeds. This is the full model
// surface — everything that executes inside a runner cell.
var DeterministicPackages = []string{
	"internal/app",
	"internal/app/dittofs",
	"internal/branch",
	"internal/cache",
	"internal/core",
	"internal/cpu",
	"internal/disk",
	"internal/dtrace",
	"internal/fault",
	"internal/kernel",
	"internal/loadgen",
	"internal/mem",
	"internal/netsim",
	"internal/sim",
	"internal/stats",
	"internal/steady",
}

// NoallocPackages is the default target set of the noalloc gate: the
// deterministic packages plus the interference stressors, whose burst-fill
// loops are annotated hot paths too.
var NoallocPackages = append(append([]string(nil), DeterministicPackages...), "internal/interfere")

// Lint runs the full AST analyzer suite over the given package directories
// (relative to the module root) and returns the findings as a report.
// Packages outside the module and test files are not linted, but imports
// resolve through the module so types are exact.
func Lint(root string, pkgDirs []string) (*Report, error) {
	return LintWith(root, pkgDirs, analysis.All())
}

// LintWith runs a chosen subset of the analyzer suite.
func LintWith(root string, pkgDirs []string, analyzers []*analysis.Analyzer) (*Report, error) {
	fs, err := analysis.Run(root, pkgDirs, analyzers)
	if err != nil {
		return nil, err
	}
	return lintReport(fs), nil
}

// LintNoalloc runs the escape-analysis gate: every ditto:noalloc-annotated
// function in the given packages must stay free of compiler-placed heap
// allocations (see analysis.Noalloc).
func LintNoalloc(root string, pkgDirs []string) (*Report, error) {
	fs, err := analysis.Noalloc(root, pkgDirs)
	if err != nil {
		return nil, err
	}
	return lintReport(fs), nil
}

// lintReport maps analyzer findings onto the report schema: the analyzer
// name is the rule, every finding is an error, block/slot do not apply.
func lintReport(fs []analysis.Finding) *Report {
	r := &Report{Name: "dittolint"}
	for _, f := range fs {
		r.add(Finding{Layer: "lint", Rule: f.Analyzer, Severity: SevError,
			Block: -1, Slot: -1, Pos: posString(f.Pos), Detail: f.Message})
	}
	return r
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
