package verify

import (
	"encoding/json"
	"strings"
	"testing"

	"ditto/internal/core"
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/profile"
)

// sampleProfile mirrors the hand-written profile used by the generator's
// own tests: plausible shares, three IWS/DWS bins, a replayable file
// syscall pair.
func sampleProfile() *profile.AppProfile {
	p := &profile.AppProfile{
		Name:          "toy",
		Requests:      1000,
		ReqBytesMean:  64,
		RespBytesMean: 1024,
		Skeleton:      profile.SkeletonProfile{NetworkModel: "iomux", Workers: 1},
		Syscalls: []profile.SyscallStat{
			{Op: kernel.SysRecv, PerRequest: 1, MeanBytes: 64},
			{Op: kernel.SysSend, PerRequest: 1, MeanBytes: 1024},
			{Op: kernel.SysPread, PerRequest: 0.5, MeanBytes: 16384,
				File: "file:/d", FileSize: 1 << 30, UniformOffsets: true},
			{Op: kernel.SysOpen, PerRequest: 0.5, MeanBytes: 0, File: "file:/d", FileSize: 1 << 30},
			{Op: kernel.SysClose, PerRequest: 0.5},
			{Op: kernel.SysEpollWait, PerRequest: 1},
		},
	}
	b := &p.Body
	b.InstrsPerRequest = 4000
	b.Mix = []profile.MixEntry{
		{Op: isa.ADDrr, Share: 0.45}, {Op: isa.MOVload, Share: 0.25},
		{Op: isa.MOVstore, Share: 0.1}, {Op: isa.JCC, Share: 0.12},
		{Op: isa.IMULrr, Share: 0.04}, {Op: isa.CRC32rr, Share: 0.04},
	}
	b.BranchShare = 0.12
	b.MemShare = 0.35
	b.Branches = []profile.BranchBin{{M: 1, N: 2, Weight: 0.6}, {M: 3, N: 4, Weight: 0.4}}
	b.StaticBranches = 400
	b.RAW.Bins[1] = 0.5
	b.RAW.Bins[4] = 0.5
	b.WAW.Bins[3] = 1
	b.WAR.Bins[2] = 1
	b.IWS = []profile.WSBin{
		{Bytes: 64, Count: 1000}, {Bytes: 4096, Count: 2000}, {Bytes: 65536, Count: 1000},
	}
	b.DWS = []profile.WSBin{
		{Bytes: 4096, Count: 700}, {Bytes: 1 << 20, Count: 500}, {Bytes: 16 << 20, Count: 200},
	}
	b.RegularFrac = 0.4
	b.PointerFrac = 0.2
	b.SharedFrac = 0.05
	b.StoreFrac = 0.25
	b.RepFrac = 0.02
	b.RepBytesMean = 1024
	p.Target = profile.TargetMetrics{IPC: 1.1, BranchMiss: 0.04,
		L1iMiss: 0.03, L1dMiss: 0.08, L2Miss: 0.3, L3Miss: 0.4, KernelShare: 0.5}
	return p
}

// copySpec deep-copies a spec through its JSON encoding so mutation cases
// cannot leak into each other.
func copySpec(t *testing.T, spec *core.SynthSpec) *core.SynthSpec {
	t.Helper()
	data, err := spec.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cp, err := core.DecodeSynthSpec(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return cp
}

func hasRule(r *Report, rule string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestGeneratedSpecsVerifyClean(t *testing.T) {
	prof := sampleProfile()
	for _, seed := range []int64{1, 2, 3, 17, 99} {
		spec := core.Generate(prof, seed)
		r := Spec(spec, prof, DefaultTolerances())
		if !r.OK() {
			t.Errorf("seed %d: generated spec fails verification:\n%s", seed, r)
		}
	}
}

// findSlot returns the block/slot indices of the first slot satisfying
// pred, failing the test when none exists.
func findSlot(t *testing.T, spec *core.SynthSpec, pred func(in *isa.Instr, aux *core.SlotAux) bool) (int, int) {
	t.Helper()
	for bi := range spec.Body.Blocks {
		blk := &spec.Body.Blocks[bi]
		for s := range blk.Instrs {
			if pred(&blk.Instrs[s], &blk.Aux[s]) {
				return bi, s
			}
		}
	}
	t.Fatal("no slot matches the predicate")
	return -1, -1
}

func isBranchSlot(in *isa.Instr, aux *core.SlotAux) bool { return aux.IsBranch }
func isCompSlot(in *isa.Instr, aux *core.SlotAux) bool {
	return !aux.IsBranch && !aux.IsMem
}

func TestVerifierCatchesInvalidSpecs(t *testing.T) {
	prof := sampleProfile()
	base := core.Generate(prof, 7)
	if r := Spec(base, prof, DefaultTolerances()); !r.OK() {
		t.Fatalf("baseline spec must verify:\n%s", r)
	}

	cases := []struct {
		name   string
		rule   string
		mutate func(t *testing.T, s *core.SynthSpec)
	}{
		{"dangling branch target", "branch-target", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isBranchSlot)
			if sl == len(s.Body.Blocks[bi].Instrs)-1 {
				t.Fatal("pick a non-final branch slot")
			}
			// Shift every PC from the slot after the branch: the implicit
			// next-line target now points into a hole.
			blk := &s.Body.Blocks[bi]
			for i := sl + 1; i < len(blk.Instrs); i++ {
				blk.Instrs[i].PC += 2 * isa.InstrBytes
			}
		}},
		{"read before write", "read-before-write", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isCompSlot)
			s.Body.Blocks[bi].Instrs[sl].Src1 = isa.R13 // outside the prologue contract
		}},
		{"write to runtime-reserved register", "reserved-register", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isCompSlot)
			s.Body.Blocks[bi].Instrs[sl].Dst = isa.R9 // loop counter
		}},
		{"pointer-chase cell written by ALU op", "reserved-register", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isCompSlot)
			s.Body.Blocks[bi].Instrs[sl].Dst = isa.R11
		}},
		{"unknown opcode", "iform", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isCompSlot)
			s.Body.Blocks[bi].Instrs[sl].Op = isa.Op(isa.NumOps + 5)
		}},
		{"vector register on scalar iform", "operand-class", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, func(in *isa.Instr, aux *core.SlotAux) bool {
				return isCompSlot(in, aux) && isa.Table[in.Op].Operands == isa.OpGPR
			})
			s.Body.Blocks[bi].Instrs[sl].Dst = isa.X0
		}},
		{"instruction mix drift", "mix-tv", func(t *testing.T, s *core.SynthSpec) {
			for bi := range s.Body.Blocks {
				blk := &s.Body.Blocks[bi]
				for i := range blk.Instrs {
					if isCompSlot(&blk.Instrs[i], &blk.Aux[i]) {
						blk.Instrs[i].Op = isa.POPCNTrr
					}
				}
			}
		}},
		{"instruction budget drift", "budget", func(t *testing.T, s *core.SynthSpec) {
			for bi := range s.Body.Blocks {
				s.Body.Blocks[bi].LoopsPerRequest *= 2
			}
		}},
		{"branch mask outside quantization range", "branch-mask", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isBranchSlot)
			s.Body.Blocks[bi].Aux[sl].M = 0
		}},
		{"duplicate branch site id", "branch-id", func(t *testing.T, s *core.SynthSpec) {
			b0, s0 := findSlot(t, s, isBranchSlot)
			id := s.Body.Blocks[b0].Instrs[s0].BranchID
			bi, sl := findSlot(t, s, func(in *isa.Instr, aux *core.SlotAux) bool {
				return aux.IsBranch && in.BranchID != id
			})
			s.Body.Blocks[bi].Instrs[sl].BranchID = id
		}},
		{"memory aux on ALU op", "aux-mismatch", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isCompSlot)
			s.Body.Blocks[bi].Aux[sl].IsMem = true
		}},
		{"memory slot targets missing region", "region-range", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, func(in *isa.Instr, aux *core.SlotAux) bool { return aux.IsMem })
			s.Body.Blocks[bi].Aux[sl].Region = len(s.Body.Regions) + 3
		}},
		{"region exceeds data array", "region-bounds", func(t *testing.T, s *core.SynthSpec) {
			last := &s.Body.Regions[len(s.Body.Regions)-1]
			last.Span = s.Body.ArrayBytes + 4096
		}},
		{"overlapping regions", "region-overlap", func(t *testing.T, s *core.SynthSpec) {
			if len(s.Body.Regions) < 2 {
				t.Fatal("need two regions")
			}
			s.Body.Regions[1].Start = s.Body.Regions[2].Start
			s.Body.Regions[1].Span = s.Body.Regions[2].Span
		}},
		{"overlapping code ranges", "block-overlap", func(t *testing.T, s *core.SynthSpec) {
			if len(s.Body.Blocks) < 2 {
				t.Fatal("need two blocks")
			}
			delta := s.Body.Blocks[1].Instrs[0].PC - s.Body.Blocks[0].Instrs[0].PC
			for i := range s.Body.Blocks[1].Instrs {
				s.Body.Blocks[1].Instrs[i].PC -= delta
			}
		}},
		{"negative syscall rate", "syscall-plan", func(t *testing.T, s *core.SynthSpec) {
			s.Syscalls[0].PerRequest = -0.5
		}},
		{"dropped replayable syscall", "syscall-conformance", func(t *testing.T, s *core.SynthSpec) {
			s.Syscalls = s.Syscalls[:len(s.Syscalls)-1]
		}},
		{"skeleton not carried over", "skeleton", func(t *testing.T, s *core.SynthSpec) {
			s.Skeleton.Workers += 3
		}},
		{"message sizes drift", "message-size", func(t *testing.T, s *core.SynthSpec) {
			s.RespBytes *= 4
		}},
		{"kernel-mode body instruction", "kernel-flag", func(t *testing.T, s *core.SynthSpec) {
			bi, sl := findSlot(t, s, isCompSlot)
			s.Body.Blocks[bi].Instrs[sl].Kernel = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := copySpec(t, base)
			tc.mutate(t, spec)
			r := Spec(spec, prof, DefaultTolerances())
			if r.OK() {
				t.Fatalf("mutation not caught; report:\n%s", r)
			}
			if !hasRule(r, tc.rule) {
				t.Fatalf("want a %q finding, got:\n%s", tc.rule, r)
			}
		})
	}
}

func TestGenerateHookFiresOnBrokenSpec(t *testing.T) {
	var got *Report
	restore := InstallGenerateHook(func(r *Report) { got = r })
	defer restore()

	prof := sampleProfile()
	spec := core.Generate(prof, 5)
	if got != nil {
		t.Fatalf("hook fired on a valid generation:\n%s", got)
	}

	bad := copySpec(t, spec)
	bi, sl := findSlot(t, bad, isCompSlot)
	bad.Body.Blocks[bi].Instrs[sl].Src1 = isa.R14
	core.PostGenerate(bad, prof)
	if got == nil {
		t.Fatal("hook did not fire on a structurally broken spec")
	}
	if !hasRule(got, "read-before-write") {
		t.Fatalf("unexpected hook report:\n%s", got)
	}

	restore()
	if core.PostGenerate != nil {
		t.Fatal("restore did not clear the hook")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	prof := sampleProfile()
	spec := core.Generate(prof, 11)
	r := Spec(spec, prof, DefaultTolerances())
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != r.Name || len(back.Conformance) != len(r.Conformance) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if !strings.Contains(r.String(), "conformance") {
		t.Fatal("human-readable report missing the conformance table")
	}
}

func TestTVAndKSDistances(t *testing.T) {
	a := map[int]float64{1: 1, 2: 1}
	if d := tvDistance(a, a); d != 0 {
		t.Fatalf("tv(self) = %v", d)
	}
	b := map[int]float64{3: 1}
	if d := tvDistance(a, b); d != 1 {
		t.Fatalf("tv(disjoint) = %v", d)
	}
	if d := ksDistance([]int{1, 2, 3}, a, b); d != 1 {
		t.Fatalf("ks = %v", d)
	}
	if d := ksDistance(nil, nil, nil); d != 0 {
		t.Fatalf("ks(empty) = %v", d)
	}
}
