package verify

import (
	"fmt"
	"testing"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/dtrace"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// TestVerifierAcceptsSampledProfiles re-runs the §4.4 conformance gate
// against profiles captured under sampled steady-state execution: every
// spec generated from a sampled profile must verify clean under the same
// tolerances as the fully executed profiles. A failure here means the
// sampler's observed/modeled bookkeeping (profile.Profiler's obsScale)
// drifted from the statistics the generator consumes.
func TestVerifierAcceptsSampledProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles four simulated applications; skipped in -short")
	}
	seeds := []int64{1, 2, 3}
	win := experiments.Windows{Warmup: 10 * sim.Millisecond, Measure: 40 * sim.Millisecond}
	load := experiments.Load{Conns: 8, Seed: 5}

	apps := []struct {
		name   string
		maxDWS int
		build  experiments.AppBuilder
	}{
		{"memcached", 128 << 20,
			func(m *platform.Machine) app.App { return app.NewMemcached(m, 11211, 21) }},
		{"nginx", 32 << 20,
			func(m *platform.Machine) app.App { return app.NewNginx(m, 80, 22) }},
		{"mongodb", 256 << 20,
			func(m *platform.Machine) app.App { return app.NewMongoDB(m, 27017, 23) }},
		{"redis", 128 << 20,
			func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, 24) }},
	}
	tol := DefaultTolerances()
	for _, a := range apps {
		prof := experiments.ProfileRunSampled(a.build, load, win, a.maxDWS)
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", a.name, seed), func(t *testing.T) {
				spec := core.Generate(prof, seed)
				r := Spec(spec, prof, tol)
				if !r.OK() {
					t.Errorf("verification failed:\n%s", r)
				}
			})
		}
	}
}

// nginxRun measures a saturated single-tier NGINX — the workload behind
// the figure_cell benchmark, where the PR's 1% acceptance budget applies.
func nginxRun(t *testing.T, seed int64, sampled bool) SampledRun {
	t.Helper()
	env := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	if sampled {
		env.EnableSampling(seed)
	}
	a := app.NewNginx(env.Server, 80, seed+2)
	a.Start()
	load := experiments.Load{QPS: 60000, Conns: 16, Seed: seed}
	win := experiments.Windows{Warmup: 40 * sim.Millisecond, Measure: 160 * sim.Millisecond}
	res := experiments.Measure(env, a, load, win)
	env.Shutdown()
	return SampledRun{
		P50Ms: res.P50Ms, P95Ms: res.P95Ms, P99Ms: res.P99Ms,
		Goodput: res.Throughput,
	}
}

// snRun measures one Social Network deployment (original tiers, 2 nodes)
// and reduces it to the summary CheckSampled compares: end-to-end
// percentiles, goodput, and the call-graph edges of the measurement
// window's spans.
func snRun(t *testing.T, seed int64, sampled bool) SampledRun {
	t.Helper()
	d := experiments.NewOriginalSN(platform.A(), 2, 4, seed, 0)
	if sampled {
		d.Env.EnableSampling(seed)
	}
	load := experiments.Load{Conns: 32, Mix: experiments.SNMix(), Seed: seed}
	win := experiments.Windows{Warmup: 20 * sim.Millisecond, Measure: 60 * sim.Millisecond}
	e2e, _ := experiments.MeasureSN(d, load, win, nil)
	// MeasureSN's measurement window is the trailing win.Measure of the
	// run; edges are built from its spans only, so an early-exiting
	// sampled warmup cannot skew the counts.
	start := d.Env.Now() - win.Measure
	var spans []dtrace.Span
	for _, sp := range d.Collector.Spans() {
		if sp.Start >= start {
			spans = append(spans, sp)
		}
	}
	g := dtrace.BuildGraph(spans)
	d.Env.Shutdown()
	return SampledRun{
		P50Ms: e2e.P50Ms, P95Ms: e2e.P95Ms, P99Ms: e2e.P99Ms,
		Goodput: e2e.Throughput, Edges: g.Edges,
	}
}

// TestSampledErrorBudget is the table-driven full-vs-sampled drift gate:
// across three seeds per workload, a sampled run must stay inside its
// documented budget against the fully executed reference.
//
// The budgets differ by topology, deliberately. The single-tier open-loop
// path (the figure_cell workload the PR's acceptance bar measures) holds
// the tight DefaultSampledBudget: under 1% on p50/p95/p99 and goodput.
// The multi-tier closed-loop Social Network gets a 8% latency budget: its
// end-to-end percentiles are estimated from only ~300 requests per
// window (a ~5% standard error at p99), and modeled draws preserve
// latency autocorrelation within a tier but not across tiers, so chained
// tails drift by a few percent where the single-tier path does not.
func TestSampledErrorBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve full measurement runs; skipped in -short")
	}
	cases := []struct {
		name      string
		run       func(*testing.T, int64, bool) SampledRun
		budget    SampledBudget
		wantEdges bool
	}{
		{"nginx", nginxRun, DefaultSampledBudget(), false},
		{"socialnetwork", snRun,
			SampledBudget{LatencyRel: 0.08, GoodputRel: 0.01, EdgeRel: 0.03, EdgeAbs: 4}, true},
	}
	for _, c := range cases {
		for _, seed := range []int64{1, 2, 3} {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed%d", c.name, seed), func(t *testing.T) {
				full := c.run(t, seed, false)
				samp := c.run(t, seed, true)
				if c.wantEdges && len(full.Edges) == 0 {
					t.Fatal("full run produced no call-graph edges")
				}
				r := CheckSampled(fmt.Sprintf("sampled-%s-seed%d", c.name, seed), full, samp, c.budget)
				if !r.OK() {
					t.Errorf("drift beyond budget:\n%s", r)
				} else {
					t.Logf("within budget:\n%s", r)
				}
			})
		}
	}
}
