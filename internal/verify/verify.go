// Package verify is the static-analysis layer over Ditto's generated
// clones and over the simulator's own source.
//
// Layer 1 (the clone verifier, Spec) checks a generated core.SynthSpec
// against the profile it came from before a single simulated cycle is
// spent: it builds a control-flow graph over the body's instruction blocks
// and runs structural checks (branch-target integrity, register
// def-before-use along all paths, iform/port/latency consistency with
// isa.Table, memory-region layout, syscall-plan sanity) plus statistical
// conformance checks (instruction mix, branch-behaviour histogram,
// instruction- and data-working-set CDFs, and the per-request instruction
// budget must all sit within configurable tolerances of the source
// AppProfile — the fidelity contract of §4.4 of the paper).
//
// Layer 2 (the determinism linter, Lint) runs the internal/analysis
// multi-analyzer suite over the deterministic model packages and flags
// source constructs that would break reproducible seeds: wall-clock reads,
// package-level math/rand draws, map-iteration-order-dependent
// accumulation, package-level state written outside init, and bare
// goroutines or channel ops outside the engine. LintNoalloc adds the
// escape-analysis gate over ditto:noalloc-annotated hot paths.
//
// Both layers report Findings with positions, severities and
// machine-readable JSON output; cmd/dittolint is the CLI surface and
// core.PostGenerate is the generation-time hook.
package verify

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ditto/internal/core"
	"ditto/internal/profile"
)

// Severity ranks a finding.
type Severity string

// Severity levels: Error findings fail verification, Warn findings indicate
// suspicious-but-tolerated constructs, Info findings are observations.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
	SevInfo  Severity = "info"
)

// Finding is one verification or lint result.
type Finding struct {
	Layer    string   `json:"layer"` // "clone" or "lint"
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Detail   string   `json:"detail"`

	// Clone-verifier position: block and slot indices, -1 when not
	// applicable (region, syscall and whole-spec findings).
	Block int `json:"block"`
	Slot  int `json:"slot"`

	// Linter position: file:line:col.
	Pos string `json:"pos,omitempty"`
}

func (f Finding) String() string {
	loc := f.Pos
	if loc == "" && f.Block >= 0 {
		loc = fmt.Sprintf("block %d", f.Block)
		if f.Slot >= 0 {
			loc += fmt.Sprintf(" slot %d", f.Slot)
		}
	}
	if loc == "" {
		return fmt.Sprintf("%s: [%s] %s", f.Severity, f.Rule, f.Detail)
	}
	return fmt.Sprintf("%s: %s: [%s] %s", f.Severity, loc, f.Rule, f.Detail)
}

// Stat is one conformance measurement: a reconstructed statistic of the
// generated program against its profile-derived expectation.
type Stat struct {
	Name string  `json:"name"`
	Got  float64 `json:"got"`
	Want float64 `json:"want"`
	Err  float64 `json:"err"` // the distance the tolerance applies to
	Tol  float64 `json:"tol"`
	Pass bool    `json:"pass"`
}

// Report is the outcome of one verification run.
type Report struct {
	Name        string    `json:"name"`
	Findings    []Finding `json:"findings"`
	Conformance []Stat    `json:"conformance,omitempty"`
}

// add appends a finding.
func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// specFinding appends a clone-layer finding at block/slot (use -1 for n/a).
func (r *Report) specFinding(rule string, sev Severity, block, slot int, format string, args ...any) {
	r.add(Finding{Layer: "clone", Rule: rule, Severity: sev, Block: block, Slot: slot,
		Detail: fmt.Sprintf(format, args...)})
}

// Errors counts error-severity findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// OK reports whether the run produced no error-severity findings.
func (r *Report) OK() bool { return r.Errors() == 0 }

// JSON renders the report as machine-readable JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// String renders a human-readable report: findings ordered by severity,
// then the conformance table.
func (r *Report) String() string {
	var b strings.Builder
	order := map[Severity]int{SevError: 0, SevWarn: 1, SevInfo: 2}
	fs := append([]Finding(nil), r.Findings...)
	sort.SliceStable(fs, func(i, j int) bool { return order[fs[i].Severity] < order[fs[j].Severity] })
	for _, f := range fs {
		fmt.Fprintf(&b, "%s\n", f)
	}
	if len(r.Conformance) > 0 {
		fmt.Fprintf(&b, "%-22s %10s %10s %8s %8s  %s\n", "conformance", "got", "want", "err", "tol", "pass")
		for _, s := range r.Conformance {
			fmt.Fprintf(&b, "%-22s %10.4f %10.4f %8.4f %8.4f  %v\n", s.Name, s.Got, s.Want, s.Err, s.Tol, s.Pass)
		}
	}
	if r.OK() {
		fmt.Fprintf(&b, "%s: ok (%d findings, 0 errors)\n", r.Name, len(r.Findings))
	} else {
		fmt.Fprintf(&b, "%s: FAILED (%d errors)\n", r.Name, r.Errors())
	}
	return b.String()
}

// Tolerances configures the conformance checks. A share check passes when
// |got-want| <= Abs or the relative error <= Rel; distribution checks
// compare total-variation or Kolmogorov–Smirnov distance against their
// dedicated bounds.
type Tolerances struct {
	ShareAbs  float64 // absolute slack for scalar shares (branch/mem/store/rep/ptr)
	ShareRel  float64 // relative slack for scalar shares
	MixTV     float64 // total-variation bound for the computational mix
	BranchTV  float64 // total-variation bound for the (M,N) branch histogram
	WSKS      float64 // Kolmogorov–Smirnov bound for IWS/DWS CDFs
	BudgetRel float64 // relative bound for the per-request instruction budget
}

// DefaultTolerances matches the sampling noise of realistic block sizes:
// shares are estimated over thousands of dynamically weighted slots, so a
// few percent absolute (or 30% relative, whichever is looser) separates
// generation bugs from sampling variance.
func DefaultTolerances() Tolerances {
	return Tolerances{
		ShareAbs:  0.04,
		ShareRel:  0.30,
		MixTV:     0.10,
		BranchTV:  0.10,
		WSKS:      0.10,
		BudgetRel: 0.12,
	}
}

// Spec runs the Layer-1 clone verification of spec against the profile it
// was generated from.
func Spec(spec *core.SynthSpec, prof *profile.AppProfile, tol Tolerances) *Report {
	r := &Report{Name: spec.Name}
	checkStructure(r, spec)
	checkConformance(r, spec, prof, tol)
	return r
}

// InstallGenerateHook wires the clone verifier into core.Generate as a
// post-condition: every generated spec is structurally verified (the cheap
// layer; conformance is skipped so fine-tuning loops stay fast), and onFail
// is called with the report when verification finds errors. It returns a
// function restoring the previous hook.
func InstallGenerateHook(onFail func(*Report)) func() {
	prev := core.PostGenerate
	core.PostGenerate = func(spec *core.SynthSpec, prof *profile.AppProfile) {
		r := &Report{Name: spec.Name}
		checkStructure(r, spec)
		if !r.OK() {
			onFail(r)
		}
	}
	return func() { core.PostGenerate = prev }
}
