package verify

import (
	"ditto/internal/core"
	"ditto/internal/isa"
)

// This file builds a control-flow graph over a generated block's static
// code and runs the path-sensitive checks: branch-target integrity and
// register def-before-use.
//
// Generated blocks follow the paper's Fig. 3 shape: straight-line code
// looped LoopsPerRequest times, where every conditional branch is a
// bitmask-predicated jump to the next instruction (taken and fall-through
// edges converge immediately, so the branch perturbs the predictor without
// diverting control) and the loop back-edge closes the block. The CFG
// therefore has one node per branch-delimited run of instructions, an edge
// from each node to its successor, and a back edge from the last node to
// the first.

// cfgNode is one branch-delimited run of slots [start, end).
type cfgNode struct {
	start, end int
	succs      []int
}

// buildCFG cuts a block into nodes after every branch slot and wires the
// fall-through and loop edges. The caller guarantees len(Instrs) > 0.
func buildCFG(blk *core.Block) []cfgNode {
	var nodes []cfgNode
	start := 0
	for s := range blk.Instrs {
		isBr := int(blk.Instrs[s].Op) < isa.NumOps && isa.Table[blk.Instrs[s].Op].Branch
		if isBr || s == len(blk.Instrs)-1 {
			nodes = append(nodes, cfgNode{start: start, end: s + 1})
			start = s + 1
		}
	}
	for i := range nodes {
		next := i + 1
		if next == len(nodes) {
			next = 0 // loop back edge
		}
		// Taken and fall-through edges coincide (branch-to-next-line), so a
		// single successor captures both.
		nodes[i].succs = []int{next}
	}
	return nodes
}

// The register contract of generated code (Fig. 3 and the synth runtime):
// the prologue zeroes r0-r7 and x0-x11; the runtime owns r8 (branch-mask
// counter), r9 (loop counter), r10 (data-array base) and r11 (pointer-chase
// cell). Generated code may read any contract register, may write r0-r7 and
// x0-x11, and may write r11 only through the pointer-chase iform.
const (
	regContract  = (uint64(1)<<12 - 1) | ((uint64(1)<<12 - 1) << 16) // r0-r11, x0-x11
	regWritable  = (uint64(1)<<8 - 1) | ((uint64(1)<<12 - 1) << 16)  // r0-r7, x0-x11
	regChaseOnly = uint64(1) << 11                                   // r11: pointer-chase iform only
)

func regBit(r isa.Reg) uint64 {
	if r == isa.RegNone || uint8(r) >= isa.NumRegs {
		return 0
	}
	return uint64(1) << uint8(r)
}

// checkCFG verifies one block's control flow and register dataflow,
// appending findings to r.
func checkCFG(r *Report, bi int, blk *core.Block) {
	if len(blk.Instrs) == 0 {
		return
	}

	// Branch-target integrity: every branch's implicit target (the next
	// line) must be a real slot of this block; a branch in the final slot
	// targets the loop head. Broken PC layout makes a target dangle.
	for s, in := range blk.Instrs {
		if int(in.Op) >= isa.NumOps || !isa.Table[in.Op].Branch {
			continue
		}
		if s == len(blk.Instrs)-1 {
			continue // falls through to the loop close
		}
		target := in.PC + isa.InstrBytes
		if blk.Instrs[s+1].PC != target {
			r.specFinding("branch-target", SevError, bi, s,
				"branch at pc %#x targets %#x but the next slot is at %#x (dangling target)",
				in.PC, target, blk.Instrs[s+1].PC)
		}
	}

	// Register def-before-use: forward must-defined analysis to fixpoint,
	// join = intersection over predecessors, entry seeded with the contract
	// set. A source register that is not must-defined at its use is read
	// before any write on some path.
	nodes := buildCFG(blk)
	preds := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, s := range n.succs {
			preds[s] = append(preds[s], i)
		}
	}
	const all = ^uint64(0)
	in := make([]uint64, len(nodes))
	out := make([]uint64, len(nodes))
	for i := range out {
		out[i] = all // optimistic start; entry constraints pull it down
	}
	transfer := func(n cfgNode, def uint64) uint64 {
		for s := n.start; s < n.end; s++ {
			def |= regBit(blk.Instrs[s].Dst)
		}
		return def
	}
	for changed := true; changed; {
		changed = false
		for i, n := range nodes {
			newIn := all
			for _, p := range preds[i] {
				newIn &= out[p]
			}
			if i == 0 {
				newIn &= regContract // virtual entry edge
			}
			newOut := transfer(n, newIn)
			if newIn != in[i] || newOut != out[i] {
				in[i], out[i] = newIn, newOut
				changed = true
			}
		}
	}
	for i, n := range nodes {
		def := in[i]
		for s := n.start; s < n.end; s++ {
			inst := &blk.Instrs[s]
			for _, src := range [2]isa.Reg{inst.Src1, inst.Src2} {
				if src == isa.RegNone {
					continue
				}
				if b := regBit(src); b != 0 && def&b == 0 {
					r.specFinding("read-before-write", SevError, bi, s,
						"%s reads %v before any write on some path (outside the prologue contract)",
						opName(inst.Op), src)
				}
			}
			if inst.Dst != isa.RegNone {
				b := regBit(inst.Dst)
				switch {
				case b == regChaseOnly && inst.Op != isa.MOVptr:
					r.specFinding("reserved-register", SevError, bi, s,
						"%s writes r11, reserved for the pointer-chase cell", opName(inst.Op))
				case b != regChaseOnly && b&regWritable == 0:
					r.specFinding("reserved-register", SevError, bi, s,
						"%s writes %v, outside the writable contract set", opName(inst.Op), inst.Dst)
				}
				def |= b
			}
		}
	}
}

// opName names an opcode safely, including out-of-table values.
func opName(op isa.Op) string {
	if int(op) < isa.NumOps {
		return isa.Table[op].Name
	}
	return "op?"
}
