package verify

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden rewrites testdata/lint_report.golden from the current
// report instead of comparing against it.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// writeModule lays out a throwaway module for the linter to chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module lintfixture\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func rulesOf(r *Report) map[string]int {
	m := map[string]int{}
	for _, f := range r.Findings {
		m[f.Rule]++
	}
	return m
}

func TestLintFlagsNondeterminism(t *testing.T) {
	root := writeModule(t, map[string]string{
		"model/model.go": `package model

import (
	"math/rand"
	"time"
)

func Step(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	total += rand.Float64()
	start := time.Now()
	_ = time.Since(start)
	return total
}
`,
	})
	r, err := Lint(root, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	rules := rulesOf(r)
	if rules["map-range"] != 1 || rules["global-rand"] != 1 || rules["wall-clock"] != 2 {
		t.Fatalf("rules = %v, want 1 map-range, 1 global-rand, 2 wall-clock:\n%s", rules, r)
	}
	if r.OK() {
		t.Fatal("report with error findings must not be OK")
	}
	for _, f := range r.Findings {
		if !strings.Contains(f.Pos, "model.go:") {
			t.Fatalf("finding without a file position: %+v", f)
		}
	}
}

func TestLintAllowsDeterministicConstructs(t *testing.T) {
	root := writeModule(t, map[string]string{
		"model/model.go": `package model

import (
	"math/rand"
	"sort"
)

// Seeded streams and sorted-key iteration are the deterministic idiom.
func Sum(weights map[string]float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var keys []string
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := rng.Float64()
	for _, k := range keys {
		total += weights[k]
	}
	// ditto:determinism-ok commutative sum; order cannot reach the result
	for _, w := range weights {
		_ = w
	}
	total += sumSuppressedSameLine(weights)
	return total
}

func sumSuppressedSameLine(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // ditto:determinism-ok commutative
		s += v
	}
	return s
}
`,
		"model/model_test.go": `package model

import (
	"testing"
	"time"
)

func TestIgnored(t *testing.T) { _ = time.Now() }
`,
	})
	r, err := Lint(root, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || len(r.Findings) != 0 {
		t.Fatalf("clean package produced findings:\n%s", r)
	}
}

func TestLintResolvesModuleInternalImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"util/util.go": `package util

type Clock struct{ Ticks int64 }

func (c *Clock) Advance() { c.Ticks++ }
`,
		"model/model.go": `package model

import "lintfixture/util"

func Run(c *util.Clock, m map[int]int) {
	c.Advance()
	for k, v := range m {
		_, _ = k, v
	}
}
`,
	})
	r, err := Lint(root, []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	if rules := rulesOf(r); rules["map-range"] != 1 {
		t.Fatalf("rules = %v, want the map-range through a cross-package file", rules)
	}
}

// TestLintRepoIsClean is the self-test the CI lint job relies on: the
// full deterministic model surface of this repository must stay clean
// under every analyzer of the suite.
func TestLintRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole model surface; skipped in -short")
	}
	r, err := Lint(repoRoot(t), DeterministicPackages)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("deterministic packages have lint findings:\n%s", r)
	}
}

// TestNoallocRepoIsClean is the static twin of the AllocsPerRun gates:
// every ditto:noalloc-annotated hot path in the repository must compile
// without the escape analysis placing an allocation in its body.
func TestNoallocRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the annotated packages with -gcflags=-m; skipped in -short")
	}
	r, err := LintNoalloc(repoRoot(t), NoallocPackages)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("annotated hot paths gained heap allocations:\n%s", r)
	}
}

// TestLintJSONGolden pins the dittolint -json report schema over a fixture
// with one finding per analyzer: downstream tooling parses this document,
// so field names, rule strings, ordering and position format are contract.
// Regenerate with: go test ./internal/verify -run LintJSONGolden -update-golden
func TestLintJSONGolden(t *testing.T) {
	r, err := Lint(filepath.Join("testdata", "lintmod"), []string{"model"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "lint_report.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("-json report drifted from golden schema\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
