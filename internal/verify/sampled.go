package verify

import (
	"math"
	"sort"

	"ditto/internal/dtrace"
)

// This file is the error-budget half of the sampled steady-state contract
// (internal/steady): a sampled run must be metrically indistinguishable
// from the fully executed run it stands in for. CheckSampled compares the
// end-to-end latency distribution, the goodput, and the per-edge call
// graph of the two runs and reports every excursion beyond the budget as
// an error finding, reusing the conformance Report schema so dittolint
// -json and the test suite consume it unchanged.

// SampledBudget bounds the drift a sampled run may show against its full
// reference. Latency and goodput budgets are relative; edge-count budgets
// combine a relative bound with an absolute slack so low-traffic edges
// (a handful of retries per window) are judged by count distance, not by
// a meaningless ratio.
type SampledBudget struct {
	LatencyRel float64 // p50/p95/p99 relative drift bound
	GoodputRel float64 // goodput (received/s) relative drift bound
	EdgeRel    float64 // per-edge Calls/Retries/Errors relative bound
	EdgeAbs    float64 // absolute slack for small per-edge counts
}

// DefaultSampledBudget is the budget the PR's acceptance gate enforces:
// under 1% on the latency percentiles and goodput — the paper-facing
// metrics every figure reports — and 2% (or ±4 events on sparse edges)
// on the per-edge call-graph statistics.
func DefaultSampledBudget() SampledBudget {
	return SampledBudget{LatencyRel: 0.01, GoodputRel: 0.01, EdgeRel: 0.02, EdgeAbs: 4}
}

// SampledRun is the measurement summary CheckSampled compares: the
// end-to-end percentiles and goodput of one run plus (for multi-tier
// deployments) the call-graph edges BuildGraph derived from its spans.
type SampledRun struct {
	P50Ms, P95Ms, P99Ms float64
	Goodput             float64
	Edges               []dtrace.Edge
}

// CheckSampled verifies a sampled run against its fully executed
// reference under the budget. Edges present in only one run are compared
// against zero counts — a sampled run may not invent or drop call-graph
// edges beyond the absolute slack.
func CheckSampled(name string, full, sampled SampledRun, b SampledBudget) *Report {
	r := &Report{Name: name}
	rel := func(stat string, got, want, tol float64) {
		r.stat(stat, got, want, math.Abs(got-want), tol*math.Abs(want))
	}
	rel("p50", sampled.P50Ms, full.P50Ms, b.LatencyRel)
	rel("p95", sampled.P95Ms, full.P95Ms, b.LatencyRel)
	rel("p99", sampled.P99Ms, full.P99Ms, b.LatencyRel)
	rel("goodput", sampled.Goodput, full.Goodput, b.GoodputRel)

	fullE := edgeIndex(full.Edges)
	sampE := edgeIndex(sampled.Edges)
	count := func(stat string, got, want int) {
		eff := b.EdgeRel * math.Abs(float64(want))
		if b.EdgeAbs > eff {
			eff = b.EdgeAbs
		}
		r.stat(stat, float64(got), float64(want), math.Abs(float64(got-want)), eff)
	}
	for _, key := range edgeKeys(fullE, sampE) {
		f, s := fullE[key], sampE[key]
		count(key+" calls", s.Calls, f.Calls)
		count(key+" retries", s.Retries, f.Retries)
		count(key+" errors", s.Errors, f.Errors)
	}
	return r
}

func edgeIndex(edges []dtrace.Edge) map[string]dtrace.Edge {
	m := make(map[string]dtrace.Edge, len(edges))
	for _, e := range edges {
		m[e.From+"->"+e.To] = e
	}
	return m
}

func edgeKeys(ms ...map[string]dtrace.Edge) []string {
	seen := map[string]bool{}
	var keys []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}
