package kernel

import (
	"ditto/internal/isa"
	"ditto/internal/sim"
)

// SyscallOp identifies a system call in the observation log and in the
// kernel-stream cost table.
type SyscallOp uint8

// System calls the simulated kernel implements.
const (
	SysOpen SyscallOp = iota
	SysClose
	SysPread
	SysWrite
	SysSocket
	SysConnect
	SysAccept
	SysListen
	SysSend
	SysRecv
	SysEpollWait
	SysEpollCtl
	SysClone
	SysFutex
	SysNanosleep
	SysMmap
	SysFsync
	opCtxSwitch // internal: scheduler context-switch path
	NumSyscalls = int(opCtxSwitch)
)

var sysNames = [...]string{
	"open", "close", "pread", "write", "socket", "connect", "accept",
	"listen", "send", "recv", "epoll_wait", "epoll_ctl", "clone", "futex",
	"nanosleep", "mmap", "fsync", "ctxswitch",
}

// String returns the syscall name.
func (s SyscallOp) String() string {
	if int(s) < len(sysNames) {
		return sysNames[s]
	}
	return "sys?"
}

// SyscallEvent is one entry in the syscall log — what the SystemTap-based
// profiler of §4.4.1 consumes: type, byte count, file-descriptor class, and
// arguments.
type SyscallEvent struct {
	Time    sim.Time
	TID     int
	Proc    string
	Op      SyscallOp
	Bytes   int
	Offset  int64  // file offset for pread/write
	FDClass string // "file:<name>", "socket", "" — the profiled fd flags
}

// ThreadEventKind classifies thread lifecycle events.
type ThreadEventKind uint8

// Thread lifecycle kinds.
const (
	ThreadSpawn ThreadEventKind = iota
	ThreadExit
	ThreadWake
)

// ThreadEvent is one thread lifecycle observation, used by the thread-model
// analyzer (§4.3.2) to classify threads as long- or short-lived and find
// their trigger points.
type ThreadEvent struct {
	Time   sim.Time
	TID    int
	Proc   string
	Thread string
	Kind   ThreadEventKind
	Source string // wake trigger: "socket", "timer", "futex", "cpu", "spawn"
}

// syscallEnter charges the kernel-side instruction stream for op (including
// any payload copy) to the calling thread and logs the event. It returns
// after the CPU part of the syscall completes; device waits are layered on
// top by the specific syscall implementations.
func (t *Thread) syscallEnter(op SyscallOp, bytes int, fdClass string) {
	t.syscallEnterOff(op, bytes, 0, fdClass)
}

func (t *Thread) syscallEnterOff(op SyscallOp, bytes int, off int64, fdClass string) {
	k := t.k
	for _, f := range k.sysObs {
		f(SyscallEvent{Time: k.eng.Now(), TID: t.ID, Proc: t.Proc.Name,
			Op: op, Bytes: bytes, Offset: off, FDClass: fdClass})
	}
	tr := k.kstream(op)
	if bytes > 0 {
		// copy_to_user / copy_from_user of the payload, touching a user
		// buffer in the calling process's address space.
		t.tail[0] = isa.Instr{Op: isa.REPMOVSB, PC: kernelTextBase + uint64(op)<<20,
			Addr: t.Proc.MemBase + 1<<30, RepCount: int32(bytes), BranchID: -1,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Kernel: true}
		t.itemBuf[0] = burstItem{trace: tr}
		t.itemBuf[1] = burstItem{stream: t.tail[:]}
		t.compute(t.itemBuf[:2])
		return
	}
	t.itemBuf[0] = burstItem{trace: tr}
	t.compute(t.itemBuf[:1])
}
