package kernel

// Sockets, connections, and epoll. A connection is a pair of message
// queues; sending charges the TCP transmit path and hands the bytes to
// netsim, delivery wakes blocked receivers and epoll waiters. The three
// server-side network models of §4.3.1 are all expressible: blocking
// (Recv), I/O multiplexing (EpollWait), and non-blocking (TryRecv polling).

import (
	"ditto/internal/netsim"
	"ditto/internal/sim"
)

// Msg is one application-level message on a connection.
type Msg struct {
	Bytes   int
	Payload any
	Sent    sim.Time
}

// connSide is one direction's receive state.
type connSide struct {
	k       *Kernel
	proc    *Proc
	inbox   []Msg
	waiters []*Thread
	epolls  []*Epoll
	peer    *connSide
	closed  bool
}

// Endpoint is one side's handle on a connection.
type Endpoint struct {
	mine *connSide
	peer *connSide
}

// Kernel returns the kernel that owns this endpoint.
func (e *Endpoint) Kernel() *Kernel { return e.mine.k }

// Pending reports queued, undelivered-to-app messages.
func (e *Endpoint) Pending() int { return len(e.mine.inbox) }

// Listener accepts incoming connections on a port.
type Listener struct {
	k       *Kernel
	Port    int
	backlog []*Endpoint
	waiters []*Thread
	epolls  []*Epoll
}

// Listen binds a listener to port on the thread's kernel.
func (t *Thread) Listen(port int) *Listener {
	t.syscallEnter(SysSocket, 0, "socket")
	t.syscallEnter(SysListen, 0, "socket")
	l := &Listener{k: t.k, Port: port}
	t.k.listeners[port] = l
	return l
}

// Connect establishes a connection from the calling thread's kernel to a
// listener on dst:port, paying one network round trip for the handshake.
func (t *Thread) Connect(dst *Kernel, port int) *Endpoint {
	t.syscallEnter(SysSocket, 0, "socket")
	t.syscallEnter(SysConnect, 0, "socket")
	k := t.k
	// Retry until the server binds the port (connection-refused retry loop,
	// as real clients do at startup).
	l := dst.listeners[port]
	for l == nil {
		t.Sleep(200 * sim.Microsecond)
		l = dst.listeners[port]
	}
	a := &connSide{k: k, proc: t.Proc}
	b := &connSide{k: dst}
	a.peer, b.peer = b, a
	client := &Endpoint{mine: a, peer: b}
	server := &Endpoint{mine: b, peer: a}

	// SYN + SYN/ACK: one RTT before the server sees the connection.
	path := k.path(dst)
	rtt := path.RTT
	if path.Loopback {
		rtt = netsim.LoopbackRTT
	}
	deadline := k.eng.Now() + rtt
	k.eng.ScheduleFunc(deadline, func() {
		l.backlog = append(l.backlog, server)
		wakeAll(l.k, &l.waiters, "socket")
		notifyEpolls(l.k, l.epolls)
		k.wake(t, "socket")
	})
	for k.eng.Now() < deadline {
		t.park()
	}
	return client
}

// Accept dequeues one pending connection, blocking while the backlog is
// empty.
func (t *Thread) Accept(l *Listener) *Endpoint {
	t.syscallEnter(SysAccept, 0, "socket")
	for len(l.backlog) == 0 {
		l.waiters = append(l.waiters, t)
		t.park()
	}
	ep := l.backlog[0]
	l.backlog = l.backlog[1:]
	ep.mine.proc = t.Proc
	return ep
}

// TryAccept dequeues a pending connection without blocking, returning nil
// when the backlog is empty.
func (t *Thread) TryAccept(l *Listener) *Endpoint {
	if len(l.backlog) == 0 {
		return nil
	}
	return t.Accept(l)
}

// Send transmits a message. The caller pays the TCP transmit path (scaled
// by size) and returns once the data is handed to the NIC; delivery is
// asynchronous.
func (t *Thread) Send(e *Endpoint, bytes int, payload any) {
	t.syscallEnter(SysSend, bytes, "socket")
	t.Proc.NetTxBytes += uint64(bytes)
	k := t.k
	dstSide := e.peer
	path := k.path(dstSide.k)
	msg := Msg{Bytes: bytes, Payload: payload, Sent: k.eng.Now()}
	netsim.Send(k.eng, path, bytes, func() {
		if dstSide.closed {
			return
		}
		dstSide.inbox = append(dstSide.inbox, msg)
		if dstSide.proc != nil {
			dstSide.proc.NetRxBytes += uint64(bytes)
		}
		wakeAll(dstSide.k, &dstSide.waiters, "socket")
		notifyEpolls(dstSide.k, dstSide.epolls)
	})
}

// Recv blocks until a message arrives, then charges the receive path
// (bottom half + copy to user) and returns it.
func (t *Thread) Recv(e *Endpoint) Msg {
	side := e.mine
	for len(side.inbox) == 0 {
		side.waiters = append(side.waiters, t)
		t.park()
	}
	msg := side.inbox[0]
	side.inbox = side.inbox[1:]
	t.syscallEnter(SysRecv, msg.Bytes, "socket")
	return msg
}

// TryRecv returns a queued message without blocking. ok is false when the
// inbox is empty; the recv syscall is charged either way (the non-blocking
// model's polling cost, §4.3.1).
func (t *Thread) TryRecv(e *Endpoint) (Msg, bool) {
	side := e.mine
	if len(side.inbox) == 0 {
		t.syscallEnter(SysRecv, 0, "socket")
		return Msg{}, false
	}
	msg := side.inbox[0]
	side.inbox = side.inbox[1:]
	t.syscallEnter(SysRecv, msg.Bytes, "socket")
	return msg, true
}

// CloseConn tears down the endpoint's receive side.
func (t *Thread) CloseConn(e *Endpoint) {
	t.syscallEnter(SysClose, 0, "socket")
	e.mine.closed = true
	e.mine.inbox = nil
}

// path resolves the network path between two kernels.
func (k *Kernel) path(dst *Kernel) netsim.Path {
	if dst == k || k.fabric == nil {
		return netsim.Path{Loopback: true}
	}
	return k.fabric.Path(k, dst)
}

// wakeAll wakes and clears a waiter list.
func wakeAll(k *Kernel, waiters *[]*Thread, source string) {
	ws := *waiters
	*waiters = nil
	for _, w := range ws {
		k.wake(w, source)
	}
}

// notifyEpolls wakes the waiters of each epoll instance.
func notifyEpolls(k *Kernel, eps []*Epoll) {
	for _, ep := range eps {
		wakeAll(k, &ep.waiters, "socket")
	}
}

// Epoll is an I/O-multiplexing readiness set (level-triggered).
type Epoll struct {
	k         *Kernel
	conns     []*Endpoint
	listeners []*Listener
	waiters   []*Thread
}

// NewEpoll creates an epoll instance.
func (k *Kernel) NewEpoll() *Epoll { return &Epoll{k: k} }

// EpollAdd registers an endpoint for readiness notification. Waiters are
// woken so data queued before registration is not missed.
func (t *Thread) EpollAdd(ep *Epoll, e *Endpoint) {
	t.syscallEnter(SysEpollCtl, 0, "socket")
	ep.conns = append(ep.conns, e)
	e.mine.epolls = append(e.mine.epolls, ep)
	if len(e.mine.inbox) > 0 {
		wakeAll(ep.k, &ep.waiters, "socket")
	}
}

// EpollAddListener registers a listener for readiness notification.
func (t *Thread) EpollAddListener(ep *Epoll, l *Listener) {
	t.syscallEnter(SysEpollCtl, 0, "socket")
	ep.listeners = append(ep.listeners, l)
	l.epolls = append(l.epolls, ep)
}

// Ready is one readiness report from EpollWait: exactly one field is set.
type Ready struct {
	Conn     *Endpoint
	Listener *Listener
}

// EpollWait blocks until at least one registered source is readable and
// returns the ready set (level-triggered scan).
func (t *Thread) EpollWait(ep *Epoll) []Ready {
	t.syscallEnter(SysEpollWait, 0, "socket")
	for {
		var ready []Ready
		for _, e := range ep.conns {
			if len(e.mine.inbox) > 0 {
				ready = append(ready, Ready{Conn: e})
			}
		}
		for _, l := range ep.listeners {
			if len(l.backlog) > 0 {
				ready = append(ready, Ready{Listener: l})
			}
		}
		if len(ready) > 0 {
			return ready
		}
		ep.waiters = append(ep.waiters, t)
		t.park()
	}
}
