package kernel

// Sockets, connections, and epoll. A connection is a pair of message
// queues; sending charges the TCP transmit path and hands the bytes to
// netsim, delivery wakes blocked receivers and epoll waiters. The three
// server-side network models of §4.3.1 are all expressible: blocking
// (Recv), I/O multiplexing (EpollWait), and non-blocking (TryRecv polling).

import (
	"ditto/internal/netsim"
	"ditto/internal/sim"
)

// Msg is one application-level message on a connection.
type Msg struct {
	Bytes   int
	Payload any
	Sent    sim.Time
}

// connSide is one direction's receive state. All mutable fields are owned by
// the side's kernel and only ever touched on its shard; what the remote end
// knows about us arrives as messages (FIN → peerClosed), never as a direct
// read of our fields.
type connSide struct {
	k       *Kernel
	proc    *Proc
	inbox   []Msg
	waiters []*Thread
	epolls  []*Epoll
	peer    *connSide
	closed  bool
	// peerClosed records that the remote side closed, learned one one-way
	// link delay after the fact (the FIN's flight time). Local state only:
	// reading peer.closed directly would cross shards.
	peerClosed bool
}

// Endpoint is one side's handle on a connection.
type Endpoint struct {
	mine *connSide
	peer *connSide
}

// Kernel returns the kernel that owns this endpoint.
func (e *Endpoint) Kernel() *Kernel { return e.mine.k }

// Pending reports queued, undelivered-to-app messages.
func (e *Endpoint) Pending() int { return len(e.mine.inbox) }

// Dead reports whether this side has closed or has learned (via the peer's
// FIN) that the remote side closed — the signal a resilient client uses to
// discard a cached connection to a crashed peer and re-dial. A remote crash
// becomes visible one one-way link delay after it happens, as on a real
// network.
func (e *Endpoint) Dead() bool { return e.mine.closed || e.mine.peerClosed }

// Listener accepts incoming connections on a port.
type Listener struct {
	k       *Kernel
	proc    *Proc // owning process; KillProc unbinds its listeners
	Port    int
	backlog []*Endpoint
	waiters []*Thread
	epolls  []*Epoll
}

// Listen binds a listener to port on the thread's kernel.
func (t *Thread) Listen(port int) *Listener {
	t.syscallEnter(SysSocket, 0, "socket")
	t.syscallEnter(SysListen, 0, "socket")
	l := &Listener{k: t.k, proc: t.Proc, Port: port}
	t.k.listeners[port] = l
	return l
}

// Connect establishes a connection from the calling thread's kernel to a
// listener on dst:port, paying one network round trip for the handshake.
// It retries forever while the port is unbound; use ConnectTimeout when the
// destination may be crashed.
func (t *Thread) Connect(dst *Kernel, port int) *Endpoint {
	return t.connect(dst, port, -1)
}

// ConnectTimeout is Connect with a bounded bind wait: it returns nil when
// no listener claims dst:port within d — how a resilient client observes a
// crashed-and-not-yet-restarted server.
func (t *Thread) ConnectTimeout(dst *Kernel, port int, d sim.Time) *Endpoint {
	if d < 0 {
		d = 0
	}
	return t.connect(dst, port, t.k.eng.Now()+d)
}

// connect implements Connect/ConnectTimeout; deadline < 0 retries forever.
//
// The handshake is a real SYN/SYN-ACK exchange so that every touch of the
// server's state happens on the server's own timeline: the SYN crosses the
// link in one one-way delay and is judged against the listener table at that
// instant (binding or refusing on the server's shard), and the verdict rides
// the SYN/ACK back — the client learns the outcome one full RTT after
// sending, refused and accepted alike. A refused attempt sleeps 200µs and
// retries (the connection-refused retry loop real clients run at startup).
func (t *Thread) connect(dst *Kernel, port int, deadline sim.Time) *Endpoint {
	t.syscallEnter(SysSocket, 0, "socket")
	t.syscallEnter(SysConnect, 0, "socket")
	k := t.k
	path := k.path(dst)
	rtt := path.RTT
	if path.Loopback {
		rtt = netsim.LoopbackRTT
	}
	half := rtt / 2
	for {
		a := &connSide{k: k, proc: t.Proc}
		k.sides = append(k.sides, a)
		var accepted, done bool
		k.eng.ScheduleCross(dst.eng, k.eng.Now()+half, func() {
			var b *connSide
			if l := dst.listeners[port]; l != nil {
				b = &connSide{k: dst, peer: a}
				dst.sides = append(dst.sides, b)
				l.backlog = append(l.backlog, &Endpoint{mine: b, peer: a})
				wakeAll(dst, &l.waiters, "socket")
				notifyEpolls(dst, l.epolls)
			}
			dst.eng.ScheduleCross(k.eng, dst.eng.Now()+half, func() {
				if b != nil {
					a.peer = b
					accepted = true
				}
				done = true
				k.wake(t, "socket")
			})
		})
		for !done {
			t.park()
		}
		if accepted {
			return &Endpoint{mine: a, peer: a.peer}
		}
		a.closed = true // half-open side of the refused attempt
		if deadline >= 0 && k.eng.Now() >= deadline {
			return nil
		}
		wait := 200 * sim.Microsecond
		if deadline >= 0 && k.eng.Now()+wait > deadline {
			wait = deadline - k.eng.Now()
		}
		t.Sleep(wait)
	}
}

// Accept dequeues one pending connection, blocking while the backlog is
// empty.
func (t *Thread) Accept(l *Listener) *Endpoint {
	t.syscallEnter(SysAccept, 0, "socket")
	for len(l.backlog) == 0 {
		l.waiters = append(l.waiters, t)
		t.park()
	}
	ep := l.backlog[0]
	l.backlog = l.backlog[1:]
	ep.mine.proc = t.Proc
	return ep
}

// TryAccept dequeues a pending connection without blocking, returning nil
// when the backlog is empty.
func (t *Thread) TryAccept(l *Listener) *Endpoint {
	if len(l.backlog) == 0 {
		return nil
	}
	return t.Accept(l)
}

// Send transmits a message. The caller pays the TCP transmit path (scaled
// by size) and returns once the data is handed to the NIC; delivery is
// asynchronous via a pooled delivery event.
func (t *Thread) Send(e *Endpoint, bytes int, payload any) {
	t.syscallEnter(SysSend, bytes, "socket")
	t.Proc.NetTxBytes += uint64(bytes)
	k := t.k
	dstSide := e.peer
	path := k.path(dstSide.k)
	d := k.newDelivery(dstSide, Msg{Bytes: bytes, Payload: payload, Sent: k.eng.Now()})
	netsim.Send(k.eng, path, bytes, d.fn)
}

// delivery is one in-flight message handoff: the callback netsim invokes at
// arrival time. Objects recycle through a kernel pool; the bound fn closure
// is allocated once per object. A faulted-and-dropped send never fires its
// callback, so that object simply stays out of the pool.
type delivery struct {
	k    *Kernel // pool owner (the kernel whose shard runs the delivery)
	side *connSide
	msg  Msg
	fn   func()
}

// newDelivery takes a delivery object from the pool (or mints one) and arms
// it with the destination and message. When the destination side lives on
// another shard the object is minted fresh and owned by the destination
// kernel: run() executes over there and returns it to that kernel's pool —
// touching the sender's pool from the destination shard (or vice versa)
// would be a cross-shard mutation.
func (k *Kernel) newDelivery(side *connSide, msg Msg) *delivery {
	if side.k.eng != k.eng {
		d := &delivery{k: side.k}
		d.fn = d.run
		d.side = side
		d.msg = msg
		return d
	}
	var d *delivery
	if n := len(k.deliveries); n > 0 {
		d = k.deliveries[n-1]
		k.deliveries = k.deliveries[:n-1]
	} else {
		d = &delivery{k: k}
		d.fn = d.run
	}
	d.side = side
	d.msg = msg
	return d
}

// run performs the delivery: queue the message, account received bytes, and
// wake blocked receivers and epoll waiters. The object returns to the pool
// first — the event is single-shot, so it is free for reuse the moment its
// payload has been copied out.
func (d *delivery) run() {
	side, msg := d.side, d.msg
	d.side = nil
	d.msg = Msg{}
	d.k.deliveries = append(d.k.deliveries, d)
	if side.closed {
		return
	}
	side.inbox = append(side.inbox, msg)
	if side.proc != nil {
		side.proc.NetRxBytes += uint64(msg.Bytes)
	}
	wakeAll(side.k, &side.waiters, "socket")
	notifyEpolls(side.k, side.epolls)
}

// Recv blocks until a message arrives, then charges the receive path
// (bottom half + copy to user) and returns it.
func (t *Thread) Recv(e *Endpoint) Msg {
	side := e.mine
	for len(side.inbox) == 0 {
		side.waiters = append(side.waiters, t)
		t.park()
	}
	msg := side.inbox[0]
	side.inbox = side.inbox[1:]
	t.syscallEnter(SysRecv, msg.Bytes, "socket")
	return msg
}

// RecvTimeout blocks until a message arrives or d elapses, whichever comes
// first. ok is false on timeout and when either side of the connection is
// closed (a crashed peer fails the receive immediately rather than hanging
// for the full timeout). The recv syscall is charged either way.
func (t *Thread) RecvTimeout(e *Endpoint, d sim.Time) (Msg, bool) {
	side := e.mine
	if len(side.inbox) == 0 {
		deadline := t.k.eng.Now() + d
		t.k.eng.ScheduleFunc(deadline, t.wakeTimer())
		for len(side.inbox) == 0 {
			if side.closed || side.peerClosed || t.k.eng.Now() >= deadline {
				t.syscallEnter(SysRecv, 0, "socket")
				return Msg{}, false
			}
			side.waiters = append(side.waiters, t)
			t.park()
		}
	}
	msg := side.inbox[0]
	side.inbox = side.inbox[1:]
	t.syscallEnter(SysRecv, msg.Bytes, "socket")
	return msg, true
}

// TryRecv returns a queued message without blocking. ok is false when the
// inbox is empty; the recv syscall is charged either way (the non-blocking
// model's polling cost, §4.3.1).
func (t *Thread) TryRecv(e *Endpoint) (Msg, bool) {
	side := e.mine
	if len(side.inbox) == 0 {
		t.syscallEnter(SysRecv, 0, "socket")
		return Msg{}, false
	}
	msg := side.inbox[0]
	side.inbox = side.inbox[1:]
	t.syscallEnter(SysRecv, msg.Bytes, "socket")
	return msg, true
}

// CloseConn tears down the endpoint's receive side and sends the peer a FIN.
func (t *Thread) CloseConn(e *Endpoint) {
	t.syscallEnter(SysClose, 0, "socket")
	t.k.closeSide(e.mine)
}

// closeSide closes one connection side and notifies the peer's machine one
// one-way link delay later, waking anything blocked on the now-dead
// connection. The FIN is the only way close-ness propagates: the peer's
// fields are never read or written from this shard.
func (k *Kernel) closeSide(s *connSide) {
	if s.closed {
		return
	}
	s.closed = true
	s.inbox = nil
	peer := s.peer
	if peer == nil {
		return
	}
	path := k.path(peer.k)
	half := path.RTT / 2
	if path.Loopback {
		half = netsim.LoopbackRTT / 2
	}
	pk := peer.k
	k.eng.ScheduleCross(pk.eng, k.eng.Now()+half, func() {
		if peer.peerClosed {
			return
		}
		peer.peerClosed = true
		wakeAll(pk, &peer.waiters, "socket")
		notifyEpolls(pk, peer.epolls)
	})
}

// path resolves the network path between two kernels.
func (k *Kernel) path(dst *Kernel) netsim.Path {
	if dst == k || k.fabric == nil {
		return netsim.Path{Loopback: true}
	}
	return k.fabric.Path(k, dst)
}

// wakeAll wakes and clears a waiter list.
func wakeAll(k *Kernel, waiters *[]*Thread, source string) {
	ws := *waiters
	*waiters = nil
	for _, w := range ws {
		k.wake(w, source)
	}
}

// notifyEpolls wakes the waiters of each epoll instance.
func notifyEpolls(k *Kernel, eps []*Epoll) {
	for _, ep := range eps {
		wakeAll(k, &ep.waiters, "socket")
	}
}

// Epoll is an I/O-multiplexing readiness set (level-triggered).
type Epoll struct {
	k         *Kernel
	conns     []*Endpoint
	listeners []*Listener
	waiters   []*Thread
	ready     []Ready // reusable EpollWait result buffer
}

// NewEpoll creates an epoll instance.
func (k *Kernel) NewEpoll() *Epoll { return &Epoll{k: k} }

// EpollAdd registers an endpoint for readiness notification. Waiters are
// woken so data queued before registration is not missed.
func (t *Thread) EpollAdd(ep *Epoll, e *Endpoint) {
	t.syscallEnter(SysEpollCtl, 0, "socket")
	ep.conns = append(ep.conns, e)
	e.mine.epolls = append(e.mine.epolls, ep)
	if len(e.mine.inbox) > 0 {
		wakeAll(ep.k, &ep.waiters, "socket")
	}
}

// EpollAddListener registers a listener for readiness notification.
func (t *Thread) EpollAddListener(ep *Epoll, l *Listener) {
	t.syscallEnter(SysEpollCtl, 0, "socket")
	ep.listeners = append(ep.listeners, l)
	l.epolls = append(l.epolls, ep)
}

// Ready is one readiness report from EpollWait: exactly one field is set.
type Ready struct {
	Conn     *Endpoint
	Listener *Listener
}

// EpollWait blocks until at least one registered source is readable and
// returns the ready set (level-triggered scan). The returned slice reuses
// the epoll instance's buffer: it is valid until the next EpollWait on the
// same instance.
func (t *Thread) EpollWait(ep *Epoll) []Ready {
	t.syscallEnter(SysEpollWait, 0, "socket")
	for {
		ready := ep.ready[:0]
		for _, e := range ep.conns {
			if len(e.mine.inbox) > 0 {
				ready = append(ready, Ready{Conn: e})
			}
		}
		for _, l := range ep.listeners {
			if len(l.backlog) > 0 {
				ready = append(ready, Ready{Listener: l})
			}
		}
		ep.ready = ready
		if len(ready) > 0 {
			return ready
		}
		ep.waiters = append(ep.waiters, t)
		t.park()
	}
}
