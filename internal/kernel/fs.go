package kernel

// Filesystem and page cache. Reads consult an LRU page cache sized by
// Resources.PageCachePages; contiguous missing pages are batched into one
// disk request, so sequential scans cost one seek while random reads on a
// dataset larger than the cache pay per-access device latency — the
// MongoDB-vs-Memcached asymmetry in the paper's evaluation.

// PageBytes is the page size used by the page cache.
const PageBytes = 4096

// File is a named file with a fixed size.
type File struct {
	Name string
	Size int64
	id   uint64
	tag  string // "file:"+Name, precomputed for the syscall event log
}

// CreateFile registers a file of the given size on the kernel (dataset
// setup; contents are not modeled, only geometry).
func (k *Kernel) CreateFile(name string, size int64) *File {
	k.nextFS++
	f := &File{Name: name, Size: size, id: k.nextFS, tag: "file:" + name}
	k.files[name] = f
	return f
}

// LookupFile returns a previously created file, or nil.
func (k *Kernel) LookupFile(name string) *File { return k.files[name] }

// FD is an open file descriptor.
type FD struct {
	File *File
}

// Open opens a file by name, charging the open(2) path. Opening a missing
// file panics: in this simulation it is always a harness bug. Descriptors
// recycle through the thread's pool (CloseFD refills it), so the steady
// open/read/close request pattern allocates nothing.
func (t *Thread) Open(name string) *FD {
	f := t.k.files[name]
	if f == nil {
		panic("kernel: open of missing file " + name)
	}
	t.syscallEnter(SysOpen, 0, f.tag)
	if n := len(t.fdPool); n > 0 {
		fd := t.fdPool[n-1]
		t.fdPool = t.fdPool[:n-1]
		fd.File = f
		return fd
	}
	return &FD{File: f}
}

// CloseFD closes a descriptor and recycles it. The descriptor must not be
// used after closing.
func (t *Thread) CloseFD(fd *FD) {
	t.syscallEnter(SysClose, 0, fd.File.tag)
	fd.File = nil
	t.fdPool = append(t.fdPool, fd)
}

// Pread reads bytes at offset, blocking on the disk for any pages missing
// from the page cache.
func (t *Thread) Pread(fd *FD, bytes int, offset int64) {
	t.syscallEnterOff(SysPread, bytes, offset, fd.File.tag)
	if bytes <= 0 {
		return
	}
	k := t.k
	first := offset / PageBytes
	last := (offset + int64(bytes) - 1) / PageBytes

	// Collect contiguous runs of missing pages into the thread's reusable
	// buffer (a thread has at most one Pread in flight).
	runs := t.preadRuns[:0]
	missing := 0
	for p := first; p <= last; p++ {
		if k.pages.touch(pageKey{file: fd.File.id, page: p}) {
			if missing > 0 {
				runs = append(runs, missing)
				missing = 0
			}
		} else {
			missing++
		}
	}
	if missing > 0 {
		runs = append(runs, missing)
	}
	t.preadRuns = runs
	if len(runs) == 0 || k.res.Disk == nil {
		return
	}
	if t.diskFn == nil {
		t.diskFn = func() {
			t.diskPending--
			if t.diskPending == 0 {
				t.k.wake(t, "disk")
			}
		}
	}
	t.diskPending = len(runs)
	for _, pages := range runs {
		n := pages * PageBytes
		t.Proc.DiskReadBytes += uint64(n)
		k.res.Disk.Read(n, t.diskFn)
	}
	for t.diskPending > 0 {
		t.park()
	}
}

// WriteFile writes bytes at offset: pages enter the cache and the disk
// write completes asynchronously (write-back), so the caller only pays the
// syscall cost.
func (t *Thread) WriteFile(fd *FD, bytes int, offset int64) {
	t.syscallEnterOff(SysWrite, bytes, offset, fd.File.tag)
	if bytes <= 0 {
		return
	}
	k := t.k
	first := offset / PageBytes
	last := (offset + int64(bytes) - 1) / PageBytes
	for p := first; p <= last; p++ {
		k.pages.insert(pageKey{file: fd.File.id, page: p})
	}
	t.Proc.DiskWritten += uint64(bytes)
	if k.res.Disk != nil {
		k.res.Disk.Write(bytes, nil)
	}
}

// WarmPages preloads n pages of a file into the page cache (dataset warmup
// before measurement, as the paper's load phase does).
func (k *Kernel) WarmPages(f *File, startPage, n int64) {
	for p := startPage; p < startPage+n; p++ {
		k.pages.insert(pageKey{file: f.id, page: p})
	}
}

// PageCacheResident reports the number of resident pages.
func (k *Kernel) PageCacheResident() int { return len(k.pages.m) }

// ---- page LRU ----

type pageKey struct {
	file uint64
	page int64
}

type pageNode struct {
	key        pageKey
	prev, next *pageNode
}

// pageLRU is a capacity-bounded LRU set of pages. Evicted nodes go on a
// free list: once the cache reaches capacity, insert/evict churn recycles
// nodes instead of allocating.
type pageLRU struct {
	cap  int
	m    map[pageKey]*pageNode
	head *pageNode // most recently used
	tail *pageNode // least recently used
	free *pageNode // recycled nodes, chained via next
}

func newPageLRU(capacity int) *pageLRU {
	return &pageLRU{cap: capacity, m: make(map[pageKey]*pageNode)}
}

// touch reports whether key is resident, promoting it if so.
func (l *pageLRU) touch(key pageKey) bool {
	n, ok := l.m[key]
	if !ok {
		l.insert(key)
		return false
	}
	l.moveToFront(n)
	return true
}

// insert adds key as MRU, evicting the LRU entry at capacity.
func (l *pageLRU) insert(key pageKey) {
	if n, ok := l.m[key]; ok {
		l.moveToFront(n)
		return
	}
	n := l.free
	if n != nil {
		l.free = n.next
		n.key = key
		n.prev, n.next = nil, nil
	} else {
		n = &pageNode{key: key}
	}
	l.m[key] = n
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	if len(l.m) > l.cap {
		evict := l.tail
		l.tail = evict.prev
		if l.tail != nil {
			l.tail.next = nil
		} else {
			l.head = nil
		}
		delete(l.m, evict.key)
		evict.prev = nil
		evict.next = l.free
		l.free = evict
	}
}

func (l *pageLRU) moveToFront(n *pageNode) {
	if l.head == n {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if l.tail == n {
		l.tail = n.prev
	}
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
}
