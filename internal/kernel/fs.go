package kernel

import (
	"sort"

	"ditto/internal/stats"
)

// Filesystem and page cache. Reads consult an LRU page cache sized by
// Resources.PageCachePages; contiguous missing pages are batched into one
// disk request, so sequential scans cost one seek while random reads on a
// dataset larger than the cache pay per-access device latency — the
// MongoDB-vs-Memcached asymmetry in the paper's evaluation.
//
// Writes are write-back with real durability semantics: WriteFile only
// dirties pages in the cache (charging the syscall), the device sees those
// pages when a dirty page is evicted (forced writeback) or when Fsync
// flushes the file — and Fsync blocks until every outstanding writeback for
// the file has drained to the disk. A process killed before fsync loses its
// un-fsynced dirty pages: they are dropped without ever reaching the
// device, which is exactly the crash-durability contract a WAL relies on.

// PageBytes is the page size used by the page cache.
const PageBytes = 4096

// File is a named file with a fixed size.
type File struct {
	Name string
	Size int64
	id   uint64
	tag  string // "file:"+Name, precomputed for the syscall event log

	// Dirty-page index: page number → the process that last dirtied it.
	// Dirty pages are always resident (eviction removes them here too), so
	// fsync and crash handling are O(dirty), not O(cache).
	dirty    map[int64]*Proc
	inflight int       // writebacks issued but not yet on stable storage
	waiters  []*Thread // threads blocked in Fsync on inflight == 0
	flushFn  func()    // reusable writeback-completion closure
	k        *Kernel
}

// CreateFile registers a file of the given size on the kernel (dataset
// setup; contents are not modeled, only geometry and durability state).
func (k *Kernel) CreateFile(name string, size int64) *File {
	k.nextFS++
	f := &File{Name: name, Size: size, id: k.nextFS, tag: "file:" + name,
		dirty: map[int64]*Proc{}, k: k}
	f.flushFn = func() {
		f.inflight--
		if f.inflight == 0 && len(f.waiters) > 0 {
			ws := f.waiters
			f.waiters = f.waiters[:0]
			for _, w := range ws {
				f.k.wake(w, "disk")
			}
		}
	}
	k.files[name] = f
	k.filesByID[f.id] = f
	return f
}

// LookupFile returns a previously created file, or nil.
func (k *Kernel) LookupFile(name string) *File { return k.files[name] }

// DirtyPages reports the number of un-fsynced dirty pages of f.
func (f *File) DirtyPages() int { return len(f.dirty) }

// FD is an open file descriptor.
type FD struct {
	File *File
}

// Open opens a file by name, charging the open(2) path. Opening a missing
// file panics: in this simulation it is always a harness bug. Descriptors
// recycle through the thread's pool (CloseFD refills it), so the steady
// open/read/close request pattern allocates nothing.
func (t *Thread) Open(name string) *FD {
	f := t.k.files[name]
	if f == nil {
		panic("kernel: open of missing file " + name)
	}
	t.syscallEnter(SysOpen, 0, f.tag)
	if n := len(t.fdPool); n > 0 {
		fd := t.fdPool[n-1]
		t.fdPool = t.fdPool[:n-1]
		fd.File = f
		return fd
	}
	return &FD{File: f}
}

// CloseFD closes a descriptor and recycles it. The descriptor must not be
// used after closing.
func (t *Thread) CloseFD(fd *FD) {
	t.syscallEnter(SysClose, 0, fd.File.tag)
	fd.File = nil
	t.fdPool = append(t.fdPool, fd)
}

// Pread reads bytes at offset, blocking on the disk for any pages missing
// from the page cache.
func (t *Thread) Pread(fd *FD, bytes int, offset int64) {
	t.syscallEnterOff(SysPread, bytes, offset, fd.File.tag)
	if bytes <= 0 {
		return
	}
	k := t.k
	first := offset / PageBytes
	last := (offset + int64(bytes) - 1) / PageBytes

	// Collect contiguous runs of missing pages into the thread's reusable
	// buffer (a thread has at most one Pread in flight).
	runs := t.preadRuns[:0]
	missing := 0
	for p := first; p <= last; p++ {
		if k.pages.touch(pageKey{file: fd.File.id, page: p}) {
			k.pageHits++
			if missing > 0 {
				runs = append(runs, missing)
				missing = 0
			}
		} else {
			k.pageMisses++
			missing++
		}
	}
	if missing > 0 {
		runs = append(runs, missing)
	}
	t.preadRuns = runs
	if len(runs) == 0 || k.res.Disk == nil {
		return
	}
	if t.diskFn == nil {
		t.diskFn = func() {
			t.diskPending--
			if t.diskPending == 0 {
				t.k.wake(t, "disk")
			}
		}
	}
	t.diskPending = len(runs)
	for _, pages := range runs {
		n := pages * PageBytes
		t.Proc.DiskReadBytes += uint64(n)
		k.res.Disk.Read(n, t.diskFn)
	}
	for t.diskPending > 0 {
		t.park()
	}
}

// WriteFile writes bytes at offset: the touched pages enter the cache
// dirty and the caller only pays the syscall cost. The data reaches the
// device when a dirty page is evicted (forced writeback) or when Fsync
// flushes the file; until then a crash of the writing process loses it.
func (t *Thread) WriteFile(fd *FD, bytes int, offset int64) {
	t.syscallEnterOff(SysWrite, bytes, offset, fd.File.tag)
	if bytes <= 0 {
		return
	}
	k := t.k
	f := fd.File
	first := offset / PageBytes
	last := (offset + int64(bytes) - 1) / PageBytes
	for p := first; p <= last; p++ {
		f.dirty[p] = t.Proc
		k.pages.insertDirty(pageKey{file: f.id, page: p})
	}
	t.Proc.DiskWritten += uint64(bytes)
}

// Fsync flushes every dirty page of the descriptor's file to the disk and
// blocks until those writes — and any writebacks already in flight from
// dirty-page eviction — have drained. This is the durability point: pages
// flushed here survive a later KillProc of the writer.
func (t *Thread) Fsync(fd *FD) {
	f := fd.File
	t.syscallEnter(SysFsync, 0, f.tag)
	k := t.k
	start := k.eng.Now()
	k.flushFile(f)
	for f.inflight > 0 {
		f.waiters = append(f.waiters, t)
		t.park()
	}
	k.fsyncs++
	k.fsyncLat.Add((k.eng.Now() - start).Millis())
}

// flushFile issues disk writes for every dirty page of f, coalescing
// contiguous pages into single device requests (the elevator pass of a real
// flusher). Pages are marked clean immediately: the write is in flight and
// owned by the device, so a subsequent crash no longer loses it here.
func (k *Kernel) flushFile(f *File) {
	if len(f.dirty) == 0 {
		return
	}
	pages := k.flushBuf[:0]
	// ditto:determinism-ok reviewed: keys are collected then sorted below;
	// the flush order is independent of map iteration order.
	for p := range f.dirty {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	k.flushBuf = pages
	for _, p := range pages {
		delete(f.dirty, p)
		k.pages.setClean(pageKey{file: f.id, page: p})
	}
	if k.res.Disk == nil {
		return
	}
	run := 1
	for i := 1; i <= len(pages); i++ {
		if i < len(pages) && pages[i] == pages[i-1]+1 {
			run++
			continue
		}
		f.inflight++
		k.res.Disk.Write(run*PageBytes, f.flushFn)
		run = 1
	}
}

// pageEvicted is the page cache's eviction hook: evicting a dirty page
// forces its writeback — the data cannot be dropped, so the device pays for
// the write now and Fsync waits for it via the file's inflight count.
func (k *Kernel) pageEvicted(key pageKey, dirty bool) {
	if !dirty {
		return
	}
	f := k.filesByID[key.file]
	if f == nil {
		return
	}
	delete(f.dirty, key.page)
	if k.res.Disk == nil {
		return
	}
	f.inflight++
	k.res.Disk.Write(PageBytes, f.flushFn)
}

// dropDirty discards every un-fsynced dirty page last written by p — the
// crash half of the durability contract: data that never reached Fsync dies
// with its process and must not appear on the device afterwards. Pages stay
// resident but clean (contents are not modeled, only durability).
func (k *Kernel) dropDirty(p *Proc) {
	// ditto:determinism-ok reviewed: files are independent; the surviving
	// dirty set is the same whatever order the map yields.
	for _, f := range k.files {
		// ditto:determinism-ok reviewed: filtered delete-during-range; each
		// entry is judged independently by its owner.
		for page, owner := range f.dirty {
			if owner == p {
				delete(f.dirty, page)
				k.pages.setClean(pageKey{file: f.id, page: page})
			}
		}
	}
}

// WarmPages preloads n pages of a file into the page cache (dataset warmup
// before measurement, as the paper's load phase does).
func (k *Kernel) WarmPages(f *File, startPage, n int64) {
	for p := startPage; p < startPage+n; p++ {
		k.pages.insert(pageKey{file: f.id, page: p})
	}
}

// PageCacheResident reports the number of resident pages.
func (k *Kernel) PageCacheResident() int { return len(k.pages.m) }

// PageCacheStats reports cumulative read hits and misses (Pread touches).
func (k *Kernel) PageCacheStats() (hits, misses uint64) {
	return k.pageHits, k.pageMisses
}

// Fsyncs reports the number of completed fsync syscalls.
func (k *Kernel) Fsyncs() uint64 { return k.fsyncs }

// FsyncLatency returns the recorder of fsync wall times in milliseconds
// (reset it at a measurement-window edge to scope the percentiles).
func (k *Kernel) FsyncLatency() *stats.Recorder { return &k.fsyncLat }

// ---- page LRU ----

type pageKey struct {
	file uint64
	page int64
}

type pageNode struct {
	key        pageKey
	dirty      bool
	prev, next *pageNode
}

// pageLRU is a capacity-bounded LRU set of pages. Evicted nodes go on a
// free list: once the cache reaches capacity, insert/evict churn recycles
// nodes instead of allocating. Nodes carry a dirty bit; evicting a dirty
// node reports it through onEvict so the kernel can force the writeback.
type pageLRU struct {
	cap     int
	m       map[pageKey]*pageNode
	head    *pageNode // most recently used
	tail    *pageNode // least recently used
	free    *pageNode // recycled nodes, chained via next
	onEvict func(key pageKey, dirty bool)
}

func newPageLRU(capacity int) *pageLRU {
	return &pageLRU{cap: capacity, m: make(map[pageKey]*pageNode)}
}

// touch reports whether key is resident, promoting it if so.
func (l *pageLRU) touch(key pageKey) bool {
	n, ok := l.m[key]
	if !ok {
		l.insert(key)
		return false
	}
	l.moveToFront(n)
	return true
}

// insert adds key as MRU (clean), evicting the LRU entry at capacity.
func (l *pageLRU) insert(key pageKey) { l.insertState(key, false) }

// insertDirty adds key as MRU and marks it dirty — a buffered write that
// has not reached the disk yet.
func (l *pageLRU) insertDirty(key pageKey) { l.insertState(key, true) }

func (l *pageLRU) insertState(key pageKey, dirty bool) {
	if n, ok := l.m[key]; ok {
		n.dirty = n.dirty || dirty
		l.moveToFront(n)
		return
	}
	n := l.free
	if n != nil {
		l.free = n.next
		n.key = key
		n.prev, n.next = nil, nil
	} else {
		n = &pageNode{key: key}
	}
	n.dirty = dirty
	l.m[key] = n
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	if len(l.m) > l.cap {
		evict := l.tail
		l.tail = evict.prev
		if l.tail != nil {
			l.tail.next = nil
		} else {
			l.head = nil
		}
		delete(l.m, evict.key)
		ek, ed := evict.key, evict.dirty
		evict.dirty = false
		evict.prev = nil
		evict.next = l.free
		l.free = evict
		if l.onEvict != nil {
			l.onEvict(ek, ed)
		}
	}
}

// setClean clears key's dirty bit, if resident (flush or crash-drop).
func (l *pageLRU) setClean(key pageKey) {
	if n, ok := l.m[key]; ok {
		n.dirty = false
	}
}

func (l *pageLRU) moveToFront(n *pageNode) {
	if l.head == n {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if l.tail == n {
		l.tail = n.prev
	}
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
}
