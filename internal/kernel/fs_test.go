package kernel

import (
	"testing"

	"ditto/internal/sim"
)

// run spawns fn as a thread of a fresh proc and drives the engine dry.
func run(t *testing.T, eng *sim.Engine, k *Kernel, name string, fn func(*Thread)) {
	t.Helper()
	k.NewProc(name).Spawn(name, fn)
	eng.Run()
}

// TestWriteFileMarksPagesDirty: the write path must track written pages as
// dirty in the page cache, not just insert them — the first half of the
// durability contract.
func TestWriteFileMarksPagesDirty(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	f := k.CreateFile("wal", 1<<20)
	run(t, eng, k, "db", func(th *Thread) {
		fd := th.Open("wal")
		th.WriteFile(fd, 3*PageBytes, 0)
		th.WriteFile(fd, 100, 8*PageBytes) // sub-page write dirties its page
		th.CloseFD(fd)
	})
	if got := f.DirtyPages(); got != 4 {
		t.Fatalf("dirty pages = %d, want 4", got)
	}
	if res := k.PageCacheResident(); res != 4 {
		t.Fatalf("resident pages = %d, want 4", res)
	}
	// Re-reading a dirty page is a cache hit and must not clean it.
	run(t, eng, k, "db2", func(th *Thread) {
		fd := th.Open("wal")
		th.Pread(fd, PageBytes, 0)
		th.CloseFD(fd)
	})
	hits, misses := k.PageCacheStats()
	if hits != 1 || misses != 0 {
		t.Fatalf("page cache hits/misses = %d/%d, want 1/0", hits, misses)
	}
	if got := f.DirtyPages(); got != 4 {
		t.Fatalf("dirty pages after read = %d, want 4", got)
	}
}

// TestDirtyEvictionForcesDiskWrite: when a dirty page falls off the LRU its
// data cannot be dropped — the eviction must force a device write, and a
// later fsync must wait for that writeback too.
func TestDirtyEvictionForcesDiskWrite(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachineSmallCache(eng, 8)
	f := k.CreateFile("data", 1<<20)
	run(t, eng, k, "db", func(th *Thread) {
		fd := th.Open("data")
		// 16 dirty pages through an 8-page cache: at least 8 evictions, each
		// forcing a writeback.
		for p := int64(0); p < 16; p++ {
			th.WriteFile(fd, PageBytes, p*PageBytes)
		}
		th.CloseFD(fd)
	})
	w := k.Resources().Disk.Counters().WriteBytes
	if w != 8*PageBytes {
		t.Fatalf("device write bytes = %d, want %d (8 forced writebacks)", w, 8*PageBytes)
	}
	if got := f.DirtyPages(); got != 8 {
		t.Fatalf("dirty pages = %d, want 8 (evicted ones are clean on disk)", got)
	}
}

// TestFsyncDurability: fsync must block until every dirty page of the file
// has drained to the device, and a second fsync with nothing dirty must not
// touch the disk.
func TestFsyncDurability(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	k.CreateFile("wal", 1<<20)
	var first, second sim.Time
	run(t, eng, k, "db", func(th *Thread) {
		fd := th.Open("wal")
		th.WriteFile(fd, 16*PageBytes, 0)
		s := th.Now()
		th.Fsync(fd)
		first = th.Now() - s
		if w := k.Resources().Disk.Counters().WriteBytes; w != 16*PageBytes {
			t.Errorf("device write bytes at fsync return = %d, want %d", w, 16*PageBytes)
		}
		s = th.Now()
		th.Fsync(fd)
		second = th.Now() - s
		th.CloseFD(fd)
	})
	if f := k.LookupFile("wal"); f.DirtyPages() != 0 {
		t.Fatalf("dirty pages after fsync = %d", f.DirtyPages())
	}
	if ops := k.Resources().Disk.Counters().WriteOps; ops != 1 {
		t.Fatalf("device write ops = %d, want 1 (contiguous pages coalesce)", ops)
	}
	if first <= second {
		t.Fatalf("fsync with dirty pages (%v) should outlast a clean fsync (%v)", first, second)
	}
	if k.Fsyncs() != 2 {
		t.Fatalf("fsync count = %d, want 2", k.Fsyncs())
	}
	if lat := k.FsyncLatency(); lat.Count() != 2 || lat.Mean() <= 0 {
		t.Fatalf("fsync latency recorder: count=%d mean=%v", lat.Count(), lat.Mean())
	}
}

// TestKillProcDropsUnfsyncedDirty: a crashed process loses its un-fsynced
// writes — they are dropped from the dirty set and never reach the device,
// even if another process fsyncs the same file afterwards.
func TestKillProcDropsUnfsyncedDirty(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	f := k.CreateFile("wal", 1<<20)
	victim := k.NewProc("victim")
	victim.Spawn("w", func(th *Thread) {
		fd := th.Open("wal")
		th.WriteFile(fd, 8*PageBytes, 0)
		th.CloseFD(fd)
	})
	eng.Run()
	if f.DirtyPages() != 8 {
		t.Fatalf("dirty pages before crash = %d", f.DirtyPages())
	}
	eng.AfterFunc(0, func() { k.KillProc(victim) })
	eng.Run()
	if f.DirtyPages() != 0 {
		t.Fatalf("dirty pages after crash = %d, want 0", f.DirtyPages())
	}
	// A later fsync by a survivor finds nothing to flush.
	run(t, eng, k, "survivor", func(th *Thread) {
		fd := th.Open("wal")
		th.Fsync(fd)
		th.CloseFD(fd)
	})
	if w := k.Resources().Disk.Counters().WriteBytes; w != 0 {
		t.Fatalf("device saw %d bytes of the crashed process's writes", w)
	}
}

// TestFsyncSurvivesKillProc: the other half of the contract — data whose
// fsync completed before the crash is on stable storage and stays there,
// while a sibling's un-fsynced file contributes nothing.
func TestFsyncSurvivesKillProc(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	k.CreateFile("committed", 1<<20)
	k.CreateFile("lost", 1<<20)
	a := k.NewProc("a")
	a.Spawn("wa", func(th *Thread) {
		fd := th.Open("committed")
		th.WriteFile(fd, 4*PageBytes, 0)
		th.Fsync(fd)
		th.CloseFD(fd)
	})
	b := k.NewProc("b")
	b.Spawn("wb", func(th *Thread) {
		fd := th.Open("lost")
		th.WriteFile(fd, 4*PageBytes, 0)
		th.CloseFD(fd)
	})
	eng.Run()
	eng.AfterFunc(0, func() { k.KillProc(a); k.KillProc(b) })
	eng.Run()
	if w := k.Resources().Disk.Counters().WriteBytes; w != 4*PageBytes {
		t.Fatalf("device write bytes after double crash = %d, want %d (fsynced file only)",
			w, 4*PageBytes)
	}
	if f := k.LookupFile("lost"); f.DirtyPages() != 0 {
		t.Fatalf("crashed writer left %d dirty pages", f.DirtyPages())
	}
}

// TestFsyncWaitsForEvictionWriteback: an fsync issued while an evicted dirty
// page's writeback is still in flight must wait for that write too.
func TestFsyncWaitsForEvictionWriteback(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachineSmallCache(eng, 4)
	k.CreateFile("data", 1<<20)
	run(t, eng, k, "db", func(th *Thread) {
		fd := th.Open("data")
		for p := int64(0); p < 6; p++ { // 2 evictions in flight
			th.WriteFile(fd, PageBytes, p*PageBytes)
		}
		th.Fsync(fd)
		// Everything — the 2 evicted writebacks and the 4 still-dirty
		// pages — must be on the device before fsync returns.
		if w := k.Resources().Disk.Counters().WriteBytes; w != 6*PageBytes {
			t.Errorf("device write bytes at fsync return = %d, want %d", w, 6*PageBytes)
		}
		th.CloseFD(fd)
	})
}

// testMachineSmallCache is testMachine with a tiny page cache, for
// overflow-path tests.
func testMachineSmallCache(eng *sim.Engine, pages int) *Kernel {
	k := testMachine(eng, "m", 1)
	k.pages = newPageLRU(pages)
	k.pages.onEvict = k.pageEvicted
	return k
}

// ---- pageLRU overflow table (satellite: direct LRU coverage) ----

// lruOp is one scripted page-cache operation.
type lruOp struct {
	op   string // "insert", "insertDirty", "touch", "setClean"
	page int64
}

func TestPageLRUOverflowTable(t *testing.T) {
	cases := []struct {
		name        string
		cap         int
		ops         []lruOp
		wantOrder   []int64 // resident pages, MRU first
		wantEvicted []int64 // eviction order
		wantDirtyEv []bool  // dirty flag of each eviction
	}{
		{
			name: "working set exceeds capacity evicts in LRU order",
			cap:  3,
			ops: []lruOp{{"insert", 1}, {"insert", 2}, {"insert", 3},
				{"insert", 4}, {"insert", 5}},
			wantOrder:   []int64{5, 4, 3},
			wantEvicted: []int64{1, 2},
			wantDirtyEv: []bool{false, false},
		},
		{
			name: "re-touch promotes and changes the eviction victim",
			cap:  3,
			ops: []lruOp{{"insert", 1}, {"insert", 2}, {"insert", 3},
				{"touch", 1}, {"insert", 4}},
			wantOrder:   []int64{4, 1, 3},
			wantEvicted: []int64{2},
			wantDirtyEv: []bool{false},
		},
		{
			name:        "touch miss inserts and can itself evict",
			cap:         2,
			ops:         []lruOp{{"insert", 1}, {"insert", 2}, {"touch", 3}},
			wantOrder:   []int64{3, 2},
			wantEvicted: []int64{1},
			wantDirtyEv: []bool{false},
		},
		{
			name: "dirty page eviction reports the writeback",
			cap:  2,
			ops: []lruOp{{"insertDirty", 1}, {"insert", 2}, {"insert", 3},
				{"insert", 4}},
			wantOrder:   []int64{4, 3},
			wantEvicted: []int64{1, 2},
			wantDirtyEv: []bool{true, false},
		},
		{
			name: "setClean before eviction suppresses the writeback",
			cap:  2,
			ops: []lruOp{{"insertDirty", 1}, {"setClean", 1}, {"insert", 2},
				{"insert", 3}},
			wantOrder:   []int64{3, 2},
			wantEvicted: []int64{1},
			wantDirtyEv: []bool{false},
		},
		{
			name: "re-dirtying a resident page promotes it and keeps it dirty",
			cap:  3,
			ops: []lruOp{{"insertDirty", 1}, {"insert", 2}, {"insertDirty", 1},
				{"insert", 3}, {"insert", 4}},
			wantOrder:   []int64{4, 3, 1},
			wantEvicted: []int64{2},
			wantDirtyEv: []bool{false},
		},
		{
			name:        "recycled node does not inherit the dirty bit",
			cap:         1,
			ops:         []lruOp{{"insertDirty", 1}, {"insert", 2}, {"insert", 3}},
			wantOrder:   []int64{3},
			wantEvicted: []int64{1, 2},
			wantDirtyEv: []bool{true, false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := newPageLRU(tc.cap)
			var evicted []int64
			var dirtyEv []bool
			l.onEvict = func(key pageKey, dirty bool) {
				evicted = append(evicted, key.page)
				dirtyEv = append(dirtyEv, dirty)
			}
			for _, op := range tc.ops {
				key := pageKey{file: 1, page: op.page}
				switch op.op {
				case "insert":
					l.insert(key)
				case "insertDirty":
					l.insertDirty(key)
				case "touch":
					l.touch(key)
				case "setClean":
					l.setClean(key)
				}
			}
			var order []int64
			for n := l.head; n != nil; n = n.next {
				order = append(order, n.key.page)
			}
			if !int64SliceEq(order, tc.wantOrder) {
				t.Errorf("residency order = %v, want %v", order, tc.wantOrder)
			}
			if !int64SliceEq(evicted, tc.wantEvicted) {
				t.Errorf("evicted = %v, want %v", evicted, tc.wantEvicted)
			}
			if len(dirtyEv) != len(tc.wantDirtyEv) {
				t.Fatalf("dirty flags = %v, want %v", dirtyEv, tc.wantDirtyEv)
			}
			for i := range dirtyEv {
				if dirtyEv[i] != tc.wantDirtyEv[i] {
					t.Errorf("eviction %d dirty = %v, want %v", i, dirtyEv[i], tc.wantDirtyEv[i])
				}
			}
			if len(l.m) != len(tc.wantOrder) {
				t.Errorf("resident count = %d, want %d", len(l.m), len(tc.wantOrder))
			}
		})
	}
}

func int64SliceEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
