// Package kernel simulates the operating system layer of one machine: a
// run-to-completion scheduler over the machine's cores, coroutine-style
// threads, a syscall interface whose kernel-side instruction streams execute
// on the same CPU model as user code, a page cache in front of the disk,
// and sockets with epoll-style readiness — plus the observation hooks
// (syscall log, thread lifecycle events) that stand in for SystemTap in the
// Ditto pipeline.
//
// Concurrency model: the simulation owns exactly one running goroutine at a
// time. Simulated threads are goroutines parked on a channel handshake; the
// engine resumes one, it runs until it blocks (parks), and control returns.
// All cross-thread wakeups are routed through engine events, which keeps
// every run bit-for-bit deterministic.
package kernel

import (
	"fmt"

	"ditto/internal/cpu"
	"ditto/internal/disk"
	"ditto/internal/isa"
	"ditto/internal/netsim"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// Resources is the hardware a kernel manages, assembled by the platform.
type Resources struct {
	Cores          []*cpu.Core
	Disk           *disk.Device // nil for diskless workloads
	NIC            *netsim.NIC
	PageCachePages int // page-cache capacity in 4KB pages
}

// Fabric resolves network paths between kernels; the platform implements it.
type Fabric interface {
	Path(src, dst *Kernel) netsim.Path
}

// Kernel is the OS instance of one simulated machine.
type Kernel struct {
	Name string

	eng *sim.Engine
	res Resources

	// Scheduler state. runq is a FIFO ring: runqHead indexes the next burst
	// and the slice is reset when it drains, so steady-state enqueues reuse
	// capacity instead of reallocating behind a sliding front.
	idleCores  []int
	runq       []*burst
	runqHead   int
	coreThread []*Thread // last thread that ran on each core

	// Coroutine handshake.
	parkCh   chan struct{}
	stopping bool
	threads  []*Thread
	nextTID  int
	procSeq  uint64

	// Filesystem.
	files     map[string]*File
	filesByID map[uint64]*File
	nextFS    uint64
	pages     *pageLRU
	flushBuf  []int64 // reusable dirty-page collection buffer (flushFile)

	// Storage observability: page-cache read hits/misses and fsync wall
	// times — the dimensions the storage experiments compare clones on.
	pageHits   uint64
	pageMisses uint64
	fsyncs     uint64
	fsyncLat   stats.Recorder

	// Network.
	fabric    Fabric
	listeners map[int]*Listener
	// sides registers every connection side homed on this kernel so that
	// KillProc can close a dead process's sockets. Without it a crashed
	// tier's connections would keep queueing inbound messages forever —
	// the same class of stale shared state as a dead process's listener.
	sides []*connSide
	// deliveries recycles in-flight message-delivery events (see Send): a
	// steady request/response exchange reuses the same few objects instead
	// of allocating one closure plus one header per message.
	deliveries []*delivery

	// Observation (the SystemTap surface).
	sysObs    []func(SyscallEvent)
	threadObs []func(ThreadEvent)

	ksg    kstreamGen
	kcache [NumSyscalls + 1][]*cpu.Trace
	kvar   [NumSyscalls + 1]uint8

	// sampler, when set, may short-circuit eligible decoded-trace
	// executions to a modeled result (sampled steady-state execution).
	sampler ExecSampler
}

// ExecSampler is the sampled steady-state hook (internal/steady implements
// it). Before executing an eligible decoded trace the kernel asks Next; a
// true ok means the returned result stands in for execution — the burst
// still occupies its core for the result's cycles, counters are charged
// identically, but caches and predictors are left untouched. When ok is
// false the kernel executes the trace and feeds the real result back
// through Observe. Traces with Class cpu.ClassNone never reach the sampler.
type ExecSampler interface {
	Next(tr *cpu.Trace) (cpu.Result, bool)
	Observe(tr *cpu.Trace, r cpu.Result)
}

// SetSampler installs (or, with nil, removes) the steady-state sampler.
// Sampling is opt-in per experiment: profiling runs never install one, so
// the SDE/SystemTap observation surface always sees full execution.
func (k *Kernel) SetSampler(s ExecSampler) { k.sampler = s }

// execTrace is the single choke point for cached-trace execution — app
// request bodies via RunTrace, kernel syscall streams, and the ctx-switch
// stream all pass through it, which is what gives sampled mode its parity
// across user and kernel instruction streams. The second return reports
// whether the trace actually executed (false: the result was modeled), so
// callers can gate per-instruction observation to executed samples.
func (k *Kernel) execTrace(core *cpu.Core, tr *cpu.Trace) (cpu.Result, bool) {
	if k.sampler != nil && tr.Class != cpu.ClassNone {
		if r, ok := k.sampler.Next(tr); ok {
			return r, false
		}
		r := core.ExecuteTrace(tr)
		k.sampler.Observe(tr, r)
		return r, true
	}
	return core.ExecuteTrace(tr), true
}

// New builds a kernel over the given resources.
func New(eng *sim.Engine, name string, res Resources) *Kernel {
	if len(res.Cores) == 0 {
		panic("kernel: machine needs at least one core")
	}
	if res.PageCachePages <= 0 {
		res.PageCachePages = 1 << 18 // 1GB default
	}
	k := &Kernel{
		Name:       name,
		eng:        eng,
		res:        res,
		// ditto:determinism-ok reviewed: the strict-handoff coroutine channel;
		// exactly one goroutine runs at a time, so no order is ever racy.
		parkCh:     make(chan struct{}),
		files:      map[string]*File{},
		filesByID:  map[uint64]*File{},
		pages:      newPageLRU(res.PageCachePages),
		listeners:  map[int]*Listener{},
		coreThread: make([]*Thread, len(res.Cores)),
		ksg:        kstreamGen{rng: 0x853C49E6748FEA9B},
	}
	k.pages.onEvict = k.pageEvicted
	for i := range res.Cores {
		k.idleCores = append(k.idleCores, i)
	}
	return k
}

// Engine returns the simulation engine the kernel runs on.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Resources returns the kernel's hardware.
func (k *Kernel) Resources() Resources { return k.res }

// SetFabric wires the kernel into a network fabric.
func (k *Kernel) SetFabric(f Fabric) { k.fabric = f }

// ObserveSyscalls installs the syscall-event hook (SystemTap analog).
func (k *Kernel) ObserveSyscalls(f func(SyscallEvent)) {
	k.sysObs = append(k.sysObs, f)
}

// ObserveThreads installs the thread-lifecycle hook.
func (k *Kernel) ObserveThreads(f func(ThreadEvent)) {
	k.threadObs = append(k.threadObs, f)
}

// Proc is one process: a counter-attribution domain with a private address
// space base so that different processes never share cache lines.
type Proc struct {
	Name    string
	MemBase uint64

	k        *Kernel
	Counters cpu.Counters

	// Per-process I/O accounting for bandwidth validation.
	NetTxBytes, NetRxBytes     uint64
	DiskReadBytes, DiskWritten uint64

	observer func([]isa.Instr) // SDE-style user-instruction hook

	// Observation accounting under sampled steady state: body executions
	// the observer saw versus ones modeled past it. Profilers scale
	// observer-derived per-request quantities by the ratio; in full
	// execution ModeledBodies is always zero and the scale is exactly 1.
	ObservedBodies, ModeledBodies uint64

	liveThreads int
	spawnedEver int
}

// NewProc creates a process on this kernel. Address-space bases are spaced
// per kernel, not globally: caches are per machine, so distinctness only
// matters between processes of the same kernel — and keeping the counter
// here makes a process's MemBase a pure function of its creation order on
// its own machine, independent of how many other simulations ran first in
// the same OS process (experiment cells execute concurrently).
func (k *Kernel) NewProc(name string) *Proc {
	k.procSeq++
	return &Proc{
		Name:    name,
		MemBase: k.procSeq << 36, // 64GB-spaced address spaces
		k:       k,
	}
}

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// ObserveInstrs installs the user-level instruction-stream hook (the Intel
// SDE analog). Kernel-side streams are not reported, matching SDE's
// user-space visibility.
func (p *Proc) ObserveInstrs(f func([]isa.Instr)) { p.observer = f }

// LiveThreads reports the number of currently running threads.
func (p *Proc) LiveThreads() int { return p.liveThreads }

// SpawnedThreads reports the total number of threads ever spawned.
func (p *Proc) SpawnedThreads() int { return p.spawnedEver }

// threadKilled unwinds a simulated thread when the kernel stops.
type threadKilled struct{}

// Thread is one simulated kernel thread, implemented as a parked goroutine.
type Thread struct {
	ID   int
	Name string
	Proc *Proc

	k      *Kernel
	resume chan struct{}
	parked bool
	done   bool
	killed bool

	Spawned     sim.Time
	Exited      sim.Time
	CtxSwitches uint64
	lastWakeSrc string

	tail       [1]isa.Instr // reusable payload-copy instruction
	timerFn    func()       // reusable timer-wake closure (Sleep, RecvTimeout)
	dispatchFn func()       // reusable wake->dispatch event closure

	// Disk-wait state for the thread's single in-flight Pread: the number
	// of outstanding batched reads plus the shared completion closure.
	diskPending int
	diskFn      func()
	preadRuns   []int // reusable missing-page run lengths

	fdPool []*FD // recycled descriptors (CloseFD refills, Open drains)

	// burst and itemBuf are the thread's reusable CPU-work submission: a
	// thread has at most one burst in flight (compute blocks until it
	// completes), so the whole submit path reuses this storage.
	burst   burst
	itemBuf [2]burstItem
}

// wakeTimer returns the thread's reusable timer-wake closure, building it on
// first use. Timer-driven waits (Sleep, RecvTimeout) fire constantly on the
// RPC hot path; sharing one closure keeps them allocation-free.
func (t *Thread) wakeTimer() func() {
	if t.timerFn == nil {
		t.timerFn = func() { t.k.wake(t, "timer") }
	}
	return t.timerFn
}

// Spawn creates a thread in p running fn. It may be called from setup code
// or from another simulated thread; the new thread starts at the current
// simulation time via a scheduled event.
func (p *Proc) Spawn(name string, fn func(*Thread)) *Thread {
	k := p.k
	k.nextTID++
	t := &Thread{
		ID:      k.nextTID,
		Name:    name,
		Proc:    p,
		k:       k,
		// ditto:determinism-ok reviewed: per-thread resume channel of the
		// strict handoff; only the engine goroutine ever sends on it.
		resume:  make(chan struct{}),
		Spawned: k.eng.Now(),
	}
	t.dispatchFn = func() { k.dispatch(t) }
	p.liveThreads++
	p.spawnedEver++
	k.threads = append(k.threads, t)
	k.emitThread(ThreadEvent{Time: k.eng.Now(), TID: t.ID, Proc: p.Name,
		Thread: name, Kind: ThreadSpawn})
	go func() { // ditto:determinism-ok reviewed: coroutine body; parked until dispatch resumes it
		<-t.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(threadKilled); !ok {
					panic(r)
				}
			}
			t.done = true
			t.Exited = k.eng.Now()
			p.liveThreads--
			k.emitThread(ThreadEvent{Time: k.eng.Now(), TID: t.ID,
				Proc: p.Name, Thread: t.Name, Kind: ThreadExit})
			// ditto:determinism-ok reviewed: exit-side half of the strict
			// handoff; hands control back to the engine goroutine.
			k.parkCh <- struct{}{}
		}()
		fn(t)
	}()
	t.parked = true
	k.wake(t, "spawn")
	return t
}

// park blocks the calling simulated thread until a wake event resumes it.
// Callers must loop on their condition: wakeups can be spurious.
func (t *Thread) park() {
	t.parked = true
	t.k.parkCh <- struct{}{} // ditto:determinism-ok reviewed: park/resume pair of the strict handoff
	<-t.resume
	if t.k.stopping || t.killed {
		panic(threadKilled{})
	}
}

// dispatch resumes t and blocks until it parks again or exits. Must only be
// called from the engine goroutine (inside an event callback).
func (k *Kernel) dispatch(t *Thread) {
	if t.done || !t.parked {
		return
	}
	t.parked = false
	t.resume <- struct{}{} // ditto:determinism-ok reviewed: resume/park pair of the strict handoff
	<-k.parkCh
}

// wake schedules t to resume via an engine event, recording the wake source
// for the thread-model profiler.
func (k *Kernel) wake(t *Thread, source string) {
	if t == nil || t.done {
		return
	}
	t.lastWakeSrc = source
	k.emitThread(ThreadEvent{Time: k.eng.Now(), TID: t.ID, Proc: t.Proc.Name,
		Thread: t.Name, Kind: ThreadWake, Source: source})
	k.eng.AfterFunc(0, t.dispatchFn)
}

// KillProc terminates every thread of p (a process crash), unbinds its
// listeners, and closes its connection sides so inbound messages stop
// queueing. It must be called from an engine event (e.g. a fault plane
// action), never from a simulated thread of p itself. The process object
// survives: counters remain readable and new threads may be spawned into it
// later — a container restart.
func (k *Kernel) KillProc(p *Proc) {
	// ditto:determinism-ok reviewed: filtered delete-during-range; the
	// surviving set is the same whatever order the map yields.
	for port, l := range k.listeners {
		if l.proc == p {
			delete(k.listeners, port)
		}
	}
	for _, s := range k.sides {
		if s.proc == p {
			// closeSide also FINs the peer, so remote clients blocked on a
			// connection to the crashed process wake and observe Dead().
			k.closeSide(s)
		}
	}
	for _, t := range k.threads {
		if t.Proc == p && !t.done {
			t.killed = true
			k.wake(t, "kill")
		}
	}
	// Un-fsynced writes die with the process: dirty pages it authored are
	// dropped without ever reaching the device. Writes it already fsynced
	// (or whose writeback eviction forced) are on stable storage and stay.
	k.dropDirty(p)
}

// Stop terminates all simulated threads. Call it after the measurement
// window, then run the engine to drain the kill events.
func (k *Kernel) Stop() {
	k.stopping = true
	for _, t := range k.threads {
		if !t.done {
			k.eng.AfterFunc(0, t.dispatchFn)
		}
	}
}

// ---- Scheduler ----

// burstItem is one stream of a burst, either pre-decoded (cached kernel and
// request streams) or raw (ad-hoc streams, decoded into the core's scratch
// at execution time).
type burstItem struct {
	trace   *cpu.Trace
	stream  []isa.Instr
	observe bool // user-level trace: report to the proc's instruction observer when executed
}

// burst is one schedulable unit of CPU work: one or more instruction
// streams executed back to back on the same core. Each thread owns exactly
// one burst (compute blocks until it finishes), so bursts are pooled in the
// Thread and the submit path is allocation-free.
type burst struct {
	t      *Thread
	items  []burstItem
	res    cpu.Result
	done   bool
	coreID int
	finish func() // reusable completion-event closure
}

// submit enqueues a burst and starts it if a core is idle.
func (k *Kernel) submit(b *burst) {
	k.runq = append(k.runq, b)
	k.pump()
}

// pump assigns queued bursts to idle cores.
func (k *Kernel) pump() {
	for len(k.idleCores) > 0 && k.runqHead < len(k.runq) {
		coreID := k.idleCores[len(k.idleCores)-1]
		k.idleCores = k.idleCores[:len(k.idleCores)-1]
		b := k.runq[k.runqHead]
		k.runq[k.runqHead] = nil
		k.runqHead++
		if k.runqHead == len(k.runq) {
			k.runq = k.runq[:0]
			k.runqHead = 0
		}
		k.runBurst(coreID, b)
	}
}

// runBurst executes b on coreID, charging a context switch when the core
// last ran a different thread. The result accumulates directly into b.res
// and completion fires through the burst's reusable closure, keeping the
// per-burst path allocation-free.
func (k *Kernel) runBurst(coreID int, b *burst) {
	core := k.res.Cores[coreID]
	var extra sim.Time
	if prev := k.coreThread[coreID]; prev != b.t && prev != nil {
		b.t.CtxSwitches++
		if prev.Proc != b.t.Proc {
			core.ContextSwitch() // private-cache pollution across processes
		}
		csRes, _ := k.execTrace(core, k.kstream(opCtxSwitch))
		b.t.Proc.Counters.Add(csRes.Counters)
		extra = core.Time(csRes.Cycles)
	}
	k.coreThread[coreID] = b.t
	b.res = cpu.Result{}
	for _, it := range b.items {
		var r cpu.Result
		if it.trace != nil {
			var executed bool
			r, executed = k.execTrace(core, it.trace)
			if it.observe && b.t.Proc.observer != nil {
				// The SDE-style observer sees executed samples only: under
				// sampling, every profile quantity is a per-instruction
				// fraction, so observing the detailed windows preserves it
				// while modeled requests skip the observation cost. The
				// observed/modeled split lets profilers rescale per-request
				// absolutes (instructions, working-set touches).
				if executed {
					b.t.Proc.ObservedBodies++
					b.t.Proc.observer(it.trace.Stream)
				} else {
					b.t.Proc.ModeledBodies++
				}
			}
		} else {
			r = core.Execute(it.stream)
		}
		b.res.Cycles += r.Cycles
		b.res.Counters.Add(r.Counters)
	}
	b.coreID = coreID
	if b.finish == nil {
		b.finish = func() {
			bk := b.t.k
			b.done = true
			bk.idleCores = append(bk.idleCores, b.coreID)
			bk.wake(b.t, "cpu")
			bk.pump()
		}
	}
	k.eng.AfterFunc(extra+core.Time(b.res.Cycles), b.finish)
}

// kvariantCount is how many pregenerated variants of each syscall's kernel
// stream rotate in use: enough variety that the branch predictor cannot
// memorize a single pattern, cheap enough to generate once.
const kvariantCount = 8

// kstream returns the next pregenerated kernel stream for op, decoded once
// at pregeneration so the scheduler replays traces instead of re-deriving
// static instruction facts on every syscall.
func (k *Kernel) kstream(op SyscallOp) *cpu.Trace {
	if k.kcache[op] == nil {
		vs := make([]*cpu.Trace, kvariantCount)
		for i := range vs {
			var buf []isa.Instr
			vs[i] = cpu.NewTrace(k.ksg.gen(&buf, op, 0, 0))
			vs[i].Class = cpu.ClassKernel
			vs[i].Group = vs[0]
		}
		k.kcache[op] = vs
	}
	i := k.kvar[op]
	k.kvar[op] = (i + 1) % kvariantCount
	return k.kcache[op][i]
}

// compute runs one instruction burst to completion, blocking the thread for
// its simulated duration, and accumulates counters into the process. All
// streams and traces must stay unmodified until compute returns. items must
// alias t.itemBuf (or otherwise outlive the burst).
func (t *Thread) compute(items []burstItem) cpu.Result {
	b := &t.burst
	b.t = t
	b.items = items
	b.res = cpu.Result{}
	b.done = false
	t.k.submit(b)
	for !b.done {
		t.park()
	}
	t.Proc.Counters.Add(b.res.Counters)
	return b.res
}

// Run executes a user-level instruction stream (application body work). The
// process's instruction observer — the SDE analog — sees exactly this
// stream.
func (t *Thread) Run(stream []isa.Instr) cpu.Result {
	if t.Proc.observer != nil {
		t.Proc.observer(stream)
	}
	t.itemBuf[0] = burstItem{stream: stream}
	return t.compute(t.itemBuf[:1])
}

// RunTrace executes a pre-decoded user-level stream — the cached-request
// hot path. The observer sees the trace's source stream, exactly as Run
// would report it, but only for requests that actually execute: modeled
// requests under sampled steady state skip observation, keeping profiled
// instruction fractions tied to executed samples.
func (t *Thread) RunTrace(tr *cpu.Trace) cpu.Result {
	t.itemBuf[0] = burstItem{trace: tr, observe: true}
	return t.compute(t.itemBuf[:1])
}

// Sleep blocks the thread for d of simulated time (nanosleep).
func (t *Thread) Sleep(d sim.Time) {
	t.syscallEnter(SysNanosleep, 0, "")
	deadline := t.k.eng.Now() + d
	t.k.eng.ScheduleFunc(deadline, t.wakeTimer())
	for t.k.eng.Now() < deadline {
		t.park()
	}
}

// Now returns the current simulated time.
func (t *Thread) Now() sim.Time { return t.k.eng.Now() }

// Kernel returns the kernel the thread runs on.
func (t *Thread) Kernel() *Kernel { return t.k }

// Yield lets the scheduler run other work (sched_yield).
func (t *Thread) Yield() {
	t.k.wake(t, "yield")
	t.park()
}

// Clone spawns a child thread, charging the clone() syscall to the caller —
// how short-lived worker threads show up in the profile.
func (t *Thread) Clone(name string, fn func(*Thread)) *Thread {
	t.syscallEnter(SysClone, 0, "")
	return t.Proc.Spawn(name, fn)
}

// WaitQueue is a futex-style wait channel for user-space synchronization
// (mutexes, condition variables). Waiters must re-check their condition
// after WaitOn returns: wakeups can be spurious.
type WaitQueue struct {
	k       *Kernel
	waiters []*Thread
	gen     uint64 // bumped by every wake, so wakes during entry aren't lost
}

// NewWaitQueue creates a wait queue on this kernel.
func (k *Kernel) NewWaitQueue() *WaitQueue { return &WaitQueue{k: k} }

// WaitOn blocks the thread until a wake. One futex syscall is charged. If a
// wake arrives while the syscall path is still executing, WaitOn returns
// without blocking (a spurious-looking but lossless wakeup).
func (t *Thread) WaitOn(q *WaitQueue) {
	gen := q.gen
	t.syscallEnter(SysFutex, 0, "")
	if q.gen != gen {
		return
	}
	q.waiters = append(q.waiters, t)
	t.park()
}

// WakeOne wakes the oldest waiter, if any.
func (q *WaitQueue) WakeOne() {
	q.gen++
	if len(q.waiters) == 0 {
		return
	}
	t := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.k.wake(t, "futex")
}

// WakeAll wakes every waiter.
func (q *WaitQueue) WakeAll() {
	q.gen++
	ws := q.waiters
	q.waiters = nil
	for _, t := range ws {
		q.k.wake(t, "futex")
	}
}

// emitThread reports a thread lifecycle event to the observer.
func (k *Kernel) emitThread(ev ThreadEvent) {
	for _, f := range k.threadObs {
		f(ev)
	}
}

// String identifies the kernel in logs and errors.
func (k *Kernel) String() string { return fmt.Sprintf("kernel(%s)", k.Name) }
