package kernel

import "ditto/internal/isa"

// kstreamGen synthesizes the kernel-side instruction streams executed by
// system calls. Kernel code is the same for original and cloned
// applications — the paper's insight that kernel behaviour is reproduced by
// imitating the system calls themselves (§4.4), with no assembly-level
// cloning of the kernel — so this generator is shared machinery, not part
// of Ditto's cloning surface.
type kstreamGen struct {
	rng uint64
}

// kernelTextBase places kernel code far from any user address space.
const kernelTextBase = 0xF000_0000_0000

// kernelDataBase is the kernel's data region (socket buffers, dentries…).
const kernelDataBase = 0xF800_0000_0000

// sysProfile shapes one syscall's kernel execution.
type sysProfile struct {
	instrs    int // baseline dynamic instructions
	footprint int // kernel text bytes walked (i-cache pressure)
	dataWS    int // kernel data working set bytes
}

// sysProfiles is indexed by SyscallOp. Numbers are calibrated to produce
// the kernel-share and frontend-bound character the paper reports for
// network-heavy services (30–60% kernel time, large instruction footprints).
var sysProfiles = [NumSyscalls + 1]sysProfile{
	SysOpen:      {instrs: 1500, footprint: 24 << 10, dataWS: 64 << 10},
	SysClose:     {instrs: 500, footprint: 8 << 10, dataWS: 16 << 10},
	SysPread:     {instrs: 1800, footprint: 32 << 10, dataWS: 128 << 10},
	SysWrite:     {instrs: 1500, footprint: 28 << 10, dataWS: 96 << 10},
	SysSocket:    {instrs: 800, footprint: 12 << 10, dataWS: 32 << 10},
	SysConnect:   {instrs: 2400, footprint: 40 << 10, dataWS: 128 << 10},
	SysAccept:    {instrs: 1800, footprint: 32 << 10, dataWS: 96 << 10},
	SysListen:    {instrs: 600, footprint: 8 << 10, dataWS: 16 << 10},
	SysSend:      {instrs: 2600, footprint: 48 << 10, dataWS: 256 << 10},
	SysRecv:      {instrs: 2200, footprint: 48 << 10, dataWS: 192 << 10},
	SysEpollWait: {instrs: 900, footprint: 16 << 10, dataWS: 32 << 10},
	SysEpollCtl:  {instrs: 400, footprint: 8 << 10, dataWS: 16 << 10},
	SysClone:     {instrs: 3500, footprint: 56 << 10, dataWS: 256 << 10},
	SysFutex:     {instrs: 600, footprint: 8 << 10, dataWS: 16 << 10},
	SysNanosleep: {instrs: 700, footprint: 12 << 10, dataWS: 16 << 10},
	SysMmap:      {instrs: 1200, footprint: 20 << 10, dataWS: 64 << 10},
	SysFsync:     {instrs: 1100, footprint: 20 << 10, dataWS: 64 << 10},
	opCtxSwitch:  {instrs: 2500, footprint: 32 << 10, dataWS: 128 << 10},
}

func (g *kstreamGen) next() uint64 {
	g.rng ^= g.rng >> 12
	g.rng ^= g.rng << 25
	g.rng ^= g.rng >> 27
	return g.rng * 0x2545F4914F6CDD1D
}

// gen builds the kernel instruction stream for op into *buf (reusing its
// capacity) and returns it. A payload of n bytes adds a copy_to_user /
// copy_from_user modeled as REP MOVSB touching a user buffer in the
// process's address space.
func (g *kstreamGen) gen(buf *[]isa.Instr, op SyscallOp, bytes int, userBase uint64) []isa.Instr {
	p := sysProfiles[op]
	if p.instrs == 0 {
		p = sysProfile{instrs: 800, footprint: 16 << 10, dataWS: 32 << 10}
	}
	s := (*buf)[:0]
	text := kernelTextBase + uint64(op)<<20
	data := kernelDataBase + uint64(op)<<24

	pcOff := uint64(0)
	fp := uint64(p.footprint)
	ws := uint64(p.dataWS)
	n := p.instrs
	for i := 0; i < n; i++ {
		r := g.next()
		pc := text + pcOff
		// Walk the kernel text mostly linearly with occasional jumps, the
		// sprawling-footprint pattern of kernel paths.
		pcOff += isa.InstrBytes
		if r&0x1F == 0 { // ~3%: jump somewhere else in the path
			pcOff = (r >> 8) % fp &^ 3
		}
		if pcOff >= fp {
			pcOff = 0
		}
		in := isa.Instr{PC: pc, BranchID: -1, Kernel: true,
			Dst: isa.Reg(r >> 40 & 7), Src1: isa.Reg(r >> 44 & 7), Src2: isa.Reg(r >> 48 & 7)}
		switch pick := r % 100; {
		case pick < 22: // load
			in.Op = isa.MOVload
			in.Src1 = isa.R10
			in.Addr = data + g.dataAddr(ws)
		case pick < 34: // store
			in.Op = isa.MOVstore
			in.Dst = isa.RegNone
			in.Addr = data + g.dataAddr(ws)
		case pick < 48: // branch, ~88% taken with irregular pattern
			in.Op = isa.JCC
			in.BranchID = int32(op)<<8 | int32(pcOff>>6&0xFF)
			in.Taken = (r>>32)%100 < 88
			in.Dst = isa.RegNone
		case pick < 52: // lock-prefixed (refcounts, spinlocks)
			in.Op = isa.LOCKADD
			in.Dst = isa.RegNone
			in.Addr = data + g.dataAddr(8<<10) // hot lock lines
			in.Shared = true
		default: // plain ALU
			in.Op = isa.ADDrr
		}
		s = append(s, in)
	}
	if bytes > 0 {
		s = append(s, isa.Instr{Op: isa.REPMOVSB, PC: text + fp/2,
			Addr: userBase + 1<<30, RepCount: int32(bytes), BranchID: -1,
			Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Kernel: true})
	}
	*buf = s
	return s
}

// dataAddr picks a kernel data offset: 60% in a hot 4KB region, the rest
// uniform over the working set.
func (g *kstreamGen) dataAddr(ws uint64) uint64 {
	r := g.next()
	if r%10 < 6 {
		return r % 4096 &^ 7
	}
	if ws == 0 {
		ws = 4096
	}
	return (r >> 16) % ws &^ 7
}
