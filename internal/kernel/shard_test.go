package kernel

import (
	"fmt"
	"strings"
	"testing"

	"ditto/internal/netsim"
	"ditto/internal/sim"
)

// runShardedEcho builds two machines on separate shards of one World — a
// server echoing requests and a client driving two connections — and returns
// a log of everything the client observed. The log must be byte-identical at
// every worker width: this is the kernel-level slice of the cross-shard
// determinism contract (connect handshake, message delivery, FIN
// propagation all cross the shard boundary here).
func runShardedEcho(width int) string {
	const rtt = 100 * sim.Microsecond
	w := sim.NewWorld(rtt/2, width)
	server := testMachine(w.NewShard(), "server", 2)
	client := testMachine(w.NewShard(), "client", 2)
	fabric := fabricFunc(func(src, dst *Kernel) netsim.Path {
		return netsim.Path{Src: src.Resources().NIC, Dst: dst.Resources().NIC, RTT: rtt}
	})
	server.SetFabric(fabric)
	client.SetFabric(fabric)

	var log []string
	sp := server.NewProc("srv")
	sp.Spawn("acceptor", func(th *Thread) {
		l := th.Listen(80)
		for i := 0; i < 2; i++ {
			conn := th.Accept(l)
			sp.Spawn(fmt.Sprintf("echo%d", i), func(th *Thread) {
				for {
					msg, ok := th.RecvTimeout(conn, 5*sim.Millisecond)
					if !ok {
						return
					}
					th.Send(conn, msg.Bytes, msg.Payload)
				}
			})
		}
	})
	cp := client.NewProc("cli")
	for c := 0; c < 2; c++ {
		c := c
		cp.Spawn(fmt.Sprintf("conn%d", c), func(th *Thread) {
			conn := th.Connect(server, 80)
			for i := 0; i < 20; i++ {
				th.Send(conn, 64+c, i)
				reply := th.Recv(conn)
				log = append(log, fmt.Sprintf("%v c%d i%d b%d", client.eng.Now(), c, reply.Payload, reply.Bytes))
			}
			th.CloseConn(conn)
		})
	}
	w.RunUntil(20 * sim.Millisecond)
	server.Stop()
	client.Stop()
	w.Run()
	return strings.Join(log, "\n")
}

func TestCrossShardEchoDeterministicAcrossWidths(t *testing.T) {
	want := runShardedEcho(1)
	if !strings.Contains(want, "c0 i19") || !strings.Contains(want, "c1 i19") {
		t.Fatalf("echo fixture incomplete:\n%s", want)
	}
	for _, width := range []int{2, 8} {
		for rep := 0; rep < 3; rep++ {
			if got := runShardedEcho(width); got != want {
				t.Fatalf("width %d rep %d diverged from serial run", width, rep)
			}
		}
	}
}

// TestCrossShardDeadAfterFIN checks that a close on one shard becomes
// observable on the peer's shard exactly one one-way delay later, via the
// FIN — never by reading remote state directly.
func TestCrossShardDeadAfterFIN(t *testing.T) {
	const rtt = 100 * sim.Microsecond
	w := sim.NewWorld(rtt/2, 2)
	server := testMachine(w.NewShard(), "server", 2)
	client := testMachine(w.NewShard(), "client", 2)
	fabric := fabricFunc(func(src, dst *Kernel) netsim.Path {
		return netsim.Path{Src: src.Resources().NIC, Dst: dst.Resources().NIC, RTT: rtt}
	})
	server.SetFabric(fabric)
	client.SetFabric(fabric)

	sp := server.NewProc("srv")
	sp.Spawn("srv", func(th *Thread) {
		l := th.Listen(80)
		conn := th.Accept(l)
		th.Sleep(sim.Millisecond)
		th.CloseConn(conn)
	})
	var deadAt sim.Time
	cp := client.NewProc("cli")
	cp.Spawn("cli", func(th *Thread) {
		conn := th.Connect(server, 80)
		for !conn.Dead() {
			if _, ok := th.RecvTimeout(conn, 10*sim.Millisecond); !ok && conn.Dead() {
				break
			}
		}
		deadAt = client.eng.Now()
	})
	w.RunUntil(20 * sim.Millisecond)
	server.Stop()
	client.Stop()
	w.Run()
	if deadAt == 0 {
		t.Fatal("client never observed the peer close")
	}
	if deadAt < sim.Millisecond+rtt/2 {
		t.Fatalf("close observed at %v, before the FIN could arrive", deadAt)
	}
}
