package kernel

import (
	"testing"

	"ditto/internal/cache"
	"ditto/internal/cpu"
	"ditto/internal/disk"
	"ditto/internal/isa"
	"ditto/internal/netsim"
	"ditto/internal/sim"
)

// testMachine builds a small kernel with n cores, an SSD and a 10Gbe NIC.
func testMachine(eng *sim.Engine, name string, n int) *Kernel {
	cores := make([]*cpu.Core, n)
	l3 := cache.New(cache.Config{Name: "l3", Size: 8 << 20, Assoc: 16, Latency: 40, Policy: cache.PLRU})
	for i := range cores {
		l1i := cache.New(cache.Config{Name: "l1i", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
		l1d := cache.New(cache.Config{Name: "l1d", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
		l2 := cache.New(cache.Config{Name: "l2", Size: 256 << 10, Assoc: 8, Latency: 12, Policy: cache.LRU})
		cores[i] = cpu.NewCore(cpu.Config{Arch: cpu.Skylake, FreqGHz: 2,
			ICache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1i, l2, l3}, MemLatency: 200},
			DCache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1d, l2, l3}, MemLatency: 200}})
	}
	return New(eng, name, Resources{
		Cores:          cores,
		Disk:           disk.New(eng, disk.SSDConfig()),
		NIC:            netsim.NewNIC(eng, 10),
		PageCachePages: 1024,
	})
}

func aluStream(n int) []isa.Instr {
	s := make([]isa.Instr, n)
	for i := range s {
		s[i] = isa.Instr{Op: isa.ADDrr, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8), BranchID: -1}
	}
	return s
}

func TestThreadRunAndCounters(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	p := k.NewProc("app")
	var ipc float64
	p.Spawn("w", func(th *Thread) {
		res := th.Run(aluStream(10000))
		ipc = res.Counters.IPC()
	})
	eng.Run()
	if ipc < 2 {
		t.Fatalf("IPC = %v", ipc)
	}
	if p.Counters.Instrs != 10000 {
		t.Fatalf("proc counters = %d instrs", p.Counters.Instrs)
	}
	if eng.Now() == 0 {
		t.Fatal("compute should consume simulated time")
	}
}

func TestInstrObserverSeesUserOnly(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("app")
	var observed int
	p.ObserveInstrs(func(s []isa.Instr) {
		observed += len(s)
		for _, in := range s {
			if in.Kernel {
				t.Error("observer must only see user instructions")
			}
		}
	})
	p.Spawn("w", func(th *Thread) {
		th.Run(aluStream(500))
		th.Sleep(sim.Microsecond) // kernel stream, not observed
	})
	eng.Run()
	if observed != 500 {
		t.Fatalf("observed %d instrs, want 500", observed)
	}
}

func TestSchedulerParallelism(t *testing.T) {
	run := func(cores int) sim.Time {
		eng := sim.NewEngine()
		k := testMachine(eng, "m", cores)
		p := k.NewProc("app")
		for i := 0; i < 4; i++ {
			p.Spawn("w", func(th *Thread) { th.Run(aluStream(40000)) })
		}
		eng.Run()
		return eng.Now()
	}
	t1 := run(1)
	t4 := run(4)
	if t4 > t1/2 {
		t.Fatalf("4 cores should be much faster than 1: %v vs %v", t4, t1)
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("app")
	var ta, tb *Thread
	ta = p.Spawn("a", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Run(aluStream(1000))
			th.Yield()
		}
	})
	tb = p.Spawn("b", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Run(aluStream(1000))
			th.Yield()
		}
	})
	eng.Run()
	if ta.CtxSwitches+tb.CtxSwitches == 0 {
		t.Fatal("interleaved threads on one core should context switch")
	}
	if p.Counters.KernelInstrs == 0 {
		t.Fatal("context switches should execute kernel instructions")
	}
}

func TestSleepDuration(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("app")
	var woke sim.Time
	p.Spawn("s", func(th *Thread) {
		th.Sleep(5 * sim.Millisecond)
		woke = th.Now()
	})
	eng.Run()
	if woke < 5*sim.Millisecond {
		t.Fatalf("woke at %v, want ≥ 5ms", woke)
	}
	if woke > 6*sim.Millisecond {
		t.Fatalf("woke at %v, way past deadline", woke)
	}
}

func TestSyscallObservation(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	var events []SyscallEvent
	k.ObserveSyscalls(func(ev SyscallEvent) { events = append(events, ev) })
	p := k.NewProc("app")
	k.CreateFile("data", 1<<20)
	p.Spawn("w", func(th *Thread) {
		fd := th.Open("data")
		th.Pread(fd, 8192, 4096)
		th.CloseFD(fd)
	})
	eng.Run()
	var ops []SyscallOp
	for _, ev := range events {
		ops = append(ops, ev.Op)
		if ev.Proc != "app" {
			t.Errorf("event proc = %q", ev.Proc)
		}
	}
	want := []SyscallOp{SysOpen, SysPread, SysClose}
	if len(ops) != 3 {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	if events[1].Bytes != 8192 || events[1].Offset != 4096 {
		t.Fatalf("pread event = %+v", events[1])
	}
	if events[1].FDClass != "file:data" {
		t.Fatalf("fd class = %q", events[1].FDClass)
	}
}

func TestPageCacheAndDisk(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("db")
	f := k.CreateFile("big", 1<<30)
	var coldDur, warmDur sim.Time
	p.Spawn("r", func(th *Thread) {
		fd := th.Open("big")
		start := th.Now()
		th.Pread(fd, 65536, 0) // cold: disk
		coldDur = th.Now() - start
		start = th.Now()
		th.Pread(fd, 65536, 0) // warm: page cache
		warmDur = th.Now() - start
	})
	eng.Run()
	if coldDur < 80*sim.Microsecond {
		t.Fatalf("cold read too fast: %v", coldDur)
	}
	if warmDur >= coldDur/2 {
		t.Fatalf("warm read should skip the disk: cold=%v warm=%v", coldDur, warmDur)
	}
	if p.DiskReadBytes != 65536 {
		t.Fatalf("DiskReadBytes = %d", p.DiskReadBytes)
	}
	_ = f
}

func TestPageCacheEviction(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1) // 1024-page cache = 4MB
	p := k.NewProc("db")
	k.CreateFile("big", 1<<30)
	var first, second sim.Time
	p.Spawn("r", func(th *Thread) {
		fd := th.Open("big")
		th.Pread(fd, 4096, 0)
		// Stream 8MB through the cache, evicting page 0.
		for off := int64(0); off < 8<<20; off += 1 << 20 {
			th.Pread(fd, 1<<20, off)
		}
		s := th.Now()
		th.Pread(fd, 4096, 0)
		first = th.Now() - s
		s = th.Now()
		th.Pread(fd, 4096, 0)
		second = th.Now() - s
	})
	eng.Run()
	if first <= second {
		t.Fatalf("evicted page should re-read from disk: first=%v second=%v", first, second)
	}
	if got := k.PageCacheResident(); got > 1024 {
		t.Fatalf("resident pages %d exceed capacity", got)
	}
}

func TestWarmPages(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("db")
	f := k.CreateFile("d", 1<<20)
	k.WarmPages(f, 0, 16)
	var dur sim.Time
	p.Spawn("r", func(th *Thread) {
		fd := th.Open("d")
		s := th.Now()
		th.Pread(fd, 16*4096, 0)
		dur = th.Now() - s
	})
	eng.Run()
	if dur > 60*sim.Microsecond {
		t.Fatalf("warmed read should not hit disk: %v", dur)
	}
}

func TestWriteFileAsync(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("db")
	k.CreateFile("log", 1<<20)
	var dur sim.Time
	p.Spawn("w", func(th *Thread) {
		fd := th.Open("log")
		s := th.Now()
		th.WriteFile(fd, 1<<20, 0)
		dur = th.Now() - s
	})
	eng.Run()
	// Write-back: only the syscall cost, far below the 2ms device time.
	if dur > sim.Millisecond {
		t.Fatalf("write-back should not block on device: %v", dur)
	}
	if p.DiskWritten != 1<<20 {
		t.Fatalf("DiskWritten = %d", p.DiskWritten)
	}
	// The data is dirty in the page cache, not on the device: it reaches
	// the disk at fsync (or dirty-page eviction), not at write time.
	if got := k.LookupFile("log").DirtyPages(); got != 1<<20/PageBytes {
		t.Fatalf("dirty pages = %d, want %d", got, 1<<20/PageBytes)
	}
	if w := k.Resources().Disk.Counters().WriteBytes; w != 0 {
		t.Fatalf("device saw %d bytes before fsync", w)
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	server := testMachine(eng, "srv", 2)
	client := testMachine(eng, "cli", 2)
	fabric := fabricFunc(func(src, dst *Kernel) netsim.Path {
		return netsim.Path{Src: src.Resources().NIC, Dst: dst.Resources().NIC,
			RTT: 100 * sim.Microsecond}
	})
	server.SetFabric(fabric)
	client.SetFabric(fabric)

	sp := server.NewProc("srv")
	cp := client.NewProc("cli")
	var rtt sim.Time
	var serverGot Msg
	sp.Spawn("acceptor", func(th *Thread) {
		l := th.Listen(80)
		conn := th.Accept(l)
		serverGot = th.Recv(conn)
		th.Send(conn, 4096, "resp")
	})
	cp.Spawn("client", func(th *Thread) {
		th.Sleep(sim.Millisecond) // let the server listen first
		conn := th.Connect(server, 80)
		start := th.Now()
		th.Send(conn, 128, "req")
		th.Recv(conn)
		rtt = th.Now() - start
	})
	eng.Run()
	if serverGot.Bytes != 128 || serverGot.Payload != "req" {
		t.Fatalf("server got %+v", serverGot)
	}
	if rtt < 100*sim.Microsecond {
		t.Fatalf("request RTT %v below propagation delay", rtt)
	}
	if cp.NetTxBytes != 128 || cp.NetRxBytes != 4096 {
		t.Fatalf("client accounting tx=%d rx=%d", cp.NetTxBytes, cp.NetRxBytes)
	}
	if sp.NetRxBytes != 128 || sp.NetTxBytes != 4096 {
		t.Fatalf("server accounting tx=%d rx=%d", sp.NetTxBytes, sp.NetRxBytes)
	}
}

type fabricFunc func(src, dst *Kernel) netsim.Path

func (f fabricFunc) Path(src, dst *Kernel) netsim.Path { return f(src, dst) }

func TestEpollMultiplexing(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 4)
	sp := k.NewProc("srv")
	cp := k.NewProc("cli")

	served := 0
	sp.Spawn("eventloop", func(th *Thread) {
		l := th.Listen(11211)
		ep := th.k.NewEpoll()
		th.EpollAddListener(ep, l)
		for served < 6 {
			for _, r := range th.EpollWait(ep) {
				switch {
				case r.Listener != nil:
					conn := th.TryAccept(r.Listener)
					if conn != nil {
						th.EpollAdd(ep, conn)
					}
				case r.Conn != nil:
					msg, ok := th.TryRecv(r.Conn)
					if ok {
						th.Run(aluStream(200))
						th.Send(r.Conn, msg.Bytes, nil)
						served++
					}
				}
			}
		}
	})
	for c := 0; c < 3; c++ {
		cp.Spawn("client", func(th *Thread) {
			th.Sleep(sim.Millisecond)
			conn := th.Connect(k, 11211)
			for i := 0; i < 2; i++ {
				th.Send(conn, 64, nil)
				th.Recv(conn)
			}
		})
	}
	eng.Run()
	if served != 6 {
		t.Fatalf("served = %d, want 6", served)
	}
}

func TestWaitQueue(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	p := k.NewProc("app")
	q := k.NewWaitQueue()
	state := 0
	p.Spawn("waiter", func(th *Thread) {
		for state == 0 {
			th.WaitOn(q)
		}
		state = 2
	})
	p.Spawn("waker", func(th *Thread) {
		th.Sleep(sim.Millisecond)
		state = 1
		q.WakeOne()
	})
	eng.Run()
	if state != 2 {
		t.Fatalf("state = %d, waiter did not resume", state)
	}
	// WakeOne/WakeAll on empty queues are no-ops.
	q.WakeOne()
	q.WakeAll()
}

func TestCloneAndThreadEvents(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	var spawns, exits, wakes int
	k.ObserveThreads(func(ev ThreadEvent) {
		switch ev.Kind {
		case ThreadSpawn:
			spawns++
		case ThreadExit:
			exits++
		case ThreadWake:
			wakes++
		}
	})
	p := k.NewProc("app")
	p.Spawn("parent", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Clone("child", func(c *Thread) { c.Run(aluStream(100)) })
		}
	})
	eng.Run()
	if spawns != 4 || exits != 4 {
		t.Fatalf("spawns=%d exits=%d", spawns, exits)
	}
	if wakes == 0 {
		t.Fatal("no wake events observed")
	}
	if p.SpawnedThreads() != 4 || p.LiveThreads() != 0 {
		t.Fatalf("spawned=%d live=%d", p.SpawnedThreads(), p.LiveThreads())
	}
}

func TestStopTerminatesBlockedThreads(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("app")
	q := k.NewWaitQueue()
	p.Spawn("stuck", func(th *Thread) {
		for {
			th.WaitOn(q) // never woken
		}
	})
	eng.RunFor(sim.Millisecond)
	k.Stop()
	eng.Run()
	if p.LiveThreads() != 0 {
		t.Fatalf("live threads after stop: %d", p.LiveThreads())
	}
}

func TestKernelStreamsAreKernelMode(t *testing.T) {
	var g kstreamGen
	g.rng = 1
	var buf []isa.Instr
	s := g.gen(&buf, SysSend, 4096, 1<<36)
	if len(s) < 2000 {
		t.Fatalf("send stream too short: %d", len(s))
	}
	var hasCopy bool
	for _, in := range s {
		if !in.Kernel {
			t.Fatal("kernel stream instruction without Kernel flag")
		}
		if in.Op == isa.REPMOVSB && in.RepCount == 4096 {
			hasCopy = true
		}
	}
	if !hasCopy {
		t.Fatal("payload copy missing from send stream")
	}
	// Deterministic given same generator state.
	var g2 kstreamGen
	g2.rng = 1
	var buf2 []isa.Instr
	s2 := g2.gen(&buf2, SysSend, 4096, 1<<36)
	if len(s) != len(s2) || s[100] != s2[100] {
		t.Fatal("kernel stream generation not deterministic")
	}
}

func TestSyscallOpString(t *testing.T) {
	if SysEpollWait.String() != "epoll_wait" || SyscallOp(200).String() != "sys?" {
		t.Fatal("syscall names wrong")
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng := sim.NewEngine()
		k := testMachine(eng, "m", 2)
		p := k.NewProc("app")
		for i := 0; i < 3; i++ {
			p.Spawn("w", func(th *Thread) {
				for j := 0; j < 10; j++ {
					th.Run(aluStream(2000))
					th.Sleep(10 * sim.Microsecond)
				}
			})
		}
		eng.Run()
		return eng.Now(), p.Counters.Instrs
	}
	t1, i1 := run()
	t2, i2 := run()
	if t1 != t2 || i1 != i2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, i1, t2, i2)
	}
}
