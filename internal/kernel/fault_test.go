package kernel

import (
	"testing"

	"ditto/internal/sim"
)

// TestKillProcUnbindsListener checks that a crashed process's listener is
// removed, so a resilient client's ConnectTimeout observes the crash rather
// than handshaking with a ghost.
func TestKillProcUnbindsListener(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	srv := k.NewProc("server")
	srv.Spawn("s", func(th *Thread) {
		l := th.Listen(90)
		conn := th.Accept(l)
		for {
			th.Recv(conn)
		}
	})

	cli := k.NewProc("client")
	var first, second *Endpoint
	cli.Spawn("c", func(th *Thread) {
		th.Sleep(sim.Millisecond)
		first = th.Connect(k, 90)
		th.Sleep(5 * sim.Millisecond) // crash happens at 3ms
		second = th.ConnectTimeout(k, 90, 2*sim.Millisecond)
	})

	eng.ScheduleFunc(3*sim.Millisecond, func() { k.KillProc(srv) })
	eng.Run()

	if first == nil {
		t.Fatal("pre-crash Connect failed")
	}
	if second != nil {
		t.Fatal("post-crash ConnectTimeout should return nil: listener must be unbound")
	}
	if _, ok := k.listeners[90]; ok {
		t.Fatal("listener for crashed proc still bound")
	}
}

// TestKillProcClosesConnSides checks that messages sent to a crashed process
// stop queueing (its connection sides are closed) and that a blocked sender's
// RecvTimeout fails fast instead of waiting out the full timeout.
func TestKillProcClosesConnSides(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	srv := k.NewProc("server")
	var serverSide *Endpoint
	srv.Spawn("s", func(th *Thread) {
		l := th.Listen(91)
		serverSide = th.Accept(l)
		for {
			msg := th.Recv(serverSide)
			th.Send(serverSide, 16, msg.Payload) // echo
		}
	})

	cli := k.NewProc("client")
	var okBefore, okAfter bool
	var failAt sim.Time
	cli.Spawn("c", func(th *Thread) {
		th.Sleep(sim.Millisecond)
		conn := th.Connect(k, 91)
		th.Send(conn, 16, nil)
		_, okBefore = th.RecvTimeout(conn, 10*sim.Millisecond)
		th.Sleep(5 * sim.Millisecond) // crash at 3ms; now past it
		th.Send(conn, 16, nil)
		start := eng.Now()
		_, okAfter = th.RecvTimeout(conn, 50*sim.Millisecond)
		failAt = eng.Now() - start
	})

	eng.ScheduleFunc(3*sim.Millisecond, func() { k.KillProc(srv) })
	eng.Run()

	if !okBefore {
		t.Fatal("pre-crash echo should succeed")
	}
	if okAfter {
		t.Fatal("post-crash recv should fail: peer side closed")
	}
	if failAt >= 50*sim.Millisecond {
		t.Fatalf("recv from dead peer waited out the full timeout (%v)", failAt)
	}
	if serverSide.mine.inbox != nil {
		t.Fatal("crashed proc's inbox should be released")
	}
}

// TestKillProcUnwindsThreads checks every thread of the killed process exits
// (blocked or about to block) while other processes keep running, and that a
// respawn into the same Proc works — the container-restart path.
func TestKillProcUnwindsThreads(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	victim := k.NewProc("victim")
	for i := 0; i < 3; i++ {
		victim.Spawn("loop", func(th *Thread) {
			for {
				th.Sleep(100 * sim.Microsecond)
			}
		})
	}
	other := k.NewProc("other")
	ticks := 0
	other.Spawn("t", func(th *Thread) {
		for eng.Now() < 10*sim.Millisecond {
			th.Sleep(sim.Millisecond)
			ticks++
		}
	})

	restarted := false
	eng.ScheduleFunc(3*sim.Millisecond, func() { k.KillProc(victim) })
	eng.ScheduleFunc(6*sim.Millisecond, func() {
		victim.Spawn("reborn", func(th *Thread) {
			th.Sleep(sim.Microsecond)
			restarted = true
		})
	})
	eng.Run()

	for _, th := range k.threads {
		if th.Proc == victim && !th.done {
			t.Fatalf("victim thread %q still alive after KillProc", th.Name)
		}
	}
	if ticks < 9 {
		t.Fatalf("unrelated proc disturbed by KillProc: %d ticks", ticks)
	}
	if !restarted {
		t.Fatal("respawn into killed proc should run")
	}
}

// TestRecvTimeout checks both arms: a message arriving inside the window is
// delivered, and an empty window returns ok=false at the deadline.
func TestRecvTimeout(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	p := k.NewProc("app")
	var conn *Endpoint
	p.Spawn("s", func(th *Thread) {
		l := th.Listen(92)
		conn = th.Accept(l)
		th.Sleep(2 * sim.Millisecond)
		th.Send(conn, 8, "late")
	})
	var gotFirst bool
	var second Msg
	var okSecond bool
	var waited sim.Time
	p.Spawn("c", func(th *Thread) {
		th.Sleep(sim.Millisecond)
		c := th.Connect(k, 92)
		start := eng.Now()
		_, gotFirst = th.RecvTimeout(c, 500*sim.Microsecond) // nothing for 1ms → timeout
		waited = eng.Now() - start
		second, okSecond = th.RecvTimeout(c, 10*sim.Millisecond) // arrives ~2ms
	})
	eng.Run()
	if gotFirst {
		t.Fatal("first recv should time out")
	}
	if waited < 500*sim.Microsecond {
		t.Fatalf("timed out early: %v", waited)
	}
	if !okSecond || second.Payload != "late" {
		t.Fatalf("second recv = %+v ok=%v", second, okSecond)
	}
}

// TestConnectTimeoutUnboundPort checks the bounded bind wait: no listener
// ever claims the port, so the dial gives up at (not far past) the deadline.
func TestConnectTimeoutUnboundPort(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("app")
	var ep *Endpoint = &Endpoint{} // sentinel
	var waited sim.Time
	p.Spawn("c", func(th *Thread) {
		start := eng.Now()
		ep = th.ConnectTimeout(k, 4040, sim.Millisecond)
		waited = eng.Now() - start
	})
	eng.Run()
	if ep != nil {
		t.Fatal("dial to unbound port should return nil")
	}
	if waited < sim.Millisecond || waited > sim.Millisecond+300*sim.Microsecond {
		t.Fatalf("waited %v, want ~1ms", waited)
	}
}
