package kernel

import (
	"testing"

	"ditto/internal/sim"
)

func TestTryRecvNonBlocking(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	p := k.NewProc("app")
	var polls, gets int
	p.Spawn("server", func(th *Thread) {
		l := th.Listen(80)
		conn := th.Accept(l)
		// Non-blocking poll loop (the §4.3.1 "non-blocking" model).
		for gets < 3 {
			if _, ok := th.TryRecv(conn); ok {
				gets++
			} else {
				polls++
				th.Sleep(20 * sim.Microsecond)
			}
		}
	})
	p.Spawn("client", func(th *Thread) {
		th.Sleep(sim.Millisecond)
		conn := th.Connect(k, 80)
		for i := 0; i < 3; i++ {
			th.Send(conn, 32, nil)
			th.Sleep(300 * sim.Microsecond)
		}
	})
	eng.Run()
	if gets != 3 {
		t.Fatalf("gets = %d", gets)
	}
	if polls == 0 {
		t.Fatal("non-blocking loop should have polled empty at least once")
	}
}

func TestTryAcceptEmpty(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	p := k.NewProc("app")
	var got *Endpoint = &Endpoint{} // sentinel
	p.Spawn("s", func(th *Thread) {
		l := th.Listen(81)
		got = th.TryAccept(l)
	})
	eng.Run()
	if got != nil {
		t.Fatal("TryAccept on empty backlog should return nil")
	}
}

func TestCloseConnDropsDelivery(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	p := k.NewProc("app")
	var server *Endpoint
	p.Spawn("s", func(th *Thread) {
		l := th.Listen(82)
		server = th.Accept(l)
		th.CloseConn(server)
	})
	p.Spawn("c", func(th *Thread) {
		th.Sleep(sim.Millisecond)
		conn := th.Connect(k, 82)
		th.Sleep(sim.Millisecond) // let the server close first
		th.Send(conn, 64, nil)
	})
	eng.Run()
	if server == nil {
		t.Fatal("no connection accepted")
	}
	if server.Pending() != 0 {
		t.Fatal("closed endpoint should drop deliveries")
	}
}

func TestConnectRetriesUntilListen(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 2)
	p := k.NewProc("app")
	connected := false
	p.Spawn("client-first", func(th *Thread) {
		conn := th.Connect(k, 83) // server not listening yet
		th.Send(conn, 16, nil)
		connected = true
	})
	p.Spawn("late-server", func(th *Thread) {
		th.Sleep(5 * sim.Millisecond)
		l := th.Listen(83)
		conn := th.Accept(l)
		th.Recv(conn)
	})
	eng.Run()
	if !connected {
		t.Fatal("connect did not retry until the listener appeared")
	}
	if eng.Now() < 5*sim.Millisecond {
		t.Fatal("connection must have waited for the listener")
	}
}

func TestPageLRUDirect(t *testing.T) {
	l := newPageLRU(3)
	k := func(p int64) pageKey { return pageKey{file: 1, page: p} }
	if l.touch(k(1)) {
		t.Fatal("cold touch should miss (and insert)")
	}
	if !l.touch(k(1)) {
		t.Fatal("second touch should hit")
	}
	l.insert(k(2))
	l.insert(k(3))
	l.touch(k(1)) // 1 is MRU
	l.insert(k(4))
	// Capacity 3: inserting 4 evicts LRU (2).
	if l.touch(k(2)) {
		t.Fatal("page 2 should have been evicted")
	}
	// touch(k(2)) reinserted 2, evicting 3 (LRU after the miss on 2).
	if !l.touch(k(1)) {
		t.Fatal("page 1 should survive as recently used")
	}
	if len(l.m) > 3 {
		t.Fatalf("LRU exceeded capacity: %d", len(l.m))
	}
}

func TestKernelStreamVariantsRotate(t *testing.T) {
	eng := sim.NewEngine()
	k := testMachine(eng, "m", 1)
	first := k.kstream(SysSend)
	second := k.kstream(SysSend)
	if first == second {
		t.Fatal("consecutive calls should rotate variants")
	}
	if &first.Stream[0] == &second.Stream[0] {
		t.Fatal("rotated variants should be distinct streams")
	}
	// After kvariantCount calls the rotation wraps to the first variant.
	for i := 2; i < kvariantCount; i++ {
		k.kstream(SysSend)
	}
	wrapped := k.kstream(SysSend)
	if first != wrapped {
		t.Fatal("variant rotation should wrap")
	}
}
