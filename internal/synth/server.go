package synth

import (
	"fmt"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// Server runs a generated SynthSpec as a standalone server application. Its
// skeleton is instantiated from the profile-detected network and thread
// models (§4.3), its handlers replay the profiled syscall plan and execute
// the generated body, and its responses carry the profiled response size.
type Server struct {
	app.Base
	Spec *core.SynthSpec

	bodies  map[int]*Body // per worker
	streams map[int]*app.StreamCache
	file    *kernel.File
	offRng  *stats.Rand
	reps    map[int]*sysReplayer // per worker
}

// NewServer builds the synthetic server on m.
func NewServer(m *platform.Machine, port int, spec *core.SynthSpec, seed int64) *Server {
	s := &Server{
		Spec:    spec,
		bodies:  map[int]*Body{},
		streams: map[int]*app.StreamCache{},
		offRng:  stats.NewRand(seed ^ 0x0FF5E7),
		reps:    map[int]*sysReplayer{},
	}
	s.Base = app.NewBaseFor(spec.Name, m, port, seed)
	return s
}

// body returns worker w's body instance.
func (s *Server) body(w int) *Body {
	b := s.bodies[w]
	if b == nil {
		b = NewBody(&s.Spec.Body, s.P.MemBase+uint64(w+1)<<32, s.Seed+int64(w))
		s.bodies[w] = b
	}
	return b
}

// cache returns worker w's rotating pregenerated-stream cache.
func (s *Server) cache(w int) *app.StreamCache {
	c := s.streams[w]
	if c == nil {
		c = app.NewStreamCache(s.body(w))
		s.streams[w] = c
	}
	return c
}

// rep returns worker w's syscall replayer (workers share the dataset file
// and offset stream but carry their own fractional-rate state).
func (s *Server) rep(w int) *sysReplayer {
	r := s.reps[w]
	if r == nil {
		r = newSysReplayer(s.Spec.Syscalls, s.file, s.offRng)
		s.reps[w] = r
	}
	return r
}

// Start instantiates the skeleton and launches threads.
func (s *Server) Start() {
	// Synthetic dataset for file-syscall replay.
	if maxFile := maxPlanFile(s.Spec.Syscalls); maxFile > 0 {
		s.file = s.M.Kernel.CreateFile("/data/"+s.Spec.Name+".synth", maxFile)
	}

	sk := s.Spec.Skeleton
	switch {
	case sk.PerConn:
		s.P.Spawn("acceptor", func(th *kernel.Thread) {
			l := th.Listen(s.ListenPort)
			app.ConnPerThreadLoop(th, l, func(th *kernel.Thread, c *kernel.Endpoint, m kernel.Msg) {
				s.handle(th, 0, c, m)
			})
		})
	case sk.Workers > 1:
		// Dispatcher + fixed worker pool over per-worker epoll sets.
		epolls := make([]*kernel.Epoll, sk.Workers)
		for w := range epolls {
			epolls[w] = s.M.Kernel.NewEpoll()
		}
		s.P.Spawn("dispatcher", func(th *kernel.Thread) {
			l := th.Listen(s.ListenPort)
			next := 0
			for {
				conn := th.Accept(l)
				th.EpollAdd(epolls[next%sk.Workers], conn)
				next++
			}
		})
		for w := 0; w < sk.Workers; w++ {
			w := w
			s.P.Spawn(fmt.Sprintf("worker-%d", w), func(th *kernel.Thread) {
				for {
					for _, r := range th.EpollWait(epolls[w]) {
						for r.Conn != nil && r.Conn.Pending() > 0 {
							msg, ok := th.TryRecv(r.Conn)
							if !ok {
								break
							}
							s.handle(th, w, r.Conn, msg)
						}
					}
				}
			})
		}
	default:
		s.P.Spawn("eventloop", func(th *kernel.Thread) {
			l := th.Listen(s.ListenPort)
			app.EventLoop(th, l, func(th *kernel.Thread, c *kernel.Endpoint, m kernel.Msg) {
				s.handle(th, 0, c, m)
			})
		})
	}
}

// handle serves one synthetic request: syscall replay, body, response.
func (s *Server) handle(th *kernel.Thread, w int, conn *kernel.Endpoint, msg kernel.Msg) {
	s.rep(w).replay(th)
	th.RunTrace(s.cache(w).Next(0))
	resp := s.Spec.RespBytes
	if resp <= 0 {
		resp = 64
	}
	th.Send(conn, resp, msg.Payload)
}
