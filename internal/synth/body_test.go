package synth

import (
	"math"
	"testing"

	"ditto/internal/core"
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/profile"
)

func specFixture() *core.SynthSpec {
	prof := &profile.AppProfile{
		Name:          "fix",
		ReqBytesMean:  64,
		RespBytesMean: 512,
		Skeleton:      profile.SkeletonProfile{NetworkModel: "iomux", Workers: 1},
	}
	b := &prof.Body
	b.InstrsPerRequest = 3000
	b.Mix = []profile.MixEntry{{Op: isa.ADDrr, Share: 0.6}, {Op: isa.IMULrr, Share: 0.2},
		{Op: isa.CRC32rr, Share: 0.2}}
	b.BranchShare = 0.1
	b.MemShare = 0.3
	b.StoreFrac = 0.3
	b.Branches = []profile.BranchBin{{M: 2, N: 3, Weight: 1}}
	b.IWS = []profile.WSBin{{Bytes: 1024, Count: 2000}, {Bytes: 16384, Count: 1000}}
	b.DWS = []profile.WSBin{{Bytes: 4096, Count: 500}, {Bytes: 256 << 10, Count: 400}}
	b.RegularFrac = 1.0
	b.RAW.Bins[2] = 1
	b.WAW.Bins[2] = 1
	b.WAR.Bins[2] = 1
	return core.Generate(prof, 5)
}

func TestBodyEmitBudget(t *testing.T) {
	spec := specFixture()
	body := NewBody(&spec.Body, 1<<36, 9)
	var total int
	const reqs = 50
	for r := 0; r < reqs; r++ {
		total += len(body.EmitRequest(0, nil))
	}
	per := float64(total) / reqs
	if math.Abs(per-3000) > 600 {
		t.Fatalf("instrs/request = %v, want ≈ 3000", per)
	}
}

func TestBodyAddressesStayInArray(t *testing.T) {
	spec := specFixture()
	base := uint64(1) << 36
	body := NewBody(&spec.Body, base, 9)
	for r := 0; r < 20; r++ {
		for _, in := range body.EmitRequest(0, nil) {
			f := &isa.Table[in.Op]
			if !(f.Load || f.Store) {
				continue
			}
			if in.Addr < base || in.Addr >= base+spec.Body.ArrayBytes {
				t.Fatalf("address %#x outside data array [%#x, %#x)",
					in.Addr, base, base+spec.Body.ArrayBytes)
			}
		}
	}
}

// The Fig. 4 guarantee carried into the runtime: regular accesses for the
// region of working set W sweep [W/2, W) sequentially.
func TestBodyRegionSweep(t *testing.T) {
	spec := specFixture()
	base := uint64(1) << 36
	body := NewBody(&spec.Body, base, 9)
	// Find the 256KB region.
	var reg core.Region
	for _, r := range spec.Body.Regions {
		if r.WSBytes == 256<<10 {
			reg = r
		}
	}
	if reg.WSBytes == 0 {
		t.Fatal("region missing")
	}
	lo, hi := base+reg.Start, base+reg.Start+reg.Span
	seen := 0
	for r := 0; r < 30; r++ {
		for _, in := range body.EmitRequest(0, nil) {
			f := &isa.Table[in.Op]
			if (f.Load || f.Store) && in.Addr >= lo && in.Addr < hi {
				seen++
			}
		}
	}
	if seen == 0 {
		t.Fatal("no accesses landed in the large region")
	}
}

func TestBodyBranchOutcomesMatchMN(t *testing.T) {
	spec := specFixture()
	body := NewBody(&spec.Body, 1<<36, 9)
	taken, total := 0, 0
	for r := 0; r < 40; r++ {
		for _, in := range body.EmitRequest(0, nil) {
			if in.BranchID >= 0 {
				total++
				if in.Taken {
					taken++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches emitted")
	}
	rate := float64(taken) / float64(total)
	if math.Abs(rate-0.25) > 0.08 {
		t.Fatalf("taken rate = %v, want ≈ 2^-2", rate)
	}
}

func TestBodyDeterminism(t *testing.T) {
	spec := specFixture()
	a := NewBody(&spec.Body, 1<<36, 9)
	b := NewBody(&spec.Body, 1<<36, 9)
	sa := a.EmitRequest(0, nil)
	sb := b.EmitRequest(0, nil)
	if len(sa) != len(sb) {
		t.Fatal("lengths differ")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
}

func TestServerSkeletonVariants(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*core.SynthSpec)
		threads int
	}{
		{name: "eventloop", mutate: func(s *core.SynthSpec) {
			s.Skeleton.Workers = 1
		}, threads: 1},
		{name: "dispatcher-pool", mutate: func(s *core.SynthSpec) {
			s.Skeleton.Workers = 3
			s.Skeleton.Dispatcher = true
		}, threads: 4},
		{name: "per-conn", mutate: func(s *core.SynthSpec) {
			s.Skeleton.PerConn = true
		}, threads: 3}, // acceptor + one per connection (2 conns)
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := specFixture()
			tc.mutate(spec)
			env := newTestEnv(t)
			defer env.shutdown()
			s := NewServer(env.server, 9200, spec, 3)
			s.Start()
			served := env.drive(t, 9200, 2, 10)
			if served != 20 {
				t.Fatalf("served %d of 20", served)
			}
			if got := s.Proc().SpawnedThreads(); got != tc.threads {
				t.Fatalf("threads = %d, want %d", got, tc.threads)
			}
		})
	}
}

func TestServerSyscallReplay(t *testing.T) {
	spec := specFixture()
	spec.Syscalls = []core.SyscallPlan{
		{Op: kernel.SysOpen, PerRequest: 1},
		{Op: kernel.SysPread, PerRequest: 1, Bytes: 16384, FileSize: 1 << 28, UniformOffsets: true},
		{Op: kernel.SysClose, PerRequest: 1},
	}
	env := newTestEnv(t)
	defer env.shutdown()
	s := NewServer(env.server, 9200, spec, 3)
	s.Start()
	var preads int
	env.server.Kernel.ObserveSyscalls(func(ev kernel.SyscallEvent) {
		if ev.Proc == spec.Name && ev.Op == kernel.SysPread {
			preads++
			if ev.Bytes != 16384 {
				t.Errorf("pread bytes = %d", ev.Bytes)
			}
		}
	})
	served := env.drive(t, 9200, 2, 10)
	if served != 20 {
		t.Fatalf("served %d", served)
	}
	if preads != 20 {
		t.Fatalf("preads = %d, want one per request", preads)
	}
	if s.Proc().DiskReadBytes == 0 {
		t.Fatal("uniform preads over 256MB should miss the page cache")
	}
}
