package synth

import (
	"testing"

	"ditto/internal/app"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// testEnv is a minimal two-machine environment for package-internal tests
// (the heavyweight harness lives in internal/experiments).
type testEnv struct {
	eng    *sim.Engine
	server *platform.Machine
	client *platform.Machine
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	srv := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(4))
	cli := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(4))
	cl.Add(srv)
	cl.Add(cli)
	return &testEnv{eng: eng, server: srv, client: cli}
}

// drive sends n requests per connection over conns closed-loop connections
// and returns how many responses arrived.
func (e *testEnv) drive(t *testing.T, port, conns, perConn int) int {
	t.Helper()
	cp := e.client.Kernel.NewProc("driver")
	served := 0
	for c := 0; c < conns; c++ {
		cp.Spawn("cli", func(th *kernel.Thread) {
			conn := th.Connect(e.server.Kernel, port)
			for i := 0; i < perConn; i++ {
				th.Send(conn, 64, &app.Request{Kind: 0, SentAt: th.Now()})
				th.Recv(conn)
				served++
			}
		})
	}
	e.eng.RunUntil(20 * sim.Second)
	return served
}

func (e *testEnv) shutdown() {
	e.server.Kernel.Stop()
	e.client.Kernel.Stop()
	e.eng.Run()
}
