package synth_test

import (
	"math"
	"testing"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/synth"
)

var cloneLoad = experiments.Load{Conns: 4, Seed: 21}

func cloneWindows() experiments.Windows {
	return experiments.Windows{Warmup: 20 * sim.Millisecond, Measure: 120 * sim.Millisecond}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return math.Abs(a-b) / b
}

func TestPipelineClonesRedis(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	build := func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, 31) }
	win := cloneWindows()
	prof, spec := experiments.Clone(build, cloneLoad, win, 64<<20, 0, 77)

	// Skeleton transferred.
	if spec.Skeleton.NetworkModel != "iomux" || spec.Skeleton.PerConn {
		t.Fatalf("skeleton = %+v", spec.Skeleton)
	}

	// Measure original and synthetic under identical load on Platform A.
	envO := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	orig := build(envO.Server)
	orig.Start()
	resO := experiments.Measure(envO, orig, cloneLoad, win)
	envO.Shutdown()

	envS := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	s := synth.NewServer(envS.Server, 9100, spec, 123)
	s.Start()
	resS := experiments.Measure(envS, s, cloneLoad, win)
	envS.Shutdown()

	if resO.Throughput == 0 || resS.Throughput == 0 {
		t.Fatalf("no traffic: orig=%v synth=%v", resO.Throughput, resS.Throughput)
	}
	// Untuned generation: coarse agreement expected (fine tuning tightens).
	if d := relDiff(resS.Metrics.IPC, resO.Metrics.IPC); d > 0.5 {
		t.Errorf("IPC: synth=%v orig=%v (Δ %.0f%%)", resS.Metrics.IPC, resO.Metrics.IPC, d*100)
	}
	if d := relDiff(resS.Metrics.KernelShare, resO.Metrics.KernelShare); d > 0.4 {
		t.Errorf("kernel share: synth=%v orig=%v", resS.Metrics.KernelShare, resO.Metrics.KernelShare)
	}
	// Network bandwidth should clone closely (same syscalls, same sizes).
	if d := relDiff(resS.NetBW/resS.Throughput, resO.NetBW/resO.Throughput); d > 0.2 {
		t.Errorf("per-request net bytes: synth=%v orig=%v",
			resS.NetBW/resS.Throughput, resO.NetBW/resO.Throughput)
	}
	// Latency in the same regime.
	if resS.AvgMs <= 0 || resS.AvgMs > 5*resO.AvgMs {
		t.Errorf("latency: synth=%vms orig=%vms", resS.AvgMs, resO.AvgMs)
	}
	_ = prof
	t.Logf("orig: %+v", resO.Metrics)
	t.Logf("synt: %+v", resS.Metrics)
}

func TestPipelineClonesMongoDBDiskBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	build := func(m *platform.Machine) app.App { return app.NewMongoDB(m, 27017, 32) }
	win := cloneWindows()
	_, spec := experiments.Clone(build, cloneLoad, win, 64<<20, 0, 78)
	if !spec.Skeleton.PerConn {
		t.Fatalf("mongodb skeleton should be per-conn: %+v", spec.Skeleton)
	}

	envO := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	orig := build(envO.Server)
	orig.Start()
	resO := experiments.Measure(envO, orig, cloneLoad, win)
	envO.Shutdown()

	envS := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	s := synth.NewServer(envS.Server, 9100, spec, 124)
	s.Start()
	resS := experiments.Measure(envS, s, cloneLoad, win)
	envS.Shutdown()

	if resO.DiskBW == 0 || resS.DiskBW == 0 {
		t.Fatalf("disk bandwidth missing: orig=%v synth=%v", resO.DiskBW, resS.DiskBW)
	}
	// Disk BW per request should match tightly (paper reports 0.1% error;
	// allow simulator-scale slack).
	if d := relDiff(resS.DiskBW/resS.Throughput, resO.DiskBW/resO.Throughput); d > 0.25 {
		t.Errorf("per-request disk bytes: synth=%v orig=%v",
			resS.DiskBW/resS.Throughput, resO.DiskBW/resO.Throughput)
	}
	// Disk-bound latency regime preserved.
	if resS.AvgMs < resO.AvgMs/4 || resS.AvgMs > resO.AvgMs*4 {
		t.Errorf("latency regime: synth=%vms orig=%vms", resS.AvgMs, resO.AvgMs)
	}
}

func TestFineTuneImprovesRedisClone(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning loop is expensive")
	}
	build := func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, 33) }
	win := cloneWindows()
	prof := experiments.ProfileRun(build, cloneLoad, win, 64<<20)
	runner := experiments.SynthRunner(cloneLoad, win)

	base := core.Generate(prof, 55)
	baseErr := core.MaxRelErr(runner(base), prof.Target)
	tuned, trace := core.FineTune(prof, 55, runner, 5, 0.05)
	finalErr := core.MaxRelErr(runner(tuned), prof.Target)
	t.Logf("base err=%.3f final err=%.3f steps=%d", baseErr, finalErr, len(trace))
	if finalErr > baseErr*1.15 && finalErr > 0.10 {
		t.Errorf("tuning regressed: base=%.3f final=%.3f", baseErr, finalErr)
	}
	if finalErr > 0.6 {
		t.Errorf("tuned clone still far off: %.3f", finalErr)
	}
}
