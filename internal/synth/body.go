// Package synth is the runtime for Ditto-generated applications: it
// executes a core.SynthSpec as a real server (or microservice tier) on the
// simulated platform — the equivalent of compiling and running the C +
// inline-assembly programs the paper's generator emits.
package synth

import (
	"ditto/internal/branch"
	"ditto/internal/core"
	"ditto/internal/isa"
	"ditto/internal/stats"
)

// Body executes a generated BodySpec, implementing app.Body. Each Body owns
// mutable runtime state (branch counters, region sweep cursors, fractional
// loop accumulators); create one per worker thread, as generated C code
// would instantiate its state per thread.
type Body struct {
	spec      *core.BodySpec
	arrayBase uint64
	branches  [][]branch.BitmaskBranch // per block, per slot (zero: not a branch)
	loopAcc   []float64
	cursors   []uint64 // per region sequential sweep positions
	scramble  uint64
}

// NewBody instantiates runtime state for spec. arrayBase is where the
// synthetic data array lives in the owning process's address space.
func NewBody(spec *core.BodySpec, arrayBase uint64, seed int64) *Body {
	b := &Body{
		spec:      spec,
		arrayBase: arrayBase,
		loopAcc:   make([]float64, len(spec.Blocks)),
		cursors:   make([]uint64, len(spec.Regions)),
		scramble:  uint64(seed)*0x9E3779B97F4A7C15 + 0x1234,
	}
	rng := stats.NewRand(seed ^ 0x5EED)
	b.branches = make([][]branch.BitmaskBranch, len(spec.Blocks))
	for bi := range spec.Blocks {
		blk := &spec.Blocks[bi]
		bb := make([]branch.BitmaskBranch, len(blk.Instrs))
		for s := range blk.Aux {
			if blk.Aux[s].IsBranch {
				bb[s] = branch.MakeBitmaskBranch(blk.Aux[s].M, blk.Aux[s].N)
				bb[s].SetPhase(rng.Uint64() % (1 << 11))
			}
		}
		b.branches[bi] = bb
	}
	return b
}

// EmitRequest implements app.Body: one request's worth of block loop
// iterations. The kind is ignored — generated bodies are statistical, not
// per-operation (tiers scale work through learned call plans instead).
func (b *Body) EmitRequest(kind int, buf []isa.Instr) []isa.Instr {
	for bi := range b.spec.Blocks {
		blk := &b.spec.Blocks[bi]
		b.loopAcc[bi] += blk.LoopsPerRequest
		loops := int(b.loopAcc[bi])
		b.loopAcc[bi] -= float64(loops)
		for l := 0; l < loops; l++ {
			buf = b.emitBlock(bi, blk, buf)
		}
	}
	return buf
}

// emitBlock walks the block's static code once.
func (b *Body) emitBlock(bi int, blk *core.Block, buf []isa.Instr) []isa.Instr {
	branches := b.branches[bi]
	for s := range blk.Instrs {
		in := blk.Instrs[s]
		aux := &blk.Aux[s]
		switch {
		case aux.IsBranch:
			in.Taken = branches[s].Next()
		case aux.IsMem:
			in.Addr = b.address(aux, in.RepCount)
		}
		buf = append(buf, in)
	}
	return buf
}

// address produces the next address for a memory slot: a sequential sweep
// within the slot's region (the Fig. 4 pattern that guarantees the Eq. 1
// hit/miss behaviour), or a scrambled in-region offset for the irregular
// share.
func (b *Body) address(aux *core.SlotAux, repCount int32) uint64 {
	if len(b.spec.Regions) == 0 {
		return b.arrayBase
	}
	ri := aux.Region
	if ri >= len(b.spec.Regions) {
		ri = len(b.spec.Regions) - 1
	}
	reg := &b.spec.Regions[ri]
	if aux.Regular {
		step := uint64(isa.LineBytes)
		if aux.IsRep && repCount > 0 {
			step = uint64(repCount)
		}
		c := b.cursors[ri]
		b.cursors[ri] = (c + step) % reg.Span
		return b.arrayBase + reg.Start + c%reg.Span
	}
	b.scramble ^= b.scramble >> 12
	b.scramble ^= b.scramble << 25
	b.scramble ^= b.scramble >> 27
	off := (b.scramble * 0x2545F4914F6CDD1D) % reg.Span &^ 63
	return b.arrayBase + reg.Start + off
}
