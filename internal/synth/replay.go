package synth

import (
	"ditto/internal/core"
	"ditto/internal/kernel"
	"ditto/internal/stats"
)

// sysReplayer replays a generated syscall plan at its profiled per-request
// rates, carrying fractional rates across requests deterministically. The
// standalone Server and synthetic tiers share it: this is the §4.4
// machinery that reproduces kernel, page-cache, and device behaviour by
// imitating the system calls themselves — including the fsync commit path,
// whose durability wait is what gives a cloned storage tier the original's
// disk contention.
type sysReplayer struct {
	plans []core.SyscallPlan
	file  *kernel.File
	rng   *stats.Rand
	acc   []float64 // fractional per-request carry, one per plan entry
	wcur  int64     // WAL-style append cursor for replayed writes
}

// newSysReplayer builds a replayer over a shared synthetic file (nil when
// the plan has no file syscalls) and a shared offset stream.
func newSysReplayer(plans []core.SyscallPlan, file *kernel.File, rng *stats.Rand) *sysReplayer {
	return &sysReplayer{plans: plans, file: file, rng: rng,
		acc: make([]float64, len(plans))}
}

// maxPlanFile returns the largest file size any plan entry touches — the
// size of the synthetic dataset the replayer needs.
func maxPlanFile(plans []core.SyscallPlan) int64 {
	var max int64
	for _, p := range plans {
		if p.FileSize > max {
			max = p.FileSize
		}
	}
	return max
}

// replay issues one request's worth of planned syscalls on th.
func (r *sysReplayer) replay(th *kernel.Thread) {
	var fd *kernel.FD
	for i := range r.plans {
		p := &r.plans[i]
		r.acc[i] += p.PerRequest
		n := int(r.acc[i])
		r.acc[i] -= float64(n)
		for ; n > 0; n-- {
			switch p.Op {
			case kernel.SysOpen:
				if r.file != nil {
					fd = th.Open(r.file.Name)
				}
			case kernel.SysPread:
				if r.file == nil {
					continue
				}
				f := fd
				if f == nil {
					f = th.Open(r.file.Name)
				}
				off := int64(0)
				if p.UniformOffsets && p.FileSize > int64(p.Bytes) {
					off = r.rng.Int63n((p.FileSize-int64(p.Bytes))/kernel.PageBytes) * kernel.PageBytes
				}
				th.Pread(f, p.Bytes, off)
				if fd == nil {
					th.CloseFD(f)
				}
			case kernel.SysWrite:
				if r.file == nil {
					continue
				}
				f := fd
				if f == nil {
					f = th.Open(r.file.Name)
				}
				// Advancing append cursor, wrapping at the file size: the
				// dirty-page footprint between fsyncs then matches a log
				// writer's, which is what the profiled rates came from.
				if r.wcur+int64(p.Bytes) > r.file.Size {
					r.wcur = 0
				}
				th.WriteFile(f, p.Bytes, r.wcur)
				r.wcur += int64(p.Bytes)
				if fd == nil {
					th.CloseFD(f)
				}
			case kernel.SysFsync:
				if r.file == nil {
					continue
				}
				f := fd
				if f == nil {
					f = th.Open(r.file.Name)
				}
				th.Fsync(f)
				if fd == nil {
					th.CloseFD(f)
				}
			case kernel.SysClose:
				if fd != nil {
					th.CloseFD(fd)
					fd = nil
				}
			case kernel.SysMmap:
				// Address-space management: charge the syscall only.
			}
		}
	}
	if fd != nil {
		th.CloseFD(fd)
	}
}
