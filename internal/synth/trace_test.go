package synth

import (
	"bufio"
	"strings"
	"testing"
)

func TestExportTrace(t *testing.T) {
	spec := specFixture()
	var sb strings.Builder
	n, err := ExportTrace(&sb, spec, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3000 {
		t.Fatalf("records = %d, want ≥ one per instruction", n)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines, loads, stores int64
	for sc.Scan() {
		lines++
		f := strings.Fields(sc.Text())
		switch f[0] {
		case "I":
			if len(f) != 2 {
				t.Fatalf("bad I record: %q", sc.Text())
			}
		case "L":
			loads++
			if len(f) != 3 {
				t.Fatalf("bad L record: %q", sc.Text())
			}
		case "S":
			stores++
			if len(f) != 3 {
				t.Fatalf("bad S record: %q", sc.Text())
			}
		default:
			t.Fatalf("unknown record: %q", sc.Text())
		}
	}
	if lines != n {
		t.Fatalf("lines = %d, records = %d", lines, n)
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("trace missing memory records: loads=%d stores=%d", loads, stores)
	}
}

func TestExportTraceDeterministic(t *testing.T) {
	spec := specFixture()
	var a, b strings.Builder
	if _, err := ExportTrace(&a, spec, 2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := ExportTrace(&b, spec, 2, 5); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("trace export not deterministic")
	}
}
