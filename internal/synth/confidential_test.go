package synth_test

import (
	"strings"
	"testing"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/isa"
	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/sim"
	"ditto/internal/synth"
)

// TestCloneRevealsNoOriginalCodeOrData verifies the abstraction property of
// §4.1: the generated artifact shares no instruction addresses, no data
// addresses, and no static code with the original application — only
// post-processed statistics — so it can be shared publicly.
func TestCloneRevealsNoOriginalCodeOrData(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	srv := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(8))
	cli := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(8))
	cl.Add(srv)
	cl.Add(cli)
	a := app.NewRedis(srv, 6379, 51)
	a.Start()

	// Record the original's instruction and data address universe while
	// profiling it.
	origPCs := map[uint64]bool{}
	origAddrs := map[uint64]bool{}
	a.Proc().ObserveInstrs(func(s []isa.Instr) {
		for i := range s {
			origPCs[s[i].PC] = true
			if s[i].Addr != 0 {
				origAddrs[s[i].Addr/64] = true
			}
		}
	})
	p := profile.NewProfiler("redis")
	p.MaxDataWS = 64 << 20
	p.Attach(a.Proc())
	g := loadgen.New(loadgen.Config{Name: "lg", Machine: cli, Target: srv.Kernel,
		Port: a.Port(), Conns: 4, Seed: 51})
	g.Start()
	eng.RunFor(80 * sim.Millisecond)
	prof := p.Finish()
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()

	spec := core.Generate(prof, 99)

	// 1. Static synthetic code never reuses an original instruction address.
	for _, blk := range spec.Body.Blocks {
		for i := range blk.Instrs {
			if origPCs[blk.Instrs[i].PC] {
				t.Fatalf("synthetic PC %#x collides with original code", blk.Instrs[i].PC)
			}
			if blk.Instrs[i].Addr != 0 {
				t.Fatalf("generated static code hard-codes an absolute data address %#x",
					blk.Instrs[i].Addr)
			}
		}
	}

	// 2. The synthetic runtime's data accesses live in its own array, never
	// touching original cache lines.
	body := synth.NewBody(&spec.Body, 1<<45, 7)
	for r := 0; r < 10; r++ {
		for _, in := range body.EmitRequest(0, nil) {
			if in.Addr != 0 && origAddrs[in.Addr/64] {
				t.Fatalf("synthetic access to original data line %#x", in.Addr)
			}
		}
	}

	// 3. The shareable artifact (the profile JSON) carries only aggregate
	// statistics: no address fields and no raw traces.
	data, err := prof.Encode()
	if err != nil {
		t.Fatal(err)
	}
	js := string(data)
	for _, leak := range []string{`"addr"`, `"trace"`, `"pc"`, `"offsets"`} {
		if strings.Contains(strings.ToLower(js), leak) {
			t.Fatalf("profile JSON contains %q — potential leakage surface", leak)
		}
	}
	if len(data) > 64<<10 {
		t.Fatalf("profile unexpectedly large (%d bytes): aggregates only, not traces", len(data))
	}
}
