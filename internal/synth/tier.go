package synth

import (
	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// NewTier builds a synthetic microservice tier: an app.Tier whose body is a
// generated Body, whose downstream call plan comes from the learned
// topology, and whose storage syscalls replay the profiled plan. This is
// how Ditto replaces every tier of the Social Network in Fig. 6.
func NewTier(m *platform.Machine, port int, spec *core.SynthSpec,
	plan *core.TierPlan, reg app.Registry, seed int64) *app.Tier {

	model := "epoll"
	if spec.Skeleton.PerConn {
		model = "pool"
	}
	resp := plan.RespBytes
	if resp <= 0 {
		resp = spec.RespBytes
	}
	cfg := app.TierConfig{
		Name:      plan.Service + "-synth",
		Port:      port,
		Model:     model,
		RespBytes: resp,
		Calls:     plan.Calls,
		Seed:      seed,
	}
	t := app.NewTier(m, cfg, nil)
	t.Body = NewBody(&spec.Body, t.P.MemBase+1<<32, seed)
	t.Registry = reg

	// File-syscall replay (storage tiers).
	var pread *core.SyscallPlan
	for i := range spec.Syscalls {
		if spec.Syscalls[i].Op == kernel.SysPread && spec.Syscalls[i].FileSize > 0 {
			pread = &spec.Syscalls[i]
		}
	}
	if pread != nil {
		file := m.Kernel.CreateFile("/data/"+cfg.Name+".synth", pread.FileSize)
		rng := stats.NewRand(seed ^ 0x10)
		rate := pread.PerRequest
		acc := 0.0
		p := *pread
		t.PostWork = func(th *kernel.Thread, kind int) {
			acc += rate
			for acc >= 1 {
				acc--
				off := int64(0)
				if p.UniformOffsets && p.FileSize > int64(p.Bytes) {
					off = rng.Int63n((p.FileSize-int64(p.Bytes))/kernel.PageBytes) * kernel.PageBytes
				}
				fd := th.Open(file.Name)
				th.Pread(fd, p.Bytes, off)
				th.CloseFD(fd)
			}
		}
	}
	return t
}
