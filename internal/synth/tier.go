package synth

import (
	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/stats"
)

// NewTier builds a synthetic microservice tier: an app.Tier whose body is a
// generated Body, whose downstream call plan comes from the learned
// topology, and whose storage syscalls replay the profiled plan. This is
// how Ditto replaces every tier of the Social Network in Fig. 6.
func NewTier(m *platform.Machine, port int, spec *core.SynthSpec,
	plan *core.TierPlan, reg app.Registry, seed int64) *app.Tier {

	model := "epoll"
	if spec.Skeleton.PerConn {
		model = "pool"
	}
	resp := plan.RespBytes
	if resp <= 0 {
		resp = spec.RespBytes
	}
	cfg := app.TierConfig{
		Name:      plan.Service + "-synth",
		Port:      port,
		Model:     model,
		RespBytes: resp,
		Calls:     plan.Calls,
		Seed:      seed,
	}
	t := app.NewTier(m, cfg, nil)
	t.Body = NewBody(&spec.Body, t.P.MemBase+1<<32, seed)
	t.Registry = reg

	// Full file-syscall plan replay (storage tiers): reads, WAL-style
	// writes, and fsync all run on the handler thread so the clone's disk
	// contention and commit-path stalls land where the original's did.
	if maxFile := maxPlanFile(spec.Syscalls); maxFile > 0 {
		file := m.Kernel.CreateFile("/data/"+cfg.Name+".synth", maxFile)
		rep := newSysReplayer(spec.Syscalls, file, stats.NewRand(seed^0x10))
		t.PostWork = func(th *kernel.Thread, kind int) {
			rep.replay(th)
		}
	}
	return t
}
