package synth

import (
	"testing"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/kernel"
)

func TestNewTierWiring(t *testing.T) {
	spec := specFixture()
	spec.Skeleton.PerConn = true
	spec.Syscalls = []core.SyscallPlan{
		{Op: kernel.SysPread, PerRequest: 0.5, Bytes: 8192, FileSize: 1 << 28, UniformOffsets: true},
	}
	plan := &core.TierPlan{Service: "store", RespBytes: 2048,
		Calls: map[int][]app.Call{}}

	env := newTestEnv(t)
	defer env.shutdown()
	tier := NewTier(env.server, 9300, spec, plan, nil, 4)
	if tier.Cfg.Model != "pool" {
		t.Fatalf("per-conn skeleton should map to pool model: %q", tier.Cfg.Model)
	}
	if tier.Cfg.RespBytes != 2048 {
		t.Fatalf("resp bytes = %d, want plan override", tier.Cfg.RespBytes)
	}
	if tier.Cfg.Name != "store-synth" {
		t.Fatalf("name = %q", tier.Cfg.Name)
	}
	if tier.PostWork == nil {
		t.Fatal("pread plan should install PostWork")
	}
	tier.Start()
	served := env.drive(t, 9300, 2, 20)
	if served != 40 {
		t.Fatalf("served %d", served)
	}
	// 0.5 preads/request over 256MB uniform: roughly half the requests hit
	// the disk through the synthetic dataset.
	if tier.Proc().DiskReadBytes == 0 {
		t.Fatal("synthetic storage tier should perform disk I/O")
	}
}

func TestNewTierEpollDefault(t *testing.T) {
	spec := specFixture()
	plan := &core.TierPlan{Service: "leaf", Calls: map[int][]app.Call{}}
	env := newTestEnv(t)
	defer env.shutdown()
	tier := NewTier(env.server, 9301, spec, plan, nil, 4)
	if tier.Cfg.Model != "epoll" {
		t.Fatalf("default model = %q", tier.Cfg.Model)
	}
	if tier.Cfg.RespBytes != spec.RespBytes {
		t.Fatalf("resp bytes should fall back to spec: %d", tier.Cfg.RespBytes)
	}
	tier.Start()
	if served := env.drive(t, 9301, 1, 5); served != 5 {
		t.Fatalf("served %d", served)
	}
}
