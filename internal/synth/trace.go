package synth

import (
	"bufio"
	"fmt"
	"io"

	"ditto/internal/core"
	"ditto/internal/isa"
)

// ExportTrace writes a dynamic instruction/memory trace of a generated
// body, one record per line, in the simple format trace-driven simulators
// consume (the paper notes clones "can be fed to trace-driven simulators
// like Ramulator"):
//
//	I <pc-hex>            instruction fetch
//	L <addr-hex> <pc-hex> data load
//	S <addr-hex> <pc-hex> data store
//
// requests controls how many request bodies are emitted. The trace contains
// only synthetic addresses — nothing of the original application.
func ExportTrace(w io.Writer, spec *core.SynthSpec, requests int, seed int64) (records int64, err error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	body := NewBody(&spec.Body, 1<<40, seed)
	var buf []isa.Instr
	for r := 0; r < requests; r++ {
		buf = body.EmitRequest(0, buf[:0])
		for i := range buf {
			in := &buf[i]
			f := &isa.Table[in.Op]
			if _, err = fmt.Fprintf(bw, "I %x\n", in.PC); err != nil {
				return records, err
			}
			records++
			if f.Load {
				if _, err = fmt.Fprintf(bw, "L %x %x\n", in.Addr, in.PC); err != nil {
					return records, err
				}
				records++
			}
			if f.Store {
				if _, err = fmt.Fprintf(bw, "S %x %x\n", in.Addr, in.PC); err != nil {
					return records, err
				}
				records++
			}
		}
	}
	return records, bw.Flush()
}
