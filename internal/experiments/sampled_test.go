package experiments

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"ditto/internal/sim"
)

// sampledCellOpt is the sampled figure cell the determinism tests pin
// down: the figure_cell workload (fig8, nginx, quick windows) with
// steady-state sampling enabled.
func sampledCellOpt() Options {
	return Options{
		Windows:   Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
		TuneIters: 0,
		Apps:      []string{"nginx"},
		Seed:      3,
		Sampled:   true,
	}
}

// TestSampledFigureCellIdenticalAcrossPoolWidths extends the repo's
// byte-identity guarantee to sampled steady-state execution: the sampled
// figure cell must produce byte-identical output and identical results at
// -parallel 1 and -parallel 8. The sampler is per-kernel state seeded
// from the cell, so pool width must stay unobservable exactly as it is
// for fully executed cells.
func TestSampledFigureCellIdenticalAcrossPoolWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	run := func(parallel int) ([]byte, Fig8Result) {
		opt := sampledCellOpt()
		opt.Parallel = parallel
		var buf bytes.Buffer
		res := RunFig8(&buf, opt)
		return buf.Bytes(), res
	}
	outSerial, resSerial := run(1)
	outWide, resWide := run(8)
	if len(resSerial.Rows) == 0 {
		t.Fatal("serial run produced no rows")
	}
	if !bytes.Equal(outSerial, outWide) {
		t.Fatalf("sampled output differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			outSerial, outWide)
	}
	if !reflect.DeepEqual(resSerial, resWide) {
		t.Fatalf("sampled results differ between pool widths:\n%+v\nvs\n%+v", resSerial, resWide)
	}
}

// TestSampledFigureCellIdenticalAcrossIntraWidths checks the same
// guarantee along the other parallelism axis: shard workers advancing a
// sampled cell's event queues must be unobservable at every
// -intra-parallel width. The detector's detailed windows are positions of
// a deterministic global counter, so shard interleaving cannot move them.
func TestSampledFigureCellIdenticalAcrossIntraWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	run := func(intra int) ([]byte, Fig8Result) {
		opt := sampledCellOpt()
		opt.Parallel = 2
		opt.IntraParallel = intra
		var buf bytes.Buffer
		res := RunFig8(&buf, opt)
		return buf.Bytes(), res
	}
	outSerial, resSerial := run(1)
	if len(resSerial.Rows) == 0 {
		t.Fatal("intra=1 run produced no rows")
	}
	for _, intra := range []int{2, 8} {
		out, res := run(intra)
		if !bytes.Equal(outSerial, out) {
			t.Fatalf("sampled output differs between -intra-parallel 1 and %d:\n--- intra=1 ---\n%s\n--- intra=%d ---\n%s",
				intra, outSerial, intra, out)
		}
		if !reflect.DeepEqual(resSerial, res) {
			t.Fatalf("sampled results differ between intra widths 1 and %d:\n%+v\nvs\n%+v",
				intra, resSerial, res)
		}
	}
}

// TestSampledFigureCellSeededRepeatIdentity pins the sampler's seeded
// reproducibility: two runs of the sampled figure cell with the same seed
// are byte-identical, and a different seed actually changes the rotation
// (guarding against a sampler that ignores its seed entirely).
func TestSampledFigureCellSeededRepeatIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	run := func(seed int64) []byte {
		opt := sampledCellOpt()
		opt.Seed = seed
		var buf bytes.Buffer
		RunFig8(&buf, opt)
		return buf.Bytes()
	}
	first := run(3)
	if len(first) == 0 {
		t.Fatal("run produced no output")
	}
	if again := run(3); !bytes.Equal(first, again) {
		t.Fatalf("seeded repeat differs:\n--- first ---\n%s\n--- second ---\n%s", first, again)
	}
	if other := run(4); bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical output; the sampler's seed is dead")
	}
}

// BenchmarkFig8CellSampled is BenchmarkFig8Cell under sampled
// steady-state execution — the figure_cell_sampled artifact. The ratio
// against BenchmarkFig8Cell is the sampling speedup.
func BenchmarkFig8CellSampled(b *testing.B) {
	opt := Options{
		Windows:   Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
		TuneIters: 0,
		Quiet:     true,
		Apps:      []string{"nginx"},
		Seed:      1,
		Sampled:   true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunFig8(io.Discard, opt)
	}
}
