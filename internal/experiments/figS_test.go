package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"ditto/internal/sim"
)

// figSRun executes the storage figure with the given pool and intra widths
// and returns its bytes and results.
func figSRun(parallel, intra int) ([]byte, FigSResult) {
	opt := Options{
		Windows:       Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
		TuneIters:     0,
		Seed:          3,
		Parallel:      parallel,
		IntraParallel: intra,
	}
	var buf bytes.Buffer
	res := RunFigS(&buf, opt, 0)
	return buf.Bytes(), res
}

// TestFigSOutputIdenticalAcrossPoolWidths extends the byte-identical
// determinism guarantee to the storage family: WAL fsync parking, dirty-page
// writeback, block-cache state, and LSM flush/compaction scheduling must all
// replay identically when cells run on a wide worker pool.
func TestFigSOutputIdenticalAcrossPoolWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	outSerial, resSerial := figSRun(1, 0)
	if len(resSerial.Points) != 6 {
		t.Fatalf("serial run produced %d points, want 6 (3 backends x 2 variants)",
			len(resSerial.Points))
	}
	for _, pt := range resSerial.Points {
		if pt.Throughput == 0 || pt.DiskWriteBW == 0 {
			t.Fatalf("figS %s/%s served no storage traffic: %+v", pt.Backend, pt.Variant, pt)
		}
	}
	outWide, resWide := figSRun(8, 0)
	if !bytes.Equal(outSerial, outWide) {
		t.Fatalf("figS output differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			outSerial, outWide)
	}
	if !reflect.DeepEqual(resSerial, resWide) {
		t.Fatalf("figS results differ between pool widths:\n%+v\nvs\n%+v", resSerial, resWide)
	}
}

// TestFigSOutputIdenticalAcrossIntraWidths checks the storage figure on the
// sharded engine: the blob backend's cross-machine traffic and every
// machine's private disk and page-cache state must be unobservable to the
// number of shard workers.
func TestFigSOutputIdenticalAcrossIntraWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	outSerial, resSerial := figSRun(2, 1)
	if len(resSerial.Points) != 6 {
		t.Fatalf("intra=1 run produced %d points, want 6", len(resSerial.Points))
	}
	for _, intra := range []int{8} {
		out, res := figSRun(2, intra)
		if !bytes.Equal(outSerial, out) {
			t.Fatalf("figS output differs between -intra-parallel 1 and %d:\n--- intra=1 ---\n%s\n--- intra=%d ---\n%s",
				intra, outSerial, intra, out)
		}
		if !reflect.DeepEqual(resSerial, res) {
			t.Fatalf("figS results differ between intra widths 1 and %d:\n%+v\nvs\n%+v",
				intra, resSerial, res)
		}
	}
}
