package experiments

import (
	"fmt"
	"io"

	"ditto/internal/platform"
	"ditto/internal/runner"
)

// Fig6Point is one QPS level of the Social Network end-to-end latency
// comparison, original vs fully synthetic (every tier replaced).
type Fig6Point struct {
	QPS     float64
	Variant string
	P50Ms   float64
	P95Ms   float64
	P99Ms   float64
	Tput    float64
}

// Fig6Result is the Fig. 6 series.
type Fig6Result struct {
	Points []Fig6Point
}

// RunFig6 reproduces Fig. 6: end-to-end latency of the original Social
// Network versus the deployment where every individual microservice is
// replaced by its Ditto clone, across a QPS sweep. One prep cell clones the
// deployment; each (qps, variant) point is then an independent cell.
func RunFig6(w io.Writer, opt Options, qpsLevels []float64) Fig6Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	opt.Windows = socialWindows(opt.Windows)
	if len(qpsLevels) == 0 {
		qpsLevels = []float64{200, 500, 1000, 1500, 2000}
	}
	nodes := snNodes(opt)

	p := runner.NewPlan()
	var clone *SNClone
	p.AddPrep(runner.Key("fig6", "clone"), func(io.Writer) (any, error) {
		profLoad := Load{QPS: qpsLevels[len(qpsLevels)/2], Conns: 16, Mix: SNMix(), Seed: opt.Seed}
		clone = CloneSN(platform.A(), nodes, 8, profLoad, opt.Windows, opt.Seed+11)
		return nil, nil
	})
	p.Barrier()
	runner.Grid2(p, qpsLevels, fig5Variants,
		func(qps float64, v string) string {
			return runner.Key("fig6", fmt.Sprintf("qps%.0f", qps), v)
		},
		func(qps float64, v string, cw io.Writer) (any, error) {
			load := Load{QPS: qps, Conns: 16, Mix: SNMix(), Seed: opt.Seed}
			var d *SNEnv
			if v == "actual" {
				d = NewOriginalSN(platform.A(), nodes, 8, opt.Seed+11, opt.IntraParallel)
			} else {
				d = NewSynthSN(clone, platform.A(), nodes, 8, opt.Seed+12, opt.IntraParallel)
			}
			if opt.Sampled {
				d.Env.EnableSampling(load.Seed)
			}
			e2e, _ := MeasureSN(d, load, opt.Windows, nil)
			d.Env.Shutdown()
			pt := Fig6Point{QPS: qps, Variant: v, P50Ms: e2e.P50Ms,
				P95Ms: e2e.P95Ms, P99Ms: e2e.P99Ms, Tput: e2e.Throughput}
			if !opt.Quiet {
				row(cw, "fig6: qps=%-6.0f %-9s p50=%.3f p95=%.3f p99=%.3f tput=%.0f",
					pt.QPS, pt.Variant, pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.Tput)
			}
			return pt, nil
		})

	var res Fig6Result
	results := runPlan(w, p, opt, "fig6: qps variant p50 p95 p99 tput")
	if results == nil {
		return res
	}
	for _, r := range results {
		if pt, ok := r.Value.(Fig6Point); ok {
			res.Points = append(res.Points, pt)
		}
	}
	return res
}
