package experiments

import (
	"io"

	"ditto/internal/platform"
)

// Fig6Point is one QPS level of the Social Network end-to-end latency
// comparison, original vs fully synthetic (every tier replaced).
type Fig6Point struct {
	QPS     float64
	Variant string
	P50Ms   float64
	P95Ms   float64
	P99Ms   float64
	Tput    float64
}

// Fig6Result is the Fig. 6 series.
type Fig6Result struct {
	Points []Fig6Point
}

// RunFig6 reproduces Fig. 6: end-to-end latency of the original Social
// Network versus the deployment where every individual microservice is
// replaced by its Ditto clone, across a QPS sweep.
func RunFig6(w io.Writer, opt Options, qpsLevels []float64) Fig6Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	opt.Windows = socialWindows(opt.Windows)
	if len(qpsLevels) == 0 {
		qpsLevels = []float64{200, 500, 1000, 1500, 2000}
	}
	nodes := opt.SocialNodes
	if nodes <= 0 {
		nodes = 2
	}
	header(w, opt, "fig6: qps variant p50 p95 p99 tput")

	profLoad := Load{QPS: qpsLevels[len(qpsLevels)/2], Conns: 16, Mix: SNMix(), Seed: opt.Seed}
	clone := CloneSN(platform.A(), nodes, 8, profLoad, opt.Windows, opt.Seed+11)

	var res Fig6Result
	for _, qps := range qpsLevels {
		load := Load{QPS: qps, Conns: 16, Mix: SNMix(), Seed: opt.Seed}

		dO := NewOriginalSN(platform.A(), nodes, 8, opt.Seed+11)
		e2eO, _ := MeasureSN(dO, load, opt.Windows, nil)
		dO.Env.Shutdown()

		dS := NewSynthSN(clone, platform.A(), nodes, 8, opt.Seed+12)
		e2eS, _ := MeasureSN(dS, load, opt.Windows, nil)
		dS.Env.Shutdown()

		for _, pt := range []Fig6Point{
			{QPS: qps, Variant: "actual", P50Ms: e2eO.P50Ms, P95Ms: e2eO.P95Ms, P99Ms: e2eO.P99Ms, Tput: e2eO.Throughput},
			{QPS: qps, Variant: "synthetic", P50Ms: e2eS.P50Ms, P95Ms: e2eS.P95Ms, P99Ms: e2eS.P99Ms, Tput: e2eS.Throughput},
		} {
			res.Points = append(res.Points, pt)
			if !opt.Quiet {
				row(w, "fig6: qps=%-6.0f %-9s p50=%.3f p95=%.3f p99=%.3f tput=%.0f",
					pt.QPS, pt.Variant, pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.Tput)
			}
		}
	}
	return res
}
