package experiments

import (
	"io"

	"ditto/internal/platform"
	"ditto/internal/synth"
)

// Fig8Row is one app × variant top-down CPI breakdown (retiring /
// front-end / bad speculation / back-end), scaled to CPI as in Fig. 8.
type Fig8Row struct {
	App      string
	Variant  string
	CPI      float64
	Retiring float64
	Frontend float64
	BadSpec  float64
	Backend  float64
}

// Fig8Result is the Fig. 8 dataset.
type Fig8Result struct {
	Rows []Fig8Row
}

// fig8Row converts a measurement's top-down fractions to CPI components.
func fig8Row(name, variant string, r Result) Fig8Row {
	cpi := r.Counters.CPI()
	return Fig8Row{App: name, Variant: variant, CPI: cpi,
		Retiring: r.TopDown[0] * cpi, Frontend: r.TopDown[1] * cpi,
		BadSpec: r.TopDown[2] * cpi, Backend: r.TopDown[3] * cpi}
}

// RunFig8 reproduces Fig. 8: the cycles-per-instruction top-down analysis
// of original vs synthetic at medium load for the four standalone apps plus
// the two highlighted Social Network tiers.
func RunFig8(w io.Writer, opt Options) Fig8Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	header(w, opt, "fig8: app variant cpi retiring frontend badspec backend")
	var res Fig8Result
	emit := func(fr Fig8Row) {
		res.Rows = append(res.Rows, fr)
		if !opt.Quiet {
			row(w, "fig8: %-20s %-9s cpi=%.3f ret=%.3f fe=%.3f bad=%.3f be=%.3f",
				fr.App, fr.Variant, fr.CPI, fr.Retiring, fr.Frontend, fr.BadSpec, fr.Backend)
		}
	}

	for _, c := range appCases(opt.Seed) {
		if len(opt.Apps) > 0 && !contains(opt.Apps, c.name) {
			continue
		}
		capacity := 0.0
		if c.open {
			capacity = probeCapacity(c, opt.Windows, opt.Seed)
		}
		med := mediumOf(loadLevels(c, capacity, opt.Seed))
		_, spec := Clone(c.build, med, opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+41)

		envO := NewEnv(platform.A(), platform.WithCoreCount(8))
		orig := c.build(envO.Server)
		orig.Start()
		ro := Measure(envO, orig, med, opt.Windows)
		envO.Shutdown()
		emit(fig8Row(c.name, "actual", ro))

		envS := NewEnv(platform.A(), platform.WithCoreCount(8))
		sv := synth.NewServer(envS.Server, c.port, spec, opt.Seed+43)
		sv.Start()
		rs := Measure(envS, sv, med, opt.Windows)
		envS.Shutdown()
		emit(fig8Row(c.name, "synthetic", rs))
	}

	if opt.IncludeSocial {
		nodes := opt.SocialNodes
		if nodes <= 0 {
			nodes = 2
		}
		tiers := []string{"text-service", "social-graph-service"}
		load := Load{QPS: 400, Conns: 12, Mix: SNMix(), Seed: opt.Seed}
		snWin := socialWindows(opt.Windows)
		clone := CloneSN(platform.A(), nodes, 8, load, snWin, opt.Seed+47)

		dO := NewOriginalSN(platform.A(), nodes, 8, opt.Seed+47)
		_, perO := MeasureSN(dO, load, snWin, tiers)
		dO.Env.Shutdown()
		dS := NewSynthSN(clone, platform.A(), nodes, 8, opt.Seed+48)
		_, perS := MeasureSN(dS, load, snWin, tiers)
		dS.Env.Shutdown()
		for _, tn := range tiers {
			emit(fig8Row(tn, "actual", perO[tn]))
			emit(fig8Row(tn, "synthetic", perS[tn]))
		}
	}
	return res
}
