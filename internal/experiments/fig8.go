package experiments

import (
	"io"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/platform"
	"ditto/internal/runner"
	"ditto/internal/synth"
)

// Fig8Row is one app × variant top-down CPI breakdown (retiring /
// front-end / bad speculation / back-end), scaled to CPI as in Fig. 8.
type Fig8Row struct {
	App      string
	Variant  string
	CPI      float64
	Retiring float64
	Frontend float64
	BadSpec  float64
	Backend  float64
}

// Fig8Result is the Fig. 8 dataset.
type Fig8Result struct {
	Rows []Fig8Row
}

// fig8Row converts a measurement's top-down fractions to CPI components.
func fig8Row(name, variant string, r Result) Fig8Row {
	cpi := r.Counters.CPI()
	return Fig8Row{App: name, Variant: variant, CPI: cpi,
		Retiring: r.TopDown[0] * cpi, Frontend: r.TopDown[1] * cpi,
		BadSpec: r.TopDown[2] * cpi, Backend: r.TopDown[3] * cpi}
}

// RunFig8 reproduces Fig. 8: the cycles-per-instruction top-down analysis
// of original vs synthetic at medium load for the four standalone apps plus
// the two highlighted Social Network tiers, as a cell plan (per-app clone
// prep, then one cell per app × variant).
func RunFig8(w io.Writer, opt Options) Fig8Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	apps := filteredAppCases(opt)
	nodes := snNodes(opt)
	snLoad := Load{QPS: 400, Conns: 12, Mix: SNMix(), Seed: opt.Seed}
	snWin := socialWindows(opt.Windows)

	type fig8Prep struct {
		clonePrep
		spec *core.SynthSpec
	}
	p := runner.NewPlan()
	preps := map[string]*fig8Prep{}
	for _, c := range apps {
		c := c
		pr := &fig8Prep{}
		preps[c.name] = pr
		p.AddPrep(runner.Key("fig8", c.name, "clone"), func(io.Writer) (any, error) {
			pr.clonePrep = prepLevels(c, opt)
			_, pr.spec = cloneApp(c.build, mediumOf(pr.levels), opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+41, opt.Sampled)
			return nil, nil
		})
	}
	var snClone *SNClone
	if opt.IncludeSocial {
		p.AddPrep(runner.Key("fig8", "social", "clone"), func(io.Writer) (any, error) {
			snClone = CloneSN(platform.A(), nodes, 8, snLoad, snWin, opt.Seed+47)
			return nil, nil
		})
	}
	p.Barrier()

	emit := func(cw io.Writer, fr Fig8Row) {
		if !opt.Quiet {
			row(cw, "fig8: %-20s %-9s cpi=%.3f ret=%.3f fe=%.3f bad=%.3f be=%.3f",
				fr.App, fr.Variant, fr.CPI, fr.Retiring, fr.Frontend, fr.BadSpec, fr.Backend)
		}
	}
	for _, c := range apps {
		c := c
		pr := preps[c.name]
		for _, v := range fig5Variants {
			v := v
			p.Add(runner.Key("fig8", c.name, v), func(cw io.Writer) (any, error) {
				build := c.build
				if v == "synthetic" {
					build = func(m *platform.Machine) app.App {
						return synth.NewServer(m, c.port, pr.spec, opt.Seed+43)
					}
				}
				r := measureApp(platform.A(), []platform.Option{platform.WithCoreCount(8)},
					build, mediumOf(pr.levels), opt.Windows, opt.IntraParallel, opt.Sampled)
				fr := fig8Row(c.name, v, r)
				emit(cw, fr)
				return fr, nil
			})
		}
	}
	if opt.IncludeSocial {
		for _, v := range fig5Variants {
			v := v
			p.Add(runner.Key("fig8", "social", v), func(cw io.Writer) (any, error) {
				var d *SNEnv
				if v == "actual" {
					d = NewOriginalSN(platform.A(), nodes, 8, opt.Seed+47, opt.IntraParallel)
				} else {
					d = NewSynthSN(snClone, platform.A(), nodes, 8, opt.Seed+48, opt.IntraParallel)
				}
				if opt.Sampled {
					d.Env.EnableSampling(snLoad.Seed)
				}
				_, per := MeasureSN(d, snLoad, snWin, fig5SocialTiers)
				d.Env.Shutdown()
				rows := make([]Fig8Row, 0, len(fig5SocialTiers))
				for _, tn := range fig5SocialTiers {
					fr := fig8Row(tn, v, per[tn])
					rows = append(rows, fr)
					emit(cw, fr)
				}
				return rows, nil
			})
		}
	}

	var res Fig8Result
	results := runPlan(w, p, opt, "fig8: app variant cpi retiring frontend badspec backend")
	if results == nil {
		return res
	}
	values := resultMap(results)
	for _, c := range apps {
		for _, v := range fig5Variants {
			if fr, ok := values[runner.Key("fig8", c.name, v)].(Fig8Row); ok {
				res.Rows = append(res.Rows, fr)
			}
		}
	}
	if opt.IncludeSocial {
		// The paper's ordering is tier-major: both variants of TextService,
		// then both of SocialGraphService.
		rowsO, okO := values[runner.Key("fig8", "social", "actual")].([]Fig8Row)
		rowsS, okS := values[runner.Key("fig8", "social", "synthetic")].([]Fig8Row)
		for ti := range fig5SocialTiers {
			if okO {
				res.Rows = append(res.Rows, rowsO[ti])
			}
			if okS {
				res.Rows = append(res.Rows, rowsS[ti])
			}
		}
	}
	return res
}
