// Package experiments reproduces every table and figure of the paper's
// evaluation (§6): shared measurement harness plus one Run function per
// artifact, each printing the same rows/series the paper reports. The cmd/
// dittobench binary and the repository's benchmarks call into this package.
package experiments

import (
	"fmt"
	"io"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/cpu"
	"ditto/internal/kernel"
	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/sim"
	"ditto/internal/steady"
	"ditto/internal/synth"
)

// Env is one self-contained simulation environment: a server machine and a
// client machine joined by a cluster fabric. In classic mode every machine
// shares one engine (Eng); in sharded mode each machine owns a shard of a
// World and Eng is nil — drive the environment through the Env methods
// (RunFor/RunUntil/Now), which work in both modes.
type Env struct {
	Eng     *sim.Engine // classic single-queue engine; nil when sharded
	World   *sim.World  // sharded conservative-parallel engine; nil when classic
	Cluster *platform.Cluster
	Server  *platform.Machine
	Client  *platform.Machine
	extra   []*platform.Machine

	samplers []*steady.Sampler // installed by EnableSampling, held until ArmSampling
}

// NewEnv builds a classic single-engine environment on the given server
// platform. Client runs on a generously sized Platform A box so it never
// bottlenecks.
func NewEnv(spec platform.Spec, serverOpts ...platform.Option) *Env {
	return NewEnvW(0, spec, serverOpts...)
}

// NewEnvW builds an environment with the given intra-cell parallelism.
// intra ≤ 0 keeps the classic single-queue engine (today's exact event
// order); intra ≥ 1 gives every machine its own event-queue shard of a
// World advanced by up to intra workers, with the cluster's minimum one-way
// delay as the conservative lookahead. Results are byte-identical at every
// intra width ≥ 1 — width only changes how many OS threads advance shards.
func NewEnvW(intra int, spec platform.Spec, serverOpts ...platform.Option) *Env {
	const rtt = 100 * sim.Microsecond
	e := &Env{}
	var eng *sim.Engine
	if intra > 0 {
		e.World = sim.NewWorld(rtt/2, intra)
	} else {
		eng = sim.NewEngine()
		e.Eng = eng
	}
	e.Cluster = platform.NewCluster(eng, rtt)
	e.Server = platform.NewMachine(e.newShard(), "server", spec, serverOpts...)
	e.Client = platform.NewMachine(e.newShard(), "client", platform.A(), platform.WithCoreCount(16))
	e.Cluster.Add(e.Server)
	e.Cluster.Add(e.Client)
	return e
}

// newShard returns the engine for the next machine: a fresh shard in
// sharded mode, the shared engine otherwise.
func (e *Env) newShard() *sim.Engine {
	if e.World != nil {
		return e.World.NewShard()
	}
	return e.Eng
}

// AddMachine attaches another server machine to the environment (multi-node
// microservice deployments).
func (e *Env) AddMachine(name string, spec platform.Spec, opts ...platform.Option) *platform.Machine {
	m := platform.NewMachine(e.newShard(), name, spec, opts...)
	e.Cluster.Add(m)
	e.extra = append(e.extra, m)
	return m
}

// EnableSampling installs a steady-state sampler (internal/steady) on every
// machine kernel of the environment, switching converged request and
// kernel-stream variants to sampled execution. Each kernel gets its own
// sampler — samplers are per shard, so the conservative-parallel engine
// never shares sampler state across threads — seeded from seed plus the
// machine's position, so repeated runs and both parallelism axes draw
// byte-identical sequences.
//
// The samplers start held: warmup is never sampled, so every request
// executes fully (while the detector and distributions learn) until the
// measurement harness calls ArmSampling at the warmup/measure boundary.
func (e *Env) EnableSampling(seed int64) {
	install := func(m *platform.Machine, s *steady.Sampler) {
		s.Hold()
		m.Kernel.SetSampler(s)
		e.samplers = append(e.samplers, s)
	}
	install(e.Server, steady.NewDefault(seed+101))
	install(e.Client, steady.NewDefault(seed+202))
	for i, m := range e.extra {
		install(m, steady.NewDefault(seed+303+int64(i)))
	}
}

// ArmSampling arms every held sampler; a no-op when sampling is not
// enabled. Measure and MeasureSN call it after the warmup window, so
// modeled execution begins exactly at the measurement boundary.
func (e *Env) ArmSampling() {
	for _, s := range e.samplers {
		s.Arm()
	}
}

// steadyWarmupShare is the fraction of sampler-eligible traffic that must
// belong to steady groups before a sampled warmup may end early.
const steadyWarmupShare = 0.85

// WarmupFor advances the environment through a warmup window. Without
// sampling it is exactly RunFor(budget). With sampling enabled, warmup is
// still never modeled (samplers are held), but budget becomes an upper
// bound: the run advances in fixed slices and stops as soon as every
// sampler certifies that at least steadyWarmupShare of its traffic is
// steady — warmup exists to reach steady state, and the detector can
// certify that directly instead of burning the full time budget. Slice
// boundaries are fixed fractions of the budget and sampler state is
// deterministic at each boundary, so early exit is deterministic too, at
// every parallelism width.
func (e *Env) WarmupFor(budget sim.Time) {
	if len(e.samplers) == 0 || budget <= 0 {
		e.RunFor(budget)
		return
	}
	const slices = 8
	slice := budget / slices
	if slice <= 0 {
		e.RunFor(budget)
		return
	}
	for i := 0; i < slices; i++ {
		e.RunFor(slice)
		converged := true
		for _, s := range e.samplers {
			if s.SteadyShare() < steadyWarmupShare {
				converged = false
				break
			}
		}
		if converged {
			return
		}
	}
	e.RunFor(budget - slices*slice) // integer-division remainder
}

// RunFor advances the environment's virtual time by d.
func (e *Env) RunFor(d sim.Time) {
	if e.World != nil {
		e.World.RunFor(d)
		return
	}
	e.Eng.RunFor(d)
}

// RunUntil advances the environment's virtual time to exactly t.
func (e *Env) RunUntil(t sim.Time) {
	if e.World != nil {
		e.World.RunUntil(t)
		return
	}
	e.Eng.RunUntil(t)
}

// Now returns the environment's virtual time.
func (e *Env) Now() sim.Time {
	if e.World != nil {
		return e.World.Now()
	}
	return e.Eng.Now()
}

// Shutdown stops every kernel and drains the engine(s), releasing thread
// goroutines.
func (e *Env) Shutdown() {
	e.Server.Kernel.Stop()
	e.Client.Kernel.Stop()
	for _, m := range e.extra {
		m.Kernel.Stop()
	}
	if e.World != nil {
		e.World.Run()
		return
	}
	e.Eng.Run()
}

// Load describes one measurement's load configuration.
type Load struct {
	QPS   float64 // 0 = closed loop
	Conns int
	Mix   []loadgen.MixEntry
	Seed  int64
}

// Windows controls warmup and measurement durations.
type Windows struct {
	Warmup  sim.Time
	Measure sim.Time
}

// DefaultWindows is sized so that every app completes hundreds to thousands
// of requests per measurement.
func DefaultWindows() Windows {
	return Windows{Warmup: 40 * sim.Millisecond, Measure: 160 * sim.Millisecond}
}

// Result is one measured run.
type Result struct {
	Counters   cpu.Counters
	Metrics    profile.TargetMetrics
	TopDown    [4]float64 // retiring, frontend, badspec, backend (fractions of cycles)
	AvgMs      float64
	P50Ms      float64
	P95Ms      float64
	P99Ms      float64
	Throughput float64 // completed requests per second
	NetBW      float64 // server bytes/s (tx+rx)
	DiskBW     float64 // server disk bytes/s (read+write)
}

// snapshot captures the per-proc counters needed for deltas.
type snapshot struct {
	ctr   cpu.Counters
	tx    uint64
	rx    uint64
	disk  uint64
	diskW uint64
}

func snap(p *kernel.Proc) snapshot {
	return snapshot{ctr: p.Counters, tx: p.NetTxBytes, rx: p.NetRxBytes,
		disk: p.DiskReadBytes, diskW: p.DiskWritten}
}

// deltaCounters subtracts counter snapshots.
func deltaCounters(now, base cpu.Counters) cpu.Counters {
	d := now
	d.Instrs -= base.Instrs
	d.KernelInstrs -= base.KernelInstrs
	d.Uops -= base.Uops
	d.Cycles -= base.Cycles
	d.Branches -= base.Branches
	d.Mispred -= base.Mispred
	d.L1iAcc -= base.L1iAcc
	d.L1iMiss -= base.L1iMiss
	d.L1dAcc -= base.L1dAcc
	d.L1dMiss -= base.L1dMiss
	d.L2Acc -= base.L2Acc
	d.L2Miss -= base.L2Miss
	d.L3Acc -= base.L3Acc
	d.L3Miss -= base.L3Miss
	d.MemAcc -= base.MemAcc
	d.LoadBytes -= base.LoadBytes
	d.StoreBytes -= base.StoreBytes
	d.Retiring -= base.Retiring
	d.Frontend -= base.Frontend
	d.BadSpec -= base.BadSpec
	d.Backend -= base.Backend
	return d
}

// metricsOf converts counters to the calibrated metric vector.
func metricsOf(c cpu.Counters) profile.TargetMetrics {
	return profile.TargetMetrics{
		IPC:         c.IPC(),
		BranchMiss:  c.BranchMissRate(),
		L1iMiss:     c.L1iMissRate(),
		L1dMiss:     c.L1dMissRate(),
		L2Miss:      c.L2MissRate(),
		L3Miss:      c.L3MissRate(),
		KernelShare: c.KernelShare(),
	}
}

// measureApp is the standard single-tier measurement cell body: build an
// environment on spec (sharded when intra ≥ 1), start the app build
// returns, measure it under load, and tear the environment down. Every
// state it touches is freshly constructed, which is what makes cells safe
// to run concurrently.
// sampled enables steady-state sampled execution for the measurement: the
// warmup window doubles as the detector's convergence run (a variant only
// starts modeling after Window×Stable full executions), so the measured
// window sees converged sampling.
func measureApp(spec platform.Spec, opts []platform.Option, build AppBuilder, load Load, win Windows, intra int, sampled bool) Result {
	env := NewEnvW(intra, spec, opts...)
	if sampled {
		env.EnableSampling(load.Seed)
	}
	a := build(env.Server)
	a.Start()
	r := Measure(env, a, load, win)
	env.Shutdown()
	return r
}

// Measure drives app a (already started on env.Server) with the given load
// and returns a Result measured over the post-warmup window.
func Measure(env *Env, a app.App, load Load, win Windows) Result {
	g := loadgen.New(loadgen.Config{
		Name: "lg", Machine: env.Client, Target: a.Machine().Kernel,
		Port: a.Port(), Conns: load.Conns, QPS: load.QPS,
		Mix: load.Mix, Seed: load.Seed,
	})
	g.Start()
	env.WarmupFor(win.Warmup)
	env.ArmSampling()
	g.Reset()
	before := snap(a.Proc())
	start := env.Now()
	env.RunFor(win.Measure)
	dur := (env.Now() - start).Seconds()
	after := snap(a.Proc())

	ctr := deltaCounters(after.ctr, before.ctr)
	lat := g.Latency()
	res := Result{
		Counters:   ctr,
		Metrics:    metricsOf(ctr),
		AvgMs:      lat.Mean(),
		P50Ms:      lat.Percentile(50),
		P95Ms:      lat.Percentile(95),
		P99Ms:      lat.Percentile(99),
		Throughput: float64(g.Received()) / dur,
		NetBW:      float64(after.tx-before.tx+after.rx-before.rx) / dur,
		DiskBW:     float64(after.disk-before.disk+after.diskW-before.diskW) / dur,
	}
	if ctr.Cycles > 0 {
		res.TopDown = [4]float64{
			ctr.Retiring / ctr.Cycles,
			ctr.Frontend / ctr.Cycles,
			ctr.BadSpec / ctr.Cycles,
			ctr.Backend / ctr.Cycles,
		}
	}
	return res
}

// socialWindows stretches the measurement window for social-network runs:
// their QPS is low (so tails need more samples) while their simulation cost
// per simulated second is far below a saturated single-tier server's.
func socialWindows(w Windows) Windows {
	w.Measure *= 3
	return w
}

// AppBuilder constructs an application on a machine.
type AppBuilder func(m *platform.Machine) app.App

// ProfileRun executes a dedicated profiling run of the original application
// on Platform A under the given load and returns its AppProfile — the
// paper's "profile once at medium load".
func ProfileRun(build AppBuilder, load Load, win Windows, maxDataWS int) *profile.AppProfile {
	return profileRun(build, load, win, maxDataWS, false)
}

// ProfileRunSampled is ProfileRun under sampled steady-state execution —
// the profiling window models converged request variants and scales the
// observed absolutes back up (see profile.Profiler). Exposed so the §4.4
// conformance gate can re-run against sampled profiles.
func ProfileRunSampled(build AppBuilder, load Load, win Windows, maxDataWS int) *profile.AppProfile {
	return profileRun(build, load, win, maxDataWS, true)
}

// profileRun is ProfileRun with an opt-in sampled profiling window. The
// profile quantities synthesis consumes — instruction-mix fractions, miss
// and dependency rates, working-set curves — are ratios over observed
// instructions, so the SMARTS argument that justifies sampled measurement
// carries over: the warmup executes fully (samplers are held), and the
// detailed windows that execute after arming preserve every profiled rate
// while the modeled stretch skips work the profile has already seen.
func profileRun(build AppBuilder, load Load, win Windows, maxDataWS int, sampled bool) *profile.AppProfile {
	env := NewEnv(platform.A(), platform.WithCoreCount(8))
	if sampled {
		env.EnableSampling(load.Seed)
	}
	a := build(env.Server)
	a.Start()
	p := profile.NewProfiler(a.Name())
	if maxDataWS > 0 {
		p.MaxDataWS = maxDataWS
	}
	p.Attach(a.Proc())
	g := loadgen.New(loadgen.Config{
		Name: "lg", Machine: env.Client, Target: env.Server.Kernel,
		Port: a.Port(), Conns: load.Conns, QPS: load.QPS, Mix: load.Mix,
		Seed: load.Seed,
	})
	g.Start()
	env.WarmupFor(win.Warmup)
	env.ArmSampling()
	env.RunFor(win.Measure)
	prof := p.Finish()
	env.Shutdown()
	return prof
}

// SynthRunner returns a core.Runner that measures candidate specs on
// Platform A under the reference load — the fine-tuner's measurement arm.
func SynthRunner(load Load, win Windows) core.Runner {
	return func(spec *core.SynthSpec) profile.TargetMetrics {
		env := NewEnv(platform.A(), platform.WithCoreCount(8))
		s := synth.NewServer(env.Server, 9100, spec, load.Seed+99)
		s.Start()
		res := Measure(env, s, load, win)
		env.Shutdown()
		return res.Metrics
	}
}

// Clone profiles the original app, generates a synthetic spec, and
// fine-tunes it (§4.5) — the complete Ditto pipeline for a single-tier app.
func Clone(build AppBuilder, load Load, win Windows, maxDataWS int, tuneIters int, seed int64) (*profile.AppProfile, *core.SynthSpec) {
	return cloneApp(build, load, win, maxDataWS, tuneIters, seed, false)
}

// cloneApp is Clone with an opt-in sampled profiling run. Fine-tuning
// iterations always measure candidates at full fidelity: the tuner chases
// sub-percent metric deltas, so its measurement arm is never sampled.
func cloneApp(build AppBuilder, load Load, win Windows, maxDataWS int, tuneIters int, seed int64, sampled bool) (*profile.AppProfile, *core.SynthSpec) {
	prof := profileRun(build, load, win, maxDataWS, sampled)
	if tuneIters <= 0 {
		return prof, core.Generate(prof, seed)
	}
	spec, _ := core.FineTune(prof, seed, SynthRunner(load, win), tuneIters, 0.05)
	return prof, spec
}

// row prints one aligned data row.
func row(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}
