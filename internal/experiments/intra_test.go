package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"ditto/internal/sim"
)

// TestFigureOutputIdenticalAcrossIntraWidths is the sharded engine's
// determinism guarantee: a figure whose cells run on a sharded World
// produces byte-identical output and identical results at every
// -intra-parallel width ≥ 1. Width 1 executes every window serially, so the
// wider runs are checked against a serial reference — shard workers must be
// unobservable, exactly like the cell pool in
// TestFigureOutputIdenticalAcrossPoolWidths.
func TestFigureOutputIdenticalAcrossIntraWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	run := func(intra int) ([]byte, Fig6Result) {
		opt := Options{
			Windows:       Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
			TuneIters:     0,
			Seed:          3,
			Parallel:      2,
			IntraParallel: intra,
		}
		var buf bytes.Buffer
		res := RunFig6(&buf, opt, []float64{150, 400})
		return buf.Bytes(), res
	}
	outSerial, resSerial := run(1)
	if len(resSerial.Points) == 0 {
		t.Fatal("intra=1 run produced no points")
	}
	for _, intra := range []int{2, 8} {
		out, res := run(intra)
		if !bytes.Equal(outSerial, out) {
			t.Fatalf("output differs between -intra-parallel 1 and %d:\n--- intra=1 ---\n%s\n--- intra=%d ---\n%s",
				intra, outSerial, intra, out)
		}
		if !reflect.DeepEqual(resSerial, res) {
			t.Fatalf("results differ between intra widths 1 and %d:\n%+v\nvs\n%+v",
				intra, resSerial, res)
		}
	}
}
