package experiments

import (
	"io"
	"strings"
	"testing"

	"ditto/internal/app"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// fastOptions shrinks everything for unit testing; benches use
// DefaultOptions.
func fastOptions() Options {
	return Options{
		Windows:   Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
		TuneIters: 0,
		Seed:      3,
		Quiet:     true,
	}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	specs := RunTable1(&sb)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	out := sb.String()
	for _, want := range []string{"table1: A", "table1: B", "table1: C", "skylake", "haswell", "SSD", "HDD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5SingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	opt.Apps = []string{"redis"}
	res := RunFig5(io.Discard, opt)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 loads × 2 variants", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Metrics.IPC <= 0 {
			t.Fatalf("zero IPC row: %+v", r)
		}
		if r.Tput <= 0 {
			t.Fatalf("zero throughput row: %+v", r)
		}
	}
	if res.AvgErrors["ipc"] <= 0 || res.AvgErrors["ipc"] > 100 {
		t.Fatalf("ipc error = %v", res.AvgErrors["ipc"])
	}
	// Closed-loop loads: higher load should not lower throughput.
	var lowA, highA float64
	for _, r := range res.Rows {
		if r.Variant != "actual" {
			continue
		}
		switch r.Load {
		case "low":
			lowA = r.Tput
		case "high":
			highA = r.Tput
		}
	}
	if highA <= lowA {
		t.Fatalf("throughput should grow with connections: low=%v high=%v", lowA, highA)
	}
}

func TestFig6SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	res := RunFig6(io.Discard, opt, []float64{150, 400})
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Tput <= 0 || p.P99Ms <= 0 {
			t.Fatalf("bad point: %+v", p)
		}
		if p.P50Ms > p.P99Ms {
			t.Fatalf("p50 > p99: %+v", p)
		}
	}
	// Synthetic should land in the same latency regime as actual.
	for i := 0; i < len(res.Points); i += 2 {
		a, s := res.Points[i], res.Points[i+1]
		if s.P50Ms > a.P50Ms*4 || s.P50Ms < a.P50Ms/4 {
			t.Errorf("qps=%v p50 regime mismatch: actual=%v synth=%v", a.QPS, a.P50Ms, s.P50Ms)
		}
	}
}

func TestFig8SingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	opt.Apps = []string{"nginx"}
	res := RunFig8(io.Discard, opt)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		sum := r.Retiring + r.Frontend + r.BadSpec + r.Backend
		if r.CPI <= 0 || sum <= 0.9*r.CPI || sum > 1.1*r.CPI {
			t.Fatalf("top-down does not sum to CPI: %+v (sum=%v)", r, sum)
		}
	}
}

func TestFig9Stages(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	opt.TuneIters = 1
	res := RunFig9(io.Discard, opt)
	if len(res.Rows) != 9 {
		t.Fatalf("stages = %d, want A..I", len(res.Rows))
	}
	if res.Target.IPC <= 0 {
		t.Fatal("no target")
	}
	// Stage A (skeleton only) must execute far fewer instructions per
	// request than stage C, which matches the target instruction count.
	if res.Rows[0].Instrs >= res.Rows[2].Instrs {
		t.Fatalf("stage A instrs/req %v should be < stage C %v", res.Rows[0].Instrs, res.Rows[2].Instrs)
	}
	if res.Rows[2].Instrs < res.Target.Instrs/2 || res.Rows[2].Instrs > res.Target.Instrs*2 {
		t.Fatalf("stage C instrs/req %v should approach target %v", res.Rows[2].Instrs, res.Target.Instrs)
	}
	// By stage H the clone should be in the target's IPC neighbourhood.
	h := res.Rows[7]
	if h.IPC < res.Target.IPC/3 || h.IPC > res.Target.IPC*3 {
		t.Fatalf("stage H IPC %v vs target %v", h.IPC, res.Target.IPC)
	}
}

func TestFig10Scenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	res := RunFig10(io.Discard, opt)
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 6 scenarios × 2", len(res.Rows))
	}
	byKey := map[string]Fig10Row{}
	for _, r := range res.Rows {
		byKey[r.Scenario+"/"+r.Variant] = r
	}
	// HT interference must cost IPC for both variants.
	if byKey["HT/actual"].IPC >= byKey["orig/actual"].IPC {
		t.Errorf("HT should lower actual IPC: %+v vs %+v", byKey["HT/actual"], byKey["orig/actual"])
	}
	if byKey["HT/synthetic"].IPC >= byKey["orig/synthetic"].IPC {
		t.Errorf("HT should lower synthetic IPC")
	}
	// L1d stressor raises L1d miss rate.
	if byKey["L1d/actual"].L1dMiss <= byKey["orig/actual"].L1dMiss {
		t.Errorf("L1d stressor should raise actual L1d misses")
	}
	if byKey["L1d/synthetic"].L1dMiss <= byKey["orig/synthetic"].L1dMiss {
		t.Errorf("L1d stressor should raise synthetic L1d misses")
	}
	// Network contention must raise p99 for both.
	if byKey["Net/actual"].P99Ms <= byKey["orig/actual"].P99Ms {
		t.Errorf("net stressor should raise actual p99")
	}
	if byKey["Net/synthetic"].P99Ms <= byKey["orig/synthetic"].P99Ms {
		t.Errorf("net stressor should raise synthetic p99")
	}
}

func TestFig11SmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	res := RunFig11(io.Discard, opt, []int{4, 16}, []float64{1.1, 2.1})
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	find := func(cores int, f float64, variant string) Fig11Cell {
		for _, c := range res.Cells {
			if c.Cores == cores && c.FreqGHz == f && c.Variant == variant {
				return c
			}
		}
		t.Fatalf("cell missing")
		return Fig11Cell{}
	}
	for _, variant := range []string{"actual", "synthetic"} {
		worst := find(4, 1.1, variant)
		best := find(16, 2.1, variant)
		if best.P99Ms >= worst.P99Ms {
			t.Errorf("%s: best config %vms should beat worst %vms", variant, best.P99Ms, worst.P99Ms)
		}
	}
}

func TestFig7SingleAppAcrossPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	opt.Apps = []string{"mongodb"}
	res := RunFig7(io.Discard, opt)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 platforms × 2", len(res.Rows))
	}
	get := func(plat, variant string) Fig7Row {
		for _, r := range res.Rows {
			if r.Platform == plat && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("row missing: %s %s", plat, variant)
		return Fig7Row{}
	}
	// MongoDB latency is far lower on SSD Platform A than HDD B/C for both
	// variants — the Fig. 7 observation.
	for _, variant := range []string{"actual", "synthetic"} {
		a, b := get("A", variant), get("B", variant)
		if a.AvgMs >= b.AvgMs {
			t.Errorf("%s: SSD platform A (%vms) should beat HDD B (%vms)", variant, a.AvgMs, b.AvgMs)
		}
	}
	_ = platform.A
}

func TestPhaseScanNoRegularPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	opt := fastOptions()
	opt.Windows.Measure = 80 * sim.Millisecond
	build := func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, 13) }
	scan := RunPhaseScan(io.Discard, opt, build, Load{Conns: 8, Seed: 13}, 8)
	if len(scan.Samples) != 8 {
		t.Fatalf("samples = %d", len(scan.Samples))
	}
	if scan.Mean <= 0 {
		t.Fatal("no IPC measured")
	}
	// §7.3: steady-state cloud services show no regular program phases; the
	// IPC time series should be tight around its mean.
	if scan.CoV > 0.25 {
		t.Fatalf("IPC CoV = %v, unexpectedly phase-y", scan.CoV)
	}
}
