package experiments

import (
	"io"

	"ditto/internal/platform"
)

// RunTable1 prints the Table 1 platform inventory as encoded in the
// platform package, so the reproduction's hardware assumptions are
// auditable alongside the paper's.
func RunTable1(w io.Writer) []platform.Spec {
	specs := []platform.Spec{platform.A(), platform.B(), platform.C()}
	row(w, "# table1: platform cpu freqGHz cores L1iKB/L1dKB L2KB LLCKB memGBps disk nic")
	for _, s := range specs {
		disk := "SSD"
		if s.Disk.Class != 0 {
			disk = "HDD"
		}
		row(w, "table1: %-2s %-8s %.2f %2d %d/%d %4d %5d %5.0f %s %.0fGbe",
			s.Name, s.Arch.Name, s.FreqGHz, s.Cores, s.L1iKB, s.L1dKB,
			s.L2KB, s.LLCKB, s.MemBWGBps, disk, s.NICGbps)
	}
	return specs
}
