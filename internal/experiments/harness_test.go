package experiments

import (
	"testing"

	"ditto/internal/cpu"
)

func TestDeltaCounters(t *testing.T) {
	base := cpu.Counters{Instrs: 100, Cycles: 200, L1dAcc: 50, L1dMiss: 5,
		Branches: 10, Mispred: 1, Retiring: 80, Backend: 60}
	now := cpu.Counters{Instrs: 300, Cycles: 500, L1dAcc: 150, L1dMiss: 30,
		Branches: 40, Mispred: 5, Retiring: 200, Backend: 160}
	d := deltaCounters(now, base)
	if d.Instrs != 200 || d.Cycles != 300 || d.L1dAcc != 100 || d.L1dMiss != 25 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Retiring != 120 || d.Backend != 100 {
		t.Fatalf("top-down delta = %+v", d)
	}
	m := metricsOf(d)
	if m.IPC != 200.0/300.0 {
		t.Fatalf("IPC = %v", m.IPC)
	}
	if m.L1dMiss != 0.25 {
		t.Fatalf("L1dMiss = %v", m.L1dMiss)
	}
	if m.BranchMiss != (5.0-1.0)/(40.0-10.0) {
		t.Fatalf("BranchMiss = %v", m.BranchMiss)
	}
}

func TestLoadLevelsShape(t *testing.T) {
	open := appCases(1)[0] // memcached, open loop
	lv := loadLevels(open, 10000, 1)
	if len(lv) != 3 || lv[0].Name != "low" || lv[2].Name != "high" {
		t.Fatalf("levels = %+v", lv)
	}
	if !(lv[0].Load.QPS < lv[1].Load.QPS && lv[1].Load.QPS < lv[2].Load.QPS) {
		t.Fatal("open-loop QPS must be increasing")
	}
	if mediumOf(lv).QPS != lv[1].Load.QPS {
		t.Fatal("mediumOf should return the middle level")
	}
	closed := appCases(1)[3] // redis, closed loop
	cl := loadLevels(closed, 0, 1)
	if !(cl[0].Load.Conns < cl[1].Load.Conns && cl[1].Load.Conns < cl[2].Load.Conns) {
		t.Fatal("closed-loop connection counts must be increasing")
	}
	if cl[0].Load.QPS != 0 {
		t.Fatal("closed loop must not set QPS")
	}
}

func TestAppCasesComplete(t *testing.T) {
	cases := appCases(1)
	names := map[string]bool{}
	for _, c := range cases {
		names[c.name] = true
		if c.build == nil || c.port == 0 || c.maxDWS == 0 {
			t.Fatalf("incomplete case %+v", c.name)
		}
	}
	for _, want := range []string{"memcached", "nginx", "mongodb", "redis"} {
		if !names[want] {
			t.Fatalf("missing app %s", want)
		}
	}
}

func TestContainsAndMaxF(t *testing.T) {
	if !contains([]string{"a", "b"}, "b") || contains([]string{"a"}, "z") {
		t.Fatal("contains broken")
	}
	if maxF(1, 2) != 2 || maxF(3, 2) != 3 {
		t.Fatal("maxF broken")
	}
}

func TestSNMixWeights(t *testing.T) {
	mix := SNMix()
	var sum float64
	for _, m := range mix {
		sum += m.Weight
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("mix weights sum to %v", sum)
	}
	// Read-home-timeline dominates, as in the paper's workload.
	if mix[1].Weight < mix[0].Weight || mix[1].Weight < mix[2].Weight {
		t.Fatalf("mix = %+v", mix)
	}
}
