package experiments

import (
	"fmt"
	"io"

	"ditto/internal/sim"

	"ditto/internal/app"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/stats"
	"ditto/internal/synth"
)

// Fig5Row is one (application, load, variant) measurement of Fig. 5: the
// CPU metrics, network/disk bandwidth and latency percentiles the paper
// plots.
type Fig5Row struct {
	App     string
	Load    string
	Variant string // "actual" or "synthetic"
	Metrics profile.TargetMetrics
	NetBW   float64
	DiskBW  float64
	AvgMs   float64
	P95Ms   float64
	P99Ms   float64
	Tput    float64
	TopDown [4]float64
}

// Fig5Result aggregates the figure plus the §6.2.1 average-error table.
type Fig5Result struct {
	Rows      []Fig5Row
	AvgErrors map[string]float64
}

// Options sizes an experiment run: short windows for tests, longer with
// tuning for the benchmark harness.
type Options struct {
	Windows   Windows
	TuneIters int
	Seed      int64
	// Apps filters which single-tier apps run (nil = all four).
	Apps []string
	// IncludeSocial adds the TextService / SocialGraphService columns.
	IncludeSocial bool
	// SocialNodes is the machine count for the social network (default 2).
	SocialNodes int
	Quiet       bool
}

// DefaultOptions returns bench-grade settings.
func DefaultOptions() Options {
	return Options{Windows: DefaultWindows(), TuneIters: 4, Seed: 1}
}

// singleTierApps enumerates the four standalone applications with their
// builder, profiling/measurement loads and the client generator style the
// paper uses for each (open loop for Memcached/NGINX, closed loop YCSB for
// MongoDB/Redis).
type appCase struct {
	name   string
	build  AppBuilder
	open   bool
	port   int
	maxDWS int
}

func appCases(seed int64) []appCase {
	return []appCase{
		{name: "memcached", open: true, port: 11211, maxDWS: 128 << 20,
			build: func(m *platform.Machine) app.App { return app.NewMemcached(m, 11211, seed+1) }},
		{name: "nginx", open: true, port: 80, maxDWS: 32 << 20,
			build: func(m *platform.Machine) app.App { return app.NewNginx(m, 80, seed+2) }},
		{name: "mongodb", open: false, port: 27017, maxDWS: 256 << 20,
			build: func(m *platform.Machine) app.App { return app.NewMongoDB(m, 27017, seed+3) }},
		{name: "redis", open: false, port: 6379, maxDWS: 128 << 20,
			build: func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, seed+4) }},
	}
}

// probeCapacity measures closed-loop saturation throughput for an app so
// open-loop load levels can be placed relative to it.
func probeCapacity(c appCase, win Windows, seed int64) float64 {
	// The probe saturates the server, the most expensive regime to
	// simulate; a short dedicated window is plenty for a throughput
	// estimate.
	probeWin := Windows{Warmup: 8 * sim.Millisecond, Measure: 25 * sim.Millisecond}
	if win.Measure < probeWin.Measure {
		probeWin = win
	}
	env := NewEnv(platform.A(), platform.WithCoreCount(8))
	a := c.build(env.Server)
	a.Start()
	res := Measure(env, a, Load{Conns: 32, Seed: seed}, probeWin)
	env.Shutdown()
	return res.Throughput
}

// loadLevels builds the low/medium/high loads for one app: fractions of
// probed capacity for open-loop clients, connection counts for closed-loop
// ones.
func loadLevels(c appCase, capacity float64, seed int64) []struct {
	Name string
	Load Load
} {
	if c.open {
		return []struct {
			Name string
			Load Load
		}{
			{"low", Load{QPS: 0.25 * capacity, Conns: 16, Seed: seed}},
			{"medium", Load{QPS: 0.5 * capacity, Conns: 16, Seed: seed}},
			{"high", Load{QPS: 0.8 * capacity, Conns: 16, Seed: seed}},
		}
	}
	return []struct {
		Name string
		Load Load
	}{
		{"low", Load{Conns: 2, Seed: seed}},
		{"medium", Load{Conns: 8, Seed: seed}},
		{"high", Load{Conns: 24, Seed: seed}},
	}
}

// mediumOf returns the medium (profiling) load.
func mediumOf(levels []struct {
	Name string
	Load Load
}) Load {
	return levels[1].Load
}

// RunFig5 reproduces Fig. 5: CPU performance metrics, network and disk
// bandwidth, and latency under varying load across the six services, for
// the original and its Ditto clone. Every app is profiled only at medium
// load, exactly as in the paper.
func RunFig5(w io.Writer, opt Options) Fig5Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	res := Fig5Result{AvgErrors: map[string]float64{}}
	errAgg := map[string]*stats.Recorder{}
	addErr := func(metric string, got, want float64) {
		r := errAgg[metric]
		if r == nil {
			r = &stats.Recorder{}
			errAgg[metric] = r
		}
		r.Add(stats.AbsPctErr(got, want))
	}

	header(w, opt, "fig5: app load variant ipc branchmiss l1i l1d l2 llc netBW diskBW avg p95 p99 tput")

	apps := appCases(opt.Seed)
	for _, c := range apps {
		if len(opt.Apps) > 0 && !contains(opt.Apps, c.name) {
			continue
		}
		capacity := 0.0
		if c.open {
			capacity = probeCapacity(c, opt.Windows, opt.Seed)
		}
		levels := loadLevels(c, capacity, opt.Seed)
		med := mediumOf(levels)

		// The complete Ditto pipeline, profiled at medium load only.
		_, spec := Clone(c.build, med, opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+17)

		for _, lv := range levels {
			envO := NewEnv(platform.A(), platform.WithCoreCount(8))
			orig := c.build(envO.Server)
			orig.Start()
			ro := Measure(envO, orig, lv.Load, opt.Windows)
			envO.Shutdown()

			envS := NewEnv(platform.A(), platform.WithCoreCount(8))
			sv := synth.NewServer(envS.Server, c.port, spec, opt.Seed+31)
			sv.Start()
			rs := Measure(envS, sv, lv.Load, opt.Windows)
			envS.Shutdown()

			res.Rows = append(res.Rows,
				fig5Row(c.name, lv.Name, "actual", ro),
				fig5Row(c.name, lv.Name, "synthetic", rs))
			emitFig5(w, opt, res.Rows[len(res.Rows)-2:])
			accumulateErrors(addErr, ro, rs)
		}
	}

	if opt.IncludeSocial {
		for _, r := range socialTierRows(w, opt, addErr) {
			res.Rows = append(res.Rows, r)
		}
	}

	for metric, rec := range errAgg {
		res.AvgErrors[metric] = rec.Mean()
	}
	if !opt.Quiet {
		row(w, "fig5-errors: %s", formatErrors(res.AvgErrors))
	}
	return res
}

// socialTierRows measures TextService and SocialGraphService, actual vs
// synthetic, inside full social-network deployments at three loads.
func socialTierRows(w io.Writer, opt Options, addErr func(string, float64, float64)) []Fig5Row {
	nodes := opt.SocialNodes
	if nodes <= 0 {
		nodes = 2
	}
	tiers := []string{"text-service", "social-graph-service"}
	loads := []struct {
		Name string
		Load Load
	}{
		{"low", Load{QPS: 150, Conns: 12, Mix: SNMix(), Seed: opt.Seed}},
		{"medium", Load{QPS: 400, Conns: 12, Mix: SNMix(), Seed: opt.Seed}},
		{"high", Load{QPS: 800, Conns: 12, Mix: SNMix(), Seed: opt.Seed}},
	}
	snWin := socialWindows(opt.Windows)
	clone := CloneSN(platform.A(), nodes, 8, loads[1].Load, snWin, opt.Seed+5)

	var rows []Fig5Row
	for _, lv := range loads {
		dO := NewOriginalSN(platform.A(), nodes, 8, opt.Seed+5)
		_, perO := MeasureSN(dO, lv.Load, snWin, tiers)
		dO.Env.Shutdown()

		dS := NewSynthSN(clone, platform.A(), nodes, 8, opt.Seed+6)
		_, perS := MeasureSN(dS, lv.Load, snWin, tiers)
		dS.Env.Shutdown()

		for _, tn := range tiers {
			ro, rs := perO[tn], perS[tn]
			rows = append(rows,
				fig5Row(tn, lv.Name, "actual", ro),
				fig5Row(tn, lv.Name, "synthetic", rs))
			emitFig5(w, opt, rows[len(rows)-2:])
			accumulateErrors(addErr, ro, rs)
		}
	}
	return rows
}

func fig5Row(name, load, variant string, r Result) Fig5Row {
	return Fig5Row{App: name, Load: load, Variant: variant, Metrics: r.Metrics,
		NetBW: r.NetBW, DiskBW: r.DiskBW, AvgMs: r.AvgMs, P95Ms: r.P95Ms,
		P99Ms: r.P99Ms, Tput: r.Throughput, TopDown: r.TopDown}
}

func accumulateErrors(addErr func(string, float64, float64), ro, rs Result) {
	addErr("ipc", rs.Metrics.IPC, ro.Metrics.IPC)
	addErr("branch", rs.Metrics.BranchMiss, ro.Metrics.BranchMiss)
	addErr("l1i", rs.Metrics.L1iMiss, ro.Metrics.L1iMiss)
	addErr("l1d", rs.Metrics.L1dMiss, ro.Metrics.L1dMiss)
	addErr("l2", rs.Metrics.L2Miss, ro.Metrics.L2Miss)
	addErr("llc", rs.Metrics.L3Miss, ro.Metrics.L3Miss)
	if ro.NetBW > 0 {
		addErr("netbw", rs.NetBW/maxF(rs.Throughput, 1), ro.NetBW/maxF(ro.Throughput, 1))
	}
	if ro.DiskBW > 0 {
		addErr("diskbw", rs.DiskBW/maxF(rs.Throughput, 1), ro.DiskBW/maxF(ro.Throughput, 1))
	}
}

func emitFig5(w io.Writer, opt Options, rows []Fig5Row) {
	if opt.Quiet {
		return
	}
	for _, r := range rows {
		row(w, "fig5: %-20s %-6s %-9s ipc=%.3f br=%.4f l1i=%.4f l1d=%.4f l2=%.4f llc=%.4f net=%.3e disk=%.3e avg=%.3f p95=%.3f p99=%.3f tput=%.0f",
			r.App, r.Load, r.Variant, r.Metrics.IPC, r.Metrics.BranchMiss,
			r.Metrics.L1iMiss, r.Metrics.L1dMiss, r.Metrics.L2Miss, r.Metrics.L3Miss,
			r.NetBW, r.DiskBW, r.AvgMs, r.P95Ms, r.P99Ms, r.Tput)
	}
}

func formatErrors(errs map[string]float64) string {
	keys := []string{"ipc", "branch", "l1i", "l1d", "l2", "llc", "netbw", "diskbw"}
	s := ""
	for _, k := range keys {
		if v, ok := errs[k]; ok {
			s += fmt.Sprintf("%s=%.1f%% ", k, v)
		}
	}
	return s
}

func header(w io.Writer, opt Options, text string) {
	if !opt.Quiet {
		row(w, "# %s", text)
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
