package experiments

import (
	"fmt"
	"io"
	"regexp"

	"ditto/internal/sim"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/runner"
	"ditto/internal/stats"
	"ditto/internal/synth"
)

// Fig5Row is one (application, load, variant) measurement of Fig. 5: the
// CPU metrics, network/disk bandwidth and latency percentiles the paper
// plots.
type Fig5Row struct {
	App     string
	Load    string
	Variant string // "actual" or "synthetic"
	Metrics profile.TargetMetrics
	NetBW   float64
	DiskBW  float64
	AvgMs   float64
	P95Ms   float64
	P99Ms   float64
	Tput    float64
	TopDown [4]float64
}

// Fig5Result aggregates the figure plus the §6.2.1 average-error table.
type Fig5Result struct {
	Rows      []Fig5Row
	AvgErrors map[string]float64
}

// Options sizes an experiment run: short windows for tests, longer with
// tuning for the benchmark harness.
type Options struct {
	Windows   Windows
	TuneIters int
	Seed      int64
	// Apps filters which single-tier apps run (nil = all four).
	Apps []string
	// IncludeSocial adds the TextService / SocialGraphService columns.
	IncludeSocial bool
	// SocialNodes is the machine count for the social network (default 2).
	SocialNodes int
	Quiet       bool
	// Parallel bounds the cell worker pool (0 = GOMAXPROCS). Results and
	// output are identical at every width; parallelism only buys wall
	// clock.
	Parallel int
	// IntraParallel sets per-cell (intra-simulation) parallelism: each
	// machine of a cell's cluster gets its own event-queue shard, advanced
	// by up to IntraParallel workers under conservative synchronization
	// (see sim.World). 0 keeps the classic single-queue engine and its
	// exact event order; any width ≥ 1 is byte-identical to any other —
	// width only changes how many OS threads advance shards. When both
	// Parallel and IntraParallel exceed 1 the cell pool is divided by
	// IntraParallel so the total thread budget stays roughly constant.
	IntraParallel int
	// CellFilter restricts which plan cells run (nil = all). Prep cells a
	// surviving cell depends on are retained automatically.
	CellFilter *regexp.Regexp
	// Progress, when set, observes cell completions (e.g. for a stderr
	// ticker). It must not write to the figure writer.
	Progress func(done, total, failed int, r runner.CellResult)
	// Sampled enables steady-state sampled execution (internal/steady) in
	// measurement cells: converged request and kernel-stream variants
	// execute a rotating 1-in-N sample and model the rest from the measured
	// distribution. Opt-in per experiment; cloning/profiling preps, the
	// fault-plane figure (figF) and the storage figure (figS) always run
	// fully executed.
	Sampled bool
}

// DefaultOptions returns bench-grade settings.
func DefaultOptions() Options {
	return Options{Windows: DefaultWindows(), TuneIters: 4, Seed: 1}
}

// singleTierApps enumerates the four standalone applications with their
// builder, profiling/measurement loads and the client generator style the
// paper uses for each (open loop for Memcached/NGINX, closed loop YCSB for
// MongoDB/Redis).
type appCase struct {
	name   string
	build  AppBuilder
	open   bool
	port   int
	maxDWS int
}

func appCases(seed int64) []appCase {
	return []appCase{
		{name: "memcached", open: true, port: 11211, maxDWS: 128 << 20,
			build: func(m *platform.Machine) app.App { return app.NewMemcached(m, 11211, seed+1) }},
		{name: "nginx", open: true, port: 80, maxDWS: 32 << 20,
			build: func(m *platform.Machine) app.App { return app.NewNginx(m, 80, seed+2) }},
		{name: "mongodb", open: false, port: 27017, maxDWS: 256 << 20,
			build: func(m *platform.Machine) app.App { return app.NewMongoDB(m, 27017, seed+3) }},
		{name: "redis", open: false, port: 6379, maxDWS: 128 << 20,
			build: func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, seed+4) }},
	}
}

// probeCapacity measures closed-loop saturation throughput for an app so
// open-loop load levels can be placed relative to it.
func probeCapacity(c appCase, win Windows, seed int64, sampled bool) float64 {
	// The probe saturates the server, the most expensive regime to
	// simulate; a short dedicated window is plenty for a throughput
	// estimate.
	probeWin := Windows{Warmup: 8 * sim.Millisecond, Measure: 25 * sim.Millisecond}
	if win.Measure < probeWin.Measure {
		probeWin = win
	}
	env := NewEnv(platform.A(), platform.WithCoreCount(8))
	if sampled {
		env.EnableSampling(seed)
	}
	a := c.build(env.Server)
	a.Start()
	res := Measure(env, a, Load{Conns: 32, Seed: seed}, probeWin)
	env.Shutdown()
	return res.Throughput
}

// LoadLevel names one point of an app's low/medium/high load sweep.
type LoadLevel struct {
	Name string
	Load Load
}

// loadLevels builds the low/medium/high loads for one app: fractions of
// probed capacity for open-loop clients, connection counts for closed-loop
// ones.
func loadLevels(c appCase, capacity float64, seed int64) []LoadLevel {
	if c.open {
		return []LoadLevel{
			{"low", Load{QPS: 0.25 * capacity, Conns: 16, Seed: seed}},
			{"medium", Load{QPS: 0.5 * capacity, Conns: 16, Seed: seed}},
			{"high", Load{QPS: 0.8 * capacity, Conns: 16, Seed: seed}},
		}
	}
	return []LoadLevel{
		{"low", Load{Conns: 2, Seed: seed}},
		{"medium", Load{Conns: 8, Seed: seed}},
		{"high", Load{Conns: 24, Seed: seed}},
	}
}

// mediumOf returns the medium (profiling) load.
func mediumOf(levels []LoadLevel) Load {
	return levels[1].Load
}

// fig5LevelNames is the canonical sweep order; cell names are static so
// plans can be built (and filtered) before any measurement runs.
var fig5LevelNames = []string{"low", "medium", "high"}

// fig5Variants orders the original/clone pair everywhere.
var fig5Variants = []string{"actual", "synthetic"}

// fig5SocialLoads is the Social Network sweep of Fig. 5.
func fig5SocialLoads(opt Options) []LoadLevel {
	return []LoadLevel{
		{"low", Load{QPS: 150, Conns: 12, Mix: SNMix(), Seed: opt.Seed}},
		{"medium", Load{QPS: 400, Conns: 12, Mix: SNMix(), Seed: opt.Seed}},
		{"high", Load{QPS: 800, Conns: 12, Mix: SNMix(), Seed: opt.Seed}},
	}
}

// fig5SocialTiers is the pair of microservices the paper highlights.
var fig5SocialTiers = []string{"text-service", "social-graph-service"}

// RunFig5 reproduces Fig. 5: CPU performance metrics, network and disk
// bandwidth, and latency under varying load across the six services, for
// the original and its Ditto clone. Every app is profiled only at medium
// load, exactly as in the paper. The measurement grid executes as a cell
// plan: one prep cell per app (capacity probe + full cloning pipeline),
// then one cell per app × load × variant after the barrier.
func RunFig5(w io.Writer, opt Options) Fig5Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	res := Fig5Result{AvgErrors: map[string]float64{}}
	apps := filteredAppCases(opt)
	nodes := snNodes(opt)
	snLoads := fig5SocialLoads(opt)
	snWin := socialWindows(opt.Windows)

	p := runner.NewPlan()
	preps := map[string]*struct {
		clonePrep
		spec *core.SynthSpec
	}{}
	for _, c := range apps {
		c := c
		pr := &struct {
			clonePrep
			spec *core.SynthSpec
		}{}
		preps[c.name] = pr
		p.AddPrep(runner.Key("fig5", c.name, "clone"), func(io.Writer) (any, error) {
			pr.clonePrep = prepLevels(c, opt)
			_, pr.spec = cloneApp(c.build, mediumOf(pr.levels), opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+17, opt.Sampled)
			return nil, nil
		})
	}
	var snClone *SNClone
	if opt.IncludeSocial {
		p.AddPrep(runner.Key("fig5", "social", "clone"), func(io.Writer) (any, error) {
			snClone = CloneSN(platform.A(), nodes, 8, snLoads[1].Load, snWin, opt.Seed+5)
			return nil, nil
		})
	}
	p.Barrier()

	for _, c := range apps {
		c := c
		pr := preps[c.name]
		for li, ln := range fig5LevelNames {
			li, ln := li, ln
			for _, v := range fig5Variants {
				v := v
				p.Add(runner.Key("fig5", c.name, ln, v), func(cw io.Writer) (any, error) {
					build := c.build
					if v == "synthetic" {
						build = func(m *platform.Machine) app.App {
							return synth.NewServer(m, c.port, pr.spec, opt.Seed+31)
						}
					}
					r := measureApp(platform.A(), []platform.Option{platform.WithCoreCount(8)},
						build, pr.levels[li].Load, opt.Windows, opt.IntraParallel, opt.Sampled)
					fr := fig5Row(c.name, ln, v, r)
					emitFig5(cw, opt, []Fig5Row{fr})
					return fr, nil
				})
			}
		}
	}
	if opt.IncludeSocial {
		for _, lv := range snLoads {
			lv := lv
			for _, v := range fig5Variants {
				v := v
				p.Add(runner.Key("fig5", "social", lv.Name, v), func(cw io.Writer) (any, error) {
					var d *SNEnv
					if v == "actual" {
						d = NewOriginalSN(platform.A(), nodes, 8, opt.Seed+5, opt.IntraParallel)
					} else {
						d = NewSynthSN(snClone, platform.A(), nodes, 8, opt.Seed+6, opt.IntraParallel)
					}
					if opt.Sampled {
						d.Env.EnableSampling(lv.Load.Seed)
					}
					_, per := MeasureSN(d, lv.Load, snWin, fig5SocialTiers)
					d.Env.Shutdown()
					rows := make([]Fig5Row, 0, len(fig5SocialTiers))
					for _, tn := range fig5SocialTiers {
						rows = append(rows, fig5Row(tn, lv.Name, v, per[tn]))
					}
					emitFig5(cw, opt, rows)
					return rows, nil
				})
			}
		}
	}

	results := runPlan(w, p, opt,
		"fig5: app load variant ipc branchmiss l1i l1d l2 llc netBW diskBW avg p95 p99 tput")
	if results == nil {
		return res
	}
	values := resultMap(results)

	errAgg := map[string]*stats.Recorder{}
	addErr := func(metric string, got, want float64) {
		r := errAgg[metric]
		if r == nil {
			r = &stats.Recorder{}
			errAgg[metric] = r
		}
		r.Add(stats.AbsPctErr(got, want))
	}
	collect := func(nameO, nameS string) {
		ro, okO := values[nameO].(Fig5Row)
		rs, okS := values[nameS].(Fig5Row)
		if okO {
			res.Rows = append(res.Rows, ro)
		}
		if okS {
			res.Rows = append(res.Rows, rs)
		}
		if okO && okS {
			accumulateErrors(addErr, ro, rs)
		}
	}
	for _, c := range apps {
		for _, ln := range fig5LevelNames {
			collect(runner.Key("fig5", c.name, ln, "actual"), runner.Key("fig5", c.name, ln, "synthetic"))
		}
	}
	if opt.IncludeSocial {
		for _, lv := range snLoads {
			rowsO, okO := values[runner.Key("fig5", "social", lv.Name, "actual")].([]Fig5Row)
			rowsS, okS := values[runner.Key("fig5", "social", lv.Name, "synthetic")].([]Fig5Row)
			for ti := range fig5SocialTiers {
				if okO {
					res.Rows = append(res.Rows, rowsO[ti])
				}
				if okS {
					res.Rows = append(res.Rows, rowsS[ti])
				}
				if okO && okS {
					accumulateErrors(addErr, rowsO[ti], rowsS[ti])
				}
			}
		}
	}

	for metric, rec := range errAgg {
		res.AvgErrors[metric] = rec.Mean()
	}
	if !opt.Quiet {
		row(w, "fig5-errors: %s", formatErrors(res.AvgErrors))
	}
	return res
}

func fig5Row(name, load, variant string, r Result) Fig5Row {
	return Fig5Row{App: name, Load: load, Variant: variant, Metrics: r.Metrics,
		NetBW: r.NetBW, DiskBW: r.DiskBW, AvgMs: r.AvgMs, P95Ms: r.P95Ms,
		P99Ms: r.P99Ms, Tput: r.Throughput, TopDown: r.TopDown}
}

func accumulateErrors(addErr func(string, float64, float64), ro, rs Fig5Row) {
	addErr("ipc", rs.Metrics.IPC, ro.Metrics.IPC)
	addErr("branch", rs.Metrics.BranchMiss, ro.Metrics.BranchMiss)
	addErr("l1i", rs.Metrics.L1iMiss, ro.Metrics.L1iMiss)
	addErr("l1d", rs.Metrics.L1dMiss, ro.Metrics.L1dMiss)
	addErr("l2", rs.Metrics.L2Miss, ro.Metrics.L2Miss)
	addErr("llc", rs.Metrics.L3Miss, ro.Metrics.L3Miss)
	if ro.NetBW > 0 {
		addErr("netbw", rs.NetBW/maxF(rs.Tput, 1), ro.NetBW/maxF(ro.Tput, 1))
	}
	if ro.DiskBW > 0 {
		addErr("diskbw", rs.DiskBW/maxF(rs.Tput, 1), ro.DiskBW/maxF(ro.Tput, 1))
	}
}

func emitFig5(w io.Writer, opt Options, rows []Fig5Row) {
	if opt.Quiet {
		return
	}
	for _, r := range rows {
		row(w, "fig5: %-20s %-6s %-9s ipc=%.3f br=%.4f l1i=%.4f l1d=%.4f l2=%.4f llc=%.4f net=%.3e disk=%.3e avg=%.3f p95=%.3f p99=%.3f tput=%.0f",
			r.App, r.Load, r.Variant, r.Metrics.IPC, r.Metrics.BranchMiss,
			r.Metrics.L1iMiss, r.Metrics.L1dMiss, r.Metrics.L2Miss, r.Metrics.L3Miss,
			r.NetBW, r.DiskBW, r.AvgMs, r.P95Ms, r.P99Ms, r.Tput)
	}
}

func formatErrors(errs map[string]float64) string {
	keys := []string{"ipc", "branch", "l1i", "l1d", "l2", "llc", "netbw", "diskbw"}
	s := ""
	for _, k := range keys {
		if v, ok := errs[k]; ok {
			s += fmt.Sprintf("%s=%.1f%% ", k, v)
		}
	}
	return s
}

func header(w io.Writer, opt Options, text string) {
	if !opt.Quiet {
		row(w, "# %s", text)
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
