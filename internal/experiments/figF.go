package experiments

import (
	"fmt"
	"io"

	"ditto/internal/app"
	"ditto/internal/fault"
	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/runner"
	"ditto/internal/sim"
)

// FigFPoint is one (scenario, variant) measurement of the resilience
// experiment: Social Network latency and error rate under injected faults,
// original versus clone.
type FigFPoint struct {
	Scenario string
	Variant  string
	P50Ms    float64
	P95Ms    float64
	P99Ms    float64
	Goodput  float64 // successful responses per second
	ErrRate  float64 // failed responses / received responses
	Dropped  uint64  // messages lost on faulted links
}

// FigFResult is the resilience-under-faults series.
type FigFResult struct {
	Points []FigFPoint
}

// figFScenario is one declarative fault scenario. Events are built against
// the deployment (so targets resolve by logical tier name on original and
// clone alike) and the windows (so fault times scale with the measurement).
type figFScenario struct {
	name  string
	build func(d *SNEnv, win Windows) []fault.Event
}

// figFScenarios returns the scenario table (EXPERIMENTS.md documents it).
// All faults start at measure/8 into the window; recovery points differ so
// the tail of every window observes the healed system.
func figFScenarios() []figFScenario {
	at := func(win Windows, num, den sim.Time) sim.Time {
		return win.Warmup + win.Measure*num/den
	}
	return []figFScenario{
		{"baseline", func(d *SNEnv, win Windows) []fault.Event { return nil }},
		{"crash-cache", func(d *SNEnv, win Windows) []fault.Event {
			return []fault.Event{
				{At: at(win, 1, 8), Op: fault.OpCrash, Tiers: []string{"post-storage-memcached"}},
				{At: at(win, 1, 2), Op: fault.OpRestart, Tiers: []string{"post-storage-memcached"}},
			}
		}},
		{"crash-logic", func(d *SNEnv, win Windows) []fault.Event {
			return []fault.Event{
				{At: at(win, 1, 8), Op: fault.OpCrash, Tiers: []string{"compose-post-service"}},
				{At: at(win, 1, 2), Op: fault.OpRestart, Tiers: []string{"compose-post-service"}},
			}
		}},
		{"partition", func(d *SNEnv, win Windows) []fault.Event {
			// Machine-granular cut between the frontend's machine and the
			// next machine in placement order — with round-robin placement
			// this severs roughly half the deployment.
			if len(d.Order) < 2 {
				return nil
			}
			return []fault.Event{
				{At: at(win, 1, 8), Op: fault.OpPartition,
					Tiers: []string{d.Order[0]}, TiersB: []string{d.Order[1]}},
				{At: at(win, 1, 2), Op: fault.OpHeal},
			}
		}},
		{"loss2", func(d *SNEnv, win Windows) []fault.Event {
			return []fault.Event{
				{At: at(win, 1, 8), Op: fault.OpLoss, Loss: 0.02},
				{At: at(win, 3, 4), Op: fault.OpHeal},
			}
		}},
		{"delay-spike", func(d *SNEnv, win Windows) []fault.Event {
			return []fault.Event{
				{At: at(win, 1, 8), Op: fault.OpDelay, Delay: 2 * sim.Millisecond},
				{At: at(win, 1, 2), Op: fault.OpHeal},
			}
		}},
		{"slow-replica", func(d *SNEnv, win Windows) []fault.Event {
			return []fault.Event{
				{At: at(win, 1, 8), Op: fault.OpSlowCPU,
					Tiers: []string{"social-graph-service"}, Throttle: 0.35},
				{At: at(win, 3, 4), Op: fault.OpHeal},
			}
		}},
	}
}

// figFPolicy is the RPC resilience policy every tier runs under in the
// resilience experiment: per-attempt timeouts with two retries, hedging at
// half the timeout, a consecutive-failure breaker, and queue-delay shedding.
func figFPolicy() *app.Resilience {
	return &app.Resilience{
		Timeout:        10 * sim.Millisecond,
		Retries:        2,
		Backoff:        500 * sim.Microsecond,
		HedgeAfter:     5 * sim.Millisecond,
		BreakerFails:   10,
		BreakerOpenFor: 10 * sim.Millisecond,
		ShedAfter:      25 * sim.Millisecond,
	}
}

// linkSeed derives a deterministic per-cell loss-stream seed from the base
// seed and the cell's scenario/variant names (FNV-1a over the key).
func linkSeed(seed int64, parts ...string) uint64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(fmt.Sprint(seed))
	for _, p := range parts {
		mix(p)
	}
	return h | 1
}

// measureSNFault deploys the fault plane over d, drives it, and measures
// latency, goodput, and error rate over the post-warmup window.
func measureSNFault(d *SNEnv, load Load, win Windows, sc figFScenario, seed uint64) FigFPoint {
	d.SetResilience(figFPolicy())
	fabric := fault.Interpose(d.Env.Cluster, d.Machines, seed)
	plane := fault.NewPlane(d.Env.Eng, fabric, d.Tiers)
	plane.Schedule(fault.Scenario{Name: sc.name, Events: sc.build(d, win)})

	g := loadgen.New(loadgen.Config{
		Name: "wrk2", Machine: d.Env.Client, Target: d.Frontend.Kernel,
		Port: d.Port, Conns: load.Conns, QPS: load.QPS, Mix: load.Mix, Seed: load.Seed,
	})
	g.Start()
	d.Env.RunFor(win.Warmup)
	g.Reset()
	start := d.Env.Now()
	d.Env.RunFor(win.Measure)
	dur := (d.Env.Now() - start).Seconds()

	lat := g.Latency()
	received, failed := g.Received(), g.Failed()
	pt := FigFPoint{
		Scenario: sc.name,
		P50Ms:    lat.Percentile(50),
		P95Ms:    lat.Percentile(95),
		P99Ms:    lat.Percentile(99),
		Goodput:  float64(received-failed) / dur,
		Dropped:  fabric.Dropped(),
	}
	if received > 0 {
		pt.ErrRate = float64(failed) / float64(received)
	}
	return pt
}

// RunFigF measures clone fidelity under failure: the original Social Network
// and its fully synthetic clone run the same resilience policy through the
// same deterministic fault scenarios, comparing p50/p95/p99, goodput, and
// error rate. One prep cell clones the deployment fault-free; each
// (scenario, variant) point is an independent cell, so the report is
// byte-identical at any -parallel width.
func RunFigF(w io.Writer, opt Options, qps float64) FigFResult {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	opt.Windows = socialWindows(opt.Windows)
	if qps <= 0 {
		qps = 600
	}
	nodes := snNodes(opt)
	scenarios := figFScenarios()

	p := runner.NewPlan()
	var clone *SNClone
	p.AddPrep(runner.Key("figF", "clone"), func(io.Writer) (any, error) {
		profLoad := Load{QPS: qps, Conns: 16, Mix: SNMix(), Seed: opt.Seed}
		clone = CloneSN(platform.A(), nodes, 8, profLoad, opt.Windows, opt.Seed+11)
		return nil, nil
	})
	p.Barrier()
	runner.Grid2(p, scenarios, fig5Variants,
		func(sc figFScenario, v string) string {
			return runner.Key("figF", sc.name, v)
		},
		func(sc figFScenario, v string, cw io.Writer) (any, error) {
			load := Load{QPS: qps, Conns: 16, Mix: SNMix(), Seed: opt.Seed}
			var d *SNEnv
			if v == "actual" {
				d = NewOriginalSN(platform.A(), nodes, 8, opt.Seed+11, opt.IntraParallel)
			} else {
				d = NewSynthSN(clone, platform.A(), nodes, 8, opt.Seed+12, opt.IntraParallel)
			}
			pt := measureSNFault(d, load, opt.Windows, sc, linkSeed(opt.Seed, sc.name, v))
			pt.Variant = v
			d.Env.Shutdown()
			if !opt.Quiet {
				row(cw, "figF: %-12s %-9s p50=%.3f p95=%.3f p99=%.3f goodput=%.0f err=%.2f%% drops=%d",
					pt.Scenario, pt.Variant, pt.P50Ms, pt.P95Ms, pt.P99Ms,
					pt.Goodput, pt.ErrRate*100, pt.Dropped)
			}
			return pt, nil
		})

	var res FigFResult
	results := runPlan(w, p, opt, "figF: scenario variant p50 p95 p99 goodput err% drops")
	if results == nil {
		return res
	}
	for _, r := range results {
		if pt, ok := r.Value.(FigFPoint); ok {
			res.Points = append(res.Points, pt)
		}
	}
	return res
}
