package experiments

import (
	"io"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/runner"
	"ditto/internal/synth"
)

// Fig9Row is one decomposition stage's measurement for MongoDB: how IPC,
// instruction count, cycles and p99 evolve as Ditto's features are enabled
// one by one (Fig. 9).
type Fig9Row struct {
	Stage  string
	IPC    float64
	Instrs float64 // per request
	Cycles float64 // per request
	P99Ms  float64
}

// Fig9Result carries the staged rows plus the original's target line.
type Fig9Result struct {
	Target Fig9Row
	Rows   []Fig9Row
}

// RunFig9 reproduces Fig. 9: the accuracy decomposition on MongoDB. Stages
// A–H are generated with increasing sophistication; stage I adds fine
// tuning. The profiling run is the single prep cell; the target line and
// every stage then measure as independent cells.
func RunFig9(w io.Writer, opt Options) Fig9Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	c := appCases(opt.Seed)[2] // mongodb
	load := Load{Conns: 8, Seed: opt.Seed}

	emit := func(cw io.Writer, fr Fig9Row) {
		if !opt.Quiet {
			row(cw, "fig9: %-11s ipc=%.3f instrs/req=%.0f cycles/req=%.0f p99=%.3f",
				fr.Stage, fr.IPC, fr.Instrs, fr.Cycles, fr.P99Ms)
		}
	}
	var prof *profile.AppProfile
	p := runner.NewPlan()
	p.AddPrep(runner.Key("fig9", "profile"), func(io.Writer) (any, error) {
		prof = profileRun(c.build, load, opt.Windows, c.maxDWS, opt.Sampled)
		return nil, nil
	})
	p.Add(runner.Key("fig9", "target"), func(cw io.Writer) (any, error) {
		r := measureApp(platform.A(), []platform.Option{platform.WithCoreCount(8)},
			c.build, load, opt.Windows, opt.IntraParallel, opt.Sampled)
		fr := fig9Of("target", r, opt.Windows)
		emit(cw, fr)
		return fr, nil
	})
	p.Barrier()

	var stages []core.Stage
	for st := core.StageSkeleton; st <= core.StageTune; st++ {
		stages = append(stages, st)
	}
	for _, st := range stages {
		st := st
		p.Add(runner.Key("fig9", "stage", st.String()), func(cw io.Writer) (any, error) {
			var spec *core.SynthSpec
			if st == core.StageTune {
				iters := opt.TuneIters
				if iters <= 0 {
					iters = 3
				}
				spec, _ = core.FineTune(prof, opt.Seed+60, SynthRunner(load, opt.Windows), iters, 0.05)
			} else {
				spec = core.GenerateStaged(prof, st, opt.Seed+60)
			}
			r := measureApp(platform.A(), []platform.Option{platform.WithCoreCount(8)},
				func(m *platform.Machine) app.App {
					return synth.NewServer(m, c.port, spec, opt.Seed+61)
				}, load, opt.Windows, opt.IntraParallel, opt.Sampled)
			fr := fig9Of(st.String(), r, opt.Windows)
			emit(cw, fr)
			return fr, nil
		})
	}

	var res Fig9Result
	results := runPlan(w, p, opt, "fig9: stage ipc instrs cycles p99 (target from actual MongoDB)")
	if results == nil {
		return res
	}
	values := resultMap(results)
	if fr, ok := values[runner.Key("fig9", "target")].(Fig9Row); ok {
		res.Target = fr
	}
	for _, st := range stages {
		if fr, ok := values[runner.Key("fig9", "stage", st.String())].(Fig9Row); ok {
			res.Rows = append(res.Rows, fr)
		}
	}
	return res
}

// fig9Of normalizes a measurement to per-request quantities: the staged
// clones serve very different request counts under a closed loop, so totals
// are not comparable but per-request instructions and cycles are.
func fig9Of(name string, r Result, win Windows) Fig9Row {
	reqs := r.Throughput * win.Measure.Seconds()
	if reqs < 1 {
		reqs = 1
	}
	return Fig9Row{Stage: name, IPC: r.Metrics.IPC,
		Instrs: float64(r.Counters.Instrs) / reqs,
		Cycles: r.Counters.Cycles / reqs, P99Ms: r.P99Ms}
}
