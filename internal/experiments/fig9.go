package experiments

import (
	"io"

	"ditto/internal/core"
	"ditto/internal/platform"
	"ditto/internal/synth"
)

// Fig9Row is one decomposition stage's measurement for MongoDB: how IPC,
// instruction count, cycles and p99 evolve as Ditto's features are enabled
// one by one (Fig. 9).
type Fig9Row struct {
	Stage  string
	IPC    float64
	Instrs float64 // per request
	Cycles float64 // per request
	P99Ms  float64
}

// Fig9Result carries the staged rows plus the original's target line.
type Fig9Result struct {
	Target Fig9Row
	Rows   []Fig9Row
}

// RunFig9 reproduces Fig. 9: the accuracy decomposition on MongoDB. Stages
// A–H are generated with increasing sophistication; stage I adds fine
// tuning.
func RunFig9(w io.Writer, opt Options) Fig9Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	c := appCases(opt.Seed)[2] // mongodb
	load := Load{Conns: 8, Seed: opt.Seed}
	prof := ProfileRun(c.build, load, opt.Windows, c.maxDWS)

	header(w, opt, "fig9: stage ipc instrs cycles p99 (target from actual MongoDB)")

	envT := NewEnv(platform.A(), platform.WithCoreCount(8))
	orig := c.build(envT.Server)
	orig.Start()
	rt := Measure(envT, orig, load, opt.Windows)
	envT.Shutdown()
	res := Fig9Result{Target: fig9Of("target", rt, opt.Windows)}
	if !opt.Quiet {
		row(w, "fig9: %-11s ipc=%.3f instrs/req=%.0f cycles/req=%.0f p99=%.3f",
			"target", res.Target.IPC, res.Target.Instrs, res.Target.Cycles, res.Target.P99Ms)
	}

	measure := func(spec *core.SynthSpec, name string) {
		env := NewEnv(platform.A(), platform.WithCoreCount(8))
		sv := synth.NewServer(env.Server, c.port, spec, opt.Seed+61)
		sv.Start()
		r := Measure(env, sv, load, opt.Windows)
		env.Shutdown()
		fr := fig9Of(name, r, opt.Windows)
		res.Rows = append(res.Rows, fr)
		if !opt.Quiet {
			row(w, "fig9: %-11s ipc=%.3f instrs/req=%.0f cycles/req=%.0f p99=%.3f",
				fr.Stage, fr.IPC, fr.Instrs, fr.Cycles, fr.P99Ms)
		}
	}

	for st := core.StageSkeleton; st < core.StageTune; st++ {
		measure(core.GenerateStaged(prof, st, opt.Seed+60), st.String())
	}
	iters := opt.TuneIters
	if iters <= 0 {
		iters = 3
	}
	tuned, _ := core.FineTune(prof, opt.Seed+60, SynthRunner(load, opt.Windows), iters, 0.05)
	measure(tuned, core.StageTune.String())
	return res
}

// fig9Of normalizes a measurement to per-request quantities: the staged
// clones serve very different request counts under a closed loop, so totals
// are not comparable but per-request instructions and cycles are.
func fig9Of(name string, r Result, win Windows) Fig9Row {
	reqs := r.Throughput * win.Measure.Seconds()
	if reqs < 1 {
		reqs = 1
	}
	return Fig9Row{Stage: name, IPC: r.Metrics.IPC,
		Instrs: float64(r.Counters.Instrs) / reqs,
		Cycles: r.Counters.Cycles / reqs, P99Ms: r.P99Ms}
}
