package experiments

import (
	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/stats"
	"ditto/internal/synth"
)

// SNMix is the paper-style request mix for the Social Network workload.
func SNMix() []loadgen.MixEntry {
	return []loadgen.MixEntry{
		{Kind: app.KindComposePost, Weight: 0.1, ReqBytes: 512},
		{Kind: app.KindReadHomeTimeline, Weight: 0.6, ReqBytes: 128},
		{Kind: app.KindReadUserTimeline, Weight: 0.3, ReqBytes: 128},
	}
}

// SNEnv is a deployed Social Network (original or synthetic) with its
// client machine.
type SNEnv struct {
	Env      *Env
	Machines []*platform.Machine
	Frontend *platform.Machine
	Port     int
	TierProc func(name string) *kernel.Proc
	// Tiers maps logical (original) tier names to the deployed tiers — the
	// synthetic deployment is keyed by the original name it stands in for,
	// so one fault scenario addresses both deployments identically.
	Tiers     map[string]*app.Tier
	Order     []string
	Collector *dtrace.Collector
	original  *app.SocialNetwork
}

// SetResilience installs one RPC resilience policy on every tier.
func (d *SNEnv) SetResilience(r *app.Resilience) {
	for _, t := range d.Tiers {
		t.Cfg.Resilience = r
	}
}

// NewOriginalSN deploys the original Social Network over nodes machines of
// the given spec (round-robin placement, one replica per tier). intra sets
// the environment's intra-cell parallelism (see NewEnvW); pass 0 for the
// classic single-queue engine.
func NewOriginalSN(spec platform.Spec, nodes int, coresPer int, seed int64, intra int) *SNEnv {
	env := NewEnvW(intra, spec, platform.WithCoreCount(coresPer))
	machines := []*platform.Machine{env.Server}
	for i := 1; i < nodes; i++ {
		machines = append(machines, env.AddMachine("node"+string(rune('0'+i)), spec,
			platform.WithCoreCount(coresPer)))
	}
	i := 0
	sn := app.NewSocialNetwork(func(string) *platform.Machine {
		m := machines[i%len(machines)]
		i++
		return m
	}, 9000, seed)
	sn.Start()
	fe := sn.Frontend.Machine()
	return &SNEnv{Env: env, Machines: machines, Frontend: fe, Port: sn.Port(),
		TierProc: func(name string) *kernel.Proc {
			if t := sn.Tier(name); t != nil {
				return t.Proc()
			}
			return nil
		},
		Tiers:     sn.Tiers,
		Order:     append([]string(nil), sn.Order...),
		Collector: sn.Collector,
		original:  sn,
	}
}

// MeasureSN drives the deployment and returns end-to-end results plus the
// per-tier counter deltas for the named tiers.
func MeasureSN(d *SNEnv, load Load, win Windows, tiers []string) (Result, map[string]Result) {
	g := loadgen.New(loadgen.Config{
		Name: "wrk2", Machine: d.Env.Client, Target: d.Frontend.Kernel,
		Port: d.Port, Conns: load.Conns, QPS: load.QPS, Mix: load.Mix, Seed: load.Seed,
	})
	g.Start()
	d.Env.WarmupFor(win.Warmup)
	d.Env.ArmSampling()
	g.Reset()
	before := map[string]snapshot{}
	for _, tn := range tiers {
		if p := d.TierProc(tn); p != nil {
			before[tn] = snap(p)
		}
	}
	start := d.Env.Now()
	d.Env.RunFor(win.Measure)
	dur := (d.Env.Now() - start).Seconds()

	lat := g.Latency()
	e2e := Result{
		AvgMs: lat.Mean(), P50Ms: lat.Percentile(50),
		P95Ms: lat.Percentile(95), P99Ms: lat.Percentile(99),
		Throughput: float64(g.Received()) / dur,
	}
	perTier := map[string]Result{}
	for _, tn := range tiers {
		p := d.TierProc(tn)
		if p == nil {
			continue
		}
		b := before[tn]
		a := snap(p)
		ctr := deltaCounters(a.ctr, b.ctr)
		r := Result{Counters: ctr, Metrics: metricsOf(ctr),
			NetBW:  float64(a.tx-b.tx+a.rx-b.rx) / dur,
			DiskBW: float64(a.disk-b.disk+a.diskW-b.diskW) / dur,
		}
		if ctr.Cycles > 0 {
			r.TopDown = [4]float64{ctr.Retiring / ctr.Cycles, ctr.Frontend / ctr.Cycles,
				ctr.BadSpec / ctr.Cycles, ctr.Backend / ctr.Cycles}
		}
		// Per-tier service latency from the measurement window's spans —
		// the per-tier latency row of Fig. 5.
		if d.Collector != nil {
			var lat stats.Recorder
			for _, sp := range d.Collector.Spans() {
				// Synthetic tiers record spans under "<service>-synth".
				if (sp.Service == tn || sp.Service == tn+"-synth") && sp.Start >= start {
					lat.Add(sp.Duration().Millis())
				}
			}
			r.AvgMs = lat.Mean()
			r.P50Ms = lat.Percentile(50)
			r.P95Ms = lat.Percentile(95)
			r.P99Ms = lat.Percentile(99)
		}
		perTier[tn] = r
	}
	return e2e, perTier
}

// SNClone is the full set of artifacts Ditto extracts from one Social
// Network profiling run: per-tier profiles and specs plus the learned
// topology.
type SNClone struct {
	Profiles map[string]*profile.AppProfile
	Specs    map[string]*core.SynthSpec
	Plans    map[string]*core.TierPlan
	Order    []string
	Root     string
}

// CloneSN profiles every tier of a running original deployment under load
// and generates the synthetic specs (§4.2: topology from traces; per-tier
// skeleton and body from the tier profilers).
func CloneSN(spec platform.Spec, nodes, coresPer int, load Load, win Windows, seed int64) *SNClone {
	d := NewOriginalSN(spec, nodes, coresPer, seed, 0)
	profilers := map[string]*profile.Profiler{}
	for _, name := range d.original.Order {
		p := profile.NewProfiler(name)
		p.MaxDataWS = 64 << 20
		p.MaxInstrWS = 256 << 10
		p.Attach(d.original.Tier(name).Proc())
		profilers[name] = p
	}
	g := loadgen.New(loadgen.Config{
		Name: "wrk2", Machine: d.Env.Client, Target: d.Frontend.Kernel,
		Port: d.Port, Conns: load.Conns, QPS: load.QPS, Mix: load.Mix, Seed: load.Seed,
	})
	g.Start()
	d.Env.RunFor(win.Warmup + win.Measure)

	spans := d.original.Collector.Spans()
	plans := core.LearnTopology(spans)
	spanCount := map[string]int{}
	for _, s := range spans {
		spanCount[s.Service]++
	}

	clone := &SNClone{
		Profiles: map[string]*profile.AppProfile{},
		Specs:    map[string]*core.SynthSpec{},
		Plans:    plans,
		Order:    append([]string(nil), d.original.Order...),
		Root:     app.FrontendName,
	}
	for i, name := range clone.Order {
		p := profilers[name]
		if n := spanCount[name]; n > 0 {
			p.SetRequests(n)
		}
		prof := p.Finish()
		clone.Profiles[name] = prof
		clone.Specs[name] = core.Generate(prof, seed+int64(i)*31)
		if plans[name] == nil {
			plans[name] = &core.TierPlan{Service: name, Calls: map[int][]app.Call{}}
		}
	}
	d.Env.Shutdown()
	return clone
}

// synthRegistry resolves original tier names to the synthetic tiers.
type synthRegistry struct {
	tiers map[string]*app.Tier
}

func (r *synthRegistry) Lookup(name string) (*kernel.Kernel, int) {
	t := r.tiers[name]
	return t.Machine().Kernel, t.Cfg.Port
}

// NewSynthSN deploys a fully synthetic Social Network from a clone: every
// tier replaced by its Ditto-generated counterpart (Fig. 6). intra is the
// intra-cell parallelism, as in NewOriginalSN.
func NewSynthSN(clone *SNClone, spec platform.Spec, nodes, coresPer int, seed int64, intra int) *SNEnv {
	env := NewEnvW(intra, spec, platform.WithCoreCount(coresPer))
	machines := []*platform.Machine{env.Server}
	for i := 1; i < nodes; i++ {
		machines = append(machines, env.AddMachine("snode"+string(rune('0'+i)), spec,
			platform.WithCoreCount(coresPer)))
	}
	reg := &synthRegistry{tiers: map[string]*app.Tier{}}
	procs := map[string]*kernel.Proc{}
	collector := dtrace.NewCollector(1)
	for i, name := range clone.Order {
		m := machines[i%len(machines)]
		t := synth.NewTier(m, 9500+i, clone.Specs[name], clone.Plans[name], reg, seed+int64(i))
		t.Collector = collector
		reg.tiers[name] = t
		procs[name] = t.Proc()
	}
	// Start in construction order: spawn order is part of determinism.
	for _, name := range clone.Order {
		reg.tiers[name].Start()
	}
	fe := reg.tiers[clone.Root]
	return &SNEnv{Env: env, Machines: machines,
		Frontend: fe.Machine(), Port: fe.Cfg.Port,
		TierProc:  func(name string) *kernel.Proc { return procs[name] },
		Tiers:     reg.tiers,
		Order:     append([]string(nil), clone.Order...),
		Collector: collector,
	}
}
