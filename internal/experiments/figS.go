package experiments

import (
	"io"

	"ditto/internal/app"
	"ditto/internal/app/dittofs"
	"ditto/internal/core"
	"ditto/internal/dtrace"
	"ditto/internal/kernel"
	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/runner"
	"ditto/internal/synth"
)

// FigSPoint is one (backend, variant) measurement of the storage-family
// experiment: latency percentiles plus the storage-side signals — device
// bandwidth, page-cache hit rate, and fsync latency on the commit path —
// original versus clone.
type FigSPoint struct {
	Backend string
	Variant string
	P50Ms   float64
	P95Ms   float64
	P99Ms   float64

	Throughput  float64 // completed requests per second
	DiskReadBW  float64 // server-side device read bytes/s (all server machines)
	DiskWriteBW float64 // server-side device write bytes/s (all server machines)
	PCHitRate   float64 // kernel page-cache hit rate over the measure window
	FsyncMeanMs float64 // adapter-machine fsync latency (WAL commit path)
	FsyncP99Ms  float64
	FsyncRate   float64 // fsyncs per second across server machines
}

// FigSResult is the storage-backend fidelity series.
type FigSResult struct {
	Points []FigSPoint
}

// fsBackends orders the content backends of the DittoFS family.
var fsBackends = []string{"mem", "lsm", "blob"}

// fsSpec is the storage experiment's server platform: Platform A with the
// page cache shrunk far below the dataset, so content reads contend for
// pages and eviction writeback is live during the measurement.
func fsSpec() platform.Spec {
	spec := platform.A()
	spec.PageCacheMB = 64
	return spec
}

// fsLoad shapes the NFS-style load: closed loop by default (qps <= 0), so
// per-backend service time sets the pace, or an open loop at the given rate.
func fsLoad(qps float64, seed int64) Load {
	return Load{QPS: qps, Conns: 12, Mix: loadgen.FSMix(), Seed: seed}
}

// FSEnv is a deployed DittoFS (original or synthetic) with its client.
// Machines lists the server-side machines (adapter first, blob tier second
// when present) so storage-side counters can be aggregated over exactly the
// machines that serve requests.
type FSEnv struct {
	Env       *Env
	Machines  []*platform.Machine
	Frontend  *platform.Machine
	Port      int
	TierProc  func(name string) *kernel.Proc
	Order     []string
	Collector *dtrace.Collector
	Service   *dittofs.Service // nil for the synthetic deployment
}

// NewOriginalFS deploys the original DittoFS with the given content backend:
// the adapter on the environment's server machine and, for the blob backend,
// the blob-store tier on its own machine (remote disk attribution). intra is
// the intra-cell parallelism, as in NewOriginalSN.
func NewOriginalFS(backend string, spec platform.Spec, seed int64, intra int) *FSEnv {
	env := NewEnvW(intra, spec, platform.WithCoreCount(8))
	machines := []*platform.Machine{env.Server}
	var blobM *platform.Machine
	if backend == "blob" {
		blobM = env.AddMachine("blob", spec, platform.WithCoreCount(8))
		machines = append(machines, blobM)
	}
	svc := dittofs.NewService(env.Server, blobM, 9300, dittofs.DefaultConfig(backend), seed)
	collector := dtrace.NewCollector(1)
	svc.Adapter.Collector = collector
	order := []string{dittofs.AdapterName}
	tiers := map[string]*app.Tier{dittofs.AdapterName: svc.Adapter}
	if svc.Blob != nil {
		svc.Blob.Collector = collector
		order = append(order, dittofs.BlobName)
		tiers[dittofs.BlobName] = svc.Blob
	}
	svc.Start()
	return &FSEnv{Env: env, Machines: machines, Frontend: env.Server, Port: 9300,
		TierProc: func(name string) *kernel.Proc {
			if t := tiers[name]; t != nil {
				return t.Proc()
			}
			return nil
		},
		Order:     order,
		Collector: collector,
		Service:   svc,
	}
}

// MeasureFS drives the deployment with the FS mix and returns the
// storage-side fidelity point measured over the post-warmup window.
func MeasureFS(d *FSEnv, load Load, win Windows) FigSPoint {
	g := loadgen.New(loadgen.Config{
		Name: "fs-client", Machine: d.Env.Client, Target: d.Frontend.Kernel,
		Port: d.Port, Conns: load.Conns, QPS: load.QPS, Mix: load.Mix, Seed: load.Seed,
	})
	g.Start()
	d.Env.RunFor(win.Warmup)
	g.Reset()

	type kcSnap struct {
		read, write  uint64
		hits, misses uint64
		fsyncs       uint64
	}
	before := make([]kcSnap, len(d.Machines))
	for i, m := range d.Machines {
		c := m.Disk.Counters()
		h, ms := m.Kernel.PageCacheStats()
		before[i] = kcSnap{read: c.ReadBytes, write: c.WriteBytes,
			hits: h, misses: ms, fsyncs: m.Kernel.Fsyncs()}
		// Fsync latency is measured over the window only: reset the
		// recorder at the warmup edge.
		m.Kernel.FsyncLatency().Reset()
	}
	start := d.Env.Now()
	d.Env.RunFor(win.Measure)
	dur := (d.Env.Now() - start).Seconds()

	lat := g.Latency()
	pt := FigSPoint{
		P50Ms:      lat.Percentile(50),
		P95Ms:      lat.Percentile(95),
		P99Ms:      lat.Percentile(99),
		Throughput: float64(g.Received()) / dur,
	}
	var read, write, hits, misses, fsyncs uint64
	for i, m := range d.Machines {
		c := m.Disk.Counters()
		h, ms := m.Kernel.PageCacheStats()
		read += c.ReadBytes - before[i].read
		write += c.WriteBytes - before[i].write
		hits += h - before[i].hits
		misses += ms - before[i].misses
		fsyncs += m.Kernel.Fsyncs() - before[i].fsyncs
	}
	pt.DiskReadBW = float64(read) / dur
	pt.DiskWriteBW = float64(write) / dur
	if hits+misses > 0 {
		pt.PCHitRate = float64(hits) / float64(hits+misses)
	}
	pt.FsyncRate = float64(fsyncs) / dur
	// The WAL commit path fsyncs on the adapter machine — Machines[0] in
	// both deployments.
	fl := d.Machines[0].Kernel.FsyncLatency()
	pt.FsyncMeanMs = fl.Mean()
	pt.FsyncP99Ms = fl.Percentile(99)
	return pt
}

// CloneFS profiles a running original DittoFS deployment under load and
// generates the synthetic specs for every tier — the §4 pipeline applied to
// the storage family. The learned topology carries the adapter→blob edge
// for the blob backend; the profiled syscall plans carry the WAL appends,
// fsyncs, and content-store traffic.
func CloneFS(backend string, spec platform.Spec, load Load, win Windows, seed int64) *SNClone {
	d := NewOriginalFS(backend, spec, seed, 0)
	profilers := map[string]*profile.Profiler{}
	for _, name := range d.Order {
		p := profile.NewProfiler(name)
		p.MaxDataWS = 64 << 20
		p.MaxInstrWS = 256 << 10
		p.Attach(d.TierProc(name))
		profilers[name] = p
	}
	g := loadgen.New(loadgen.Config{
		Name: "fs-client", Machine: d.Env.Client, Target: d.Frontend.Kernel,
		Port: d.Port, Conns: load.Conns, QPS: load.QPS, Mix: load.Mix, Seed: load.Seed,
	})
	g.Start()
	d.Env.RunFor(win.Warmup + win.Measure)

	spans := d.Collector.Spans()
	plans := core.LearnTopology(spans)
	spanCount := map[string]int{}
	for _, s := range spans {
		spanCount[s.Service]++
	}

	clone := &SNClone{
		Profiles: map[string]*profile.AppProfile{},
		Specs:    map[string]*core.SynthSpec{},
		Plans:    plans,
		Order:    append([]string(nil), d.Order...),
		Root:     dittofs.AdapterName,
	}
	for i, name := range clone.Order {
		p := profilers[name]
		if n := spanCount[name]; n > 0 {
			p.SetRequests(n)
		}
		prof := p.Finish()
		clone.Profiles[name] = prof
		clone.Specs[name] = core.Generate(prof, seed+int64(i)*31)
		if plans[name] == nil {
			plans[name] = &core.TierPlan{Service: name, Calls: map[int][]app.Call{}}
		}
	}
	d.Env.Shutdown()
	return clone
}

// NewSynthFS deploys the synthetic DittoFS from a clone: the adapter stand-in
// on the server machine and, when the clone has a blob tier, its stand-in on
// a second machine — the same placement as the original.
func NewSynthFS(clone *SNClone, spec platform.Spec, seed int64, intra int) *FSEnv {
	env := NewEnvW(intra, spec, platform.WithCoreCount(8))
	machines := []*platform.Machine{env.Server}
	if len(clone.Order) > 1 {
		machines = append(machines, env.AddMachine("sblob", spec, platform.WithCoreCount(8)))
	}
	reg := &synthRegistry{tiers: map[string]*app.Tier{}}
	procs := map[string]*kernel.Proc{}
	collector := dtrace.NewCollector(1)
	for i, name := range clone.Order {
		m := machines[i%len(machines)]
		t := synth.NewTier(m, 9500+i, clone.Specs[name], clone.Plans[name], reg, seed+int64(i))
		t.Collector = collector
		reg.tiers[name] = t
		procs[name] = t.Proc()
	}
	// Start in construction order: spawn order is part of determinism.
	for _, name := range clone.Order {
		reg.tiers[name].Start()
	}
	fe := reg.tiers[clone.Root]
	return &FSEnv{Env: env, Machines: machines,
		Frontend: fe.Machine(), Port: fe.Cfg.Port,
		TierProc:  func(name string) *kernel.Proc { return procs[name] },
		Order:     append([]string(nil), clone.Order...),
		Collector: collector,
	}
}

// RunFigS measures clone fidelity for the storage-bound family: each DittoFS
// content backend (mem, lsm, blob) is profiled, cloned, and then original
// and clone are measured under the same NFS-style mix, comparing latency
// percentiles, device bandwidth, page-cache hit rate, and WAL-path fsync
// latency. One prep cell per backend builds the clone; each (backend,
// variant) point is an independent cell, so the report is byte-identical at
// any -parallel width. qps <= 0 runs the closed loop (the default).
func RunFigS(w io.Writer, opt Options, qps float64) FigSResult {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}

	p := runner.NewPlan()
	clones := make([]*SNClone, len(fsBackends))
	for i, b := range fsBackends {
		i, b := i, b
		p.AddPrep(runner.Key("figS", b, "clone"), func(io.Writer) (any, error) {
			clones[i] = CloneFS(b, fsSpec(), fsLoad(qps, opt.Seed), opt.Windows, opt.Seed+17)
			return nil, nil
		})
	}
	p.Barrier()
	runner.Grid2(p, fsBackends, fig5Variants,
		func(b, v string) string { return runner.Key("figS", b, v) },
		func(b, v string, cw io.Writer) (any, error) {
			var d *FSEnv
			if v == "actual" {
				d = NewOriginalFS(b, fsSpec(), opt.Seed+17, opt.IntraParallel)
			} else {
				var clone *SNClone
				for i := range fsBackends {
					if fsBackends[i] == b {
						clone = clones[i]
					}
				}
				d = NewSynthFS(clone, fsSpec(), opt.Seed+18, opt.IntraParallel)
			}
			pt := MeasureFS(d, fsLoad(qps, opt.Seed), opt.Windows)
			pt.Backend, pt.Variant = b, v
			d.Env.Shutdown()
			if !opt.Quiet {
				row(cw, "figS: %-4s %-9s p50=%.3f p95=%.3f p99=%.3f thr=%.0f diskR=%.2fMB/s diskW=%.2fMB/s pc-hit=%.3f fsync=%.4f/%.4fms rate=%.0f/s",
					pt.Backend, pt.Variant, pt.P50Ms, pt.P95Ms, pt.P99Ms,
					pt.Throughput, pt.DiskReadBW/1e6, pt.DiskWriteBW/1e6,
					pt.PCHitRate, pt.FsyncMeanMs, pt.FsyncP99Ms, pt.FsyncRate)
			}
			return pt, nil
		})

	var res FigSResult
	results := runPlan(w, p, opt, "figS: backend variant p50 p95 p99 thr diskR diskW pc-hit fsync-mean/p99 fsync-rate")
	if results == nil {
		return res
	}
	for _, r := range results {
		if pt, ok := r.Value.(FigSPoint); ok {
			res.Points = append(res.Points, pt)
		}
	}
	return res
}
