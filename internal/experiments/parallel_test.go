package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"ditto/internal/sim"
)

// TestFigureOutputIdenticalAcrossPoolWidths is the tentpole determinism
// guarantee: a figure produces byte-identical output and identical results at
// -parallel 1 and -parallel 8. Every cell owns its engine and all mutable
// state, and the runner flushes buffered cell output in plan order, so pool
// width must be unobservable.
func TestFigureOutputIdenticalAcrossPoolWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	run := func(parallel int) ([]byte, Fig6Result) {
		opt := Options{
			Windows:   Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
			TuneIters: 0,
			Seed:      3,
			Parallel:  parallel,
		}
		var buf bytes.Buffer
		res := RunFig6(&buf, opt, []float64{150, 400})
		return buf.Bytes(), res
	}
	outSerial, resSerial := run(1)
	outWide, resWide := run(8)
	if len(resSerial.Points) == 0 {
		t.Fatal("serial run produced no points")
	}
	if !bytes.Equal(outSerial, outWide) {
		t.Fatalf("output differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			outSerial, outWide)
	}
	if !reflect.DeepEqual(resSerial, resWide) {
		t.Fatalf("results differ between pool widths:\n%+v\nvs\n%+v", resSerial, resWide)
	}
}

// TestFigFOutputIdenticalAcrossPoolWidths extends the determinism guarantee
// to the fault-injection figure: chaos-plane events (crashes, partitions,
// seeded packet loss, CPU throttling) and the resilience layer's retries,
// hedges, and breaker trips must replay byte-identically at any pool width.
func TestFigFOutputIdenticalAcrossPoolWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	run := func(parallel int) ([]byte, FigFResult) {
		opt := Options{
			Windows:   Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
			TuneIters: 0,
			Seed:      3,
			Parallel:  parallel,
		}
		var buf bytes.Buffer
		res := RunFigF(&buf, opt, 600)
		return buf.Bytes(), res
	}
	outSerial, resSerial := run(1)
	outWide, resWide := run(8)
	if len(resSerial.Points) < 12 {
		t.Fatalf("serial run produced %d points, want >= 12 (6+ scenarios x 2 variants)",
			len(resSerial.Points))
	}
	if !bytes.Equal(outSerial, outWide) {
		t.Fatalf("figF output differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			outSerial, outWide)
	}
	if !reflect.DeepEqual(resSerial, resWide) {
		t.Fatalf("figF results differ between pool widths:\n%+v\nvs\n%+v", resSerial, resWide)
	}
	faulted := 0
	for _, pt := range resSerial.Points {
		if pt.Scenario != "baseline" && (pt.ErrRate > 0 || pt.Dropped > 0 || pt.P99Ms > 0) {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no fault scenario produced any observable effect")
	}
}
