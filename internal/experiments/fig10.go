package experiments

import (
	"io"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/interfere"
	"ditto/internal/platform"
	"ditto/internal/runner"
	"ditto/internal/synth"
)

// Fig10Row is one interference scenario's measurement for NGINX (Fig. 10):
// IPC, p99 latency and per-level cache miss rates, actual vs synthetic.
type Fig10Row struct {
	Scenario string
	Variant  string
	IPC      float64
	P99Ms    float64
	L1iMiss  float64
	L1dMiss  float64
	L2Miss   float64
	LLCMiss  float64
}

// Fig10Result is the interference study.
type Fig10Result struct {
	Rows []Fig10Row
}

// fig10Scenario describes one stressor configuration.
type fig10Scenario struct {
	name string
	opts []platform.Option // platform knobs (HT-sibling stressors)
	llc  bool              // co-located LLC hammer (iBench)
	net  bool              // competing network flow (iperf3)
}

// RunFig10 reproduces Fig. 10: NGINX under hyperthread, L1d, L2, LLC and
// network-bandwidth interference, original vs its clone. The clone is
// produced from an interference-free profile — the paper's point is that it
// inherits interference sensitivity without being profiled under it. One
// prep cell clones NGINX; each scenario × variant is an independent cell.
func RunFig10(w io.Writer, opt Options) Fig10Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	c := appCases(opt.Seed)[1] // nginx

	scenarios := []fig10Scenario{
		{name: "orig"},
		{name: "HT", opts: []platform.Option{platform.WithSMTFactor(0.5)}},
		{name: "L1d", opts: []platform.Option{platform.WithSMTFactor(0.8),
			platform.WithPrivateCacheScale(0.5, 1)}},
		{name: "L2", opts: []platform.Option{platform.WithSMTFactor(0.8),
			platform.WithPrivateCacheScale(1, 0.5)}},
		{name: "LLC", llc: true},
		{name: "Net", net: true},
	}

	p := runner.NewPlan()
	var (
		load Load
		spec *core.SynthSpec
	)
	p.AddPrep(runner.Key("fig10", "clone"), func(io.Writer) (any, error) {
		capacity := probeCapacity(c, opt.Windows, opt.Seed, opt.Sampled)
		load = Load{QPS: 0.5 * capacity, Conns: 16, Seed: opt.Seed}
		_, spec = cloneApp(c.build, load, opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+71, opt.Sampled)
		return nil, nil
	})
	p.Barrier()

	runner.Grid2(p, scenarios, fig5Variants,
		func(sc fig10Scenario, v string) string { return runner.Key("fig10", sc.name, v) },
		func(sc fig10Scenario, v string, cw io.Writer) (any, error) {
			opts := append([]platform.Option{platform.WithCoreCount(6)}, sc.opts...)
			env := NewEnvW(opt.IntraParallel, platform.A(), opts...)
			if opt.Sampled {
				// The rotating executed sample still sees the stressors'
				// cache pollution, so the drawn distribution tracks the
				// interfered regime.
				env.EnableSampling(load.Seed)
			}
			var a app.App
			if v == "actual" {
				a = c.build(env.Server)
			} else {
				a = synth.NewServer(env.Server, c.port, spec, opt.Seed+73)
			}
			a.Start()
			if sc.llc {
				interfere.StartLLCStressor(env.Server, 4, platform.A().LLCKB<<10)
			}
			if sc.net {
				interfere.StartNetStressor(env.Server, env.Client, 5201, 1<<20)
			}
			r := Measure(env, a, load, opt.Windows)
			env.Shutdown()
			fr := Fig10Row{Scenario: sc.name, Variant: v,
				IPC: r.Metrics.IPC, P99Ms: r.P99Ms,
				L1iMiss: r.Metrics.L1iMiss, L1dMiss: r.Metrics.L1dMiss,
				L2Miss: r.Metrics.L2Miss, LLCMiss: r.Metrics.L3Miss}
			if !opt.Quiet {
				row(cw, "fig10: %-5s %-9s ipc=%.3f p99=%.3f l1i=%.4f l1d=%.4f l2=%.4f llc=%.4f",
					fr.Scenario, fr.Variant, fr.IPC, fr.P99Ms, fr.L1iMiss, fr.L1dMiss,
					fr.L2Miss, fr.LLCMiss)
			}
			return fr, nil
		})

	var res Fig10Result
	results := runPlan(w, p, opt, "fig10: scenario variant ipc p99 l1i l1d l2 llc")
	if results == nil {
		return res
	}
	for _, r := range results {
		if fr, ok := r.Value.(Fig10Row); ok {
			res.Rows = append(res.Rows, fr)
		}
	}
	return res
}
