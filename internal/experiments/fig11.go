package experiments

import (
	"io"

	"ditto/internal/app"
	"ditto/internal/platform"
	"ditto/internal/synth"
)

// Fig11Cell is one (cores, frequency) cell of the power-management heatmap:
// p99 latency and whether the 1ms QoS holds.
type Fig11Cell struct {
	Cores   int
	FreqGHz float64
	Variant string
	P99Ms   float64
	MeetQoS bool
}

// Fig11Result is the Fig. 11 heatmap for actual and synthetic Memcached.
type Fig11Result struct {
	QoSMs float64
	QPS   float64
	Cells []Fig11Cell
}

// RunFig11 reproduces Fig. 11: p99 latency of Memcached (deployed with a
// 16-worker pool so core scaling matters) across core counts and CPU
// frequencies, with a 1ms QoS, actual vs synthetic.
func RunFig11(w io.Writer, opt Options, cores []int, freqs []float64) Fig11Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	if len(cores) == 0 {
		cores = []int{4, 6, 8, 10, 12, 14, 16}
	}
	if len(freqs) == 0 {
		freqs = []float64{1.1, 1.3, 1.5, 1.7, 1.9, 2.1}
	}
	const qosMs = 1.0

	build := func(m *platform.Machine) app.App {
		return app.NewMemcachedN(m, 11211, 16, opt.Seed+81)
	}
	// Capacity at the best configuration sets the fixed offered load.
	envP := NewEnv(platform.A(), platform.WithCoreCount(16), platform.WithFreqGHz(2.1))
	a := build(envP.Server)
	a.Start()
	capRes := Measure(envP, a, Load{Conns: 32, Seed: opt.Seed}, opt.Windows)
	envP.Shutdown()
	qps := capRes.Throughput * 0.45

	load := Load{QPS: qps, Conns: 16, Seed: opt.Seed}
	_, spec := Clone(build, load, opt.Windows, 128<<20, opt.TuneIters, opt.Seed+83)

	header(w, opt, "fig11: cores freq variant p99 meetsQoS (QoS=1ms)")
	res := Fig11Result{QoSMs: qosMs, QPS: qps}
	for _, nc := range cores {
		for _, f := range freqs {
			for _, variant := range []string{"actual", "synthetic"} {
				env := NewEnv(platform.A(), platform.WithCoreCount(nc), platform.WithFreqGHz(f))
				var srv app.App
				if variant == "actual" {
					srv = build(env.Server)
				} else {
					srv = synth.NewServer(env.Server, 11211, spec, opt.Seed+85)
				}
				srv.Start()
				r := Measure(env, srv, load, opt.Windows)
				env.Shutdown()
				cell := Fig11Cell{Cores: nc, FreqGHz: f, Variant: variant,
					P99Ms: r.P99Ms, MeetQoS: r.P99Ms <= qosMs && r.P99Ms > 0}
				res.Cells = append(res.Cells, cell)
				if !opt.Quiet {
					mark := "ok"
					if !cell.MeetQoS {
						mark = "X"
					}
					row(w, "fig11: cores=%-2d freq=%.1f %-9s p99=%.3f %s",
						cell.Cores, cell.FreqGHz, cell.Variant, cell.P99Ms, mark)
				}
			}
		}
	}
	return res
}
