package experiments

import (
	"fmt"
	"io"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/platform"
	"ditto/internal/runner"
	"ditto/internal/synth"
)

// Fig11Cell is one (cores, frequency) cell of the power-management heatmap:
// p99 latency and whether the 1ms QoS holds.
type Fig11Cell struct {
	Cores   int
	FreqGHz float64
	Variant string
	P99Ms   float64
	MeetQoS bool
}

// Fig11Result is the Fig. 11 heatmap for actual and synthetic Memcached.
type Fig11Result struct {
	QoSMs float64
	QPS   float64
	Cells []Fig11Cell
}

// RunFig11 reproduces Fig. 11: p99 latency of Memcached (deployed with a
// 16-worker pool so core scaling matters) across core counts and CPU
// frequencies, with a 1ms QoS, actual vs synthetic. The heatmap is the
// repository's widest plan — every (cores, freq, variant) point is an
// independent cell, so it scales across all available host cores.
func RunFig11(w io.Writer, opt Options, cores []int, freqs []float64) Fig11Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	if len(cores) == 0 {
		cores = []int{4, 6, 8, 10, 12, 14, 16}
	}
	if len(freqs) == 0 {
		freqs = []float64{1.1, 1.3, 1.5, 1.7, 1.9, 2.1}
	}
	const qosMs = 1.0

	build := func(m *platform.Machine) app.App {
		return app.NewMemcachedN(m, 11211, 16, opt.Seed+81)
	}

	p := runner.NewPlan()
	var (
		qps  float64
		spec *core.SynthSpec
	)
	p.AddPrep(runner.Key("fig11", "clone"), func(io.Writer) (any, error) {
		// Capacity at the best configuration sets the fixed offered load.
		capRes := measureApp(platform.A(),
			[]platform.Option{platform.WithCoreCount(16), platform.WithFreqGHz(2.1)},
			build, Load{Conns: 32, Seed: opt.Seed}, opt.Windows, opt.IntraParallel, opt.Sampled)
		qps = capRes.Throughput * 0.45
		_, spec = cloneApp(build, Load{QPS: qps, Conns: 16, Seed: opt.Seed},
			opt.Windows, 128<<20, opt.TuneIters, opt.Seed+83, opt.Sampled)
		return nil, nil
	})
	p.Barrier()

	runner.Grid3(p, cores, freqs, fig5Variants,
		func(nc int, f float64, v string) string {
			return runner.Key("fig11", fmt.Sprintf("c%d", nc), fmt.Sprintf("f%.1f", f), v)
		},
		func(nc int, f float64, v string, cw io.Writer) (any, error) {
			b := build
			if v == "synthetic" {
				b = func(m *platform.Machine) app.App {
					return synth.NewServer(m, 11211, spec, opt.Seed+85)
				}
			}
			r := measureApp(platform.A(),
				[]platform.Option{platform.WithCoreCount(nc), platform.WithFreqGHz(f)},
				b, Load{QPS: qps, Conns: 16, Seed: opt.Seed}, opt.Windows, opt.IntraParallel, opt.Sampled)
			cell := Fig11Cell{Cores: nc, FreqGHz: f, Variant: v,
				P99Ms: r.P99Ms, MeetQoS: r.P99Ms <= qosMs && r.P99Ms > 0}
			if !opt.Quiet {
				mark := "ok"
				if !cell.MeetQoS {
					mark = "X"
				}
				row(cw, "fig11: cores=%-2d freq=%.1f %-9s p99=%.3f %s",
					cell.Cores, cell.FreqGHz, cell.Variant, cell.P99Ms, mark)
			}
			return cell, nil
		})

	res := Fig11Result{QoSMs: qosMs}
	results := runPlan(w, p, opt, "fig11: cores freq variant p99 meetsQoS (QoS=1ms)")
	if results == nil {
		return res
	}
	res.QPS = qps
	for _, r := range results {
		if cell, ok := r.Value.(Fig11Cell); ok {
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}
