package experiments

import (
	"io"

	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/synth"
)

// Fig7Row is one (app, platform, variant) measurement of the
// cross-platform validation: profiles are collected on Platform A only and
// the same synthetic binary runs unmodified on B and C, as §6.2.2 requires.
type Fig7Row struct {
	App      string
	Platform string
	Variant  string
	Metrics  profile.TargetMetrics
	NetBW    float64
	DiskBW   float64
	AvgMs    float64
	P99Ms    float64
}

// Fig7Result is the Fig. 7 table.
type Fig7Result struct {
	Rows []Fig7Row
}

// fig7CoreCount picks a comparable core allocation per platform.
func fig7CoreCount(spec platform.Spec) int {
	if spec.Cores < 8 {
		return spec.Cores
	}
	return 8
}

// RunFig7 reproduces Fig. 7: each app is cloned from a Platform A profile,
// then original and synthetic run side by side on Platforms A, B and C
// without reprofiling.
func RunFig7(w io.Writer, opt Options) Fig7Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	header(w, opt, "fig7: app platform variant ipc branchmiss l1i l1d l2 llc netBW diskBW avg p99")
	platforms := []platform.Spec{platform.A(), platform.B(), platform.C()}

	var res Fig7Result
	for _, c := range appCases(opt.Seed) {
		if len(opt.Apps) > 0 && !contains(opt.Apps, c.name) {
			continue
		}
		capacity := 0.0
		if c.open {
			capacity = probeCapacity(c, opt.Windows, opt.Seed)
		}
		med := mediumOf(loadLevels(c, capacity, opt.Seed))
		_, spec := Clone(c.build, med, opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+23)

		for _, plat := range platforms {
			cores := fig7CoreCount(plat)
			load := med
			if c.open {
				// Keep offered load sustainable on the weakest platform.
				load.QPS = capacity * 0.3
			}

			envO := NewEnv(plat, platform.WithCoreCount(cores))
			orig := c.build(envO.Server)
			orig.Start()
			ro := Measure(envO, orig, load, opt.Windows)
			envO.Shutdown()

			envS := NewEnv(plat, platform.WithCoreCount(cores))
			sv := synth.NewServer(envS.Server, c.port, spec, opt.Seed+29)
			sv.Start()
			rs := Measure(envS, sv, load, opt.Windows)
			envS.Shutdown()

			for _, pair := range []struct {
				variant string
				r       Result
			}{{"actual", ro}, {"synthetic", rs}} {
				fr := Fig7Row{App: c.name, Platform: plat.Name, Variant: pair.variant,
					Metrics: pair.r.Metrics, NetBW: pair.r.NetBW, DiskBW: pair.r.DiskBW,
					AvgMs: pair.r.AvgMs, P99Ms: pair.r.P99Ms}
				res.Rows = append(res.Rows, fr)
				emitFig7(w, opt, fr)
			}
		}
	}
	if opt.IncludeSocial {
		res.Rows = append(res.Rows, fig7SocialRows(w, opt)...)
	}
	return res
}

// fig7SocialRows runs the TextService / SocialGraphService columns: cloned
// on Platform A (two nodes), then both deployments re-run on the
// small-scale Platform C where every tier is colocated on one four-core
// box — the configuration the paper highlights for its high LLC
// interference.
func fig7SocialRows(w io.Writer, opt Options) []Fig7Row {
	tiers := []string{"text-service", "social-graph-service"}
	load := Load{QPS: 300, Conns: 12, Mix: SNMix(), Seed: opt.Seed}
	snWin := socialWindows(opt.Windows)
	clone := CloneSN(platform.A(), 2, 8, load, snWin, opt.Seed+53)

	var rows []Fig7Row
	deploy := []struct {
		spec  platform.Spec
		nodes int
		cores int
	}{
		{platform.A(), 2, 8},
		{platform.C(), 1, 4},
	}
	for _, d := range deploy {
		dO := NewOriginalSN(d.spec, d.nodes, d.cores, opt.Seed+53)
		_, perO := MeasureSN(dO, load, snWin, tiers)
		dO.Env.Shutdown()
		dS := NewSynthSN(clone, d.spec, d.nodes, d.cores, opt.Seed+54)
		_, perS := MeasureSN(dS, load, snWin, tiers)
		dS.Env.Shutdown()
		for _, tn := range tiers {
			for _, pair := range []struct {
				variant string
				r       Result
			}{{"actual", perO[tn]}, {"synthetic", perS[tn]}} {
				fr := Fig7Row{App: tn, Platform: d.spec.Name, Variant: pair.variant,
					Metrics: pair.r.Metrics, NetBW: pair.r.NetBW, DiskBW: pair.r.DiskBW}
				rows = append(rows, fr)
				emitFig7(w, opt, fr)
			}
		}
	}
	return rows
}

func emitFig7(w io.Writer, opt Options, fr Fig7Row) {
	if opt.Quiet {
		return
	}
	row(w, "fig7: %-20s %-2s %-9s ipc=%.3f br=%.4f l1i=%.4f l1d=%.4f l2=%.4f llc=%.4f net=%.3e disk=%.3e avg=%.3f p99=%.3f",
		fr.App, fr.Platform, fr.Variant, fr.Metrics.IPC, fr.Metrics.BranchMiss,
		fr.Metrics.L1iMiss, fr.Metrics.L1dMiss, fr.Metrics.L2Miss,
		fr.Metrics.L3Miss, fr.NetBW, fr.DiskBW, fr.AvgMs, fr.P99Ms)
}
