package experiments

import (
	"io"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/platform"
	"ditto/internal/profile"
	"ditto/internal/runner"
	"ditto/internal/synth"
)

// Fig7Row is one (app, platform, variant) measurement of the
// cross-platform validation: profiles are collected on Platform A only and
// the same synthetic binary runs unmodified on B and C, as §6.2.2 requires.
type Fig7Row struct {
	App      string
	Platform string
	Variant  string
	Metrics  profile.TargetMetrics
	NetBW    float64
	DiskBW   float64
	AvgMs    float64
	P99Ms    float64
}

// Fig7Result is the Fig. 7 table.
type Fig7Result struct {
	Rows []Fig7Row
}

// fig7CoreCount picks a comparable core allocation per platform.
func fig7CoreCount(spec platform.Spec) int {
	if spec.Cores < 8 {
		return spec.Cores
	}
	return 8
}

// RunFig7 reproduces Fig. 7: each app is cloned from a Platform A profile,
// then original and synthetic run side by side on Platforms A, B and C
// without reprofiling. Prep cells clone per app; each (platform, variant)
// pair is an independent measurement cell.
func RunFig7(w io.Writer, opt Options) Fig7Result {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	platforms := []platform.Spec{platform.A(), platform.B(), platform.C()}
	apps := filteredAppCases(opt)

	type fig7Prep struct {
		clonePrep
		spec *core.SynthSpec
	}
	p := runner.NewPlan()
	preps := map[string]*fig7Prep{}
	for _, c := range apps {
		c := c
		pr := &fig7Prep{}
		preps[c.name] = pr
		p.AddPrep(runner.Key("fig7", c.name, "clone"), func(io.Writer) (any, error) {
			pr.clonePrep = prepLevels(c, opt)
			_, pr.spec = cloneApp(c.build, mediumOf(pr.levels), opt.Windows, c.maxDWS, opt.TuneIters, opt.Seed+23, opt.Sampled)
			return nil, nil
		})
	}
	var snClone *SNClone
	snLoad := Load{QPS: 300, Conns: 12, Mix: SNMix(), Seed: opt.Seed}
	snWin := socialWindows(opt.Windows)
	if opt.IncludeSocial {
		p.AddPrep(runner.Key("fig7", "social", "clone"), func(io.Writer) (any, error) {
			snClone = CloneSN(platform.A(), 2, 8, snLoad, snWin, opt.Seed+53)
			return nil, nil
		})
	}
	p.Barrier()

	for _, c := range apps {
		c := c
		pr := preps[c.name]
		runner.Grid2(p, platforms, fig5Variants,
			func(plat platform.Spec, v string) string {
				return runner.Key("fig7", c.name, plat.Name, v)
			},
			func(plat platform.Spec, v string, cw io.Writer) (any, error) {
				load := mediumOf(pr.levels)
				if c.open {
					// Keep offered load sustainable on the weakest platform.
					load.QPS = pr.capacity * 0.3
				}
				build := c.build
				if v == "synthetic" {
					build = func(m *platform.Machine) app.App {
						return synth.NewServer(m, c.port, pr.spec, opt.Seed+29)
					}
				}
				r := measureApp(plat, []platform.Option{platform.WithCoreCount(fig7CoreCount(plat))},
					build, load, opt.Windows, opt.IntraParallel, opt.Sampled)
				fr := Fig7Row{App: c.name, Platform: plat.Name, Variant: v,
					Metrics: r.Metrics, NetBW: r.NetBW, DiskBW: r.DiskBW,
					AvgMs: r.AvgMs, P99Ms: r.P99Ms}
				emitFig7(cw, opt, fr)
				return fr, nil
			})
	}

	// The two Social Network deployments the paper highlights: the two-node
	// Platform A reference and the small-scale Platform C where every tier
	// is colocated on one four-core box (high LLC interference).
	snDeploys := []struct {
		spec  platform.Spec
		nodes int
		cores int
	}{
		{platform.A(), 2, 8},
		{platform.C(), 1, 4},
	}
	if opt.IncludeSocial {
		for _, d := range snDeploys {
			d := d
			for _, v := range fig5Variants {
				v := v
				p.Add(runner.Key("fig7", "social", d.spec.Name, v), func(cw io.Writer) (any, error) {
					var dep *SNEnv
					if v == "actual" {
						dep = NewOriginalSN(d.spec, d.nodes, d.cores, opt.Seed+53, opt.IntraParallel)
					} else {
						dep = NewSynthSN(snClone, d.spec, d.nodes, d.cores, opt.Seed+54, opt.IntraParallel)
					}
					if opt.Sampled {
						dep.Env.EnableSampling(snLoad.Seed)
					}
					_, per := MeasureSN(dep, snLoad, snWin, fig5SocialTiers)
					dep.Env.Shutdown()
					rows := make([]Fig7Row, 0, len(fig5SocialTiers))
					for _, tn := range fig5SocialTiers {
						r := per[tn]
						fr := Fig7Row{App: tn, Platform: d.spec.Name, Variant: v,
							Metrics: r.Metrics, NetBW: r.NetBW, DiskBW: r.DiskBW}
						rows = append(rows, fr)
						emitFig7(cw, opt, fr)
					}
					return rows, nil
				})
			}
		}
	}

	var res Fig7Result
	results := runPlan(w, p, opt,
		"fig7: app platform variant ipc branchmiss l1i l1d l2 llc netBW diskBW avg p99")
	if results == nil {
		return res
	}
	for _, r := range results {
		switch v := r.Value.(type) {
		case Fig7Row:
			res.Rows = append(res.Rows, v)
		case []Fig7Row:
			res.Rows = append(res.Rows, v...)
		}
	}
	return res
}

func emitFig7(w io.Writer, opt Options, fr Fig7Row) {
	if opt.Quiet {
		return
	}
	row(w, "fig7: %-20s %-2s %-9s ipc=%.3f br=%.4f l1i=%.4f l1d=%.4f l2=%.4f llc=%.4f net=%.3e disk=%.3e avg=%.3f p99=%.3f",
		fr.App, fr.Platform, fr.Variant, fr.Metrics.IPC, fr.Metrics.BranchMiss,
		fr.Metrics.L1iMiss, fr.Metrics.L1dMiss, fr.Metrics.L2Miss,
		fr.Metrics.L3Miss, fr.NetBW, fr.DiskBW, fr.AvgMs, fr.P99Ms)
}
