package experiments

import (
	"io"

	"ditto/internal/runner"
)

// This file is the glue between the figure runners and internal/runner.
// Every figure builds a Plan: prep cells (capacity probes, profiling and
// cloning pipelines) in the first stage, measurement cells after a barrier.
// Cells only read Options values and prep results frozen by the barrier, and
// every environment is built inside the cell that measures it, so cells are
// independent and the figure's rows and byte output are identical at any
// -parallel width.

// runPlan applies the option's cell filter, executes the plan and reports
// failed cells on w. It returns the per-cell results in plan order, or nil
// when the filter left nothing to run (callers then skip the figure
// entirely, header included).
func runPlan(w io.Writer, p *runner.Plan, opt Options, head string) []runner.CellResult {
	if opt.CellFilter != nil && p.Filter(opt.CellFilter) == 0 {
		return nil
	}
	header(w, opt, head)
	par := opt.Parallel
	if opt.IntraParallel > 1 {
		// Each cell now spins up to IntraParallel shard workers of its own;
		// shrink the cell pool so the total thread budget stays roughly at
		// the requested -parallel width.
		par = runner.EffectiveWidth(opt.Parallel) / opt.IntraParallel
		if par < 1 {
			par = 1
		}
	}
	results := runner.Run(w, p, runner.Options{Parallel: par, Progress: opt.Progress})
	for _, r := range results {
		if r.Err != nil {
			row(w, "# cell %s failed: %v", r.Name, r.Err)
		}
	}
	return results
}

// resultMap indexes cell values by cell name. Skipped and failed cells are
// absent, so collectors naturally drop their rows.
func resultMap(results []runner.CellResult) map[string]any {
	m := make(map[string]any, len(results))
	for _, r := range results {
		if !r.Skipped && r.Err == nil {
			m[r.Name] = r.Value
		}
	}
	return m
}

// filteredAppCases applies the Options.Apps filter to the standard four
// single-tier applications.
func filteredAppCases(opt Options) []appCase {
	var out []appCase
	for _, c := range appCases(opt.Seed) {
		if len(opt.Apps) > 0 && !contains(opt.Apps, c.name) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// snNodes resolves the social-network machine count.
func snNodes(opt Options) int {
	if opt.SocialNodes > 0 {
		return opt.SocialNodes
	}
	return 2
}

// clonePrep is what a per-app prep cell produces: the probed capacity, the
// derived load levels, and the fine-tuned synthetic spec cloned at medium
// load. Measurement cells after the barrier read it read-only.
type clonePrep struct {
	capacity float64
	levels   []LoadLevel
}

// prepLevels probes capacity (open-loop apps only) and derives the
// low/medium/high loads.
func prepLevels(c appCase, opt Options) clonePrep {
	pr := clonePrep{}
	if c.open {
		pr.capacity = probeCapacity(c, opt.Windows, opt.Seed, opt.Sampled)
	}
	pr.levels = loadLevels(c, pr.capacity, opt.Seed)
	return pr
}
