package experiments

import (
	"io"

	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// PhaseScan reproduces the §7.3 check: sample an application's IPC over
// consecutive sub-windows under steady load and quantify phase behaviour as
// the coefficient of variation. The paper reports no regular program phases
// at second-level granularity for these services; the same holds here at
// sub-window granularity because thousands of concurrent requests average
// any per-request phases out.
type PhaseScan struct {
	Samples []float64 // per-sub-window IPC
	Mean    float64
	CoV     float64 // stddev / mean
}

// RunPhaseScan measures an app's IPC time series: windows sub-windows of
// the given width each, after warmup.
func RunPhaseScan(w io.Writer, opt Options, build AppBuilder, load Load, windows int) PhaseScan {
	if opt.Windows.Measure == 0 {
		opt.Windows = DefaultWindows()
	}
	if windows <= 0 {
		windows = 10
	}
	env := NewEnv(platform.A(), platform.WithCoreCount(8))
	a := build(env.Server)
	a.Start()
	g := loadgen.New(loadgen.Config{Name: "lg", Machine: env.Client,
		Target: env.Server.Kernel, Port: a.Port(), Conns: load.Conns,
		QPS: load.QPS, Mix: load.Mix, Seed: load.Seed})
	g.Start()
	env.Eng.RunFor(opt.Windows.Warmup)

	var scan PhaseScan
	var agg stats.Running
	prev := a.Proc().Counters
	for i := 0; i < windows; i++ {
		env.Eng.RunFor(opt.Windows.Measure / sim.Time(windows))
		now := a.Proc().Counters
		d := deltaCounters(now, prev)
		prev = now
		ipc := d.IPC()
		scan.Samples = append(scan.Samples, ipc)
		agg.Add(ipc)
	}
	env.Shutdown()
	scan.Mean = agg.Mean()
	if scan.Mean > 0 {
		scan.CoV = agg.StdDev() / scan.Mean
	}
	if !opt.Quiet {
		row(w, "phases: app=%s mean-ipc=%.3f cov=%.3f samples=%d",
			a.Name(), scan.Mean, scan.CoV, len(scan.Samples))
	}
	return scan
}
