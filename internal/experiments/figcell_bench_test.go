package experiments

import (
	"io"
	"testing"

	"ditto/internal/sim"
)

// BenchmarkFig8Cell is the end-to-end hot-path benchmark: one fig8 nginx
// figure cell at quick windows — the same cell the dittobench -bench-json
// artifact freezes as figure_cell. It exercises the whole stack: kernel,
// stream caches, decoded traces, cache hierarchies and the reporting layer.
func BenchmarkFig8Cell(b *testing.B) {
	opt := Options{
		Windows:   Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond},
		TuneIters: 0,
		Quiet:     true,
		Apps:      []string{"nginx"},
		Seed:      1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunFig8(io.Discard, opt)
	}
}
