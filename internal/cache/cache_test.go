package cache

import (
	"testing"
	"testing/quick"
)

func seqTrace(lines int, passes int) []uint64 {
	t := make([]uint64, 0, lines*passes)
	for p := 0; p < passes; p++ {
		for l := 0; l < lines; l++ {
			t = append(t, uint64(l)*LineBytes)
		}
	}
	return t
}

func runTrace(c *Cache, trace []uint64) (hits int) {
	for _, a := range trace {
		if c.Access(a) {
			hits++
		}
	}
	return hits
}

func TestBasicHitMiss(t *testing.T) {
	c := New(Config{Name: "t", Size: 1024, Assoc: 2, Policy: LRU})
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(63) {
		t.Fatal("same-line access should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 1 set: 128 bytes.
	c := New(Config{Name: "t", Size: 128, Assoc: 2, Policy: LRU})
	c.Access(0 * LineBytes)
	c.Access(1 * LineBytes)
	c.Access(0 * LineBytes) // line 0 now MRU
	c.Access(2 * LineBytes) // evicts line 1
	if !c.Contains(0 * LineBytes) {
		t.Fatal("line 0 should survive (MRU)")
	}
	if c.Contains(1 * LineBytes) {
		t.Fatal("line 1 should have been evicted (LRU)")
	}
}

func TestPLRUBehavesLikeACache(t *testing.T) {
	c := New(Config{Name: "t", Size: 8 * LineBytes, Assoc: 8, Policy: PLRU})
	// Fill all 8 ways of the single set.
	for l := 0; l < 8; l++ {
		if c.Access(uint64(l) * LineBytes) {
			t.Fatal("cold fill should miss")
		}
	}
	for l := 0; l < 8; l++ {
		if !c.Access(uint64(l) * LineBytes) {
			t.Fatalf("line %d should hit after fill", l)
		}
	}
	// Insert a 9th line: exactly one resident line must be displaced.
	c.Access(8 * LineBytes)
	resident := 0
	for l := 0; l <= 8; l++ {
		if c.Contains(uint64(l) * LineBytes) {
			resident++
		}
	}
	if resident != 8 {
		t.Fatalf("resident = %d, want 8", resident)
	}
}

func TestPLRUVictimNotMRU(t *testing.T) {
	c := New(Config{Name: "t", Size: 4 * LineBytes, Assoc: 4, Policy: PLRU})
	for l := 0; l < 4; l++ {
		c.Access(uint64(l) * LineBytes)
	}
	c.Access(3 * LineBytes) // touch: way for line 3 is protected
	c.Access(4 * LineBytes) // evicts someone, must not be line 3
	if !c.Contains(3 * LineBytes) {
		t.Fatal("PLRU evicted the most recently used line")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Name: "t", Size: 1024, Assoc: 4, Policy: LRU})
	c.Access(0)
	c.Invalidate(0)
	if c.Contains(0) {
		t.Fatal("invalidated line still resident")
	}
	if c.Access(0) {
		t.Fatal("access after invalidate should miss")
	}
	c.Invalidate(999999 * LineBytes) // absent line: no-op
}

func TestFlush(t *testing.T) {
	c := New(Config{Name: "t", Size: 1024, Assoc: 4, Policy: LRU, Prefetch: true})
	for l := 0; l < 8; l++ {
		c.Access(uint64(l) * LineBytes)
	}
	c.Flush()
	for l := 0; l < 8; l++ {
		if c.Contains(uint64(l) * LineBytes) {
			t.Fatal("line survived flush")
		}
	}
}

func TestPrefetchNextLine(t *testing.T) {
	mk := func() (*Hierarchy, *Cache, *Cache) {
		l1 := New(Config{Name: "l1", Size: 4096, Assoc: 8, Latency: 4, Policy: LRU, Prefetch: true})
		l2 := New(Config{Name: "l2", Size: 64 << 10, Assoc: 8, Latency: 12, Policy: LRU})
		return &Hierarchy{Caches: [3]*Cache{l1, l2, nil}, MemLatency: 200}, l1, l2
	}
	h, l1, l2 := mk()
	h.Access(0 * LineBytes)
	h.Access(1 * LineBytes) // sequential: prefetches line 2 through all levels
	if !l1.Contains(2*LineBytes) || !l2.Contains(2*LineBytes) {
		t.Fatal("prefetch must fetch through the whole hierarchy")
	}
	if r := h.Access(2 * LineBytes); r.Served != L1 {
		t.Fatalf("prefetched line should hit L1: %+v", r)
	}
	// Random jump must not prefetch.
	h2, l1b, _ := mk()
	h2.Access(0 * LineBytes)
	h2.Access(10 * LineBytes)
	if l1b.Contains(11 * LineBytes) {
		t.Fatal("non-sequential access should not prefetch")
	}
}

// The paper's §4.4.4 guarantee: a sequential cyclic pattern over a working
// set of W bytes hits every time once warm in any LRU cache of size ≥ W, and
// misses every time in any cache of size < W.
func TestWorkingSetGuarantee(t *testing.T) {
	const wsLines = 64 // 4KB working set
	trace := seqTrace(wsLines, 4)
	warm := wsLines // first pass is cold
	for _, pol := range []Policy{LRU, PLRU} {
		big := New(Config{Name: "big", Size: 8192, Assoc: 8, Policy: pol})
		hits := runTrace(big, trace)
		if want := len(trace) - warm; hits != want {
			t.Errorf("policy %d: cache ≥ WS: hits = %d, want %d", pol, hits, want)
		}
		small := New(Config{Name: "small", Size: 2048, Assoc: 8, Policy: pol})
		hits = runTrace(small, trace)
		if hits != 0 {
			t.Errorf("policy %d: cache < WS: hits = %d, want 0 (sequential LRU thrash)", pol, hits)
		}
	}
}

// Property: for sequential working-set traces, hit count is nondecreasing in
// cache size (the monotonicity Eq. 1 relies on).
func TestHitMonotonicityProperty(t *testing.T) {
	f := func(wsPow uint8, passes uint8) bool {
		lines := 1 << (2 + wsPow%7) // 4..256 lines
		p := 2 + int(passes%3)
		trace := seqTrace(lines, p)
		prev := -1
		for size := 256; size <= 64*1024; size *= 2 {
			c := New(Config{Name: "m", Size: size, Assoc: 8, Policy: LRU})
			h := runTrace(c, trace)
			if h < prev {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLatenciesAndLevels(t *testing.T) {
	l1 := New(Config{Name: "l1", Size: 1024, Assoc: 8, Latency: 4, Policy: LRU})
	l2 := New(Config{Name: "l2", Size: 8192, Assoc: 8, Latency: 12, Policy: LRU})
	l3 := New(Config{Name: "l3", Size: 65536, Assoc: 16, Latency: 40, Policy: LRU})
	h := &Hierarchy{Caches: [3]*Cache{l1, l2, l3}, MemLatency: 200}

	r := h.Access(0)
	if r.Served != Mem || r.Latency != 4+12+40+200 {
		t.Fatalf("cold access: %+v", r)
	}
	r = h.Access(0)
	if r.Served != L1 || r.Latency != 4 {
		t.Fatalf("warm access: %+v", r)
	}
	// Evict from L1 only: walk 17 more lines mapping everywhere.
	for l := 1; l < 64; l++ {
		h.Access(uint64(l) * LineBytes)
	}
	r = h.Access(0)
	if r.Served == Mem {
		t.Fatalf("line should be in L2/L3 after L1 eviction: %+v", r)
	}
	if r.Served == L1 {
		t.Fatalf("line unexpectedly still in tiny L1")
	}
}

func TestHierarchyNilLevels(t *testing.T) {
	l1 := New(Config{Name: "l1", Size: 1024, Assoc: 8, Latency: 4, Policy: LRU})
	h := &Hierarchy{Caches: [3]*Cache{l1, nil, nil}, MemLatency: 100}
	r := h.Access(0)
	if r.Served != Mem || r.Latency != 104 {
		t.Fatalf("nil levels: %+v", r)
	}
	if got := h.Access(0); got.Served != L1 {
		t.Fatalf("hit after fill: %+v", got)
	}
}

func TestHierarchyMemPenalty(t *testing.T) {
	h := &Hierarchy{MemLatency: 100, MemPenalty: 50}
	if r := h.Access(0); r.Latency != 150 {
		t.Fatalf("penalty not applied: %+v", r)
	}
}

func TestHierarchyInvalidateAndFlushPrivate(t *testing.T) {
	l1 := New(Config{Name: "l1", Size: 1024, Assoc: 8, Latency: 4, Policy: LRU})
	l3 := New(Config{Name: "l3", Size: 65536, Assoc: 16, Latency: 40, Policy: LRU})
	h := &Hierarchy{Caches: [3]*Cache{l1, nil, l3}, MemLatency: 100}
	h.Access(0)
	h.Invalidate(0)
	if l1.Contains(0) || l3.Contains(0) {
		t.Fatal("invalidate should drop all levels")
	}
	h.Access(0)
	h.FlushPrivate()
	if l1.Contains(0) {
		t.Fatal("flush private should empty L1")
	}
	if !l3.Contains(0) {
		t.Fatal("flush private must keep shared L3")
	}
}

func TestWorkingSetSim(t *testing.T) {
	w := NewWorkingSetSim(4096)
	sizes := w.Sizes()
	if sizes[0] != 64 || sizes[len(sizes)-1] < 4096 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Cyclic 1KB (16-line) pattern, 8 passes.
	trace := seqTrace(16, 8)
	for _, a := range trace {
		w.Access(a)
	}
	if w.Total() != uint64(len(trace)) {
		t.Fatalf("Total = %d", w.Total())
	}
	hits := w.Hits()
	// Caches ≥ 1KB capture all but the cold pass; caches < 1KB thrash.
	for i, size := range sizes {
		if size >= 1024 {
			if hits[i] != uint64(len(trace)-16) {
				t.Errorf("size %d: hits = %d, want %d", size, hits[i], len(trace)-16)
			}
		} else if size < 1024 && hits[i] != 0 {
			t.Errorf("size %d: hits = %d, want 0", size, hits[i])
		}
	}
	// Monotone in size.
	for i := 1; i < len(hits); i++ {
		if hits[i] < hits[i-1] {
			t.Errorf("hits not monotone at %d: %v", i, hits)
		}
	}
}

func TestWorkingSetSimAssocSwitch(t *testing.T) {
	w := NewWorkingSetSim(2 << 20)
	sizes := w.Sizes()
	for i, s := range sizes {
		want := 8
		if s >= 1<<20 {
			want = 16
		}
		if lines := s / LineBytes; lines < want {
			want = lines // tiny sizes clamp associativity to capacity
		}
		if got := w.caches[i].Config().Assoc; got != want {
			t.Errorf("size %d: assoc = %d, want %d", s, got, want)
		}
	}
}

func TestWorkingSetSimTiny(t *testing.T) {
	w := NewWorkingSetSim(1) // clamps to one line
	w.Access(0)
	if len(w.Sizes()) != 1 || w.Sizes()[0] != 64 {
		t.Fatalf("sizes = %v", w.Sizes())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "zero", Size: 0, Assoc: 1},
		{Name: "neg", Size: -64, Assoc: 1},
		{Name: "plru-odd", Size: 6 * 64, Assoc: 3, Policy: PLRU},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || Mem.String() != "Mem" || Level(9).String() != "?" {
		t.Fatal("level names wrong")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 3 sets × 2 ways: modulo indexing must behave like a normal cache.
	c := New(Config{Name: "odd", Size: 3 * 2 * 64, Assoc: 2, Policy: LRU})
	if c.Sets() != 3 {
		t.Fatalf("sets = %d", c.Sets())
	}
	for l := 0; l < 6; l++ {
		if c.Access(uint64(l) * LineBytes) {
			t.Fatal("cold access hit")
		}
	}
	for l := 0; l < 6; l++ {
		if !c.Access(uint64(l) * LineBytes) {
			t.Fatalf("line %d should hit after fill", l)
		}
	}
	// Lines 0 and 6 and 12 share set 0 (mod 3): third fill evicts LRU.
	c.Access(6 * LineBytes)
	c.Access(12 * LineBytes)
	if c.Contains(0 * LineBytes) {
		t.Fatal("LRU line should be evicted in non-pow2 set")
	}
}
