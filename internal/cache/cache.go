// Package cache implements the set-associative cache models used across the
// simulator: single caches with LRU or tree-PLRU replacement, a next-line
// prefetcher, multi-level hierarchies with per-level latencies, and the
// power-of-two working-set simulator that plays the role of Valgrind in the
// Ditto pipeline (Eq. 1 and Eq. 2 of the paper).
package cache

import "fmt"

// LineBytes is the cache line size, fixed at 64 bytes as in the paper.
const LineBytes = 64

// Policy selects a replacement policy.
type Policy uint8

// Replacement policies. The paper's working-set argument (§4.4.4) holds for
// LRU and its pseudo-LRU variants; both are provided so the property can be
// tested against each.
const (
	LRU Policy = iota
	PLRU
)

// Config describes one cache.
type Config struct {
	Name     string
	Size     int    // capacity in bytes
	Assoc    int    // ways per set
	Latency  int    // hit latency in cycles
	Policy   Policy // replacement policy
	Prefetch bool   // next-line prefetch on sequential access pattern
}

// Cache is a single-level set-associative cache. The zero value is not
// usable; construct with New. Cache is not safe for concurrent use — the
// simulation is single-threaded by design.
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	pow2     bool
	tags     []uint64 // sets × assoc, 0 = invalid
	stamp    []uint64 // LRU timestamps (LRU policy)
	plruBits []uint64 // per-set PLRU tree bits (PLRU policy)
	clock    uint64
}

// New builds a cache from cfg. Size must be a positive multiple of
// Assoc×LineBytes; non-power-of-two set counts (real LLCs like Table 1's
// 30.25MB) index by modulo. Assoc must be a power of two for PLRU.
func New(cfg Config) *Cache {
	if cfg.Assoc <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d assoc=%d", cfg.Name, cfg.Size, cfg.Assoc))
	}
	sets := cfg.Size / (cfg.Assoc * LineBytes)
	if sets == 0 {
		sets = 1
	}
	if cfg.Policy == PLRU && cfg.Assoc&(cfg.Assoc-1) != 0 {
		panic(fmt.Sprintf("cache %s: PLRU needs power-of-two associativity, got %d", cfg.Name, cfg.Assoc))
	}
	c := &Cache{
		cfg:  cfg,
		sets: sets,
		pow2: sets&(sets-1) == 0,
		tags: make([]uint64, sets*cfg.Assoc),
	}
	if c.pow2 {
		c.setMask = uint64(sets - 1)
	}
	if cfg.Policy == PLRU {
		c.plruBits = make([]uint64, sets)
	} else {
		c.stamp = make([]uint64, sets*cfg.Assoc)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// lineTag encodes a line address as a nonzero tag (0 marks invalid ways).
func lineTag(line uint64) uint64 { return line + 1 }

// Access looks up the line containing byte address addr, filling it on a
// miss, and reports whether it hit. Prefetching is orchestrated by the
// Hierarchy (Config.Prefetch on the first level enables it there), because
// a real prefetch fetches through the whole hierarchy rather than
// materializing lines in one level.
func (c *Cache) Access(addr uint64) bool {
	return c.touch(addr / LineBytes)
}

// AccessLine is Access for a pre-shifted line address (addr/64).
func (c *Cache) AccessLine(line uint64) bool { return c.touch(line) }

// touch performs lookup+fill+replacement bookkeeping for one line.
func (c *Cache) touch(line uint64) bool {
	set := c.setIndex(line)
	base := set * c.cfg.Assoc
	tag := lineTag(line)
	c.clock++
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			c.promote(set, w)
			return true
		}
	}
	c.fill(set, tag)
	return false
}

// Install fills a line without reporting hit/miss (the prefetch path). If
// the line is already resident it is promoted.
func (c *Cache) Install(addr uint64) { c.install(addr / LineBytes) }

// install fills a line without reporting hit/miss (prefetch path). If the
// line is already resident it is promoted.
func (c *Cache) install(line uint64) {
	set := c.setIndex(line)
	base := set * c.cfg.Assoc
	tag := lineTag(line)
	c.clock++
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			c.promote(set, w)
			return
		}
	}
	c.fill(set, tag)
}

// promote marks way w of set as most recently used.
func (c *Cache) promote(set, w int) {
	if c.cfg.Policy == PLRU {
		c.plruTouch(set, w)
		return
	}
	c.stamp[set*c.cfg.Assoc+w] = c.clock
}

// fill victimizes a way in set and installs tag there.
func (c *Cache) fill(set int, tag uint64) {
	base := set * c.cfg.Assoc
	// Prefer an invalid way.
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == 0 {
			c.tags[base+w] = tag
			c.promote(set, w)
			return
		}
	}
	var victim int
	if c.cfg.Policy == PLRU {
		victim = c.plruVictim(set)
	} else {
		oldest := c.stamp[base]
		for w := 1; w < c.cfg.Assoc; w++ {
			if c.stamp[base+w] < oldest {
				oldest = c.stamp[base+w]
				victim = w
			}
		}
	}
	c.tags[base+victim] = tag
	c.promote(set, victim)
}

// plruTouch updates the PLRU tree so that way w is protected.
func (c *Cache) plruTouch(set, w int) {
	bits := c.plruBits[set]
	node := 1
	levels := log2(c.cfg.Assoc)
	for l := levels - 1; l >= 0; l-- {
		bit := (w >> l) & 1
		// Point the node away from the touched way.
		if bit == 1 {
			bits &^= 1 << uint(node)
		} else {
			bits |= 1 << uint(node)
		}
		node = node*2 + bit
	}
	c.plruBits[set] = bits
}

// plruVictim walks the PLRU tree toward the pseudo-least-recently-used way.
func (c *Cache) plruVictim(set int) int {
	bits := c.plruBits[set]
	node := 1
	w := 0
	levels := log2(c.cfg.Assoc)
	for l := 0; l < levels; l++ {
		dir := int(bits>>uint(node)) & 1
		w = w*2 + dir
		node = node*2 + dir
	}
	return w
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Contains reports whether the line holding addr is resident, without
// touching replacement state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr / LineBytes
	set := c.setIndex(line)
	base := set * c.cfg.Assoc
	tag := lineTag(line)
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding addr, modeling a coherence
// invalidation from another core.
func (c *Cache) Invalidate(addr uint64) {
	line := addr / LineBytes
	set := c.setIndex(line)
	base := set * c.cfg.Assoc
	tag := lineTag(line)
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			c.tags[base+w] = 0
			return
		}
	}
}

// Flush empties the cache (context-switch pollution, machine reset).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	if c.stamp != nil {
		for i := range c.stamp {
			c.stamp[i] = 0
		}
	}
	if c.plruBits != nil {
		for i := range c.plruBits {
			c.plruBits[i] = 0
		}
	}
}

// setIndex maps a line address to its set.
func (c *Cache) setIndex(line uint64) int {
	if c.pow2 {
		return int(line & c.setMask)
	}
	return int(line % uint64(c.sets))
}
