// Package cache implements the set-associative cache models used across the
// simulator: single caches with LRU or tree-PLRU replacement, a next-line
// prefetcher, multi-level hierarchies with per-level latencies, and the
// power-of-two working-set simulator that plays the role of Valgrind in the
// Ditto pipeline (Eq. 1 and Eq. 2 of the paper).
package cache

import "fmt"

// LineBytes is the cache line size, fixed at 64 bytes as in the paper.
const LineBytes = 64

// Policy selects a replacement policy.
type Policy uint8

// Replacement policies. The paper's working-set argument (§4.4.4) holds for
// LRU and its pseudo-LRU variants; both are provided so the property can be
// tested against each.
const (
	LRU Policy = iota
	PLRU
)

// Config describes one cache.
type Config struct {
	Name     string
	Size     int    // capacity in bytes
	Assoc    int    // ways per set
	Latency  int    // hit latency in cycles
	Policy   Policy // replacement policy
	Prefetch bool   // next-line prefetch on sequential access pattern
}

// Cache is a single-level set-associative cache. The zero value is not
// usable; construct with New. Cache is not safe for concurrent use — the
// simulation is single-threaded by design.
//
// LRU sets keep their ways in MRU order (tags[base] is the most recently
// used line, the tail is the victim), which is observably identical to
// timestamp LRU — same hit/miss sequence, same evictions — but needs no
// stamp array: a hot line hits on the first compare and a replacement is
// one shift of the set.
//
// Tags are stored in 32 bits with the set-index bits stripped and the high
// address bits compressed through a per-cache segment table (see locate),
// halving the tag-array footprint — these arrays are the simulator's own
// working set, so their size directly sets the model's host cache-miss
// cost.
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	setBits  uint   // log2(sets) when pow2
	pow2     bool
	tags     []uint32 // sets × assoc, 0 = invalid; MRU-ordered per set for LRU
	plruBits []uint64 // per-set PLRU tree bits (PLRU policy)

	// Segment table: simulated address spaces are sparse (64GB-spaced
	// processes, a high kernel text base), so the bits above segShift take
	// few distinct values per cache. Each distinct high part gets a small
	// id on first touch, making the compacted line fit 32-bit tags for any
	// address layout. lastHigh/lastSeg cache the previous lookup — hit on
	// almost every access.
	lastHigh uint64
	lastSeg  uint32
	segs     []uint64 // segment id -> high part; index is the id
	maxSegs  int
}

// New builds a cache from cfg. Size must be a positive multiple of
// Assoc×LineBytes; non-power-of-two set counts (real LLCs like Table 1's
// 30.25MB) index by modulo. Assoc must be a power of two for PLRU.
func New(cfg Config) *Cache {
	if cfg.Assoc <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d assoc=%d", cfg.Name, cfg.Size, cfg.Assoc))
	}
	sets := cfg.Size / (cfg.Assoc * LineBytes)
	if sets == 0 {
		sets = 1
	}
	if cfg.Policy == PLRU && cfg.Assoc&(cfg.Assoc-1) != 0 {
		panic(fmt.Sprintf("cache %s: PLRU needs power-of-two associativity, got %d", cfg.Name, cfg.Assoc))
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		pow2:     sets&(sets-1) == 0,
		tags:     make([]uint32, sets*cfg.Assoc),
		lastHigh: ^uint64(0),
	}
	if c.pow2 {
		c.setMask = uint64(sets - 1)
		c.setBits = uint(log2(sets))
		if c.setBits > segShift {
			panic(fmt.Sprintf("cache %s: %d sets exceed the segment granularity", cfg.Name, sets))
		}
		// Tag layout: segment id above segShift-setBits compacted-line
		// bits, plus one for the invalid marker.
		c.maxSegs = 1 << (31 - (segShift - c.setBits))
	} else {
		// Tag is compactedLine/sets+1; compactedLine may use up to
		// 32+log2(sets) bits before the quotient overflows.
		c.maxSegs = int(min64(uint64(sets)<<(32-segShift), 1<<24))
	}
	if cfg.Policy == PLRU {
		c.plruBits = make([]uint64, sets)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// segShift splits a line address into (high, low): lows cover 2^26 lines =
// 4GB of address space, highs go through the segment table.
const segShift = 26

// segID resolves the segment id for a line's high part, allocating on first
// touch when alloc is set. ok is false only when the segment is unknown and
// alloc is false (the line cannot be resident then).
func (c *Cache) segID(line uint64, alloc bool) (uint32, bool) {
	high := line >> segShift
	if high == c.lastHigh {
		return c.lastSeg, true
	}
	for i, h := range c.segs {
		if h == high {
			c.lastHigh, c.lastSeg = high, uint32(i)
			return uint32(i), true
		}
	}
	if !alloc {
		return 0, false
	}
	return c.segSlow(high), true
}

// segSlow resolves (allocating if new) the id for a high part that missed
// the lastHigh fast path.
func (c *Cache) segSlow(high uint64) uint32 {
	for i, h := range c.segs {
		if h == high {
			c.lastHigh, c.lastSeg = high, uint32(i)
			return uint32(i)
		}
	}
	if len(c.segs) >= c.maxSegs {
		panic(fmt.Sprintf("cache %s: more than %d distinct 4GB address segments", c.cfg.Name, c.maxSegs))
	}
	id := uint32(len(c.segs))
	c.segs = append(c.segs, high)
	c.lastHigh, c.lastSeg = high, id
	return id
}

// locate maps a line address to its set and its stored 32-bit tag.
//
// Power-of-two caches index the set from the line's own low bits — exactly
// as before tags were compressed — and build the tag from the segment id
// plus the remaining low bits, a bijective encoding of the line (+1 keeps 0
// free as the invalid-way marker), so their hit/miss/eviction behaviour is
// unchanged. Modulo-indexed caches (a real LLC like 30.25MB) index the
// compacted line instead; that is a different but equally uniform and fully
// deterministic set mapping.
func (c *Cache) locate(line uint64, alloc bool) (set int, tag uint32, ok bool) {
	seg, ok := c.segID(line, alloc)
	if !ok {
		return 0, 0, false
	}
	low := line & (1<<segShift - 1)
	if c.pow2 {
		set = int(low & c.setMask)
		return set, uint32(seg)<<(segShift-c.setBits) + uint32(low>>c.setBits) + 1, true
	}
	v := uint64(seg)<<segShift | low
	q := v / uint64(c.sets)
	return int(v - q*uint64(c.sets)), uint32(q) + 1, true
}

// Access looks up the line containing byte address addr, filling it on a
// miss, and reports whether it hit. Prefetching is orchestrated by the
// Hierarchy (Config.Prefetch on the first level enables it there), because
// a real prefetch fetches through the whole hierarchy rather than
// materializing lines in one level.
func (c *Cache) Access(addr uint64) bool {
	return c.touch(addr / LineBytes)
}

// AccessLine is Access for a pre-shifted line address (addr/64).
func (c *Cache) AccessLine(line uint64) bool { return c.touch(line) }

// touch performs lookup+fill+replacement bookkeeping for one line — the
// hottest loop in the simulator. LRU sets are MRU-ordered: a hit shifts the
// preceding ways down and reinserts at the head; a miss evicts the tail
// (which is an invalid way whenever the set is not full, since untouched
// zeros sink to the tail and Invalidate moves them there).
// The set/tag computation is locate(line, true) spelled out inline: the
// segment fast path (same 4GB region as the previous access) and the tag
// arithmetic stay in this frame, keeping the per-access call count at zero
// on the hot path.
func (c *Cache) touch(line uint64) bool {
	high := line >> segShift
	seg := c.lastSeg
	if high != c.lastHigh {
		seg = c.segSlow(high)
	}
	low := line & (1<<segShift - 1)
	var set int
	var tag uint32
	if c.pow2 {
		set = int(low & c.setMask)
		tag = seg<<(segShift-c.setBits) + uint32(low>>c.setBits) + 1
	} else {
		v := uint64(seg)<<segShift | low
		q := v / uint64(c.sets)
		set = int(v - q*uint64(c.sets))
		tag = uint32(q) + 1
	}
	base := set * c.cfg.Assoc
	ways := c.tags[base : base+c.cfg.Assoc]
	if c.plruBits == nil { // LRU
		if ways[0] == tag {
			return true
		}
		for w := 1; w < len(ways); w++ {
			if ways[w] == tag {
				copy(ways[1:w+1], ways[:w])
				ways[0] = tag
				return true
			}
		}
		copy(ways[1:], ways)
		ways[0] = tag
		return false
	}
	for w, t := range ways {
		if t == tag {
			c.plruTouch(set, w)
			return true
		}
	}
	c.fillPLRU(set, ways, tag)
	return false
}

// Install fills a line without reporting hit/miss (the prefetch path). If
// the line is already resident it is promoted.
func (c *Cache) Install(addr uint64) { c.install(addr / LineBytes) }

// install fills a line without reporting hit/miss (prefetch path). If the
// line is already resident it is promoted.
func (c *Cache) install(line uint64) {
	c.touch(line)
}

// fillPLRU victimizes the first invalid way, else the tree's pseudo-LRU
// way, and installs tag there.
func (c *Cache) fillPLRU(set int, ways []uint32, tag uint32) {
	victim := -1
	for w, t := range ways {
		if t == 0 {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.plruVictim(set)
	}
	ways[victim] = tag
	c.plruTouch(set, victim)
}

// plruTouch updates the PLRU tree so that way w is protected.
func (c *Cache) plruTouch(set, w int) {
	bits := c.plruBits[set]
	node := 1
	levels := log2(c.cfg.Assoc)
	for l := levels - 1; l >= 0; l-- {
		bit := (w >> l) & 1
		// Point the node away from the touched way.
		if bit == 1 {
			bits &^= 1 << uint(node)
		} else {
			bits |= 1 << uint(node)
		}
		node = node*2 + bit
	}
	c.plruBits[set] = bits
}

// plruVictim walks the PLRU tree toward the pseudo-least-recently-used way.
func (c *Cache) plruVictim(set int) int {
	bits := c.plruBits[set]
	node := 1
	w := 0
	levels := log2(c.cfg.Assoc)
	for l := 0; l < levels; l++ {
		dir := int(bits>>uint(node)) & 1
		w = w*2 + dir
		node = node*2 + dir
	}
	return w
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Contains reports whether the line holding addr is resident, without
// touching replacement state.
func (c *Cache) Contains(addr uint64) bool {
	line := addr / LineBytes
	set, tag, ok := c.locate(line, false)
	if !ok {
		return false
	}
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding addr, modeling a coherence
// invalidation from another core. In an MRU-ordered (LRU) set the freed
// slot shifts to the tail so the next fill reuses it before evicting a
// valid line, matching the fill-invalid-first rule.
func (c *Cache) Invalidate(addr uint64) {
	line := addr / LineBytes
	set, tag, ok := c.locate(line, false)
	if !ok {
		return
	}
	base := set * c.cfg.Assoc
	ways := c.tags[base : base+c.cfg.Assoc]
	for w, t := range ways {
		if t == tag {
			if c.plruBits == nil {
				copy(ways[w:], ways[w+1:])
				ways[len(ways)-1] = 0
			} else {
				ways[w] = 0
			}
			return
		}
	}
}

// Flush empties the cache (context-switch pollution, machine reset).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	if c.plruBits != nil {
		for i := range c.plruBits {
			c.plruBits[i] = 0
		}
	}
}

// setIndex maps a line address to its set.
func (c *Cache) setIndex(line uint64) int {
	if c.pow2 {
		return int(line & c.setMask)
	}
	return int(line % uint64(c.sets))
}
