package cache

import "testing"

// BenchmarkAccessHit measures the warm-hit fast path.
func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "b", Size: 32 << 10, Assoc: 8, Policy: LRU})
	for l := 0; l < 512; l++ {
		c.Access(uint64(l) * LineBytes)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%512) * LineBytes)
	}
}

// BenchmarkHierarchyMiss measures a full three-level walk to memory.
func BenchmarkHierarchyMiss(b *testing.B) {
	l1 := New(Config{Name: "l1", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: LRU})
	l2 := New(Config{Name: "l2", Size: 1 << 20, Assoc: 16, Latency: 12, Policy: LRU})
	l3 := New(Config{Name: "l3", Size: 8 << 20, Assoc: 16, Latency: 40, Policy: PLRU})
	h := &Hierarchy{Caches: [3]*Cache{l1, l2, l3}, MemLatency: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i) * 64 * 131) // strided to defeat all levels
	}
}

// BenchmarkWorkingSetSim measures the Valgrind-analog profiling cost per
// access across the full power-of-two sweep.
func BenchmarkWorkingSetSim(b *testing.B) {
	w := NewWorkingSetSim(64 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Access(uint64(i*64) % (32 << 20))
	}
}
