package cache

// Level identifies a position in a cache hierarchy.
type Level uint8

// Hierarchy levels, ordered nearest to farthest.
const (
	L1 Level = iota
	L2
	L3
	Mem
	NumLevels = int(Mem) + 1
)

var levelNames = [...]string{"L1", "L2", "L3", "Mem"}

// String returns the level name.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "?"
}

// Result describes one hierarchy access: the total latency in cycles and
// the deepest level that had to be consulted (L1 means an L1 hit).
type Result struct {
	Latency int
	Served  Level
}

// Hierarchy is a one-to-three-level cache stack in front of memory. Any
// level may be nil (skipped). Levels may be shared between hierarchies —
// e.g. a per-core L1/L2 in front of a socket-wide L3 — because Cache methods
// are plain lookups on shared state in a single-threaded simulation.
type Hierarchy struct {
	Caches     [3]*Cache // L1, L2, L3; nil entries are skipped
	MemLatency int       // cycles to reach DRAM after the last level misses
	// MemPenalty is an additive latency applied on top of MemLatency,
	// used by the platform to model DRAM bandwidth contention.
	MemPenalty int

	lastLine uint64
	haveLast bool
}

// Access walks the hierarchy for byte address addr and returns the latency
// and serving level. Missing levels are filled on the way back (inclusive
// behaviour), matching the paper's note that the working-set construction is
// valid for any inclusion policy. When the first level enables prefetching
// and the access continues a sequential stream, the next line is fetched
// through the whole hierarchy: its latency is hidden, but it occupies (and
// evicts) capacity at every level like a real hardware prefetch.
func (h *Hierarchy) Access(addr uint64) Result {
	line := addr / LineBytes
	var res Result
	if l1 := h.Caches[0]; l1 != nil && l1.touch(line) {
		// The common case — an L1 hit — takes no loop machinery.
		res = Result{Latency: l1.cfg.Latency, Served: L1}
	} else {
		lat := 0
		if l1 != nil {
			lat = l1.cfg.Latency
		}
		for i := 1; ; i++ {
			if i == len(h.Caches) {
				res = Result{Latency: lat + h.MemLatency + h.MemPenalty, Served: Mem}
				break
			}
			c := h.Caches[i]
			if c == nil {
				continue
			}
			lat += c.cfg.Latency
			if c.touch(line) {
				res = Result{Latency: lat, Served: Level(i)}
				break
			}
		}
	}
	if l1 := h.Caches[0]; l1 != nil && l1.cfg.Prefetch {
		if h.haveLast && line == h.lastLine+1 {
			for _, c := range h.Caches {
				if c != nil {
					c.install(line + 1)
				}
			}
		}
		h.lastLine = line
		h.haveLast = true
	}
	return res
}

// Invalidate removes the line from every level (coherence invalidation).
func (h *Hierarchy) Invalidate(addr uint64) {
	for _, c := range h.Caches {
		if c != nil {
			c.Invalidate(addr)
		}
	}
}

// FlushPrivate flushes the private (L1, L2) levels — context-switch
// pollution — leaving the shared L3 intact.
func (h *Hierarchy) FlushPrivate() {
	for i, c := range h.Caches {
		if c != nil && i < 2 {
			c.Flush()
		}
	}
}

// WorkingSetSim simulates an array of caches of power-of-two sizes over an
// access trace and counts hits in each, exactly the measurement Ditto makes
// with Valgrind: H(2^i) in Eq. 1/Eq. 2. Sizes below 1MB use 8-way caches,
// sizes at or above 1MB use 16-way, matching §4.4.4.
type WorkingSetSim struct {
	sizes  []int
	caches []*Cache
	hits   []uint64
	total  uint64
}

// NewWorkingSetSim builds simulators for sizes 64B, 128B, … up to maxBytes
// (rounded up to a power of two).
func NewWorkingSetSim(maxBytes int) *WorkingSetSim {
	if maxBytes < LineBytes {
		maxBytes = LineBytes
	}
	w := &WorkingSetSim{}
	for size := LineBytes; ; size *= 2 {
		assoc := 8
		if size >= 1<<20 {
			assoc = 16
		}
		if size < assoc*LineBytes {
			assoc = size / LineBytes
			if assoc == 0 {
				assoc = 1
			}
		}
		w.sizes = append(w.sizes, size)
		w.caches = append(w.caches, New(Config{
			Name:   "ws",
			Size:   size,
			Assoc:  assoc,
			Policy: LRU,
		}))
		w.hits = append(w.hits, 0)
		if size >= maxBytes {
			break
		}
	}
	return w
}

// Access feeds one byte address to every simulated size.
func (w *WorkingSetSim) Access(addr uint64) {
	line := addr / LineBytes
	w.total++
	for i, c := range w.caches {
		if c.AccessLine(line) {
			w.hits[i]++
		}
	}
}

// Sizes returns the simulated cache sizes in bytes, ascending.
func (w *WorkingSetSim) Sizes() []int { return w.sizes }

// Hits returns hit counts parallel to Sizes.
func (w *WorkingSetSim) Hits() []uint64 { return w.hits }

// Total returns the number of accesses observed.
func (w *WorkingSetSim) Total() uint64 { return w.total }
