package isa

// Op constants name every iform in Table. The set is modeled on the x86
// iforms the paper's examples use (ADD, SUB, MUL, MOV with pointer chasing,
// TEST/JZ bitmask branches, CRC32's port-1-only three-cycle profile, REP
// string ops with data-dependent cost, LOCK-prefixed read-modify-writes).
const (
	// Data movement.
	MOVrr Op = iota
	MOVri
	MOVload
	MOVstore
	MOVZXload
	LEA
	PUSH
	POP
	XCHGrr
	MOVAPSxx
	MOVAPSload
	MOVAPSstore
	MOVptr // mov r, [r] — pointer chasing load (serializing MLP)

	// Integer arithmetic / logic.
	ADDrr
	ADDri
	ADDload
	SUBrr
	SUBload
	ANDrr
	ORrr
	XORrr
	CMPrr
	CMPload
	TESTri
	SHLri
	SHRri
	INCr
	DECr
	NEGr
	ADCrr

	// Integer multiply / divide.
	IMULrr
	IMULload
	MULr
	DIVr
	IDIVr

	// Floating point (scalar SSE).
	ADDSDxx
	SUBSDxx
	MULSDxx
	DIVSDxx
	SQRTSDx
	ADDSDload
	CVTSI2SD
	COMISDxx

	// SIMD integer / packed.
	PADDDxx
	PSUBDxx
	PMULLDxx
	PXORxx
	PANDxx
	PADDDload
	PSHUFBxx
	CRC32rr // 3 cycles, port 1 only — the paper's example of iform diversity
	POPCNTrr

	// Control flow.
	JMP
	JCC // conditional branch
	CALL
	RET

	// Lock-prefixed atomics.
	LOCKADD
	LOCKCMPXCHG
	LOCKXADD
	LOCKDEC

	// Repeat-string operations.
	REPMOVSB
	REPSTOSB
	REPNZSCASB
	REPCMPSB

	// NOP (padding / alignment).
	NOP

	numOps
)

// NumOps is the number of iforms in the table.
const NumOps = int(numOps)

// Table holds the iform descriptors, indexed by Op. Latencies and port
// assignments follow the Skylake-shaped numbers of uops.info / Agner Fog
// tables the paper cites: simple ALU ops are 1 cycle on any of ports
// 0/1/5/6, loads are 2 uops with 4-cycle L1 latency handled by the cache
// model, CRC32 is 3 cycles on port 1 only, divides are tens of cycles, LOCK
// ops ~20 cycles, REP ops cost per element.
var Table = [NumOps]IForm{
	MOVrr:       {Name: "mov r,r", Class: ClassDataMove, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	MOVri:       {Name: "mov r,imm", Class: ClassDataMove, Operands: OpImm, Uops: 1, Latency: 1, Ports: PortsALU},
	MOVload:     {Name: "mov r,[m]", Class: ClassDataMove, Operands: OpMem, Uops: 1, Latency: 4, Ports: PortsLoad, Load: true},
	MOVstore:    {Name: "mov [m],r", Class: ClassDataMove, Operands: OpMem, Uops: 2, Latency: 1, Ports: PortsStore, Store: true},
	MOVZXload:   {Name: "movzx r,[m]", Class: ClassDataMove, Operands: OpMem, Uops: 1, Latency: 4, Ports: PortsLoad, Load: true},
	LEA:         {Name: "lea r,[m]", Class: ClassDataMove, Operands: OpGPR, Uops: 1, Latency: 1, Ports: P1 | P5},
	PUSH:        {Name: "push r", Class: ClassDataMove, Operands: OpMem, Uops: 2, Latency: 1, Ports: PortsStore, Store: true},
	POP:         {Name: "pop r", Class: ClassDataMove, Operands: OpMem, Uops: 1, Latency: 4, Ports: PortsLoad, Load: true},
	XCHGrr:      {Name: "xchg r,r", Class: ClassDataMove, Operands: OpGPR, Uops: 3, Latency: 2, Ports: PortsALU},
	MOVAPSxx:    {Name: "movaps x,x", Class: ClassDataMove, Operands: OpXMM, Uops: 1, Latency: 1, Ports: P0 | P1 | P5},
	MOVAPSload:  {Name: "movaps x,[m]", Class: ClassDataMove, Operands: OpXMM, Uops: 1, Latency: 5, Ports: PortsLoad, Load: true},
	MOVAPSstore: {Name: "movaps [m],x", Class: ClassDataMove, Operands: OpXMM, Uops: 2, Latency: 1, Ports: PortsStore, Store: true},
	MOVptr:      {Name: "mov r,[r] (chase)", Class: ClassDataMove, Operands: OpMem, Uops: 1, Latency: 4, Ports: PortsLoad, Load: true},

	ADDrr:   {Name: "add r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	ADDri:   {Name: "add r,imm", Class: ClassArith, Operands: OpImm, Uops: 1, Latency: 1, Ports: PortsALU},
	ADDload: {Name: "add r,[m]", Class: ClassArith, Operands: OpMem, Uops: 2, Latency: 5, Ports: PortsLoad, Load: true},
	SUBrr:   {Name: "sub r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	SUBload: {Name: "sub r,[m]", Class: ClassArith, Operands: OpMem, Uops: 2, Latency: 5, Ports: PortsLoad, Load: true},
	ANDrr:   {Name: "and r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	ORrr:    {Name: "or r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	XORrr:   {Name: "xor r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	CMPrr:   {Name: "cmp r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	CMPload: {Name: "cmp r,[m]", Class: ClassArith, Operands: OpMem, Uops: 1, Latency: 5, Ports: PortsLoad, Load: true},
	TESTri:  {Name: "test r,imm", Class: ClassArith, Operands: OpImm, Uops: 1, Latency: 1, Ports: PortsALU},
	SHLri:   {Name: "shl r,imm", Class: ClassArith, Operands: OpImm, Uops: 1, Latency: 1, Ports: P0 | P6},
	SHRri:   {Name: "shr r,imm", Class: ClassArith, Operands: OpImm, Uops: 1, Latency: 1, Ports: P0 | P6},
	INCr:    {Name: "inc r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	DECr:    {Name: "dec r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	NEGr:    {Name: "neg r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: PortsALU},
	ADCrr:   {Name: "adc r,r", Class: ClassArith, Operands: OpGPR, Uops: 1, Latency: 1, Ports: P0 | P6},

	IMULrr:   {Name: "imul r,r", Class: ClassIntMul, Operands: OpGPR, Uops: 1, Latency: 3, Ports: PortsMulDiv, ALUHeavy: true},
	IMULload: {Name: "imul r,[m]", Class: ClassIntMul, Operands: OpMem, Uops: 2, Latency: 8, Ports: PortsMulDiv, Load: true, ALUHeavy: true},
	MULr:     {Name: "mul r", Class: ClassIntMul, Operands: OpGPR, Uops: 2, Latency: 4, Ports: PortsMulDiv, ALUHeavy: true},
	DIVr:     {Name: "div r", Class: ClassIntDiv, Operands: OpGPR, Uops: 10, Latency: 26, Ports: P0, ALUHeavy: true},
	IDIVr:    {Name: "idiv r", Class: ClassIntDiv, Operands: OpGPR, Uops: 10, Latency: 26, Ports: P0, ALUHeavy: true},

	ADDSDxx:   {Name: "addsd x,x", Class: ClassFP, Operands: OpXMM, Uops: 1, Latency: 4, Ports: PortsFP},
	SUBSDxx:   {Name: "subsd x,x", Class: ClassFP, Operands: OpXMM, Uops: 1, Latency: 4, Ports: PortsFP},
	MULSDxx:   {Name: "mulsd x,x", Class: ClassFP, Operands: OpXMM, Uops: 1, Latency: 4, Ports: PortsFP},
	DIVSDxx:   {Name: "divsd x,x", Class: ClassFP, Operands: OpXMM, Uops: 1, Latency: 14, Ports: P0, ALUHeavy: true},
	SQRTSDx:   {Name: "sqrtsd x", Class: ClassFP, Operands: OpXMM, Uops: 1, Latency: 18, Ports: P0, ALUHeavy: true},
	ADDSDload: {Name: "addsd x,[m]", Class: ClassFP, Operands: OpMem, Uops: 2, Latency: 9, Ports: PortsLoad, Load: true},
	CVTSI2SD:  {Name: "cvtsi2sd x,r", Class: ClassFP, Operands: OpXMM, Uops: 2, Latency: 6, Ports: P0 | P1},
	COMISDxx:  {Name: "comisd x,x", Class: ClassFP, Operands: OpXMM, Uops: 1, Latency: 2, Ports: P0},

	PADDDxx:   {Name: "paddd x,x", Class: ClassSIMD, Operands: OpXMM, Uops: 1, Latency: 1, Ports: P0 | P1 | P5},
	PSUBDxx:   {Name: "psubd x,x", Class: ClassSIMD, Operands: OpXMM, Uops: 1, Latency: 1, Ports: P0 | P1 | P5},
	PMULLDxx:  {Name: "pmulld x,x", Class: ClassSIMD, Operands: OpXMM, Uops: 2, Latency: 10, Ports: P0 | P1, ALUHeavy: true},
	PXORxx:    {Name: "pxor x,x", Class: ClassSIMD, Operands: OpXMM, Uops: 1, Latency: 1, Ports: P0 | P1 | P5},
	PANDxx:    {Name: "pand x,x", Class: ClassSIMD, Operands: OpXMM, Uops: 1, Latency: 1, Ports: P0 | P1 | P5},
	PADDDload: {Name: "paddd x,[m]", Class: ClassSIMD, Operands: OpMem, Uops: 2, Latency: 6, Ports: PortsLoad, Load: true},
	PSHUFBxx:  {Name: "pshufb x,x", Class: ClassSIMD, Operands: OpXMM, Uops: 1, Latency: 1, Ports: P5},
	CRC32rr:   {Name: "crc32 r,r", Class: ClassSIMD, Operands: OpGPR, Uops: 1, Latency: 3, Ports: P1, ALUHeavy: true},
	POPCNTrr:  {Name: "popcnt r,r", Class: ClassSIMD, Operands: OpGPR, Uops: 1, Latency: 3, Ports: P1},

	JMP:  {Name: "jmp", Class: ClassControl, Operands: OpImm, Uops: 1, Latency: 1, Ports: PortsBranch},
	JCC:  {Name: "jcc", Class: ClassControl, Operands: OpImm, Uops: 1, Latency: 1, Ports: PortsBranch, Branch: true},
	CALL: {Name: "call", Class: ClassControl, Operands: OpMem, Uops: 2, Latency: 2, Ports: PortsBranch, Store: true},
	RET:  {Name: "ret", Class: ClassControl, Operands: OpMem, Uops: 2, Latency: 2, Ports: PortsBranch, Load: true},

	LOCKADD:     {Name: "lock add [m],r", Class: ClassLock, Operands: OpMem, Uops: 8, Latency: 20, Ports: PortsLoad, Load: true, Store: true, ALUHeavy: true},
	LOCKCMPXCHG: {Name: "lock cmpxchg [m],r", Class: ClassLock, Operands: OpMem, Uops: 10, Latency: 22, Ports: PortsLoad, Load: true, Store: true, ALUHeavy: true},
	LOCKXADD:    {Name: "lock xadd [m],r", Class: ClassLock, Operands: OpMem, Uops: 9, Latency: 21, Ports: PortsLoad, Load: true, Store: true, ALUHeavy: true},
	LOCKDEC:     {Name: "lock dec [m]", Class: ClassLock, Operands: OpMem, Uops: 8, Latency: 20, Ports: PortsLoad, Load: true, Store: true, ALUHeavy: true},

	REPMOVSB:   {Name: "rep movsb", Class: ClassRepString, Operands: OpMem, Uops: 4, Latency: 25, Ports: PortsLoad, Load: true, Store: true, Rep: true, RepUnit: 1},
	REPSTOSB:   {Name: "rep stosb", Class: ClassRepString, Operands: OpMem, Uops: 3, Latency: 20, Ports: PortsStore, Store: true, Rep: true, RepUnit: 1},
	REPNZSCASB: {Name: "repnz scasb", Class: ClassRepString, Operands: OpMem, Uops: 3, Latency: 20, Ports: PortsLoad, Load: true, Rep: true, RepUnit: 2},
	REPCMPSB:   {Name: "rep cmpsb", Class: ClassRepString, Operands: OpMem, Uops: 4, Latency: 25, Ports: PortsLoad, Load: true, Rep: true, RepUnit: 2},

	NOP: {Name: "nop", Class: ClassNop, Operands: OpImm, Uops: 1, Latency: 0, Ports: PortsALU},
}

// InstrBytes is the average instruction size the paper assumes (Eq. 2 uses
// 64-byte lines holding 16 four-byte instructions).
const InstrBytes = 4

// LineBytes is the cache line size used throughout.
const LineBytes = 64

// InstrsPerLine is the number of instructions per cache line.
const InstrsPerLine = LineBytes / InstrBytes
