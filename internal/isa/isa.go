// Package isa defines the synthetic instruction set the whole repository
// executes: a stand-in for x86 with enough micro-architectural texture —
// per-iform uops, execution-port sets, latencies, operand classes, REP and
// LOCK prefixes — that the instruction-mix clustering and port-contention
// modeling of the Ditto paper (§4.4.2) are meaningful.
//
// Both the original application models and Ditto-generated synthetic bodies
// emit dynamic streams of Instr values; the CPU model consumes them; the
// profilers observe them exactly the way Intel SDE observes a real binary.
package isa

import "fmt"

// Reg names an architectural register. The file register model is 16
// general-purpose registers R0–R15 plus 16 vector registers X0–X15,
// mirroring x86-64. RegNone marks an absent operand.
type Reg uint8

// General-purpose and vector register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8  // by convention: branch-mask counter in generated code
	R9  // by convention: loop counter in generated code
	R10 // by convention: data-array base pointer in generated code
	R11 // by convention: pointer-chasing register in generated code
	R12
	R13
	R14
	R15
	X0
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	// RegNone marks "no operand".
	RegNone Reg = 0xFF
)

// NumRegs is the total number of architectural registers.
const NumRegs = 32

// IsVector reports whether r is one of the X registers.
func (r Reg) IsVector() bool { return r >= X0 && r <= X15 }

// String returns the assembler-style register name.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsVector():
		return fmt.Sprintf("x%d", r-X0)
	case r < X0:
		return fmt.Sprintf("r%d", r)
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Class is the functional cluster an iform belongs to. The paper clusters
// x86 iforms by functionality (data movement, arithmetic/logic,
// control-flow, lock-prefixed, repeat string), operands, and ALU usage.
type Class uint8

// Functional classes.
const (
	ClassDataMove Class = iota
	ClassArith
	ClassIntMul
	ClassIntDiv
	ClassFP
	ClassSIMD
	ClassControl
	ClassLock
	ClassRepString
	ClassNop
	numClasses
)

// NumClasses is the number of functional classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	"datamove", "arith", "intmul", "intdiv", "fp", "simd",
	"control", "lock", "repstring", "nop",
}

// String returns the lowercase class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// OperandClass describes the operand style of an iform, the second
// clustering axis of §4.4.2.
type OperandClass uint8

// Operand classes.
const (
	OpGPR OperandClass = iota // general-purpose registers only
	OpMem                     // at least one memory operand
	OpXMM                     // vector registers
	OpX87                     // legacy floating point stack
	OpImm                     // immediate-heavy (shifts, tests)
)

var operandNames = [...]string{"gpr", "mem", "xmm", "x87", "imm"}

// String returns the lowercase operand-class name.
func (o OperandClass) String() string {
	if int(o) < len(operandNames) {
		return operandNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// PortMask is a bitmask of the execution ports an iform's primary uop can
// issue to. The port model is Skylake-shaped: ports 0,1,5,6 are ALUs
// (6 also branches), 2,3 are loads, 4 is store-data, 7 is store-AGU.
type PortMask uint8

// Port constants.
const (
	P0 PortMask = 1 << iota
	P1
	P2
	P3
	P4
	P5
	P6
	P7
)

// Common port groups.
const (
	PortsALU    = P0 | P1 | P5 | P6
	PortsLoad   = P2 | P3
	PortsStore  = P4
	PortsBranch = P6
	PortsMulDiv = P1
	PortsFP     = P0 | P1
)

// Count reports the number of ports in the mask.
func (p PortMask) Count() int {
	n := 0
	for p != 0 {
		n += int(p & 1)
		p >>= 1
	}
	return n
}

// Op identifies an iform in the Table.
type Op uint8

// IForm describes the static micro-architectural properties of one
// instruction form — the unit the instruction-mix profiler counts and the
// generator samples from.
type IForm struct {
	Name     string       // assembler-ish mnemonic with operand shape
	Class    Class        // functional cluster
	Operands OperandClass // operand cluster
	Uops     int          // fused-domain uops
	Latency  int          // result latency in cycles
	Ports    PortMask     // issue ports for the primary uop
	Load     bool         // reads memory
	Store    bool         // writes memory
	Branch   bool         // conditional control flow
	Rep      bool         // repeat-string prefixed: cost scales with RepCount
	RepUnit  int          // cycles per repeated element (Rep only)
	ALUHeavy bool         // long-latency ALU op (third clustering axis)
}

// Instr is one dynamic instruction instance. Streams of Instr are what the
// CPU executes and the profilers observe. Memory addresses are byte
// addresses resolved by the emitter (the paper hard-codes offsets at
// generation time; original apps compute them from their hidden state).
type Instr struct {
	Op       Op     // index into Table
	PC       uint64 // instruction address (i-cache and BTB behaviour)
	Dst      Reg    // destination register (RegNone if none)
	Src1     Reg    // first source (RegNone if none)
	Src2     Reg    // second source (RegNone if none)
	Addr     uint64 // memory byte address for Load/Store ops
	BranchID int32  // static branch site id, -1 for non-branches
	Taken    bool   // dynamic branch outcome
	RepCount int32  // element count for Rep ops
	Shared   bool   // touches coherence-shared data
	Kernel   bool   // executed in kernel mode (syscall body)
}

// Form returns the iform descriptor for the instruction.
func (in *Instr) Form() *IForm { return &Table[in.Op] }
