package isa

import "fmt"

// This file is the iform-consistency half of the verification layer: a
// Table entry (or a hand-built IForm) is checked against the structural
// invariants the CPU model and the clone verifier rely on. The checks are
// deliberately conservative — they encode properties every entry in Table
// satisfies today, so a violation always indicates a corrupted or
// inconsistent iform rather than a stylistic choice.

// Validate reports the first structural inconsistency in f, or nil.
func (f *IForm) Validate() error {
	switch {
	case f.Name == "":
		return fmt.Errorf("iform has no name")
	case f.Uops < 1:
		return fmt.Errorf("%s: uops = %d, want >= 1", f.Name, f.Uops)
	case f.Latency < 0:
		return fmt.Errorf("%s: negative latency %d", f.Name, f.Latency)
	case f.Latency == 0 && f.Class != ClassNop:
		return fmt.Errorf("%s: zero latency outside the nop class", f.Name)
	case f.Ports == 0:
		return fmt.Errorf("%s: empty port mask", f.Name)
	case popcount8(uint8(f.Ports)) > 4:
		// The execution core's port-selection fast path reads a fixed four
		// slots per mask; no real iform issues to more than four ports.
		return fmt.Errorf("%s: %d allowed ports, want <= 4 (mask %08b)", f.Name, popcount8(uint8(f.Ports)), f.Ports)
	case f.Branch && f.Ports&PortsBranch == 0:
		return fmt.Errorf("%s: branch cannot issue to a branch port (mask %08b)", f.Name, f.Ports)
	case f.Branch && f.Class != ClassControl:
		return fmt.Errorf("%s: branch outside the control class (%s)", f.Name, f.Class)
	case f.Load && f.Uops == 1 && f.Ports&PortsLoad == 0:
		return fmt.Errorf("%s: single-uop load cannot issue to a load port (mask %08b)", f.Name, f.Ports)
	case f.Store && f.Uops < 2:
		return fmt.Errorf("%s: store with %d uop(s), want >= 2 (data + AGU)", f.Name, f.Uops)
	case f.Rep && f.RepUnit < 1:
		return fmt.Errorf("%s: rep op with RepUnit %d", f.Name, f.RepUnit)
	case f.Rep && f.Class != ClassRepString:
		return fmt.Errorf("%s: rep op outside the repstring class (%s)", f.Name, f.Class)
	case !f.Rep && f.RepUnit != 0:
		return fmt.Errorf("%s: RepUnit %d on a non-rep op", f.Name, f.RepUnit)
	case f.ALUHeavy && f.Latency < 3:
		return fmt.Errorf("%s: ALU-heavy op with latency %d, want >= 3", f.Name, f.Latency)
	}
	return nil
}

func popcount8(v uint8) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// ValidateOp checks that op indexes a self-consistent Table entry.
func ValidateOp(op Op) error {
	if int(op) >= NumOps {
		return fmt.Errorf("unknown opcode %d (table has %d iforms)", op, NumOps)
	}
	return Table[op].Validate()
}

// TableErrors validates every Table entry and returns all inconsistencies.
func TableErrors() []error {
	var errs []error
	for op := Op(0); int(op) < NumOps; op++ {
		if err := Table[op].Validate(); err != nil {
			errs = append(errs, fmt.Errorf("op %d: %w", op, err))
		}
	}
	return errs
}

// RegMatchesOperands reports whether register r is usable as an operand of
// an iform in operand class oc: vector classes take X registers, everything
// else takes general-purpose registers. RegNone (absent operand) always
// matches.
func RegMatchesOperands(oc OperandClass, r Reg) bool {
	if r == RegNone {
		return true
	}
	if oc == OpXMM {
		return r.IsVector()
	}
	return !r.IsVector()
}
