package isa

import (
	"strings"
	"testing"
)

func TestTableComplete(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		f := &Table[op]
		if f.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		if f.Uops <= 0 {
			t.Errorf("%s: uops = %d", f.Name, f.Uops)
		}
		if f.Latency < 0 {
			t.Errorf("%s: negative latency", f.Name)
		}
		if f.Ports == 0 {
			t.Errorf("%s: no issue ports", f.Name)
		}
		if f.Rep && f.RepUnit <= 0 {
			t.Errorf("%s: rep op without RepUnit", f.Name)
		}
		if int(f.Class) >= NumClasses {
			t.Errorf("%s: bad class %d", f.Name, f.Class)
		}
	}
}

func TestTableClassConsistency(t *testing.T) {
	for op := Op(0); op < Op(numOps); op++ {
		f := &Table[op]
		switch f.Class {
		case ClassControl:
			if f.Ports&P6 == 0 {
				t.Errorf("%s: control op must include port 6", f.Name)
			}
		case ClassLock:
			if !f.Load || !f.Store {
				t.Errorf("%s: lock op must be RMW", f.Name)
			}
		case ClassRepString:
			if !f.Rep {
				t.Errorf("%s: repstring op must set Rep", f.Name)
			}
		}
		if f.Load && f.Store && f.Class != ClassLock && f.Class != ClassRepString && op != CALL {
			t.Errorf("%s: unexpected RMW", f.Name)
		}
	}
}

func TestCRC32PortRestriction(t *testing.T) {
	f := &Table[CRC32rr]
	if f.Ports != P1 {
		t.Fatalf("crc32 ports = %b, want port 1 only (paper §4.4.2)", f.Ports)
	}
	if f.Latency != 3 {
		t.Fatalf("crc32 latency = %d, want 3", f.Latency)
	}
}

func TestSimpleALUBreadth(t *testing.T) {
	f := &Table[ADDrr]
	if f.Ports.Count() != 4 {
		t.Fatalf("add r,r should issue on 4 ports, got %d", f.Ports.Count())
	}
	if f.Latency != 1 {
		t.Fatalf("add r,r latency = %d", f.Latency)
	}
}

func TestPortMaskCount(t *testing.T) {
	if PortsALU.Count() != 4 {
		t.Fatalf("PortsALU.Count = %d", PortsALU.Count())
	}
	if PortMask(0).Count() != 0 {
		t.Fatal("empty mask count != 0")
	}
	if (P0 | P7).Count() != 2 {
		t.Fatal("two-port mask count != 2")
	}
}

func TestRegNames(t *testing.T) {
	if R10.String() != "r10" {
		t.Fatalf("R10 = %q", R10.String())
	}
	if X3.String() != "x3" {
		t.Fatalf("X3 = %q", X3.String())
	}
	if RegNone.String() != "-" {
		t.Fatalf("RegNone = %q", RegNone.String())
	}
	if !X0.IsVector() || R15.IsVector() {
		t.Fatal("IsVector misclassifies")
	}
}

func TestClassAndOperandStrings(t *testing.T) {
	if ClassRepString.String() != "repstring" {
		t.Fatalf("class name = %q", ClassRepString.String())
	}
	if OpXMM.String() != "xmm" {
		t.Fatalf("operand name = %q", OpXMM.String())
	}
	if !strings.HasPrefix(Class(99).String(), "class(") {
		t.Fatal("unknown class string")
	}
	if !strings.HasPrefix(OperandClass(99).String(), "op(") {
		t.Fatal("unknown operand string")
	}
}

func TestInstrForm(t *testing.T) {
	in := Instr{Op: JCC, BranchID: 7, Taken: true}
	if !in.Form().Branch {
		t.Fatal("JCC form should be a branch")
	}
	if in.Form().Name != "jcc" {
		t.Fatalf("form name = %q", in.Form().Name)
	}
}

func TestGeometryConstants(t *testing.T) {
	if LineBytes != 64 || InstrBytes != 4 || InstrsPerLine != 16 {
		t.Fatal("geometry constants must match the paper's Eq. 2 assumptions")
	}
}
