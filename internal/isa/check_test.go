package isa

import (
	"strings"
	"testing"
)

func TestTableIsSelfConsistent(t *testing.T) {
	if errs := TableErrors(); len(errs) != 0 {
		t.Fatalf("table inconsistencies: %v", errs)
	}
}

func TestValidateOpBounds(t *testing.T) {
	if err := ValidateOp(ADDrr); err != nil {
		t.Fatalf("add r,r: %v", err)
	}
	if err := ValidateOp(Op(200)); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Fatalf("out-of-range op: %v", err)
	}
}

func TestValidateCatchesBrokenIForms(t *testing.T) {
	cases := []struct {
		name string
		f    IForm
		want string
	}{
		{"no name", IForm{}, "no name"},
		{"zero uops", IForm{Name: "x", Latency: 1, Ports: P0}, "uops"},
		{"no ports", IForm{Name: "x", Uops: 1, Latency: 1}, "port mask"},
		{"branch off port 6", IForm{Name: "x", Uops: 1, Latency: 1, Ports: P0, Branch: true, Class: ClassControl}, "branch port"},
		{"branch class", IForm{Name: "x", Uops: 1, Latency: 1, Ports: P6, Branch: true, Class: ClassArith}, "control class"},
		{"load off load ports", IForm{Name: "x", Uops: 1, Latency: 4, Ports: P0, Load: true}, "load port"},
		{"one-uop store", IForm{Name: "x", Uops: 1, Latency: 1, Ports: P4, Store: true}, "uop"},
		{"rep without unit", IForm{Name: "x", Uops: 3, Latency: 20, Ports: P2, Rep: true, Class: ClassRepString}, "RepUnit"},
		{"stray rep unit", IForm{Name: "x", Uops: 1, Latency: 1, Ports: P0, RepUnit: 2}, "non-rep"},
		{"light heavy op", IForm{Name: "x", Uops: 1, Latency: 1, Ports: P0, ALUHeavy: true}, "latency"},
		{"zero latency", IForm{Name: "x", Uops: 1, Ports: P0}, "zero latency"},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestRegMatchesOperands(t *testing.T) {
	if !RegMatchesOperands(OpXMM, X3) || RegMatchesOperands(OpXMM, R3) {
		t.Fatal("xmm class must take vector registers")
	}
	if !RegMatchesOperands(OpGPR, R3) || RegMatchesOperands(OpGPR, X3) {
		t.Fatal("gpr class must take scalar registers")
	}
	if !RegMatchesOperands(OpXMM, RegNone) || !RegMatchesOperands(OpMem, RegNone) {
		t.Fatal("absent operands always match")
	}
}
