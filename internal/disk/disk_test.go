package disk

import (
	"testing"

	"ditto/internal/sim"
)

func TestReadCompletion(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, SSDConfig())
	var doneAt sim.Time
	d.Read(500*1000*1000/1000, func() { doneAt = eng.Now() }) // 500KB
	eng.Run()
	// 80us latency + 500KB at 500MB/s = 1ms.
	want := 80*sim.Microsecond + sim.Millisecond
	if doneAt != want {
		t.Fatalf("doneAt = %v, want %v", doneAt, want)
	}
	ctr := d.Counters()
	if ctr.ReadOps != 1 || ctr.ReadBytes != 500000 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestFIFOQueueing(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, SSDConfig())
	var first, second sim.Time
	d.Read(0, func() { first = eng.Now() })
	d.Read(0, func() { second = eng.Now() })
	eng.Run()
	if first != 80*sim.Microsecond {
		t.Fatalf("first = %v", first)
	}
	if second != 160*sim.Microsecond {
		t.Fatalf("second = %v, queueing not applied", second)
	}
}

func TestHDDSlowerThanSSD(t *testing.T) {
	eng := sim.NewEngine()
	ssd := New(eng, SSDConfig())
	hdd := New(eng, HDDConfig())
	var sAt, hAt sim.Time
	ssd.Read(4096, func() { sAt = eng.Now() })
	hdd.Read(4096, func() { hAt = eng.Now() })
	eng.Run()
	if hAt < 50*sAt {
		t.Fatalf("HDD should be far slower: ssd=%v hdd=%v", sAt, hAt)
	}
}

func TestWriteAndNilDone(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, HDDConfig())
	end := d.Write(8192, nil)
	if end <= 0 {
		t.Fatal("write end time not returned")
	}
	eng.Run()
	ctr := d.Counters()
	if ctr.WriteOps != 1 || ctr.WriteBytes != 8192 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestQueueDepthTime(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, SSDConfig())
	if d.QueueDepthTime() != 0 {
		t.Fatal("idle device should report 0 depth")
	}
	d.Read(1<<20, func() {})
	if d.QueueDepthTime() == 0 {
		t.Fatal("busy device should report positive depth")
	}
	eng.Run() // advances to the read's completion event
	if d.QueueDepthTime() != 0 {
		t.Fatal("drained device should report 0 depth")
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, SSDConfig())
	d.Read(-5, nil)
	if d.Counters().ReadBytes != 0 {
		t.Fatal("negative bytes should clamp to 0")
	}
}
