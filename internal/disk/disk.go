// Package disk models block storage devices: an SSD with low random-access
// latency and an HDD with seek-dominated latency (the Platform A vs B/C
// distinction that makes MongoDB's latency differ across platforms in
// Fig. 7). Requests queue FIFO at the device and complete as simulation
// events.
package disk

import "ditto/internal/sim"

// Class selects a device model.
type Class uint8

// Device classes.
const (
	SSD Class = iota
	HDD
)

// Config describes one device.
type Config struct {
	Class         Class
	ReadLatency   sim.Time // fixed per-op latency (seek + firmware)
	WriteLatency  sim.Time
	BandwidthMBps float64 // sustained transfer rate
}

// SSDConfig returns parameters for a SATA-class SSD.
func SSDConfig() Config {
	return Config{Class: SSD, ReadLatency: 80 * sim.Microsecond,
		WriteLatency: 30 * sim.Microsecond, BandwidthMBps: 500}
}

// HDDConfig returns parameters for a 7200rpm disk.
func HDDConfig() Config {
	return Config{Class: HDD, ReadLatency: 8 * sim.Millisecond,
		WriteLatency: 4 * sim.Millisecond, BandwidthMBps: 150}
}

// Counters accumulates device activity for bandwidth validation.
type Counters struct {
	ReadOps, WriteOps     uint64
	ReadBytes, WriteBytes uint64
	BusyTime              sim.Time
}

// Device is one queued block device. Requests are serviced in FIFO order;
// each occupies the device for latency + size/bandwidth.
type Device struct {
	eng       *sim.Engine
	cfg       Config
	busyUntil sim.Time
	ctr       Counters
}

// New builds a device on the given engine.
func New(eng *sim.Engine, cfg Config) *Device {
	return &Device{eng: eng, cfg: cfg}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Counters returns a snapshot of the accumulated activity.
func (d *Device) Counters() Counters { return d.ctr }

// Read schedules a read of the given size and invokes done when it
// completes. Sequential merging is the caller's job (the page cache batches
// contiguous misses into one request).
func (d *Device) Read(bytes int, done func()) sim.Time {
	return d.submit(bytes, d.cfg.ReadLatency, true, done)
}

// Write schedules a write; done may be nil for write-back behaviour.
func (d *Device) Write(bytes int, done func()) sim.Time {
	return d.submit(bytes, d.cfg.WriteLatency, false, done)
}

// submit queues one request and returns its completion time.
func (d *Device) submit(bytes int, lat sim.Time, read bool, done func()) sim.Time {
	if bytes < 0 {
		bytes = 0
	}
	start := d.eng.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	xfer := sim.Time(0)
	if d.cfg.BandwidthMBps > 0 {
		xfer = sim.FromSeconds(float64(bytes) / (d.cfg.BandwidthMBps * 1e6))
	}
	end := start + lat + xfer
	d.busyUntil = end
	d.ctr.BusyTime += lat + xfer
	if read {
		d.ctr.ReadOps++
		d.ctr.ReadBytes += uint64(bytes)
	} else {
		d.ctr.WriteOps++
		d.ctr.WriteBytes += uint64(bytes)
	}
	if done != nil {
		d.eng.ScheduleFunc(end, done)
	}
	return end
}

// QueueDepthTime reports how far in the future the device is booked — a
// proxy for queue depth used by utilization studies.
func (d *Device) QueueDepthTime() sim.Time {
	if d.busyUntil <= d.eng.Now() {
		return 0
	}
	return d.busyUntil - d.eng.Now()
}
