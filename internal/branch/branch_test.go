package branch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(1024)
	correct := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.Access(0x400000, true) { // always-taken branch
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.99 {
		t.Fatalf("always-taken accuracy = %v, want > 0.99", acc)
	}
}

func TestPredictorLearnsPattern(t *testing.T) {
	p := NewPredictor(4096)
	// Strict alternation: gshare history should learn it near-perfectly.
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Access(0x400100, i%2 == 0) {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.95 {
		t.Fatalf("alternating accuracy = %v, want > 0.95", acc)
	}
}

func TestPredictorRandomIsHard(t *testing.T) {
	p := NewPredictor(4096)
	// A pseudo-random 50/50 branch should be nearly unpredictable.
	state := uint64(0x12345)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		taken := state>>63 == 1
		if p.Access(0x400200, taken) {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc > 0.65 {
		t.Fatalf("random-branch accuracy = %v, want near 0.5", acc)
	}
}

// Destructive aliasing: many static branches with conflicting biases in a
// small table predict worse than a single branch — the static-footprint
// effect the paper highlights.
func TestPredictorAliasingDegrades(t *testing.T) {
	small := NewPredictor(64)
	big := NewPredictor(65536)
	run := func(p *Predictor) float64 {
		correct, total := 0, 0
		for round := 0; round < 200; round++ {
			for b := 0; b < 512; b++ {
				pc := uint64(0x400000 + b*4)
				// Bias keyed on high PC bits so branches that alias to the
				// same small-table entry (same low bits) conflict.
				taken := (b>>6)&1 == 0
				if p.Access(pc, taken) {
					correct++
				}
				total++
			}
		}
		return float64(correct) / float64(total)
	}
	accSmall, accBig := run(small), run(big)
	if accSmall >= accBig {
		t.Fatalf("aliasing should hurt: small=%v big=%v", accSmall, accBig)
	}
}

func TestPredictorReset(t *testing.T) {
	p := NewPredictor(256)
	for i := 0; i < 1000; i++ {
		p.Access(0x1000, true)
	}
	if !p.Predict(0x1000) {
		t.Fatal("should predict taken after training")
	}
	p.Reset()
	if p.Predict(0x1000) {
		t.Fatal("reset should restore weakly-not-taken")
	}
}

func TestNewPredictorRoundsUp(t *testing.T) {
	p := NewPredictor(1000)
	if len(p.gshare) != 1024 {
		t.Fatalf("table size = %d, want 1024", len(p.gshare))
	}
	tiny := NewPredictor(0)
	if len(tiny.gshare) != 64 {
		t.Fatalf("minimum table = %d, want 64", len(tiny.gshare))
	}
}

// measureRates samples n outcomes and reports the taken rate and the
// transition rate, counting transitions cyclically (last back to first) so
// that whole-period samples measure the asymptotic rates exactly.
func measureRates(b *BitmaskBranch, n int) (taken, trans float64) {
	var takenN, transN int
	first := b.Next()
	prev := first
	if prev {
		takenN++
	}
	for i := 1; i < n; i++ {
		o := b.Next()
		if o {
			takenN++
		}
		if o != prev {
			transN++
		}
		prev = o
	}
	if prev != first {
		transN++
	}
	return float64(takenN) / float64(n), float64(transN) / float64(n)
}

func TestBitmaskBranchRates(t *testing.T) {
	cases := []struct{ m, n int }{
		{1, 1}, {1, 4}, {2, 3}, {3, 5}, {4, 8}, {1, 10},
	}
	for _, c := range cases {
		b := NewBitmaskBranch(c.m, c.n)
		n := 1 << 18
		taken, trans := measureRates(b, n)
		wantTaken := math.Pow(2, -float64(c.m))
		wantTrans := math.Pow(2, -float64(c.n))
		if math.Abs(taken-wantTaken) > wantTaken*0.05 {
			t.Errorf("M=%d N=%d: taken = %v, want %v", c.m, c.n, taken, wantTaken)
		}
		if math.Abs(trans-wantTrans) > wantTrans*0.05 {
			t.Errorf("M=%d N=%d: transition = %v, want %v", c.m, c.n, trans, wantTrans)
		}
		if math.Abs(b.TakenRate()-wantTaken) > 1e-12 {
			t.Errorf("M=%d N=%d: TakenRate() = %v", c.m, c.n, b.TakenRate())
		}
		if math.Abs(b.TransitionRate()-wantTrans) > 1e-12 {
			t.Errorf("M=%d N=%d: TransitionRate() = %v", c.m, c.n, b.TransitionRate())
		}
	}
}

func TestBitmaskBranchAlwaysTaken(t *testing.T) {
	b := NewBitmaskBranch(0, 3)
	for i := 0; i < 100; i++ {
		if !b.Next() {
			t.Fatal("M=0 must be always taken")
		}
	}
	if b.TransitionRate() != 0 {
		t.Fatal("always-taken transition rate should be 0")
	}
}

func TestBitmaskBranchIncompatibleClamps(t *testing.T) {
	// M=8, N=1: cannot take 1/256 while flipping every other execution;
	// run clamps to 1 per period of 4.
	b := NewBitmaskBranch(8, 1)
	taken, _ := measureRates(b, 1<<12)
	if math.Abs(taken-0.25) > 0.01 {
		t.Fatalf("clamped taken rate = %v, want 0.25", taken)
	}
}

// Property: measured rates over whole periods match the advertised rates
// exactly for compatible (M ≤ N+1) parameters.
func TestBitmaskBranchProperty(t *testing.T) {
	f := func(mRaw, nRaw uint8) bool {
		m := 1 + int(mRaw%10)
		n := 1 + int(nRaw%10)
		if m > n+1 {
			m = n + 1
		}
		b := NewBitmaskBranch(m, n)
		period := 1 << (n + 1)
		taken, trans := measureRates(b, period*8)
		return math.Abs(taken-b.TakenRate()) < 1e-9 &&
			math.Abs(trans-b.TransitionRate()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmaskBranchClampRange(t *testing.T) {
	b := NewBitmaskBranch(99, 99)
	if b.M != 10 || b.N != 10 {
		t.Fatalf("clamp failed: M=%d N=%d", b.M, b.N)
	}
	b2 := NewBitmaskBranch(1, 0)
	if b2.N != 1 {
		t.Fatalf("N clamp failed: %d", b2.N)
	}
}
