// Package branch models the branch prediction unit. It provides a hybrid
// bimodal/gshare predictor with a finite table, so the effects the paper
// singles out in §4.4.3 — taken/not-taken bias, transition rate, and the
// contribution of instruction locality and static branch count (destructive
// aliasing in a finite predictor) — all emerge from the model rather than
// being asserted.
package branch

// Predictor is a gshare-style global-history predictor with 2-bit
// saturating counters plus a bimodal fallback chooser. The zero value is
// not usable; construct with NewPredictor.
//
// The bimodal counter and the chooser are indexed identically (by pc), so
// they share one packed table — low byte bimodal, high byte chooser — and
// an access costs two random table loads instead of three.
type Predictor struct {
	gshare  []uint8  // 2-bit counters indexed by pc ⊕ history
	bc      []uint16 // bimodal (low byte) + chooser (high byte), indexed by pc
	mask    uint64
	history uint64
	histLen uint
}

// bcInit is the cold per-entry state: bimodal weakly not-taken (1), chooser
// weakly preferring gshare (2).
const bcInit = 1 | 2<<8

// NewPredictor builds a predictor with the given table size (entries per
// component table, rounded up to a power of two, minimum 64).
func NewPredictor(entries int) *Predictor {
	n := 64
	for n < entries {
		n *= 2
	}
	p := &Predictor{
		gshare:  make([]uint8, n),
		bc:      make([]uint16, n),
		mask:    uint64(n - 1),
		histLen: 12,
	}
	// Counters start weakly not-taken (1), matching cold hardware.
	for i := range p.gshare {
		p.gshare[i] = 1
		p.bc[i] = bcInit
	}
	return p
}

func (p *Predictor) gIndex(pc uint64) uint64 {
	return (pc>>2 ^ p.history) & p.mask
}

func (p *Predictor) bIndex(pc uint64) uint64 {
	return (pc >> 2) & p.mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (p *Predictor) Predict(pc uint64) bool {
	bc := p.bc[p.bIndex(pc)]
	if bc>>8 >= 2 {
		return p.gshare[p.gIndex(pc)] >= 2
	}
	return bc&0xff >= 2
}

// Access predicts the branch at pc, updates all tables with the actual
// outcome, and reports whether the prediction was correct.
func (p *Predictor) Access(pc uint64, taken bool) bool {
	gi, bi := p.gIndex(pc), p.bIndex(pc)
	g := p.gshare[gi]
	bc := p.bc[bi]
	gPred := g >= 2
	bPred := bc&0xff >= 2
	chooser := uint8(bc >> 8)
	pred := bPred
	if chooser >= 2 {
		pred = gPred
	}
	correct := pred == taken

	// Chooser: train toward whichever component was right when they differ.
	if gPred != bPred {
		chooser = sat(chooser, gPred == taken)
	}
	p.gshare[gi] = sat(g, taken)
	p.bc[bi] = uint16(sat(uint8(bc), taken)) | uint16(chooser)<<8
	p.history = (p.history<<1 | b2u(taken)) & (1<<p.histLen - 1)
	return correct
}

// Reset clears learned state (context switch to another process).
func (p *Predictor) Reset() {
	for i := range p.gshare {
		p.gshare[i] = 1
		p.bc[i] = bcInit
	}
	p.history = 0
}

func sat(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BitmaskBranch reproduces the paper's generated-branch mechanism (§4.4.3,
// Fig. 3 lines 21–22): a per-branch counter tested against a precomputed
// bitmask yields a deterministic periodic outcome sequence whose taken rate
// is 2^-M and whose transition rate (fraction of executions where the
// direction flips) is 2^-N. The generator hard-codes one mask per synthetic
// conditional branch.
//
// Concretely the sequence has period 2^(N+1) with one aligned taken run of
// length 2^(N+1-M) per period: two direction flips per period gives a
// transition rate of exactly 2/2^(N+1) = 2^-N, and the run length sets the
// taken rate to 2^-M. When M > N+1 the two rates are incompatible (a branch
// cannot flip more often than it is taken); the run clamps to a single
// execution, the closest expressible behaviour.
type BitmaskBranch struct {
	M, N       uint8  // taken rate 2^-M, transition rate 2^-N
	periodMask uint64 // period-1 (period = 2^(N+1))
	runLen     uint64 // taken executions per period
	counter    uint64
}

// NewBitmaskBranch builds a branch whose long-run taken rate is 2^-m and
// whose transition rate is 2^-n. m and n are clamped to [1,10] — the
// paper's quantization range — except m==0, which yields always-taken.
func NewBitmaskBranch(m, n int) *BitmaskBranch {
	bb := MakeBitmaskBranch(m, n)
	return &bb
}

// MakeBitmaskBranch is NewBitmaskBranch as a value constructor, for callers
// that embed branches inline (slot tables) instead of holding pointers.
func MakeBitmaskBranch(m, n int) BitmaskBranch {
	clamp := func(v int) uint8 {
		if v < 1 {
			return 1
		}
		if v > 10 {
			return 10
		}
		return uint8(v)
	}
	bb := BitmaskBranch{N: clamp(n)}
	if m != 0 {
		bb.M = clamp(m)
	}
	period := uint64(1) << (bb.N + 1)
	bb.periodMask = period - 1
	if bb.M == 0 {
		bb.runLen = period
	} else if uint64(bb.M) <= uint64(bb.N)+1 {
		bb.runLen = period >> bb.M
	} else {
		bb.runLen = 1
	}
	return bb
}

// SetPhase advances the branch's starting position within its period, so
// populations of branches are not phase-aligned (short observation windows
// would otherwise oversample the leading taken run).
func (b *BitmaskBranch) SetPhase(p uint64) { b.counter = p }

// Next advances the branch's internal counter and returns the next dynamic
// outcome.
func (b *BitmaskBranch) Next() bool {
	c := b.counter & b.periodMask
	b.counter++
	return c < b.runLen
}

// TakenRate reports the asymptotic taken rate of the generated sequence.
func (b *BitmaskBranch) TakenRate() float64 {
	return float64(b.runLen) / float64(b.periodMask+1)
}

// TransitionRate reports the asymptotic transition rate of the generated
// sequence (2^-N, or 0 for an always-taken branch).
func (b *BitmaskBranch) TransitionRate() float64 {
	if b.runLen == b.periodMask+1 {
		return 0
	}
	return 2 / float64(b.periodMask+1)
}
