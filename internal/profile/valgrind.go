package profile

import (
	"ditto/internal/cache"
	"ditto/internal/isa"
)

// valgrindState measures working-set behaviour exactly as §4.4.4/§4.4.5
// prescribe: simulate caches of every power-of-two size (8-way below 1MB,
// 16-way at and above) over the observed data-access trace and over the
// instruction line-fetch trace, then convert hit counts to per-working-set
// access counts via Eq. 1 and Eq. 2.
type valgrindState struct {
	dws *cache.WorkingSetSim
	iws *cache.WorkingSetSim

	lastPCLine uint64
	havePC     bool
	iFetches   uint64
	instrs     uint64
}

func newValgrindState(maxData, maxInstr int) *valgrindState {
	return &valgrindState{
		dws: cache.NewWorkingSetSim(maxData),
		iws: cache.NewWorkingSetSim(maxInstr),
	}
}

// observe feeds one user-level instruction stream.
func (v *valgrindState) observe(stream []isa.Instr) {
	for i := range stream {
		in := &stream[i]
		v.instrs++
		line := in.PC / isa.LineBytes
		if !v.havePC || line != v.lastPCLine {
			v.iws.Access(in.PC)
			v.iFetches++
			v.lastPCLine = line
			v.havePC = true
		}
		f := &isa.Table[in.Op]
		if (f.Load || f.Store) && !f.Rep {
			v.dws.Access(in.Addr)
		} else if f.Rep {
			// A REP op sweeps its whole range, one line at a time.
			n := int(in.RepCount)
			if n < 1 {
				n = 1
			}
			for l := 0; l < (n+isa.LineBytes-1)/isa.LineBytes; l++ {
				v.dws.Access(in.Addr + uint64(l*isa.LineBytes))
			}
		}
	}
}

// deriveDWS applies Eq. 1: A_d(64) = H_d(64), A_d(2^i) = H_d(2^i) −
// H_d(2^(i−1)); accesses that miss even the largest simulated cache are
// attributed to the largest working set.
func (v *valgrindState) deriveDWS() []WSBin {
	sizes := v.dws.Sizes()
	hits := v.dws.Hits()
	total := v.dws.Total()
	if total == 0 {
		return nil
	}
	bins := make([]WSBin, 0, len(sizes))
	var prev uint64
	for i, size := range sizes {
		a := hits[i] - prev
		prev = hits[i]
		bins = append(bins, WSBin{Bytes: size, Count: float64(a)})
	}
	// Cold / beyond-capacity accesses land in the largest working set.
	if miss := total - hits[len(hits)-1]; miss > 0 {
		bins[len(bins)-1].Count += float64(miss)
	}
	return trimZeroBins(bins)
}

// deriveIWS applies Eq. 2: E_i(2^j) = 16·[H_i(2^j) − H_i(2^(j−1))] for
// working sets above one line, with the 64-byte bucket absorbing the
// remainder so that ΣE equals the total dynamic instruction count.
func (v *valgrindState) deriveIWS() []WSBin {
	sizes := v.iws.Sizes()
	hits := v.iws.Hits()
	if v.instrs == 0 {
		return nil
	}
	bins := make([]WSBin, len(sizes))
	var sumAbove float64
	for j := len(sizes) - 1; j >= 1; j-- {
		e := float64(isa.InstrsPerLine) * float64(hits[j]-hits[j-1])
		bins[j] = WSBin{Bytes: sizes[j], Count: e}
		sumAbove += e
	}
	// Misses beyond the largest simulated i-cache: attribute to largest WS.
	if miss := v.iFetches - hits[len(hits)-1]; miss > 0 {
		e := float64(isa.InstrsPerLine) * float64(miss)
		bins[len(bins)-1].Count += e
		sumAbove += e
	}
	e64 := float64(v.instrs) - sumAbove
	if e64 < 0 {
		// Short fetch runs (jumpy code executes fewer than 16 instructions
		// per fetched line) over-attribute executions; renormalize so that
		// ΣE_i equals the dynamic instruction count Eq. 2 conserves.
		scale := float64(v.instrs) / sumAbove
		for j := range bins {
			bins[j].Count *= scale
		}
		e64 = 0
	}
	bins[0] = WSBin{Bytes: sizes[0], Count: e64}
	return trimZeroBins(bins)
}

// trimZeroBins drops empty buckets.
func trimZeroBins(bins []WSBin) []WSBin {
	out := bins[:0]
	for _, b := range bins {
		if b.Count > 0 {
			out = append(out, b)
		}
	}
	return out
}
