package profile

import (
	"sort"
	"strings"

	"ditto/internal/kernel"
	"ditto/internal/sim"
)

// stapState aggregates the SystemTap-style kernel observations: the syscall
// log (types, counts, byte/offset distributions, fd classes) and thread
// lifecycle events, from which it detects the network model and thread
// model of §4.3 and the syscall profile of §4.4.1.
type stapState struct {
	procName string

	ops      [kernel.NumSyscalls + 1]opAgg
	perTID   map[int]*tidAgg
	wakes    map[string]int
	spawns   int
	exits    int
	started  sim.Time
	haveTime bool
	lastTime sim.Time
}

type opAgg struct {
	count   uint64
	bytes   uint64
	files   map[string]uint64
	offsets []int64 // reservoir of observed offsets
}

type tidAgg struct {
	name    string
	ops     [kernel.NumSyscalls + 1]uint64
	first   sim.Time
	last    sim.Time
	exited  bool
	opOrder []kernel.SyscallOp // first occurrence order
}

func newStapState(procName string) *stapState {
	return &stapState{procName: procName, perTID: map[int]*tidAgg{},
		wakes: map[string]int{}}
}

// onSyscall processes one syscall event for the profiled process.
func (s *stapState) onSyscall(ev kernel.SyscallEvent) {
	if ev.Proc != s.procName {
		return
	}
	if !s.haveTime {
		s.started = ev.Time
		s.haveTime = true
	}
	s.lastTime = ev.Time
	a := &s.ops[ev.Op]
	a.count++
	a.bytes += uint64(ev.Bytes)
	if ev.FDClass != "" {
		if a.files == nil {
			a.files = map[string]uint64{}
		}
		a.files[ev.FDClass]++
	}
	if ev.Op == kernel.SysPread && len(a.offsets) < 4096 {
		a.offsets = append(a.offsets, ev.Offset)
	}
	t := s.perTID[ev.TID]
	if t == nil {
		t = &tidAgg{first: ev.Time}
		s.perTID[ev.TID] = t
	}
	if t.ops[ev.Op] == 0 {
		t.opOrder = append(t.opOrder, ev.Op)
	}
	t.ops[ev.Op]++
	t.last = ev.Time
}

// onThread processes one thread lifecycle event.
func (s *stapState) onThread(ev kernel.ThreadEvent) {
	if ev.Proc != s.procName {
		return
	}
	switch ev.Kind {
	case kernel.ThreadSpawn:
		s.spawns++
	case kernel.ThreadExit:
		s.exits++
		if t := s.perTID[ev.TID]; t != nil {
			t.exited = true
		}
	case kernel.ThreadWake:
		if ev.Source != "cpu" && ev.Source != "spawn" {
			s.wakes[ev.Source]++
		}
	}
}

// requests estimates handled requests: responses sent on sockets minus
// observed downstream request sends is not separable from the log alone, so
// the caller may override; the default estimate is socket sends.
func (s *stapState) requests() int {
	return int(s.ops[kernel.SysSend].count)
}

// networkModel classifies the server's network model (§4.3.1).
func (s *stapState) networkModel() string {
	recvs := s.ops[kernel.SysRecv].count
	epolls := s.ops[kernel.SysEpollWait].count
	if epolls > 0 && epolls*10 >= recvs {
		return "iomux"
	}
	// Non-blocking polling shows as many empty recv() probes.
	if recvs > 0 && s.ops[kernel.SysRecv].bytes == 0 {
		return "nonblocking"
	}
	return "blocking"
}

// callTree builds the per-thread call-graph tree for clustering: a root
// labeled by nothing with one child per syscall type in first-use order,
// each annotated with a log-quantized frequency child.
func (t *tidAgg) callTree() *Tree {
	root := &Tree{Label: "thread"}
	for _, op := range t.opOrder {
		n := &Tree{Label: op.String()}
		freq := 0
		for c := t.ops[op]; c > 1; c >>= 1 {
			freq++
		}
		n.Children = append(n.Children, &Tree{Label: freqLabel(freq)})
		root.Children = append(root.Children, n)
	}
	return root
}

func freqLabel(f int) string { return "f" + strings.Repeat("+", f/2) }

// skeleton derives the thread-model description: clusters of similar
// threads (tree-edit distance + agglomerative clustering), long- vs
// short-lived classification, worker counts and trigger points (§4.3.2).
func (s *stapState) skeleton() SkeletonProfile {
	window := s.lastTime - s.started
	var tids []int
	for tid := range s.perTID {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	trees := make([]*Tree, len(tids))
	for i, tid := range tids {
		trees[i] = s.perTID[tid].callTree()
	}
	nClusters := 0
	if len(trees) > 0 {
		dist := make([][]float64, len(trees))
		for i := range dist {
			dist[i] = make([]float64, len(trees))
			for j := range dist[i] {
				if i != j {
					dist[i][j] = float64(TreeEditDistance(trees[i], trees[j]))
				}
			}
		}
		assign := Agglomerate(dist, 2.0)
		seen := map[int]bool{}
		for _, a := range assign {
			seen[a] = true
		}
		nClusters = len(seen)
	}

	workers := 0
	dispatcher := false
	shortLived := 0
	for _, tid := range tids {
		t := s.perTID[tid]
		life := t.last - t.first
		long := !t.exited || (window > 0 && life*2 > window)
		handles := t.ops[kernel.SysSend] > 0
		accepts := t.ops[kernel.SysAccept] > 0
		switch {
		case long && handles:
			workers++
		case long && accepts && !handles:
			dispatcher = true
		case !long:
			shortLived++
		}
	}
	perConn := s.ops[kernel.SysClone].count > 0 && shortLived+workers > 1

	wakeTotal := 0
	for _, n := range s.wakes {
		wakeTotal += n
	}
	sources := map[string]float64{}
	for src, n := range s.wakes {
		sources[src] = float64(n) / float64(max(wakeTotal, 1))
	}
	return SkeletonProfile{
		NetworkModel:   s.networkModel(),
		Workers:        workers,
		Dispatcher:     dispatcher,
		PerConn:        perConn,
		ThreadClusters: nClusters,
		WakeSources:    sources,
	}
}

// syscallStats reduces the log to per-request syscall statistics for the
// generator's replay plan. Network and scheduling ops are summarized but
// tagged so the generator knows the skeleton already covers them.
func (s *stapState) syscallStats(requests int, files func(name string) int64) []SyscallStat {
	if requests < 1 {
		requests = 1
	}
	var out []SyscallStat
	for op := 0; op <= kernel.NumSyscalls; op++ {
		a := &s.ops[op]
		if a.count == 0 {
			continue
		}
		st := SyscallStat{
			Op:         kernel.SyscallOp(op),
			PerRequest: float64(a.count) / float64(requests),
			MeanBytes:  float64(a.bytes) / float64(a.count),
		}
		// Dominant fd target.
		var bestN uint64
		for f, n := range a.files {
			if n > bestN {
				bestN = n
				st.File = f
			}
		}
		if strings.HasPrefix(st.File, "file:") && files != nil {
			st.FileSize = files(strings.TrimPrefix(st.File, "file:"))
		}
		if kernel.SyscallOp(op) == kernel.SysPread {
			st.UniformOffsets = offsetsLookUniform(a.offsets, st.FileSize)
		}
		out = append(out, st)
	}
	return out
}

// offsetsLookUniform detects a uniform-random offset pattern: the observed
// offsets spread over most of the file with no dominant locality.
func offsetsLookUniform(offsets []int64, fileSize int64) bool {
	if len(offsets) < 8 || fileSize <= 0 {
		return false
	}
	lo, hi := offsets[0], offsets[0]
	for _, o := range offsets {
		if o < lo {
			lo = o
		}
		if o > hi {
			hi = o
		}
	}
	return float64(hi-lo) > 0.5*float64(fileSize)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
