package profile

import "ditto/internal/isa"

// Tree is a labeled ordered tree: the call-graph representation the thread
// model analyzer builds per thread (§4.3.2).
type Tree struct {
	Label    string
	Children []*Tree
}

// size counts nodes.
func (t *Tree) size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.size()
	}
	return n
}

// TreeEditDistance computes an ordered-tree edit distance (unit costs for
// relabel, insert, delete) by recursive forest decomposition with
// memoization — sufficient for the small per-thread call graphs clustered
// here (the paper cites Bille's survey [30]).
func TreeEditDistance(a, b *Tree) int {
	memo := map[[2]*Tree]int{}
	var treeDist func(x, y *Tree) int
	var forestDist func(xs, ys []*Tree) int
	forestDist = func(xs, ys []*Tree) int {
		if len(xs) == 0 {
			n := 0
			for _, y := range ys {
				n += y.size()
			}
			return n
		}
		if len(ys) == 0 {
			n := 0
			for _, x := range xs {
				n += x.size()
			}
			return n
		}
		// Match last trees, delete last of xs, or insert last of ys.
		lx, ly := xs[len(xs)-1], ys[len(ys)-1]
		match := forestDist(xs[:len(xs)-1], ys[:len(ys)-1]) + treeDist(lx, ly)
		del := forestDist(xs[:len(xs)-1], ys) + lx.size()
		ins := forestDist(xs, ys[:len(ys)-1]) + ly.size()
		return min3(match, del, ins)
	}
	treeDist = func(x, y *Tree) int {
		key := [2]*Tree{x, y}
		if d, ok := memo[key]; ok {
			return d
		}
		d := forestDist(x.Children, y.Children)
		if x.Label != y.Label {
			d++
		}
		memo[key] = d
		return d
	}
	return treeDist(a, b)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Agglomerate performs agglomerative clustering with complete linkage over
// a symmetric distance matrix, merging until the closest pair exceeds
// threshold. It returns a cluster index per element. The paper uses
// agglomerative clustering because the number of thread classes is unknown
// in advance.
func Agglomerate(dist [][]float64, threshold float64) []int {
	n := len(dist)
	assign := make([]int, n)
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
		assign[i] = i
	}
	cdist := func(a, b []int) float64 {
		worst := 0.0
		for _, i := range a {
			for _, j := range b {
				if dist[i][j] > worst {
					worst = dist[i][j]
				}
			}
		}
		return worst
	}
	for {
		bi, bj, best := -1, -1, threshold
		for i := 0; i < len(clusters); i++ {
			if clusters[i] == nil {
				continue
			}
			for j := i + 1; j < len(clusters); j++ {
				if clusters[j] == nil {
					continue
				}
				if d := cdist(clusters[i], clusters[j]); d <= best {
					bi, bj, best = i, j, d
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters[bj] = nil
	}
	id := 0
	for _, c := range clusters {
		if c == nil {
			continue
		}
		for _, e := range c {
			assign[e] = id
		}
		id++
	}
	return assign
}

// iformDistance measures micro-architectural dissimilarity between two
// iforms along the three axes of §4.4.2: functionality, operands, ALU
// usage.
func iformDistance(a, b isa.Op) float64 {
	fa, fb := &isa.Table[a], &isa.Table[b]
	d := 0.0
	if fa.Class != fb.Class {
		d += 1.0
	}
	if fa.Operands != fb.Operands {
		d += 0.4
	}
	if fa.ALUHeavy != fb.ALUHeavy {
		d += 0.4
	}
	if fa.Load != fb.Load {
		d += 0.3
	}
	if fa.Store != fb.Store {
		d += 0.3
	}
	return d
}

// ClusterIForms groups the ISA's iforms by hardware resource similarity
// using hierarchical clustering with the given distance threshold.
func ClusterIForms(threshold float64) [][]isa.Op {
	n := isa.NumOps
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = iformDistance(isa.Op(i), isa.Op(j))
		}
	}
	assign := Agglomerate(dist, threshold)
	byCluster := map[int][]isa.Op{}
	maxID := 0
	for op, id := range assign {
		byCluster[id] = append(byCluster[id], isa.Op(op))
		if id > maxID {
			maxID = id
		}
	}
	out := make([][]isa.Op, 0, maxID+1)
	for id := 0; id <= maxID; id++ {
		if ops := byCluster[id]; len(ops) > 0 {
			out = append(out, ops)
		}
	}
	return out
}
