package profile

import (
	"sort"

	"ditto/internal/isa"
	"ditto/internal/stats"
)

// sdeState accumulates per-instruction observations from user-level
// streams: dynamic iform counts, per-static-branch direction statistics,
// register dependency distances, access-pattern regularity, pointer-chase
// and shared-access fractions (§4.4.2–4.4.6).
type sdeState struct {
	instrs   uint64
	opCounts [isa.NumOps]uint64

	branches map[int32]*brStat

	lastWrite [isa.NumRegs]uint64
	lastRead  [isa.NumRegs]uint64
	rawH      [DepBins]uint64
	warH      [DepBins]uint64
	wawH      [DepBins]uint64

	memAcc      uint64
	sharedAcc   uint64
	stores      uint64
	loads       uint64
	ptrLoads    uint64
	regularAcc  uint64
	strideState map[uint64]uint64 // static PC -> last address

	repCount uint64
	repBytes uint64
}

type brStat struct {
	taken, total, trans uint64
	last                bool
	seen                bool
}

func newSDEState() *sdeState {
	return &sdeState{
		branches:    map[int32]*brStat{},
		strideState: map[uint64]uint64{},
	}
}

// observe processes one user-level instruction stream.
func (s *sdeState) observe(stream []isa.Instr) {
	for i := range stream {
		in := &stream[i]
		f := &isa.Table[in.Op]
		idx := s.instrs
		s.instrs++
		s.opCounts[in.Op]++

		if f.Branch {
			b := s.branches[in.BranchID]
			if b == nil {
				b = &brStat{}
				s.branches[in.BranchID] = b
			}
			b.total++
			if in.Taken {
				b.taken++
			}
			if b.seen && in.Taken != b.last {
				b.trans++
			}
			b.last = in.Taken
			b.seen = true
		}

		// Register dependency distances.
		if in.Src1 != isa.RegNone {
			s.readReg(in.Src1, idx)
		}
		if in.Src2 != isa.RegNone {
			s.readReg(in.Src2, idx)
		}
		if in.Dst != isa.RegNone {
			if lw := s.lastWrite[in.Dst]; lw > 0 {
				s.wawH[DepBinOf(idx-lw)]++
			}
			if lr := s.lastRead[in.Dst]; lr > 0 {
				s.warH[DepBinOf(idx-lr)]++
			}
			s.lastWrite[in.Dst] = idx
		}

		if f.Load || f.Store {
			s.memAcc++
			if in.Shared {
				s.sharedAcc++
			}
			if last, ok := s.strideState[in.PC]; ok && in.Addr == last+isa.LineBytes {
				s.regularAcc++
			}
			s.strideState[in.PC] = in.Addr
		}
		if f.Load {
			s.loads++
			if in.Op == isa.MOVptr {
				s.ptrLoads++
			}
		}
		if f.Store && !f.Load {
			s.stores++
		}
		if f.Rep {
			s.repCount++
			s.repBytes += uint64(in.RepCount)
		}
	}
}

func (s *sdeState) readReg(r isa.Reg, idx uint64) {
	if lw := s.lastWrite[r]; lw > 0 {
		s.rawH[DepBinOf(idx-lw)]++
	}
	s.lastRead[r] = idx
}

// mix reduces the dynamic opcode counts to instruction-mix clusters using
// hierarchical clustering over iform features (§4.4.2), returning each
// cluster's share with its most-executed member as representative.
func (s *sdeState) mix() []MixEntry {
	clusters := ClusterIForms(0.5)
	var out []MixEntry
	for _, cl := range clusters {
		var total, best uint64
		rep := cl[0]
		for _, op := range cl {
			c := s.opCounts[op]
			total += c
			if c > best {
				best = c
				rep = op
			}
		}
		if total == 0 {
			continue
		}
		out = append(out, MixEntry{Op: rep, Share: float64(total) / float64(s.instrs)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}

// branchBins quantizes per-branch taken and transition rates into the joint
// log-scale distribution, weighted by execution count.
func (s *sdeState) branchBins() ([]BranchBin, float64, int) {
	weights := map[[2]int]float64{}
	var branchExecs uint64
	for _, b := range s.branches {
		if b.total == 0 {
			continue
		}
		branchExecs += b.total
		takenRate := float64(b.taken) / float64(b.total)
		if takenRate > 0.5 {
			// Symmetric treatment: a mostly-taken branch is as predictable
			// as a mostly-not-taken one; clone its bias magnitude.
			takenRate = 1 - takenRate
		}
		transRate := float64(b.trans) / float64(b.total)
		m := stats.QuantizeRateLog2(takenRate)
		n := stats.QuantizeRateLog2(transRate)
		weights[[2]int{m, n}] += float64(b.total)
	}
	var bins []BranchBin
	for k, w := range weights {
		bins = append(bins, BranchBin{M: k[0], N: k[1], Weight: w / float64(branchExecs)})
	}
	sort.Slice(bins, func(i, j int) bool {
		if bins[i].M != bins[j].M {
			return bins[i].M < bins[j].M
		}
		return bins[i].N < bins[j].N
	})
	share := 0.0
	if s.instrs > 0 {
		share = float64(branchExecs) / float64(s.instrs)
	}
	return bins, share, len(s.branches)
}

func normalizeDep(h [DepBins]uint64) DepHist {
	var total uint64
	for _, v := range h {
		total += v
	}
	var out DepHist
	if total == 0 {
		return out
	}
	for i, v := range h {
		out.Bins[i] = float64(v) / float64(total)
	}
	return out
}
