// Package profile implements Ditto's profiling stage (§4 of the paper): the
// observation-driven analyzers that reduce an application's executed
// instruction streams (the Intel SDE role), cache working-set behaviour
// (the Valgrind role), syscall and thread activity (the SystemTap role) and
// distributed traces (the Jaeger role) into the platform-independent
// AppProfile that the generator consumes. Profilers only use observation
// APIs; they never read an application's hidden parameters.
package profile

import (
	"encoding/json"

	"ditto/internal/isa"
	"ditto/internal/kernel"
)

// WSBin is one working-set bucket: Count events per request attributed to a
// working set of Bytes (A_d of Eq. 1 for data, E_i of Eq. 2 for
// instructions).
type WSBin struct {
	Bytes int     `json:"bytes"`
	Count float64 `json:"count"`
}

// MixEntry is one instruction-mix cluster: a representative opcode and its
// share of dynamic instructions.
type MixEntry struct {
	Op    isa.Op  `json:"op"`
	Share float64 `json:"share"`
}

// BranchBin is one (taken rate 2^-M, transition rate 2^-N) class weight in
// the quantized joint distribution of §4.4.3.
type BranchBin struct {
	M      int     `json:"m"`
	N      int     `json:"n"`
	Weight float64 `json:"weight"`
}

// DepBins is the number of dependency-distance buckets: distances quantized
// in powers of two from 1 to 1024 (§4.4.6).
const DepBins = 11

// DepHist is a normalized dependency-distance histogram.
type DepHist struct {
	Bins [DepBins]float64 `json:"bins"`
}

// DepBinOf buckets a distance.
func DepBinOf(d uint64) int {
	if d < 1 {
		d = 1
	}
	b := 0
	for d > 1 && b < DepBins-1 {
		d >>= 1
		b++
	}
	return b
}

// DepBinDistance returns the representative distance of bucket b.
func DepBinDistance(b int) int { return 1 << b }

// BodyProfile is the platform-independent description of an application's
// user-level request body.
type BodyProfile struct {
	InstrsPerRequest float64     `json:"instrs_per_request"`
	Mix              []MixEntry  `json:"mix"`
	BranchShare      float64     `json:"branch_share"`
	MemShare         float64     `json:"mem_share"`
	Branches         []BranchBin `json:"branches"`
	StaticBranches   int         `json:"static_branches"`
	RAW, WAR, WAW    DepHist     `json:"-"`
	IWS              []WSBin     `json:"iws"` // instruction executions per i-working-set
	DWS              []WSBin     `json:"dws"` // data accesses per d-working-set
	RegularFrac      float64     `json:"regular_frac"`
	PointerFrac      float64     `json:"pointer_frac"`
	SharedFrac       float64     `json:"shared_frac"`
	StoreFrac        float64     `json:"store_frac"` // stores per memory access
	RepFrac          float64     `json:"rep_frac"`   // REP ops per memory access
	RepBytesMean     float64     `json:"rep_bytes_mean"`
}

// SyscallStat is the profiled behaviour of one syscall type (§4.4.1).
type SyscallStat struct {
	Op             kernel.SyscallOp `json:"op"`
	PerRequest     float64          `json:"per_request"`
	MeanBytes      float64          `json:"mean_bytes"`
	File           string           `json:"file"`
	FileSize       int64            `json:"file_size"`
	UniformOffsets bool             `json:"uniform_offsets"`
}

// SkeletonProfile describes the detected network and thread models (§4.3).
type SkeletonProfile struct {
	NetworkModel   string             `json:"network_model"` // "iomux", "blocking", "nonblocking"
	Workers        int                `json:"workers"`       // long-lived request-handling threads
	Dispatcher     bool               `json:"dispatcher"`    // accept-only thread present
	PerConn        bool               `json:"per_conn"`      // dynamic thread per connection
	ThreadClusters int                `json:"thread_clusters"`
	WakeSources    map[string]float64 `json:"wake_sources"`
}

// TargetMetrics snapshots the original application's measured performance
// counters during profiling — the fine-tuner's calibration target (§4.5).
type TargetMetrics struct {
	IPC         float64 `json:"ipc"`
	BranchMiss  float64 `json:"branch_miss"`
	L1iMiss     float64 `json:"l1i_miss"`
	L1dMiss     float64 `json:"l1d_miss"`
	L2Miss      float64 `json:"l2_miss"`
	L3Miss      float64 `json:"l3_miss"`
	KernelShare float64 `json:"kernel_share"`
}

// AppProfile is everything Ditto extracts about one application or tier.
type AppProfile struct {
	Name          string          `json:"name"`
	Requests      int             `json:"requests"`
	ReqBytesMean  float64         `json:"req_bytes_mean"`
	RespBytesMean float64         `json:"resp_bytes_mean"`
	Skeleton      SkeletonProfile `json:"skeleton"`
	Syscalls      []SyscallStat   `json:"syscalls"`
	Body          BodyProfile     `json:"body"`
	Target        TargetMetrics   `json:"target"`
}

// MarshalJSON via the default encoder; provided as explicit helpers so the
// CLI tools share one format.
func (p *AppProfile) Encode() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// DecodeAppProfile parses an encoded profile.
func DecodeAppProfile(b []byte) (*AppProfile, error) {
	var p AppProfile
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
