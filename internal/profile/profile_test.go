package profile

import (
	"math"
	"testing"

	"ditto/internal/app"
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/loadgen"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// profileApp runs a server under closed-loop load, attaches the profiler
// after warmup, and returns the finished profile.
func profileApp(t *testing.T, build func(m *platform.Machine) app.App, conns int) *AppProfile {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	srv := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(8))
	cli := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(8))
	cl.Add(srv)
	cl.Add(cli)
	a := build(srv)
	a.Start()
	// Attach before load so the skeleton analyzer observes connection
	// establishment and thread spawning (the paper profiles while
	// "experimenting with different connections, QPS").
	p := NewProfiler(a.Name())
	p.MaxDataWS = 64 << 20
	p.Attach(a.Proc())
	g := loadgen.New(loadgen.Config{Name: "lg", Machine: cli, Target: srv.Kernel,
		Port: a.Port(), Conns: conns, Seed: 5})
	g.Start()
	eng.RunUntil(150 * sim.Millisecond)
	prof := p.Finish()

	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
	return prof
}

func TestProfileMemcachedSkeleton(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	prof := profileApp(t, func(m *platform.Machine) app.App {
		return app.NewMemcached(m, 11211, 11)
	}, 8)
	if prof.Skeleton.NetworkModel != "iomux" {
		t.Fatalf("network model = %q, want iomux", prof.Skeleton.NetworkModel)
	}
	if prof.Skeleton.Workers != 4 {
		t.Fatalf("workers = %d, want 4", prof.Skeleton.Workers)
	}
	if !prof.Skeleton.Dispatcher {
		t.Fatal("dispatcher thread not detected")
	}
	if prof.Skeleton.PerConn {
		t.Fatal("memcached misdetected as thread-per-connection")
	}
	if prof.Requests < 50 {
		t.Fatalf("requests = %d", prof.Requests)
	}
	if prof.RespBytesMean < 3000 {
		t.Fatalf("response bytes mean = %v, want ≈ 4KB value", prof.RespBytesMean)
	}
	if prof.Skeleton.ThreadClusters < 2 {
		t.Fatalf("thread clusters = %d, want ≥ 2 (dispatcher vs workers)", prof.Skeleton.ThreadClusters)
	}
}

func TestProfileMongoDBSkeletonAndIO(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	prof := profileApp(t, func(m *platform.Machine) app.App {
		return app.NewMongoDB(m, 27017, 12)
	}, 4)
	if prof.Skeleton.NetworkModel != "blocking" {
		t.Fatalf("network model = %q, want blocking", prof.Skeleton.NetworkModel)
	}
	if !prof.Skeleton.PerConn {
		t.Fatal("thread-per-connection not detected")
	}
	var pread *SyscallStat
	for i := range prof.Syscalls {
		if prof.Syscalls[i].Op == kernel.SysPread {
			pread = &prof.Syscalls[i]
		}
	}
	if pread == nil {
		t.Fatal("no pread stats")
	}
	if math.Abs(pread.PerRequest-1) > 0.2 {
		t.Fatalf("pread per request = %v, want ≈ 1", pread.PerRequest)
	}
	if pread.FileSize != 40<<30 {
		t.Fatalf("file size = %d, want 40GB", pread.FileSize)
	}
	if !pread.UniformOffsets {
		t.Fatal("uniform offsets not detected")
	}
	if math.Abs(pread.MeanBytes-40960) > 2000 {
		t.Fatalf("pread bytes = %v", pread.MeanBytes)
	}
}

func TestProfileRedisBody(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	prof := profileApp(t, func(m *platform.Machine) app.App {
		return app.NewRedis(m, 6379, 13)
	}, 4)
	b := prof.Body
	// Redis body: parse(380) + dict(720) + respond(220) ≈ 1300.
	if b.InstrsPerRequest < 900 || b.InstrsPerRequest > 1900 {
		t.Fatalf("instrs/request = %v", b.InstrsPerRequest)
	}
	if len(b.Mix) < 4 {
		t.Fatalf("mix clusters = %d", len(b.Mix))
	}
	var mixSum float64
	for _, m := range b.Mix {
		mixSum += m.Share
	}
	if math.Abs(mixSum-1) > 0.01 {
		t.Fatalf("mix shares sum to %v", mixSum)
	}
	if b.BranchShare < 0.05 || b.BranchShare > 0.3 {
		t.Fatalf("branch share = %v", b.BranchShare)
	}
	if b.PointerFrac < 0.1 {
		t.Fatalf("pointer-chase fraction = %v, want ≳ 0.2 for dict walk", b.PointerFrac)
	}
	if b.SharedFrac > 0.02 {
		t.Fatalf("shared fraction = %v, redis is single-threaded", b.SharedFrac)
	}
	// Eq. 1 conservation: ΣA_d ≈ memory accesses per request.
	var dwsSum float64
	for _, bin := range b.DWS {
		dwsSum += bin.Count
	}
	memPerReq := b.MemShare * b.InstrsPerRequest
	if dwsSum < memPerReq*0.8 {
		t.Fatalf("ΣA_d = %v vs mem/req ≈ %v", dwsSum, memPerReq)
	}
	// Eq. 2 conservation: ΣE_i ≈ instructions per request.
	var iwsSum float64
	for _, bin := range b.IWS {
		iwsSum += bin.Count
	}
	if math.Abs(iwsSum-b.InstrsPerRequest) > 0.15*b.InstrsPerRequest {
		t.Fatalf("ΣE_i = %v vs instrs/req %v", iwsSum, b.InstrsPerRequest)
	}
	// Dependency histograms normalized.
	var raw float64
	for _, v := range b.RAW.Bins {
		raw += v
	}
	if math.Abs(raw-1) > 0.01 {
		t.Fatalf("RAW histogram sums to %v", raw)
	}
	// Branch bins normalized.
	var bw float64
	for _, bin := range b.Branches {
		bw += bin.Weight
	}
	if math.Abs(bw-1) > 0.01 {
		t.Fatalf("branch weights sum to %v", bw)
	}
	if b.StaticBranches < 50 {
		t.Fatalf("static branches = %d", b.StaticBranches)
	}
	// Target metrics populated.
	if prof.Target.IPC <= 0 || prof.Target.IPC > 4 {
		t.Fatalf("target IPC = %v", prof.Target.IPC)
	}
	if prof.Target.KernelShare <= 0.2 {
		t.Fatalf("kernel share = %v", prof.Target.KernelShare)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline run; skipped in -short")
	}
	prof := profileApp(t, func(m *platform.Machine) app.App {
		return app.NewRedis(m, 6379, 14)
	}, 2)
	data, err := prof.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAppProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != prof.Name || back.Requests != prof.Requests {
		t.Fatal("round trip lost fields")
	}
	if len(back.Body.Mix) != len(prof.Body.Mix) {
		t.Fatal("round trip lost mix")
	}
}

func TestDepBinOf(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 5000: 10}
	for d, want := range cases {
		if got := DepBinOf(d); got != want {
			t.Errorf("DepBinOf(%d) = %d, want %d", d, got, want)
		}
	}
	if DepBinDistance(3) != 8 {
		t.Fatal("DepBinDistance wrong")
	}
}

func TestTreeEditDistance(t *testing.T) {
	a := &Tree{Label: "r", Children: []*Tree{{Label: "x"}, {Label: "y"}}}
	b := &Tree{Label: "r", Children: []*Tree{{Label: "x"}, {Label: "y"}}}
	if d := TreeEditDistance(a, b); d != 0 {
		t.Fatalf("identical trees distance = %d", d)
	}
	c := &Tree{Label: "r", Children: []*Tree{{Label: "x"}}}
	if d := TreeEditDistance(a, c); d != 1 {
		t.Fatalf("one-deletion distance = %d", d)
	}
	e := &Tree{Label: "r", Children: []*Tree{{Label: "x"}, {Label: "z"}}}
	if d := TreeEditDistance(a, e); d != 1 {
		t.Fatalf("one-relabel distance = %d", d)
	}
	empty := &Tree{Label: "q"}
	if d := TreeEditDistance(a, empty); d != 3 {
		t.Fatalf("to-empty distance = %d", d)
	}
}

func TestAgglomerate(t *testing.T) {
	// Two well-separated groups: {0,1}, {2,3}.
	dist := [][]float64{
		{0, 0.1, 5, 5},
		{0.1, 0, 5, 5},
		{5, 5, 0, 0.2},
		{5, 5, 0.2, 0},
	}
	assign := Agglomerate(dist, 1.0)
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Fatalf("assign = %v", assign)
	}
	// Threshold below all distances: everything separate.
	sep := Agglomerate(dist, 0.05)
	seen := map[int]bool{}
	for _, a := range sep {
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Fatalf("low threshold should keep singletons: %v", sep)
	}
}

func TestClusterIForms(t *testing.T) {
	clusters := ClusterIForms(0.5)
	if len(clusters) < 8 {
		t.Fatalf("iform clusters = %d, too coarse", len(clusters))
	}
	find := func(op isa.Op) int {
		for i, cl := range clusters {
			for _, o := range cl {
				if o == op {
					return i
				}
			}
		}
		return -1
	}
	// Simple ALU ops cluster together; divides do not join them.
	if find(isa.ADDrr) != find(isa.SUBrr) {
		t.Fatal("add and sub should share a cluster")
	}
	if find(isa.ADDrr) == find(isa.DIVr) {
		t.Fatal("add and div must not share a cluster")
	}
	if find(isa.MOVload) == find(isa.MOVstore) {
		t.Fatal("loads and stores differ in class behaviour here")
	}
	total := 0
	for _, cl := range clusters {
		total += len(cl)
	}
	if total != isa.NumOps {
		t.Fatalf("clusters cover %d of %d ops", total, isa.NumOps)
	}
}
