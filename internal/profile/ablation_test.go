package profile

import (
	"math"
	"testing"

	"ditto/internal/app"
	"ditto/internal/branch"
	"ditto/internal/cache"
	"ditto/internal/isa"
)

// phaseTrace produces an application-like memory trace from a hidden-
// parameter phase (mixed working sets, partly sequential, partly random).
func phaseTrace(n int) []uint64 {
	ph := app.NewPhase(app.PhaseSpec{
		Name: "ablate", MeanInstrs: n, FootprintBytes: 16 << 10,
		Weights:    app.ClassWeights{Load: 0.4, Store: 0.1, ALU: 0.5},
		BranchFrac: 0.1,
		WorkingSets: []app.WorkingSet{
			{Bytes: 8 << 10, Frac: 0.4},
			{Bytes: 256 << 10, Frac: 0.4},
			{Bytes: 4 << 20, Frac: 0.2},
		},
		RegularFrac: 0.4, DepChain: 2,
	}, 0x400000, 0x10000000, 99)
	var trace []uint64
	for _, in := range ph.Emit(nil, 1) {
		f := &isa.Table[in.Op]
		if (f.Load || f.Store) && in.Addr != 0 {
			trace = append(trace, in.Addr)
		}
	}
	return trace
}

// The §4.4.4 robustness claim: working-set profiles barely change when the
// cache associativity changes (the paper measures an average 1.9% miss-rate
// error across applications). We replay one application-like trace against
// 4/8/16-way caches of equal capacity and require the miss rates to agree
// within a few percent.
func TestAblationCacheAssociativityInsensitivity(t *testing.T) {
	trace := phaseTrace(400000)
	if len(trace) < 50000 {
		t.Fatalf("trace too small: %d", len(trace))
	}
	missRate := func(assoc int) float64 {
		c := cache.New(cache.Config{Name: "ab", Size: 512 << 10, Assoc: assoc,
			Policy: cache.LRU})
		miss := 0
		for _, a := range trace {
			if !c.Access(a) {
				miss++
			}
		}
		return float64(miss) / float64(len(trace))
	}
	m4, m8, m16 := missRate(4), missRate(8), missRate(16)
	for _, pair := range [][2]float64{{m4, m8}, {m8, m16}, {m4, m16}} {
		diff := math.Abs(pair[0] - pair[1])
		if diff > 0.05 {
			t.Fatalf("associativity sensitivity too high: 4w=%v 8w=%v 16w=%v", m4, m8, m16)
		}
	}
}

// The §4.4.3 mechanism must reproduce *predictability*, not just rates: for
// a fixed taken rate, branches with higher transition rates (lower N) are
// harder for a real predictor. The generated bitmask branches must show the
// same ordering under the gshare/bimodal unit.
func TestAblationBitmaskPredictability(t *testing.T) {
	accuracy := func(m, n int) float64 {
		p := branch.NewPredictor(4096)
		// A population of branches de-phased like generated code.
		var bbs []*branch.BitmaskBranch
		for i := 0; i < 32; i++ {
			bb := branch.NewBitmaskBranch(m, n)
			bb.SetPhase(uint64(i * 37))
			bbs = append(bbs, bb)
		}
		correct, total := 0, 0
		for round := 0; round < 2000; round++ {
			for i, bb := range bbs {
				pc := uint64(0x400000 + i*64)
				if p.Access(pc, bb.Next()) {
					correct++
				}
				total++
			}
		}
		return float64(correct) / float64(total)
	}
	// Same bias (2^-2), increasing transition period ⇒ increasing accuracy.
	a2 := accuracy(2, 2)
	a5 := accuracy(2, 5)
	a8 := accuracy(2, 8)
	if !(a2 <= a5+0.02 && a5 <= a8+0.02) {
		t.Fatalf("predictability not monotone in N: n2=%v n5=%v n8=%v", a2, a5, a8)
	}
	if a8 < 0.9 {
		t.Fatalf("low-transition branches should be easy: %v", a8)
	}
}

// Fig. 4's sequential layout is what guarantees the Eq. 1 hit/miss
// behaviour; an ablation replacing it with uniform-random addresses over
// the same array must produce a *different* (worse-matching) hit profile in
// mid-sized caches, which is why the paper hard-codes the sweep.
func TestAblationFig4LayoutVsRandom(t *testing.T) {
	const ws = 256 << 10
	seqMiss := func() float64 {
		c := cache.New(cache.Config{Name: "s", Size: ws, Assoc: 8, Policy: cache.LRU})
		miss, total := 0, 0
		for pass := 0; pass < 4; pass++ {
			for off := uint64(0); off < ws; off += 64 {
				total++
				if !c.Access(off) {
					miss++
				}
			}
		}
		return float64(miss) / float64(total)
	}()
	// Sequential sweep over a WS equal to capacity: warm passes all hit.
	if seqMiss > 0.3 {
		t.Fatalf("sequential sweep should mostly hit once warm: %v", seqMiss)
	}
	// The same number of accesses over a 2× larger random range has a
	// clearly different profile — the property the layout preserves.
	rndMiss := func() float64 {
		c := cache.New(cache.Config{Name: "r", Size: ws, Assoc: 8, Policy: cache.LRU})
		miss, total := 0, 0
		state := uint64(12345)
		for i := 0; i < 4*ws/64; i++ {
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			total++
			if !c.Access(state * 0x2545F4914F6CDD1D % (2 * ws) &^ 63) {
				miss++
			}
		}
		return float64(miss) / float64(total)
	}()
	if rndMiss <= seqMiss {
		t.Fatalf("random layout should miss more at capacity: seq=%v rnd=%v", seqMiss, rndMiss)
	}
}
