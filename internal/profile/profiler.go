package profile

import (
	"ditto/internal/cpu"
	"ditto/internal/isa"
	"ditto/internal/kernel"
)

// Profiler drives all of Ditto's analyzers against one running process. The
// intended use mirrors the paper's workflow: run the application under a
// representative load, Attach at the start of the measurement window, and
// call Finish afterwards to obtain the AppProfile.
type Profiler struct {
	Name string
	// MaxDataWS / MaxInstrWS bound the simulated working-set sweep
	// (Valgrind's cache-size range).
	MaxDataWS  int
	MaxInstrWS int

	sde  *sdeState
	vg   *valgrindState
	stap *stapState

	proc        *kernel.Proc
	k           *kernel.Kernel
	base        cpu.Counters
	baseObs     uint64
	baseMod     uint64
	reqOverride int
}

// NewProfiler builds a profiler for the named process.
func NewProfiler(name string) *Profiler {
	return &Profiler{
		Name:       name,
		MaxDataWS:  256 << 20,
		MaxInstrWS: 1 << 20,
	}
}

// Attach installs observation hooks on the process and its kernel and
// snapshots the hardware counters. Call once, at measurement start.
func (p *Profiler) Attach(proc *kernel.Proc) {
	p.proc = proc
	p.k = proc.Kernel()
	p.base = proc.Counters
	p.baseObs = proc.ObservedBodies
	p.baseMod = proc.ModeledBodies
	p.sde = newSDEState()
	p.vg = newValgrindState(p.MaxDataWS, p.MaxInstrWS)
	p.stap = newStapState(proc.Name)
	proc.ObserveInstrs(func(s []isa.Instr) {
		p.sde.observe(s)
		p.vg.observe(s)
	})
	p.k.ObserveSyscalls(p.stap.onSyscall)
	p.k.ObserveThreads(p.stap.onThread)
}

// SetRequests overrides the request count used for per-request
// normalization — for microservice tiers it comes from the distributed
// traces rather than the syscall log.
func (p *Profiler) SetRequests(n int) { p.reqOverride = n }

// Finish reduces the observations to an AppProfile.
func (p *Profiler) Finish() *AppProfile {
	requests := p.reqOverride
	if requests <= 0 {
		requests = p.stap.requests()
	}
	if requests < 1 {
		requests = 1
	}
	prof := &AppProfile{Name: p.Name, Requests: requests}

	// Skeleton and syscalls (SystemTap).
	prof.Skeleton = p.stap.skeleton()
	prof.Syscalls = p.stap.syscallStats(requests, func(name string) int64 {
		if f := p.k.LookupFile(name); f != nil {
			return f.Size
		}
		return 0
	})
	if recv := p.stap.ops[kernel.SysRecv]; recv.count > 0 {
		prof.ReqBytesMean = float64(recv.bytes) / float64(recv.count)
	}
	if send := p.stap.ops[kernel.SysSend]; send.count > 0 {
		prof.RespBytesMean = float64(send.bytes) / float64(send.count)
	}

	// Body (SDE + Valgrind). Under sampled steady state the observer saw
	// only executed bodies; per-request absolutes scale back up by the
	// observed/(observed+modeled) ratio, while every fraction and
	// normalized histogram below is ratio-of-observed and needs no
	// correction. In full execution modeled is zero and obsScale is 1.
	obsScale := 1.0
	if obs, mod := p.proc.ObservedBodies-p.baseObs, p.proc.ModeledBodies-p.baseMod; obs > 0 && mod > 0 {
		obsScale = float64(obs+mod) / float64(obs)
	}
	b := &prof.Body
	b.InstrsPerRequest = float64(p.sde.instrs) * obsScale / float64(requests)
	b.Mix = p.sde.mix()
	b.Branches, b.BranchShare, b.StaticBranches = p.sde.branchBins()
	b.RAW = normalizeDep(p.sde.rawH)
	b.WAR = normalizeDep(p.sde.warH)
	b.WAW = normalizeDep(p.sde.wawH)
	if p.sde.instrs > 0 {
		b.MemShare = float64(p.sde.memAcc) / float64(p.sde.instrs)
	}
	if p.sde.memAcc > 0 {
		b.SharedFrac = float64(p.sde.sharedAcc) / float64(p.sde.memAcc)
		b.RegularFrac = float64(p.sde.regularAcc) / float64(p.sde.memAcc)
		b.StoreFrac = float64(p.sde.stores) / float64(p.sde.memAcc)
		b.RepFrac = float64(p.sde.repCount) / float64(p.sde.memAcc)
	}
	if p.sde.loads > 0 {
		b.PointerFrac = float64(p.sde.ptrLoads) / float64(p.sde.loads)
	}
	if p.sde.repCount > 0 {
		b.RepBytesMean = float64(p.sde.repBytes) / float64(p.sde.repCount)
	}
	perReq := obsScale / float64(requests)
	for _, bin := range p.vg.deriveDWS() {
		b.DWS = append(b.DWS, WSBin{Bytes: bin.Bytes, Count: bin.Count * perReq})
	}
	for _, bin := range p.vg.deriveIWS() {
		b.IWS = append(b.IWS, WSBin{Bytes: bin.Bytes, Count: bin.Count * perReq})
	}

	// Calibration target (perf counters over the profiling window).
	var delta cpu.Counters
	delta = p.proc.Counters
	sub := func(a, b uint64) uint64 { return a - b }
	delta.Instrs = sub(delta.Instrs, p.base.Instrs)
	delta.KernelInstrs = sub(delta.KernelInstrs, p.base.KernelInstrs)
	delta.Cycles -= p.base.Cycles
	delta.Branches = sub(delta.Branches, p.base.Branches)
	delta.Mispred = sub(delta.Mispred, p.base.Mispred)
	delta.L1iAcc = sub(delta.L1iAcc, p.base.L1iAcc)
	delta.L1iMiss = sub(delta.L1iMiss, p.base.L1iMiss)
	delta.L1dAcc = sub(delta.L1dAcc, p.base.L1dAcc)
	delta.L1dMiss = sub(delta.L1dMiss, p.base.L1dMiss)
	delta.L2Acc = sub(delta.L2Acc, p.base.L2Acc)
	delta.L2Miss = sub(delta.L2Miss, p.base.L2Miss)
	delta.L3Acc = sub(delta.L3Acc, p.base.L3Acc)
	delta.L3Miss = sub(delta.L3Miss, p.base.L3Miss)
	prof.Target = TargetMetrics{
		IPC:         delta.IPC(),
		BranchMiss:  delta.BranchMissRate(),
		L1iMiss:     delta.L1iMissRate(),
		L1dMiss:     delta.L1dMissRate(),
		L2Miss:      delta.L2MissRate(),
		L3Miss:      delta.L3MissRate(),
		KernelShare: delta.KernelShare(),
	}
	return prof
}
