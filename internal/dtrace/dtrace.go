// Package dtrace is the distributed-tracing substrate (the Jaeger/Zipkin
// analog of §4.2): services record spans with parent links and a collector
// samples whole traces. Ditto's topology analyzer consumes the collected
// spans to reconstruct the RPC dependency graph.
package dtrace

import "ditto/internal/sim"

// TraceID identifies one end-to-end request.
type TraceID uint64

// SpanID identifies one service invocation within a trace.
type SpanID uint64

// Span is one recorded service invocation.
type Span struct {
	Trace     TraceID
	ID        SpanID
	Parent    SpanID // 0 for root spans
	Service   string
	Operation string
	Start     sim.Time
	End       sim.Time
	// Message-size tags, as production tracing commonly records.
	ReqBytes  int
	RespBytes int
	// DiskBytes is the device traffic (reads + writes) this invocation
	// charged to its process — how storage-tier disk contention is
	// attributed per tier when profiling a write-heavy service.
	DiskBytes uint64
	// Resilience tags. On a server-side span, Attempt and Hedged identify
	// which delivery of the request this invocation served; on a client
	// (parent) span, Retries/DownErrors/BreakerOpen summarize how its
	// downstream calls degraded. Failed marks an invocation that returned an
	// error (its own shed, or a downstream failure it propagated).
	Attempt     uint8
	Hedged      bool
	Failed      bool
	BreakerOpen bool
	Retries     uint16
	DownErrors  uint16
}

// Duration returns the span's wall time.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Collector samples and stores traces. Sampling keeps 1-in-N traces, the
// low-overhead configuration the paper assumes for production tracing.
//
// The sampling decision is pure arithmetic over the monotonically-assigned
// trace ids — every sampleEvery-th id is kept — so StartTrace and Record
// allocate nothing: the span-record hot path stays allocation-free once the
// span store has warmed up (or been sized with Reserve).
//
// A Collector used from a sharded simulation must be touched only through
// per-shard Arms (see Arm): the collector's own counters and span store are
// single-timeline state, while each arm is owned by one machine's shard.
type Collector struct {
	sampleEvery int
	nextTrace   uint64
	nextSpan    uint64
	floorTrace  uint64 // traces at or below this id predate the last Reset
	spans       []Span
	arms        map[uint64]*Arm
	armKeys     []uint64 // registered arm keys, kept sorted
}

// armShift partitions trace and span ids: the top bits carry the arm key,
// the low armShift bits a per-arm sequence. Key 0 is the collector's own
// (legacy) id space.
const armShift = 40

// Arm is one shard-local recording surface of a shared Collector. Every
// machine (shard) gets its own arm, keyed by a small stable integer; ids the
// arm hands out are prefixed with that key, so id streams from different
// shards never collide and the sampling decision stays a pure function of
// the id. Arms are registered at setup time (single-threaded); during a run
// each arm is touched only by its own shard.
type Arm struct {
	c          *Collector
	key        uint64
	nextTrace  uint64
	nextSpan   uint64
	floorTrace uint64
	spans      []Span
}

// Arm returns the recording arm for key (1..2^24-1), registering it on first
// use. Registration mutates the collector and must happen at setup time, not
// mid-run from a shard.
func (c *Collector) Arm(key uint64) *Arm {
	if key == 0 || key >= 1<<(64-armShift) {
		panic("dtrace: arm key out of range")
	}
	if a := c.arms[key]; a != nil {
		return a
	}
	if c.arms == nil {
		c.arms = map[uint64]*Arm{}
	}
	a := &Arm{c: c, key: key}
	c.arms[key] = a
	i := 0
	for i < len(c.armKeys) && c.armKeys[i] < key {
		i++
	}
	c.armKeys = append(c.armKeys, 0)
	copy(c.armKeys[i+1:], c.armKeys[i:])
	c.armKeys[i] = key
	return a
}

// StartTrace allocates an arm-prefixed trace id.
// ditto:noalloc
func (a *Arm) StartTrace() TraceID {
	a.nextTrace++
	return TraceID(a.key<<armShift | a.nextTrace)
}

// NextSpanID allocates an arm-prefixed span id.
// ditto:noalloc
func (a *Arm) NextSpanID() SpanID {
	a.nextSpan++
	return SpanID(a.key<<armShift | a.nextSpan)
}

// Record stores a span in the arm's shard-local buffer if the span's trace
// is sampled. The trace may have been started by another arm (a downstream
// service records spans of a frontend-started trace); the decision is pure
// arithmetic on the id, so no cross-shard state is consulted.
// ditto:noalloc
func (a *Arm) Record(s Span) {
	if a.c.isSampled(s.Trace) {
		a.spans = append(a.spans, s)
	}
}

// NewCollector builds a collector keeping every sampleEvery-th trace
// (minimum 1 = keep everything).
func NewCollector(sampleEvery int) *Collector {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Collector{sampleEvery: sampleEvery}
}

// StartTrace allocates a trace id; its sampling fate is a deterministic
// function of the id.
// ditto:noalloc
func (c *Collector) StartTrace() TraceID {
	c.nextTrace++
	return TraceID(c.nextTrace)
}

// isSampled reports the sampling decision for a trace id: every
// sampleEvery-th id started after the owning id space's last Reset is kept.
// Arm-prefixed ids resolve their own floor; the arms map is immutable during
// a run, so this is safe from any shard.
func (c *Collector) isSampled(id TraceID) bool {
	seq := uint64(id) & (1<<armShift - 1)
	floor := c.floorTrace
	if key := uint64(id) >> armShift; key != 0 {
		a := c.arms[key]
		if a == nil {
			return false
		}
		floor = a.floorTrace
	}
	return seq > floor && seq%uint64(c.sampleEvery) == 0
}

// NextSpanID allocates a span id.
// ditto:noalloc
func (c *Collector) NextSpanID() SpanID {
	c.nextSpan++
	return SpanID(c.nextSpan)
}

// Record stores a span if its trace is sampled. Growth is amortized away
// by Reserve; the steady-state append reuses capacity.
// ditto:noalloc
func (c *Collector) Record(s Span) {
	if c.isSampled(s.Trace) {
		c.spans = append(c.spans, s)
	}
}

// Reserve grows the span store to hold at least n spans without further
// allocation — how long-running harnesses keep Record off the allocator.
func (c *Collector) Reserve(n int) {
	if cap(c.spans)-len(c.spans) < n {
		grown := make([]Span, len(c.spans), len(c.spans)+n)
		copy(grown, c.spans)
		c.spans = grown
	}
}

// Spans returns the collected spans: the collector's own buffer followed by
// each arm's buffer in ascending key order, each in record order. The
// concatenation is deterministic whatever interleaving the shards ran with.
// Without arms the slice aliases the collector's storage; with arms it is a
// fresh copy. Either way it is invalidated by Reset.
func (c *Collector) Spans() []Span {
	if len(c.arms) == 0 {
		return c.spans
	}
	n := len(c.spans)
	for _, key := range c.armKeys {
		n += len(c.arms[key].spans)
	}
	out := make([]Span, 0, n)
	out = append(out, c.spans...)
	for _, key := range c.armKeys {
		out = append(out, c.arms[key].spans...)
	}
	return out
}

// Traces groups collected spans by trace id.
func (c *Collector) Traces() map[TraceID][]Span {
	out := map[TraceID][]Span{}
	for _, s := range c.Spans() {
		out[s.Trace] = append(out[s.Trace], s)
	}
	return out
}

// Reset drops collected spans but keeps id counters monotonic. Storage is
// retained for reuse; traces started before the Reset are no longer sampled.
func (c *Collector) Reset() {
	c.spans = c.spans[:0]
	c.floorTrace = c.nextTrace
	for _, key := range c.armKeys {
		a := c.arms[key]
		a.spans = a.spans[:0]
		a.floorTrace = a.nextTrace
	}
}

// Edge is one parent→child service dependency with its observed weight.
type Edge struct {
	From, To string
	Calls    int     // child invocations observed (retries and hedges included)
	Prob     float64 // child invocations per parent invocation
	Retries  int     // duplicate deliveries: child spans with Attempt>0 or Hedged
	Errors   int     // child invocations that returned an error
}

// Graph is a reconstructed service dependency graph.
type Graph struct {
	Services []string
	Edges    []Edge
	Roots    []string
}

// BuildGraph reconstructs the RPC dependency DAG from collected spans —
// the topology-extraction step Ditto feeds to its skeleton generator.
func BuildGraph(spans []Span) Graph {
	type edgeAgg struct{ calls, retries, errors int }
	byID := map[SpanID]Span{}
	parents := map[string]int{}
	edges := map[[2]string]*edgeAgg{}
	services := map[string]bool{}
	roots := map[string]bool{}
	for _, s := range spans {
		byID[s.ID] = s
		services[s.Service] = true
		parents[s.Service]++
	}
	for _, s := range spans {
		if s.Parent == 0 {
			roots[s.Service] = true
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			roots[s.Service] = true
			continue
		}
		key := [2]string{p.Service, s.Service}
		agg := edges[key]
		if agg == nil {
			agg = &edgeAgg{}
			edges[key] = agg
		}
		agg.calls++
		if s.Attempt > 0 || s.Hedged {
			agg.retries++
		}
		if s.Failed {
			agg.errors++
		}
	}
	var g Graph
	for svc := range services {
		g.Services = append(g.Services, svc)
	}
	sortStrings(g.Services)
	// ditto:determinism-ok reviewed: per-edge aggregates are independent and
	// sortEdges orders the result before it is returned.
	for pair, agg := range edges {
		prob := 0.0
		if pn := parents[pair[0]]; pn > 0 {
			prob = float64(agg.calls) / float64(pn)
		}
		g.Edges = append(g.Edges, Edge{From: pair[0], To: pair[1], Calls: agg.calls,
			Prob: prob, Retries: agg.retries, Errors: agg.errors})
	}
	sortEdges(g.Edges)
	for svc := range roots {
		g.Roots = append(g.Roots, svc)
	}
	sortStrings(g.Roots)
	return g
}

// IsAcyclic reports whether the graph is a DAG (microservice topologies
// must be, per §4.2).
func (g Graph) IsAcyclic() bool {
	adj := map[string][]string{}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, m := range adj[n] {
			switch color[m] {
			case gray:
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for _, s := range g.Services {
		if color[s] == white && !visit(s) {
			return false
		}
	}
	return true
}

// Out returns the outgoing edges of a service.
func (g Graph) Out(service string) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == service {
			out = append(out, e)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortEdges(e []Edge) {
	less := func(a, b Edge) bool {
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	}
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && less(e[j], e[j-1]); j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}
