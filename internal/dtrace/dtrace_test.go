package dtrace

import (
	"fmt"
	"testing"
	"testing/quick"

	"ditto/internal/sim"
)

func mkSpan(c *Collector, trace TraceID, parent SpanID, svc string) Span {
	s := Span{Trace: trace, ID: c.NextSpanID(), Parent: parent, Service: svc,
		Start: 0, End: sim.Millisecond}
	c.Record(s)
	return s
}

func TestCollectorSampling(t *testing.T) {
	c := NewCollector(3)
	kept := 0
	for i := 0; i < 30; i++ {
		tr := c.StartTrace()
		mkSpan(c, tr, 0, "frontend")
	}
	kept = len(c.Spans())
	if kept != 10 {
		t.Fatalf("kept %d of 30 with 1-in-3 sampling", kept)
	}
	c.Reset()
	if len(c.Spans()) != 0 {
		t.Fatal("reset did not clear spans")
	}
	full := NewCollector(0) // clamps to 1
	tr := full.StartTrace()
	mkSpan(full, tr, 0, "a")
	if len(full.Spans()) != 1 {
		t.Fatal("sampleEvery 1 should keep everything")
	}
}

// TestResetRetainsStorageAndResamples: Reset must keep the span store's
// capacity for reuse and stop sampling traces started before the reset,
// while ids stay monotonic.
func TestResetRetainsStorageAndResamples(t *testing.T) {
	c := NewCollector(1)
	pre := c.StartTrace()
	mkSpan(c, pre, 0, "a")
	c.Reset()
	if len(c.Spans()) != 0 {
		t.Fatal("reset did not clear spans")
	}
	c.Record(Span{Trace: pre, ID: c.NextSpanID(), Service: "a"})
	if len(c.Spans()) != 0 {
		t.Fatal("trace started before Reset must not be sampled after it")
	}
	post := c.StartTrace()
	if post <= pre {
		t.Fatalf("trace ids must stay monotonic across Reset: %d <= %d", post, pre)
	}
	mkSpan(c, post, 0, "a")
	if len(c.Spans()) != 1 {
		t.Fatal("trace started after Reset must be sampled")
	}
}

// TestRecordPathAllocationFree guards the no-resilience span path: with the
// span store pre-sized, StartTrace + NextSpanID + Record must not allocate.
func TestRecordPathAllocationFree(t *testing.T) {
	c := NewCollector(1)
	c.Reserve(200)
	allocs := testing.AllocsPerRun(100, func() {
		tr := c.StartTrace()
		s := Span{Trace: tr, ID: c.NextSpanID(), Service: "svc",
			Operation: "get", Start: 0, End: sim.Millisecond,
			ReqBytes: 128, RespBytes: 4096}
		c.Record(s)
	})
	if allocs != 0 {
		t.Fatalf("span record path allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestBuildGraph(t *testing.T) {
	c := NewCollector(1)
	for i := 0; i < 10; i++ {
		tr := c.StartTrace()
		root := mkSpan(c, tr, 0, "frontend")
		child := mkSpan(c, tr, root.ID, "svc-b")
		if i < 5 {
			mkSpan(c, tr, child.ID, "svc-c")
		}
	}
	g := BuildGraph(c.Spans())
	if len(g.Services) != 3 {
		t.Fatalf("services = %v", g.Services)
	}
	if len(g.Roots) != 1 || g.Roots[0] != "frontend" {
		t.Fatalf("roots = %v", g.Roots)
	}
	if !g.IsAcyclic() {
		t.Fatal("chain graph should be acyclic")
	}
	out := g.Out("svc-b")
	if len(out) != 1 || out[0].To != "svc-c" {
		t.Fatalf("svc-b out = %+v", out)
	}
	if out[0].Prob < 0.45 || out[0].Prob > 0.55 {
		t.Fatalf("edge prob = %v, want 0.5", out[0].Prob)
	}
	fe := g.Out("frontend")
	if len(fe) != 1 || fe[0].Prob != 1 {
		t.Fatalf("frontend out = %+v", fe)
	}
}

func TestGraphCycleDetection(t *testing.T) {
	g := Graph{
		Services: []string{"a", "b"},
		Edges:    []Edge{{From: "a", To: "b"}, {From: "b", To: "a"}},
	}
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
}

func TestOrphanSpanBecomesRoot(t *testing.T) {
	c := NewCollector(1)
	tr := c.StartTrace()
	c.Record(Span{Trace: tr, ID: c.NextSpanID(), Parent: 9999, Service: "lost"})
	g := BuildGraph(c.Spans())
	if len(g.Roots) != 1 || g.Roots[0] != "lost" {
		t.Fatalf("orphan should be a root: %v", g.Roots)
	}
}

func TestTraces(t *testing.T) {
	c := NewCollector(1)
	t1 := c.StartTrace()
	t2 := c.StartTrace()
	mkSpan(c, t1, 0, "a")
	mkSpan(c, t1, 0, "b")
	mkSpan(c, t2, 0, "a")
	byTrace := c.Traces()
	if len(byTrace) != 2 || len(byTrace[t1]) != 2 || len(byTrace[t2]) != 1 {
		t.Fatalf("traces = %v", byTrace)
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Start: sim.Millisecond, End: 3 * sim.Millisecond}
	if s.Duration() != 2*sim.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
}

// Property: reconstruction from any parent-child forest covers every
// service, keeps edge probabilities in (0, 1], and reconstructs a DAG when
// child services are strictly "deeper" than their parents (one service per
// depth level — the shape real layered deployments have).
func TestBuildGraphLayeredProperty(t *testing.T) {
	f := func(links []uint8) bool {
		c := NewCollector(1)
		tr := c.StartTrace()
		type rec struct {
			id    SpanID
			depth int
		}
		var spans []rec
		services := map[string]bool{}
		for _, l := range links {
			parent := SpanID(0)
			depth := 0
			if len(spans) > 0 {
				p := spans[int(l)%len(spans)]
				parent = p.id
				depth = p.depth + 1
			}
			svc := fmt.Sprintf("svc%d", depth) // one service per depth: layered DAG
			services[svc] = true
			s := Span{Trace: tr, ID: c.NextSpanID(), Parent: parent, Service: svc}
			c.Record(s)
			spans = append(spans, rec{id: s.ID, depth: depth})
		}
		g := BuildGraph(c.Spans())
		if len(g.Services) != len(services) {
			return false
		}
		for _, e := range g.Edges {
			if e.Prob <= 0 || e.Calls <= 0 {
				return false
			}
		}
		return len(spans) == 0 || g.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildGraphDegradedEdges round-trips resilience tags through graph
// reconstruction: retried, hedged, and failed child invocations must
// aggregate onto the right parent→child edge without disturbing attribution
// on healthy edges.
func TestBuildGraphDegradedEdges(t *testing.T) {
	c := NewCollector(1)
	tr := c.StartTrace()
	root := Span{Trace: tr, ID: c.NextSpanID(), Service: "frontend"}
	c.Record(root)

	// frontend → compose: first delivery fails, retry succeeds, plus one
	// hedged duplicate of the retry.
	compose0 := Span{Trace: tr, ID: c.NextSpanID(), Parent: root.ID,
		Service: "compose", Attempt: 0, Failed: true}
	compose1 := Span{Trace: tr, ID: c.NextSpanID(), Parent: root.ID,
		Service: "compose", Attempt: 1}
	composeH := Span{Trace: tr, ID: c.NextSpanID(), Parent: root.ID,
		Service: "compose", Attempt: 1, Hedged: true}
	c.Record(compose0)
	c.Record(compose1)
	c.Record(composeH)

	// compose → storage: one clean invocation under the successful retry.
	storage := Span{Trace: tr, ID: c.NextSpanID(), Parent: compose1.ID,
		Service: "storage"}
	c.Record(storage)

	g := BuildGraph(c.Spans())
	if !g.IsAcyclic() {
		t.Fatal("degraded graph should stay acyclic")
	}
	edges := map[[2]string]Edge{}
	for _, e := range g.Edges {
		edges[[2]string{e.From, e.To}] = e
	}
	fc, ok := edges[[2]string{"frontend", "compose"}]
	if !ok {
		t.Fatal("frontend→compose edge missing")
	}
	if fc.Calls != 3 || fc.Retries != 2 || fc.Errors != 1 {
		t.Fatalf("frontend→compose = %+v, want Calls=3 Retries=2 Errors=1", fc)
	}
	cs, ok := edges[[2]string{"compose", "storage"}]
	if !ok {
		t.Fatal("compose→storage edge missing")
	}
	if cs.Calls != 1 || cs.Retries != 0 || cs.Errors != 0 {
		t.Fatalf("compose→storage = %+v, want clean single call", cs)
	}
	if _, crossed := edges[[2]string{"frontend", "storage"}]; crossed {
		t.Fatal("storage call attributed to the wrong parent")
	}
	if len(g.Roots) != 1 || g.Roots[0] != "frontend" {
		t.Fatalf("roots = %v", g.Roots)
	}
}
