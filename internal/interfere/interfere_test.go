package interfere

import (
	"testing"

	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

func TestLLCStressorEvictsVictimLines(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the full LLC; skipped in -short")
	}
	run := func(withStressor bool) float64 {
		eng := sim.NewEngine()
		cl := platform.NewCluster(eng, 100*sim.Microsecond)
		m := platform.NewMachine(eng, "m", platform.C()) // 8MB LLC, 4 cores
		cl.Add(m)
		if withStressor {
			StartLLCStressor(m, 2, platform.C().LLCKB<<10)
		}
		victim := m.Kernel.NewProc("victim")
		victim.Spawn("v", func(th *kernel.Thread) {
			// Random accesses over a 2MB working set: too big for the
			// private L1/L2 and immune to the next-line prefetcher, so every
			// access exercises the LLC. Alone, the set fits the 8MB LLC and
			// hits once warm; under the stressor its lines are evicted.
			const ws = 2 << 20
			stream := make([]isa.Instr, 4096)
			state := uint64(0xBEEF)
			for round := 0; round < 24; round++ {
				for i := range stream {
					state ^= state >> 12
					state ^= state << 25
					state ^= state >> 27
					stream[i] = isa.Instr{Op: isa.MOVload,
						PC: 0x400000 + uint64(i%16)*4, Dst: isa.Reg(i % 8),
						Src1:     isa.R10,
						Addr:     victim.MemBase + state*0x2545F4914F6CDD1D%ws&^63,
						BranchID: -1}
				}
				th.Run(stream)
				th.Yield()
			}
		})
		eng.RunFor(15 * sim.Millisecond)
		m.Kernel.Stop()
		eng.Run()
		return victim.Counters.L3MissRate()
	}
	alone := run(false)
	contended := run(true)
	if contended <= alone {
		t.Fatalf("LLC stressor should raise victim LLC misses: alone=%v contended=%v",
			alone, contended)
	}
}

func TestNetStressorDelaysVictimTraffic(t *testing.T) {
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	a := platform.NewMachine(eng, "a", platform.C()) // 1Gbe NIC
	b := platform.NewMachine(eng, "b", platform.C())
	cl.Add(a)
	cl.Add(b)
	StartNetStressor(a, b, 5201, 1<<20)
	eng.RunFor(20 * sim.Millisecond)
	if a.NIC.TxBytes == 0 {
		t.Fatal("stressor sent nothing")
	}
	if a.NIC.QueueDelay() == 0 {
		t.Fatal("1Gbe NIC should be backlogged by the hog")
	}
	a.Kernel.Stop()
	b.Kernel.Stop()
	eng.Run()
}

// TestBurstFillAllocationFree guards the stressor burst loops: refilling a
// burst in place must not touch the allocator.
func TestBurstFillAllocationFree(t *testing.T) {
	stream := make([]isa.Instr, stressorBurst)
	cursor := uint64(0)
	allocs := testing.AllocsPerRun(50, func() {
		cursor = fillLLCBurst(stream, 1<<32, cursor, 8<<20)
	})
	if allocs != 0 {
		t.Fatalf("fillLLCBurst allocated %.1f allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		fillCPUBurst(stream)
	})
	if allocs != 0 {
		t.Fatalf("fillCPUBurst allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestCPUStressorOccupiesCores(t *testing.T) {
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	m := platform.NewMachine(eng, "m", platform.C())
	cl.Add(m)
	p := StartCPUStressor(m, 2)
	eng.RunFor(2 * sim.Millisecond)
	if p.Counters.Instrs == 0 {
		t.Fatal("CPU stressor executed nothing")
	}
	m.Kernel.Stop()
	eng.Run()
}
