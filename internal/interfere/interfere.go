// Package interfere implements the co-located stressor workloads of the
// paper's interference study (§6.5): cache-hammering processes standing in
// for stress-ng and iBench, and a bandwidth hog standing in for iperf3.
// Hyperthread-sibling stressors (HT, L1d, L2) are modeled by the platform's
// SMT and private-cache-scale knobs, since the simulator has one hardware
// context per core; LLC and network stressors run as real processes.
package interfere

import (
	"fmt"

	"ditto/internal/cpu"
	"ditto/internal/isa"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

// stressorBurst is how many instructions each stressor thread runs between
// scheduler yields.
const stressorBurst = 4096

// fillLLCBurst rewrites stream in place with a streaming-load sweep starting
// at cursor (bytes into the working set) and returns the advanced cursor.
// It touches no storage beyond the given slice, keeping the stressor's burst
// loop allocation-free.
// ditto:noalloc
func fillLLCBurst(stream []isa.Instr, base, cursor uint64, wsBytes int) uint64 {
	for i := range stream {
		stream[i] = isa.Instr{Op: isa.MOVload,
			PC:  0x700000 + uint64(i%16)*4,
			Dst: isa.Reg(i % 8), Src1: isa.R10,
			Addr: base + cursor, BranchID: -1}
		cursor = (cursor + isa.LineBytes) % uint64(wsBytes)
	}
	return cursor
}

// fillCPUBurst rewrites stream in place with a pure-ALU spin loop.
// ditto:noalloc
func fillCPUBurst(stream []isa.Instr) {
	for i := range stream {
		stream[i] = isa.Instr{Op: isa.ADDrr, PC: 0x710000 + uint64(i%16)*4,
			Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8),
			BranchID: -1}
	}
}

// StartLLCStressor launches threads that continuously stream loads over a
// working set sized to wsBytes (typically the LLC capacity), evicting the
// victim's shared-cache lines — the iBench LLC benchmark.
func StartLLCStressor(m *platform.Machine, threads, wsBytes int) *kernel.Proc {
	p := m.Kernel.NewProc("llc-stressor")
	for th := 0; th < threads; th++ {
		th := th
		p.Spawn(fmt.Sprintf("hammer-%d", th), func(t *kernel.Thread) {
			base := p.MemBase + uint64(th)<<34
			stream := make([]isa.Instr, stressorBurst)
			cursor := uint64(0)
			for {
				cursor = fillLLCBurst(stream, base, cursor, wsBytes)
				t.Run(stream)
				t.Yield() // stay preemptible
			}
		})
	}
	return p
}

// StartNetStressor launches an iperf3-style flow from one machine to a sink
// on another, competing for the sender's NIC bandwidth. msgBytes per send,
// back to back.
func StartNetStressor(from, to *platform.Machine, port, msgBytes int) *kernel.Proc {
	sinkProc := to.Kernel.NewProc("iperf-sink")
	sinkProc.Spawn("sink", func(t *kernel.Thread) {
		l := t.Listen(port)
		conn := t.Accept(l)
		for {
			t.Recv(conn)
		}
	})
	p := from.Kernel.NewProc("iperf-client")
	p.Spawn("sender", func(t *kernel.Thread) {
		conn := t.Connect(to.Kernel, port)
		for {
			t.Send(conn, msgBytes, nil)
			// Pace slightly so the event queue stays bounded while still
			// saturating the NIC.
			t.Sleep(sim.Time(float64(msgBytes*8) / (from.Spec.NICGbps * 1e9) * float64(sim.Second)))
		}
	})
	return p
}

// StartCPUStressor launches compute-bound threads (stress-ng --cpu):
// pure-ALU spinners that occupy run-queue slots.
func StartCPUStressor(m *platform.Machine, threads int) *kernel.Proc {
	p := m.Kernel.NewProc("cpu-stressor")
	for th := 0; th < threads; th++ {
		p.Spawn(fmt.Sprintf("spin-%d", th), func(t *kernel.Thread) {
			// The spin stream never changes: decode it once and replay the
			// trace, skipping the per-burst decode pass entirely.
			stream := make([]isa.Instr, stressorBurst)
			fillCPUBurst(stream)
			tr := cpu.NewTrace(stream)
			for {
				t.RunTrace(tr)
				t.Yield()
			}
		})
	}
	return p
}
