package cpu

import (
	"math"

	"ditto/internal/cache"
	"ditto/internal/isa"
)

// This file implements the decoded-trace representation: a one-time static
// pass over an instruction stream that precomputes everything Execute's
// per-instruction loop used to re-derive on every run — iform uops, ports
// and latencies, fetch-line-change boundaries, branch/memory markers — into
// a dense struct-of-arrays. ExecuteTrace then touches only dynamic state
// (caches, predictor, ports, ROB, registers), which is what makes replaying
// a cached stream cheap: the stream is decoded once when it enters a cache
// (kernel kstream variants, app request-stream variants) and executed
// thousands of times.

// traceFlag packs the per-instruction static markers into one byte.
type traceFlag uint8

const (
	tfKernel traceFlag = 1 << iota
	tfBranch
	tfTaken
	tfLoad
	tfStore
	tfRep
	tfShared
	tfLine // PC sits on a different fetch line than the previous instruction
)

// TraceClass labels what kind of cached stream a Trace holds, which is what
// sampled steady-state execution keys eligibility on: only pregenerated
// rotating variants (application request bodies, kernel syscall streams) are
// statistically exchangeable enough to model from a measured distribution.
// Ad-hoc traces keep ClassNone and always execute.
type TraceClass uint8

const (
	ClassNone   TraceClass = iota // ad-hoc stream: never sampled
	ClassBody                     // pregenerated application request-body variant
	ClassKernel                   // pregenerated kernel syscall-stream variant
)

// Trace is a decoded instruction stream. The Stream field aliases the
// decoded source so observers (the SDE analog) still see plain isa.Instr
// values; the parallel arrays are what the execution loop reads. A Trace
// must not be mutated while any core may still execute it — the same
// contract cached []isa.Instr streams already obey.
type Trace struct {
	Stream []isa.Instr

	// Class marks sampling eligibility; Decode leaves it untouched so the
	// owner of a cached variant sets it once at pregeneration time.
	Class TraceClass
	// Group links the rotating variants of one pregenerated set (the 8
	// bodies of a (body, kind), the 8 kstreams of a syscall op) to a shared
	// canonical trace, so the steady-state sampler pools their statistics:
	// the variants are draws from the same generator, and the pooled
	// empirical distribution is exactly the per-kind latency distribution a
	// modeled request should reproduce. Nil means the trace samples alone.
	Group *Trace

	flags   []traceFlag
	uop8    []uint8   // fused-domain uops
	cumU    []uint32  // inclusive prefix sum of uop8, for batched dispatch
	execLat []float64 // iform latency plus any REP per-element cost
	psel    []uint32  // four packed port candidates (portPack[iform mask])
	dst     []isa.Reg // destination, with RegNone remapped to regSink
	src1    []isa.Reg
	src2    []isa.Reg
	pc      []uint64
	addr    []uint64
	rep     []int32

	instrs, kernelInstrs, uops uint64
}

// NewTrace decodes stream into a fresh Trace.
func NewTrace(stream []isa.Instr) *Trace {
	tr := &Trace{}
	tr.Decode(stream)
	return tr
}

// Len reports the number of decoded instructions.
func (tr *Trace) Len() int { return len(tr.flags) }

// grow sizes every parallel array to n, reusing capacity.
func (tr *Trace) grow(n int) {
	if cap(tr.flags) < n {
		tr.flags = make([]traceFlag, n)
		tr.uop8 = make([]uint8, n)
		tr.cumU = make([]uint32, n)
		tr.execLat = make([]float64, n)
		tr.psel = make([]uint32, n)
		tr.dst = make([]isa.Reg, n)
		tr.src1 = make([]isa.Reg, n)
		tr.src2 = make([]isa.Reg, n)
		tr.pc = make([]uint64, n)
		tr.addr = make([]uint64, n)
		tr.rep = make([]int32, n)
		return
	}
	tr.flags = tr.flags[:n]
	tr.uop8 = tr.uop8[:n]
	tr.cumU = tr.cumU[:n]
	tr.execLat = tr.execLat[:n]
	tr.psel = tr.psel[:n]
	tr.dst = tr.dst[:n]
	tr.src1 = tr.src1[:n]
	tr.src2 = tr.src2[:n]
	tr.pc = tr.pc[:n]
	tr.addr = tr.addr[:n]
	tr.rep = tr.rep[:n]
}

// Decode runs the static pass over stream, reusing the trace's storage. The
// trace aliases stream, so the stream must stay unmodified for as long as
// the trace is in use.
// ditto:noalloc
func (tr *Trace) Decode(stream []isa.Instr) {
	tr.Stream = stream
	n := len(stream)
	tr.grow(n)
	tr.instrs = uint64(n)
	tr.kernelInstrs = 0
	tr.uops = 0
	prevLine := ^uint64(0)
	for i := range stream {
		in := &stream[i]
		f := &isa.Table[in.Op]

		var fl traceFlag
		if in.Kernel {
			fl |= tfKernel
			tr.kernelInstrs++
		}
		if f.Branch {
			fl |= tfBranch
		}
		if in.Taken {
			fl |= tfTaken
		}
		if f.Load {
			fl |= tfLoad
		}
		if f.Store {
			fl |= tfStore
		}
		if f.Rep {
			fl |= tfRep
		}
		if in.Shared {
			fl |= tfShared
		}
		line := in.PC / isa.LineBytes
		if line != prevLine {
			fl |= tfLine
			prevLine = line
		}
		tr.flags[i] = fl

		tr.uops += uint64(f.Uops)
		tr.uop8[i] = uint8(f.Uops)
		tr.cumU[i] = uint32(tr.uops)
		lat := float64(f.Latency)
		if f.Rep && in.RepCount > 1 {
			lat += float64(f.RepUnit) * float64(in.RepCount) / 8
		}
		tr.execLat[i] = lat
		tr.psel[i] = portPack[f.Ports]
		d := in.Dst
		if d == isa.RegNone {
			d = regSink
		}
		tr.dst[i] = d
		tr.src1[i] = in.Src1
		tr.src2[i] = in.Src2
		tr.pc[i] = in.PC
		tr.addr[i] = in.Addr
		tr.rep[i] = in.RepCount
	}
}

// regSink is the scoreboard slot that absorbs writes from instructions with
// no destination register: Decode remaps dst == RegNone to it, so the
// execution loop can write regReady[dst] unconditionally. Reads never see
// it — source operands keep RegNone (0xFF), whose slot is never written and
// therefore always holds 0, a no-op under max with a non-negative clock.
const regSink isa.Reg = 0xFE

// ExecuteTrace runs a decoded stream to completion — the dynamic pass. It
// is result-identical to Execute on the trace's source stream: the same
// counters, the same cycle count, the same RNG draw sequence.
//
// The loop body works on locals: the trace's parallel arrays are re-sliced
// to a common length so bounds checks vanish and the register/port
// scoreboards live in stack arrays. The dispatch clock is not accumulated
// one add at a time — that would serialize every iteration behind a
// float-add dependency chain. Instead it is derived from the decode-time
// uop prefix sum: dispatch = base + Δuops·(1/width), where base only
// changes at stall events (frontend miss, mispredict, ROB-full), so
// consecutive iterations compute their clocks independently. For
// power-of-two effective widths (Skylake's 4) every quantity is an exact
// multiple of a small power of two, making this bit-identical to the
// serial sum.
// ditto:noalloc
func (c *Core) ExecuteTrace(tr *Trace) Result {
	var ctr Counters
	width := float64(c.cfg.Arch.IssueWidth) * c.cfg.SMTFactor
	if width < 1 {
		width = 1
	}
	invW := 1 / width
	// The register and port scoreboards hold Float64bits of their ready
	// times. Every time in the model is non-negative, and for non-negative
	// IEEE doubles the bit pattern orders exactly like the value — so the
	// max/min scans compare integers, which the compiler lowers to
	// conditional moves instead of poorly-predicted float branches.
	var regReady [256]uint64
	var portFree [8]uint64
	robRing := c.robRing
	for i := range robRing {
		robRing[i] = 0
	}
	robPos := 0

	ctr.Instrs = tr.instrs
	ctr.KernelInstrs = tr.kernelInstrs
	ctr.Uops = tr.uops

	dispatch := 0.0
	base := 0.0
	maxComplete := uint64(0) // Float64bits of the latest completion time
	l1iLat, l1dLat := c.l1Lat(c.cfg.ICache), c.l1Lat(c.cfg.DCache)
	icache := c.cfg.ICache
	pred := c.pred
	mispredPen := float64(c.cfg.Arch.MispredictPenalty)

	flags := tr.flags
	n := len(flags)
	cumU := tr.cumU[:n]
	execLat := tr.execLat[:n]
	psel := tr.psel[:n]
	dst := tr.dst[:n]
	src1 := tr.src1[:n]
	src2 := tr.src2[:n]
	pcs := tr.pc[:n]
	addrs := tr.addr[:n]
	reps := tr.rep[:n]

	for i := 0; i < n; i++ {
		fl := flags[i]
		dispatch = base + float64(cumU[i])*invW

		// Frontend: fetch the instruction's line when it changes. Within
		// the trace, line changes are the precomputed tfLine positions; the
		// first instruction must also check against the fetch state left by
		// the previous burst.
		if fl&tfLine != 0 || i == 0 {
			line := pcs[i] / isa.LineBytes
			if !c.haveFetch || line != c.lastFetch {
				c.lastFetch = line
				c.haveFetch = true
				if icache != nil {
					res := icache.Access(pcs[i])
					c.countAccess(&ctr, res, true)
					if res.Served != cache.L1 {
						stall := float64(res.Latency - l1iLat)
						base += stall
						dispatch += stall
						ctr.Frontend += stall
					}
				}
			}
		}

		// Branch prediction.
		if fl&tfBranch != 0 {
			ctr.Branches++
			if !pred.Access(pcs[i], fl&tfTaken != 0) {
				ctr.Mispred++
				base += mispredPen
				dispatch += mispredPen
				ctr.BadSpec += mispredPen
			}
		}

		// ROB: cannot dispatch past the window.
		if old := robRing[robPos]; old > dispatch {
			base += old - dispatch
			dispatch = old
		}

		// Register dataflow. RegNone sources read slot 0xFF, which is never
		// written (Decode diverts destinations to regSink) and stays 0.
		rb := math.Float64bits(dispatch)
		if r := regReady[src1[i]]; r > rb {
			rb = r
		}
		if r := regReady[src2[i]]; r > rb {
			rb = r
		}

		// Port selection: least-loaded allowed port, first wins ties. The
		// four candidates were packed into one word at decode time; padded
		// duplicate slots lose all strict-< comparisons. (&7 states the
		// invariant that candidates are port indices, letting the compiler
		// drop the portFree bounds checks.)
		q := psel[i]
		best := q & 7
		bf := portFree[best]
		if p := (q >> 8) & 7; portFree[p] < bf {
			best, bf = p, portFree[p]
		}
		if p := (q >> 16) & 7; portFree[p] < bf {
			best, bf = p, portFree[p]
		}
		if p := (q >> 24) & 7; portFree[p] < bf {
			best, bf = p, portFree[p]
		}
		if bf > rb {
			rb = bf
		}
		issue := math.Float64frombits(rb)
		portFree[best] = math.Float64bits(issue + 1)

		// Memory.
		memExtra := 0.0
		if fl&(tfLoad|tfStore) != 0 {
			memExtra = c.memAccessT(&ctr, addrs[i], reps[i], fl, l1dLat)
		}

		complete := issue + execLat[i]
		if fl&tfLoad != 0 {
			complete += memExtra
		}
		cb := math.Float64bits(complete)
		regReady[dst[i]] = cb // regSink absorbs no-destination writes
		robRing[robPos] = complete
		robPos++
		if robPos == len(robRing) {
			robPos = 0
		}
		if cb > maxComplete {
			maxComplete = cb
		}
	}

	cycles := dispatch
	if mc := math.Float64frombits(maxComplete); mc > cycles {
		cycles = mc
	}
	ctr.Cycles = cycles
	ctr.Retiring = float64(ctr.Uops) / width
	back := cycles - ctr.Retiring - ctr.Frontend - ctr.BadSpec
	if back < 0 {
		back = 0
	}
	ctr.Backend = back
	return Result{Cycles: cycles, Counters: ctr}
}

// memAccessT is memAccess on decoded per-instruction facts. It preserves
// the original's accounting and RNG draw order exactly.
func (c *Core) memAccessT(ctr *Counters, addr uint64, repCount int32, fl traceFlag, l1dLat int) float64 {
	if c.cfg.DCache == nil {
		return 0
	}
	if fl&tfShared != 0 && c.cfg.CoherenceInvRate > 0 && c.next01() < c.cfg.CoherenceInvRate {
		c.cfg.DCache.Invalidate(addr)
	}
	load := fl&tfLoad != 0
	store := fl&tfStore != 0
	if load {
		ctr.LoadBytes += 8
	}
	if store {
		ctr.StoreBytes += 8
	}
	if fl&tfRep == 0 {
		res := c.cfg.DCache.Access(addr)
		c.countAccess(ctr, res, false)
		extra := float64(res.Latency - l1dLat)
		if extra < 0 {
			extra = 0
		}
		if store && !load {
			return 0 // store buffer hides store latency
		}
		return extra
	}
	// REP string op: touch every line in [addr, addr+repCount).
	n := int(repCount)
	if n < 1 {
		n = 1
	}
	if load {
		ctr.LoadBytes += uint64(n)
	}
	if store {
		ctr.StoreBytes += uint64(n)
	}
	lines := (n + isa.LineBytes - 1) / isa.LineBytes
	var exposed float64
	for l := 0; l < lines; l++ {
		res := c.cfg.DCache.Access(addr + uint64(l*isa.LineBytes))
		c.countAccess(ctr, res, false)
		if extra := float64(res.Latency - l1dLat); extra > 0 {
			exposed += extra
		}
	}
	const streamMLP = 4 // hardware stream overlap for bulk copies
	return exposed / streamMLP
}
