package cpu

import (
	"testing"

	"ditto/internal/isa"
)

// mixedStream builds a stream exercising every decoded fact: ALU chains,
// loads/stores over a working set, pointer chases, shared lines, branches
// (taken and not), REP copies, kernel-mode instructions, and line-crossing
// PCs.
func mixedStream(n int, seed uint64) []isa.Instr {
	s := make([]isa.Instr, n)
	rng := seed | 1
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	pc := uint64(0x400000)
	for i := range s {
		r := next()
		pc += isa.InstrBytes
		if r&0x3F == 0 {
			pc += (r >> 8) % 4096 // occasional far jump: new fetch lines
		}
		in := isa.Instr{PC: pc, BranchID: -1,
			Dst: isa.Reg(r >> 8 & 7), Src1: isa.Reg(r >> 12 & 7), Src2: isa.Reg(r >> 16 & 7)}
		switch r % 10 {
		case 0, 1:
			in.Op = isa.MOVload
			in.Src1 = isa.R10
			in.Addr = 0x10000000 + (r>>20)%(4<<20)&^7
			in.Shared = r>>5&0xF == 0
		case 2:
			in.Op = isa.MOVstore
			in.Dst = isa.RegNone
			in.Addr = 0x10000000 + (r>>20)%(4<<20)&^7
		case 3:
			in.Op = isa.JCC
			in.BranchID = int32(i % 64)
			in.Taken = r>>32&3 != 0
			in.Dst, in.Src1, in.Src2 = isa.RegNone, isa.RegNone, isa.RegNone
		case 4:
			in.Op = isa.REPMOVSB
			in.RepCount = int32(64 + r%512)
			in.Addr = 0x20000000 + (r>>24)%(1<<20)&^7
			in.Dst, in.Src1, in.Src2 = isa.RegNone, isa.RegNone, isa.RegNone
		case 5:
			in.Op = isa.IMULrr
		case 6:
			in.Op = isa.ADDSDxx
			in.Dst = isa.X0 + isa.Reg(r>>8&7)
			in.Src1 = in.Dst
			in.Src2 = isa.X0 + isa.Reg(r>>12&7)
		default:
			in.Op = isa.ADDrr
		}
		if r>>40&7 == 0 {
			in.Kernel = true
		}
		s[i] = in
	}
	return s
}

// TestExecuteTraceMatchesExecute proves the two-pass core is observationally
// identical to executing the raw stream: same counters, same cycles, on
// warm and cold micro-architectural state.
func TestExecuteTraceMatchesExecute(t *testing.T) {
	stream := mixedStream(20000, 0x9E3779B97F4A7C15)
	tr := NewTrace(stream)

	a, b := testCore(), testCore()
	// Set a coherence rate so the shared-access RNG path is exercised; both
	// cores start from the same RNG seed, so draw sequences must align.
	a.SetCoherenceInvRate(0.3)
	b.SetCoherenceInvRate(0.3)
	for round := 0; round < 3; round++ {
		ra := a.Execute(stream)
		rb := b.ExecuteTrace(tr)
		if ra != rb {
			t.Fatalf("round %d: Execute != ExecuteTrace\n  raw:     %+v\n  decoded: %+v",
				round, ra, rb)
		}
	}
}

// TestDecodeReusesStorage guards the static pass's buffer reuse: decoding a
// second stream of no greater length into the same trace must not allocate.
func TestDecodeReusesStorage(t *testing.T) {
	big := mixedStream(8192, 1)
	small := mixedStream(4096, 2)
	var tr Trace
	tr.Decode(big)
	allocs := testing.AllocsPerRun(100, func() {
		tr.Decode(small)
		tr.Decode(big)
	})
	if allocs != 0 {
		t.Fatalf("Decode into warm trace allocates %v per run, want 0", allocs)
	}
}

// TestExecuteTraceAllocationFree guards the dynamic pass: executing a
// pre-decoded trace must never allocate.
func TestExecuteTraceAllocationFree(t *testing.T) {
	stream := mixedStream(4096, 3)
	tr := NewTrace(stream)
	c := testCore()
	c.ExecuteTrace(tr) // warm caches and predictor
	allocs := testing.AllocsPerRun(50, func() { c.ExecuteTrace(tr) })
	if allocs != 0 {
		t.Fatalf("ExecuteTrace allocates %v per run, want 0", allocs)
	}
}
