package cpu

import (
	"math"
	"testing"

	"ditto/internal/cache"
	"ditto/internal/isa"
	"ditto/internal/sim"
)

// testCore builds a Skylake-ish core with a small private hierarchy.
func testCore() *Core {
	l1i := cache.New(cache.Config{Name: "l1i", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
	l1d := cache.New(cache.Config{Name: "l1d", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
	l2 := cache.New(cache.Config{Name: "l2", Size: 1 << 20, Assoc: 16, Latency: 12, Policy: cache.LRU})
	l3 := cache.New(cache.Config{Name: "l3", Size: 8 << 20, Assoc: 16, Latency: 40, Policy: cache.LRU})
	return NewCore(Config{
		Arch:    Skylake,
		FreqGHz: 2.0,
		ICache:  &cache.Hierarchy{Caches: [3]*cache.Cache{l1i, l2, l3}, MemLatency: 200},
		DCache:  &cache.Hierarchy{Caches: [3]*cache.Cache{l1d, l2, l3}, MemLatency: 200},
	})
}

// independentALU builds n adds across 8 rotating destination registers with
// sequential PCs in one line-sized loop (tiny i-footprint).
func independentALU(n int) []isa.Instr {
	s := make([]isa.Instr, n)
	for i := range s {
		s[i] = isa.Instr{
			Op:       isa.ADDrr,
			PC:       0x400000 + uint64(i%16)*4,
			Dst:      isa.Reg(i % 8),
			Src1:     isa.Reg(i % 8),
			Src2:     isa.Reg((i + 1) % 8),
			BranchID: -1,
		}
	}
	return s
}

func TestIndependentALUNearWidth(t *testing.T) {
	c := testCore()
	res := c.Execute(independentALU(20000))
	ipc := res.Counters.IPC()
	if ipc < 3.0 || ipc > 4.2 {
		t.Fatalf("independent ALU IPC = %v, want near issue width 4", ipc)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	c := testCore()
	n := 10000
	s := make([]isa.Instr, n)
	for i := range s {
		s[i] = isa.Instr{Op: isa.ADDrr, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.R1, Src1: isa.R1, Src2: isa.R1, BranchID: -1}
	}
	res := c.Execute(s)
	ipc := res.Counters.IPC()
	if ipc > 1.1 {
		t.Fatalf("serial chain IPC = %v, want ≤ ~1", ipc)
	}
	indep := c.Execute(independentALU(n))
	if indep.Counters.IPC() <= ipc {
		t.Fatal("independent stream should beat serial chain")
	}
}

func TestPortContention(t *testing.T) {
	c := testCore()
	n := 8000
	crc := make([]isa.Instr, n)
	for i := range crc {
		crc[i] = isa.Instr{Op: isa.CRC32rr, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 3) % 8), BranchID: -1}
	}
	resCRC := c.Execute(crc)
	resADD := c.Execute(independentALU(n))
	// CRC32 is port-1-only: throughput ≤ 1/cycle vs ~4/cycle for adds.
	if resCRC.Counters.IPC() > 1.2 {
		t.Fatalf("port-1-only stream IPC = %v, want ≤ ~1", resCRC.Counters.IPC())
	}
	if resADD.Counters.IPC() < 2.5*resCRC.Counters.IPC() {
		t.Fatalf("port contention not visible: add=%v crc=%v",
			resADD.Counters.IPC(), resCRC.Counters.IPC())
	}
}

func TestPointerChaseMLP(t *testing.T) {
	c := testCore()
	// 4MB of pointer chasing: every load depends on the previous one and
	// misses L1/L2 once the footprint exceeds them.
	n := 20000
	chase := make([]isa.Instr, n)
	for i := range chase {
		chase[i] = isa.Instr{Op: isa.MOVptr, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.R11, Src1: isa.R11,
			Addr: uint64(i*8192) % (64 << 20), BranchID: -1}
	}
	resChase := c.Execute(chase)

	c2 := testCore()
	// Same addresses, but independent loads: MLP overlaps misses.
	indep := make([]isa.Instr, n)
	for i := range indep {
		indep[i] = isa.Instr{Op: isa.MOVload, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.Reg(i % 8), Src1: isa.R10,
			Addr: uint64(i*8192) % (64 << 20), BranchID: -1}
	}
	resIndep := c2.Execute(indep)
	if resChase.Cycles < 2*resIndep.Cycles {
		t.Fatalf("pointer chasing should serialize misses: chase=%v indep=%v",
			resChase.Cycles, resIndep.Cycles)
	}
}

func TestBranchMispredictionCost(t *testing.T) {
	mk := func(pattern func(i int) bool) float64 {
		c := testCore()
		n := 20000
		s := make([]isa.Instr, n)
		state := uint64(99)
		for i := range s {
			if i%4 == 3 {
				_ = state
				s[i] = isa.Instr{Op: isa.JCC, PC: 0x400000 + uint64(i%16)*4,
					BranchID: 1, Taken: pattern(i)}
			} else {
				s[i] = independentALU(1)[0]
				s[i].PC = 0x400000 + uint64(i%16)*4
			}
		}
		res := c.Execute(s)
		return res.Counters.IPC()
	}
	biased := mk(func(i int) bool { return true })
	state := uint64(0xABCDEF)
	random := mk(func(i int) bool {
		state = state*6364136223846793005 + 1442695040888963407
		return state>>63 == 1
	})
	if biased < 1.3*random {
		t.Fatalf("mispredictions should hurt IPC: biased=%v random=%v", biased, random)
	}
}

func TestICacheFootprint(t *testing.T) {
	run := func(footprint uint64) Counters {
		c := testCore()
		n := 40000
		s := make([]isa.Instr, n)
		for i := range s {
			s[i] = isa.Instr{Op: isa.ADDrr, PC: 0x400000 + (uint64(i)*4)%footprint,
				Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8), BranchID: -1}
		}
		return c.Execute(s).Counters
	}
	small := run(1 << 10)   // 1KB loop: fits L1i
	large := run(256 << 10) // 256KB loop: thrashes 32KB L1i
	if small.L1iMissRate() > 0.01 {
		t.Fatalf("small footprint L1i miss rate = %v", small.L1iMissRate())
	}
	if large.L1iMissRate() < 0.5*float64(1)/16 {
		t.Fatalf("large footprint L1i miss rate = %v, want ≳ 1/16 of fetches", large.L1iMissRate())
	}
	if small.IPC() <= large.IPC() {
		t.Fatal("i-cache misses should lower IPC")
	}
	if large.Frontend <= small.Frontend {
		t.Fatal("i-cache misses should appear as frontend cycles")
	}
}

func TestDCacheWorkingSets(t *testing.T) {
	run := func(ws uint64) Counters {
		c := testCore()
		n := 30000
		s := make([]isa.Instr, n)
		for i := range s {
			s[i] = isa.Instr{Op: isa.MOVload, PC: 0x400000 + uint64(i%16)*4,
				Dst: isa.Reg(i % 8), Src1: isa.R10,
				Addr: 0x10000000 + (uint64(i)*64)%ws, BranchID: -1}
		}
		return c.Execute(s).Counters
	}
	small := run(16 << 10) // fits L1d
	big := run(16 << 20)   // exceeds LLC
	if small.L1dMissRate() > 0.02 {
		t.Fatalf("small WS L1d miss = %v", small.L1dMissRate())
	}
	if big.L1dMissRate() < 0.5 {
		t.Fatalf("big WS L1d miss = %v", big.L1dMissRate())
	}
	if big.MemAcc == 0 {
		t.Fatal("big WS should reach memory")
	}
	if small.IPC() <= big.IPC() {
		t.Fatal("cache misses should lower IPC")
	}
}

func TestTopDownSumsToCycles(t *testing.T) {
	c := testCore()
	n := 10000
	s := make([]isa.Instr, 0, n)
	state := uint64(7)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			state = state*6364136223846793005 + 1
			s = append(s, isa.Instr{Op: isa.JCC, PC: 0x400000 + (uint64(i)*4)%(128<<10),
				BranchID: 1, Taken: state>>63 == 1})
		case 1:
			s = append(s, isa.Instr{Op: isa.MOVload, PC: 0x400000 + (uint64(i)*4)%(128<<10),
				Dst: isa.R3, Src1: isa.R10, Addr: 0x20000000 + (uint64(i)*64)%(8<<20), BranchID: -1})
		default:
			s = append(s, isa.Instr{Op: isa.ADDrr, PC: 0x400000 + (uint64(i)*4)%(128<<10),
				Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8), BranchID: -1})
		}
	}
	res := c.Execute(s)
	ctr := res.Counters
	sum := ctr.Retiring + ctr.Frontend + ctr.BadSpec + ctr.Backend
	if math.Abs(sum-ctr.Cycles) > 1e-6*ctr.Cycles+1e-6 {
		t.Fatalf("top-down sum %v != cycles %v", sum, ctr.Cycles)
	}
	for _, v := range []float64{ctr.Retiring, ctr.Frontend, ctr.BadSpec, ctr.Backend} {
		if v < 0 {
			t.Fatalf("negative top-down component: %+v", ctr)
		}
	}
}

func TestRepStringOps(t *testing.T) {
	c := testCore()
	s := []isa.Instr{{Op: isa.REPMOVSB, PC: 0x400000, Addr: 0x30000000,
		RepCount: 4096, BranchID: -1}}
	res := c.Execute(s)
	if res.Counters.L1dAcc < 64 {
		t.Fatalf("4KB rep movsb should access 64 lines, got %d", res.Counters.L1dAcc)
	}
	if res.Cycles < 100 {
		t.Fatalf("rep op too cheap: %v cycles", res.Cycles)
	}
	if res.Counters.LoadBytes < 4096 {
		t.Fatalf("LoadBytes = %d", res.Counters.LoadBytes)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	run := func(invRate float64) float64 {
		c := testCore()
		c.SetCoherenceInvRate(invRate)
		n := 20000
		s := make([]isa.Instr, n)
		for i := range s {
			s[i] = isa.Instr{Op: isa.MOVload, PC: 0x400000 + uint64(i%16)*4,
				Dst: isa.Reg(i % 8), Src1: isa.R10,
				Addr:   0x40000000 + (uint64(i)*64)%(4<<10), // tiny hot set
				Shared: true, BranchID: -1}
		}
		res := c.Execute(s)
		return res.Counters.L1dMissRate()
	}
	private := run(0)
	shared := run(0.3)
	if shared < private+0.1 {
		t.Fatalf("coherence invalidations should add misses: %v vs %v", shared, private)
	}
}

func TestKernelShareAndCountersAdd(t *testing.T) {
	c := testCore()
	s := independentALU(100)
	for i := 50; i < 100; i++ {
		s[i].Kernel = true
	}
	res := c.Execute(s)
	if got := res.Counters.KernelShare(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("KernelShare = %v", got)
	}
	var total Counters
	total.Add(res.Counters)
	total.Add(res.Counters)
	if total.Instrs != 200 {
		t.Fatalf("Add: Instrs = %d", total.Instrs)
	}
	if total.Cycles != 2*res.Counters.Cycles {
		t.Fatal("Add: cycles not summed")
	}
}

func TestSMTFactorSlowsCore(t *testing.T) {
	alone := testCore()
	shared := testCore()
	shared.SetSMTFactor(0.5)
	s := independentALU(20000)
	a := alone.Execute(s)
	b := shared.Execute(append([]isa.Instr(nil), s...))
	if b.Cycles < 1.5*a.Cycles {
		t.Fatalf("SMT sharing should roughly halve throughput: alone=%v shared=%v", a.Cycles, b.Cycles)
	}
}

func TestTimeConversion(t *testing.T) {
	c := testCore() // 2 GHz
	d := c.Time(2000)
	if d != sim.Time(1000*sim.Nanosecond) {
		t.Fatalf("2000 cycles at 2GHz = %v, want 1us", d)
	}
}

func TestCountersRatesEmpty(t *testing.T) {
	var ctr Counters
	if ctr.IPC() != 0 || ctr.CPI() != 0 || ctr.L1iMissRate() != 0 ||
		ctr.BranchMissRate() != 0 || ctr.MPKI() != 0 || ctr.KernelShare() != 0 {
		t.Fatal("empty counters should report zero rates")
	}
}

func TestExecuteDeterminism(t *testing.T) {
	s := independentALU(5000)
	a := testCore().Execute(append([]isa.Instr(nil), s...))
	b := testCore().Execute(append([]isa.Instr(nil), s...))
	if a.Cycles != b.Cycles || a.Counters != b.Counters {
		t.Fatal("identical cores and streams must produce identical results")
	}
}

func TestContextSwitchPollutesCaches(t *testing.T) {
	c := testCore()
	warm := make([]isa.Instr, 2000)
	for i := range warm {
		warm[i] = isa.Instr{Op: isa.MOVload, PC: 0x400000 + uint64(i%16)*4,
			Dst: isa.R3, Src1: isa.R10, Addr: 0x50000000 + (uint64(i)*64)%(8<<10), BranchID: -1}
	}
	c.Execute(warm)
	res1 := c.Execute(append([]isa.Instr(nil), warm...))
	c.ContextSwitch()
	res2 := c.Execute(append([]isa.Instr(nil), warm...))
	if res2.Counters.L1dMiss <= res1.Counters.L1dMiss {
		t.Fatalf("context switch should add misses: %d vs %d",
			res2.Counters.L1dMiss, res1.Counters.L1dMiss)
	}
}

func TestHaswellSlowerThanSkylake(t *testing.T) {
	mk := func(a Arch) *Core {
		l1i := cache.New(cache.Config{Name: "l1i", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
		l1d := cache.New(cache.Config{Name: "l1d", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
		return NewCore(Config{Arch: a, FreqGHz: 2,
			ICache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1i, nil, nil}, MemLatency: 200},
			DCache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1d, nil, nil}, MemLatency: 200}})
	}
	s := independentALU(20000)
	sky := mk(Skylake).Execute(append([]isa.Instr(nil), s...))
	has := mk(Haswell).Execute(append([]isa.Instr(nil), s...))
	if has.Counters.IPC() >= sky.Counters.IPC() {
		t.Fatalf("Haswell IPC %v should trail Skylake %v", has.Counters.IPC(), sky.Counters.IPC())
	}
}
