package cpu

import (
	"testing"

	"ditto/internal/isa"
)

// BenchmarkExecuteALU measures simulator throughput on a pure ALU stream —
// the upper bound on simulation speed.
func BenchmarkExecuteALU(b *testing.B) {
	c := testCore()
	stream := independentALU(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Execute(stream)
	}
	b.ReportMetric(float64(len(stream)), "instrs/op")
}

// BenchmarkExecuteTraceDecoded measures the dynamic pass alone on a
// pre-decoded mixed trace — the steady-state hot path once request streams
// are cached. Allocations are reported; the pass must stay at zero.
func BenchmarkExecuteTraceDecoded(b *testing.B) {
	c := testCore()
	tr := NewTrace(mixedStream(4096, 7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ExecuteTrace(tr)
	}
	b.ReportMetric(float64(tr.Len()), "instrs/op")
}

// BenchmarkDecode measures the one-time static pass that turns a raw stream
// into a dense decoded trace (storage reused across iterations).
func BenchmarkDecode(b *testing.B) {
	stream := mixedStream(4096, 7)
	var tr Trace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Decode(stream)
	}
	b.ReportMetric(float64(len(stream)), "instrs/op")
}

// BenchmarkExecuteMemHeavy measures throughput with cache-hierarchy walks
// on every third instruction — the realistic workload shape.
func BenchmarkExecuteMemHeavy(b *testing.B) {
	c := testCore()
	stream := make([]isa.Instr, 4096)
	for i := range stream {
		if i%3 == 0 {
			stream[i] = isa.Instr{Op: isa.MOVload, PC: 0x400000 + uint64(i%64)*4,
				Dst: isa.Reg(i % 8), Src1: isa.R10,
				Addr: 0x10000000 + uint64(i*64)%(8<<20), BranchID: -1}
		} else {
			stream[i] = isa.Instr{Op: isa.ADDrr, PC: 0x400000 + uint64(i%64)*4,
				Dst: isa.Reg(i % 8), Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8),
				BranchID: -1}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Execute(stream)
	}
	b.ReportMetric(float64(len(stream)), "instrs/op")
}
