// Package cpu implements the out-of-order core model that executes
// instruction streams for both the original applications and the Ditto
// clones. It is an interval/scoreboard model rather than a cycle-accurate
// pipeline: an in-order frontend with an L1i path and a branch predictor
// dispatches uops at the machine width, a register ready-time scoreboard
// plus per-port occupancy captures ILP, MLP and port contention, and a
// reorder-buffer ring bounds how far execution can run ahead. The model
// produces the counter set the paper validates against: IPC, per-level
// cache miss rates, branch mispredictions, and the top-down cycle breakdown
// (retiring / frontend / bad speculation / backend) of Fig. 2 and Fig. 8.
package cpu

import (
	"ditto/internal/branch"
	"ditto/internal/cache"
	"ditto/internal/isa"
	"ditto/internal/sim"
)

// Arch describes platform-independent core parameters (per CPU family,
// Table 1: Skylake vs Haswell).
type Arch struct {
	Name              string
	IssueWidth        int // fused-domain uops dispatched per cycle
	ROB               int // reorder-buffer entries
	MispredictPenalty int // cycles lost per branch mispredict
	PredictorEntries  int // predictor table entries per component
}

// Skylake and Haswell are the two core generations in the paper's cluster.
var (
	Skylake = Arch{Name: "skylake", IssueWidth: 4, ROB: 224, MispredictPenalty: 16, PredictorEntries: 8192}
	Haswell = Arch{Name: "haswell", IssueWidth: 3, ROB: 192, MispredictPenalty: 18, PredictorEntries: 4096}
)

// Config assembles one logical core: its architecture, clock, cache paths,
// and environment-dependent knobs set by the platform.
type Config struct {
	Arch    Arch
	FreqGHz float64
	ICache  *cache.Hierarchy
	DCache  *cache.Hierarchy
	// CoherenceInvRate is the probability that an access flagged Shared
	// finds its line invalidated by another core (§4.4.4 coherence misses).
	CoherenceInvRate float64
	// SMTFactor scales effective issue width for hyperthread sharing:
	// 1.0 = core alone, 0.5 = competing sibling thread (Fig. 10 HT).
	SMTFactor float64
}

// Counters is the performance-counter set a run accumulates — the model's
// equivalent of the perf/VTune counters Ditto reads.
type Counters struct {
	Instrs       uint64
	KernelInstrs uint64
	Uops         uint64
	Cycles       float64

	Branches uint64
	Mispred  uint64

	L1iAcc, L1iMiss uint64
	L1dAcc, L1dMiss uint64
	L2Acc, L2Miss   uint64
	L3Acc, L3Miss   uint64
	MemAcc          uint64

	LoadBytes, StoreBytes uint64

	// Top-down cycle attribution (Fig. 8).
	Retiring float64
	Frontend float64
	BadSpec  float64
	Backend  float64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instrs += o.Instrs
	c.KernelInstrs += o.KernelInstrs
	c.Uops += o.Uops
	c.Cycles += o.Cycles
	c.Branches += o.Branches
	c.Mispred += o.Mispred
	c.L1iAcc += o.L1iAcc
	c.L1iMiss += o.L1iMiss
	c.L1dAcc += o.L1dAcc
	c.L1dMiss += o.L1dMiss
	c.L2Acc += o.L2Acc
	c.L2Miss += o.L2Miss
	c.L3Acc += o.L3Acc
	c.L3Miss += o.L3Miss
	c.MemAcc += o.MemAcc
	c.LoadBytes += o.LoadBytes
	c.StoreBytes += o.StoreBytes
	c.Retiring += o.Retiring
	c.Frontend += o.Frontend
	c.BadSpec += o.BadSpec
	c.Backend += o.Backend
}

// IPC reports instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instrs) / c.Cycles
}

// CPI reports cycles per instruction.
func (c *Counters) CPI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return c.Cycles / float64(c.Instrs)
}

func rate(miss, acc uint64) float64 {
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}

// L1iMissRate reports L1 instruction-cache misses per L1i access.
func (c *Counters) L1iMissRate() float64 { return rate(c.L1iMiss, c.L1iAcc) }

// L1dMissRate reports L1 data-cache misses per L1d access.
func (c *Counters) L1dMissRate() float64 { return rate(c.L1dMiss, c.L1dAcc) }

// L2MissRate reports L2 misses per L2 access (instruction + data).
func (c *Counters) L2MissRate() float64 { return rate(c.L2Miss, c.L2Acc) }

// L3MissRate reports LLC misses per LLC access.
func (c *Counters) L3MissRate() float64 { return rate(c.L3Miss, c.L3Acc) }

// BranchMissRate reports mispredictions per conditional branch.
func (c *Counters) BranchMissRate() float64 { return rate(c.Mispred, c.Branches) }

// MPKI reports branch mispredictions per kilo-instruction.
func (c *Counters) MPKI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.Mispred) / float64(c.Instrs) * 1000
}

// KernelShare reports the fraction of instructions executed in kernel mode.
func (c *Counters) KernelShare() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.KernelInstrs) / float64(c.Instrs)
}

// Core is one logical execution context. It owns warm micro-architectural
// state (caches via Config, predictor, coherence RNG) that persists across
// Execute calls, which is what makes consecutive bursts of the same thread
// cheaper than cold starts.
type Core struct {
	cfg  Config
	pred *branch.Predictor

	robRing   []float64
	lastFetch uint64
	haveFetch bool
	rng       uint64
	// throttle scales the effective clock for cycle→time conversion:
	// 1 = full speed, 0.5 = half speed. A fault plane's slow-replica
	// scenario sets it mid-run; cycle counts are unaffected, only how long
	// they take, which is exactly what frequency throttling does.
	throttle float64
	// scratch is the reusable decode buffer Execute uses for uncached
	// streams; cached streams carry their own pre-decoded Trace.
	scratch Trace
}

// NewCore builds a core from cfg.
func NewCore(cfg Config) *Core {
	if cfg.SMTFactor == 0 {
		cfg.SMTFactor = 1
	}
	if cfg.FreqGHz == 0 {
		cfg.FreqGHz = 2.0
	}
	c := &Core{
		cfg:      cfg,
		pred:     branch.NewPredictor(cfg.Arch.PredictorEntries),
		robRing:  make([]float64, cfg.Arch.ROB),
		rng:      0x9E3779B97F4A7C15,
		throttle: 1,
	}
	return c
}

// SetThrottle scales the core's effective clock: 1 restores full speed,
// 0.5 halves it. Factors outside (0, 1] are clamped to 1.
func (c *Core) SetThrottle(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	c.throttle = f
}

// Throttle reports the current clock-throttle factor.
func (c *Core) Throttle() float64 { return c.throttle }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// SetCoherenceInvRate adjusts the shared-access invalidation probability
// (set by the platform from the thread topology).
func (c *Core) SetCoherenceInvRate(r float64) { c.cfg.CoherenceInvRate = r }

// SetSMTFactor adjusts the hyperthread-sharing factor.
func (c *Core) SetSMTFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	c.cfg.SMTFactor = f
}

// ContextSwitch models the micro-architectural cost of switching to a
// different thread: private cache pollution and predictor perturbation.
func (c *Core) ContextSwitch() {
	if c.cfg.ICache != nil {
		c.cfg.ICache.FlushPrivate()
	}
	if c.cfg.DCache != nil {
		c.cfg.DCache.FlushPrivate()
	}
}

func (c *Core) next01() float64 {
	// xorshift64*: deterministic, cheap, independent of math/rand state.
	c.rng ^= c.rng >> 12
	c.rng ^= c.rng << 25
	c.rng ^= c.rng >> 27
	return float64(c.rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// Result is the outcome of executing one instruction burst.
type Result struct {
	Cycles   float64
	Counters Counters
}

// Time converts the result's cycle count to simulated wall time at the
// core's configured frequency, slowed by any active throttle.
func (c *Core) Time(cycles float64) sim.Time {
	ns := cycles / (c.cfg.FreqGHz * c.throttle)
	return sim.Time(ns * float64(sim.Nanosecond))
}

// Execute runs one dynamic instruction stream to completion and returns
// consumed cycles plus counter deltas. The timeline is local to the burst;
// cache and predictor state persist across bursts. It is a thin wrapper for
// uncached streams: the static pass decodes into the core's reusable
// scratch trace, then the dynamic pass runs. Streams executed repeatedly
// should be decoded once with NewTrace and run via ExecuteTrace instead.
func (c *Core) Execute(stream []isa.Instr) Result {
	c.scratch.Decode(stream)
	return c.ExecuteTrace(&c.scratch)
}

// countAccess attributes one hierarchy access to the per-level counters.
func (c *Core) countAccess(ctr *Counters, res cache.Result, instrSide bool) {
	if instrSide {
		ctr.L1iAcc++
		if res.Served > cache.L1 {
			ctr.L1iMiss++
		}
	} else {
		ctr.L1dAcc++
		if res.Served > cache.L1 {
			ctr.L1dMiss++
		}
	}
	if res.Served > cache.L1 {
		ctr.L2Acc++
		if res.Served > cache.L2 {
			ctr.L2Miss++
		}
	}
	if res.Served > cache.L2 {
		ctr.L3Acc++
		if res.Served > cache.L3 {
			ctr.L3Miss++
		}
	}
	if res.Served == cache.Mem {
		ctr.MemAcc++
	}
}

// l1Lat returns the first-level hit latency of h, or 0 when absent.
func (c *Core) l1Lat(h *cache.Hierarchy) int {
	if h == nil || h.Caches[0] == nil {
		return 4
	}
	return h.Caches[0].Config().Latency
}

// portTab caches, for every possible mask, the port indices it allows as a
// fixed array plus a count — no slice headers on the hot path. An empty
// mask degrades to port 0. Unused slots repeat the first port: under the
// strict-< least-loaded scan a duplicate can never win, so the selection
// loop may read a fixed four slots (no iform in the table allows more than
// four ports) without a data-dependent bound.
var portTab = func() (t struct {
	list [256][8]uint8
	n    [256]uint8
}) {
	for m := 0; m < 256; m++ {
		for p := uint8(0); p < 8; p++ {
			if m&(1<<p) != 0 {
				t.list[m][t.n[m]] = p
				t.n[m]++
			}
		}
		if t.n[m] == 0 {
			t.list[m][0] = 0
			t.n[m] = 1
		}
		for k := t.n[m]; k < 8; k++ {
			t.list[m][k] = t.list[m][0]
		}
	}
	return
}()

// portPack packs each mask's first four candidate ports into one word
// (byte k = candidate k), the form the execution loop consumes: Decode
// stores portPack[mask] per instruction, so selection needs no second
// table lookup.
var portPack = func() (t [256]uint32) {
	for m := range t {
		pl := &portTab.list[m]
		t[m] = uint32(pl[0]) | uint32(pl[1])<<8 | uint32(pl[2])<<16 | uint32(pl[3])<<24
	}
	return
}()
