// Package cpu implements the out-of-order core model that executes
// instruction streams for both the original applications and the Ditto
// clones. It is an interval/scoreboard model rather than a cycle-accurate
// pipeline: an in-order frontend with an L1i path and a branch predictor
// dispatches uops at the machine width, a register ready-time scoreboard
// plus per-port occupancy captures ILP, MLP and port contention, and a
// reorder-buffer ring bounds how far execution can run ahead. The model
// produces the counter set the paper validates against: IPC, per-level
// cache miss rates, branch mispredictions, and the top-down cycle breakdown
// (retiring / frontend / bad speculation / backend) of Fig. 2 and Fig. 8.
package cpu

import (
	"ditto/internal/branch"
	"ditto/internal/cache"
	"ditto/internal/isa"
	"ditto/internal/sim"
)

// Arch describes platform-independent core parameters (per CPU family,
// Table 1: Skylake vs Haswell).
type Arch struct {
	Name              string
	IssueWidth        int // fused-domain uops dispatched per cycle
	ROB               int // reorder-buffer entries
	MispredictPenalty int // cycles lost per branch mispredict
	PredictorEntries  int // predictor table entries per component
}

// Skylake and Haswell are the two core generations in the paper's cluster.
var (
	Skylake = Arch{Name: "skylake", IssueWidth: 4, ROB: 224, MispredictPenalty: 16, PredictorEntries: 8192}
	Haswell = Arch{Name: "haswell", IssueWidth: 3, ROB: 192, MispredictPenalty: 18, PredictorEntries: 4096}
)

// Config assembles one logical core: its architecture, clock, cache paths,
// and environment-dependent knobs set by the platform.
type Config struct {
	Arch    Arch
	FreqGHz float64
	ICache  *cache.Hierarchy
	DCache  *cache.Hierarchy
	// CoherenceInvRate is the probability that an access flagged Shared
	// finds its line invalidated by another core (§4.4.4 coherence misses).
	CoherenceInvRate float64
	// SMTFactor scales effective issue width for hyperthread sharing:
	// 1.0 = core alone, 0.5 = competing sibling thread (Fig. 10 HT).
	SMTFactor float64
}

// Counters is the performance-counter set a run accumulates — the model's
// equivalent of the perf/VTune counters Ditto reads.
type Counters struct {
	Instrs       uint64
	KernelInstrs uint64
	Uops         uint64
	Cycles       float64

	Branches uint64
	Mispred  uint64

	L1iAcc, L1iMiss uint64
	L1dAcc, L1dMiss uint64
	L2Acc, L2Miss   uint64
	L3Acc, L3Miss   uint64
	MemAcc          uint64

	LoadBytes, StoreBytes uint64

	// Top-down cycle attribution (Fig. 8).
	Retiring float64
	Frontend float64
	BadSpec  float64
	Backend  float64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instrs += o.Instrs
	c.KernelInstrs += o.KernelInstrs
	c.Uops += o.Uops
	c.Cycles += o.Cycles
	c.Branches += o.Branches
	c.Mispred += o.Mispred
	c.L1iAcc += o.L1iAcc
	c.L1iMiss += o.L1iMiss
	c.L1dAcc += o.L1dAcc
	c.L1dMiss += o.L1dMiss
	c.L2Acc += o.L2Acc
	c.L2Miss += o.L2Miss
	c.L3Acc += o.L3Acc
	c.L3Miss += o.L3Miss
	c.MemAcc += o.MemAcc
	c.LoadBytes += o.LoadBytes
	c.StoreBytes += o.StoreBytes
	c.Retiring += o.Retiring
	c.Frontend += o.Frontend
	c.BadSpec += o.BadSpec
	c.Backend += o.Backend
}

// IPC reports instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instrs) / c.Cycles
}

// CPI reports cycles per instruction.
func (c *Counters) CPI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return c.Cycles / float64(c.Instrs)
}

func rate(miss, acc uint64) float64 {
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}

// L1iMissRate reports L1 instruction-cache misses per L1i access.
func (c *Counters) L1iMissRate() float64 { return rate(c.L1iMiss, c.L1iAcc) }

// L1dMissRate reports L1 data-cache misses per L1d access.
func (c *Counters) L1dMissRate() float64 { return rate(c.L1dMiss, c.L1dAcc) }

// L2MissRate reports L2 misses per L2 access (instruction + data).
func (c *Counters) L2MissRate() float64 { return rate(c.L2Miss, c.L2Acc) }

// L3MissRate reports LLC misses per LLC access.
func (c *Counters) L3MissRate() float64 { return rate(c.L3Miss, c.L3Acc) }

// BranchMissRate reports mispredictions per conditional branch.
func (c *Counters) BranchMissRate() float64 { return rate(c.Mispred, c.Branches) }

// MPKI reports branch mispredictions per kilo-instruction.
func (c *Counters) MPKI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.Mispred) / float64(c.Instrs) * 1000
}

// KernelShare reports the fraction of instructions executed in kernel mode.
func (c *Counters) KernelShare() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.KernelInstrs) / float64(c.Instrs)
}

// Core is one logical execution context. It owns warm micro-architectural
// state (caches via Config, predictor, coherence RNG) that persists across
// Execute calls, which is what makes consecutive bursts of the same thread
// cheaper than cold starts.
type Core struct {
	cfg  Config
	pred *branch.Predictor

	regReady  [isa.NumRegs]float64
	portFree  [8]float64
	robRing   []float64
	robPos    int
	lastFetch uint64
	haveFetch bool
	rng       uint64
	// throttle scales the effective clock for cycle→time conversion:
	// 1 = full speed, 0.5 = half speed. A fault plane's slow-replica
	// scenario sets it mid-run; cycle counts are unaffected, only how long
	// they take, which is exactly what frequency throttling does.
	throttle float64
}

// NewCore builds a core from cfg.
func NewCore(cfg Config) *Core {
	if cfg.SMTFactor == 0 {
		cfg.SMTFactor = 1
	}
	if cfg.FreqGHz == 0 {
		cfg.FreqGHz = 2.0
	}
	c := &Core{
		cfg:      cfg,
		pred:     branch.NewPredictor(cfg.Arch.PredictorEntries),
		robRing:  make([]float64, cfg.Arch.ROB),
		rng:      0x9E3779B97F4A7C15,
		throttle: 1,
	}
	return c
}

// SetThrottle scales the core's effective clock: 1 restores full speed,
// 0.5 halves it. Factors outside (0, 1] are clamped to 1.
func (c *Core) SetThrottle(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	c.throttle = f
}

// Throttle reports the current clock-throttle factor.
func (c *Core) Throttle() float64 { return c.throttle }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// SetCoherenceInvRate adjusts the shared-access invalidation probability
// (set by the platform from the thread topology).
func (c *Core) SetCoherenceInvRate(r float64) { c.cfg.CoherenceInvRate = r }

// SetSMTFactor adjusts the hyperthread-sharing factor.
func (c *Core) SetSMTFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	c.cfg.SMTFactor = f
}

// ContextSwitch models the micro-architectural cost of switching to a
// different thread: private cache pollution and predictor perturbation.
func (c *Core) ContextSwitch() {
	if c.cfg.ICache != nil {
		c.cfg.ICache.FlushPrivate()
	}
	if c.cfg.DCache != nil {
		c.cfg.DCache.FlushPrivate()
	}
}

func (c *Core) next01() float64 {
	// xorshift64*: deterministic, cheap, independent of math/rand state.
	c.rng ^= c.rng >> 12
	c.rng ^= c.rng << 25
	c.rng ^= c.rng >> 27
	return float64(c.rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// Result is the outcome of executing one instruction burst.
type Result struct {
	Cycles   float64
	Counters Counters
}

// Time converts the result's cycle count to simulated wall time at the
// core's configured frequency, slowed by any active throttle.
func (c *Core) Time(cycles float64) sim.Time {
	ns := cycles / (c.cfg.FreqGHz * c.throttle)
	return sim.Time(ns * float64(sim.Nanosecond))
}

// Execute runs one dynamic instruction stream to completion and returns
// consumed cycles plus counter deltas. The timeline is local to the burst;
// cache and predictor state persist across bursts.
func (c *Core) Execute(stream []isa.Instr) Result {
	var ctr Counters
	width := float64(c.cfg.Arch.IssueWidth) * c.cfg.SMTFactor
	if width < 1 {
		width = 1
	}
	for i := range c.regReady {
		c.regReady[i] = 0
	}
	for i := range c.portFree {
		c.portFree[i] = 0
	}
	for i := range c.robRing {
		c.robRing[i] = 0
	}
	c.robPos = 0

	dispatch := 0.0
	maxComplete := 0.0
	l1iLat, l1dLat := c.l1Lat(c.cfg.ICache), c.l1Lat(c.cfg.DCache)

	for i := range stream {
		in := &stream[i]
		f := &isa.Table[in.Op]

		ctr.Instrs++
		if in.Kernel {
			ctr.KernelInstrs++
		}
		uops := float64(f.Uops)
		ctr.Uops += uint64(f.Uops)
		dispatch += uops / width

		// Frontend: fetch the instruction's line when it changes.
		line := in.PC / isa.LineBytes
		if !c.haveFetch || line != c.lastFetch {
			c.lastFetch = line
			c.haveFetch = true
			if c.cfg.ICache != nil {
				res := c.cfg.ICache.Access(in.PC)
				c.countAccess(&ctr, res, true)
				if res.Served != cache.L1 {
					stall := float64(res.Latency - l1iLat)
					dispatch += stall
					ctr.Frontend += stall
				}
			}
		}

		// Branch prediction.
		if f.Branch {
			ctr.Branches++
			if !c.pred.Access(in.PC, in.Taken) {
				ctr.Mispred++
				pen := float64(c.cfg.Arch.MispredictPenalty)
				dispatch += pen
				ctr.BadSpec += pen
			}
		}

		// ROB: cannot dispatch past the window.
		if old := c.robRing[c.robPos]; old > dispatch {
			dispatch = old
		}

		// Register dataflow.
		ready := dispatch
		if in.Src1 != isa.RegNone && c.regReady[in.Src1] > ready {
			ready = c.regReady[in.Src1]
		}
		if in.Src2 != isa.RegNone && c.regReady[in.Src2] > ready {
			ready = c.regReady[in.Src2]
		}

		// Port selection: least-loaded allowed port.
		port := c.pickPort(f.Ports)
		issue := ready
		if c.portFree[port] > issue {
			issue = c.portFree[port]
		}
		c.portFree[port] = issue + 1

		// Memory.
		memExtra := 0.0
		if f.Load || f.Store {
			memExtra = c.memAccess(&ctr, in, f, l1dLat)
		}

		execLat := float64(f.Latency)
		if f.Rep && in.RepCount > 1 {
			execLat += float64(f.RepUnit) * float64(in.RepCount) / 8
		}
		complete := issue + execLat
		if f.Load {
			complete += memExtra
		}
		if in.Dst != isa.RegNone {
			c.regReady[in.Dst] = complete
		}
		c.robRing[c.robPos] = complete
		c.robPos++
		if c.robPos == len(c.robRing) {
			c.robPos = 0
		}
		if complete > maxComplete {
			maxComplete = complete
		}
	}

	cycles := dispatch
	if maxComplete > cycles {
		cycles = maxComplete
	}
	ctr.Cycles = cycles
	ctr.Retiring = float64(ctr.Uops) / width
	back := cycles - ctr.Retiring - ctr.Frontend - ctr.BadSpec
	if back < 0 {
		back = 0
	}
	ctr.Backend = back
	return Result{Cycles: cycles, Counters: ctr}
}

// memAccess performs the data-side cache walk(s) for one instruction and
// returns the extra load latency beyond an L1 hit (already included in the
// iform latency). REP ops walk their whole byte range a line at a time,
// with streaming overlap dividing the exposed latency.
func (c *Core) memAccess(ctr *Counters, in *isa.Instr, f *isa.IForm, l1dLat int) float64 {
	if c.cfg.DCache == nil {
		return 0
	}
	if in.Shared && c.cfg.CoherenceInvRate > 0 && c.next01() < c.cfg.CoherenceInvRate {
		c.cfg.DCache.Invalidate(in.Addr)
	}
	if f.Load {
		ctr.LoadBytes += 8
	}
	if f.Store {
		ctr.StoreBytes += 8
	}
	if !f.Rep {
		res := c.cfg.DCache.Access(in.Addr)
		c.countAccess(ctr, res, false)
		extra := float64(res.Latency - l1dLat)
		if extra < 0 {
			extra = 0
		}
		if f.Store && !f.Load {
			return 0 // store buffer hides store latency
		}
		return extra
	}
	// REP string op: touch every line in [Addr, Addr+RepCount).
	n := int(in.RepCount)
	if n < 1 {
		n = 1
	}
	if f.Load {
		ctr.LoadBytes += uint64(n)
	}
	if f.Store {
		ctr.StoreBytes += uint64(n)
	}
	lines := (n + isa.LineBytes - 1) / isa.LineBytes
	var exposed float64
	for l := 0; l < lines; l++ {
		res := c.cfg.DCache.Access(in.Addr + uint64(l*isa.LineBytes))
		c.countAccess(ctr, res, false)
		if extra := float64(res.Latency - l1dLat); extra > 0 {
			exposed += extra
		}
	}
	const streamMLP = 4 // hardware stream overlap for bulk copies
	return exposed / streamMLP
}

// countAccess attributes one hierarchy access to the per-level counters.
func (c *Core) countAccess(ctr *Counters, res cache.Result, instrSide bool) {
	if instrSide {
		ctr.L1iAcc++
		if res.Served > cache.L1 {
			ctr.L1iMiss++
		}
	} else {
		ctr.L1dAcc++
		if res.Served > cache.L1 {
			ctr.L1dMiss++
		}
	}
	if res.Served > cache.L1 {
		ctr.L2Acc++
		if res.Served > cache.L2 {
			ctr.L2Miss++
		}
	}
	if res.Served > cache.L2 {
		ctr.L3Acc++
		if res.Served > cache.L3 {
			ctr.L3Miss++
		}
	}
	if res.Served == cache.Mem {
		ctr.MemAcc++
	}
}

// l1Lat returns the first-level hit latency of h, or 0 when absent.
func (c *Core) l1Lat(h *cache.Hierarchy) int {
	if h == nil || h.Caches[0] == nil {
		return 4
	}
	return h.Caches[0].Config().Latency
}

// portLists caches, for every possible mask, the port indices it allows.
var portLists = func() (t [256][]uint8) {
	for m := 0; m < 256; m++ {
		for p := uint8(0); p < 8; p++ {
			if m&(1<<p) != 0 {
				t[m] = append(t[m], p)
			}
		}
		if len(t[m]) == 0 {
			t[m] = []uint8{0}
		}
	}
	return t
}()

// pickPort chooses the least-loaded port allowed by mask, deterministically.
func (c *Core) pickPort(mask isa.PortMask) int {
	ports := portLists[mask]
	best := ports[0]
	if len(ports) == 1 {
		return int(best)
	}
	for _, p := range ports[1:] {
		if c.portFree[p] < c.portFree[best] {
			best = p
		}
	}
	return int(best)
}
