// Package loadgen drives server applications the way the paper's clients
// do: an open-loop generator with Poisson arrivals (the mutated / tcpkali /
// modified-wrk2 role) and a closed-loop generator with one outstanding
// request per connection (the YCSB role for MongoDB and Redis). Latency is
// recorded end-to-end from client send to client receive in virtual time.
package loadgen

import (
	"ditto/internal/app"
	"ditto/internal/kernel"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/stats"
)

// MixEntry weights one request kind in the generated mix.
type MixEntry struct {
	Kind     int
	Weight   float64
	ReqBytes int
}

// FSMix is the NFS-style operation mix for the DittoFS storage family:
// metadata-dominated (getattr + lookup), a solid read share, and enough
// writes to keep the WAL commit path hot. Kinds number the dittofs ops
// (getattr, lookup, read, write — asserted against app/dittofs by test).
func FSMix() []MixEntry {
	return []MixEntry{
		{Kind: 0, Weight: 0.30, ReqBytes: 96},
		{Kind: 1, Weight: 0.25, ReqBytes: 128},
		{Kind: 2, Weight: 0.30, ReqBytes: 160},
		{Kind: 3, Weight: 0.15, ReqBytes: 8<<10 + 160}, // write carries its payload
	}
}

// Config shapes one load generator.
type Config struct {
	Name    string
	Machine *platform.Machine // client machine
	Target  *kernel.Kernel    // server kernel
	Port    int
	Conns   int
	// QPS > 0 runs an open loop at that Poisson rate; QPS == 0 runs a
	// closed loop (each connection keeps exactly one request outstanding).
	QPS  float64
	Mix  []MixEntry
	Seed int64
}

// Generator produces load and records latency.
type Generator struct {
	cfg  Config
	proc *kernel.Proc

	lat       stats.Recorder // milliseconds
	sent      int
	received  int
	failed    int
	connected int
	mixPick   *stats.Categorical
	rng       *stats.Rand
}

// New builds a generator. Call Start before running the engine.
func New(cfg Config) *Generator {
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = []MixEntry{{Kind: 0, Weight: 1, ReqBytes: 64}}
	}
	w := make([]float64, len(cfg.Mix))
	for i, m := range cfg.Mix {
		w[i] = m.Weight
	}
	return &Generator{
		cfg:     cfg,
		proc:    cfg.Machine.Kernel.NewProc(cfg.Name),
		mixPick: stats.NewCategorical(w),
		rng:     stats.NewRand(cfg.Seed ^ 0x1F2E3D),
	}
}

// Proc returns the client process (for counter inspection).
func (g *Generator) Proc() *kernel.Proc { return g.proc }

// Latency returns the latency recorder (milliseconds).
func (g *Generator) Latency() *stats.Recorder { return &g.lat }

// Sent reports requests sent since the last Reset.
func (g *Generator) Sent() int { return g.sent }

// Received reports responses received since the last Reset.
func (g *Generator) Received() int { return g.received }

// Failed reports responses that came back marked degraded (shed, or a lost
// downstream dependency) since the last Reset. Failed responses are counted
// in Received but excluded from the latency distribution.
func (g *Generator) Failed() int { return g.failed }

// Reset clears measurement state (end of warmup).
func (g *Generator) Reset() {
	g.lat.Reset()
	g.sent, g.received, g.failed = 0, 0, 0
}

// Start spawns the client threads. Connections are established first; load
// begins once all connections are up.
func (g *Generator) Start() {
	if g.cfg.QPS > 0 {
		g.startOpenLoop()
	} else {
		g.startClosedLoop()
	}
}

// startClosedLoop runs one thread per connection, each keeping a single
// outstanding request (YCSB-style).
func (g *Generator) startClosedLoop() {
	for c := 0; c < g.cfg.Conns; c++ {
		g.proc.Spawn("closed-conn", func(th *kernel.Thread) {
			conn := th.Connect(g.cfg.Target, g.cfg.Port)
			for {
				g.sendOne(th, conn)
				msg := th.Recv(conn)
				g.recordResponse(th, msg)
			}
		})
	}
}

// startOpenLoop runs per-connection receiver threads plus one arrival
// thread issuing requests at exponential inter-arrival times regardless of
// outstanding responses.
func (g *Generator) startOpenLoop() {
	conns := make([]*kernel.Endpoint, g.cfg.Conns)
	ready := g.cfg.Machine.Kernel.NewWaitQueue()
	for c := 0; c < g.cfg.Conns; c++ {
		c := c
		g.proc.Spawn("open-conn", func(th *kernel.Thread) {
			conn := th.Connect(g.cfg.Target, g.cfg.Port)
			conns[c] = conn
			g.connected++
			ready.WakeAll()
			for {
				msg := th.Recv(conn)
				g.recordResponse(th, msg)
			}
		})
	}
	g.proc.Spawn("arrivals", func(th *kernel.Thread) {
		for g.connected < g.cfg.Conns {
			th.WaitOn(ready)
		}
		next := 0
		mean := 1.0 / g.cfg.QPS
		for {
			wait := sim.FromSeconds(g.rng.Exp(mean))
			if wait < sim.Nanosecond {
				wait = sim.Nanosecond
			}
			th.Sleep(wait)
			g.sendOne(th, conns[next])
			next = (next + 1) % len(conns)
		}
	})
}

// sendOne issues one request on conn.
func (g *Generator) sendOne(th *kernel.Thread, conn *kernel.Endpoint) {
	m := g.cfg.Mix[g.mixPick.Sample(g.rng)]
	req := &app.Request{Kind: m.Kind, SentAt: th.Now()}
	bytes := m.ReqBytes
	if bytes <= 0 {
		bytes = 64
	}
	g.sent++
	th.Send(conn, bytes, req)
}

// recordResponse books one completed request.
func (g *Generator) recordResponse(th *kernel.Thread, msg kernel.Msg) {
	req, ok := msg.Payload.(*app.Request)
	if !ok {
		return
	}
	g.received++
	if req.Failed {
		g.failed++
		return
	}
	g.lat.Add((th.Now() - req.SentAt).Millis())
}
