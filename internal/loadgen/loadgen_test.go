package loadgen

import (
	"math"
	"testing"

	"ditto/internal/app"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *platform.Machine, *platform.Machine, app.App) {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	srv := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(8))
	cli := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(8))
	cl.Add(srv)
	cl.Add(cli)
	a := app.NewRedis(srv, 6379, 7)
	a.Start()
	return eng, srv, cli, a
}

func TestOpenLoopRate(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "open", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 8, QPS: 2000, Seed: 1})
	g.Start()
	eng.RunUntil(sim.Second)
	rate := float64(g.Sent())
	if math.Abs(rate-2000) > 300 {
		t.Fatalf("open-loop sent %v in 1s, want ≈ 2000", rate)
	}
	if g.Received() < g.Sent()*9/10 {
		t.Fatalf("received %d of %d", g.Received(), g.Sent())
	}
	if g.Latency().Count() == 0 || g.Latency().Percentile(99) <= 0 {
		t.Fatal("no latency recorded")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestClosedLoopKeepsOneOutstanding(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "closed", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 4, Seed: 2})
	g.Start()
	eng.RunUntil(200 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("closed loop sent nothing")
	}
	outstanding := g.Sent() - g.Received()
	if outstanding < 0 || outstanding > 4 {
		t.Fatalf("outstanding = %d, want ≤ conns", outstanding)
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestResetClearsStats(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "g", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 2, QPS: 500, Seed: 3})
	g.Start()
	eng.RunUntil(300 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("warmup sent nothing")
	}
	g.Reset()
	if g.Sent() != 0 || g.Received() != 0 || g.Latency().Count() != 0 {
		t.Fatal("reset did not clear stats")
	}
	eng.RunUntil(600 * sim.Millisecond)
	if g.Received() == 0 {
		t.Fatal("no post-reset traffic")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestMixSampling(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "mix", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 2, QPS: 1000, Seed: 4,
		Mix: []MixEntry{
			{Kind: 0, Weight: 0.1, ReqBytes: 64},
			{Kind: 1, Weight: 0.9, ReqBytes: 128},
		}})
	g.Start()
	eng.RunUntil(500 * sim.Millisecond)
	if g.Received() == 0 {
		t.Fatal("no traffic")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestDefaults(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Machine: cli, Target: srv.Kernel, Port: a.Port()})
	if g.cfg.Conns != 8 || len(g.cfg.Mix) != 1 {
		t.Fatal("defaults not applied")
	}
	_ = eng
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}
