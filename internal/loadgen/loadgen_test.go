package loadgen

import (
	"math"
	"testing"

	"ditto/internal/app"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *platform.Machine, *platform.Machine, app.App) {
	t.Helper()
	eng := sim.NewEngine()
	cl := platform.NewCluster(eng, 100*sim.Microsecond)
	srv := platform.NewMachine(eng, "srv", platform.A(), platform.WithCoreCount(8))
	cli := platform.NewMachine(eng, "cli", platform.A(), platform.WithCoreCount(8))
	cl.Add(srv)
	cl.Add(cli)
	a := app.NewRedis(srv, 6379, 7)
	a.Start()
	return eng, srv, cli, a
}

func TestOpenLoopRate(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "open", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 8, QPS: 2000, Seed: 1})
	g.Start()
	eng.RunUntil(sim.Second)
	rate := float64(g.Sent())
	if math.Abs(rate-2000) > 300 {
		t.Fatalf("open-loop sent %v in 1s, want ≈ 2000", rate)
	}
	if g.Received() < g.Sent()*9/10 {
		t.Fatalf("received %d of %d", g.Received(), g.Sent())
	}
	if g.Latency().Count() == 0 || g.Latency().Percentile(99) <= 0 {
		t.Fatal("no latency recorded")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestClosedLoopKeepsOneOutstanding(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "closed", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 4, Seed: 2})
	g.Start()
	eng.RunUntil(200 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("closed loop sent nothing")
	}
	outstanding := g.Sent() - g.Received()
	if outstanding < 0 || outstanding > 4 {
		t.Fatalf("outstanding = %d, want ≤ conns", outstanding)
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestResetClearsStats(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "g", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 2, QPS: 500, Seed: 3})
	g.Start()
	eng.RunUntil(300 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("warmup sent nothing")
	}
	g.Reset()
	if g.Sent() != 0 || g.Received() != 0 || g.Latency().Count() != 0 {
		t.Fatal("reset did not clear stats")
	}
	eng.RunUntil(600 * sim.Millisecond)
	if g.Received() == 0 {
		t.Fatal("no post-reset traffic")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

// Satellite regression: open-loop accounting across the warmup Reset. Sent
// must track the offered rate over the post-reset window only; responses to
// requests in flight at the Reset may still arrive, so Received may exceed
// Sent by at most the connection count but no more.
func TestOpenLoopAccountingAfterReset(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "open", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 8, QPS: 2000, Seed: 5})
	g.Start()
	eng.RunUntil(250 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("no warmup traffic")
	}
	g.Reset()
	if g.Sent() != 0 || g.Received() != 0 || g.Latency().Count() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	eng.RunUntil(1250 * sim.Millisecond) // exactly 1s of measurement
	rate := float64(g.Sent())
	if math.Abs(rate-2000) > 300 {
		t.Fatalf("post-reset open loop sent %v in 1s, want ≈ 2000", rate)
	}
	if g.Received() > g.Sent()+8 {
		t.Fatalf("received %d > sent %d + conns 8: counting pre-reset traffic",
			g.Received(), g.Sent())
	}
	if g.Received() < g.Sent()*9/10 {
		t.Fatalf("received %d of %d", g.Received(), g.Sent())
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

// Satellite regression: closed-loop accounting across the warmup Reset. With
// one outstanding request per connection, |Sent - Received| never exceeds
// the connection count in either direction (responses to pre-reset sends
// arrive without a matching post-reset Sent).
func TestClosedLoopAccountingAfterReset(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "closed", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 4, Seed: 6})
	g.Start()
	eng.RunUntil(100 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("no warmup traffic")
	}
	g.Reset()
	eng.RunUntil(300 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("closed loop sent nothing after reset")
	}
	diff := g.Sent() - g.Received()
	if diff > 4 || diff < -4 {
		t.Fatalf("sent-received = %d, want within ±conns (4)", diff)
	}
	if g.Latency().Count() == 0 {
		t.Fatal("no post-reset latency samples")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestMixSampling(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Name: "mix", Machine: cli, Target: srv.Kernel, Port: a.Port(),
		Conns: 2, QPS: 1000, Seed: 4,
		Mix: []MixEntry{
			{Kind: 0, Weight: 0.1, ReqBytes: 64},
			{Kind: 1, Weight: 0.9, ReqBytes: 128},
		}})
	g.Start()
	eng.RunUntil(500 * sim.Millisecond)
	if g.Received() == 0 {
		t.Fatal("no traffic")
	}
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}

func TestDefaults(t *testing.T) {
	eng, srv, cli, a := setup(t)
	g := New(Config{Machine: cli, Target: srv.Kernel, Port: a.Port()})
	if g.cfg.Conns != 8 || len(g.cfg.Mix) != 1 {
		t.Fatal("defaults not applied")
	}
	_ = eng
	srv.Kernel.Stop()
	cli.Kernel.Stop()
	eng.Run()
}
