// Interference example: show that a Ditto clone inherits the original's
// sensitivity to resource contention without ever being profiled under it
// (the §6.5 case study). NGINX and its clone run alone, against an
// iBench-style LLC hammer, and against an iperf3-style network hog.
package main

import (
	"fmt"

	"ditto/internal/app"
	"ditto/internal/experiments"
	"ditto/internal/interfere"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/synth"
)

func main() {
	build := func(m *platform.Machine) app.App { return app.NewNginx(m, 80, 5) }
	win := experiments.Windows{Warmup: 15 * sim.Millisecond, Measure: 100 * sim.Millisecond}
	load := experiments.Load{QPS: 3000, Conns: 16, Seed: 5}

	fmt.Println("== cloning nginx from an interference-free profile ==")
	_, spec := experiments.Clone(build, load, win, 32<<20, 2, 5)

	type scenario struct {
		name string
		llc  bool
		net  bool
	}
	scenarios := []scenario{{name: "alone"}, {name: "LLC hammer", llc: true}, {name: "net hog", net: true}}

	fmt.Printf("%-12s %-10s %8s %8s %8s\n", "scenario", "variant", "IPC", "LLCmiss", "p99 ms")
	for _, sc := range scenarios {
		for _, variant := range []string{"actual", "synthetic"} {
			env := experiments.NewEnv(platform.A(), platform.WithCoreCount(6))
			var srv app.App
			if variant == "actual" {
				srv = build(env.Server)
			} else {
				srv = synth.NewServer(env.Server, 80, spec, 6)
			}
			srv.Start()
			if sc.llc {
				interfere.StartLLCStressor(env.Server, 4, platform.A().LLCKB<<10)
			}
			if sc.net {
				interfere.StartNetStressor(env.Server, env.Client, 5201, 1<<20)
			}
			r := experiments.Measure(env, srv, load, win)
			env.Shutdown()
			fmt.Printf("%-12s %-10s %8.3f %8.4f %8.3f\n",
				sc.name, variant, r.Metrics.IPC, r.Metrics.L3Miss, r.P99Ms)
		}
	}
}
