// Power-management example (the Fig. 11 case study): can a cloud provider
// use the synthetic Memcached instead of the real one to decide how far
// cores and frequency can be scaled down before the 1ms p99 QoS breaks?
package main

import (
	"fmt"

	"ditto/internal/app"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/synth"
)

func main() {
	build := func(m *platform.Machine) app.App { return app.NewMemcachedN(m, 11211, 16, 3) }
	win := experiments.Windows{Warmup: 15 * sim.Millisecond, Measure: 100 * sim.Millisecond}

	// Find capacity at the full configuration, then offer 45% of it.
	envP := experiments.NewEnv(platform.A(), platform.WithCoreCount(16), platform.WithFreqGHz(2.1))
	a := build(envP.Server)
	a.Start()
	capRes := experiments.Measure(envP, a, experiments.Load{Conns: 32, Seed: 3}, win)
	envP.Shutdown()
	load := experiments.Load{QPS: capRes.Throughput * 0.45, Conns: 16, Seed: 3}
	fmt.Printf("offered load: %.0f QPS (45%% of %0.f)\n", load.QPS, capRes.Throughput)

	_, spec := experiments.Clone(build, load, win, 128<<20, 2, 3)

	const qos = 1.0 // ms
	fmt.Printf("%6s %6s | %22s | %22s\n", "cores", "GHz", "actual p99 (QoS?)", "synthetic p99 (QoS?)")
	for _, cores := range []int{4, 8, 16} {
		for _, f := range []float64{1.1, 1.7, 2.1} {
			var p99 [2]float64
			for i, variant := range []string{"actual", "synthetic"} {
				env := experiments.NewEnv(platform.A(),
					platform.WithCoreCount(cores), platform.WithFreqGHz(f))
				var srv app.App
				if variant == "actual" {
					srv = build(env.Server)
				} else {
					srv = synth.NewServer(env.Server, 11211, spec, 4)
				}
				srv.Start()
				r := experiments.Measure(env, srv, load, win)
				env.Shutdown()
				p99[i] = r.P99Ms
			}
			mark := func(v float64) string {
				if v > 0 && v <= qos {
					return "meets"
				}
				return "VIOLATES"
			}
			fmt.Printf("%6d %6.1f | %12.3f %-9s | %12.3f %-9s\n",
				cores, f, p99[0], mark(p99[0]), p99[1], mark(p99[1]))
		}
	}
}
