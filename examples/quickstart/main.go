// Quickstart: the smallest end-to-end Ditto run. We bring up the original
// Redis model on a simulated Platform A server, profile it under a YCSB-ish
// closed loop, generate a synthetic clone, statically verify the clone
// against the profile, and run original and clone side by side, printing
// the counter comparison — the whole pipeline of the paper in one file.
package main

import (
	"fmt"
	"os"

	"ditto/internal/app"
	"ditto/internal/core"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
	"ditto/internal/synth"
	"ditto/internal/verify"
)

func main() {
	build := func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, 42) }
	load := experiments.Load{Conns: 8, Seed: 42}
	win := experiments.Windows{Warmup: 20 * sim.Millisecond, Measure: 150 * sim.Millisecond}

	fmt.Println("== profiling original redis (SDE + Valgrind + SystemTap analogs) ==")
	prof := experiments.ProfileRun(build, load, win, 128<<20)
	fmt.Printf("profiled %d requests: %.0f instrs/req, %d mix clusters, %d static branches\n",
		prof.Requests, prof.Body.InstrsPerRequest, len(prof.Body.Mix), prof.Body.StaticBranches)
	fmt.Printf("detected skeleton: %s, %d worker(s), perConn=%v\n",
		prof.Skeleton.NetworkModel, prof.Skeleton.Workers, prof.Skeleton.PerConn)

	fmt.Println("== generating + fine-tuning the clone ==")
	spec, trace := core.FineTune(prof, 7, experiments.SynthRunner(load, win), 4, 0.05)
	for _, st := range trace {
		fmt.Printf("  tune iter %d: max metric error %.1f%%\n", st.Iter, st.MaxErr*100)
	}
	fmt.Printf("generated %d instruction blocks over %d data regions\n",
		len(spec.Body.Blocks), len(spec.Body.Regions))

	fmt.Println("== verifying the clone against its profile ==")
	rep := verify.Spec(spec, prof, verify.DefaultTolerances())
	fmt.Print(rep.String())
	if !rep.OK() {
		fmt.Println("clone failed verification; not worth simulating")
		os.Exit(1)
	}

	fmt.Println("== measuring original vs synthetic under identical load ==")
	envO := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	orig := build(envO.Server)
	orig.Start()
	ro := experiments.Measure(envO, orig, load, win)
	envO.Shutdown()

	envS := experiments.NewEnv(platform.A(), platform.WithCoreCount(8))
	clone := synth.NewServer(envS.Server, 6379, spec, 43)
	clone.Start()
	rs := experiments.Measure(envS, clone, load, win)
	envS.Shutdown()

	fmt.Printf("%-12s %12s %12s\n", "metric", "actual", "synthetic")
	fmt.Printf("%-12s %12.3f %12.3f\n", "IPC", ro.Metrics.IPC, rs.Metrics.IPC)
	fmt.Printf("%-12s %12.4f %12.4f\n", "branch miss", ro.Metrics.BranchMiss, rs.Metrics.BranchMiss)
	fmt.Printf("%-12s %12.4f %12.4f\n", "L1i miss", ro.Metrics.L1iMiss, rs.Metrics.L1iMiss)
	fmt.Printf("%-12s %12.4f %12.4f\n", "L1d miss", ro.Metrics.L1dMiss, rs.Metrics.L1dMiss)
	fmt.Printf("%-12s %12.4f %12.4f\n", "LLC miss", ro.Metrics.L3Miss, rs.Metrics.L3Miss)
	fmt.Printf("%-12s %12.3f %12.3f\n", "avg ms", ro.AvgMs, rs.AvgMs)
	fmt.Printf("%-12s %12.3f %12.3f\n", "p99 ms", ro.P99Ms, rs.P99Ms)
	fmt.Printf("%-12s %12.0f %12.0f\n", "req/s", ro.Throughput, rs.Throughput)
}
