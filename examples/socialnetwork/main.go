// Social-network example: deploy the 16-tier DeathStarBench-style Social
// Network over two simulated machines, clone every tier with Ditto
// (topology from distributed traces, per-tier skeleton+body from the
// profilers), and compare end-to-end latency of the original against the
// fully synthetic deployment — the Fig. 6 scenario.
package main

import (
	"fmt"

	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

func main() {
	win := experiments.Windows{Warmup: 20 * sim.Millisecond, Measure: 120 * sim.Millisecond}
	profLoad := experiments.Load{QPS: 400, Conns: 12, Mix: experiments.SNMix(), Seed: 9}

	fmt.Println("== profiling the original social network (16 tiers, 2 nodes) ==")
	clone := experiments.CloneSN(platform.A(), 2, 8, profLoad, win, 9)
	fmt.Printf("cloned %d tiers; learned topology plans:\n", len(clone.Order))
	for _, name := range clone.Order {
		plan := clone.Plans[name]
		edges := 0
		for _, calls := range plan.Calls {
			edges += len(calls)
		}
		fmt.Printf("  %-24s %2d downstream edges, %4.0f instrs/req\n",
			name, edges, clone.Profiles[name].Body.InstrsPerRequest)
	}

	fmt.Println("== end-to-end latency, original vs fully synthetic ==")
	fmt.Printf("%8s %12s %10s %10s %10s\n", "qps", "variant", "p50 ms", "p95 ms", "p99 ms")
	for _, qps := range []float64{150, 400, 800} {
		load := experiments.Load{QPS: qps, Conns: 12, Mix: experiments.SNMix(), Seed: 9}

		orig := experiments.NewOriginalSN(platform.A(), 2, 8, 9, 0)
		e2eO, _ := experiments.MeasureSN(orig, load, win, nil)
		orig.Env.Shutdown()

		syn := experiments.NewSynthSN(clone, platform.A(), 2, 8, 10, 0)
		e2eS, _ := experiments.MeasureSN(syn, load, win, nil)
		syn.Env.Shutdown()

		fmt.Printf("%8.0f %12s %10.3f %10.3f %10.3f\n", qps, "actual", e2eO.P50Ms, e2eO.P95Ms, e2eO.P99Ms)
		fmt.Printf("%8.0f %12s %10.3f %10.3f %10.3f\n", qps, "synthetic", e2eS.P50Ms, e2eS.P95Ms, e2eS.P99Ms)
	}
}
