// Package ditto_test hosts the benchmark harness that regenerates every
// table and figure in the paper's evaluation (§6). Each benchmark prints
// the artifact's rows/series; run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from the simulated platforms, not the authors'
// testbed; the reproduction target is the shape of each artifact (see
// EXPERIMENTS.md).
package ditto_test

import (
	"io"
	"os"
	"testing"

	"ditto/internal/experiments"
	"ditto/internal/sim"
)

// BenchmarkEngineScheduleFire is the engine hot-path baseline: one
// handle-returning After plus the Step that fires it. Every op heap-allocates
// an Event.
func BenchmarkEngineScheduleFire(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Microsecond, func() {})
		eng.Step()
	}
}

// BenchmarkEngineScheduleFirePooled is the same loop on the handle-free
// AfterFunc path: after the first op the Event comes from the engine's free
// list, so the steady state is allocation-free.
func BenchmarkEngineScheduleFirePooled(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AfterFunc(sim.Microsecond, func() {})
		eng.Step()
	}
}

// BenchmarkFigureCell runs one end-to-end evaluation cell (fig8, NGINX only,
// quick windows): clone prep plus two measured cells through the plan
// runner. This is the unit of work the parallel scheduler distributes.
func BenchmarkFigureCell(b *testing.B) {
	opt := benchOptions()
	opt.TuneIters = 0
	opt.IncludeSocial = false
	opt.Quiet = true
	opt.Apps = []string{"nginx"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(io.Discard, opt)
	}
}

// benchOptions sizes the runs for the benchmark harness: windows long
// enough for stable percentiles (hundreds to thousands of requests per
// measurement), with fine-tuning enabled.
func benchOptions() experiments.Options {
	return experiments.Options{
		Windows: experiments.Windows{
			Warmup:  10 * sim.Millisecond,
			Measure: 40 * sim.Millisecond,
		},
		TuneIters:     2,
		Seed:          1,
		IncludeSocial: true,
		SocialNodes:   2,
	}
}

func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable1(os.Stdout)
	}
}

func BenchmarkFig5ValidationVaryingLoad(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(os.Stdout, opt)
		b.ReportMetric(res.AvgErrors["ipc"], "ipc-err-%")
		b.ReportMetric(res.AvgErrors["llc"], "llc-err-%")
	}
}

func BenchmarkFig6SocialNetworkEndToEnd(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.RunFig6(os.Stdout, opt, nil)
	}
}

func BenchmarkFig7CrossPlatform(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(os.Stdout, opt)
	}
}

func BenchmarkFig8TopDown(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(os.Stdout, opt)
	}
}

func BenchmarkFig9Decomposition(b *testing.B) {
	opt := benchOptions()
	opt.TuneIters = 3
	for i := 0; i < b.N; i++ {
		experiments.RunFig9(os.Stdout, opt)
	}
}

func BenchmarkFig10Interference(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.RunFig10(os.Stdout, opt)
	}
}

func BenchmarkFig11CoreFrequencyScaling(b *testing.B) {
	opt := benchOptions()
	// A 4×3 grid keeps the bench tractable while preserving the heatmap's
	// corners and its QoS frontier; pass nil,nil (7×6) for the full figure.
	cores := []int{4, 8, 12, 16}
	freqs := []float64{1.1, 1.5, 2.1}
	for i := 0; i < b.N; i++ {
		experiments.RunFig11(os.Stdout, opt, cores, freqs)
	}
}
