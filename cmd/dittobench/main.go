// Command dittobench regenerates the paper's evaluation artifacts: every
// table and figure of §6, printed as machine-readable rows. Figures execute
// as cell plans on a bounded worker pool; output is bit-identical at every
// -parallel width.
//
// Usage:
//
//	dittobench -run fig5 [-parallel 8] [-intra-parallel 4] [-tune 4] [-ms 160] [-seed 1] [-apps redis,nginx]
//	dittobench -run 'fig11/c4/.*'          # regex over cell names
//	dittobench -run all -progress
//	dittobench -bench-json BENCH_PR2.json  # perf baseline mode
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"ditto/internal/app"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/runner"
	"ditto/internal/sim"
)

func main() {
	var (
		run = flag.String("run", "all",
			"regexp over cell names (e.g. 'fig5/redis/.*'); experiment names (table1|fig5|...|phases) and 'all' also work")
		parallel = flag.Int("parallel", 0, "cell worker pool size (0 = GOMAXPROCS); any width yields identical output")
		intra    = flag.Int("intra-parallel", 0,
			"per-cell shard workers: each simulated machine gets its own event-queue shard advanced by up to this many threads (0 = classic single-queue engine; widths >= 1 are byte-identical to each other)")
		progress  = flag.Bool("progress", false, "report per-cell completions on stderr")
		tune      = flag.Int("tune", 3, "fine-tuning iterations per clone")
		ms        = flag.Int("ms", 160, "measurement window (simulated ms)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		apps      = flag.String("apps", "", "comma-separated app filter for fig5/7/8")
		quick   = flag.Bool("quick", false, "small windows, no tuning (smoke run)")
		sampled = flag.Bool("sampled", false,
			"sampled steady-state execution: once per-tier convergence is detected, a seeded rotating subset of requests still executes while the rest are modeled from the measured distribution (warmup, fault windows, and durability paths always execute fully)")
		benchJSON = flag.String("bench-json", "",
			"write engine and cell benchmarks plus a parallel speedup measurement as JSON to this file, then exit")
	)
	flag.Parse()

	opt := experiments.Options{
		Windows: experiments.Windows{
			Warmup:  sim.Time(*ms/4) * sim.Millisecond,
			Measure: sim.Time(*ms) * sim.Millisecond,
		},
		TuneIters:     *tune,
		Seed:          *seed,
		IncludeSocial: true,
		Parallel:      *parallel,
		IntraParallel: *intra,
		Sampled:       *sampled,
	}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	if *quick {
		opt.Windows = experiments.Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond}
		opt.TuneIters = 0
		opt.IncludeSocial = false
	}
	if *progress {
		opt.Progress = func(done, total, failed int, r runner.CellResult) {
			status := ""
			if r.Err != nil {
				status = "  ERR"
			}
			errs := ""
			if failed > 0 {
				errs = fmt.Sprintf("  errs=%d", failed)
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-40s %8.2fs%s%s\n",
				done, total, r.Name, r.Elapsed.Seconds(), status, errs)
		}
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, opt); err != nil {
			fmt.Fprintf(os.Stderr, "dittobench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	if *run == "all" {
		experiments.RunTable1(w)
		for _, f := range figures(opt) {
			f(w)
		}
		return
	}

	re, err := regexp.Compile(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittobench: bad -run regexp %q: %v\n", *run, err)
		os.Exit(2)
	}
	// table1 and phases are single-shot artifacts without plans; they run
	// when the pattern names them. Every plan-backed figure self-selects:
	// it runs exactly the cells the pattern matches and stays silent when
	// none do.
	if re.MatchString("table1") {
		experiments.RunTable1(w)
	}
	opt.CellFilter = re
	for _, f := range figures(opt) {
		f(w)
	}
	if re.MatchString("phases") {
		experiments.RunPhaseScan(w, opt, func(m *platform.Machine) app.App {
			return app.NewRedis(m, 6379, opt.Seed)
		}, experiments.Load{Conns: 8, Seed: opt.Seed}, 10)
	}
}

// figures lists the plan-backed artifact runners in paper order.
func figures(opt experiments.Options) []func(w *os.File) {
	return []func(w *os.File){
		func(w *os.File) { experiments.RunFig5(w, opt) },
		func(w *os.File) { experiments.RunFig6(w, opt, nil) },
		func(w *os.File) { experiments.RunFig7(w, opt) },
		func(w *os.File) { experiments.RunFig8(w, opt) },
		func(w *os.File) { experiments.RunFig9(w, opt) },
		func(w *os.File) { experiments.RunFig10(w, opt) },
		func(w *os.File) { experiments.RunFig11(w, opt, nil, nil) },
		func(w *os.File) { experiments.RunFigF(w, opt, 0) },
		func(w *os.File) { experiments.RunFigS(w, opt, 0) },
	}
}
