// Command dittobench regenerates the paper's evaluation artifacts: every
// table and figure of §6, printed as machine-readable rows.
//
// Usage:
//
//	dittobench -run fig5 [-tune 4] [-ms 160] [-seed 1] [-apps redis,nginx]
//	dittobench -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ditto/internal/app"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment: table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|phases|all")
		tune  = flag.Int("tune", 3, "fine-tuning iterations per clone")
		ms    = flag.Int("ms", 160, "measurement window (simulated ms)")
		seed  = flag.Int64("seed", 1, "simulation seed")
		apps  = flag.String("apps", "", "comma-separated app filter for fig5/7/8")
		quick = flag.Bool("quick", false, "small windows, no tuning (smoke run)")
	)
	flag.Parse()

	opt := experiments.Options{
		Windows: experiments.Windows{
			Warmup:  sim.Time(*ms/4) * sim.Millisecond,
			Measure: sim.Time(*ms) * sim.Millisecond,
		},
		TuneIters:     *tune,
		Seed:          *seed,
		IncludeSocial: true,
	}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	if *quick {
		opt.Windows = experiments.Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond}
		opt.TuneIters = 0
		opt.IncludeSocial = false
	}

	w := os.Stdout
	runOne := func(name string) {
		switch name {
		case "table1":
			experiments.RunTable1(w)
		case "fig5":
			experiments.RunFig5(w, opt)
		case "fig6":
			experiments.RunFig6(w, opt, nil)
		case "fig7":
			experiments.RunFig7(w, opt)
		case "fig8":
			experiments.RunFig8(w, opt)
		case "fig9":
			experiments.RunFig9(w, opt)
		case "fig10":
			experiments.RunFig10(w, opt)
		case "fig11":
			experiments.RunFig11(w, opt, nil, nil)
		case "phases":
			experiments.RunPhaseScan(w, opt, func(m *platform.Machine) app.App {
				return app.NewRedis(m, 6379, opt.Seed)
			}, experiments.Load{Conns: 8, Seed: opt.Seed}, 10)
		default:
			fmt.Fprintf(os.Stderr, "dittobench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *run == "all" {
		for _, name := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			runOne(name)
		}
		return
	}
	runOne(*run)
}
