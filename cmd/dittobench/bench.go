package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"ditto/internal/app"
	"ditto/internal/cache"
	"ditto/internal/cpu"
	"ditto/internal/experiments"
	"ditto/internal/isa"
	"ditto/internal/platform"
	"ditto/internal/runner"
	"ditto/internal/sim"
)

// benchReport is the schema of the -bench-json artifact. It freezes the
// engine hot-path cost (pooled vs unpooled scheduling) and the evaluation
// layer's parallel speedup so later PRs can diff against it.
type benchReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Engine micro-benchmarks, one schedule+fire per op.
	EngineAfter     benchStat `json:"engine_after"`      // handle-returning, heap-allocating
	EngineAfterFunc benchStat `json:"engine_after_func"` // pooled free-list path

	// One end-to-end figure cell (fig8 nginx actual, quick windows).
	FigureCell benchStat `json:"figure_cell"`

	// The same cell under sampled steady-state execution (-sampled): the
	// detector converges, a rotating subset still executes, the rest are
	// modeled. The ns_per_op ratio against figure_cell is the sampling
	// speedup the PR claims.
	FigureCellSampled benchStat `json:"figure_cell_sampled"`

	// Resilience-layer hot path: breaker admit/record plus backoff math for
	// one successful call. The no-fault path must stay allocation-free.
	ResiliencePolicy benchStat `json:"resilience_policy"`

	// One fault-injection figure cell (figF crash-cache, original variant,
	// quick windows): chaos plane + resilient RPC end to end.
	FaultCell benchStat `json:"fault_cell"`

	// One storage figure cell (figS lsm, original variant, quick windows):
	// WAL fsyncs, dirty-page writeback, and LSM flush/compaction end to end.
	StorageCell benchStat `json:"storage_cell"`

	// Request-stream emission: fresh per-request generation vs serving a
	// pregenerated rotating variant, and the decoded-trace dynamic pass.
	EmitUncached benchStat `json:"emit_uncached"`
	EmitCached   benchStat `json:"emit_cached"`
	ExecuteTrace benchStat `json:"execute_trace"`

	// Wall clock of the fig11 grid at pool width 1 vs the actual worker-pool
	// width used for the parallel run. Speedup is omitted when that width is
	// 1: the two runs are then the same configuration and the ratio would be
	// pure noise.
	GridSerialSec   float64  `json:"grid_serial_sec"`
	GridParallelSec float64  `json:"grid_parallel_sec,omitempty"`
	GridWidth       int      `json:"grid_width"`
	Speedup         *float64 `json:"speedup,omitempty"`

	// Wall clock of ONE Social Network cell (4 nodes + client, closed loop)
	// on the sharded engine at 1 worker vs intra_width workers — the
	// intra-cell speedup the conservative-parallel World buys on a single
	// simulation. As above, the speedup is omitted at width 1.
	IntraWidth       int      `json:"intra_width"`
	IntraSerialSec   float64  `json:"intra_serial_sec"`
	IntraParallelSec float64  `json:"intra_parallel_sec,omitempty"`
	IntraSpeedup     *float64 `json:"intra_speedup,omitempty"`
}

type benchStat struct {
	N        int     `json:"n"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
}

func statOf(r testing.BenchmarkResult) benchStat {
	return benchStat{
		N:        r.N,
		NsPerOp:  float64(r.NsPerOp()),
		AllocsOp: float64(r.AllocsPerOp()),
		BytesOp:  float64(r.AllocedBytesPerOp()),
	}
}

// writeBenchJSON runs the PR's benchmark suite and writes the report. It is
// invoked from a plain main (not `go test`), so it drives testing.Benchmark
// directly; windows are forced to quick so the artifact regenerates in
// seconds.
func writeBenchJSON(path string, opt experiments.Options) error {
	opt.Windows = experiments.Windows{Warmup: 10 * sim.Millisecond, Measure: 50 * sim.Millisecond}
	opt.TuneIters = 0
	opt.IncludeSocial = false
	opt.Quiet = true
	opt.Apps = []string{"nginx"}
	opt.CellFilter = nil
	opt.Progress = nil

	rep := benchReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	fmt.Fprintln(os.Stderr, "bench: engine schedule+fire (unpooled After)")
	rep.EngineAfter = statOf(testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.After(sim.Microsecond, func() {})
			eng.Step()
		}
	}))
	fmt.Fprintln(os.Stderr, "bench: engine schedule+fire (pooled AfterFunc)")
	rep.EngineAfterFunc = statOf(testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AfterFunc(sim.Microsecond, func() {})
			eng.Step()
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: end-to-end figure cell (fig8, nginx, quick windows)")
	cellOpt := opt
	rep.FigureCell = statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunFig8(discard{}, cellOpt)
		}
	}))
	fmt.Fprintln(os.Stderr, "bench: the same figure cell under sampled steady-state execution")
	sampledOpt := cellOpt
	sampledOpt.Sampled = true
	rep.FigureCellSampled = statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunFig8(discard{}, sampledOpt)
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: resilience breaker admit+record (no-fault hot path)")
	rep.ResiliencePolicy = statOf(testing.Benchmark(func(b *testing.B) {
		br := app.NewBreaker(5, 10*sim.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := sim.Time(i) * sim.Microsecond
			if br.Allow(now) {
				br.OnResult(now, true)
			}
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: fault-injection figure cell (figF crash-cache, quick windows)")
	faultOpt := opt
	faultOpt.CellFilter = regexp.MustCompile(`figF/crash-cache/actual`)
	rep.FaultCell = statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunFigF(discard{}, faultOpt, 600)
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: storage figure cell (figS lsm, quick windows)")
	storeOpt := opt
	storeOpt.CellFilter = regexp.MustCompile(`figS/lsm/actual`)
	rep.StorageCell = statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunFigS(discard{}, storeOpt, 0)
		}
	}))

	fmt.Fprintln(os.Stderr, "bench: request-stream emission (uncached vs cached) and decoded-trace pass")
	body := benchBody()
	rep.EmitUncached = statOf(testing.Benchmark(func(b *testing.B) {
		var buf []isa.Instr
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = body.EmitRequest(0, buf[:0])
		}
	}))
	cache := app.NewStreamCache(body)
	cache.Next(0)
	rep.EmitCached = statOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Next(0)
		}
	}))
	rep.ExecuteTrace = statOf(testing.Benchmark(func(b *testing.B) {
		core := benchCore()
		tr := cache.Next(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.ExecuteTrace(tr)
		}
	}))

	width := runner.EffectiveWidth(0)
	fmt.Fprintf(os.Stderr, "bench: fig11 corner grid, pool width 1 vs %d\n", width)
	// The heatmap's four corners keep the artifact quick to regenerate.
	cores, freqs := []int{4, 16}, []float64{1.1, 2.1}
	gridOpt := opt
	gridOpt.Parallel = 1
	t0 := time.Now()
	experiments.RunFig11(discard{}, gridOpt, cores, freqs)
	rep.GridSerialSec = time.Since(t0).Seconds()
	rep.GridWidth = width
	if width > 1 {
		gridOpt.Parallel = width
		t0 = time.Now()
		experiments.RunFig11(discard{}, gridOpt, cores, freqs)
		rep.GridParallelSec = time.Since(t0).Seconds()
		if rep.GridParallelSec > 0 {
			s := rep.GridSerialSec / rep.GridParallelSec
			rep.Speedup = &s
		}
	} else {
		fmt.Fprintln(os.Stderr, "bench: pool width is 1; skipping the parallel run and omitting speedup")
	}

	// Intra-cell (sharded-engine) speedup: one closed-loop Social Network
	// cell over 5 machines (4 nodes + client), every machine its own shard,
	// advanced by 1 worker vs min(GOMAXPROCS, shards) workers. Closed loop
	// keeps every tier busy so each conservative window carries real work.
	const snNodes = 4
	intraWidth := runner.EffectiveWidth(0)
	if intraWidth > snNodes+1 {
		intraWidth = snNodes + 1 // one shard per machine; wider buys nothing
	}
	fmt.Fprintf(os.Stderr, "bench: social-network cell, shard workers 1 vs %d\n", intraWidth)
	snCell := func(intra int) float64 {
		t0 := time.Now()
		d := experiments.NewOriginalSN(platform.A(), snNodes, 8, opt.Seed+11, intra)
		load := experiments.Load{Conns: 64, Mix: experiments.SNMix(), Seed: opt.Seed}
		win := experiments.Windows{Warmup: 20 * sim.Millisecond, Measure: 200 * sim.Millisecond}
		experiments.MeasureSN(d, load, win, nil)
		d.Env.Shutdown()
		return time.Since(t0).Seconds()
	}
	rep.IntraWidth = intraWidth
	rep.IntraSerialSec = snCell(1)
	if intraWidth > 1 {
		rep.IntraParallelSec = snCell(intraWidth)
		if rep.IntraParallelSec > 0 {
			s := rep.IntraSerialSec / rep.IntraParallelSec
			rep.IntraSpeedup = &s
		}
	} else {
		fmt.Fprintln(os.Stderr, "bench: one core; skipping the wide shard run and omitting intra_speedup")
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	speedup := "n/a (width 1)"
	if rep.Speedup != nil {
		speedup = fmt.Sprintf("%.2fx at width %d", *rep.Speedup, rep.GridWidth)
	}
	sampledSpeedup := 0.0
	if rep.FigureCellSampled.NsPerOp > 0 {
		sampledSpeedup = rep.FigureCell.NsPerOp / rep.FigureCellSampled.NsPerOp
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (speedup %s, sampled cell %.2fx, allocs/op %0.f -> %.0f)\n",
		path, speedup, sampledSpeedup, rep.EngineAfter.AllocsOp, rep.EngineAfterFunc.AllocsOp)
	return nil
}

// benchBody is the emission workload for the stream benchmarks: one
// parse-like phase with jittered length, the shape every app handler emits.
func benchBody() *app.PhaseBody {
	ph := app.NewPhase(app.PhaseSpec{
		Name: "bench-parse", MeanInstrs: 5000, JitterPct: 0.2, FootprintBytes: 16 << 10,
		Weights:     app.ClassWeights{Load: 0.3, Store: 0.1, ALU: 0.6},
		BranchFrac:  0.15,
		Branches:    []app.BranchMN{{M: 1, N: 2, Weight: 1}},
		WorkingSets: []app.WorkingSet{{Bytes: 4096, Frac: 0.5}, {Bytes: 1 << 20, Frac: 0.5}},
		RegularFrac: 0.5, DepChain: 2,
	}, 0x400000, 0x10000000, 7)
	return &app.PhaseBody{Phases: []*app.Phase{ph}}
}

// benchCore is a lone Skylake-like core with a private cache hierarchy for
// the decoded-trace benchmark.
func benchCore() *cpu.Core {
	l3 := cache.New(cache.Config{Name: "l3", Size: 8 << 20, Assoc: 16, Latency: 40, Policy: cache.PLRU})
	l1i := cache.New(cache.Config{Name: "l1i", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
	l1d := cache.New(cache.Config{Name: "l1d", Size: 32 << 10, Assoc: 8, Latency: 4, Policy: cache.LRU})
	l2 := cache.New(cache.Config{Name: "l2", Size: 256 << 10, Assoc: 8, Latency: 12, Policy: cache.LRU})
	return cpu.NewCore(cpu.Config{Arch: cpu.Skylake, FreqGHz: 2,
		ICache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1i, l2, l3}, MemLatency: 200},
		DCache: &cache.Hierarchy{Caches: [3]*cache.Cache{l1d, l2, l3}, MemLatency: 200}})
}

// discard is an io.Writer sink; the bench mode measures work, not output.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
