// Command dittoprof runs one of the bundled original applications on the
// simulated Platform A under a representative load, profiles it with the
// full Ditto analyzer stack (§4), and writes the resulting AppProfile JSON
// to stdout or a file.
//
// Usage:
//
//	dittoprof -app redis [-conns 8] [-qps 0] [-ms 200] [-o profile.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"ditto/internal/app"
	"ditto/internal/experiments"
	"ditto/internal/platform"
	"ditto/internal/sim"
)

func main() {
	var (
		appName = flag.String("app", "redis", "application to profile: memcached|nginx|mongodb|redis")
		conns   = flag.Int("conns", 8, "client connections")
		qps     = flag.Float64("qps", 0, "open-loop QPS (0 = closed loop)")
		ms      = flag.Int("ms", 200, "profiling window in simulated milliseconds")
		seed    = flag.Int64("seed", 1, "simulation seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var build experiments.AppBuilder
	switch *appName {
	case "memcached":
		build = func(m *platform.Machine) app.App { return app.NewMemcached(m, 11211, *seed) }
	case "nginx":
		build = func(m *platform.Machine) app.App { return app.NewNginx(m, 80, *seed) }
	case "mongodb":
		build = func(m *platform.Machine) app.App { return app.NewMongoDB(m, 27017, *seed) }
	case "redis":
		build = func(m *platform.Machine) app.App { return app.NewRedis(m, 6379, *seed) }
	default:
		fmt.Fprintf(os.Stderr, "dittoprof: unknown app %q\n", *appName)
		os.Exit(2)
	}

	load := experiments.Load{QPS: *qps, Conns: *conns, Seed: *seed}
	win := experiments.Windows{Warmup: 20 * sim.Millisecond,
		Measure: sim.Time(*ms) * sim.Millisecond}
	prof := experiments.ProfileRun(build, load, win, 256<<20)

	data, err := prof.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittoprof: encode: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dittoprof: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dittoprof: wrote %s (%d requests profiled)\n", *out, prof.Requests)
}
