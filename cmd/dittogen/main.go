// Command dittogen turns an AppProfile JSON (from dittoprof) into a
// synthetic application spec, optionally running the fine-tuning loop
// against the simulated Platform A, and prints a summary of the generated
// program: skeleton, syscall plan, and instruction blocks.
//
// Usage:
//
//	dittogen -profile profile.json [-tune 4] [-seed 7] [-verify] [-o spec.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"ditto/internal/core"
	"ditto/internal/experiments"
	"ditto/internal/profile"
	"ditto/internal/sim"
	"ditto/internal/verify"
)

func main() {
	var (
		profPath = flag.String("profile", "", "AppProfile JSON from dittoprof")
		tune     = flag.Int("tune", 0, "fine-tuning iterations (0 = none)")
		seed     = flag.Int64("seed", 7, "generation seed")
		doVerify = flag.Bool("verify", false, "verify the spec against its profile; refuse to emit on failure")
		outPath  = flag.String("o", "", "write the generated spec as JSON")
	)
	flag.Parse()
	if *profPath == "" {
		fmt.Fprintln(os.Stderr, "dittogen: -profile is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*profPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittogen: %v\n", err)
		os.Exit(1)
	}
	prof, err := profile.DecodeAppProfile(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittogen: decode: %v\n", err)
		os.Exit(1)
	}

	var spec *core.SynthSpec
	if *tune > 0 {
		load := experiments.Load{Conns: 8, Seed: *seed}
		win := experiments.Windows{Warmup: 20 * sim.Millisecond, Measure: 120 * sim.Millisecond}
		var trace []core.TuneStep
		spec, trace = core.FineTune(prof, *seed, experiments.SynthRunner(load, win), *tune, 0.05)
		for _, st := range trace {
			fmt.Printf("tune iter=%d maxErr=%.3f ipc=%.3f\n", st.Iter, st.MaxErr, st.Measured.IPC)
		}
	} else {
		spec = core.Generate(prof, *seed)
	}

	if *doVerify {
		rep := verify.Spec(spec, prof, verify.DefaultTolerances())
		fmt.Print(rep.String())
		if !rep.OK() {
			fmt.Fprintln(os.Stderr, "dittogen: verification failed; refusing to emit the spec")
			os.Exit(1)
		}
	}
	if *outPath != "" {
		data, err := spec.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dittogen: encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dittogen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("spec written to %s\n", *outPath)
	}

	fmt.Printf("synthetic app: %s\n", spec.Name)
	fmt.Printf("skeleton: model=%s workers=%d dispatcher=%v perConn=%v\n",
		spec.Skeleton.NetworkModel, spec.Skeleton.Workers,
		spec.Skeleton.Dispatcher, spec.Skeleton.PerConn)
	fmt.Printf("messages: req=%dB resp=%dB\n", spec.ReqBytes, spec.RespBytes)
	fmt.Printf("syscall plan (%d entries):\n", len(spec.Syscalls))
	for _, p := range spec.Syscalls {
		fmt.Printf("  %-8s rate=%.3f/req bytes=%d file=%dB uniform=%v\n",
			p.Op, p.PerRequest, p.Bytes, p.FileSize, p.UniformOffsets)
	}
	fmt.Printf("body: %d blocks over a %dB data array, %d regions\n",
		len(spec.Body.Blocks), spec.Body.ArrayBytes, len(spec.Body.Regions))
	for i, b := range spec.Body.Blocks {
		fmt.Printf("  block %d: iws=%dB static=%d instrs loops=%.3f/req\n",
			i, b.InstWS, len(b.Instrs), b.LoopsPerRequest)
	}
}
