// Command dittolint is the CLI surface of the static-analysis suite
// (internal/analysis, reported through internal/verify). It runs in one of
// three modes:
//
// Determinism lint (default): run the multi-analyzer suite — wall-clock,
// global-rand, map-range, shared-state, no-goroutine — over the
// deterministic model packages. All analyzers honor the uniform
// ditto:determinism-ok suppression comment.
//
//	dittolint [-root dir] [-json] [-analyzers a,b] [pkg/dir ...]
//
// Noalloc gate (-noalloc): compile the target packages with -gcflags=-m
// and fail when a ditto:noalloc-annotated function contains a heap
// allocation — the static twin of the testing.AllocsPerRun gates.
//
//	dittolint -noalloc [-root dir] [-json] [pkg/dir ...]
//
// Clone verification (-spec): run the Layer-1 clone verifier over a
// generated spec (dittogen -o) against the profile it came from.
//
//	dittolint -spec spec.json -profile profile.json [-json]
//
// Exit status is 1 when any error-severity finding is produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ditto/internal/analysis"
	"ditto/internal/core"
	"ditto/internal/profile"
	"ditto/internal/verify"
)

func main() {
	var (
		root      = flag.String("root", ".", "module root to lint")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		noalloc   = flag.Bool("noalloc", false, "run the escape-analysis gate over ditto:noalloc functions")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		specPath  = flag.String("spec", "", "generated SynthSpec JSON to verify instead of linting")
		profPath  = flag.String("profile", "", "AppProfile JSON the spec was generated from (with -spec)")
	)
	flag.Parse()

	var rep *verify.Report
	switch {
	case *specPath != "":
		rep = verifySpec(*specPath, *profPath)
	case *noalloc:
		rep = run(verify.LintNoalloc(*root, targetDirs(verify.NoallocPackages)))
	default:
		rep = run(verify.LintWith(*root, targetDirs(verify.DeterministicPackages), selectAnalyzers(*analyzers)))
	}

	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(rep.String())
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// run unwraps a report-producing call, exiting on operational failure.
func run(rep *verify.Report, err error) *verify.Report {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
		os.Exit(1)
	}
	return rep
}

// targetDirs returns the positional package dirs, or the default set.
func targetDirs(defaults []string) []string {
	if dirs := flag.Args(); len(dirs) > 0 {
		return dirs
	}
	return defaults
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(names string) []*analysis.Analyzer {
	if names == "" {
		return analysis.All()
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All() {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for _, s := range analysis.All() {
				known = append(known, s.Name)
			}
			fmt.Fprintf(os.Stderr, "dittolint: unknown analyzer %q (known: %s)\n",
				name, strings.Join(known, ", "))
			os.Exit(2)
		}
		picked = append(picked, a)
	}
	return picked
}

func verifySpec(specPath, profPath string) *verify.Report {
	if profPath == "" {
		fmt.Fprintln(os.Stderr, "dittolint: -spec requires -profile")
		os.Exit(2)
	}
	specData, err := os.ReadFile(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
		os.Exit(1)
	}
	spec, err := core.DecodeSynthSpec(specData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: decode spec: %v\n", err)
		os.Exit(1)
	}
	profData, err := os.ReadFile(profPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
		os.Exit(1)
	}
	prof, err := profile.DecodeAppProfile(profData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: decode profile: %v\n", err)
		os.Exit(1)
	}
	return verify.Spec(spec, prof, verify.DefaultTolerances())
}
