// Command dittolint is the CLI surface of the static-analysis layer
// (internal/verify). It runs in one of two modes:
//
// Determinism lint (default): parse and type-check the deterministic model
// packages and flag wall-clock reads, global math/rand draws, and
// map-iteration-order-dependent accumulation.
//
//	dittolint [-root dir] [-json] [pkg/dir ...]
//
// Clone verification (-spec): run the Layer-1 clone verifier over a
// generated spec (dittogen -o) against the profile it came from.
//
//	dittolint -spec spec.json -profile profile.json [-json]
//
// Exit status is 1 when any error-severity finding is produced.
package main

import (
	"flag"
	"fmt"
	"os"

	"ditto/internal/core"
	"ditto/internal/profile"
	"ditto/internal/verify"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root to lint")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		specPath = flag.String("spec", "", "generated SynthSpec JSON to verify instead of linting")
		profPath = flag.String("profile", "", "AppProfile JSON the spec was generated from (with -spec)")
	)
	flag.Parse()

	var rep *verify.Report
	if *specPath != "" {
		rep = verifySpec(*specPath, *profPath)
	} else {
		dirs := flag.Args()
		if len(dirs) == 0 {
			dirs = verify.DeterministicPackages
		}
		var err error
		rep, err = verify.Lint(*root, dirs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(rep.String())
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func verifySpec(specPath, profPath string) *verify.Report {
	if profPath == "" {
		fmt.Fprintln(os.Stderr, "dittolint: -spec requires -profile")
		os.Exit(2)
	}
	specData, err := os.ReadFile(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
		os.Exit(1)
	}
	spec, err := core.DecodeSynthSpec(specData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: decode spec: %v\n", err)
		os.Exit(1)
	}
	profData, err := os.ReadFile(profPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: %v\n", err)
		os.Exit(1)
	}
	prof, err := profile.DecodeAppProfile(profData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dittolint: decode profile: %v\n", err)
		os.Exit(1)
	}
	return verify.Spec(spec, prof, verify.DefaultTolerances())
}
